// Table 2: measured major rates (Mips / Mops / Mflops) for the NAS
// workload over the >2.0 Gflops day sample of the nine-month campaign.
#include "bench/common.hpp"

#include "src/analysis/tables.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Table 2: Measured Major Rates for NAS Workload", "Table 2");
  auto& sim = bench::paper_sim();
  const analysis::Table2 t = sim.table2();
  std::printf("%s\n", analysis::format_table2(t).c_str());

  std::printf("  paper reference values (avg over its 30-day sample):\n");
  bench::compare("Mips", 45.7, t.rows[0].avg);
  bench::compare("Mops", 48.3, t.rows[1].avg);
  bench::compare("Mflops", 17.4, t.rows[2].avg);
  bench::compare("sample mean system Gflops", 2.5, t.sample_mean_gflops);
  bench::compare("sample utilization", 0.76, t.sample_mean_utilization);
  bench::compare("days above 2.0 Gflops", 30,
                 static_cast<double>(t.sample_days));

  auto csv = bench::open_csv("p2sim_table2.csv");
  csv << "rate,day,avg,std\n";
  for (const auto& row : t.rows) {
    csv << row.label << ',' << row.day << ',' << row.avg << ','
        << row.stddev << '\n';
  }
}

void BM_MakeTable2(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.days();  // campaign + daily stats amortized outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.table2());
  }
}
BENCHMARK(BM_MakeTable2);

void BM_DailyAggregation(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  const auto& campaign = sim.campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::daily_stats(campaign));
  }
}
BENCHMARK(BM_DailyAggregation);

}  // namespace

P2SIM_BENCH_MAIN(report)
