// Figure 4: performance histories of 16-node batch jobs (the most popular
// selection) in submission order.  Shape to reproduce: mean around
// 320 job-Mflops with a spread of ~200, and a moving average that shows
// no improvement over time despite the machine's code-development mission.
#include "bench/common.hpp"

#include "src/analysis/figures.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Figure 4: 16-node Job Performance Histories", "Figure 4");
  auto& sim = bench::paper_sim();
  const analysis::Fig4Series f = sim.fig4(16);

  util::Series jobs{.name = "16-node job rate", .xs = f.job_seq,
                    .ys = f.job_mflops, .glyph = '.'};
  util::Series ma{.name = "moving average", .xs = f.job_seq,
                  .ys = f.moving_avg, .glyph = 'o'};
  util::ChartOptions opts;
  opts.title = "Job performance rate (Mflops) vs batch job number";
  opts.x_label = "16-node batch job number (start order)";
  opts.y_label = "job Mflops";
  opts.height = 16;
  std::printf("%s\n", util::render_chart({jobs, ma}, opts).c_str());

  std::printf("  paper reference values:\n");
  bench::compare("16-node jobs analyzed", 1200,
                 static_cast<double>(f.job_mflops.size()));
  bench::compare("mean job rate (Mflops)", 320.0, f.mean);
  bench::compare("spread (std, paper quotes ~200)", 200.0, f.stddev);
  bench::compare("trend (Mflops per job; 'no trend')", 0.0, f.trend_slope);

  auto csv = bench::open_csv("p2sim_fig4.csv");
  csv << "job_seq,job_mflops,moving_avg\n";
  for (std::size_t i = 0; i < f.job_seq.size(); ++i) {
    csv << f.job_seq[i] << ',' << f.job_mflops[i] << ',' << f.moving_avg[i]
        << '\n';
  }
}

void BM_MakeFig4(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.fig4(16));
  }
}
BENCHMARK(BM_MakeFig4);

}  // namespace

P2SIM_BENCH_MAIN(report)
