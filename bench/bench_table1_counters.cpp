// Table 1: the NAS SP2 RS2HPM counter selection.
//
// This table is configuration, not measurement: the bench prints the full
// 22-counter selection as encoded in the library and verifies the layout
// (5 counters per hardware group), then times the monitor's event
// accumulation path — the per-slice cost every node simulation pays.
#include "bench/common.hpp"

#include "src/hpm/events.hpp"
#include "src/hpm/monitor.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Table 1: NAS SP2 RS2HPM Counters", "Table 1");
  std::printf("  %-22s %-9s %s\n", "Counter Label", "Slot", "Description");
  for (const auto& info : hpm::counter_table()) {
    std::printf("  %-22s %-9s %s\n", std::string(info.label).c_str(),
                std::string(info.slot).c_str(),
                std::string(info.description).c_str());
  }
  std::printf("\n  total counters: %zu (paper: 22, 32-bit, on the SCU chip)\n",
              hpm::counter_table().size());
}

void BM_MonitorAccumulate(benchmark::State& state) {
  hpm::PerformanceMonitor mon;
  power2::EventCounts ev;
  ev.cycles = 1'000'000;
  ev.fxu0_inst = 200'000;
  ev.fxu1_inst = 260'000;
  ev.fp_add0 = 90'000;
  ev.fp_fma0 = 50'000;
  ev.dma_read = 100;
  for (auto _ : state) {
    mon.accumulate(ev, hpm::PrivilegeMode::kUser);
    benchmark::DoNotOptimize(mon);
  }
}
BENCHMARK(BM_MonitorAccumulate);

void BM_CounterBankWrap(benchmark::State& state) {
  hpm::CounterBank bank;
  for (auto _ : state) {
    bank.add(hpm::HpmCounter::kUserCycles, 0x80000001u);
    benchmark::DoNotOptimize(bank.read(hpm::HpmCounter::kUserCycles));
  }
}
BENCHMARK(BM_CounterBankWrap);

}  // namespace

P2SIM_BENCH_MAIN(report)
