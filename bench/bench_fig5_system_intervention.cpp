// Figure 5: node performance vs system intervention.  Each point is one
// day: x = (system-mode FXU instructions)/(user-mode FXU instructions),
// y = Mflops per node.  Shape to reproduce: high system intervention only
// occurs on days of below-average performance (the paging diagnostic).
#include "bench/common.hpp"

#include "src/analysis/figures.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Figure 5: Node Performance vs System Intervention",
                "Figure 5");
  auto& sim = bench::paper_sim();
  const analysis::Fig5Series f = sim.fig5();

  util::Series pts{.name = "one point per day", .xs = f.sys_user_fxu_ratio,
                   .ys = f.mflops_per_node, .glyph = '*'};
  util::ChartOptions opts;
  opts.title = "Mflops per node vs (system FXU)/(user FXU)";
  opts.x_label = "system/user FXU instruction ratio";
  opts.y_label = "Mflops per node";
  std::printf("%s\n", util::render_chart({pts}, opts).c_str());

  // The paper's qualitative claim: high intervention days perform poorly.
  const double median_ratio = util::quantile(f.sys_user_fxu_ratio, 0.5);
  util::RunningStats low, high;
  for (std::size_t i = 0; i < f.sys_user_fxu_ratio.size(); ++i) {
    (f.sys_user_fxu_ratio[i] <= median_ratio ? low : high)
        .add(f.mflops_per_node[i]);
  }
  std::printf("  paper reference (qualitative: anti-correlation):\n");
  bench::compare("correlation(ratio, Mflops/node)", -0.5, f.correlation);
  bench::compare("Mflops/node on low-intervention days", 17.0, low.mean());
  bench::compare("Mflops/node on high-intervention days", 8.0, high.mean());

  auto csv = bench::open_csv("p2sim_fig5.csv");
  csv << "sys_user_fxu_ratio,mflops_per_node\n";
  for (std::size_t i = 0; i < f.sys_user_fxu_ratio.size(); ++i) {
    csv << f.sys_user_fxu_ratio[i] << ',' << f.mflops_per_node[i] << '\n';
  }
}

void BM_MakeFig5(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.days();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.fig5());
  }
}
BENCHMARK(BM_MakeFig5);

}  // namespace

P2SIM_BENCH_MAIN(report)
