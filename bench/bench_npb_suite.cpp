// The NAS Parallel Benchmarks under the simulated monitor.
//
// The paper leans on the NPB 2.1 report (Saphir, Woo & Yarrow 1996) for
// its tuned-code reference (BT in Table 4).  This bench runs the whole
// suite's kernel models through the POWER2 core and prints the per-code
// counter profile — the per-program view RS2HPM offered users who wrapped
// their runs in monitor commands.
#include "bench/common.hpp"

#include "src/power2/signature.hpp"
#include "src/workload/npb.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("NPB kernel suite on the POWER2 model",
                "the NPB 2.1 context behind Table 4");
  std::printf("  %-4s %8s %8s %8s %8s %8s %8s  %s\n", "code", "Mflops",
              "f/memref", "fma%", "dc-miss%", "tlb%", "ipc", "character");
  auto csv = bench::open_csv("p2sim_npb.csv");
  csv << "benchmark,mflops,flops_per_memref,fma_share,cache_miss_ratio,"
         "tlb_miss_ratio,ipc\n";
  for (workload::NpbBenchmark b : workload::npb_suite()) {
    power2::Power2Core core;
    const auto sig = power2::measure_signature(core, workload::npb_kernel(b));
    const double fxu = sig.fxu0_inst + sig.fxu1_inst;
    const double flops = sig.flops_per_cycle();
    const double fma_share =
        flops > 0 ? 2.0 * (sig.fp_fma0 + sig.fp_fma1) / flops : 0.0;
    const double dc = fxu > 0 ? sig.dcache_miss / fxu : 0.0;
    const double tlb = fxu > 0 ? sig.tlb_miss / fxu : 0.0;
    std::printf("  %-4s %8.1f %8.2f %7.0f%% %7.2f%% %7.3f%% %8.2f  %s\n",
                std::string(workload::npb_name(b)).c_str(), sig.mflops(),
                fxu > 0 ? flops / fxu : 0.0, 100.0 * fma_share, 100.0 * dc,
                100.0 * tlb, sig.instructions_per_cycle(),
                std::string(workload::npb_description(b)).c_str());
    csv << workload::npb_name(b) << ',' << sig.mflops() << ','
        << (fxu > 0 ? flops / fxu : 0.0) << ',' << fma_share << ',' << dc
        << ',' << tlb << ',' << sig.instructions_per_cycle() << '\n';
  }
  std::printf("\n  expected shape: EP compute-dense; BT/SP tuned solvers;\n"
              "  LU dependence-bound; MG bandwidth-bound; FT TLB-heavy\n"
              "  transposes; CG cache-hostile gathers.\n");
}

void BM_NpbKernel(benchmark::State& state) {
  const auto b = static_cast<workload::NpbBenchmark>(state.range(0));
  const power2::KernelDesc k = workload::npb_kernel(b);
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(core.run(k, 2048));
  }
}
BENCHMARK(BM_NpbKernel)->DenseRange(0, 6);

}  // namespace

P2SIM_BENCH_MAIN(report)
