#include "bench/common.hpp"

namespace p2sim::bench {

int run(int argc, char** argv, void (*report)()) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  report();
  std::printf("\n-- timings --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace p2sim::bench
