// Monitoring-plane overhead: scraping must not perturb the measurement.
//
// Runs the same fault-injected multi-threaded campaign twice — once with
// nobody watching and once while 8 client threads continuously scrape the
// live HTTP endpoints — and
// (a) hard-asserts bit-identity: the simulated-time telemetry exports
//     (metrics JSONL, Chrome trace) and the campaign's own results are
//     byte-for-byte identical with 0 and 8 scrapers.  A mismatch exits
//     nonzero: non-perturbation is the monitoring plane's contract, not a
//     statistic; and
// (b) reports the wall-clock perturbation (min-of-K walls, scraped vs
//     unwatched) against the < 2 % budget, written with the scrape volume
//     to BENCH_scrape_overhead.json.
// P2SIM_BENCH_DAYS overrides the campaign length (default 30) for quick
// local runs.
#include "bench/common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/loss.hpp"
#include "src/telemetry/service.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/http_client.hpp"
#include "src/util/http_server.hpp"
#include "src/workload/driver.hpp"

namespace {

using namespace p2sim;

constexpr int kScrapers = 8;
constexpr int kRepeats = 3;
// Per-client pause between scrapes.  100 ms across 8 clients is ~80
// requests/s — two orders of magnitude denser than a production scrape
// interval, yet small enough CPU that the < 2 % budget is meaningful even
// when the host has fewer cores than campaign workers + scrapers (there,
// every scrape cycle necessarily comes out of the campaign's slice).
constexpr auto kScrapePause = std::chrono::milliseconds(100);

std::int64_t bench_days() {
  if (const char* env = std::getenv("P2SIM_BENCH_DAYS")) {
    const std::int64_t days = std::atoll(env);
    if (days > 0) return days;
  }
  return 30;
}

workload::DriverConfig campaign_config() {
  core::Sp2Config cfg = core::Sp2Config::small(bench_days(), /*nodes=*/16);
  cfg.faults() = fault::FaultConfig::reference();
  cfg.driver.threads = 4;
  return cfg.driver;
}

/// Everything that must be bit-identical whether or not anyone scrapes:
/// the campaign's own records plus the simulated-time telemetry exports.
/// Doubles print as hex floats so the digest round-trips the bits.
std::string fingerprint(const workload::CampaignResult& result,
                        const telemetry::Session& session) {
  char buf[256];
  const analysis::MeasurementLoss loss = analysis::measure_loss(result);
  std::snprintf(buf, sizeof buf,
                "intervals=%zu jobs=%zu busy=%a faults=%lld clean=%lld\n",
                result.intervals.size(), result.jobs.size(),
                result.total_busy_node_seconds,
                static_cast<long long>(loss.injected.total_faults()),
                static_cast<long long>(loss.node_samples_clean));
  std::string fp = buf;
  fp += session.registry.jsonl();
  fp += session.tracer.chrome_trace_json(/*include_wall=*/false);
  return fp;
}

struct TimedRun {
  double wall_seconds = 0.0;
  std::uint64_t scrapes = 0;
  std::string fingerprint;
};

TimedRun run_campaign(int scrapers) {
  telemetry::Session session;
  telemetry::MonitorService svc(session);
  util::HttpServer server;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::vector<std::thread> clients;

  if (scrapers > 0) {
    util::HttpServerConfig scfg;
    scfg.observer = &svc;
    std::string error;
    if (!server.start(
            scfg,
            [&svc](const util::HttpRequest& req) { return svc.handle(req); },
            &error)) {
      std::fprintf(stderr, "server start failed: %s\n", error.c_str());
      std::exit(1);
    }
    const std::uint16_t port = server.port();
    for (int c = 0; c < scrapers; ++c) {
      clients.emplace_back([port, c, &stop, &scrapes] {
        const char* targets[] = {"/metrics", "/healthz", "/api/days",
                                 "/api/jobs?limit=8"};
        std::size_t i = static_cast<std::size_t>(c);
        while (!stop.load(std::memory_order_acquire)) {
          (void)util::http_get("127.0.0.1", port, targets[i++ % 4]);
          scrapes.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(kScrapePause);
        }
      });
    }
  }

  workload::DriverConfig cfg = campaign_config();
  if (scrapers > 0) cfg.observer = &svc;
  workload::CampaignResult result;
  TimedRun out;
  {
    telemetry::ScopedSession scoped(session);
    const auto t0 = std::chrono::steady_clock::now();
    result = workload::run_campaign(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  server.stop();
  out.scrapes = scrapes.load();
  out.fingerprint = fingerprint(result, session);
  return out;
}

void report() {
  bench::banner("Monitoring plane: scrape overhead and non-perturbation",
                "the always-on HPM collection premise of section 1");
  const std::int64_t days = bench_days();
  std::printf("  campaign: 16 nodes x %lld days, 4 worker threads, "
              "reference faults; %d scraper clients vs none\n",
              static_cast<long long>(days), kScrapers);

  double wall_bare = 1e300;
  double wall_scraped = 1e300;
  std::uint64_t scrapes = 0;
  std::string fp_bare;
  std::string fp_scraped;
  bool identical = true;
  for (int rep = 0; rep < kRepeats; ++rep) {
    const TimedRun bare = run_campaign(/*scrapers=*/0);
    const TimedRun scraped = run_campaign(kScrapers);
    wall_bare = std::min(wall_bare, bare.wall_seconds);
    wall_scraped = std::min(wall_scraped, scraped.wall_seconds);
    scrapes += scraped.scrapes;
    if (rep == 0) {
      fp_bare = bare.fingerprint;
      fp_scraped = scraped.fingerprint;
    }
    if (bare.fingerprint != fp_bare || scraped.fingerprint != fp_bare) {
      identical = false;
    }
    std::printf("  rep %d  unwatched %7.3f s   scraped %7.3f s   "
                "(%llu scrapes served)\n",
                rep, bare.wall_seconds, scraped.wall_seconds,
                static_cast<unsigned long long>(scraped.scrapes));
  }

  const double perturbation =
      (wall_scraped - wall_bare) / wall_bare * 100.0;
  std::printf("  min wall: unwatched %7.3f s, scraped %7.3f s  ->  "
              "perturbation %+.2f %% (budget < 2 %%)\n",
              wall_bare, wall_scraped, perturbation);
  std::printf("  exports 0 vs %d scrapers: %s\n", kScrapers,
              identical ? "bit-identical" : "MISMATCH");

  std::ofstream json = bench::open_csv("BENCH_scrape_overhead.json");
  json << "{\n  \"nodes\": 16,\n  \"days\": " << days
       << ",\n  \"worker_threads\": 4,\n  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"scrapers\": " << kScrapers
       << ",\n  \"repeats\": " << kRepeats
       << ",\n  \"scrapes_served\": " << scrapes
       << ",\n  \"wall_seconds_unwatched\": " << wall_bare
       << ",\n  \"wall_seconds_scraped\": " << wall_scraped
       << ",\n  \"perturbation_percent\": " << perturbation
       << ",\n  \"bit_identical\": " << (identical ? "true" : "false")
       << "\n}\n";

  if (!identical) {
    std::fflush(stdout);
    std::exit(1);  // scraping perturbed the measurement: contract broken
  }
}

// The scrape hot path in isolation: rendering the exposition text and
// taking a fold-consistent snapshot of a campaign-sized registry.
telemetry::Session& populated_session() {
  static telemetry::Session* session = [] {
    auto* s = new telemetry::Session();
    telemetry::ScopedSession scoped(*s);
    workload::DriverConfig cfg = campaign_config();
    cfg.days = 2;
    (void)workload::run_campaign(cfg);
    return s;
  }();
  return *session;
}

void BM_PrometheusRender(benchmark::State& state) {
  telemetry::Session& s = populated_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.registry.prometheus_text());
  }
}
BENCHMARK(BM_PrometheusRender);

void BM_ConsistentSnapshot(benchmark::State& state) {
  telemetry::Session& s = populated_session();
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::consistent_snapshot(s));
  }
}
BENCHMARK(BM_ConsistentSnapshot);

}  // namespace

P2SIM_BENCH_MAIN(report)
