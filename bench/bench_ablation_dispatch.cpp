// Ablation: FPU dispatch steering.
//
// The paper attributes the measured FPU0/FPU1 instruction ratio of 1.7 to
// the POWER2's FPU0-first steering interacting with dependence-limited
// ILP.  This bench replays representative kernels under the real policy,
// strict round-robin, and an idealized earliest-free policy, showing that
// (a) the asymmetry is a property of the steering, not the code, and
// (b) steering has only a second-order effect on delivered Mflops.
#include "bench/common.hpp"

#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;
using power2::FpuSteering;

const char* policy_name(FpuSteering p) {
  switch (p) {
    case FpuSteering::kFpu0First: return "fpu0-first (POWER2)";
    case FpuSteering::kRoundRobin: return "round-robin";
    case FpuSteering::kEarliestFree: return "earliest-free";
  }
  return "?";
}

void report() {
  bench::banner("Ablation: FPU dispatch steering policy",
                "section 5's FPU0/FPU1 = 1.7 discussion");
  struct Case {
    const char* name;
    power2::KernelDesc kernel;
  };
  const Case cases[] = {
      {"cfd (dependence-bound)", workload::cfd_multiblock(7, 0.25)},
      {"mdo (ILP-rich)", workload::mdo_ensemble(7)},
      {"blocked matmul", workload::blocked_matmul()},
  };

  std::printf("  %-26s %-22s %10s %10s\n", "kernel", "policy", "FPU0/FPU1",
              "Mflops");
  for (const Case& c : cases) {
    for (FpuSteering p : {FpuSteering::kFpu0First, FpuSteering::kRoundRobin,
                          FpuSteering::kEarliestFree}) {
      power2::CoreConfig cfg;
      cfg.fpu_steering = p;
      power2::Power2Core core(cfg);
      const auto sig = power2::measure_signature(core, c.kernel);
      const double ratio =
          sig.fpu1_inst > 0 ? sig.fpu0_inst / sig.fpu1_inst : 0.0;
      std::printf("  %-26s %-22s %10.2f %10.1f\n", c.name, policy_name(p),
                  ratio, sig.mflops());
    }
  }
  std::printf("\n  paper: measured NAS workload ratio ~1.7; tuned codes "
              "closer to 1.\n");
}

void BM_SteeringPolicy(benchmark::State& state) {
  const auto policy = static_cast<FpuSteering>(state.range(0));
  const power2::KernelDesc k = workload::cfd_multiblock(7, 0.25);
  power2::CoreConfig cfg;
  cfg.fpu_steering = policy;
  for (auto _ : state) {
    power2::Power2Core core(cfg);
    benchmark::DoNotOptimize(core.run(k));
  }
}
BENCHMARK(BM_SteeringPolicy)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

P2SIM_BENCH_MAIN(report)
