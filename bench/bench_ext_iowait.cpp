// Extension experiment: the counter selection the paper recommends.
//
// The paper's conclusion: "Other sites wishing to monitor their SP or SP2
// systems might consider selecting counter options which could also report
// I/O wait time in addition to CPU performance" — precisely because the
// NAS selection could not explain *why* days were slow ("the lack of
// obvious trends ... is difficult to analyze since the NAS 22-counter
// selection excluded performance reducing factors such as message-passing
// delays and I/O wait times", section 5).
//
// This bench reruns the identical nine-month campaign with the kWaitStates
// selection (the broken divide slots rededicated to comm-wait and I/O-wait
// cycle counts) and shows that the causal correlation the paper could not
// draw becomes measurable: daily Mflops/node vs daily wait share.
#include "bench/common.hpp"

#include "src/analysis/daily.hpp"
#include "src/util/stats.hpp"
#include "src/workload/driver.hpp"

namespace {

using namespace p2sim;

const workload::CampaignResult& wait_state_campaign() {
  static const workload::CampaignResult result = [] {
    workload::DriverConfig cfg;  // identical to the paper campaign...
    cfg.node.monitor.selection = hpm::CounterSelection::kWaitStates;
    return workload::run_campaign(cfg);
  }();
  return result;
}

void report() {
  bench::banner("Extension: the recommended wait-state counter selection",
                "the conclusions' future-work recommendation");
  const auto& campaign = wait_state_campaign();
  const auto days = analysis::daily_stats(campaign);

  // Correlate daily *efficiency* against the now-visible wait shares:
  // both sides are normalized by utilization, so "busy days have more of
  // everything" cannot masquerade as a correlation — we ask how much of
  // the time nodes were held they spent waiting, and what that cost.
  std::vector<double> mflops, comm_wait, io_wait, total_wait;
  for (const auto& d : days) {
    if (d.utilization < 0.15) continue;
    mflops.push_back(d.per_node.mflops_all / d.utilization);
    comm_wait.push_back(d.per_node.comm_wait_fraction / d.utilization);
    io_wait.push_back(d.per_node.io_wait_fraction / d.utilization);
    total_wait.push_back(comm_wait.back() + io_wait.back());
  }
  util::RunningStats cw, iw;
  for (double x : comm_wait) cw.add(x);
  for (double x : io_wait) iw.add(x);

  std::printf("  campaign rerun with FPU0[3]/FPU1[3] counting wait states\n");
  std::printf("  (same seed, same workload; %zu analyzable days)\n\n",
              mflops.size());
  std::printf("  mean comm-wait share of busy node time : %6.2f%%\n",
              100.0 * cw.mean());
  std::printf("  mean I/O-wait share of busy node time  : %6.2f%%\n",
              100.0 * iw.mean());
  std::printf("\n  correlations that were impossible under the NAS "
              "selection\n  (per busy-node-time, so load volume cancels):\n");
  std::printf("    corr(busy Mflops/node, comm-wait share) = %+.2f\n",
              util::pearson(mflops, comm_wait));
  std::printf("    corr(busy Mflops/node, I/O-wait share)  = %+.2f\n",
              util::pearson(mflops, io_wait));
  std::printf("    corr(busy Mflops/node, total wait)      = %+.2f\n",
              util::pearson(mflops, total_wait));
  std::printf("\n  the I/O-wait correlation isolates the paging pathology\n"
              "  directly, without the system/user FXU proxy of Figure 5.\n");

  auto csv = bench::open_csv("p2sim_ext_iowait.csv");
  csv << "mflops_per_node,comm_wait_fraction,io_wait_fraction\n";
  for (std::size_t i = 0; i < mflops.size(); ++i) {
    csv << mflops[i] << ',' << comm_wait[i] << ',' << io_wait[i] << '\n';
  }
}

void BM_WaitStateDailyStats(benchmark::State& state) {
  const auto& campaign = wait_state_campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::daily_stats(campaign));
  }
}
BENCHMARK(BM_WaitStateDailyStats);

}  // namespace

P2SIM_BENCH_MAIN(report)
