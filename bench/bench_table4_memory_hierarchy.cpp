// Table 4: hierarchical memory performance — the workload's cache/TLB
// miss ratios against the sequential-access reference pattern and the
// tuned NPB BT code.
#include "bench/common.hpp"

#include "src/analysis/tables.hpp"
#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Table 4: Hierarchical Memory Performance", "Table 4");
  auto& sim = bench::paper_sim();
  const analysis::Table4 t = sim.table4();
  std::printf("%s\n", analysis::format_table4(t).c_str());

  std::printf("  paper reference values:\n");
  bench::compare("NAS workload cache miss ratio (%)", 1.0,
                 100.0 * t.nas_workload.cache_miss_ratio);
  bench::compare("NAS workload TLB miss ratio (%)", 0.1,
                 100.0 * t.nas_workload.tlb_miss_ratio);
  bench::compare("NAS workload Mflops/CPU", 17.0,
                 t.nas_workload.mflops_per_cpu);
  bench::compare("sequential cache miss ratio (%)", 3.0,
                 100.0 * t.sequential.cache_miss_ratio);
  bench::compare("sequential TLB miss ratio (%)", 0.2,
                 100.0 * t.sequential.tlb_miss_ratio);
  bench::compare("NPB BT cache miss ratio (%)", 1.2,
                 100.0 * t.npb_bt.cache_miss_ratio);
  bench::compare("NPB BT TLB miss ratio (%)", 0.06,
                 100.0 * t.npb_bt.tlb_miss_ratio);
  bench::compare("NPB BT Mflops/CPU", 44.0, t.npb_bt.mflops_per_cpu);

  auto csv = bench::open_csv("p2sim_table4.csv");
  csv << "column,cache_miss_ratio,tlb_miss_ratio,mflops_per_cpu\n";
  for (const auto* col : {&t.nas_workload, &t.sequential, &t.npb_bt}) {
    csv << col->name << ',' << col->cache_miss_ratio << ','
        << col->tlb_miss_ratio << ',' << col->mflops_per_cpu << '\n';
  }
}

void BM_SequentialSweepSignature(benchmark::State& state) {
  const power2::KernelDesc k = workload::sequential_sweep();
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(power2::measure_signature(core, k));
  }
}
BENCHMARK(BM_SequentialSweepSignature);

void BM_NpbBtSignature(benchmark::State& state) {
  const power2::KernelDesc k = workload::npb_bt_like();
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(power2::measure_signature(core, k));
  }
}
BENCHMARK(BM_NpbBtSignature);

}  // namespace

P2SIM_BENCH_MAIN(report)
