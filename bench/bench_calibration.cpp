// In-text calibration numbers from section 5 that are not part of any
// table or figure: the 240 Mflops blocked matrix multiply and its
// flops/memref of 3.0, the workload's register-reuse ratio, the DMA
// message-traffic arithmetic, and the memory-delay-per-reference estimate.
#include "bench/common.hpp"

#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Section 5 calibration numbers", "section 5 (in-text)");
  auto& sim = bench::paper_sim();

  // --- single-processor matrix multiply ---
  const auto mm = sim.run_kernel(workload::blocked_matmul());
  const double mm_fpm = static_cast<double>(mm.counts.flops()) /
                        static_cast<double>(mm.counts.fxu_inst());
  std::printf("  blocked, unrolled, cache-resident matrix multiply:\n");
  bench::compare("matmul Mflops", 240.0, mm.mflops());
  bench::compare("matmul flops/memref", 3.0, mm_fpm);
  bench::compare("peak fraction",
                 240.0 / util::MachineClock::kPeakMflopsPerNode,
                 mm.mflops() / util::MachineClock::kPeakMflopsPerNode);

  // --- workload aggregates over the filtered days ---
  const auto t3 = sim.table3();
  double mflops = 0, fxu = 0, icu = 0, mips_fpu = 0, dmar = 0, dmaw = 0;
  double dmiss = 0, tmiss = 0;
  for (const auto& r : t3.rows) {
    if (r.label == "Mflops-All") mflops = r.avg;
    if (r.label == "Mips-Fixed Point Unit (Total)") fxu = r.avg;
    if (r.label == "Mips-Inst Cache Unit") icu = r.avg;
    if (r.label == "Mips-Floating Point (Total)") mips_fpu = r.avg;
    if (r.label == "DMA reads-MTransfer/S") dmar = r.avg;
    if (r.label == "DMA writes-MTransfer/S") dmaw = r.avg;
    if (r.label == "Data Cache Misses-Million/S") dmiss = r.avg;
    if (r.label == "TLB-Million/S") tmiss = r.avg;
  }
  std::printf("\n  workload aggregates (filtered-day sample):\n");
  bench::compare("flops per memory instruction", 0.63, mflops / fxu);
  const double branch_share = icu / (fxu + icu + mips_fpu);
  bench::compare("branch/ICU share of instructions", 0.07, branch_share);

  // Delay per memory reference: (8 * cache misses + 45 * TLB misses) over
  // FXU instructions, in cycles — the paper computes ~0.12.
  const double delay = (8.0 * dmiss + 45.0 * tmiss) / fxu;
  bench::compare("delay per memory reference (cycles)", 0.12, delay);

  // DMA traffic arithmetic: transfers/s x avg transfer size.
  const double avg_bytes =
      cluster::DmaConfig{}.avg_transfer_bytes();
  const double mbytes = (dmar + dmaw) * 1e6 * avg_bytes / 1e6;
  std::printf("\n  DMA / network:\n");
  bench::compare("message+disk DMA traffic (MB/s/node)", 1.3, mbytes);
  bench::compare("share of 34 MB/s node bandwidth", 0.04, mbytes / 34.0);

  // --- batch database aggregates ---
  const double tw = sim.campaign().jobs.time_weighted_mflops_per_node();
  std::printf("\n  batch job database:\n");
  bench::compare("time-weighted batch Mflops/node", 19.0, tw);
}

void BM_BlockedMatmulSimulation(benchmark::State& state) {
  const power2::KernelDesc k = workload::blocked_matmul();
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(core.run(k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k.measure_iters) *
                          static_cast<std::int64_t>(k.body.size()));
}
BENCHMARK(BM_BlockedMatmulSimulation);

void BM_CfdSignature(benchmark::State& state) {
  const power2::KernelDesc k = workload::cfd_multiblock(1, 0.3);
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(power2::measure_signature(core, k));
  }
}
BENCHMARK(BM_CfdSignature);

}  // namespace

P2SIM_BENCH_MAIN(report)
