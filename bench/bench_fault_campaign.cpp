// The fault-injected nine-month campaign.
//
// Bergeron's numbers came out of a production collection stack that itself
// failed: nodes crashed and rebooted, the 15-minute cron samples went
// missing, prologue/epilogue scripts died with their jobs.  This bench
// reruns the paper-scale campaign under the reference outage profile and
// shows that the degradation-tolerant pipeline still reproduces Table 2 —
// the headline Mflops under faults must land within 5% of the fault-free
// run — and that the measurement-loss report reconciles every injected
// fault against what the pipeline observed losing.
#include "bench/common.hpp"

#include <cmath>

#include "src/analysis/loss.hpp"
#include "src/core/registry.hpp"

namespace {

using namespace p2sim;

double row_avg(const analysis::Table2& t, const char* label) {
  for (const analysis::RateRow& r : t.rows) {
    if (r.label == label) return r.avg;
  }
  return 0.0;
}

core::Sp2Simulation& faulted_sim() {
  static core::Sp2Simulation sim = [] {
    core::Sp2Config cfg;
    cfg.faults() = fault::FaultConfig::reference();
    return core::Sp2Simulation(cfg);
  }();
  return sim;
}

void report() {
  bench::banner("Fault-injected campaign: Table 2 under the outage profile",
                "section 3's production collection losses");

  const analysis::Table2 clean = bench::paper_sim().table2();
  const analysis::Table2 faulted = faulted_sim().table2();
  const analysis::MeasurementLoss loss = faulted_sim().measurement_loss();

  std::printf("  %-20s %12s %12s %10s\n", "", "fault-free", "faulted",
              "delta");
  for (const char* label : {"Mips", "Mops", "Mflops"}) {
    const double a = row_avg(clean, label);
    const double b = row_avg(faulted, label);
    const double dev = a != 0.0 ? 100.0 * (b - a) / a : 0.0;
    std::printf("  %-20s %12.2f %12.2f %9.2f%%\n", label, a, b, dev);
  }
  std::printf("  %-20s %12d %12d\n", "sample days", clean.sample_days,
              faulted.sample_days);

  const double mflops_clean = row_avg(clean, "Mflops");
  const double mflops_faulted = row_avg(faulted, "Mflops");
  const double rel =
      mflops_clean != 0.0
          ? std::fabs(mflops_faulted - mflops_clean) / mflops_clean
          : 0.0;
  std::printf("\n  Mflops deviation under faults: %.2f%% (tolerance 5%%) %s\n",
              100.0 * rel, rel <= 0.05 ? "PASS" : "FAIL");

  std::printf("\n%s\n",
              analysis::format_measurement_loss(loss).c_str());
  if (!loss.reconciled()) {
    std::printf("  WARNING: loss report does not reconcile — the pipeline\n"
                "  absorbed or dropped a fault without accounting for it.\n");
  }
}

void BM_FaultScheduleQueries(benchmark::State& state) {
  const fault::FaultSchedule sched(fault::FaultConfig::reference());
  std::int64_t t = 0;
  for (auto _ : state) {
    bool hit = false;
    for (int n = 0; n < 144; ++n) {
      hit ^= sched.node_crashes(n, t);
      hit ^= sched.node_sample_lost(n, t);
    }
    benchmark::DoNotOptimize(hit);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * 288);
}
BENCHMARK(BM_FaultScheduleQueries);

void BM_MeasureLoss(benchmark::State& state) {
  const workload::CampaignResult& result = faulted_sim().campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::measure_loss(result));
  }
}
BENCHMARK(BM_MeasureLoss);

}  // namespace

P2SIM_BENCH_MAIN(report)
