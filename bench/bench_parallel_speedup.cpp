// Parallel campaign engine: speedup and the bit-identity guarantee.
//
// Runs the paper-scale campaign (144 nodes) at threads = 1, 2, 4 and 8
// with the columnar archive writer enabled and (a) hard-asserts that both
// Table 2 and the archive's bytes are identical across thread counts — a
// mismatch exits nonzero, because determinism is the engine's contract,
// not a statistic — and (b) reports wall seconds, speedup and the
// per-phase wall-clock breakdown (the serial fraction bounds achievable
// speedup by Amdahl's law; the `archive` row is the batched record-
// emission tail), written to BENCH_parallel_speedup.json.
//
// Scaling claims are host-gated: when hardware_concurrency is below the
// widest thread count, the bench still runs (the determinism assert is
// thread-count-independent) but refuses to publish speedup figures —
// oversubscribed wall times are scheduling noise, not scaling data.  The
// JSON carries "scaling_valid" so tools/check_perf_regression.py knows
// whether the numbers are gateable.  P2SIM_BENCH_DAYS overrides the
// campaign length (default 270) for quick local runs.
#include "bench/common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/tables.hpp"
#include "src/util/task_pool.hpp"
#include "src/workload/driver.hpp"

namespace {

using namespace p2sim;

constexpr int kMaxThreads = 8;

std::int64_t bench_days() {
  if (const char* env = std::getenv("P2SIM_BENCH_DAYS")) {
    const std::int64_t days = std::atoll(env);
    if (days > 0) return days;
  }
  return 270;
}

struct TimedRun {
  int threads = 0;
  double wall_seconds = 0.0;
  std::string table2;
  std::string archive;  ///< the columnar archive's bytes, thread-invariant
  workload::PhaseTimings timings;
};

/// Reads a file's bytes and removes it (the per-run archive scratch).
std::string slurp_and_remove(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  std::remove(path.c_str());
  return body.str();
}

TimedRun run_at(int threads, std::int64_t days) {
  TimedRun out;
  out.threads = threads;
  core::Sp2Config cfg;
  cfg.driver.days = days;
  cfg.threads() = threads;
  cfg.driver.phase_timings = &out.timings;
  // The archive writer stays on so the phase breakdown shows the batched
  // record-emission tail (the serial cost the columnar sink replaced the
  // per-line text path with) and so the byte-identity assert below covers
  // the archive alongside Table 2.
  const std::string archive_path =
      "bench_speedup_t" + std::to_string(threads) + ".p2a";
  cfg.archive() = archive_path;
  core::Sp2Simulation sim(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  sim.campaign();  // the driver runs here, on `threads` workers
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.table2 = analysis::format_table2(sim.table2());
  out.archive = slurp_and_remove(archive_path);
  return out;
}

double serial_fraction(const workload::PhaseTimings& t) {
  const std::int64_t total = t.total_us();
  return total > 0 ? static_cast<double>(t.serial_us()) /
                         static_cast<double>(total)
                   : 0.0;
}

void report() {
  bench::banner("Parallel campaign engine: speedup at bit-identical output",
                "the 144-node campaign of section 2");
  const std::int64_t days = bench_days();
  const unsigned hw = std::thread::hardware_concurrency();
  const bool scaling_valid = hw >= static_cast<unsigned>(kMaxThreads);
  std::printf("  campaign: 144 nodes x %lld days; host has %u hardware "
              "thread(s)\n",
              static_cast<long long>(days), hw);
  if (!scaling_valid) {
    std::printf("  !! host has %u hardware thread(s) < %d: speedup figures "
                "withheld (wall times shown for reference only; the "
                "byte-identity assert still gates)\n",
                hw, kMaxThreads);
  }

  std::vector<TimedRun> runs;
  for (int threads : {1, 2, 4, 8}) {
    runs.push_back(run_at(threads, days));
    const TimedRun& r = runs.back();
    if (scaling_valid) {
      std::printf("  threads=%d  wall %8.2f s  speedup %5.2fx  serial "
                  "fraction %5.1f%%\n",
                  r.threads, r.wall_seconds,
                  runs.front().wall_seconds / r.wall_seconds,
                  100.0 * serial_fraction(r.timings));
    } else {
      std::printf("  threads=%d  wall %8.2f s  serial fraction %5.1f%%\n",
                  r.threads, r.wall_seconds,
                  100.0 * serial_fraction(r.timings));
    }
  }

  // Per-phase wall-clock breakdown: one row per kPhases entry, one column
  // per thread count.  The serial rows are the Amdahl bound; the two
  // parallel rows (measure, lane-pipeline) are where workers help.
  std::printf("  phase breakdown (wall ms):\n");
  std::printf("    %-14s %-8s", "phase", "kind");
  for (const TimedRun& r : runs) std::printf("  t=%-7d", r.threads);
  std::printf("\n");
  for (std::size_t i = 0; i < workload::WorkloadDriver::kPhases.size();
       ++i) {
    const auto& info = workload::WorkloadDriver::kPhases[i];
    std::printf("    %-14s %-8s", info.name,
                info.parallel ? "parallel" : "serial");
    for (const TimedRun& r : runs) {
      std::printf("  %8.1f",
                  static_cast<double>(r.timings.wall_us[i]) / 1000.0);
    }
    std::printf("\n");
  }

  bool identical = true;
  for (const TimedRun& r : runs) {
    if (r.table2 != runs.front().table2) {
      identical = false;
      std::printf("  !! Table 2 at threads=%d differs from threads=1\n",
                  r.threads);
    }
    if (r.archive != runs.front().archive) {
      identical = false;
      std::printf("  !! archive bytes at threads=%d differ from threads=1\n",
                  r.threads);
    }
  }
  std::printf("  Table 2 + archive bytes across thread counts: %s\n",
              identical ? "byte-identical" : "MISMATCH");

  std::ofstream json = bench::open_csv("BENCH_parallel_speedup.json");
  json << "{\n  \"nodes\": 144,\n  \"days\": " << days
       << ",\n  \"hardware_concurrency\": " << hw
       << ",\n  \"max_threads\": " << kMaxThreads
       << ",\n  \"scaling_valid\": " << (scaling_valid ? "true" : "false");
  if (!scaling_valid) {
    json << ",\n  \"scaling_refusal\": \"host has " << hw
         << " hardware thread(s) < " << kMaxThreads
         << "; speedup figures withheld\"";
  }
  json << ",\n  \"table2_identical\": " << (identical ? "true" : "false")
       << ",\n  \"archive_bytes\": " << runs.front().archive.size()
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TimedRun& r = runs[i];
    json << "    {\"threads\": " << r.threads
         << ", \"wall_seconds\": " << r.wall_seconds;
    if (scaling_valid) {
      json << ", \"speedup\": "
           << runs.front().wall_seconds / r.wall_seconds;
    }
    json << ", \"serial_fraction\": " << serial_fraction(r.timings)
         << ", \"horizons\": " << r.timings.horizons
         << ", \"intervals\": " << r.timings.intervals
         << ",\n     \"phases\": [";
    for (std::size_t p = 0; p < workload::WorkloadDriver::kPhases.size();
         ++p) {
      const auto& info = workload::WorkloadDriver::kPhases[p];
      json << (p == 0 ? "" : ", ") << "{\"name\": \"" << info.name
           << "\", \"parallel\": " << (info.parallel ? "true" : "false")
           << ", \"wall_us\": " << r.timings.wall_us[p] << "}";
    }
    json << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!identical) {
    std::fflush(stdout);
    std::exit(1);  // the determinism contract is the point of the engine
  }
}

// Dispatch overhead of one pool round-trip (the driver pays this once per
// pass): publish, run 144 trivial shards, barrier.
void BM_TaskPoolDispatch(benchmark::State& state) {
  util::TaskPool pool(static_cast<int>(state.range(0)));
  std::vector<double> sink(144, 0.0);
  for (auto _ : state) {
    pool.run(sink.size(), [&sink](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sink[i] += 1.0;
    });
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_TaskPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

P2SIM_BENCH_MAIN(report)
