// Parallel campaign engine: speedup and the bit-identity guarantee.
//
// Runs the paper-scale campaign (144 nodes) at threads = 1, 2 and 4 and
// (a) hard-asserts that Table 2 is byte-identical across thread counts —
// a mismatch exits nonzero, because determinism is the engine's contract,
// not a statistic — and (b) reports wall seconds and speedup per thread
// count, written to BENCH_parallel_speedup.json alongside the host's
// hardware concurrency so a single-core CI runner's numbers read as what
// they are.  P2SIM_BENCH_DAYS overrides the campaign length (default 270)
// for quick local runs.
#include "bench/common.hpp"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/tables.hpp"
#include "src/util/task_pool.hpp"

namespace {

using namespace p2sim;

std::int64_t bench_days() {
  if (const char* env = std::getenv("P2SIM_BENCH_DAYS")) {
    const std::int64_t days = std::atoll(env);
    if (days > 0) return days;
  }
  return 270;
}

struct TimedRun {
  int threads = 0;
  double wall_seconds = 0.0;
  std::string table2;
};

TimedRun run_at(int threads, std::int64_t days) {
  core::Sp2Config cfg;
  cfg.driver.days = days;
  cfg.threads() = threads;
  core::Sp2Simulation sim(cfg);
  TimedRun out;
  out.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  sim.campaign();  // the driver runs here, on `threads` workers
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.table2 = analysis::format_table2(sim.table2());
  return out;
}

void report() {
  bench::banner("Parallel campaign engine: speedup at bit-identical output",
                "the 144-node campaign of section 2");
  const std::int64_t days = bench_days();
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  campaign: 144 nodes x %lld days; host has %u hardware "
              "thread(s)\n",
              static_cast<long long>(days), hw);

  std::vector<TimedRun> runs;
  for (int threads : {1, 2, 4}) {
    runs.push_back(run_at(threads, days));
    const TimedRun& r = runs.back();
    std::printf("  threads=%d  wall %8.2f s  speedup %5.2fx\n", r.threads,
                r.wall_seconds, runs.front().wall_seconds / r.wall_seconds);
  }

  bool identical = true;
  for (const TimedRun& r : runs) {
    if (r.table2 != runs.front().table2) {
      identical = false;
      std::printf("  !! Table 2 at threads=%d differs from threads=1\n",
                  r.threads);
    }
  }
  std::printf("  Table 2 across thread counts: %s\n",
              identical ? "byte-identical" : "MISMATCH");

  std::ofstream json = bench::open_csv("BENCH_parallel_speedup.json");
  json << "{\n  \"nodes\": 144,\n  \"days\": " << days
       << ",\n  \"hardware_concurrency\": " << hw
       << ",\n  \"table2_identical\": " << (identical ? "true" : "false")
       << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "    {\"threads\": " << runs[i].threads << ", \"wall_seconds\": "
         << runs[i].wall_seconds << ", \"speedup\": "
         << runs.front().wall_seconds / runs[i].wall_seconds << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  if (!identical) {
    std::fflush(stdout);
    std::exit(1);  // the determinism contract is the point of the engine
  }
}

// Dispatch overhead of one pool round-trip (the driver pays this once per
// interval): publish, run 144 trivial shards, barrier.
void BM_TaskPoolDispatch(benchmark::State& state) {
  util::TaskPool pool(static_cast<int>(state.range(0)));
  std::vector<double> sink(144, 0.0);
  for (auto _ : state) {
    pool.run(sink.size(), [&sink](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sink[i] += 1.0;
    });
    benchmark::DoNotOptimize(sink.data());
  }
}
BENCHMARK(BM_TaskPoolDispatch)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

P2SIM_BENCH_MAIN(report)
