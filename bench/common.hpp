// Shared plumbing for the bench binaries.
//
// Every table/figure bench runs the *paper-scale* campaign (144 nodes, 270
// days) exactly once per process, prints its reproduction next to the
// paper's reported values, dumps the underlying series as CSV, and then
// runs google-benchmark timings of the analysis/simulation kernels behind
// it.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/simulation.hpp"

namespace p2sim::bench {

/// The paper-scale simulation, constructed on first use and shared by all
/// benchmarks in the binary.
inline core::Sp2Simulation& paper_sim() {
  static core::Sp2Simulation sim{core::Sp2Config{}};
  return sim;
}

/// "paper X.X / measured Y.Y" comparison line.
inline void compare(const char* what, double paper, double measured,
                    const char* unit = "") {
  std::printf("  %-46s paper %10.3f   measured %10.3f %s\n", what, paper,
              measured, unit);
}

/// Opens a CSV file next to the binary's working directory.
inline std::ofstream open_csv(const std::string& name) {
  std::ofstream out(name);
  if (out) std::printf("  [series written to %s]\n", name.c_str());
  return out;
}

/// Prints the standard bench banner.
inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n  (reproduces %s of Bergeron, SC'98)\n", experiment,
              paper_ref);
  std::printf("==============================================================\n");
}

/// Custom main body: print the reproduction, then run timings.
int run(int argc, char** argv, void (*report)());

}  // namespace p2sim::bench

#define P2SIM_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                       \
    return p2sim::bench::run(argc, argv, (report_fn));    \
  }
