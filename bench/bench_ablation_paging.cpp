// Ablation: memory oversubscription and the Figure 5 mechanism.
//
// Sweeps a node's per-node memory demand through the 128 MB capacity and
// reports the paging model's fault rate, the user-work slowdown, the
// resulting system/user FXU instruction ratio and the delivered Mflops —
// the causal chain the paper infers from HPM data ("evidently these
// processes were paging data").
#include "bench/common.hpp"

#include "src/cluster/node.hpp"
#include "src/cluster/paging.hpp"
#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Ablation: memory oversubscription -> paging collapse",
                "section 6 / Figure 5 mechanism");
  power2::Power2Core core;
  const auto sig =
      power2::measure_signature(core, workload::cfd_multiblock(13, 0.3));
  const cluster::PagingModel paging;

  std::printf("  %-12s %10s %10s %12s %10s\n", "demand (MB)", "faults/s",
              "slowdown", "sysFXU/usrFXU", "Mflops");
  for (double mb : {64.0, 120.0, 128.0, 140.0, 160.0, 192.0, 224.0, 256.0,
                    320.0}) {
    const cluster::PagingState pg = paging.evaluate(mb);
    cluster::Node node(0);
    cluster::ActivityProfile act;
    act.compute_fraction = pg.user_slowdown;
    act.page_faults_per_s = pg.fault_rate;
    node.advance(900.0, &sig, act);
    const auto& t = node.totals();
    const double user_fxu = static_cast<double>(
        t.user_at(hpm::HpmCounter::kUserFxu0) +
        t.user_at(hpm::HpmCounter::kUserFxu1));
    const double sys_fxu = static_cast<double>(
        t.system_at(hpm::HpmCounter::kUserFxu0) +
        t.system_at(hpm::HpmCounter::kUserFxu1));
    const double mflops = sig.mflops() * pg.user_slowdown;
    std::printf("  %-12.0f %10.1f %10.2f %12.2f %10.1f\n", mb, pg.fault_rate,
                pg.user_slowdown, user_fxu > 0 ? sys_fxu / user_fxu : 0.0,
                mflops);
  }
  std::printf("\n  paper: jobs beyond 64 nodes showed system-mode FXU/ICU\n"
              "  counts exceeding user mode; the cause was data paging from\n"
              "  node memory oversubscription.\n");
}

void BM_PagingNodeAdvance(benchmark::State& state) {
  power2::Power2Core core;
  const auto sig =
      power2::measure_signature(core, workload::cfd_multiblock(13, 0.3));
  const cluster::PagingModel paging;
  const cluster::PagingState pg = paging.evaluate(192.0);
  cluster::Node node(0);
  cluster::ActivityProfile act;
  act.compute_fraction = pg.user_slowdown;
  act.page_faults_per_s = pg.fault_rate;
  for (auto _ : state) {
    node.advance(900.0, &sig, act);
    benchmark::DoNotOptimize(node.totals());
  }
}
BENCHMARK(BM_PagingNodeAdvance);

void BM_PagingModelEvaluate(benchmark::State& state) {
  const cluster::PagingModel paging;
  double mb = 64.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(paging.evaluate(mb));
    mb = mb < 320.0 ? mb + 1.0 : 64.0;
  }
}
BENCHMARK(BM_PagingModelEvaluate);

}  // namespace

P2SIM_BENCH_MAIN(report)
