// Ablation: matrix-multiply blocking.
//
// The paper's 240 Mflops calibration peak depends on the multiply being
// "fitting entirely in the 256 kB cache and fully blocked with the central
// loop unrolled".  This bench sweeps the block working-set size through
// the cache boundary and compares against the unblocked ijk baseline,
// reproducing the blocked-vs-naive cliff.
#include "bench/common.hpp"

#include "src/power2/kernel_desc.hpp"
#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;

// The blocked_matmul loop body with a parameterized panel working set.
power2::KernelDesc matmul_with_blocks(std::uint64_t panel_bytes) {
  power2::KernelBuilder b("matmul_blocks_" + std::to_string(panel_bytes));
  const auto a_panel = b.stream(panel_bytes, 16);
  const auto b_panel = b.stream(panel_bytes, 16);
  const auto c_block = b.stream(panel_bytes / 2, 16);
  std::int16_t fma_idx[16];
  int f = 0;
  for (int g = 0; g < 4; ++g) {
    b.load(a_panel, true);
    b.load(b_panel, true);
    for (int k = 0; k < 4; ++k) {
      fma_idx[f] = b.fma(f >= 4 ? fma_idx[f - 4] : power2::kNoDep);
      ++f;
    }
  }
  b.load(c_block, true);
  b.store(c_block, true);
  b.alu();
  // Large panels need a long warmup to reach the streaming steady state.
  return b.warmup(panel_bytes / 64 + 1024).measure(8192).build();
}

void report() {
  bench::banner("Ablation: matmul blocking vs cache capacity",
                "section 5's 240 Mflops calibration");
  std::printf("  %-28s %10s %12s %12s\n", "block working set", "Mflops",
              "miss ratio", "flops/memref");
  for (std::uint64_t kb : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
    power2::Power2Core core;
    const auto sig = power2::measure_signature(
        core, matmul_with_blocks(kb * 1024ull / 2));
    const double fxu = sig.fxu0_inst + sig.fxu1_inst;
    char label[64];
    std::snprintf(label, sizeof(label), "~%lu kB total",
                  static_cast<unsigned long>(kb));
    std::printf("  %-28s %10.1f %11.2f%% %12.2f\n", label, sig.mflops(),
                fxu > 0 ? 100.0 * sig.dcache_miss / fxu : 0.0,
                fxu > 0 ? sig.flops_per_cycle() / fxu : 0.0);
  }

  power2::Power2Core core;
  const auto naive = power2::measure_signature(core, workload::naive_matmul());
  std::printf("\n  unblocked ijk baseline: %.1f Mflops (the cliff the\n"
              "  paper's users fall off when codes are not restructured)\n",
              naive.mflops());
  bench::compare("blocked matmul (in-cache)", 240.0,
                 power2::measure_signature(
                     core, matmul_with_blocks(64 * 1024)).mflops());
}

void BM_MatmulBlockSize(benchmark::State& state) {
  const auto panel = static_cast<std::uint64_t>(state.range(0)) * 1024ull;
  const power2::KernelDesc k = matmul_with_blocks(panel);
  for (auto _ : state) {
    power2::Power2Core core;
    benchmark::DoNotOptimize(core.run(k, 2048));
  }
}
BENCHMARK(BM_MatmulBlockSize)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

P2SIM_BENCH_MAIN(report)
