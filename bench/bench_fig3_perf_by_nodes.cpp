// Figure 3: batch-job performance per node vs nodes requested.  Shape to
// reproduce: the per-node rate is sustained up to 64 nodes (peaking near
// 40 Mflops/node) and collapses sharply beyond.
#include "bench/common.hpp"

#include "src/analysis/figures.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Figure 3: Batch Job Performance vs Nodes Requested",
                "Figure 3");
  auto& sim = bench::paper_sim();
  const analysis::Fig3Series f = sim.fig3();

  util::Series mean{.name = "mean Mflops/node", .xs = {}, .ys = {},
                    .glyph = 'o'};
  util::Series best{.name = "best job in bin", .xs = {}, .ys = {},
                    .glyph = '+'};
  for (const auto& b : f.bins) {
    mean.xs.push_back(b.nodes);
    mean.ys.push_back(b.mean_mflops_per_node);
    best.xs.push_back(b.nodes);
    best.ys.push_back(b.max_mflops_per_node);
  }
  util::ChartOptions opts;
  opts.title = "Performance (Mflops per node) vs nodes requested";
  opts.x_label = "nodes requested";
  opts.y_label = "Mflops/node";
  std::printf("%s\n", util::render_chart({mean, best}, opts).c_str());

  double peak = 0.0;
  for (const auto& b : f.bins) {
    peak = std::max(peak, b.max_mflops_per_node);
  }
  std::printf("  paper reference values:\n");
  bench::compare("peak per-node batch rate (Mflops)", 40.0, peak);
  bench::compare("mean Mflops/node at <= 64 nodes", 20.0, f.mean_upto_64);
  bench::compare("mean Mflops/node beyond 64 ('sharp decrease')", 8.0,
                 f.mean_beyond_64);

  auto csv = bench::open_csv("p2sim_fig3.csv");
  csv << "nodes,mean_mflops_per_node,max_mflops_per_node,jobs\n";
  for (const auto& b : f.bins) {
    csv << b.nodes << ',' << b.mean_mflops_per_node << ','
        << b.max_mflops_per_node << ',' << b.jobs << '\n';
  }
}

void BM_MakeFig3(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.fig3());
  }
}
BENCHMARK(BM_MakeFig3);

}  // namespace

P2SIM_BENCH_MAIN(report)
