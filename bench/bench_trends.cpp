// Section 5's "no obvious trends" analysis, quantified.
//
// The paper could not find the correlations it expected (more fma ->
// faster; more misses -> slower) in the day-level workload data, and
// blamed the counter selection's blindness to wait states.  This bench
// computes those correlations on the simulated campaign — where we know
// the ground truth — and shows the same effect: population mixing and
// demand variance wash out the microarchitectural signals at day
// granularity, while the system/user FXU ratio (paging) still shows.
#include "bench/common.hpp"

#include "src/analysis/trends.hpp"
#include "src/analysis/users.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Day-level trend & correlation analysis",
                "section 5's 'no obvious trends' discussion");
  auto& sim = bench::paper_sim();
  const analysis::TrendReport t = analysis::analyze_trends(sim.days());
  std::printf("%s\n", analysis::format_trends(t).c_str());

  const auto* fma = t.find("fma_flop_fraction");
  const auto* tlb = t.find("tlb_miss_ratio");
  const auto* sys = t.find("system_user_fxu_ratio");
  std::printf("  the paper's expectations vs the day-level data:\n");
  if (fma != nullptr) {
    std::printf("    'greater fma fraction -> higher performance': "
                "corr = %+.2f (paper: no such trend visible)\n",
                fma->vs_mflops);
  }
  if (tlb != nullptr) {
    std::printf("    'higher TLB miss ratio -> lower performance': "
                "corr = %+.2f (paper: not visible either)\n",
                tlb->vs_mflops);
  }
  if (sys != nullptr) {
    std::printf("    system intervention (the Figure 5 signal):    "
                "corr = %+.2f\n", sys->vs_mflops);
  }

  // Per-user accounting: the system-personnel view.
  const auto users = analysis::user_stats(sim.campaign().jobs);
  std::printf("\n  per-user accounting (%zu users with analyzed jobs):\n",
              users.size());
  std::printf("    top 10 users hold %.0f%% of node-hours\n",
              100.0 * analysis::top_n_node_hour_share(users, 10));
  std::printf("    %-8s %6s %12s %14s %10s\n", "user", "jobs", "node-hours",
              "Mflops/node", "best");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, users.size()); ++i) {
    const auto& u = users[i];
    std::printf("    %-8d %6d %12.0f %14.1f %10.1f\n", u.user_id, u.jobs,
                u.node_hours, u.mflops_per_node, u.best_mflops_per_node);
  }

  auto csv = bench::open_csv("p2sim_trends.csv");
  csv << "metric,mean,corr_vs_mflops,slope_per_day\n";
  for (const auto& m : t.metrics) {
    csv << m.metric << ',' << m.mean << ',' << m.vs_mflops << ','
        << m.slope_per_day << '\n';
  }
}

void BM_AnalyzeTrends(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  const auto& days = sim.days();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_trends(days));
  }
}
BENCHMARK(BM_AnalyzeTrends);

void BM_UserStats(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  const auto& jobs = sim.campaign().jobs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::user_stats(jobs));
  }
}
BENCHMARK(BM_UserStats);

}  // namespace

P2SIM_BENCH_MAIN(report)
