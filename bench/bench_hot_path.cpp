// Hot-path overhaul: closed-form accrual vs the slice-by-slice reference
// oracle, lock-free signature lookup, and the end-to-end campaign.
//
// Reports (a) interval-engine throughput — Node::advance on the paper's
// 15-minute busy intervals — for the reference and batched paths, with a
// hard >= 5x gate; (b) warm signature-cache lookup latency; and (c) full
// paper-scale campaign wall time at 1/2/4/8 threads on the fast path next
// to the serial reference oracle, hard-asserting that Table 2 is
// byte-identical between the two accrual paths at every thread count.
// Violating either gate exits nonzero: the fast path's entire claim is
// "same bytes, less time".  Results land in BENCH_hot_path.json;
// P2SIM_BENCH_DAYS overrides the campaign length (default 270).
#include "bench/common.hpp"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/tables.hpp"
#include "src/cluster/node.hpp"
#include "src/power2/signature.hpp"

namespace {

using namespace p2sim;

std::int64_t bench_days() {
  if (const char* env = std::getenv("P2SIM_BENCH_DAYS")) {
    const std::int64_t days = std::atoll(env);
    if (days > 0) return days;
  }
  return 270;
}

power2::KernelDesc bench_kernel(const char* name, std::size_t bytes,
                                int stride) {
  power2::KernelBuilder b(name);
  const auto s = b.stream(bytes, stride);
  const auto l = b.load(s);
  b.fma(l);
  b.fp_add();
  return b.warmup(64).measure(2048).build();
}

cluster::ActivityProfile busy_profile() {
  cluster::ActivityProfile act;
  act.compute_fraction = 0.7;
  act.comm_wait_fraction = 0.2;
  act.io_wait_fraction = 0.05;
  act.comm_send_bytes_per_s = 1.2e6;
  act.comm_recv_bytes_per_s = 1.2e6;
  act.disk_read_bytes_per_s = 8e3;
  act.disk_write_bytes_per_s = 15e3;
  act.page_faults_per_s = 1.0;
  return act;
}

/// Intervals per second for one accrual path: repeated 900 s busy advances
/// (the paper's collection quantum) under a measured signature.
double intervals_per_second(bool reference, const power2::EventSignature& sig,
                            double min_seconds = 0.3) {
  cluster::NodeConfig cfg;
  cfg.reference_accrual = reference;
  cluster::Node node(1, cfg);
  const cluster::ActivityProfile act = busy_profile();
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t intervals = 0;
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 512; ++i) node.advance(900.0, &sig, act);
    intervals += 512;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
  } while (elapsed < min_seconds);
  return static_cast<double>(intervals) / elapsed;
}

/// Warm-snapshot lookup latency in nanoseconds per get().
double snapshot_lookup_ns() {
  power2::SignatureCache cache;
  std::vector<power2::KernelDesc> kernels;
  for (int i = 0; i < 8; ++i) {
    kernels.push_back(bench_kernel(("lookup_" + std::to_string(i)).c_str(),
                                   std::size_t{1} << (14 + i % 4), 8 + i));
  }
  cache.warm(kernels);
  const int rounds = 200000;
  double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    sink += cache.get(kernels[static_cast<std::size_t>(r) % kernels.size()])
                .cycles_per_iter;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  benchmark::DoNotOptimize(sink);
  return elapsed * 1e9 / rounds;
}

struct CampaignRun {
  std::string label;
  int threads = 0;
  double wall_seconds = 0.0;
  std::string table2;
};

CampaignRun run_campaign_at(const char* label, int threads, bool reference,
                            std::int64_t days) {
  core::Sp2Config cfg;
  cfg.driver.days = days;
  cfg.driver.node.reference_accrual = reference;
  cfg.threads() = threads;
  core::Sp2Simulation sim(cfg);
  CampaignRun out;
  out.label = label;
  out.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  sim.campaign();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.table2 = analysis::format_table2(sim.table2());
  return out;
}

void report() {
  bench::banner("Interval-engine hot path: closed-form accrual + SoA scaling",
                "the measurement machinery of sections 2-3");
  const std::int64_t days = bench_days();
  const unsigned hw = std::thread::hardware_concurrency();

  // (a) Interval-engine throughput, batched vs reference oracle.
  power2::Power2Core core;
  const power2::EventSignature sig =
      power2::measure_signature(core, bench_kernel("hot_path", 1 << 20, 8));
  const double ref_ips = intervals_per_second(/*reference=*/true, sig);
  const double fast_ips = intervals_per_second(/*reference=*/false, sig);
  const double speedup = fast_ips / ref_ips;
  // 900 s intervals decompose into 50 s slices: 18 per interval.
  const double slices_per_interval = 18.0;
  std::printf("  interval engine (900 s busy intervals):\n");
  std::printf("    reference  %12.0f intervals/s  (%12.0f slices/s)\n",
              ref_ips, ref_ips * slices_per_interval);
  std::printf("    batched    %12.0f intervals/s  (%12.0f slices/s eq.)\n",
              fast_ips, fast_ips * slices_per_interval);
  std::printf("    speedup    %12.2fx  (gate: >= 5x)\n", speedup);

  // (b) Warm signature lookup.
  const double lookup_ns = snapshot_lookup_ns();
  std::printf("  signature lookup (warm snapshot): %8.1f ns\n", lookup_ns);

  // (c) Full campaign: fast path across thread counts vs serial reference.
  // Multi-thread speedup figures are only published when the host really
  // has that many cores; oversubscribed wall times are scheduling noise,
  // not scaling data.
  const bool scaling_valid = hw >= 8u;
  std::printf("  campaign: 144 nodes x %lld days; host has %u hardware "
              "thread(s)\n",
              static_cast<long long>(days), hw);
  if (!scaling_valid) {
    std::printf("    !! host has %u hardware thread(s) < 8: multi-thread "
                "speedup figures withheld\n",
                hw);
  }
  const CampaignRun ref_run =
      run_campaign_at("reference", 1, /*reference=*/true, days);
  std::printf("    reference  threads=1  wall %8.2f s\n", ref_run.wall_seconds);
  std::vector<CampaignRun> runs;
  for (int threads : {1, 2, 4, 8}) {
    runs.push_back(run_campaign_at("fast", threads, /*reference=*/false, days));
    const CampaignRun& r = runs.back();
    if (r.threads == 1 || scaling_valid) {
      std::printf("    fast       threads=%d  wall %8.2f s  vs reference "
                  "%5.2fx\n",
                  r.threads, r.wall_seconds,
                  ref_run.wall_seconds / r.wall_seconds);
    } else {
      std::printf("    fast       threads=%d  wall %8.2f s\n", r.threads,
                  r.wall_seconds);
    }
  }

  bool identical = true;
  for (const CampaignRun& r : runs) {
    if (r.table2 != ref_run.table2) {
      identical = false;
      std::printf("  !! Table 2 (fast, threads=%d) differs from reference\n",
                  r.threads);
    }
  }
  std::printf("  Table 2 fast vs reference: %s\n",
              identical ? "byte-identical" : "MISMATCH");

  std::ofstream json = bench::open_csv("BENCH_hot_path.json");
  json << "{\n  \"nodes\": 144,\n  \"days\": " << days
       << ",\n  \"hardware_concurrency\": " << hw
       << ",\n  \"interval_engine\": {\n"
       << "    \"reference_intervals_per_s\": " << ref_ips << ",\n"
       << "    \"fast_intervals_per_s\": " << fast_ips << ",\n"
       << "    \"reference_slices_per_s\": " << ref_ips * slices_per_interval
       << ",\n"
       << "    \"speedup\": " << speedup << "\n  },\n"
       << "  \"signature_lookup_ns\": " << lookup_ns << ",\n"
       << "  \"table2_identical\": " << (identical ? "true" : "false")
       << ",\n  \"scaling_valid\": " << (scaling_valid ? "true" : "false");
  if (!scaling_valid) {
    // Refusal discipline: say out loud why the wider runs carry no
    // speedup figure, so downstream tools never mistake withheld data
    // for missing data.
    json << ",\n  \"scaling_refusal\": \"host has " << hw
         << " hardware thread(s) < 8; multi-thread speedup figures "
            "withheld\"";
  }
  json << ",\n  \"campaign\": {\n    \"reference_wall_seconds\": "
       << ref_run.wall_seconds << ",\n    \"fast_runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    json << "      {\"threads\": " << runs[i].threads
         << ", \"wall_seconds\": " << runs[i].wall_seconds;
    if (runs[i].threads == 1 || scaling_valid) {
      // threads=1 is an algorithmic (fast vs reference) comparison and
      // stays valid on any host; wider runs only claim speedup when the
      // cores exist.
      json << ", \"speedup_vs_reference\": "
           << ref_run.wall_seconds / runs[i].wall_seconds;
    }
    json << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";

  if (!identical || speedup < 5.0) {
    std::fflush(stdout);
    std::exit(1);  // "same bytes, less time" is the fast path's contract
  }
}

// Microscope views of the same three hot paths for `--benchmark_filter`.
void BM_AdvanceReference(benchmark::State& state) {
  cluster::NodeConfig cfg;
  cfg.reference_accrual = true;
  cluster::Node node(1, cfg);
  power2::Power2Core core;
  const power2::EventSignature sig =
      power2::measure_signature(core, bench_kernel("bm_ref", 1 << 18, 8));
  const cluster::ActivityProfile act = busy_profile();
  for (auto _ : state) node.advance(900.0, &sig, act);
}
BENCHMARK(BM_AdvanceReference);

void BM_AdvanceBatched(benchmark::State& state) {
  cluster::Node node(1);
  power2::Power2Core core;
  const power2::EventSignature sig =
      power2::measure_signature(core, bench_kernel("bm_fast", 1 << 18, 8));
  const cluster::ActivityProfile act = busy_profile();
  for (auto _ : state) node.advance(900.0, &sig, act);
}
BENCHMARK(BM_AdvanceBatched);

void BM_SignatureScaleInto(benchmark::State& state) {
  power2::Power2Core core;
  const power2::EventSignature sig =
      power2::measure_signature(core, bench_kernel("bm_scale", 1 << 18, 8));
  power2::EventCounts ev;
  for (auto _ : state) {
    sig.scale_into(3.0e9, ev);
    benchmark::DoNotOptimize(ev);
  }
}
BENCHMARK(BM_SignatureScaleInto);

}  // namespace

P2SIM_BENCH_MAIN(report)
