// Figure 2: batch-job wall clock time as a function of nodes requested
// (jobs exceeding 600 s).  The paper's headline: 16-node jobs dominate,
// with 32 and 8 next, and essentially nothing beyond 64 nodes.
#include "bench/common.hpp"

#include "src/analysis/figures.hpp"
#include "src/util/ascii_chart.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Figure 2: Batch Job Walltime vs Nodes Requested",
                "Figure 2");
  auto& sim = bench::paper_sim();
  const analysis::Fig2Series f = sim.fig2();

  std::vector<std::pair<std::string, double>> bars;
  for (const auto& b : f.bins) {
    bars.emplace_back(std::to_string(b.nodes), b.total_walltime_s);
  }
  std::printf("%s\n",
              util::render_bars(bars, "walltime (s) by nodes requested")
                  .c_str());

  std::printf("  paper reference values:\n");
  bench::compare("most popular node count", 16,
                 static_cast<double>(f.most_popular_nodes));
  bench::compare("walltime share beyond 64 nodes ('essentially none')", 0.0,
                 f.walltime_beyond_64_fraction);

  auto csv = bench::open_csv("p2sim_fig2.csv");
  csv << "nodes,walltime_s,jobs\n";
  for (const auto& b : f.bins) {
    csv << b.nodes << ',' << b.total_walltime_s << ',' << b.jobs << '\n';
  }
}

void BM_MakeFig2(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.campaign();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.fig2());
  }
}
BENCHMARK(BM_MakeFig2);

}  // namespace

P2SIM_BENCH_MAIN(report)
