// Columnar campaign archive: scan throughput, load speedup, size, and the
// query-vs-oracle byte-identity contract.
//
// Materializes one fault-free and one faulted campaign, stores both as v2+
// text records and as the columnar archive, and gates four claims:
//
//   1. single-column scan      >= 10M interval records/s (vectorized
//      decode straight out of the chunk payloads, column-pruned);
//   2. archive materialization >= 5x faster than the text load of the
//      same records (no string parsing on the hot path);
//   3. archive size            <= 30% of the text records' bytes
//      (delta-varint + const column encodings);
//   4. every query kernel renders byte-identical results from the archive
//      and from the in-memory text-path oracle — on the faulted campaign
//      too.
//
// Results land in BENCH_archive_query.json;
// tools/check_perf_regression.py --kind archive gates CI against the
// committed floors in bench/archive_query_baseline.json.
#include "bench/common.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/archive/convert.hpp"
#include "src/archive/query.hpp"
#include "src/archive/reader.hpp"
#include "src/fault/fault.hpp"

namespace {

using namespace p2sim;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::int64_t bench_days() {
  if (const char* env = std::getenv("P2SIM_BENCH_DAYS")) {
    const std::int64_t days = std::atoll(env);
    if (days > 0) return days;
  }
  return 270;
}

/// One campaign in all three representations.
struct Corpus {
  const char* label;
  std::vector<rs2hpm::IntervalRecord> intervals;
  const pbs::JobDatabase* jobs = nullptr;
  std::string text_intervals;  ///< record_io bytes (two separate files)
  std::string text_jobs;
  std::string archive;  ///< columnar image (one file holds both tables)

  std::size_t text_bytes() const {
    return text_intervals.size() + text_jobs.size();
  }
};

Corpus make_corpus(const char* label, core::Sp2Simulation& sim) {
  Corpus c;
  c.label = label;
  c.intervals = sim.campaign().intervals;
  c.jobs = &sim.campaign().jobs;
  std::ostringstream ti;
  analysis::save_intervals(ti, c.intervals);
  c.text_intervals = ti.str();
  std::ostringstream tj;
  analysis::save_jobs(tj, *c.jobs);
  c.text_jobs = tj.str();
  c.archive = archive::archive_from_records(
      c.intervals, c.jobs->all(), archive::kDefaultRowsPerChunk);
  return c;
}

/// Gate 1: single-column scan throughput over the interval table.
double scan_mrecs_per_s(const archive::ArchiveReader& reader) {
  const archive::ArchiveTableSource src(reader,
                                        archive::TableKind::kIntervals);
  // Repeat until ~0.2 s of work so small campaigns still time stably.
  std::uint64_t rows = 0;
  int reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  do {
    archive::ColumnAggregate agg;
    aggregate_column(src, "user.cycles", &agg);
    benchmark::DoNotOptimize(agg.sum);
    rows += agg.rows;
    ++reps;
  } while (seconds_since(t0) < 0.2 || reps < 3);
  return static_cast<double>(rows) / seconds_since(t0) / 1e6;
}

/// Gate 2: full-table materialization, archive vs text.
struct LoadTimes {
  double text_s = 0.0;
  double archive_s = 0.0;
  double speedup() const { return archive_s > 0 ? text_s / archive_s : 0; }
};

LoadTimes load_times(const Corpus& c, const archive::ArchiveReader& reader) {
  LoadTimes t;
  // Both sides load intervals AND jobs end to end; best of 3 each so a
  // stray scheduler hiccup cannot fail the gate.
  for (int rep = 0; rep < 3; ++rep) {
    std::istringstream in_i(c.text_intervals);
    std::istringstream in_j(c.text_jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto intervals = analysis::load_intervals(in_i);
    const auto jobs = analysis::load_jobs(in_j);
    const double s = seconds_since(t0);
    benchmark::DoNotOptimize(intervals.size() + jobs.size());
    if (rep == 0 || s < t.text_s) t.text_s = s;
  }
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto intervals = archive::to_intervals(reader);
    const auto jobs = archive::to_jobs(reader);
    const double s = seconds_since(t0);
    benchmark::DoNotOptimize(intervals.size() + jobs.size());
    if (rep == 0 || s < t.archive_s) t.archive_s = s;
  }
  return t;
}

/// Gate 4: every query kernel, archive vs in-memory oracle, byte compared.
bool queries_identical(const Corpus& c, const archive::ArchiveReader& reader,
                       std::string* detail) {
  const archive::ArchiveTableSource archive_jobs(reader,
                                                 archive::TableKind::kJobs);
  const archive::MemoryJobSource oracle_jobs(c.jobs->all());
  const std::vector<const archive::TableSource*> from_archive{&archive_jobs};
  const std::vector<const archive::TableSource*> from_oracle{&oracle_jobs};

  struct Case {
    const char* name;
    std::string a, b;
  };
  std::vector<Case> cases;
  cases.push_back({"top_users",
                   render_top_users(archive::top_users(from_archive, 10)),
                   render_top_users(archive::top_users(from_oracle, 10))});
  for (int nodes : {16, 64}) {
    cases.push_back(
        {"miss_ratio",
         render_miss_ratio(
             archive::miss_ratio_distribution(from_archive, nodes)),
         render_miss_ratio(
             archive::miss_ratio_distribution(from_oracle, nodes))});
  }
  cases.push_back({"paging",
                   render_paging(archive::paging_suspects(from_archive)),
                   render_paging(archive::paging_suspects(from_oracle))});
  bool ok = true;
  for (const Case& k : cases) {
    if (k.a != k.b) {
      ok = false;
      *detail += std::string(c.label) + "/" + k.name + " ";
    }
  }
  return ok;
}

void report() {
  bench::banner(
      "Columnar campaign archive: scan rate, load speedup, size, fidelity",
      "the 'stored for later analysis' pipeline of section 3");
  const std::int64_t days = bench_days();
  std::printf("  campaign: 144 nodes x %lld days (+ faulted twin)\n",
              static_cast<long long>(days));

  core::Sp2Config clean_cfg;
  clean_cfg.driver.days = days;
  core::Sp2Simulation clean_sim(clean_cfg);
  core::Sp2Config faulted_cfg;
  faulted_cfg.driver.days = days;
  faulted_cfg.faults() = fault::FaultConfig::reference();
  core::Sp2Simulation faulted_sim(faulted_cfg);

  std::vector<Corpus> corpora;
  corpora.push_back(make_corpus("clean", clean_sim));
  corpora.push_back(make_corpus("faulted", faulted_sim));

  const Corpus& main_c = corpora.front();
  const archive::ArchiveReader reader =
      archive::ArchiveReader::from_bytes(main_c.archive);

  const double mrecs = scan_mrecs_per_s(reader);
  const LoadTimes loads = load_times(main_c, reader);
  const double size_ratio = static_cast<double>(main_c.archive.size()) /
                            static_cast<double>(main_c.text_bytes());

  bool identical = true;
  std::string detail;
  for (const Corpus& c : corpora) {
    const archive::ArchiveReader r =
        archive::ArchiveReader::from_bytes(c.archive);
    identical = queries_identical(c, r, &detail) && identical;
  }

  std::printf("  single-column scan   %10.1f M interval records/s "
              "(gate: >= 10)\n",
              mrecs);
  std::printf("  full load            text %8.3f s  archive %8.3f s  "
              "speedup %5.2fx (gate: >= 5x)\n",
              loads.text_s, loads.archive_s, loads.speedup());
  std::printf("  size                 text %8zu B  archive %8zu B  "
              "ratio %5.1f%% (gate: <= 30%%)\n",
              main_c.text_bytes(), main_c.archive.size(),
              100.0 * size_ratio);
  std::printf("  query vs text-path oracle (clean + faulted): %s %s\n",
              identical ? "byte-identical" : "MISMATCH", detail.c_str());

  std::ofstream json = bench::open_csv("BENCH_archive_query.json");
  json << "{\n  \"nodes\": 144,\n  \"days\": " << days
       << ",\n  \"scan_mrecs_per_s\": " << mrecs
       << ",\n  \"text_load_seconds\": " << loads.text_s
       << ",\n  \"archive_load_seconds\": " << loads.archive_s
       << ",\n  \"load_speedup_vs_text\": " << loads.speedup()
       << ",\n  \"text_bytes\": " << main_c.text_bytes()
       << ",\n  \"archive_bytes\": " << main_c.archive.size()
       << ",\n  \"size_ratio\": " << size_ratio
       << ",\n  \"queries_identical\": " << (identical ? "true" : "false")
       << "\n}\n";

  const bool gates_ok =
      mrecs >= 10.0 && loads.speedup() >= 5.0 && size_ratio <= 0.30;
  if (!identical || !gates_ok) {
    std::fflush(stdout);
    std::exit(1);  // the archive's whole contract, enforced
  }
}

// Microscope views for --benchmark_filter.
void BM_SingleColumnScan(benchmark::State& state) {
  static const std::string image = [] {
    core::Sp2Config cfg = core::Sp2Config::small(30, 32);
    core::Sp2Simulation sim(cfg);
    return archive::archive_from_records(sim.campaign().intervals,
                                         sim.campaign().jobs.all(),
                                         archive::kDefaultRowsPerChunk);
  }();
  const archive::ArchiveReader reader =
      archive::ArchiveReader::from_bytes(image);
  const archive::ArchiveTableSource src(reader,
                                        archive::TableKind::kIntervals);
  std::uint64_t rows = 0;
  for (auto _ : state) {
    archive::ColumnAggregate agg;
    aggregate_column(src, "user.cycles", &agg);
    benchmark::DoNotOptimize(agg.sum);
    rows += agg.rows;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_SingleColumnScan);

void BM_TopUsersQuery(benchmark::State& state) {
  static const std::string image = [] {
    core::Sp2Config cfg = core::Sp2Config::small(30, 32);
    core::Sp2Simulation sim(cfg);
    return archive::archive_from_records(sim.campaign().intervals,
                                         sim.campaign().jobs.all(),
                                         archive::kDefaultRowsPerChunk);
  }();
  const archive::ArchiveReader reader =
      archive::ArchiveReader::from_bytes(image);
  const archive::ArchiveTableSource jobs(reader, archive::TableKind::kJobs);
  const std::vector<const archive::TableSource*> sources{&jobs};
  for (auto _ : state) {
    const archive::TopUsersResult r = archive::top_users(sources, 10);
    benchmark::DoNotOptimize(r.jobs_analyzed);
  }
}
BENCHMARK(BM_TopUsersQuery);

}  // namespace

P2SIM_BENCH_MAIN(report)
