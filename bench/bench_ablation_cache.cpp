// Ablation: data-cache geometry.
//
// The SP2's 256 kB, 4-way, 256-byte-line data cache sits behind the
// workload's ~1% miss ratio.  This bench sweeps associativity and line
// size around the real design point and reports the resulting miss ratio
// and delivered Mflops for a median CFD kernel — quantifying how much of
// the measured behaviour the geometry explains.
#include "bench/common.hpp"

#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

namespace {

using namespace p2sim;

void row(const char* label, const power2::CacheConfig& dc) {
  power2::CoreConfig cfg;
  cfg.dcache = dc;
  power2::Power2Core core(cfg);
  const auto sig =
      power2::measure_signature(core, workload::cfd_multiblock(9, 0.25));
  const double fxu = sig.fxu0_inst + sig.fxu1_inst;
  std::printf("  %-34s %10.2f%% %10.1f\n", label,
              fxu > 0 ? 100.0 * sig.dcache_miss / fxu : 0.0, sig.mflops());
}

void report() {
  bench::banner("Ablation: D-cache geometry",
                "section 2 cache description / Table 4 ratios");
  std::printf("  %-34s %11s %10s\n", "geometry", "miss ratio", "Mflops");

  // Associativity sweep at the SP2's 256 kB / 256 B point.
  for (std::uint32_t ways : {1u, 2u, 4u, 8u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "256 kB, %u-way, 256 B lines", ways);
    row(label, {.size_bytes = 256 * 1024, .line_bytes = 256, .ways = ways});
  }
  // Line-size sweep at 4-way.
  for (std::uint32_t line : {64u, 128u, 256u, 512u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "256 kB, 4-way, %u B lines", line);
    row(label, {.size_bytes = 256 * 1024, .line_bytes = line, .ways = 4});
  }
  // Capacity sweep at the real line/ways.
  for (std::uint32_t kb : {64u, 128u, 256u, 512u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "%u kB, 4-way, 256 B lines", kb);
    row(label, {.size_bytes = kb * 1024ull, .line_bytes = 256, .ways = 4});
  }
  std::printf("\n  real machine: 256 kB, 4-way, 1024 lines of 256 bytes.\n");
}

void BM_CacheAccess(benchmark::State& state) {
  power2::Cache cache(power2::CacheConfig{});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr += 72;  // mixed hit/miss pattern
  }
}
BENCHMARK(BM_CacheAccess);

void BM_TlbAccess(benchmark::State& state) {
  power2::Tlb tlb(power2::TlbConfig{});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tlb.access(addr));
    addr += 1024;
  }
}
BENCHMARK(BM_TlbAccess);

}  // namespace

P2SIM_BENCH_MAIN(report)
