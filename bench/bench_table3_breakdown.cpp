// Table 3: the full per-unit rate breakdown — flops by operation type,
// instruction rates per execution unit, cache/TLB/I-cache miss rates, and
// DMA transfer rates, over the filtered day sample.
#include "bench/common.hpp"

#include "src/analysis/tables.hpp"
#include "src/rs2hpm/derived.hpp"

namespace {

using namespace p2sim;

double row_avg(const analysis::Table3& t, const char* label) {
  for (const auto& r : t.rows) {
    if (r.label == label) return r.avg;
  }
  return 0.0;
}

void report() {
  bench::banner("Table 3: Measured Major Rates (full breakdown)", "Table 3");
  auto& sim = bench::paper_sim();
  const analysis::Table3 t = sim.table3();
  std::printf("%s\n", analysis::format_table3(t).c_str());

  std::printf("  paper reference values (avg column):\n");
  bench::compare("Mflops-All", 17.4, row_avg(t, "Mflops-All"));
  bench::compare("Mflops-add", 9.5, row_avg(t, "Mflops-add"));
  bench::compare("Mflops-div (monitor bug)", 0.0, row_avg(t, "Mflops-div"));
  bench::compare("Mflops-mult", 3.2, row_avg(t, "Mflops-mult"));
  bench::compare("Mflops-fma", 4.7, row_avg(t, "Mflops-fma"));
  bench::compare("Mips-FPU total", 14.8,
                 row_avg(t, "Mips-Floating Point (Total)"));
  bench::compare("Mips-FPU unit 0", 9.4,
                 row_avg(t, "Mips-Floating Point (Unit 0)"));
  bench::compare("Mips-FPU unit 1", 5.4,
                 row_avg(t, "Mips-Floating Point (Unit 1)"));
  bench::compare("Mips-FXU total", 27.6,
                 row_avg(t, "Mips-Fixed Point Unit (Total)"));
  bench::compare("Mips-FXU unit 1", 16.5,
                 row_avg(t, "Mips-Fixed Point (Unit 1)"));
  bench::compare("Mips-FXU unit 0", 11.1,
                 row_avg(t, "Mips-Fixed Point (Unit 0)"));
  bench::compare("Mips-ICU", 3.3, row_avg(t, "Mips-Inst Cache Unit"));
  bench::compare("D-cache misses (M/s)", 0.30,
                 row_avg(t, "Data Cache Misses-Million/S"));
  bench::compare("TLB misses (M/s)", 0.04, row_avg(t, "TLB-Million/S"));
  bench::compare("I-cache misses (M/s)", 0.014,
                 row_avg(t, "Instruction Cache Misses-Million/S"));
  bench::compare("DMA reads (MT/s)", 0.024,
                 row_avg(t, "DMA reads-MTransfer/S"));
  bench::compare("DMA writes (MT/s)", 0.017,
                 row_avg(t, "DMA writes-MTransfer/S"));

  const double fpu01 = row_avg(t, "Mips-Floating Point (Unit 0)") /
                       row_avg(t, "Mips-Floating Point (Unit 1)");
  bench::compare("FPU0/FPU1 instruction ratio", 1.7, fpu01);
  const double fma_share = 2.0 * row_avg(t, "Mflops-fma") /
                           row_avg(t, "Mflops-All");
  bench::compare("fma share of flops", 0.54, fma_share);
  const double f_per_m = row_avg(t, "Mflops-All") /
                         row_avg(t, "Mips-Fixed Point Unit (Total)");
  bench::compare("flops per memory instruction", 0.63, f_per_m);

  auto csv = bench::open_csv("p2sim_table3.csv");
  csv << "section,rate,day,avg,std\n";
  for (const auto& row : t.rows) {
    csv << row.section << ',' << row.label << ',' << row.day << ','
        << row.avg << ',' << row.stddev << '\n';
  }
}

void BM_DeriveRates(benchmark::State& state) {
  rs2hpm::ModeTotals delta;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    delta.user[i] = 1'000'000 + i;
    delta.system[i] = 10'000 + i;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs2hpm::derive_rates(delta, 900.0, 12345));
  }
}
BENCHMARK(BM_DeriveRates);

void BM_MakeTable3(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.days();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.table3());
  }
}
BENCHMARK(BM_MakeTable3);

}  // namespace

P2SIM_BENCH_MAIN(report)
