// Figure 1: NAS SP2 system performance history — daily Gflops, its moving
// average, and the utilization moving average over the 270-day campaign.
#include "bench/common.hpp"

#include "src/analysis/figures.hpp"
#include "src/util/ascii_chart.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace p2sim;

void report() {
  bench::banner("Figure 1: NAS SP2 System Performance History", "Figure 1");
  auto& sim = bench::paper_sim();
  const analysis::Fig1Series f = sim.fig1();

  util::Series daily{.name = "daily Gflops", .xs = f.day,
                     .ys = f.daily_gflops, .glyph = '.'};
  util::Series ma{.name = "moving average", .xs = f.day,
                  .ys = f.gflops_moving_avg, .glyph = 'o'};
  std::vector<double> util_scaled;
  for (double u : f.utilization_moving_avg) util_scaled.push_back(4.0 * u);
  util::Series um{.name = "utilization moving avg (x4 Gflops scale)",
                  .xs = f.day, .ys = util_scaled, .glyph = 'u'};
  util::ChartOptions opts;
  opts.title = "System Performance (Gflops) vs day";
  opts.x_label = "day of campaign";
  opts.y_label = "Gflops";
  opts.height = 18;
  std::printf("%s\n", util::render_chart({daily, ma, um}, opts).c_str());

  std::printf("  paper reference values:\n");
  bench::compare("mean daily system Gflops", 1.3, f.mean_gflops);
  bench::compare("best 24-hour Gflops", 3.4, f.max_daily_gflops);
  bench::compare("mean utilization", 0.64, f.mean_utilization);
  bench::compare("max daily utilization", 0.95, f.max_daily_utilization);
  bench::compare("trend slope (Gflops/day; 'no obvious trend')", 0.0,
                 f.trend_slope);

  auto csv = bench::open_csv("p2sim_fig1.csv");
  csv << "day,gflops,gflops_ma,utilization_ma\n";
  for (std::size_t i = 0; i < f.day.size(); ++i) {
    csv << f.day[i] << ',' << f.daily_gflops[i] << ','
        << f.gflops_moving_avg[i] << ',' << f.utilization_moving_avg[i]
        << '\n';
  }
}

void BM_MakeFig1(benchmark::State& state) {
  auto& sim = bench::paper_sim();
  sim.days();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.fig1());
  }
}
BENCHMARK(BM_MakeFig1);

void BM_MovingAverage270Days(benchmark::State& state) {
  std::vector<double> xs(270);
  for (int i = 0; i < 270; ++i) xs[static_cast<std::size_t>(i)] = i % 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::moving_average(xs, 14));
  }
}
BENCHMARK(BM_MovingAverage270Days);

}  // namespace

P2SIM_BENCH_MAIN(report)
