// Ablation: drain vs checkpoint for wide jobs.
//
// Section 6: wide (>64-node) jobs could only run after the administrators
// drained the queues, because MPI/PVM jobs could not be checkpointed —
// and "even when such jobs executed, they did not consume significant
// wallclock time".  This bench runs a scheduler-level simulation of the
// same job stream under both policies and quantifies what checkpointing
// would have bought: machine utilization during wide-job admission and the
// wide jobs' queue-wait times.
#include "bench/common.hpp"

#include <map>

#include "src/pbs/scheduler.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"

namespace {

using namespace p2sim;

struct StreamResult {
  double utilization = 0.0;
  double mean_wide_wait_h = 0.0;
  int wide_started = 0;
  int preemptions = 0;
};

// Event-driven scheduler-only simulation: jobs consume node-time, wide
// jobs arrive periodically, preempted jobs resubmit their remainder.
StreamResult run_stream(bool checkpointing, std::uint64_t seed) {
  pbs::SchedulerConfig cfg;
  cfg.checkpoint_for_wide = checkpointing;
  cfg.wide_wait_patience_s = 2 * 3600.0;
  pbs::Scheduler sched(cfg);
  util::Xoshiro256StarStar rng(seed);

  const double horizon_s = 30.0 * 86400.0;
  const double step_s = 900.0;

  struct Running {
    double end_s = 0.0;
    double remaining_s = 0.0;
  };
  std::map<std::int64_t, Running> running;
  std::map<std::int64_t, double> wide_submit;
  std::int64_t next_id = 1;
  double busy_node_seconds = 0.0;
  util::RunningStats wide_wait;
  int preemptions = 0;

  for (double now = 0.0; now < horizon_s; now += step_s) {
    // Narrow arrivals: ~40/day of 8-32 nodes; one wide job every ~2 days.
    const std::uint64_t n = rng.poisson(40.0 * step_s / 86400.0);
    for (std::uint64_t i = 0; i < n; ++i) {
      pbs::JobSpec j;
      j.job_id = next_id++;
      j.nodes_requested = static_cast<int>(8u << rng.below(3));  // 8/16/32
      j.runtime_s = rng.uniform(1.0, 6.0) * 3600.0;
      j.submit_time_s = now;
      sched.submit(j);
    }
    if (rng.chance(step_s / (2.0 * 86400.0))) {
      pbs::JobSpec w;
      w.job_id = next_id++;
      w.nodes_requested = 96 + static_cast<int>(rng.below(33));
      w.runtime_s = rng.uniform(2.0, 5.0) * 3600.0;
      w.submit_time_s = now;
      wide_submit[w.job_id] = now;
      sched.submit(w);
    }

    for (const pbs::StartEvent& ev : sched.schedule(now)) {
      running[ev.spec.job_id] = {now + ev.spec.runtime_s,
                                 ev.spec.runtime_s};
      if (auto it = wide_submit.find(ev.spec.job_id);
          it != wide_submit.end()) {
        wide_wait.add((now - it->second) / 3600.0);
        wide_submit.erase(it);
      }
    }
    // Preempted jobs checkpoint and resubmit their remaining runtime.
    for (std::int64_t id : sched.take_preempted()) {
      auto it = running.find(id);
      const double remaining = std::max(0.0, it->second.end_s - now);
      running.erase(it);
      ++preemptions;
      if (remaining > 60.0) {
        pbs::JobSpec j;
        j.job_id = next_id++;
        j.nodes_requested =
            8;  // restart narrow (conservative: original width unknown here)
        j.runtime_s = remaining;
        j.submit_time_s = now;
        sched.submit(j);
      }
    }

    busy_node_seconds += sched.busy_nodes() * step_s;

    // Completions.
    std::vector<std::int64_t> done;
    for (const auto& [id, r] : running) {
      if (r.end_s <= now + step_s) done.push_back(id);
    }
    for (std::int64_t id : done) {
      sched.release(id);
      running.erase(id);
    }
  }

  StreamResult out;
  out.utilization =
      busy_node_seconds / (144.0 * horizon_s);
  out.mean_wide_wait_h = wide_wait.mean();
  out.wide_started = static_cast<int>(wide_wait.count());
  out.preemptions = preemptions;
  return out;
}

void report() {
  bench::banner("Ablation: queue draining vs job checkpointing",
                "section 6's wide-job admission problem");
  const StreamResult drain = run_stream(false, 0xAB1E);
  const StreamResult ckpt = run_stream(true, 0xAB1E);

  std::printf("  %-28s %12s %12s\n", "", "drain (real)", "checkpoint");
  std::printf("  %-28s %11.1f%% %11.1f%%\n", "machine utilization",
              100.0 * drain.utilization, 100.0 * ckpt.utilization);
  std::printf("  %-28s %12.1f %12.1f\n", "mean wide-job wait (h)",
              drain.mean_wide_wait_h, ckpt.mean_wide_wait_h);
  std::printf("  %-28s %12d %12d\n", "wide jobs started",
              drain.wide_started, ckpt.wide_started);
  std::printf("  %-28s %12d %12d\n", "preemptions", drain.preemptions,
              ckpt.preemptions);
  std::printf("\n  the paper: enforcing admission policies 'would require\n"
              "  considerable rewriting of the current batch system\n"
              "  scheduler' — this is the quantified counterfactual.\n");
}

void BM_SchedulerPass(benchmark::State& state) {
  std::int64_t id = 1;
  for (auto _ : state) {
    state.PauseTiming();
    pbs::Scheduler sched(pbs::SchedulerConfig{});
    for (int i = 0; i < 20; ++i) {
      pbs::JobSpec j;
      j.job_id = id++;
      j.nodes_requested = 16;
      sched.submit(j);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(sched.schedule(0.0));
  }
}
BENCHMARK(BM_SchedulerPass);

}  // namespace

P2SIM_BENCH_MAIN(report)
