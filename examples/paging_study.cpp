// Paging study: replay the paper's section 6 diagnosis.
//
// The study's "surprising finding" was that node memory oversubscription —
// codes with runtime-sized automatic arrays outgrowing the 128 MB nodes —
// silently destroyed performance, visible in HPM data as system-mode
// FXU/ICU instruction counts exceeding user-mode counts.  This example
// sweeps one node's memory demand through the capacity and prints the
// whole causal chain: fault rate -> user slowdown -> counter ratio ->
// delivered Mflops.  Watch the ratio cross 1.0 right where throughput
// collapses.
//
//   ./build/examples/paging_study
#include <cstdio>

#include "src/cluster/node.hpp"
#include "src/cluster/paging.hpp"
#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"

int main() {
  using namespace p2sim;

  power2::Power2Core core;
  const power2::EventSignature sig =
      power2::measure_signature(core, workload::cfd_multiblock(21, 0.35));
  const cluster::PagingModel paging;

  std::printf("CFD kernel at full speed: %.1f Mflops\n\n", sig.mflops());
  std::printf("%10s %12s %10s %10s %14s %10s\n", "demand MB", "oversub",
              "faults/s", "slowdown", "sysFXU/usrFXU", "Mflops");

  for (double mb = 64.0; mb <= 288.0; mb += 16.0) {
    const cluster::PagingState pg = paging.evaluate(mb);

    // Run a node for one daemon interval under this paging regime and read
    // the counters the way RS2HPM would.
    cluster::Node node(0);
    cluster::ActivityProfile act;
    act.compute_fraction = 0.75 * pg.user_slowdown;  // 25% comm as usual
    act.page_faults_per_s = pg.fault_rate;
    node.advance(900.0, &sig, act);

    const auto& t = node.totals();
    const double user_fxu =
        static_cast<double>(t.user_at(hpm::HpmCounter::kUserFxu0) +
                            t.user_at(hpm::HpmCounter::kUserFxu1));
    const double sys_fxu =
        static_cast<double>(t.system_at(hpm::HpmCounter::kUserFxu0) +
                            t.system_at(hpm::HpmCounter::kUserFxu1));
    const double flops =
        static_cast<double>(t.user_at(hpm::HpmCounter::kFpAdd0) +
                            t.user_at(hpm::HpmCounter::kFpAdd1) +
                            t.user_at(hpm::HpmCounter::kFpMul0) +
                            t.user_at(hpm::HpmCounter::kFpMul1) +
                            t.user_at(hpm::HpmCounter::kFpMulAdd0) +
                            t.user_at(hpm::HpmCounter::kFpMulAdd1));
    std::printf("%10.0f %12.2f %10.1f %10.2f %14.2f %10.1f\n", mb,
                pg.oversubscription, pg.fault_rate, pg.user_slowdown,
                user_fxu > 0 ? sys_fxu / user_fxu : 0.0,
                flops / 900.0 / 1e6);
  }

  std::printf(
      "\nsection 6: \"the instructions issued by the FXU and ICU while the\n"
      "processor was in system mode exceeded those issued while the\n"
      "processor was in user mode. Evidently these processes were paging\n"
      "data\" -- the ratio column crossing 1.0 is exactly that signature.\n");
  return 0;
}
