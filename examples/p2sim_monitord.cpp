// p2sim_monitord: the always-on monitoring daemon.
//
// Runs measurement campaigns back to back with the telemetry session
// installed and serves the live monitoring plane over an embedded HTTP
// server bound to 127.0.0.1:
//
//   GET /metrics        Prometheus scrape (consistent even mid-interval)
//   GET /healthz        liveness + cumulative campaign health (JSON)
//   GET /api/days       per-day Gflops / coverage tables (JSON)
//   GET /api/jobs       recently finished jobs (JSON, ?limit=N)
//   GET /trace          last completed campaign's Chrome trace JSON
//   GET /quitquitquit   graceful shutdown
//
// Scrapes ride the lock-free metrics plane: N concurrent clients never
// perturb campaign results (bench_scrape_overhead proves bit-identity).
//
//   p2sim_monitord [--port N] [--port-file FILE] [--days N] [--nodes N]
//                  [--threads N] [--faults reference|off] [--seed S]
//                  [--campaigns N] [--pause-ms N] [--scrape-dump FILE]
//                  [--quiet]
//
// `--campaigns N` exits after N campaigns (0 = run until /quitquitquit);
// each campaign k reuses the configuration with seed S+k, so the daemon
// keeps producing fresh-but-reproducible load.  `--port-file` writes the
// bound port (one line) once the server is listening — the handshake used
// by scripted clients when `--port 0` picks an ephemeral port.
// `--scrape-dump FILE` performs one self-scrape of /metrics after the
// first campaign and writes the response body to FILE, which
// tools/validate_telemetry.py --scrape then checks for exposition
// conformance.
//
// Examples:
//   ./build/examples/p2sim_monitord --days 6 --nodes 16 --campaigns 1
//       --port-file /tmp/p2sim.port --scrape-dump /tmp/scrape.prom
//   curl "http://127.0.0.1:$(cat /tmp/p2sim.port)/healthz"
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>

#include "src/core/simulation.hpp"
#include "src/telemetry/service.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/http_client.hpp"
#include "src/util/http_server.hpp"
#include "src/workload/driver.hpp"

namespace {

struct Options {
  int port = 0;
  std::string port_file;
  std::int64_t days = 6;
  int nodes = 16;
  int threads = 1;
  std::string faults = "reference";
  std::uint64_t seed = 0xC0FFEE42ULL;
  std::int64_t campaigns = 1;
  std::int64_t pause_ms = 0;
  std::string scrape_dump;
  bool quiet = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--port-file FILE] [--days N] "
               "[--nodes N] [--threads N] [--faults reference|off] "
               "[--seed S] [--campaigns N] [--pause-ms N] "
               "[--scrape-dump FILE] [--quiet]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = std::atoi(value());
    } else if (arg == "--port-file") {
      opt.port_file = value();
    } else if (arg == "--days") {
      opt.days = std::atoll(value());
    } else if (arg == "--nodes") {
      opt.nodes = std::atoi(value());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(value());
    } else if (arg == "--faults") {
      opt.faults = value();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--campaigns") {
      opt.campaigns = std::atoll(value());
    } else if (arg == "--pause-ms") {
      opt.pause_ms = std::atoll(value());
    } else if (arg == "--scrape-dump") {
      opt.scrape_dump = value();
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.days <= 0 || opt.nodes <= 0 || opt.threads < 0 ||
      opt.campaigns < 0 || opt.port < 0 || opt.port > 65535 ||
      opt.pause_ms < 0) {
    usage_and_exit(argv[0]);
  }
  if (opt.faults != "reference" && opt.faults != "off") {
    usage_and_exit(argv[0]);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2sim;
  const Options opt = parse(argc, argv);

  telemetry::Session session;
  telemetry::ScopedSession scoped(session);
  telemetry::MonitorService svc(session);

  util::HttpServer server;
  util::HttpServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(opt.port);
  scfg.observer = &svc;
  std::string error;
  if (!server.start(
          scfg, [&svc](const util::HttpRequest& req) { return svc.handle(req); },
          &error)) {
    std::fprintf(stderr, "p2sim_monitord: cannot start server: %s\n",
                 error.c_str());
    return 1;
  }
  if (!opt.port_file.empty()) {
    std::ofstream pf(opt.port_file);
    pf << server.port() << '\n';
  }
  if (!opt.quiet) {
    std::printf("p2sim_monitord: listening on http://127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
  }

  std::int64_t completed = 0;
  while (!svc.quit_requested() &&
         (opt.campaigns == 0 || completed < opt.campaigns)) {
    core::Sp2Config cfg = (opt.nodes == 144 && opt.days == 270)
                              ? core::Sp2Config{}
                              : core::Sp2Config::small(opt.days, opt.nodes);
    cfg.driver.days = opt.days;
    cfg.driver.seed = opt.seed + static_cast<std::uint64_t>(completed);
    cfg.driver.threads = opt.threads;
    if (opt.faults == "reference") {
      cfg.faults() = fault::FaultConfig::reference();
    }
    cfg.driver.observer = &svc;

    workload::run_campaign(cfg.driver);
    svc.set_trace_json(session.tracer.chrome_trace_json());
    svc.note_campaign_complete();
    ++completed;
    if (!opt.quiet) {
      std::printf("p2sim_monitord: campaign %lld complete\n",
                  static_cast<long long>(completed));
    }

    if (!opt.scrape_dump.empty() && completed == 1) {
      const util::HttpFetch scrape = util::http_get(
          "127.0.0.1", server.port(), telemetry::MonitorService::kMetricsPath);
      if (!scrape.ok || scrape.status != 200) {
        std::fprintf(stderr, "p2sim_monitord: self-scrape failed: %s\n",
                     scrape.error.c_str());
        server.stop();
        return 1;
      }
      std::ofstream dump(opt.scrape_dump);
      dump << scrape.body;
    }

    if (opt.pause_ms > 0 && !svc.quit_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.pause_ms));
    }
  }

  // Serve a final beat so a client that just asked for shutdown still gets
  // its response flushed, then tear down before the session dies.
  server.stop();
  if (!opt.quiet) {
    std::printf("p2sim_monitord: exiting after %lld campaign(s)\n",
                static_cast<long long>(completed));
  }
  return 0;
}
