// Quickstart: run a small simulated campaign and print the headline
// numbers the paper reports — system Gflops, utilization, and Table 2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "src/analysis/tables.hpp"
#include "src/core/simulation.hpp"
#include "src/workload/kernels.hpp"

int main() {
  using namespace p2sim;

  // A scaled-down campaign (30 days, 32 nodes) keeps the demo fast; the
  // bench binaries run the full 270-day, 144-node configuration.
  core::Sp2Simulation sim(core::Sp2Config::small(/*days=*/30, /*nodes=*/32));

  // Single-processor calibration first: the paper's 240 Mflops blocked
  // matrix multiply.
  const auto mm = sim.run_kernel(workload::blocked_matmul());
  std::printf("blocked matmul: %.0f Mflops, flops/memref = %.2f\n",
              mm.mflops(),
              static_cast<double>(mm.counts.flops()) /
                  static_cast<double>(mm.counts.fxu_inst()));

  const auto& days = sim.days();
  double mean_g = 0.0;
  for (const auto& d : days) mean_g += d.gflops;
  mean_g /= days.empty() ? 1.0 : static_cast<double>(days.size());
  std::printf("campaign: %zu days, mean %.2f Gflops on %d nodes, "
              "utilization %.0f%%\n",
              days.size(), mean_g, sim.campaign().num_nodes,
              100.0 * sim.campaign().mean_utilization());

  std::cout << analysis::format_table2(sim.table2());
  std::cout << analysis::format_table4(sim.table4());

  const auto f2 = sim.fig2();
  std::printf("most popular node count: %d\n", f2.most_popular_nodes);
  return 0;
}
