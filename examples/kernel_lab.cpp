// Kernel laboratory: measure the event signature of every library kernel on
// the POWER2 core model and print the paper's per-code metrics.
//
// This is the single-node view of the study — what a user running RS2HPM
// commands around their own program would have seen — and the tool used to
// calibrate the kernel population against Tables 3 and 4.
//
//   ./build/examples/kernel_lab
#include <cstdio>
#include <vector>

#include "src/power2/signature.hpp"
#include "src/workload/kernels.hpp"
#include "src/workload/stencil.hpp"

namespace {

void report(const char* name, const p2sim::power2::EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  const double fpu = s.fpu0_inst + s.fpu1_inst;
  const double icu = s.icu_type1 + s.icu_type2;
  const double inst = fxu + fpu + icu;
  const double flops = s.flops_per_cycle();
  std::printf(
      "%-22s %7.1f Mf  f/mr %5.2f  fma%% %4.0f  dc%% %5.2f  tlb%% %6.3f  "
      "FPU0/1 %4.2f  FXU1/0 %4.2f  icu%% %4.1f  ipc %4.2f\n",
      name, s.mflops(), fxu > 0 ? flops / fxu : 0.0,
      flops > 0 ? 200.0 * (s.fp_fma0 + s.fp_fma1) / flops : 0.0,
      fxu > 0 ? 100.0 * s.dcache_miss / fxu : 0.0,
      fxu > 0 ? 100.0 * s.tlb_miss / fxu : 0.0,
      s.fpu1_inst > 0 ? s.fpu0_inst / s.fpu1_inst : 0.0,
      s.fxu0_inst > 0 ? s.fxu1_inst / s.fxu0_inst : 0.0,
      inst > 0 ? 100.0 * icu / inst : 0.0, inst);
}

}  // namespace

int main() {
  using namespace p2sim;
  power2::Power2Core core;

  auto run = [&](const char* name, const power2::KernelDesc& k) {
    report(name, power2::measure_signature(core, k));
  };

  run("blocked_matmul", workload::blocked_matmul());
  run("naive_matmul", workload::naive_matmul());
  run("npb_bt_like", workload::npb_bt_like());
  run("sequential_sweep", workload::sequential_sweep());
  run("strided_transpose", workload::strided_transpose());
  run("mdo_ensemble", workload::mdo_ensemble(1));
  run("io_heavy", workload::io_heavy(1));
  run("block_sweep (untuned)", workload::archetype_block_sweep(false));
  run("block_sweep (tuned)", workload::archetype_block_sweep(true));
  for (double q : {0.1, 0.3, 0.5, 0.8}) {
    char name[40];
    std::snprintf(name, sizeof(name), "cfd_multiblock q=%.1f", q);
    run(name, workload::cfd_multiblock(/*variant=*/7, q));
  }
  return 0;
}
