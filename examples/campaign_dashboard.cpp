// campaign_dashboard: live pipeline health for a measurement campaign.
//
// Runs a (typically fault-injected) campaign with the telemetry session
// installed and a HealthReporter observing every 15-minute interval.  While
// the campaign runs it streams one health line per `--stride` intervals
// (coverage, live Mflops, busy nodes, queue depth, faults so far); at the
// end it renders the ASCII dashboard, writes the three telemetry exports —
//   metrics.prom      Prometheus text exposition
//   telemetry.jsonl   one JSON object per simulated-time metric
//   trace.json        Chrome trace_event JSON (chrome://tracing, Perfetto)
// — and reconciles the dashboard's running totals against the post-hoc
// measurement-loss report.  A mismatch exits nonzero: the live view and the
// forensic view must agree to the last node-sample.
//
//   campaign_dashboard [--days N] [--nodes N] [--threads N]
//                      [--faults reference|off] [--seed S] [--stride N]
//                      [--outdir DIR] [--quiet]
//                      [--checkpoint-dir DIR] [--checkpoint-every N]
//                      [--resume] [--connect HOST:PORT]
//
// `--connect HOST:PORT` runs no campaign at all: it attaches to a running
// p2sim_monitord, fetches /healthz and /api/days, and prints both — the
// remote flavor of the dashboard.  Exit status 0 iff both requests
// returned 200.
//
// `--threads N` (default 1) runs the driver's node-advance phase on N
// worker threads (0 = one per core); every export is bit-identical for
// every value, so the knob only changes how long the campaign takes.
//
// `--checkpoint-dir DIR` writes a durable campaign checkpoint every
// `--checkpoint-every N` intervals; `--resume` continues from the newest
// intact generation.  A resumed run's campaign outputs are bit-identical
// to an uninterrupted run's, but the live dashboard only watched the
// post-resume intervals, so the live-vs-forensic reconciliation is
// skipped (with a note) on resume.
//
// Examples:
//   ./build/examples/campaign_dashboard --days 30 --nodes 32
//   ./build/examples/campaign_dashboard --faults off --quiet
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "src/analysis/loss.hpp"
#include "src/core/simulation.hpp"
#include "src/telemetry/reporter.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/http_client.hpp"
#include "src/workload/driver.hpp"

namespace {

struct Options {
  std::int64_t days = 270;
  int nodes = 144;
  int threads = 1;
  std::uint64_t seed = 0xC0FFEE42ULL;
  std::string faults = "reference";
  std::int64_t stride = 96;  // one health line per campaign day
  std::string outdir = "campaign_dashboard_out";
  bool quiet = false;
  std::string checkpoint_dir;
  std::int64_t checkpoint_every = 96;
  bool resume = false;
  std::string connect;  // "HOST:PORT" -> remote mode, no local campaign
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--days N] [--nodes N] [--threads N] "
               "[--faults reference|off] [--seed S] [--stride N] "
               "[--outdir DIR] [--quiet] [--checkpoint-dir DIR] "
               "[--checkpoint-every N] [--resume] [--connect HOST:PORT]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--days") {
      opt.days = std::atoll(value());
    } else if (arg == "--nodes") {
      opt.nodes = std::atoi(value());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(value());
    } else if (arg == "--faults") {
      opt.faults = value();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--stride") {
      opt.stride = std::atoll(value());
    } else if (arg == "--outdir") {
      opt.outdir = value();
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--checkpoint-dir") {
      opt.checkpoint_dir = value();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = std::atoll(value());
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--connect") {
      opt.connect = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.days <= 0 || opt.nodes <= 0 || opt.threads < 0) {
    usage_and_exit(argv[0]);
  }
  if (opt.faults != "reference" && opt.faults != "off") {
    usage_and_exit(argv[0]);
  }
  return opt;
}

bool reconcile_check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "RECONCILE FAIL: %s\n", what);
  return ok;
}

/// Remote mode: attach to a running p2sim_monitord and print its live
/// health and per-day tables.  Returns the process exit status.
int connect_and_report(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got %s\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "--connect: bad port in %s\n", endpoint.c_str());
    return 2;
  }
  bool ok = true;
  for (const char* target : {"/healthz", "/api/days"}) {
    const p2sim::util::HttpFetch got = p2sim::util::http_get(
        host, static_cast<std::uint16_t>(port), target);
    if (!got.ok || got.status != 200) {
      std::fprintf(stderr, "GET %s%s failed: %s (status %d)\n",
                   endpoint.c_str(), target,
                   got.ok ? "non-200" : got.error.c_str(), got.status);
      ok = false;
      continue;
    }
    std::printf("== %s ==\n%s", target, got.body.c_str());
    if (!got.body.empty() && got.body.back() != '\n') std::printf("\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2sim;
  const Options opt = parse(argc, argv);
  if (!opt.connect.empty()) return connect_and_report(opt.connect);

  core::Sp2Config cfg = (opt.nodes == 144 && opt.days == 270)
                            ? core::Sp2Config{}
                            : core::Sp2Config::small(opt.days, opt.nodes);
  cfg.driver.days = opt.days;
  cfg.driver.seed = opt.seed;
  cfg.driver.threads = opt.threads;
  if (opt.faults == "reference") {
    cfg.faults() = fault::FaultConfig::reference();
  }
  workload::ResumeReport resume_report;
  cfg.driver.checkpoint.dir = opt.checkpoint_dir;
  cfg.driver.checkpoint.every_intervals = opt.checkpoint_every;
  cfg.driver.checkpoint.resume = opt.resume;
  cfg.driver.checkpoint.report = &resume_report;

  telemetry::Session session;
  telemetry::ReporterConfig rep_cfg;
  rep_cfg.stride = opt.stride;
  rep_cfg.out = opt.quiet ? nullptr : &std::cout;
  telemetry::HealthReporter reporter(rep_cfg);
  cfg.driver.observer = &reporter;

  workload::CampaignResult campaign;
  {
    telemetry::ScopedSession scoped(session);
    campaign = workload::run_campaign(cfg.driver);
  }

  if (!opt.quiet) std::fputs(reporter.render_dashboard().c_str(), stdout);

  // --- the three telemetry exports --------------------------------------
  std::filesystem::create_directories(opt.outdir);
  {
    std::ofstream f(opt.outdir + "/metrics.prom");
    f << session.registry.prometheus_text();
    std::ofstream g(opt.outdir + "/telemetry.jsonl");
    g << session.registry.jsonl();
    std::ofstream h(opt.outdir + "/trace.json");
    h << session.tracer.chrome_trace_json();
  }

  // --- reconcile the live view against the forensic view ----------------
  // A resumed dashboard only observed the post-resume tail of the
  // campaign, so its running totals legitimately undercount the forensic
  // report; the campaign outputs themselves are still bit-identical.
  if (resume_report.resumed) {
    if (!opt.quiet) {
      std::printf(
          "\nresumed from %s (interval %lld); live-vs-forensic "
          "reconciliation skipped\n",
          resume_report.loaded_path.c_str(),
          static_cast<long long>(resume_report.resume_interval));
    }
    return 0;
  }
  const analysis::MeasurementLoss loss =
      analysis::measure_loss(campaign, cfg.table_min_coverage);
  const telemetry::HealthSnapshot& snap = reporter.snapshot();
  bool ok = true;
  ok &= reconcile_check(snap.intervals_seen == loss.intervals_expected,
              "intervals seen != expected");
  ok &= reconcile_check(snap.intervals_recorded == loss.intervals_recorded,
              "intervals recorded");
  ok &= reconcile_check(snap.node_samples_expected == loss.node_samples_expected,
              "node-samples expected");
  ok &= reconcile_check(snap.node_samples_clean == loss.node_samples_clean,
              "node-samples clean");
  ok &= reconcile_check(snap.node_samples_reprimed == loss.node_samples_reprimed,
              "node-samples reprimed");
  ok &= reconcile_check(snap.faults_injected == loss.injected.total_faults(),
              "fault totals");
  ok &= reconcile_check(snap.jobs_requeued == loss.injected.jobs_requeued,
              "jobs requeued");
  ok &= reconcile_check(loss.reconciled(), "measurement-loss self-reconciliation");

  if (!opt.quiet) {
    std::printf("\ntrace: %zu spans (%llu dropped), %zu metrics\n",
                session.tracer.events().size(),
                static_cast<unsigned long long>(session.tracer.dropped()),
                session.registry.size());
    std::printf("wrote metrics.prom, telemetry.jsonl, trace.json to %s/\n",
                opt.outdir.c_str());
    std::printf("live dashboard vs measurement-loss report: %s\n",
                ok ? "reconciled" : "MISMATCH");
  }
  return ok ? 0 : 1;
}
