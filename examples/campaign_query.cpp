// Queries columnar campaign archives without rehydrating them.
//
//   campaign_query info archive.p2a
//   campaign_query top-users --top 10 a.p2a b.p2a
//   campaign_query miss-ratio --nodes 64 archive.p2a
//   campaign_query paging --threshold 0.5 archive.p2a
//   campaign_query aggregate --column user.cycles archive.p2a
//   campaign_query merge --out all.p2a day1.p2a day2.p2a
//   campaign_query import-text --intervals c.intervals --jobs c.jobs
//                              --out c.p2a
//   campaign_query export-text --intervals c.intervals --jobs c.jobs c.p2a
//
// Every query command accepts one or more archives and scans them in
// order as one concatenated table; `--from-text BASE` adds BASE.intervals
// / BASE.jobs as an in-memory oracle source, so the same invocation can
// mix archives with v2 text records (results are bit-identical either
// way).  Rotted chunks are skipped-and-reported like the text loader's
// ParseReport; `--strict` turns any corruption into a hard failure.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/archive/convert.hpp"
#include "src/archive/query.hpp"
#include "src/archive/reader.hpp"
#include "src/archive/writer.hpp"

namespace {

namespace ar = p2sim::archive;

constexpr const char* kUsage =
    "usage: campaign_query <command> [options] ARCHIVE...\n"
    "\n"
    "commands:\n"
    "  info                      archive layout, rows and integrity\n"
    "  top-users [--top N]       users ranked by Mflops-weighted node-hours\n"
    "  miss-ratio [--nodes N]    cache-miss-ratio histogram for N-node jobs\n"
    "  paging [--threshold X] [--max N]\n"
    "                            jobs whose system-mode FXU share exceeds X\n"
    "  aggregate --column NAME   whole-column aggregate per archive\n"
    "  merge --out FILE          concatenate archives into FILE\n"
    "  import-text --intervals F --jobs F --out FILE\n"
    "                            convert v2 text records to an archive\n"
    "  export-text [--intervals F] [--jobs F] ARCHIVE\n"
    "                            convert an archive back to v2 text\n"
    "\n"
    "options:\n"
    "  --from-text BASE  add BASE.intervals/BASE.jobs as an oracle source\n"
    "  --strict          fail on any corruption instead of skip-and-report\n"
    "  --stats           print scan statistics (chunks pruned/skipped)\n";

/// One query source plus everything that keeps its spans alive.
struct Source {
  std::string label;
  std::unique_ptr<ar::ArchiveReader> reader;
  ar::ArchiveReport report;
  std::vector<p2sim::rs2hpm::IntervalRecord> intervals;
  p2sim::pbs::JobDatabase jobs;
  std::unique_ptr<ar::TableSource> interval_source;
  std::unique_ptr<ar::TableSource> job_source;
};

/// Prints a non-clean recovery report to stderr (never fatal here; strict
/// mode throws before this is reached).
void warn_report(const Source& s) {
  if (s.reader == nullptr || s.report.clean()) return;
  std::fprintf(stderr, "%s: %s\n", s.label.c_str(),
               ar::format_archive_report(s.report).c_str());
}

Source open_archive(const std::string& path, bool strict) {
  Source s;
  s.label = path;
  s.reader = std::make_unique<ar::ArchiveReader>(
      ar::ArchiveReader::open(path, strict ? nullptr : &s.report));
  s.interval_source = std::make_unique<ar::ArchiveTableSource>(
      *s.reader, ar::TableKind::kIntervals, strict ? nullptr : &s.report);
  s.job_source = std::make_unique<ar::ArchiveTableSource>(
      *s.reader, ar::TableKind::kJobs, strict ? nullptr : &s.report);
  return s;
}

Source open_text(const std::string& base, bool strict) {
  Source s;
  s.label = base + ".{intervals,jobs}";
  p2sim::analysis::ParseReport report;
  p2sim::analysis::ParseReport* rep = strict ? nullptr : &report;
  {
    std::ifstream in(base + ".intervals");
    if (!in) throw std::runtime_error("cannot open '" + base + ".intervals'");
    s.intervals = p2sim::analysis::load_intervals(in, rep);
  }
  {
    std::ifstream in(base + ".jobs");
    if (!in) throw std::runtime_error("cannot open '" + base + ".jobs'");
    s.jobs = p2sim::analysis::load_jobs(in, rep);
  }
  if (!report.clean()) {
    std::fprintf(stderr, "%s: %s\n", s.label.c_str(),
                 p2sim::analysis::format_parse_report(report).c_str());
  }
  s.interval_source = std::make_unique<ar::MemoryIntervalSource>(
      std::span<const p2sim::rs2hpm::IntervalRecord>(s.intervals));
  s.job_source = std::make_unique<ar::MemoryJobSource>(
      std::span<const p2sim::pbs::JobRecord>(s.jobs.all()));
  return s;
}

int cmd_info(const std::vector<Source>& sources) {
  for (const Source& s : sources) {
    std::printf("%s:\n", s.label.c_str());
    if (s.reader != nullptr) {
      std::printf("  file        %llu bytes, %s\n",
                  static_cast<unsigned long long>(s.reader->file_bytes()),
                  s.report.truncated ? "recovered (no committed footer)"
                                     : "committed");
      std::printf("  intervals   %llu rows in %zu chunks\n",
                  static_cast<unsigned long long>(
                      s.reader->rows(ar::TableKind::kIntervals)),
                  s.reader->chunks(ar::TableKind::kIntervals).size());
      std::printf("  jobs        %llu rows in %zu chunks\n",
                  static_cast<unsigned long long>(
                      s.reader->rows(ar::TableKind::kJobs)),
                  s.reader->chunks(ar::TableKind::kJobs).size());
      if (!s.report.clean()) {
        std::printf("  %s\n", ar::format_archive_report(s.report).c_str());
      }
    } else {
      std::printf("  text records: %zu intervals, %zu jobs\n",
                  s.intervals.size(), s.jobs.all().size());
    }
  }
  return 0;
}

std::vector<const ar::TableSource*> job_sources(
    const std::vector<Source>& sources) {
  std::vector<const ar::TableSource*> out;
  out.reserve(sources.size());
  for (const Source& s : sources) out.push_back(s.job_source.get());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string command = argv[1];
  std::size_t top_n = 10;
  int nodes = 64;
  double threshold = 0.5;
  std::size_t max_rows = 20;
  std::string column;
  std::string out_path;
  std::string intervals_path;
  std::string jobs_path;
  bool strict = false;
  bool stats = false;
  std::vector<std::string> archives;
  std::vector<std::string> text_bases;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (arg == "--max" && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--column" && i + 1 < argc) {
      column = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--intervals" && i + 1 < argc) {
      intervals_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs_path = argv[++i];
    } else if (arg == "--from-text" && i + 1 < argc) {
      text_bases.push_back(argv[++i]);
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n%s", arg.c_str(), kUsage);
      return 2;
    } else {
      archives.push_back(arg);
    }
  }

  try {
    if (command == "import-text") {
      if (out_path.empty() || (intervals_path.empty() && jobs_path.empty())) {
        std::fprintf(stderr,
                     "import-text needs --out and --intervals/--jobs\n");
        return 2;
      }
      std::string error;
      p2sim::analysis::ParseReport ri;
      p2sim::analysis::ParseReport rj;
      if (!ar::text_to_archive(intervals_path, jobs_path, out_path, &error,
                               strict ? nullptr : &ri,
                               strict ? nullptr : &rj)) {
        std::fprintf(stderr, "import-text: %s\n", error.c_str());
        return 1;
      }
      if (!ri.clean() || !rj.clean()) {
        std::fprintf(stderr, "intervals: %s\njobs: %s\n",
                     p2sim::analysis::format_parse_report(ri).c_str(),
                     p2sim::analysis::format_parse_report(rj).c_str());
      }
      return 0;
    }
    if (command == "export-text") {
      if (archives.size() != 1) {
        std::fprintf(stderr, "export-text takes exactly one archive\n");
        return 2;
      }
      std::string error;
      ar::ArchiveReport report;
      if (!ar::archive_to_text(archives[0], intervals_path, jobs_path, &error,
                               strict ? nullptr : &report)) {
        std::fprintf(stderr, "export-text: %s\n", error.c_str());
        return 1;
      }
      if (!report.clean()) {
        std::fprintf(stderr, "%s: %s\n", archives[0].c_str(),
                     ar::format_archive_report(report).c_str());
      }
      return 0;
    }
    if (command == "merge") {
      if (out_path.empty() || archives.empty()) {
        std::fprintf(stderr, "merge needs --out and at least one archive\n");
        return 2;
      }
      // Concatenation in command-line order: the merged archive scans
      // identically to scanning the inputs in sequence.
      ar::ArchiveWriter w;
      for (const std::string& path : archives) {
        ar::ArchiveReport report;
        const ar::ArchiveReader r =
            ar::ArchiveReader::open(path, strict ? nullptr : &report);
        ar::ArchiveReport* rep = strict ? nullptr : &report;
        for (const p2sim::rs2hpm::IntervalRecord& rec :
             ar::to_intervals(r, rep)) {
          w.append_interval(rec);
        }
        const p2sim::pbs::JobDatabase db = ar::to_jobs(r, rep);
        for (const p2sim::pbs::JobRecord& rec : db.all()) w.append_job(rec);
        if (!report.clean()) {
          std::fprintf(stderr, "%s: %s\n", path.c_str(),
                       ar::format_archive_report(report).c_str());
        }
      }
      std::string error;
      if (!w.finalize(out_path, &error)) {
        std::fprintf(stderr, "merge: %s\n", error.c_str());
        return 1;
      }
      std::printf("merged %zu archives into %s (%llu intervals, %llu jobs)\n",
                  archives.size(), out_path.c_str(),
                  static_cast<unsigned long long>(
                      w.rows(ar::TableKind::kIntervals)),
                  static_cast<unsigned long long>(
                      w.rows(ar::TableKind::kJobs)));
      return 0;
    }

    // Query commands: open every source up front.
    if (archives.empty() && text_bases.empty()) {
      std::fprintf(stderr, "no archive named\n%s", kUsage);
      return 2;
    }
    std::vector<Source> sources;
    for (const std::string& path : archives) {
      sources.push_back(open_archive(path, strict));
    }
    for (const std::string& base : text_bases) {
      sources.push_back(open_text(base, strict));
    }

    if (command == "info") return cmd_info(sources);

    const std::vector<const ar::TableSource*> jobs = job_sources(sources);
    ar::ScanStats scan;
    if (command == "top-users") {
      const ar::TopUsersResult r = ar::top_users(jobs, top_n);
      std::fputs(ar::render_top_users(r).c_str(), stdout);
      scan = r.scan;
    } else if (command == "miss-ratio") {
      const ar::MissRatioResult r = ar::miss_ratio_distribution(jobs, nodes);
      std::fputs(ar::render_miss_ratio(r).c_str(), stdout);
      scan = r.scan;
    } else if (command == "paging") {
      const ar::PagingResult r =
          ar::paging_suspects(jobs, threshold, max_rows);
      std::fputs(ar::render_paging(r).c_str(), stdout);
      scan = r.scan;
    } else if (command == "aggregate") {
      if (column.empty()) {
        std::fprintf(stderr, "aggregate needs --column NAME\n");
        return 2;
      }
      for (const Source& s : sources) {
        // The column picks its table: interval schema first, then jobs.
        std::uint32_t idx = 0;
        const ar::TableSource* src =
            ar::column_by_name(ar::TableKind::kIntervals, column, &idx)
                ? s.interval_source.get()
                : s.job_source.get();
        ar::ColumnAggregate agg;
        if (!ar::aggregate_column(*src, column, &agg)) {
          std::fprintf(stderr, "no column named '%s'\n", column.c_str());
          return 2;
        }
        if (sources.size() > 1) std::printf("%s:\n", s.label.c_str());
        std::fputs(ar::render_aggregate(agg).c_str(), stdout);
        scan.merge(agg.scan);
      }
    } else {
      std::fprintf(stderr, "unknown command '%s'\n%s", command.c_str(),
                   kUsage);
      return 2;
    }
    for (const Source& s : sources) warn_report(s);
    if (stats) std::fputs(ar::render_scan_stats(scan).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_query: %s\n", e.what());
    return 1;
  }
  return 0;
}
