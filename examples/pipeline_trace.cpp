// Pipeline trace: watch the POWER2 dispatch engine schedule a loop.
//
// Prints the issue schedule of two contrasting kernels for a few
// iterations: the blocked matrix multiply (dual-issue fma streams, both
// FPUs saturated) and a serial dependence chain (everything waits, FPU0
// soaks up the stream — the section 5 asymmetry mechanism, visible
// instruction by instruction).
//
//   ./build/examples/pipeline_trace
#include <cstdio>

#include "src/power2/core.hpp"
#include "src/workload/kernels.hpp"

int main() {
  using namespace p2sim;

  power2::Power2Core core;
  std::printf("=== blocked matmul: 2 iterations ===\n");
  std::printf("%s\n",
              core.trace(workload::blocked_matmul(), 2).format(80).c_str());

  power2::KernelBuilder b("serial_chain");
  std::int16_t prev = power2::kNoDep;
  for (int i = 0; i < 6; ++i) prev = b.fp_add(prev);
  const power2::KernelDesc chain = b.warmup(0).measure(1).build();

  power2::Power2Core core2;
  std::printf("=== serial fp_add chain: 2 iterations ===\n");
  std::printf("%s\n", core2.trace(chain, 2).format(40).c_str());
  std::printf("note the 2-cycle gaps (fp add latency) and every op landing\n"
              "on unit 0 — dependence-bound code cannot use FPU1.\n");
  return 0;
}
