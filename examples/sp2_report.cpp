// sp2_report: the command-line campaign driver.
//
// Runs a measurement campaign and writes the complete analysis — every
// table, every figure series, and the raw interval/job record files (the
// "collect once, analyze many" format of src/analysis/record_io.hpp) —
// into an output directory.
//
//   sp2_report [--days N] [--nodes N] [--seed S] [--outdir DIR]
//              [--waitstates] [--quiet]
//
// Examples:
//   ./build/examples/sp2_report --days 30 --nodes 32 --outdir /tmp/run1
//   ./build/examples/sp2_report --waitstates          # full paper scale
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/analysis/record_io.hpp"
#include "src/analysis/report.hpp"
#include "src/analysis/tables.hpp"
#include "src/core/simulation.hpp"
#include "src/util/csv.hpp"

namespace {

struct Options {
  std::int64_t days = 270;
  int nodes = 144;
  std::uint64_t seed = 0xC0FFEE42ULL;
  std::string outdir = "sp2_report_out";
  bool waitstates = false;
  bool quiet = false;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--days N] [--nodes N] [--seed S] [--outdir DIR] "
               "[--waitstates] [--quiet]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (arg == "--days") {
      opt.days = std::atoll(value());
    } else if (arg == "--nodes") {
      opt.nodes = std::atoi(value());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--outdir") {
      opt.outdir = value();
    } else if (arg == "--waitstates") {
      opt.waitstates = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (opt.days <= 0 || opt.nodes <= 0) usage_and_exit(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2sim;
  const Options opt = parse(argc, argv);

  core::Sp2Config cfg = (opt.nodes == 144 && opt.days == 270)
                            ? core::Sp2Config{}
                            : core::Sp2Config::small(opt.days, opt.nodes);
  cfg.driver.days = opt.days;
  cfg.driver.seed = opt.seed;
  if (opt.waitstates) {
    cfg.driver.node.monitor.selection = hpm::CounterSelection::kWaitStates;
  }

  std::filesystem::create_directories(opt.outdir);
  core::Sp2Simulation sim(cfg);
  const auto& campaign = sim.campaign();

  // --- raw records: the daemon and epilogue files -----------------------
  {
    std::ofstream f(opt.outdir + "/intervals.p2sim");
    analysis::save_intervals(f, campaign.intervals);
    std::ofstream g(opt.outdir + "/jobs.p2sim");
    analysis::save_jobs(g, campaign.jobs);
  }

  // --- tables ----------------------------------------------------------
  {
    std::ofstream f(opt.outdir + "/tables.txt");
    f << analysis::format_table2(sim.table2()) << '\n'
      << analysis::format_table3(sim.table3()) << '\n'
      << analysis::format_table4(sim.table4()) << '\n';
  }

  // --- the complete measurement report ----------------------------------
  {
    std::ofstream f(opt.outdir + "/report.txt");
    f << analysis::format_report(
        analysis::build_report(campaign, cfg.table_min_gflops));
  }

  // --- figure series ----------------------------------------------------
  {
    std::ofstream f(opt.outdir + "/fig1.csv");
    util::CsvWriter w(f);
    w.row({"day", "gflops", "gflops_ma", "utilization_ma"});
    const auto s = sim.fig1();
    for (std::size_t i = 0; i < s.day.size(); ++i) {
      w.field(s.day[i]).field(s.daily_gflops[i]);
      w.field(s.gflops_moving_avg[i]).field(s.utilization_moving_avg[i]);
      w.endrow();
    }
  }
  {
    std::ofstream f(opt.outdir + "/fig2.csv");
    util::CsvWriter w(f);
    w.row({"nodes", "walltime_s", "jobs"});
    for (const auto& b : sim.fig2().bins) {
      w.field(std::int64_t{b.nodes}).field(b.total_walltime_s);
      w.field(std::int64_t{b.jobs});
      w.endrow();
    }
  }
  {
    std::ofstream f(opt.outdir + "/fig3.csv");
    util::CsvWriter w(f);
    w.row({"nodes", "mean_mflops_per_node", "max_mflops_per_node", "jobs"});
    for (const auto& b : sim.fig3().bins) {
      w.field(std::int64_t{b.nodes}).field(b.mean_mflops_per_node);
      w.field(b.max_mflops_per_node).field(std::int64_t{b.jobs});
      w.endrow();
    }
  }
  {
    std::ofstream f(opt.outdir + "/fig4.csv");
    util::CsvWriter w(f);
    w.row({"job_seq", "job_mflops", "moving_avg"});
    const auto s = sim.fig4();
    for (std::size_t i = 0; i < s.job_seq.size(); ++i) {
      w.field(s.job_seq[i]).field(s.job_mflops[i]).field(s.moving_avg[i]);
      w.endrow();
    }
  }
  {
    std::ofstream f(opt.outdir + "/fig5.csv");
    util::CsvWriter w(f);
    w.row({"sys_user_fxu_ratio", "mflops_per_node"});
    const auto s = sim.fig5();
    for (std::size_t i = 0; i < s.sys_user_fxu_ratio.size(); ++i) {
      w.field(s.sys_user_fxu_ratio[i]).field(s.mflops_per_node[i]);
      w.endrow();
    }
  }

  if (!opt.quiet) {
    const auto f1 = sim.fig1();
    std::printf("campaign: %lld days x %d nodes (seed %llu%s)\n",
                static_cast<long long>(opt.days), opt.nodes,
                static_cast<unsigned long long>(opt.seed),
                opt.waitstates ? ", wait-state selection" : "");
    std::printf("mean %.2f Gflops at %.0f%% utilization; %zu jobs\n",
                f1.mean_gflops, 100.0 * f1.mean_utilization,
                campaign.jobs.size());
    std::printf("wrote tables, figure CSVs and raw records to %s/\n",
                opt.outdir.c_str());
  }
  return 0;
}
