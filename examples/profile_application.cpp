// Profiling a complete application phase by phase — the per-program
// RS2HPM workflow ("users must place commands into their batch scripts").
//
// The program modelled here is the archetypal section 4 aerodynamics code:
// read the grids, run the implicit multi-block solver with boundary
// condition sweeps, and write the solution.  The per-section table shows
// where the counters localize the performance problems: the solver's
// register reuse, the BC sweep's TLB behaviour, the I/O phases' idle FPUs.
//
//   ./build/examples/profile_application
#include <cstdio>

#include "src/rs2hpm/profiler.hpp"
#include "src/workload/kernels.hpp"
#include "src/workload/npb.hpp"

int main() {
  using namespace p2sim;
  rs2hpm::ProgramProfiler prof;

  // A multidisciplinary run: grid input, many solver steps with periodic
  // BC sweeps, a reference tuned kernel for comparison, solution output.
  prof.run_section("read_grids", workload::io_heavy(1), 3000);
  prof.run_section("solver", workload::cfd_multiblock(42, 0.3), 25000);
  prof.run_section("bc_sweep", workload::strided_transpose(), 4000);
  prof.run_section("solver2", workload::cfd_multiblock(42, 0.3), 25000);
  prof.run_section("write_soln", workload::io_heavy(2), 3000);

  std::printf("application profile (one POWER2 node):\n\n%s\n",
              prof.format().c_str());

  const rs2hpm::SectionReport total = prof.total();
  std::printf("whole program: %.1f Mflops over %.2f simulated seconds\n",
              total.mflops(), total.seconds);
  std::printf("flops per memory instruction: %.2f (matmul reaches 3.0)\n",
              total.rates.flops_per_memref);
  std::printf("\nWhat a tuned code looks like under the same monitor:\n\n");

  rs2hpm::ProgramProfiler tuned;
  tuned.run_section("blocked_matmul", workload::blocked_matmul());
  tuned.run_section("npb_bt", workload::npb_kernel(workload::NpbBenchmark::kBT));
  std::printf("%s", tuned.format().c_str());
  return 0;
}
