// Counter explorer: the raw monitor / RS2HPM plumbing, bottom up.
//
// Demonstrates, on one node, the three mechanisms the measurement stack
// depends on:
//   1. the 22 physical counters wrap at 32 bits (the cycle counter every
//      ~64 seconds at 66.7 MHz);
//   2. Maki's multipass sampling recovers monotone 64-bit totals as long
//      as samples arrive sub-wrap — and silently loses 2^32 events when
//      they do not;
//   3. the PBS prologue/epilogue pair turns extended totals into per-job
//      reports with derived rates.
//
//   ./build/examples/counter_explorer
#include <cstdio>
#include <vector>

#include "src/hpm/monitor.hpp"
#include "src/rs2hpm/derived.hpp"
#include "src/rs2hpm/job_monitor.hpp"
#include "src/rs2hpm/snapshot.hpp"
#include "src/telemetry/clock.hpp"

int main() {
  using namespace p2sim;
  using hpm::HpmCounter;
  using hpm::PrivilegeMode;

  // --- 1. raw 32-bit wrap --------------------------------------------
  std::printf("1. The physical counters are 32-bit and wrap silently\n");
  hpm::PerformanceMonitor mon;
  power2::EventCounts sixty_four_seconds;
  sixty_four_seconds.cycles =
      static_cast<std::uint64_t>(telemetry::cycles_from_seconds(64.4));
  // A single >= 2^32 increment trips the checked accumulate() on purpose
  // (no simulation slice may legally do this); the unchecked fold path is
  // exactly the silent hardware wrap this demo is about.
  hpm::CounterAdds wrapped{};
  mon.map_events(sixty_four_seconds, wrapped);
  mon.accumulate_adds(wrapped, PrivilegeMode::kUser);
  std::printf("   after 64.4 s of cycles the counter reads %u (wrapped!)\n",
              mon.bank(PrivilegeMode::kUser).read(HpmCounter::kUserCycles));

  // --- 2. multipass sampling ------------------------------------------
  std::printf("\n2. Sub-wrap sampling extends the counters to 64 bits\n");
  hpm::PerformanceMonitor mon2;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon2);
  power2::EventCounts thirty_seconds;
  thirty_seconds.cycles =
      static_cast<std::uint64_t>(telemetry::cycles_from_seconds(30.0));
  for (int i = 0; i < 30; ++i) {  // 15 minutes in 30-second passes
    mon2.accumulate(thirty_seconds, PrivilegeMode::kUser);
    ext.sample(mon2);
  }
  std::printf("   900 s of cycles recovered: %llu (expected %.0f)\n",
              static_cast<unsigned long long>(
                  ext.totals().user_at(HpmCounter::kUserCycles)),
              telemetry::cycles_from_seconds(900.0));

  std::printf("   ...but a missed wrap is unrecoverable:\n");
  hpm::PerformanceMonitor mon3;
  rs2hpm::ExtendedCounters lossy;
  lossy.attach(mon3);
  power2::EventCounts too_long;
  too_long.cycles = (1ull << 31) + 500;  // legal per batch...
  mon3.accumulate(too_long, PrivilegeMode::kUser);
  mon3.accumulate(too_long, PrivilegeMode::kUser);  // ...a wrap in total
  lossy.sample(mon3);  // one sample only: the wrap is missed
  std::printf("   pushed %llu cycles, recovered only %llu\n",
              static_cast<unsigned long long>(2 * too_long.cycles),
              static_cast<unsigned long long>(
                  lossy.totals().user_at(HpmCounter::kUserCycles)));

  // --- 3. per-job prologue/epilogue ------------------------------------
  std::printf("\n3. PBS prologue/epilogue -> per-job counter report\n");
  rs2hpm::JobMonitor jm;
  // Two nodes' extended totals at job start...
  std::vector<rs2hpm::ModeTotals> start(2);
  std::vector<std::uint64_t> quads(2, 0);
  jm.prologue(/*job_id=*/42, /*start_s=*/0.0, start, quads);
  // ...and at job end, after 1200 s of work at ~20 Mflops/node.
  std::vector<rs2hpm::ModeTotals> end(2);
  for (auto& t : end) {
    t.user[hpm::index_of(HpmCounter::kFpAdd0)] = 14'400'000'000ull;
    t.user[hpm::index_of(HpmCounter::kFpMulAdd0)] = 9'600'000'000ull;
    t.user[hpm::index_of(HpmCounter::kUserFxu0)] = 40'000'000'000ull;
    t.user[hpm::index_of(HpmCounter::kUserCycles)] = 60'000'000'000ull;
  }
  const rs2hpm::JobCounterReport rep = jm.epilogue(42, 1200.0, end, quads);
  const rs2hpm::DerivedRates r = rep.rates();
  std::printf("   job %lld: %d nodes, %.0f s\n",
              static_cast<long long>(rep.job_id), rep.nodes, rep.elapsed_s);
  std::printf("   Mflops (all nodes) = %.1f, per node = %.1f\n",
              rep.job_mflops(), rep.mflops_per_node());
  std::printf("   flops/memref = %.2f, fma share of flops = %.0f%%\n",
              r.flops_per_memref, 100.0 * r.fma_flop_fraction);
  return 0;
}
