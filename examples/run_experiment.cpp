// Runs any registered experiment by name on a configurable campaign.
//
//   run_experiment --list
//   run_experiment table2
//   run_experiment --days 30 --nodes 32 fault_campaign
//   run_experiment --faults loss          # reference outage profile
//
// Every table, figure and audit the repository reproduces is addressable
// here through the core experiment registry; `--faults` turns on the
// reference fault schedule so the degradation-tolerant pipeline can be
// watched doing its job on a small campaign.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/registry.hpp"

namespace {

void list_experiments() {
  std::printf("available experiments:\n");
  for (const p2sim::core::Experiment& e : p2sim::core::experiments()) {
    std::printf("  %-16s %s\n", e.name.c_str(), e.description.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t days = 30;
  int nodes = 32;
  int threads = 1;
  bool faults = false;
  std::string store_path;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_experiments();
      return 0;
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::atoll(argv[++i]);
    } else if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--signature-store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--help") {
      std::printf(
          "usage: run_experiment [--days N] [--nodes N] [--threads N] "
          "[--faults] [--signature-store FILE] <experiment>...\n"
          "       run_experiment --list\n"
          "--threads N runs the node-advance phase on N workers (0 = one\n"
          "per core); every output is bit-identical for every value.\n"
          "--signature-store FILE persists measured kernel signatures so\n"
          "repeated runs skip the cycle-accurate cold start (bit-identical\n"
          "either way).\n");
      return 0;
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "no experiment named; try --list\n");
    return 2;
  }

  p2sim::core::Sp2Config cfg = p2sim::core::Sp2Config::small(days, nodes);
  cfg.threads() = threads;
  cfg.signature_store() = store_path;
  if (faults) cfg.faults() = p2sim::fault::FaultConfig::reference();
  p2sim::core::Sp2Simulation sim(cfg);

  for (const std::string& name : names) {
    const p2sim::core::Experiment* exp = p2sim::core::find_experiment(name);
    if (exp == nullptr) {
      std::fprintf(stderr, "unknown experiment '%s'; try --list\n",
                   name.c_str());
      return 2;
    }
    std::printf("--- %s: %s ---\n%s\n", exp->name.c_str(),
                exp->description.c_str(), exp->run(sim).c_str());
  }
  return 0;
}
