// Runs any registered experiment by name on a configurable campaign.
//
//   run_experiment --list
//   run_experiment table2
//   run_experiment --days 30 --nodes 32 fault_campaign
//   run_experiment --faults loss          # reference outage profile
//   run_experiment --checkpoint-dir ck --resume table2
//
// Every table, figure and audit the repository reproduces is addressable
// here through the core experiment registry; `--faults` turns on the
// reference fault schedule so the degradation-tolerant pipeline can be
// watched doing its job on a small campaign.
//
// --checkpoint-dir makes the campaign durable: it writes a checkpoint
// generation at the configured cadence, and --resume picks the newest
// intact one back up.  A resumed run is bit-identical to an uninterrupted
// one.  --abort-after simulates an operator abort mid-campaign: partial
// outputs are removed and the exit status is nonzero, so schedulers never
// mistake a dead run for a finished one.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/core/registry.hpp"
#include "src/workload/checkpoint.hpp"

namespace {

void list_experiments() {
  std::printf("available experiments:\n");
  for (const p2sim::core::Experiment& e : p2sim::core::experiments()) {
    std::printf("  %-16s %s\n", e.name.c_str(), e.description.c_str());
  }
}

// --abort-after state for the kill-injection hook (a plain function
// pointer, so plain globals rather than captures).
std::int64_t g_abort_after = -1;
std::int64_t g_intervals_seen = 0;

void abort_after_hook(const char* point, std::int64_t /*value*/) {
  if (std::strcmp(point, "interval-end") != 0) return;
  if (g_abort_after >= 0 && ++g_intervals_seen >= g_abort_after) {
    throw std::runtime_error("campaign aborted by --abort-after");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t days = 30;
  int nodes = 32;
  int threads = 1;
  bool faults = false;
  std::string store_path;
  std::string checkpoint_dir;
  std::int64_t checkpoint_every = 96;
  bool resume = false;
  std::string records_base;
  std::string archive_path;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_experiments();
      return 0;
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::atoll(argv[++i]);
    } else if (arg == "--nodes" && i + 1 < argc) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg == "--signature-store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::atoll(argv[++i]);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--records" && i + 1 < argc) {
      records_base = argv[++i];
    } else if (arg == "--archive" && i + 1 < argc) {
      archive_path = argv[++i];
    } else if (arg == "--abort-after" && i + 1 < argc) {
      g_abort_after = std::atoll(argv[++i]);
    } else if (arg == "--help") {
      std::printf(
          "usage: run_experiment [--days N] [--nodes N] [--threads N] "
          "[--faults] [--signature-store FILE] [--checkpoint-dir DIR] "
          "[--checkpoint-every N] [--resume] [--records BASE] "
          "[--archive FILE] [--abort-after N] <experiment>...\n"
          "       run_experiment --list\n"
          "--threads N runs the node-advance phase on N workers (0 = one\n"
          "per core); every output is bit-identical for every value.\n"
          "--signature-store FILE persists measured kernel signatures so\n"
          "repeated runs skip the cycle-accurate cold start (bit-identical\n"
          "either way).\n"
          "--checkpoint-dir DIR writes a durable campaign checkpoint every\n"
          "--checkpoint-every N intervals (default 96 = one simulated day);\n"
          "--resume continues from the newest intact generation.  Resumed\n"
          "campaigns are bit-identical to uninterrupted ones.\n"
          "--records BASE stores the campaign to BASE.intervals and\n"
          "BASE.jobs (record_io v2, commit-trailed).\n"
          "--archive FILE stores the campaign as a columnar archive the\n"
          "campaign_query tool scans directly (bit-identical bytes for\n"
          "every thread count).\n"
          "--abort-after N aborts the campaign after N intervals: partial\n"
          "outputs are removed and the exit status is 1.\n");
      return 0;
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "no experiment named; try --list\n");
    return 2;
  }

  p2sim::core::Sp2Config cfg = p2sim::core::Sp2Config::small(days, nodes);
  cfg.threads() = threads;
  cfg.signature_store() = store_path;
  cfg.checkpoint().dir = checkpoint_dir;
  cfg.checkpoint().every_intervals = checkpoint_every;
  cfg.checkpoint().resume = resume;
  cfg.archive() = archive_path;
  if (faults) cfg.faults() = p2sim::fault::FaultConfig::reference();
  if (g_abort_after >= 0) {
    p2sim::workload::set_checkpoint_test_hook(&abort_after_hook);
  }
  p2sim::core::Sp2Simulation sim(cfg);

  // Output files exist (empty) from the start, so an abort mid-run has
  // real partial outputs to clean up — exactly what a crashed production
  // run leaves behind.
  const std::string intervals_path =
      records_base.empty() ? "" : records_base + ".intervals";
  const std::string jobs_path =
      records_base.empty() ? "" : records_base + ".jobs";
  if (!records_base.empty()) {
    std::ofstream(intervals_path, std::ios::trunc);
    std::ofstream(jobs_path, std::ios::trunc);
  }

  const auto remove_partial_outputs = [&] {
    if (records_base.empty()) return;
    std::remove(intervals_path.c_str());
    std::remove(jobs_path.c_str());
  };

  try {
    for (const std::string& name : names) {
      const p2sim::core::Experiment* exp = p2sim::core::find_experiment(name);
      if (exp == nullptr) {
        std::fprintf(stderr, "unknown experiment '%s'; try --list\n",
                     name.c_str());
        remove_partial_outputs();
        return 2;
      }
      std::printf("--- %s: %s ---\n%s\n", exp->name.c_str(),
                  exp->description.c_str(), exp->run(sim).c_str());
    }
    if (!records_base.empty()) {
      std::ofstream fi(intervals_path, std::ios::trunc);
      p2sim::analysis::save_intervals(fi, sim.campaign().intervals);
      std::ofstream fj(jobs_path, std::ios::trunc);
      p2sim::analysis::save_jobs(fj, sim.campaign().jobs);
      if (!fi.good() || !fj.good()) {
        std::fprintf(stderr, "failed writing records to %s.*\n",
                     records_base.c_str());
        remove_partial_outputs();
        return 1;
      }
    }
  } catch (const std::exception& e) {
    // A mid-run abort must not masquerade as success: drop whatever
    // half-written outputs exist and fail loudly.  With --checkpoint-dir
    // the committed generations survive for a later --resume.
    std::fprintf(stderr, "run_experiment: %s\n", e.what());
    remove_partial_outputs();
    return 1;
  }
  return 0;
}
