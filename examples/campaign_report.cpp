// Full measurement campaign: the paper's nine-month study end to end.
//
// Runs the 144-node, 270-day configuration, then prints every table and a
// summary of every figure — the complete RS2HPM "measurement report" this
// repository reproduces.  Expect a ~1 minute runtime.
//
//   ./build/examples/campaign_report
#include <cstdio>
#include <iostream>

#include "src/analysis/figures.hpp"
#include "src/analysis/tables.hpp"
#include "src/core/simulation.hpp"

int main() {
  using namespace p2sim;
  core::Sp2Simulation sim;  // defaults = the paper's machine and campaign

  const auto& days = sim.days();
  const auto f1 = sim.fig1();
  std::printf("=== Campaign summary (%zu days, %d nodes) ===\n", days.size(),
              sim.campaign().num_nodes);
  std::printf("mean daily system performance : %.2f Gflops\n",
              f1.mean_gflops);
  std::printf("best daily system performance : %.2f Gflops\n",
              f1.max_daily_gflops);
  std::printf("mean utilization              : %.0f%%\n",
              100.0 * f1.mean_utilization);
  std::printf("max daily utilization         : %.0f%%\n",
              100.0 * f1.max_daily_utilization);
  std::printf("trend slope (Gflops/day)      : %+.4f\n\n", f1.trend_slope);

  std::cout << analysis::format_table2(sim.table2()) << '\n';
  std::cout << analysis::format_table3(sim.table3()) << '\n';
  std::cout << analysis::format_table4(sim.table4()) << '\n';

  const auto f2 = sim.fig2();
  std::printf("Figure 2: most popular node count = %d; walltime beyond 64 "
              "nodes = %.2f%%\n",
              f2.most_popular_nodes, 100.0 * f2.walltime_beyond_64_fraction);

  const auto f3 = sim.fig3();
  std::printf("Figure 3: mean Mflops/node <=64 nodes = %.1f, >64 nodes = "
              "%.1f\n",
              f3.mean_upto_64, f3.mean_beyond_64);

  const auto f4 = sim.fig4();
  std::printf("Figure 4: 16-node jobs = %zu, mean %.0f Mflops, std %.0f, "
              "trend %.3f Mflops/job\n",
              f4.job_mflops.size(), f4.mean, f4.stddev, f4.trend_slope);

  const auto f5 = sim.fig5();
  std::printf("Figure 5: corr(sys/user FXU, Mflops/node) = %.2f\n",
              f5.correlation);

  const double tw = sim.campaign().jobs.time_weighted_mflops_per_node();
  std::printf("time-weighted batch Mflops/node = %.1f (paper: 19)\n", tw);
  return 0;
}
