#include "src/power2/core.hpp"

#include <gtest/gtest.h>

#include "src/power2/kernel_desc.hpp"

namespace p2sim::power2 {
namespace {

// A kernel of n independent fp adds (plus the loop branch).
KernelDesc independent_adds(int n) {
  KernelBuilder b("indep_adds");
  for (int i = 0; i < n; ++i) b.fp_add();
  return b.warmup(16).measure(1000).build();
}

// A serial dependence chain of n fp adds.
KernelDesc chained_adds(int n) {
  KernelBuilder b("chain_adds");
  std::int16_t prev = kNoDep;
  for (int i = 0; i < n; ++i) prev = b.fp_add(prev);
  return b.warmup(16).measure(1000).build();
}

TEST(Core, ConfigValidation) {
  CoreConfig bad;
  bad.dispatch_width = 0;
  EXPECT_THROW(Power2Core{bad}, std::invalid_argument);
  CoreConfig inverted;
  inverted.tlb_miss_min = 60;
  inverted.tlb_miss_max = 40;
  EXPECT_THROW(Power2Core{inverted}, std::invalid_argument);
}

TEST(Core, CountsMatchStaticBody) {
  Power2Core core;
  KernelBuilder b("counted");
  const auto s = b.stream(1 << 20, 8);
  b.load(s);
  b.load(s, /*quad=*/true);
  b.fma(1);
  b.fp_mul();
  b.fp_div();
  b.alu();
  b.addr_mul();
  b.cond_reg();
  b.store(s);
  const KernelDesc k = b.warmup(8).measure(500).build();
  const RunResult r = core.run(k);

  const std::uint64_t it = r.iterations;
  EXPECT_EQ(r.counts.memory_inst, 3 * it);
  EXPECT_EQ(r.counts.quad_inst, 1 * it);
  EXPECT_EQ(r.counts.fpu_inst(), 3 * it);
  EXPECT_EQ(r.counts.fp_fma(), 1 * it);
  EXPECT_EQ(r.counts.fp_mul(), 1 * it);
  EXPECT_EQ(r.counts.fp_div(), 1 * it);
  EXPECT_EQ(r.counts.fp_add(), 1 * it);  // only the fma's add half
  EXPECT_EQ(r.counts.icu_type1, 1 * it); // the loop branch
  EXPECT_EQ(r.counts.icu_type2, 1 * it);
  // loads + store + alu + addr_mul on the FXUs.
  EXPECT_EQ(r.counts.fxu_inst(), 5 * it);
  // flops: fma(2) + mul + div.
  EXPECT_EQ(r.counts.flops(), 4 * it);
  EXPECT_EQ(r.counts.operations(), r.counts.instructions() + it);
}

TEST(Core, AddressMultiplyRunsOnFxu1Only) {
  Power2Core core;
  KernelBuilder b("addr");
  b.addr_mul();
  b.addr_div();
  const KernelDesc k = b.warmup(4).measure(200).build();
  const RunResult r = core.run(k);
  EXPECT_EQ(r.counts.fxu0_inst, 0u);
  EXPECT_EQ(r.counts.fxu1_inst, 2 * r.iterations);
}

TEST(Core, DispatchWidthBoundsIpc) {
  CoreConfig cfg;
  cfg.dispatch_width = 2;
  Power2Core core(cfg);
  const RunResult r = core.run(independent_adds(8));
  const double ipc = static_cast<double>(r.counts.instructions()) /
                     static_cast<double>(r.counts.cycles);
  EXPECT_LE(ipc, 2.0 + 1e-9);
}

TEST(Core, DualFpuThroughputIsTwoPerCycle) {
  Power2Core core;
  const RunResult r = core.run(independent_adds(16));
  const double fp_per_cycle = static_cast<double>(r.counts.fpu_inst()) /
                              static_cast<double>(r.counts.cycles);
  EXPECT_LE(fp_per_cycle, 2.0 + 1e-9);
  EXPECT_GT(fp_per_cycle, 1.5);  // near-peak for independent work
}

TEST(Core, ChainsAreLatencyBound) {
  Power2Core core;
  const RunResult indep = core.run(independent_adds(8));
  core.reset();
  const RunResult chain = core.run(chained_adds(8));
  // Latency-2 serial chain: 7 dependence edges x 2 cycles = 14 per
  // iteration, vs throughput-bound ~4 for independent work.
  EXPECT_GE(chain.cycles_per_iter(), 14.0 - 0.1);
  EXPECT_LT(indep.cycles_per_iter(), 0.8 * 8);
}

TEST(Core, CarriedDependenceSerializesAcrossIterations) {
  Power2Core core;
  KernelBuilder b("carried");
  b.fp_add(kNoDep, /*carried=*/0);  // depends on itself last iteration
  const KernelDesc k = b.warmup(8).measure(1000).build();
  const RunResult r = core.run(k);
  EXPECT_GE(r.cycles_per_iter(), 2.0 - 1e-9);  // fp add latency
}

TEST(Core, DivideBlocksItsUnit) {
  Power2Core core;
  KernelBuilder b("divchain");
  std::int16_t prev = kNoDep;
  for (int i = 0; i < 4; ++i) prev = b.fp_div(prev);
  const KernelDesc k = b.warmup(4).measure(500).build();
  const RunResult r = core.run(k);
  // Four chained 10-cycle divides: three dependence gaps inside the
  // iteration (successive iterations overlap on the other unit).
  EXPECT_GE(r.cycles_per_iter(), 30.0 - 0.1);
  // Far slower than four pipelined adds would be.
  EXPECT_GT(r.cycles_per_iter(), 6.0);
}

TEST(Core, CacheMissHaltsEightCycles) {
  Power2Core core;
  // Stride of exactly one line over a 1 MB footprint: 4096 lines cycle
  // through a 1024-line cache, so every access misses; 256 pages stay
  // within the 512-entry TLB, so only the cache penalty shows.
  KernelBuilder b("missy");
  const auto s = b.stream(1 << 20, 256);
  b.load(s);
  // Warmup covers the whole footprint (4096 accesses) so the TLB holds
  // every page before measurement begins.
  const KernelDesc k = b.warmup(8192).measure(2000).build();
  const RunResult r = core.run(k);
  EXPECT_EQ(r.counts.dcache_miss, 2000u);
  EXPECT_EQ(r.counts.stall_dcache, 2000u * 8u);
  EXPECT_EQ(r.counts.tlb_miss, 0u);  // 2 pages stay resident
  // Cycles reflect the halt: >= 8 per iteration.
  EXPECT_GE(r.cycles_per_iter(), 8.0);
}

TEST(Core, TlbMissPenaltyWithinDocumentedWindow) {
  Power2Core core;
  // Page-stride walk over far more pages than the TLB holds: every access
  // misses the TLB (and the cache).
  KernelBuilder b("tlbwalk");
  const auto s = b.stream(64ull << 20, 4096);
  b.load(s);
  const KernelDesc k = b.warmup(64).measure(4000).build();
  const RunResult r = core.run(k);
  EXPECT_EQ(r.counts.tlb_miss, 4000u);
  const double avg_penalty = static_cast<double>(r.counts.stall_tlb) /
                             static_cast<double>(r.counts.tlb_miss);
  EXPECT_GE(avg_penalty, 36.0);  // "36 to 54 cycles"
  EXPECT_LE(avg_penalty, 54.0);
  EXPECT_NEAR(avg_penalty, 45.0, 3.0);  // uniform draw centres at 45
}

TEST(Core, ReloadAndWritebackCountersTrackCache) {
  Power2Core core;
  KernelBuilder b("wb");
  // Write-streaming: every line eventually evicts dirty.
  const auto s = b.stream(4ull << 20, 256);
  b.store(s);
  const KernelDesc k = b.warmup(2048).measure(4096).build();
  const RunResult r = core.run(k);
  EXPECT_EQ(r.counts.dcache_reload, 4096u);  // write-allocate
  // After warmup the cache is saturated with dirty lines: every replacement
  // writes back.
  EXPECT_EQ(r.counts.dcache_store, 4096u);
}

TEST(Core, DeterministicAcrossIdenticalRuns) {
  const KernelDesc k = chained_adds(6);
  Power2Core a, b;
  const RunResult ra = a.run(k);
  const RunResult rb = b.run(k);
  EXPECT_EQ(ra.counts, rb.counts);
}

TEST(Core, ResetClearsMicroarchState) {
  Power2Core core;
  KernelBuilder b("warm");
  const auto s = b.stream(2048, 8);
  b.load(s);
  const KernelDesc k = b.warmup(0).measure(256).build();
  const RunResult first = core.run(k);
  core.reset();
  const RunResult again = core.run(k);
  EXPECT_EQ(first.counts.dcache_miss, again.counts.dcache_miss);
}

TEST(Core, RunOverrideControlsIterations) {
  Power2Core core;
  const KernelDesc k = independent_adds(4);
  const RunResult r = core.run(k, 123);
  EXPECT_EQ(r.iterations, 123u);
  EXPECT_EQ(r.counts.fp_add(), 4u * 123u);
}

TEST(Core, InvalidKernelThrows) {
  Power2Core core;
  KernelDesc bad;
  bad.name = "bad";
  EXPECT_THROW(core.run(bad), std::invalid_argument);
}

TEST(Core, MflopsComputedAtClock) {
  RunResult r;
  r.iterations = 1;
  r.counts.cycles = 66'700'000;  // one second at the SP2 clock
  r.counts.fp_add0 = 10'000'000;
  EXPECT_NEAR(r.mflops(), 10.0, 1e-9);
  EXPECT_NEAR(r.mflops(2 * util::MachineClock::kHz), 20.0, 1e-9);
}

// Steering policy comparison: round-robin splits the units evenly; the
// FPU0-first stream biases toward unit 0 for dependence-poor bursts.
class SteeringCase : public ::testing::TestWithParam<FpuSteering> {};

TEST_P(SteeringCase, AllFpInstructionsLandOnSomeUnit) {
  CoreConfig cfg;
  cfg.fpu_steering = GetParam();
  Power2Core core(cfg);
  const RunResult r = core.run(independent_adds(10));
  EXPECT_EQ(r.counts.fpu_inst(), 10u * r.iterations);
}

INSTANTIATE_TEST_SUITE_P(Policies, SteeringCase,
                         ::testing::Values(FpuSteering::kFpu0First,
                                           FpuSteering::kRoundRobin,
                                           FpuSteering::kEarliestFree));

TEST(Core, RoundRobinSplitsEvenly) {
  CoreConfig cfg;
  cfg.fpu_steering = FpuSteering::kRoundRobin;
  Power2Core core(cfg);
  const RunResult r = core.run(independent_adds(8));
  EXPECT_EQ(r.counts.fpu0_inst, r.counts.fpu1_inst);
}

TEST(Core, SparseFpStreamPrefersFpu0) {
  // Isolated FP ops separated by integer work: the default unit soaks
  // them up, which is the mechanism behind the paper's FPU0-heavy ratios.
  Power2Core core;
  KernelBuilder b("sparse");
  b.fp_add();
  b.alu();
  b.alu();
  b.alu();
  b.alu();
  const KernelDesc k = b.warmup(8).measure(1000).build();
  const RunResult r = core.run(k);
  EXPECT_GT(r.counts.fpu0_inst, 3 * r.counts.fpu1_inst);
}

TEST(Core, IcacheCompulsoryFillCounted) {
  Power2Core core;
  // 64 instructions x 4 bytes = 256 bytes = 2 I-cache lines of 128 B.
  KernelBuilder b("itext");
  for (int i = 0; i < 63; ++i) b.alu();
  const KernelDesc k = b.warmup(4).measure(100).build();
  const RunResult r = core.run(k);
  EXPECT_EQ(r.counts.icache_reload, 2u);
}

}  // namespace
}  // namespace p2sim::power2
