#include "src/power2/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2sim::power2 {
namespace {

CacheConfig small_cache() {
  // 4 sets x 2 ways x 64-byte lines = 512 bytes: easy to reason about.
  return {.size_bytes = 512, .line_bytes = 64, .ways = 2};
}

TEST(CacheConfig, DefaultIsTheSp2Geometry) {
  CacheConfig cfg;
  EXPECT_EQ(cfg.size_bytes, 256u * 1024u);
  EXPECT_EQ(cfg.line_bytes, 256u);
  EXPECT_EQ(cfg.ways, 4u);
  EXPECT_EQ(cfg.num_lines(), 1024u);  // "1024 lines of 256 bytes each"
  EXPECT_EQ(cfg.num_sets(), 256u);
  EXPECT_TRUE(cfg.valid());
}

TEST(CacheConfig, RejectsBadGeometry) {
  EXPECT_FALSE(CacheConfig({.size_bytes = 0}).valid());
  EXPECT_FALSE(CacheConfig({.line_bytes = 100}).valid());  // not a power of 2
  EXPECT_FALSE(
      CacheConfig({.size_bytes = 1000, .line_bytes = 64, .ways = 4}).valid());
  EXPECT_FALSE(CacheConfig({.ways = 0}).valid());
  EXPECT_THROW(Cache(CacheConfig{.size_bytes = 0}), std::invalid_argument);
}

TEST(Cache, FirstAccessMissesThenHits) {
  Cache c(small_cache());
  const auto first = c.access(0x1000, false);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.reload);
  const auto second = c.access(0x1000, false);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.reload);
}

TEST(Cache, SameLineDifferentOffsetHits) {
  Cache c(small_cache());
  c.access(0x1000, false);
  EXPECT_TRUE(c.access(0x1000 + 63, false).hit);
  EXPECT_FALSE(c.access(0x1000 + 64, false).hit);  // next line
}

TEST(Cache, LruEvictsOldestWay) {
  Cache c(small_cache());
  // Three lines mapping to the same set (stride = sets * line = 256).
  c.access(0x0000, false);
  c.access(0x0100, false);
  c.access(0x0000, false);        // refresh line 0
  c.access(0x0200, false);        // evicts 0x0100 (LRU)
  EXPECT_TRUE(c.access(0x0000, false).hit);
  EXPECT_FALSE(c.access(0x0100, false).hit);
}

TEST(Cache, DirtyEvictionSignalsWriteback) {
  Cache c(small_cache());
  c.access(0x0000, /*is_store=*/true);   // dirty line
  c.access(0x0100, false);
  const auto ev = c.access(0x0200, false);  // evicts the dirty 0x0000
  EXPECT_TRUE(ev.dirty_evict);
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache c(small_cache());
  c.access(0x0000, false);
  c.access(0x0100, false);
  EXPECT_FALSE(c.access(0x0200, false).dirty_evict);
}

TEST(Cache, LoadAfterStoreKeepsLineDirty) {
  Cache c(small_cache());
  c.access(0x0000, true);
  c.access(0x0000, false);  // load must not clear the dirty bit
  c.access(0x0100, false);
  EXPECT_TRUE(c.access(0x0200, false).dirty_evict);
}

TEST(Cache, WriteNoAllocateStoresBypass) {
  CacheConfig cfg = small_cache();
  cfg.write_allocate = false;
  Cache c(cfg);
  const auto miss = c.access(0x0000, true);
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.reload);
  EXPECT_FALSE(c.access(0x0000, false).hit);  // nothing was installed
}

TEST(Cache, FlushDropsEverything) {
  Cache c(small_cache());
  c.access(0x0000, true);
  c.flush();
  EXPECT_FALSE(c.access(0x0000, false).hit);
  // Flushed dirty data is dropped, not written back (model semantics).
  EXPECT_EQ(c.dirty_evictions(), 0u);
}

TEST(Cache, CountsHitsAndMisses) {
  Cache c(small_cache());
  c.access(0, false);
  c.access(0, false);
  c.access(64, false);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, WorkingSetWithinCapacityHasNoSteadyStateMisses) {
  Cache c({.size_bytes = 4096, .line_bytes = 64, .ways = 4});
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t a = 0; a < 4096; a += 64) c.access(a, false);
  }
  // Pass 1 = 64 compulsory misses, passes 2-3 all hits.
  EXPECT_EQ(c.misses(), 64u);
  EXPECT_EQ(c.hits(), 128u);
}

TEST(Cache, StreamingFootprintMissesEveryLine) {
  Cache c(small_cache());
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
    EXPECT_FALSE(c.access(a, false).hit);
  }
}

// LRU is a stack algorithm per set: with the same set count, adding ways
// can never increase misses (inclusion property).  This is the property
// behind the associativity ablation bench.
class CacheAssocProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheAssocProperty, MoreWaysNeverMissMore) {
  const std::uint32_t ways = GetParam();
  const std::uint32_t sets = 16;
  Cache narrow({.size_bytes = sets * 64ull * ways, .line_bytes = 64,
                .ways = ways});
  Cache wide({.size_bytes = sets * 64ull * ways * 2, .line_bytes = 64,
              .ways = ways * 2});
  // Pseudo-random but fixed access pattern spanning several sets.
  std::uint64_t x = 12345;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t addr = (x >> 33) % (sets * 64ull * ways * 4);
    narrow.access(addr, false);
    wide.access(addr, false);
  }
  EXPECT_LE(wide.misses(), narrow.misses());
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheAssocProperty,
                         ::testing::Values(1u, 2u, 4u, 8u));

// Sequential stride-8 access over a large array misses exactly once per
// 256-byte line: every 32 real*8 elements, as the paper computes.
TEST(Cache, PaperSequentialAccessArithmetic) {
  Cache c(CacheConfig{});  // the SP2 geometry
  std::uint64_t misses_expected = 0;
  const std::uint64_t n = 1u << 16;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto r = c.access(i * 8, false);
    if (i % 32 == 0) {
      EXPECT_FALSE(r.hit);
      ++misses_expected;
    } else {
      EXPECT_TRUE(r.hit);
    }
  }
  EXPECT_EQ(c.misses(), misses_expected);
  EXPECT_DOUBLE_EQ(static_cast<double>(c.misses()) / n, 1.0 / 32.0);
}

}  // namespace
}  // namespace p2sim::power2
