// Schedule-invariant property tests built on the issue trace.
//
// The trace records every instruction's issue cycle, unit and readiness,
// so pipeline-legality properties can be asserted over whole executions:
// program order, the ICU dispatch width, per-unit exclusivity, dependence
// honouring, and FXU1-only address arithmetic — for every kernel in the
// library and across core configurations.
#include <gtest/gtest.h>

#include <map>

#include "src/power2/core.hpp"
#include "src/power2/mix_kernel.hpp"
#include "src/workload/kernels.hpp"
#include "src/workload/npb.hpp"

namespace p2sim::power2 {
namespace {

void check_schedule_legal(const IssueTrace& t, const KernelDesc& k,
                          const CoreConfig& cfg) {
  // 1. Program order: issue cycles never decrease.
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    ASSERT_GE(t.events[i].issue_cycle, t.events[i - 1].issue_cycle)
        << "out-of-order issue at event " << i;
  }

  // 2. Dispatch width: at most `dispatch_width` instructions per cycle.
  std::map<std::uint64_t, int> per_cycle;
  for (const IssueEvent& e : t.events) per_cycle[e.issue_cycle] += 1;
  for (const auto& [cycle, n] : per_cycle) {
    ASSERT_LE(n, static_cast<int>(cfg.dispatch_width))
        << "dispatch width exceeded at cycle " << cycle;
  }

  // 3. Unit exclusivity: a pipelined unit accepts one instruction per
  //    cycle (FXU and FPU pairs tracked separately; ICU one per cycle).
  std::map<std::pair<int, std::uint64_t>, int> unit_cycle;
  for (const IssueEvent& e : t.events) {
    int unit_key;
    if (is_fixed_point(e.op)) {
      unit_key = e.unit;  // FXU0=0, FXU1=1
    } else if (is_floating_point(e.op)) {
      unit_key = 2 + e.unit;  // FPU0=2, FPU1=3
    } else {
      unit_key = 4;  // ICU
    }
    const int uses = ++unit_cycle[std::make_pair(unit_key, e.issue_cycle)];
    ASSERT_LT(uses, 2) << "two instructions on one unit in cycle "
                       << e.issue_cycle;
  }

  // 4. Dependences: a consumer never issues before its producer is ready.
  std::vector<std::uint64_t> ready_prev(k.body.size(), 0);
  std::vector<std::uint64_t> ready_cur(k.body.size(), 0);
  std::uint32_t cur_iter = 0;
  for (const IssueEvent& e : t.events) {
    if (e.iteration != cur_iter) {
      ready_prev = ready_cur;
      cur_iter = e.iteration;
    }
    const Instr& in = k.body[e.body_index];
    if (in.dep != kNoDep) {
      ASSERT_GE(e.issue_cycle,
                ready_cur[static_cast<std::size_t>(in.dep)])
          << "dep violated at iter " << e.iteration << " idx "
          << e.body_index;
    }
    if (in.carried_dep != kNoDep && e.iteration > 0) {
      ASSERT_GE(e.issue_cycle,
                ready_prev[static_cast<std::size_t>(in.carried_dep)]);
    }
    ready_cur[e.body_index] = e.ready_cycle;

    // 5. Address arithmetic is FXU1-only.
    if (in.op == OpClass::kFxAddrMul || in.op == OpClass::kFxAddrDiv) {
      ASSERT_EQ(e.unit, 1);
    }
    // 6. Readiness never precedes issue.
    ASSERT_GT(e.ready_cycle, e.issue_cycle);
  }
}

TEST(Trace, RecordsEveryInstruction) {
  Power2Core core;
  const KernelDesc k = workload::blocked_matmul();
  const IssueTrace t = core.trace(k, 10);
  EXPECT_EQ(t.events.size(), k.body.size() * 10);
  EXPECT_GE(t.end_cycle, t.start_cycle);
}

TEST(Trace, FormatProducesListing) {
  Power2Core core;
  const IssueTrace t = core.trace(workload::blocked_matmul(), 2);
  const std::string out = t.format(10);
  EXPECT_NE(out.find("fp_fma"), std::string::npos);
  EXPECT_NE(out.find("truncated"), std::string::npos);
}

TEST(Trace, MissesAreFlagged) {
  Power2Core core;
  KernelBuilder b("missy");
  const auto s = b.stream(8ull << 20, 4096);  // TLB + cache miss per access
  b.load(s);
  const KernelDesc k = b.warmup(0).measure(1).build();
  const IssueTrace t = core.trace(k, 50);
  int dmiss = 0, tmiss = 0;
  for (const IssueEvent& e : t.events) {
    dmiss += e.dcache_miss;
    tmiss += e.tlb_miss;
  }
  EXPECT_EQ(dmiss, 50);
  EXPECT_EQ(tmiss, 50);
}

class ScheduleLegality
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ScheduleLegality, HoldsForLibraryKernels) {
  const auto [kernel_id, width] = GetParam();
  KernelDesc k;
  switch (kernel_id) {
    case 0: k = workload::blocked_matmul(); break;
    case 1: k = workload::cfd_multiblock(3, 0.3); break;
    case 2: k = workload::npb_kernel(workload::NpbBenchmark::kLU); break;
    case 3: k = workload::strided_transpose(); break;
    default: k = workload::mdo_ensemble(3); break;
  }
  CoreConfig cfg;
  cfg.dispatch_width = width;
  Power2Core core(cfg);
  const IssueTrace t = core.trace(k, 40);
  check_schedule_legal(t, k, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndWidths, ScheduleLegality,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(2u, 4u, 8u)));

TEST(Trace, LegalUnderAllSteeringPolicies) {
  const KernelDesc k = workload::cfd_multiblock(9, 0.25);
  for (FpuSteering p : {FpuSteering::kFpu0First, FpuSteering::kRoundRobin,
                        FpuSteering::kEarliestFree}) {
    CoreConfig cfg;
    cfg.fpu_steering = p;
    Power2Core core(cfg);
    check_schedule_legal(core.trace(k, 30), k, cfg);
  }
}

TEST(Trace, TraceDoesNotPerturbCounting) {
  // A traced run and an untraced run of the same fresh core produce the
  // same schedule length.
  const KernelDesc k = workload::cfd_multiblock(5, 0.4);
  Power2Core a, b;
  const IssueTrace t = a.trace(k, 100);
  EventCounts scratch;
  const RunResult r = b.run(k, 100);
  (void)scratch;
  // b ran warmup first; compare per-iteration cycle costs loosely.
  const double traced_cpi =
      static_cast<double>(t.end_cycle - t.start_cycle) / 100.0;
  EXPECT_NEAR(traced_cpi, r.cycles_per_iter(), 0.25 * r.cycles_per_iter());
}

}  // namespace
}  // namespace p2sim::power2
