// Persistence round-trip for the signature store: signatures written by
// flush() must reload bit-identically, a corrupt line must degrade to
// re-measurement of just that kernel, and a core-config change must
// invalidate the whole file (measured rates are config-dependent).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/power2/kernel_desc.hpp"
#include "src/power2/signature.hpp"
#include "src/power2/signature_store.hpp"

namespace p2sim::power2 {
namespace {

KernelDesc kernel_a() {
  KernelBuilder b("store_a");
  const auto s = b.stream(1 << 20, 8);
  const auto l = b.load(s);
  b.fma(l);
  b.fp_add();
  return b.warmup(64).measure(2048).build();
}

KernelDesc kernel_b() {
  KernelBuilder b("store_b");
  const auto s = b.stream(1 << 16, 16);
  const auto l = b.load(s);
  b.fp_mul(l);
  return b.warmup(32).measure(1024).build();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  out << body;
}

std::string temp_store(const char* name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

TEST(SignatureStore, RoundTripIsBitIdentical) {
  const std::string path = temp_store("p2sim_store_roundtrip.txt");

  SignatureCache writer({}, {.path = path});
  const EventSignature sig_a = writer.get(kernel_a());
  const EventSignature sig_b = writer.get(kernel_b());
  EXPECT_EQ(writer.stats().measured, 2u);
  ASSERT_TRUE(writer.flush());

  SignatureCache reader({}, {.path = path});
  const SignatureCache::Stats loaded = reader.stats();
  EXPECT_EQ(loaded.store_loaded, 2u);
  EXPECT_EQ(loaded.store_corrupt_lines, 0u);
  EXPECT_FALSE(loaded.store_rejected);

  // Hexfloat serialization: every double survives the disk trip exactly.
  EXPECT_EQ(reader.get(kernel_a()), sig_a);
  EXPECT_EQ(reader.get(kernel_b()), sig_b);
  EXPECT_EQ(reader.stats().measured, 0u);
  // The constructor published the loaded entries as the lock-free
  // snapshot, so both lookups were level-1 hits.
  EXPECT_EQ(reader.stats().snapshot_hits, 2u);

  std::remove(path.c_str());
}

TEST(SignatureStore, CorruptLineFallsBackToMeasurement) {
  const std::string path = temp_store("p2sim_store_corrupt.txt");

  SignatureCache writer({}, {.path = path});
  const EventSignature sig_a = writer.get(kernel_a());
  const EventSignature sig_b = writer.get(kernel_b());
  ASSERT_TRUE(writer.flush());

  // Damage exactly one entry: the per-line checksum no longer matches.
  std::string body = read_file(path);
  const std::size_t pos = body.find("\nsig ");
  ASSERT_NE(pos, std::string::npos);
  body[pos + 1] = 'S';
  write_file(path, body);

  SignatureCache reader({}, {.path = path});
  const SignatureCache::Stats loaded = reader.stats();
  EXPECT_EQ(loaded.store_loaded, 1u);
  EXPECT_EQ(loaded.store_corrupt_lines, 1u);
  EXPECT_FALSE(loaded.store_rejected);

  // The surviving entry loads; the damaged one is transparently
  // re-measured to the same value (measurement is deterministic).
  EXPECT_EQ(reader.get(kernel_a()), sig_a);
  EXPECT_EQ(reader.get(kernel_b()), sig_b);
  EXPECT_EQ(reader.stats().measured, 1u);

  std::remove(path.c_str());
}

TEST(SignatureStore, CoreConfigMismatchInvalidatesStore) {
  const std::string path = temp_store("p2sim_store_corecfg.txt");

  // A cache-resident working set: its miss rate is what a different cache
  // geometry visibly changes (streaming kernels miss either way).
  KernelBuilder b("store_resident");
  const auto s = b.stream(64 * 1024, 8);
  const auto l = b.load(s);
  b.fp_add(l);
  const KernelDesc resident = b.warmup(16384).measure(8192).build();

  SignatureCache writer({}, {.path = path});
  writer.get(resident);
  ASSERT_TRUE(writer.flush());

  CoreConfig tiny;
  tiny.dcache = {.size_bytes = 4096, .line_bytes = 256, .ways = 2};
  SignatureCache reader(tiny, {.path = path});
  const SignatureCache::Stats loaded = reader.stats();
  EXPECT_TRUE(loaded.store_rejected);
  EXPECT_EQ(loaded.store_loaded, 0u);

  // And the mismatched-config measurement really is different, which is
  // why the invalidation matters.
  SignatureCache fresh;
  EXPECT_GT(reader.get(resident).dcache_miss, fresh.get(resident).dcache_miss);
  EXPECT_EQ(reader.stats().measured, 1u);

  std::remove(path.c_str());
}

TEST(SignatureStore, MissingFileIsCleanColdStart) {
  const std::string path = temp_store("p2sim_store_missing.txt");
  SignatureCache cache({}, {.path = path});
  const SignatureCache::Stats s = cache.stats();
  EXPECT_EQ(s.store_loaded, 0u);
  EXPECT_EQ(s.store_corrupt_lines, 0u);
  EXPECT_FALSE(s.store_rejected);
  cache.get(kernel_a());
  EXPECT_EQ(cache.stats().measured, 1u);
  ASSERT_TRUE(cache.flush());
  EXPECT_FALSE(read_file(path).empty());
  std::remove(path.c_str());
}

TEST(SignatureStore, WriteDisabledLeavesNoFile) {
  const std::string path = temp_store("p2sim_store_nowrite.txt");
  SignatureCache cache({}, {.path = path, .read = true, .write = false});
  cache.get(kernel_a());
  EXPECT_TRUE(cache.flush());  // nothing configured to write: success
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good());
}

TEST(SignatureStore, WarmPublishesStoreAndMeasurements) {
  const std::string path = temp_store("p2sim_store_warm.txt");

  {
    SignatureCache writer({}, {.path = path});
    writer.get(kernel_a());
    ASSERT_TRUE(writer.flush());
  }

  SignatureCache cache({}, {.path = path});
  cache.warm({kernel_a(), kernel_b()});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().measured, 1u);  // only kernel_b was missing

  // Post-warm lookups are lock-free snapshot hits for both the
  // store-loaded and the freshly measured kernel.
  const std::uint64_t before = cache.stats().snapshot_hits;
  cache.get(kernel_a());
  cache.get(kernel_b());
  const SignatureCache::Stats after = cache.stats();
  EXPECT_EQ(after.snapshot_hits, before + 2);
  EXPECT_EQ(after.locked_hits, 0u);

  // flush() persists the union; a third cache sees both without measuring.
  ASSERT_TRUE(cache.flush());
  SignatureCache reader({}, {.path = path});
  EXPECT_EQ(reader.stats().store_loaded, 2u);
  reader.get(kernel_a());
  reader.get(kernel_b());
  EXPECT_EQ(reader.stats().measured, 0u);

  std::remove(path.c_str());
}

TEST(SignatureStore, TruncatedStoreIsRejectedAndRebuilt) {
  const std::string path = temp_store("p2sim_store_truncated.txt");

  SignatureCache writer({}, {.path = path});
  const EventSignature sig_a = writer.get(kernel_a());
  writer.get(kernel_b());
  ASSERT_TRUE(writer.flush());

  // The writer "died" before the commit trailer: the surviving prefix is
  // intact but provably incomplete.
  std::string body = read_file(path);
  const std::size_t end_at = body.rfind("end count=");
  ASSERT_NE(end_at, std::string::npos);
  body.resize(end_at);
  write_file(path, body);

  SignatureCache reader({}, {.path = path});
  const SignatureCache::Stats loaded = reader.stats();
  EXPECT_TRUE(loaded.store_rejected);
  EXPECT_EQ(loaded.store_loaded, 0u);

  // Affected kernels transparently re-measure (bit-identical: measurement
  // is deterministic)...
  EXPECT_EQ(reader.get(kernel_a()), sig_a);
  EXPECT_EQ(reader.stats().measured, 1u);

  // ...and the next flush rebuilds a complete, committed store.
  ASSERT_TRUE(reader.flush());
  SignatureCache rebuilt({}, {.path = path});
  EXPECT_FALSE(rebuilt.stats().store_rejected);
  EXPECT_EQ(rebuilt.stats().store_loaded, 1u);

  std::remove(path.c_str());
}

TEST(SignatureStore, MidLineTruncationRejectsWholeStore) {
  const std::string path = temp_store("p2sim_store_midline.txt");

  SignatureCache writer({}, {.path = path});
  writer.get(kernel_a());
  writer.get(kernel_b());
  ASSERT_TRUE(writer.flush());

  // Tear inside the last entry line: the trailer is gone and the final
  // "sig" line is half a line.
  std::string body = read_file(path);
  const std::size_t last_sig = body.rfind("\nsig ");
  ASSERT_NE(last_sig, std::string::npos);
  body.resize(last_sig + 20);
  write_file(path, body);

  std::map<std::uint64_t, EventSignature> out;
  const SignatureStoreReport rep =
      load_signature_store(path, core_config_hash({}), out);
  EXPECT_TRUE(rep.file_found);
  EXPECT_TRUE(rep.header_ok);
  EXPECT_TRUE(rep.core_hash_matched);
  EXPECT_FALSE(rep.committed);
  EXPECT_TRUE(rep.truncated);
  EXPECT_EQ(rep.loaded, 0u);  // nothing adopted, not even the intact line
  EXPECT_TRUE(out.empty());

  std::remove(path.c_str());
}

TEST(SignatureStore, LegacyV1StoreWithoutTrailerStillLoads) {
  const std::string path = temp_store("p2sim_store_v1.txt");

  SignatureCache writer({}, {.path = path});
  writer.get(kernel_a());
  writer.get(kernel_b());
  ASSERT_TRUE(writer.flush());

  // Rewrite the store as a v1 file: v1 header, no commit trailer.
  std::string body = read_file(path);
  const std::size_t ver = body.find(" v2 ");
  ASSERT_NE(ver, std::string::npos);
  body.replace(ver, 4, " v1 ");
  const std::size_t end_at = body.rfind("end count=");
  ASSERT_NE(end_at, std::string::npos);
  body.resize(end_at);
  write_file(path, body);

  std::map<std::uint64_t, EventSignature> out;
  const SignatureStoreReport rep =
      load_signature_store(path, core_config_hash({}), out);
  EXPECT_TRUE(rep.core_hash_matched);
  EXPECT_FALSE(rep.committed);  // v1 predates the trailer
  EXPECT_FALSE(rep.truncated);
  EXPECT_EQ(rep.loaded, 2u);
  EXPECT_EQ(rep.corrupt_lines, 0u);

  std::remove(path.c_str());
}

TEST(SignatureStore, CoreConfigHashCoversCacheGeometry) {
  CoreConfig base;
  CoreConfig other = base;
  other.dcache.ways = base.dcache.ways * 2;
  EXPECT_NE(core_config_hash(base), core_config_hash(other));
  CoreConfig seed = base;
  seed.rng_seed = base.rng_seed + 1;
  EXPECT_NE(core_config_hash(base), core_config_hash(seed));
  EXPECT_EQ(core_config_hash(base), core_config_hash(CoreConfig{}));
}

}  // namespace
}  // namespace p2sim::power2
