#include "src/power2/kernel_desc.hpp"

#include <gtest/gtest.h>

#include "src/power2/isa.hpp"

namespace p2sim::power2 {
namespace {

KernelDesc tiny_kernel() {
  KernelBuilder b("tiny");
  const auto s = b.stream(1024, 8);
  const auto l = b.load(s);
  b.fp_add(l);
  return b.build();
}

TEST(IsaTraits, Classification) {
  EXPECT_TRUE(is_memory(OpClass::kFxLoad));
  EXPECT_TRUE(is_memory(OpClass::kFxStore));
  EXPECT_FALSE(is_memory(OpClass::kFxAlu));
  EXPECT_TRUE(is_fixed_point(OpClass::kFxAddrMul));
  EXPECT_TRUE(is_floating_point(OpClass::kFpFma));
  EXPECT_FALSE(is_floating_point(OpClass::kFxAlu));
  EXPECT_TRUE(is_icu(OpClass::kBranch));
  EXPECT_TRUE(is_icu(OpClass::kCondReg));
}

TEST(IsaTraits, FlopAccounting) {
  EXPECT_EQ(flops_of(OpClass::kFpAdd), 1);
  EXPECT_EQ(flops_of(OpClass::kFpMul), 1);
  EXPECT_EQ(flops_of(OpClass::kFpDiv), 1);
  EXPECT_EQ(flops_of(OpClass::kFpFma), 2);  // "an add and a multiply"
  EXPECT_EQ(flops_of(OpClass::kFpSqrt), 0); // no HPM operation counter
  EXPECT_EQ(flops_of(OpClass::kFxLoad), 0);
}

TEST(IsaTraits, PaperLatencies) {
  EXPECT_EQ(fp_latency(OpClass::kFpDiv), 10);   // "10-cycle divide"
  EXPECT_EQ(fp_latency(OpClass::kFpSqrt), 15);  // "15-cycle square root"
  EXPECT_TRUE(is_multicycle_fp(OpClass::kFpDiv));
  EXPECT_TRUE(is_multicycle_fp(OpClass::kFpSqrt));
  EXPECT_FALSE(is_multicycle_fp(OpClass::kFpFma));
  EXPECT_EQ(fp_busy(OpClass::kFpAdd), 1);   // pipelined
  EXPECT_EQ(fp_busy(OpClass::kFpDiv), 10);  // blocks the unit
}

TEST(IsaTraits, NamesAreDistinct) {
  EXPECT_NE(op_name(OpClass::kFpAdd), op_name(OpClass::kFpMul));
  EXPECT_EQ(op_name(OpClass::kFpFma), "fp_fma");
}

TEST(KernelBuilder, AppendsBranchAutomatically) {
  const KernelDesc k = tiny_kernel();
  ASSERT_FALSE(k.body.empty());
  EXPECT_EQ(k.body.back().op, OpClass::kBranch);
  EXPECT_TRUE(k.validate().empty());
}

TEST(KernelBuilder, IndicesAreSequential) {
  KernelBuilder b("idx");
  const auto s = b.stream(512, 8);
  EXPECT_EQ(b.load(s), 0);
  EXPECT_EQ(b.fp_add(0), 1);
  EXPECT_EQ(b.fma(1), 2);
  const KernelDesc k = b.build();
  EXPECT_EQ(k.body.size(), 4u);  // 3 ops + branch
}

TEST(KernelBuilder, ThrowsOnUnboundStream) {
  KernelBuilder b("bad");
  b.load(3);  // stream 3 never declared
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Validate, EmptyBody) {
  KernelDesc k;
  k.name = "empty";
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, MissingTrailingBranch) {
  KernelDesc k = tiny_kernel();
  k.body.pop_back();
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, ForwardDepRejected) {
  KernelDesc k = tiny_kernel();
  k.body[0].dep = 1;  // depends on a later instruction
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, SelfDepRejected) {
  KernelDesc k = tiny_kernel();
  k.body[1].dep = 1;
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, CarriedDepMayReferenceAnyBodyIndex) {
  KernelDesc k = tiny_kernel();
  k.body[1].carried_dep = 1;  // itself, in the previous iteration: legal
  EXPECT_TRUE(k.validate().empty());
  k.body[1].carried_dep = 99;
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, StreamOnNonMemoryOpRejected) {
  KernelDesc k = tiny_kernel();
  k.body[1].stream = 0;  // fp_add with a stream
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, QuadOnNonMemoryRejected) {
  KernelDesc k = tiny_kernel();
  k.body[1].quad = true;
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, ZeroFootprintRejected) {
  KernelDesc k = tiny_kernel();
  k.streams[0].footprint_bytes = 0;
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, ZeroStrideRejected) {
  KernelDesc k = tiny_kernel();
  k.streams[0].stride_bytes = 0;
  EXPECT_FALSE(k.validate().empty());
}

TEST(Validate, ZeroMeasureItersRejected) {
  KernelDesc k = tiny_kernel();
  k.measure_iters = 0;
  EXPECT_FALSE(k.validate().empty());
}

TEST(StaticCounts, PerIterationTotals) {
  KernelBuilder b("counts");
  const auto s = b.stream(4096, 8);
  b.load(s, /*quad=*/true);
  b.fma(0);
  b.fp_add();
  b.store(s);
  const KernelDesc k = b.build();
  EXPECT_EQ(k.instructions_per_iter(), 5u);
  EXPECT_EQ(k.flops_per_iter(), 3u);   // fma(2) + add(1)
  EXPECT_EQ(k.memrefs_per_iter(), 2u); // quad counts once
}

TEST(ContentHash, StableAndSensitive) {
  const KernelDesc a = tiny_kernel();
  const KernelDesc b = tiny_kernel();
  EXPECT_EQ(a.content_hash(), b.content_hash());

  KernelDesc c = tiny_kernel();
  c.streams[0].stride_bytes = 16;
  EXPECT_NE(a.content_hash(), c.content_hash());

  KernelDesc d = tiny_kernel();
  d.body[1].op = OpClass::kFpMul;
  EXPECT_NE(a.content_hash(), d.content_hash());

  KernelDesc e = tiny_kernel();
  e.measure_iters += 1;
  EXPECT_NE(a.content_hash(), e.content_hash());

  KernelDesc f = tiny_kernel();
  f.name = "other";
  EXPECT_NE(a.content_hash(), f.content_hash());
}

}  // namespace
}  // namespace p2sim::power2
