#include "src/power2/mix_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/power2/isa.hpp"

namespace p2sim::power2 {
namespace {

MixKernelSpec base_spec() {
  MixKernelSpec s;
  s.name = "test_mix";
  s.fp_inst = 20;
  s.fma_frac = 0.30;
  s.mul_frac = 0.20;
  s.div_frac = 0.05;
  s.mem_per_fp = 1.0;
  s.store_frac = 0.25;
  s.seed = 77;
  return s;
}

int count_ops(const KernelDesc& k, OpClass op) {
  int n = 0;
  for (const Instr& in : k.body) n += (in.op == op);
  return n;
}

TEST(MixKernel, DeterministicForSameSpec) {
  const KernelDesc a = make_mix_kernel(base_spec());
  const KernelDesc b = make_mix_kernel(base_spec());
  EXPECT_EQ(a.content_hash(), b.content_hash());
  EXPECT_EQ(a.body, b.body);
}

TEST(MixKernel, DifferentSeedDifferentBody) {
  MixKernelSpec s2 = base_spec();
  s2.seed = 78;
  EXPECT_NE(make_mix_kernel(base_spec()).content_hash(),
            make_mix_kernel(s2).content_hash());
}

TEST(MixKernel, ValidatesCleanly) {
  const KernelDesc k = make_mix_kernel(base_spec());
  EXPECT_TRUE(k.validate().empty());
}

TEST(MixKernel, FpInstructionCountMatchesSpec) {
  const KernelDesc k = make_mix_kernel(base_spec());
  int fp = 0;
  for (const Instr& in : k.body) fp += is_floating_point(in.op);
  EXPECT_EQ(fp, 20);
}

TEST(MixKernel, TypeFractionsRespected) {
  const KernelDesc k = make_mix_kernel(base_spec());
  EXPECT_EQ(count_ops(k, OpClass::kFpFma), 6);   // 0.30 * 20
  EXPECT_EQ(count_ops(k, OpClass::kFpMul), 4);   // 0.20 * 20
  EXPECT_EQ(count_ops(k, OpClass::kFpDiv), 1);   // 0.05 * 20
}

TEST(MixKernel, MemoryInstructionCountMatchesSpec) {
  const KernelDesc k = make_mix_kernel(base_spec());
  EXPECT_EQ(static_cast<int>(k.memrefs_per_iter()), 20);  // mem_per_fp = 1
  EXPECT_EQ(count_ops(k, OpClass::kFxStore), 5);          // 25% stores
}

TEST(MixKernel, StreamsDeclaredAsConfigured) {
  MixKernelSpec s = base_spec();
  s.streams = 7;
  s.stream_footprint_bytes = 12345;
  s.stride_bytes = 16;
  const KernelDesc k = make_mix_kernel(s);
  ASSERT_EQ(k.streams.size(), 7u);
  for (const MemStream& st : k.streams) {
    EXPECT_EQ(st.footprint_bytes, 12345u);
    EXPECT_EQ(st.stride_bytes, 16);
  }
}

TEST(MixKernel, ZeroDepProbMeansNoFpChains) {
  MixKernelSpec s = base_spec();
  s.dep_prob = 0.0;
  s.load_dep_prob = 0.0;
  const KernelDesc k = make_mix_kernel(s);
  for (const Instr& in : k.body) {
    if (is_floating_point(in.op)) {
      EXPECT_EQ(in.dep, kNoDep);
      EXPECT_EQ(in.carried_dep, kNoDep);
    }
  }
}

TEST(MixKernel, FullDepProbChainsEveryFpOp) {
  MixKernelSpec s = base_spec();
  s.dep_prob = 1.0;
  s.carried_prob = 0.0;
  const KernelDesc k = make_mix_kernel(s);
  int fp_seen = 0;
  for (const Instr& in : k.body) {
    if (!is_floating_point(in.op)) continue;
    if (fp_seen > 0) {
      EXPECT_NE(in.dep, kNoDep);
    }
    ++fp_seen;
  }
}

TEST(MixKernel, QuadFractionZeroAndOne) {
  MixKernelSpec s = base_spec();
  s.quad_frac = 0.0;
  for (const Instr& in : make_mix_kernel(s).body) EXPECT_FALSE(in.quad);
  s.quad_frac = 1.0;
  s.seed = 5;
  for (const Instr& in : make_mix_kernel(s).body) {
    if (is_memory(in.op)) {
      EXPECT_TRUE(in.quad);
    }
  }
}

TEST(MixKernel, MetadataPassedThrough) {
  MixKernelSpec s = base_spec();
  s.warmup_iters = 33;
  s.measure_iters = 44;
  s.icache_miss_per_kinst = 0.5;
  const KernelDesc k = make_mix_kernel(s);
  EXPECT_EQ(k.warmup_iters, 33u);
  EXPECT_EQ(k.measure_iters, 44u);
  EXPECT_DOUBLE_EQ(k.icache_miss_per_kinst, 0.5);
  EXPECT_EQ(k.name, "test_mix");
}

TEST(MixKernel, RejectsBadSpecs) {
  MixKernelSpec s = base_spec();
  s.fp_inst = -1;
  EXPECT_THROW(make_mix_kernel(s), std::invalid_argument);
  s = base_spec();
  s.streams = 0;
  EXPECT_THROW(make_mix_kernel(s), std::invalid_argument);
}

TEST(MixKernel, ZeroFpInstructionsStillValid) {
  MixKernelSpec s = base_spec();
  s.fp_inst = 0;
  s.mem_per_fp = 0.0;
  const KernelDesc k = make_mix_kernel(s);
  EXPECT_TRUE(k.validate().empty());
}

}  // namespace
}  // namespace p2sim::power2
