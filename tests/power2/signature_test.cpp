#include "src/power2/signature.hpp"

#include <gtest/gtest.h>

#include "src/power2/kernel_desc.hpp"

namespace p2sim::power2 {
namespace {

KernelDesc simple_kernel() {
  KernelBuilder b("sig_simple");
  const auto s = b.stream(1 << 20, 8);
  const auto l = b.load(s);
  b.fma(l);
  b.fp_add();
  return b.warmup(64).measure(2048).build();
}

TEST(Signature, RatesMatchDirectRun) {
  Power2Core core;
  const KernelDesc k = simple_kernel();
  const EventSignature sig = measure_signature(core, k);

  Power2Core core2;
  const RunResult r = core2.run(k);
  const double c = static_cast<double>(r.counts.cycles);
  EXPECT_NEAR(sig.fxu0_inst + sig.fxu1_inst,
              static_cast<double>(r.counts.fxu_inst()) / c, 1e-12);
  EXPECT_NEAR(sig.flops_per_cycle(),
              static_cast<double>(r.counts.flops()) / c, 1e-12);
  EXPECT_NEAR(sig.cycles_per_iter, r.cycles_per_iter(), 1e-12);
}

TEST(Signature, FlopsPerCycleSumsAllTypes) {
  EventSignature s;
  s.fp_add0 = 0.1;
  s.fp_mul1 = 0.2;
  s.fp_fma0 = 0.3;
  s.fp_div1 = 0.05;
  EXPECT_NEAR(s.flops_per_cycle(), 0.65, 1e-12);
}

TEST(Signature, MflopsAtClock) {
  EventSignature s;
  s.fp_add0 = 0.5;
  EXPECT_NEAR(s.mflops(100e6), 50.0, 1e-9);
}

TEST(Signature, ScaleProducesProportionalCounts) {
  EventSignature s;
  s.fp_add0 = 0.25;
  s.fxu0_inst = 0.5;
  s.dcache_miss = 0.01;
  const EventCounts ev = s.scale(1'000'000.0);
  EXPECT_EQ(ev.cycles, 1'000'000u);
  EXPECT_EQ(ev.fp_add0, 250'000u);
  EXPECT_EQ(ev.fxu0_inst, 500'000u);
  EXPECT_EQ(ev.dcache_miss, 10'000u);
}

TEST(Signature, ScaleZeroOrNegativeIsEmpty) {
  EventSignature s;
  s.fp_add0 = 1.0;
  EXPECT_EQ(s.scale(0.0), EventCounts{});
  EXPECT_EQ(s.scale(-5.0), EventCounts{});
}

TEST(Signature, ScaleRoundTripApproximatesRun) {
  Power2Core core;
  const KernelDesc k = simple_kernel();
  const EventSignature sig = measure_signature(core, k);
  Power2Core core2;
  const RunResult r = core2.run(k);
  const EventCounts scaled = sig.scale(static_cast<double>(r.counts.cycles));
  // Rounding only: within one event of the direct run.
  EXPECT_NEAR(static_cast<double>(scaled.fp_add0),
              static_cast<double>(r.counts.fp_add0), 1.0);
  EXPECT_NEAR(static_cast<double>(scaled.memory_inst),
              static_cast<double>(r.counts.memory_inst), 1.0);
}

TEST(SignatureCache, MemoizesByContent) {
  SignatureCache cache;
  const KernelDesc k = simple_kernel();
  const EventSignature& a = cache.get(k);
  const EventSignature& b = cache.get(k);
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SignatureCache, DistinctKernelsDistinctEntries) {
  SignatureCache cache;
  cache.get(simple_kernel());
  KernelBuilder b2("sig_other");
  b2.fp_add();
  cache.get(b2.warmup(8).measure(256).build());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SignatureCache, HonorsCoreConfig) {
  // A cache-resident working set measured on a core with a tiny cache
  // must show a higher miss rate.
  KernelBuilder b("resident");
  const auto s = b.stream(64 * 1024, 8);  // fits the 256 kB SP2 cache
  const auto l = b.load(s);
  b.fp_add(l);
  // Warmup walks the full 8192-element footprint so the SP2-sized cache
  // reaches its zero-miss steady state before measurement.
  const KernelDesc k = b.warmup(16384).measure(8192).build();

  SignatureCache normal;
  CoreConfig tiny;
  tiny.dcache = {.size_bytes = 4096, .line_bytes = 256, .ways = 2};
  SignatureCache small(tiny);
  EXPECT_GT(small.get(k).dcache_miss, normal.get(k).dcache_miss);
}

}  // namespace
}  // namespace p2sim::power2
