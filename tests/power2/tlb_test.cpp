#include "src/power2/tlb.hpp"

#include <gtest/gtest.h>

namespace p2sim::power2 {
namespace {

TEST(TlbConfig, DefaultIsTheSp2Geometry) {
  TlbConfig cfg;
  EXPECT_EQ(cfg.entries, 512u);     // "supports 512 entries in the TLB"
  EXPECT_EQ(cfg.page_bytes, 4096u); // "page size of 4096 bytes"
  EXPECT_TRUE(cfg.valid());
}

TEST(TlbConfig, RejectsBadGeometry) {
  EXPECT_FALSE(TlbConfig({.entries = 0}).valid());
  EXPECT_FALSE(TlbConfig({.page_bytes = 1000}).valid());
  EXPECT_FALSE(TlbConfig({.entries = 10, .ways = 4}).valid());
  EXPECT_THROW(Tlb(TlbConfig{.entries = 0}), std::invalid_argument);
}

TEST(Tlb, MissThenHitSamePage) {
  Tlb t(TlbConfig{});
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1FFF));   // same 4 kB page
  EXPECT_FALSE(t.access(0x2000));  // next page
}

TEST(Tlb, CountsHitsAndMisses) {
  Tlb t(TlbConfig{});
  t.access(0);
  t.access(0);
  t.access(4096);
  EXPECT_EQ(t.misses(), 2u);
  EXPECT_EQ(t.hits(), 1u);
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb t({.entries = 4, .page_bytes = 4096, .ways = 2});  // 2 sets
  // Pages 0, 2, 4 share set 0 (vpn mod 2 == 0).
  const std::uint64_t p0 = 0, p2 = 2 * 4096, p4 = 4 * 4096;
  t.access(p0);
  t.access(p2);
  t.access(p0);  // refresh
  t.access(p4);  // evicts p2
  EXPECT_TRUE(t.access(p0));
  EXPECT_FALSE(t.access(p2));
}

TEST(Tlb, FlushDropsTranslations) {
  Tlb t(TlbConfig{});
  t.access(0);
  t.flush();
  EXPECT_FALSE(t.access(0));
}

TEST(Tlb, ReachIsTwoMegabytes) {
  // 512 entries x 4 kB pages = 2 MB of reach: touching 2 MB round-robin
  // leaves everything resident; exceeding it thrashes.
  Tlb t(TlbConfig{});
  const std::uint64_t pages = 512;
  for (std::uint64_t p = 0; p < pages; ++p) t.access(p * 4096);
  std::uint64_t second_pass_misses = 0;
  for (std::uint64_t p = 0; p < pages; ++p) {
    if (!t.access(p * 4096)) ++second_pass_misses;
  }
  EXPECT_EQ(second_pass_misses, 0u);
}

TEST(Tlb, SequentialStride8MissesEvery512Elements) {
  // The paper: "a TLB miss every 512 elements" for real*8 streaming.
  Tlb t(TlbConfig{});
  const std::uint64_t n = 1u << 16;
  std::uint64_t misses = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!t.access(1ull << 30 | (i * 8))) ++misses;
  }
  EXPECT_DOUBLE_EQ(static_cast<double>(misses) / n, 1.0 / 512.0);
}

class TlbSizeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlbSizeProperty, LargerTlbNeverMissesMore) {
  const std::uint32_t entries = GetParam();
  Tlb small({.entries = entries, .page_bytes = 4096, .ways = 2});
  Tlb large({.entries = entries * 2, .page_bytes = 4096, .ways = 4});
  std::uint64_t x = 99;
  for (int i = 0; i < 30000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t addr = (x >> 30) % (entries * 4096ull * 8);
    small.access(addr);
    large.access(addr);
  }
  EXPECT_LE(large.misses(), small.misses());
}

INSTANTIATE_TEST_SUITE_P(Entries, TlbSizeProperty,
                         ::testing::Values(16u, 64u, 256u, 512u));

}  // namespace
}  // namespace p2sim::power2
