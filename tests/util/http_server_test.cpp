// Embedded HTTP server contract tests: correct request/response plumbing,
// keep-alive and pipelining, the hostile-client defences (malformed lines,
// oversize requests, slow-loris timeouts, mid-response disconnects), many
// concurrent clients, observer accounting — plus HttpServerFuzz, a
// malformed-bytes corpus CI replays under AddressSanitizer.
#include "src/util/http_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/util/http_client.hpp"

namespace p2sim::util {
namespace {

HttpResponse echo_handler(const HttpRequest& req) {
  HttpResponse resp;
  if (req.path == "/hello") {
    resp.body = "hi there\n";
  } else if (req.path == "/query") {
    resp.body = "q=" + req.query + "\n";
  } else if (req.path == "/big") {
    resp.body.assign(64 * 1024, 'x');
  } else if (req.path == "/boom") {
    throw std::runtime_error("handler exploded");
  } else {
    resp.status = 404;
    resp.body = "nope\n";
  }
  return resp;
}

class ServerFixture : public ::testing::Test {
 protected:
  void start(HttpServerConfig cfg = {}) {
    std::string error;
    ASSERT_TRUE(server_.start(cfg, echo_handler, &error)) << error;
    ASSERT_NE(server_.port(), 0);
  }
  HttpFetch get(const std::string& target, int timeout_ms = 5000) {
    return http_get("127.0.0.1", server_.port(), target, timeout_ms);
  }
  HttpServer server_;
};

TEST_F(ServerFixture, ServesGetAndRoutesPaths) {
  start();
  const HttpFetch hello = get("/hello");
  ASSERT_TRUE(hello.ok) << hello.error;
  EXPECT_EQ(hello.status, 200);
  EXPECT_EQ(hello.body, "hi there\n");

  const HttpFetch q = get("/query?limit=5");
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_EQ(q.body, "q=limit=5\n");

  const HttpFetch missing = get("/no-such");
  ASSERT_TRUE(missing.ok) << missing.error;
  EXPECT_EQ(missing.status, 404);
}

TEST_F(ServerFixture, LargeResponseArrivesWhole) {
  start();
  const HttpFetch big = get("/big");
  ASSERT_TRUE(big.ok) << big.error;
  EXPECT_EQ(big.status, 200);
  EXPECT_EQ(big.body.size(), 64u * 1024u);
  EXPECT_EQ(big.body.front(), 'x');
  EXPECT_EQ(big.body.back(), 'x');
}

TEST_F(ServerFixture, ThrowingHandlerBecomes500) {
  start();
  const HttpFetch boom = get("/boom");
  ASSERT_TRUE(boom.ok) << boom.error;
  EXPECT_EQ(boom.status, 500);
  // The server survives the throw.
  EXPECT_EQ(get("/hello").status, 200);
}

TEST_F(ServerFixture, KeepAlivePipeliningServesInOrder) {
  start();
  const std::string two =
      "GET /hello HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /query?a=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const HttpFetch raw = http_raw("127.0.0.1", server_.port(), two);
  ASSERT_TRUE(raw.ok) << raw.error;
  // Both responses came back on the one connection, in request order.
  const std::size_t first = raw.raw.find("hi there");
  const std::size_t second = raw.raw.find("q=a=1");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST_F(ServerFixture, MalformedRequestLineGets400) {
  start();
  const HttpFetch raw =
      http_raw("127.0.0.1", server_.port(), "THIS IS NOT HTTP\r\n\r\n");
  ASSERT_TRUE(raw.ok) << raw.error;
  EXPECT_EQ(raw.status, 400);
}

TEST_F(ServerFixture, OversizeRequestGets413) {
  HttpServerConfig cfg;
  cfg.max_request_bytes = 512;
  start(cfg);
  std::string huge = "GET /hello HTTP/1.1\r\nHost: t\r\nX-Pad: ";
  huge.append(4096, 'p');
  huge += "\r\n\r\n";
  const HttpFetch raw = http_raw("127.0.0.1", server_.port(), huge);
  ASSERT_TRUE(raw.ok) << raw.error;
  EXPECT_EQ(raw.status, 413);
}

TEST_F(ServerFixture, SlowLorisPartialRequestGets408) {
  HttpServerConfig cfg;
  cfg.header_timeout_ms = 150;
  start(cfg);
  // An eternally incomplete request: the server must cut it off with 408
  // rather than hold the connection hostage.
  const HttpFetch raw = http_raw("127.0.0.1", server_.port(),
                                 "GET /hello HTTP/1.1\r\nHost: t\r\n",
                                 /*timeout_ms=*/5000);
  ASSERT_TRUE(raw.ok) << raw.error;
  EXPECT_EQ(raw.status, 408);
}

TEST_F(ServerFixture, MidResponseDisconnectIsTolerated) {
  start();
  // Fire requests and abandon the connection before reading the response;
  // the server must shrug (EPIPE) and keep serving everyone else.
  for (int i = 0; i < 8; ++i) {
    (void)http_raw("127.0.0.1", server_.port(),
                   "GET /big HTTP/1.1\r\nHost: t\r\n\r\n",
                   /*timeout_ms=*/1);
  }
  const HttpFetch after = get("/hello");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.status, 200);
}

TEST_F(ServerFixture, SixteenConcurrentClientsAllSucceed) {
  start();
  constexpr int kClients = 16;
  constexpr int kRequests = 25;
  std::atomic<int> good{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &good] {
      for (int r = 0; r < kRequests; ++r) {
        // Bounded retry: on a saturated CI machine the loop thread can be
        // descheduled past a client's transport deadline; what must never
        // happen is a served-but-wrong response, which retries don't mask.
        HttpFetch got;
        for (int attempt = 0; attempt < 5 && !got.ok; ++attempt) {
          if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 << attempt));
          }
          got = get("/hello");
        }
        if (got.ok && got.status == 200 && got.body == "hi there\n") {
          good.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(good.load(std::memory_order_relaxed), kClients * kRequests);
}

class CountingObserver : public HttpObserver {
 public:
  void on_connection_delta(int delta) override { delta_sum_ += delta; }
  void on_request(const std::string& method, const std::string& path,
                  int status, double handler_seconds) override {
    ++requests_;
    if (status >= 400) ++errors_;
    if (!method.empty() && method != "GET") ++non_get_;
    (void)path;
    if (handler_seconds < 0) ++negative_times_;
  }
  int delta_sum_ = 0;
  int requests_ = 0;
  int errors_ = 0;
  int non_get_ = 0;
  int negative_times_ = 0;
};

TEST(HttpServerObserver, CountsRequestsAndBalancesConnections) {
  CountingObserver obs;
  HttpServerConfig cfg;
  cfg.observer = &obs;
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(cfg, echo_handler, &error)) << error;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(http_get("127.0.0.1", server.port(), "/hello").status, 200);
  }
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/missing").status, 404);
  (void)http_raw("127.0.0.1", server.port(), "garbage\r\n\r\n");
  server.stop();
  // All callbacks run on the loop thread; stop() joined it, so plain reads
  // here are ordered after every callback.
  EXPECT_EQ(obs.requests_, 7);
  EXPECT_EQ(obs.errors_, 2);  // the 404 and the 400
  EXPECT_EQ(obs.delta_sum_, 0);
  EXPECT_EQ(obs.negative_times_, 0);
}

TEST(HttpServerLifecycle, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.stop();  // never started: no-op
  std::string error;
  ASSERT_TRUE(server.start({}, echo_handler, &error)) << error;
  EXPECT_FALSE(server.start({}, echo_handler, &error));  // already running
  server.stop();
  server.stop();  // idempotent
  ASSERT_TRUE(server.start({}, echo_handler, &error)) << error;
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/hello").status, 200);
  server.stop();
}

// The malformed-request corpus: every entry must elicit either a clean
// error response or a clean close — never a crash, hang or sanitizer
// report.  CI replays this suite under AddressSanitizer+UBSan.
TEST(HttpServerFuzz, MalformedCorpusNeverKillsTheServer) {
  HttpServer server;
  std::string error;
  ASSERT_TRUE(server.start({}, echo_handler, &error)) << error;
  const std::vector<std::string> corpus = {
      "",
      "\r\n\r\n",
      "GET\r\n\r\n",
      "GET /\r\n\r\n",
      "GET / HTTP/2.0\r\n\r\n",
      "get / HTTP/1.1\r\n\r\n",
      "GET no-slash HTTP/1.1\r\n\r\n",
      "GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n",
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 999999999999999\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab",  // short body
      std::string("GET /\0null HTTP/1.1\r\n\r\n", 23),
      "POST /hello HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
      "\x01\x02\x03\xff\xfe garbage bytes \x00\x7f",
      "GET " + std::string(2000, '/') + " HTTP/1.1\r\n\r\n",
      std::string(3, '\r') + std::string(3, '\n'),
      "OPTIONS * HTTP/1.1\r\n\r\n",
  };
  for (const std::string& bytes : corpus) {
    (void)http_raw("127.0.0.1", server.port(), bytes, /*timeout_ms=*/1000);
    // After every probe the server still answers a well-formed request.
    const HttpFetch alive = http_get("127.0.0.1", server.port(), "/hello");
    ASSERT_TRUE(alive.ok) << "server died after corpus entry: " << alive.error;
    ASSERT_EQ(alive.status, 200);
  }
  server.stop();
}

}  // namespace
}  // namespace p2sim::util
