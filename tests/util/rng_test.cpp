#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace p2sim::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Xoshiro, UniformMeanNearHalf) {
  Xoshiro256StarStar rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256StarStar rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneIsAlwaysZero) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(9);
  std::array<int, 8> counts{};
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.below(8)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256StarStar rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, NormalMomentsMatch) {
  Xoshiro256StarStar rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro, NormalWithParams) {
  Xoshiro256StarStar rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro, LognormalMedianIsMedian) {
  Xoshiro256StarStar rng(23);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal_median(100.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], 100.0, 2.0);
}

TEST(Xoshiro, ExponentialMean) {
  Xoshiro256StarStar rng(29);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Xoshiro, PoissonMeanAndZeroMean) {
  Xoshiro256StarStar rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.08);
}

TEST(Xoshiro, PoissonLargeMeanUsesApproximation) {
  Xoshiro256StarStar rng(37);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256StarStar rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro, SplitProducesIndependentStreams) {
  Xoshiro256StarStar parent(43);
  Xoshiro256StarStar c1 = parent.split(1);
  Xoshiro256StarStar c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += (c1.next() == c2.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, SplitSameTagDiffersAcrossCalls) {
  // Each split consumes parent state, so even the same tag yields a new
  // stream (children are never accidentally identical).
  Xoshiro256StarStar parent(47);
  Xoshiro256StarStar c1 = parent.split(9);
  Xoshiro256StarStar c2 = parent.split(9);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(SampleDiscrete, RespectsWeights) {
  Xoshiro256StarStar rng(53);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[sample_discrete(rng, w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], n / 4, n * 0.02);
  EXPECT_NEAR(counts[2], 3 * n / 4, n * 0.02);
}

TEST(SampleDiscrete, AllZeroWeightsReturnsSize) {
  Xoshiro256StarStar rng(59);
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(sample_discrete(rng, w), w.size());
}

TEST(SampleDiscrete, NegativeWeightsTreatedAsZero) {
  Xoshiro256StarStar rng(61);
  const std::vector<double> w = {-5.0, 2.0};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(sample_discrete(rng, w), 1u);
}

TEST(SampleDiscrete, SingleElement) {
  Xoshiro256StarStar rng(67);
  const std::vector<double> w = {0.5};
  EXPECT_EQ(sample_discrete(rng, w), 0u);
}

}  // namespace
}  // namespace p2sim::util
