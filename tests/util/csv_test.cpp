#include "src/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace p2sim::util {
namespace {

TEST(CsvEscape, PlainStringUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, FieldsSeparatedByCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field("a").field("b").field("c");
  w.endrow();
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, NumericFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(1.5).field(std::int64_t{-7}).field(std::uint64_t{42});
  w.endrow();
  EXPECT_EQ(os.str(), "1.5,-7,42\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"x", "y"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(CsvWriter, QuotedFieldInRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"plain", "with,comma"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\"\n");
}

}  // namespace
}  // namespace p2sim::util
