#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace p2sim::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.2502502502, 1e-6);
}

TEST(MovingAverage, WindowOfOneTracksInput) {
  MovingAverage ma(1);
  EXPECT_EQ(ma.add(3.0), 3.0);
  EXPECT_EQ(ma.add(7.0), 7.0);
}

TEST(MovingAverage, PartialWindowAveragesWhatExists) {
  MovingAverage ma(4);
  EXPECT_DOUBLE_EQ(ma.add(2.0), 2.0);
  EXPECT_DOUBLE_EQ(ma.add(4.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.add(6.0), 4.0);
}

TEST(MovingAverage, SlidesCorrectly) {
  MovingAverage ma(2);
  ma.add(1.0);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.add(5.0), 4.0);   // (3+5)/2
  EXPECT_DOUBLE_EQ(ma.add(11.0), 8.0);  // (5+11)/2
}

TEST(MovingAverage, ZeroWindowClampsToOne) {
  MovingAverage ma(0);
  EXPECT_EQ(ma.window(), 1u);
  EXPECT_EQ(ma.add(9.0), 9.0);
}

TEST(MovingAverageSeries, MatchesIncremental) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7};
  const auto out = moving_average(xs, 3);
  ASSERT_EQ(out.size(), xs.size());
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
  EXPECT_DOUBLE_EQ(out[6], 6.0);
}

TEST(Pearson, PerfectPositive) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {10, 20, 30, 40};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {5, 5, 5};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, TooShortGivesZero) {
  std::vector<double> x = {1};
  std::vector<double> y = {2};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(LinearSlope, KnownLine) {
  std::vector<double> x = {0, 1, 2, 3};
  std::vector<double> y = {1, 3, 5, 7};
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(LinearSlope, FlatLine) {
  std::vector<double> x = {0, 1, 2};
  std::vector<double> y = {4, 4, 4};
  EXPECT_EQ(linear_slope(x, y), 0.0);
}

TEST(LinearSlope, DegenerateX) {
  std::vector<double> x = {2, 2, 2};
  std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(linear_slope(x, y), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, EmptyIsZero) {
  std::vector<double> xs;
  EXPECT_EQ(quantile(xs, 0.5), 0.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 2.0);
}

}  // namespace
}  // namespace p2sim::util
