#include "src/util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace p2sim::util {
namespace {

TEST(RenderChart, ContainsTitleAndLegend) {
  Series s{.name = "daily", .xs = {0, 1, 2}, .ys = {1, 2, 3}, .glyph = '*'};
  ChartOptions opts;
  opts.title = "Figure 1";
  opts.x_label = "day";
  opts.y_label = "Gflops";
  const std::string out = render_chart({s}, opts);
  EXPECT_NE(out.find("Figure 1"), std::string::npos);
  EXPECT_NE(out.find("daily"), std::string::npos);
  EXPECT_NE(out.find("x: day"), std::string::npos);
  EXPECT_NE(out.find("y: Gflops"), std::string::npos);
}

TEST(RenderChart, PlotsGlyphs) {
  Series s{.name = "s", .xs = {0, 1}, .ys = {0, 1}, .glyph = '#'};
  const std::string out = render_chart({s}, {});
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(RenderChart, EmptySeriesDoesNotCrash) {
  Series s{.name = "empty", .xs = {}, .ys = {}, .glyph = '*'};
  const std::string out = render_chart({s}, {});
  EXPECT_FALSE(out.empty());
}

TEST(RenderChart, MultipleSeriesDistinctGlyphs) {
  Series a{.name = "a", .xs = {0, 1}, .ys = {0, 1}, .glyph = 'a'};
  Series b{.name = "b", .xs = {0, 1}, .ys = {1, 0}, .glyph = 'b'};
  const std::string out = render_chart({a, b}, {});
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(RenderChart, HeightControlsRows) {
  Series s{.name = "s", .xs = {0, 1}, .ys = {0, 1}, .glyph = '*'};
  ChartOptions opts;
  opts.height = 8;
  const std::string out = render_chart({s}, opts);
  int rows = 0;
  for (char c : out) rows += (c == '\n');
  // 8 plot rows + frame + range line + legend.
  EXPECT_GE(rows, 10);
}

TEST(RenderBars, ShowsLabelsAndValues) {
  const std::string out =
      render_bars({{"16", 900.0}, {"32", 450.0}}, "walltime by nodes");
  EXPECT_NE(out.find("walltime by nodes"), std::string::npos);
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(RenderBars, LargestBarIsLongest) {
  const std::string out = render_bars({{"a", 10.0}, {"b", 100.0}}, "t", 40);
  const auto line_of = [&](const std::string& label) {
    const auto pos = out.find("  " + label + " ");
    const auto end = out.find('\n', pos);
    return out.substr(pos, end - pos);
  };
  const auto count_hashes = [](const std::string& s) {
    int n = 0;
    for (char c : s) n += (c == '#');
    return n;
  };
  EXPECT_LT(count_hashes(line_of("a")), count_hashes(line_of("b")));
}

TEST(RenderBars, AllZeroValuesSafe) {
  const std::string out = render_bars({{"a", 0.0}}, "t");
  EXPECT_NE(out.find('a'), std::string::npos);
}

}  // namespace
}  // namespace p2sim::util
