#include "src/util/histogram.hpp"

#include <gtest/gtest.h>

namespace p2sim::util {
namespace {

TEST(KeyedHistogram, EmptyState) {
  KeyedHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.total(5), 0.0);
  EXPECT_EQ(h.stats(5), nullptr);
  EXPECT_EQ(h.grand_total(), 0.0);
  EXPECT_EQ(h.argmax_total(), 0);
}

TEST(KeyedHistogram, AccumulatesPerKey) {
  KeyedHistogram h;
  h.add(16, 100.0);
  h.add(16, 50.0);
  h.add(32, 60.0);
  EXPECT_DOUBLE_EQ(h.total(16), 150.0);
  EXPECT_DOUBLE_EQ(h.total(32), 60.0);
  EXPECT_DOUBLE_EQ(h.grand_total(), 210.0);
  EXPECT_EQ(h.size(), 2u);
}

TEST(KeyedHistogram, PerKeyStats) {
  KeyedHistogram h;
  h.add(8, 10.0);
  h.add(8, 20.0);
  const RunningStats* s = h.stats(8);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count(), 2u);
  EXPECT_DOUBLE_EQ(s->mean(), 15.0);
}

TEST(KeyedHistogram, KeysAreSorted) {
  KeyedHistogram h;
  h.add(32, 1.0);
  h.add(8, 1.0);
  h.add(16, 1.0);
  const auto keys = h.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], 8);
  EXPECT_EQ(keys[1], 16);
  EXPECT_EQ(keys[2], 32);
}

TEST(KeyedHistogram, ArgmaxFindsHeaviestBucket) {
  // The paper's "most popular choice of nodes" query.
  KeyedHistogram h;
  h.add(8, 500.0);
  h.add(16, 900.0);
  h.add(32, 400.0);
  EXPECT_EQ(h.argmax_total(), 16);
}

TEST(KeyedHistogram, NegativeKeysSupported) {
  KeyedHistogram h;
  h.add(-2, 3.0);
  EXPECT_DOUBLE_EQ(h.total(-2), 3.0);
  EXPECT_EQ(h.argmax_total(), -2);
}

}  // namespace
}  // namespace p2sim::util
