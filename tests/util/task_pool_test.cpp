#include "src/util/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace p2sim::util {
namespace {

// The static shard map is the determinism contract: it must cover [0, n)
// exactly once, in order, for every worker count — and it must be a pure
// function of (n, workers), never of scheduling.
TEST(ShardRange, CoversEveryIndexExactlyOnceInOrder) {
  for (std::size_t n : {0UL, 1UL, 2UL, 7UL, 16UL, 144UL, 1000UL}) {
    for (int workers : {1, 2, 3, 4, 7, 16}) {
      std::size_t next = 0;
      for (int w = 0; w < workers; ++w) {
        const ShardRange r = shard_range(n, w, workers);
        EXPECT_EQ(r.begin, next) << "n=" << n << " w=" << w;
        EXPECT_LE(r.begin, r.end);
        next = r.end;
      }
      EXPECT_EQ(next, n) << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(ShardRange, BalancedToWithinOneItem) {
  const std::size_t n = 144;
  for (int workers : {2, 3, 4, 5, 7}) {
    for (int w = 0; w < workers; ++w) {
      const ShardRange r = shard_range(n, w, workers);
      const std::size_t len = r.end - r.begin;
      EXPECT_GE(len, n / static_cast<std::size_t>(workers));
      EXPECT_LE(len, n / static_cast<std::size_t>(workers) + 1);
    }
  }
}

TEST(ShardRange, MoreWorkersThanItemsYieldsEmptyTailShards) {
  int nonempty = 0;
  for (int w = 0; w < 8; ++w) {
    if (!shard_range(3, w, 8).empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3);
}

TEST(TaskPool, RejectsNegativeThreadCount) {
  EXPECT_THROW(TaskPool(-1), std::invalid_argument);
}

TEST(TaskPool, ZeroResolvesToHardwareConcurrency) {
  const TaskPool pool(0);
  EXPECT_GE(pool.threads(), 1);
}

TEST(TaskPool, SerialBypassRunsWholeRangeInline) {
  TaskPool pool(1);
  std::vector<int> hit(10, 0);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hit[i];
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(TaskPool, ZeroItemsIsANoOp) {
  TaskPool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TaskPool, ParallelRunTouchesEveryIndexExactlyOnce) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> hit(144);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

TEST(TaskPool, FewerItemsThanThreadsStillCoversAll) {
  TaskPool pool(8);
  std::vector<std::atomic<int>> hit(3);
  pool.run(hit.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hit[i].fetch_add(1);
  });
  for (const auto& h : hit) EXPECT_EQ(h.load(), 1);
}

// The pool is reusable across dispatches (the driver calls run() once per
// interval, ~26k times per campaign) and results must match serial math.
TEST(TaskPool, RepeatedDispatchesMatchSerialSum) {
  const std::size_t n = 1000;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 0.001 * static_cast<double>(i);
  }
  std::vector<double> out_serial(n), out_parallel(n);
  TaskPool serial(1), parallel(4);
  for (int round = 0; round < 50; ++round) {
    auto body = [&](std::vector<double>& out) {
      return [&values, &out](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) out[i] += values[i] * values[i];
      };
    };
    serial.run(n, body(out_serial));
    parallel.run(n, body(out_parallel));
  }
  // Element-wise bitwise equality: each index is computed by exactly one
  // worker with the same arithmetic, so no tolerance is needed.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out_serial[i], out_parallel[i]) << "i=" << i;
  }
}

TEST(TaskPool, WorkerExceptionPropagatesToCaller) {
  TaskPool pool(4);
  EXPECT_THROW(
      pool.run(100,
               [](std::size_t b, std::size_t) {
                 if (b >= 25) throw std::runtime_error("shard failed");
               }),
      std::runtime_error);
  // The pool must stay usable after a failed dispatch.
  std::atomic<int> total{0};
  pool.run(100, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(TaskPool, CallerShardExceptionAlsoPropagates) {
  TaskPool pool(2);
  EXPECT_THROW(pool.run(10,
                        [](std::size_t b, std::size_t) {
                          if (b == 0) throw std::runtime_error("caller shard");
                        }),
               std::runtime_error);
}

}  // namespace
}  // namespace p2sim::util
