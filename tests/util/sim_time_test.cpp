#include "src/util/sim_time.hpp"

#include <gtest/gtest.h>

namespace p2sim::util {
namespace {

TEST(Constants, IntervalGeometryMatchesPaper) {
  EXPECT_EQ(kIntervalSeconds, 900);   // 15-minute cron samples
  EXPECT_EQ(kIntervalsPerDay, 96);
  EXPECT_EQ(kCampaignDays, 270);      // nine months
}

TEST(Constants, PeakRateIsFourFlopsPerCycle) {
  EXPECT_NEAR(MachineClock::kPeakMflopsPerNode,
              4.0 * MachineClock::kHz / 1e6, 1e-9);
}

TEST(Cycles, ConversionAtClock) {
  EXPECT_DOUBLE_EQ(cycles_in(1.0), 66.7e6);
  EXPECT_DOUBLE_EQ(cycles_in(0.0), 0.0);
}

TEST(SimClock, StartsAtZero) {
  SimClock c;
  EXPECT_EQ(c.interval(), 0);
  EXPECT_EQ(c.day(), 0);
  EXPECT_EQ(c.seconds(), 0.0);
}

TEST(SimClock, TickAdvancesInterval) {
  SimClock c;
  c.tick();
  EXPECT_EQ(c.interval(), 1);
  EXPECT_DOUBLE_EQ(c.seconds(), 900.0);
}

TEST(SimClock, DayRollsAt96Intervals) {
  SimClock c;
  for (int i = 0; i < 96; ++i) c.tick();
  EXPECT_EQ(c.day(), 1);
  EXPECT_EQ(c.interval_of_day(), 0);
}

TEST(SimClock, StampFormatsDayAndTime) {
  SimClock c;
  for (int i = 0; i < 96 + 5; ++i) c.tick();  // day 1, 01:15
  EXPECT_EQ(c.stamp(), "day 1, 01:15");
}

TEST(SimClock, ResetReturnsToZero) {
  SimClock c;
  c.tick();
  c.reset();
  EXPECT_EQ(c.interval(), 0);
}

TEST(DayOfWeek, CyclesFromMonday) {
  EXPECT_EQ(day_of_week(0), 0);
  EXPECT_EQ(day_of_week(6), 6);
  EXPECT_EQ(day_of_week(7), 0);
}

TEST(Weekend, SaturdayAndSundayOnly) {
  int weekend_days = 0;
  for (std::int64_t d = 0; d < 14; ++d) weekend_days += is_weekend(d);
  EXPECT_EQ(weekend_days, 4);
  EXPECT_FALSE(is_weekend(0));
  EXPECT_TRUE(is_weekend(5));
  EXPECT_TRUE(is_weekend(6));
}

}  // namespace
}  // namespace p2sim::util
