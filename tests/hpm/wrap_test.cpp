// 32-bit wrap behaviour of the physical counters and the RS2HPM 64-bit
// extension layer.
//
// At 66.7 MHz the cycle counter wraps every ~64 seconds; the campaign
// sampled every 15 minutes per node only because the daemon's multipass
// layer (ExtendedCounters) sampled far faster underneath.  These tests pin
// the arithmetic contract: CounterBank is exactly mod-2^32, wrap_delta
// recovers sub-wrap differences, and ExtendedCounters stays exact across
// one and many wrap periods -- and under-counts by exactly 2^32 when the
// sampling contract is broken.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/check.hpp"
#include "src/hpm/monitor.hpp"
#include "src/rs2hpm/daemon.hpp"
#include "src/rs2hpm/snapshot.hpp"

namespace p2sim {
namespace {

constexpr std::uint64_t kWrap = std::uint64_t{1} << 32;

// ~64 seconds of the 66.7 MHz cycle counter: just below one wrap.
constexpr std::uint64_t kWrapPeriodCycles = 4'268'800'000;  // 64 s * 66.7 MHz

power2::EventCounts cycles_only(std::uint64_t n) {
  power2::EventCounts ev;
  ev.cycles = n;
  return ev;
}

TEST(CounterBankWrap, AddWrapsMod32Bits) {
  hpm::CounterBank bank;
  bank.add(hpm::HpmCounter::kUserCycles, 0xFFFF'FFFFu);
  EXPECT_EQ(bank.read(hpm::HpmCounter::kUserCycles), 0xFFFF'FFFFu);
  bank.add(hpm::HpmCounter::kUserCycles, 1);
  EXPECT_EQ(bank.read(hpm::HpmCounter::kUserCycles), 0u);
}

TEST(CounterBankWrap, LargeFoldKeepsOnlyLow32Bits) {
  // fold() is the wrap-agnostic entry: a multi-wrap increment is legal
  // there (the closed-form accrual path uses it) and the register keeps
  // the faithful mod-2^32 residue.
  hpm::CounterBank bank;
  bank.fold(hpm::HpmCounter::kUserFxu0, kWrap * 3 + 17);
  EXPECT_EQ(bank.read(hpm::HpmCounter::kUserFxu0), 17u);
}

TEST(CounterBankWrapDeathTest, CheckedAddRejectsMultiWrapIncrement) {
  // add() enforces the multipass-sampling contract: one increment must
  // stay below a full wrap or wrap-delta recovery silently undercounts.
  if (!p2sim::check::checks_enabled()) GTEST_SKIP() << "checks compiled out";
  hpm::CounterBank bank;
  EXPECT_DEATH(bank.add(hpm::HpmCounter::kUserFxu0, kWrap),
               "increment >= one wrap");
}

TEST(CounterBankWrap, CountersAreIndependent) {
  hpm::CounterBank bank;
  bank.add(hpm::HpmCounter::kUserCycles, 0xFFFF'FFFFu);
  bank.add(hpm::HpmCounter::kUserCycles, 2);
  bank.add(hpm::HpmCounter::kUserFxu0, 5);
  EXPECT_EQ(bank.read(hpm::HpmCounter::kUserCycles), 1u);
  EXPECT_EQ(bank.read(hpm::HpmCounter::kUserFxu0), 5u);
}

TEST(WrapDelta, Edges) {
  EXPECT_EQ(rs2hpm::wrap_delta(0, 0), 0u);
  EXPECT_EQ(rs2hpm::wrap_delta(100, 250), 150u);
  // Counter wrapped between the samples.
  EXPECT_EQ(rs2hpm::wrap_delta(0xFFFF'FFFFu, 0), 1u);
  EXPECT_EQ(rs2hpm::wrap_delta(0xFFFF'FF00u, 0x0000'0010u), 0x110u);
  // Exactly 2^32 events between samples is indistinguishable from zero --
  // the blind spot that makes the sampling-period contract load-bearing.
  EXPECT_EQ(rs2hpm::wrap_delta(42, 42), 0u);
}

TEST(ExtendedCountersWrap, ExactAcrossOneWrap) {
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);

  // Two 64-second compute bursts with a sample between: total cycle count
  // exceeds 2^32 though no single inter-sample delta does.
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);

  const std::uint64_t total = 2 * kWrapPeriodCycles;
  ASSERT_GT(total, kWrap);
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), total);
  // The physical register only holds the low 32 bits.
  EXPECT_EQ(mon.bank(hpm::PrivilegeMode::kUser).read(
                hpm::HpmCounter::kUserCycles),
            static_cast<std::uint32_t>(total));
}

TEST(ExtendedCountersWrap, ExactAcrossManyWraps) {
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);

  // Ten minutes of busy nodes: ~9.4 wrap periods of the cycle counter,
  // sampled every "16 seconds" (quarter wrap) like the multipass layer.
  constexpr std::uint64_t kSliceCycles = kWrapPeriodCycles / 4;
  constexpr int kSlices = 40;
  for (int i = 0; i < kSlices; ++i) {
    mon.accumulate(cycles_only(kSliceCycles), hpm::PrivilegeMode::kUser);
    ext.sample(mon);
  }
  const std::uint64_t total = std::uint64_t{kSlices} * kSliceCycles;
  ASSERT_GT(total / kWrap, 8u);  // really did cross many wraps
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), total);
}

TEST(ExtendedCountersWrap, ModesExtendIndependently) {
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);

  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  mon.accumulate(cycles_only(123), hpm::PrivilegeMode::kSystem);
  ext.sample(mon);

  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles),
            2 * kWrapPeriodCycles);
  EXPECT_EQ(ext.totals().system_at(hpm::HpmCounter::kUserCycles), 123u);
}

TEST(ExtendedCountersWrap, MissedSampleUnderCountsByOneWrap) {
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);

  // Break the sampling contract: a full wrap plus a little slips between
  // two samples (two individually legal sub-wrap batches, no sample in
  // between).  The extension layer cannot see the lost 2^32 -- this is
  // the "missed period" failure mode the multipass design exists to avoid.
  mon.accumulate(cycles_only(kWrap / 2), hpm::PrivilegeMode::kUser);
  mon.accumulate(cycles_only(kWrap / 2 + 5), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), 5u);
}

TEST(ExtendedCountersWrap, ResetTotalsReanchorsAtCurrentRawValues) {
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);

  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  ext.reset_totals();
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), 0u);

  // Totals restart from zero but stay wrap-consistent with the raw
  // registers (the debug invariant inside sample() checks the anchor).
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles),
            kWrapPeriodCycles);
}

TEST(WrapAcrossReset, CorrectionNeverAppliedAcrossResetBoundary) {
  // Counter wrap, node reset, and a missed collection interval in one
  // scenario.  wrap_delta() is the right tool *within* a monotone counter
  // stream; across a reset boundary it would fabricate a near-2^32 count.
  // The daemon must re-prime at the reset and never wrap-correct over it.
  hpm::PerformanceMonitor mon;
  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);
  rs2hpm::SamplingDaemon daemon(1);
  std::vector<std::uint64_t> q = {0};

  // Interval 0: prime the daemon after one near-wrap burst.
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  std::vector<rs2hpm::ModeTotals> t = {ext.totals()};
  daemon.collect(0, t, q, 1);

  // Interval 1: a second burst pushes the 64-bit totals past 2^32.  The
  // extension layer's wrap correction is doing its legitimate job here and
  // the daemon records the honest delta.
  mon.accumulate(cycles_only(kWrapPeriodCycles), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  t[0] = ext.totals();
  daemon.collect(1, t, q, 1);
  ASSERT_EQ(daemon.records().size(), 1u);
  EXPECT_EQ(daemon.records()[0].delta.user_at(hpm::HpmCounter::kUserCycles),
            kWrapPeriodCycles);
  ASSERT_GT(t[0].user_at(hpm::HpmCounter::kUserCycles), kWrap);

  // Interval 2 is missed entirely (collection script never ran) while the
  // node crashes and reboots: fresh monitor, counters restarted from zero.
  hpm::PerformanceMonitor fresh;
  rs2hpm::ExtendedCounters fresh_ext;
  fresh_ext.attach(fresh);
  fresh.accumulate(cycles_only(1'000), hpm::PrivilegeMode::kUser);
  fresh_ext.sample(fresh);

  // Interval 3: the daemon is back.  Totals (1000) sit far below the
  // pre-crash baseline; covers() fails, so the node is re-primed and
  // contributes nothing — no wrap arithmetic is applied to the pair.
  t[0] = fresh_ext.totals();
  EXPECT_FALSE(t[0].covers(ext.totals()));
  daemon.collect(3, t, q, 1);
  const rs2hpm::IntervalRecord& rec = daemon.records().back();
  EXPECT_EQ(rec.interval, 3);
  EXPECT_EQ(rec.nodes_sampled, 0);
  EXPECT_EQ(rec.nodes_reprimed, 1);
  EXPECT_EQ(rec.delta.user_at(hpm::HpmCounter::kUserCycles), 0u);
  EXPECT_EQ(daemon.total_reprimes(), 1);

  // What the naive 32-bit correction would have produced for that pair: a
  // fabricated multi-million-cycle count for an idle node.  No record may
  // contain it.
  const std::uint64_t bogus = rs2hpm::wrap_delta(
      static_cast<std::uint32_t>(2 * kWrapPeriodCycles),
      static_cast<std::uint32_t>(1'000));
  EXPECT_GT(bogus, 1'000'000u);
  for (const rs2hpm::IntervalRecord& r : daemon.records()) {
    EXPECT_NE(r.delta.user_at(hpm::HpmCounter::kUserCycles), bogus);
  }

  // Interval 4: the re-established baseline measures cleanly again, wrap
  // correction once more confined to the monotone post-reboot stream.
  fresh.accumulate(cycles_only(500), hpm::PrivilegeMode::kUser);
  fresh_ext.sample(fresh);
  t[0] = fresh_ext.totals();
  daemon.collect(4, t, q, 1);
  EXPECT_EQ(daemon.records().back().delta.user_at(
                hpm::HpmCounter::kUserCycles),
            500u);
  EXPECT_EQ(daemon.records().back().nodes_sampled, 1);
}

TEST(ExtendedCountersWrap, AttachAfterActivityStartsFromBaseline) {
  hpm::PerformanceMonitor mon;
  // Counters already hold history before the daemon attaches.
  mon.accumulate(cycles_only(999), hpm::PrivilegeMode::kUser);

  rs2hpm::ExtendedCounters ext;
  ext.attach(mon);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), 0u);

  mon.accumulate(cycles_only(7), hpm::PrivilegeMode::kUser);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(hpm::HpmCounter::kUserCycles), 7u);
}

}  // namespace
}  // namespace p2sim
