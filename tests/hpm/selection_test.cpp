// Tests for the counter-selection mechanism: the NAS default vs the
// wait-state selection the paper's conclusions recommend.
#include <gtest/gtest.h>

#include "src/hpm/monitor.hpp"
#include "src/rs2hpm/derived.hpp"

namespace p2sim::hpm {
namespace {

power2::EventCounts events_with_waits() {
  power2::EventCounts ev;
  ev.cycles = 66'700'000;  // one second
  ev.fp_div0 = 123;
  ev.fp_div1 = 456;
  ev.comm_wait_cycles = 13'340'000;  // 20% of the second
  ev.io_wait_cycles = 6'670'000;     // 10%
  ev.fxu0_inst = 1'000'000;
  ev.fxu1_inst = 1'000'000;
  return ev;
}

TEST(Selection, NasDefaultIgnoresWaitStates) {
  PerformanceMonitor mon;  // NAS default, bug on
  mon.accumulate(events_with_waits(), PrivilegeMode::kUser);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(kCommWaitSlot), 0u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(kIoWaitSlot), 0u);
}

TEST(Selection, WaitStatesRededicateTheDivideSlots) {
  PerformanceMonitor mon(
      MonitorConfig{.selection = CounterSelection::kWaitStates});
  mon.accumulate(events_with_waits(), PrivilegeMode::kUser);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(kCommWaitSlot), 13'340'000u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(kIoWaitSlot), 6'670'000u);
}

TEST(Selection, WaitStatesOverrideTheDivideFix) {
  // Even a "fixed" monitor cannot count divides under kWaitStates: the
  // slots are physically rededicated.
  PerformanceMonitor mon(MonitorConfig{
      .divide_counter_bug = false,
      .selection = CounterSelection::kWaitStates});
  mon.accumulate(events_with_waits(), PrivilegeMode::kUser);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(kCommWaitSlot), 13'340'000u);
}

TEST(Selection, DeriveRatesReadsWaitFractions) {
  PerformanceMonitor mon(
      MonitorConfig{.selection = CounterSelection::kWaitStates});
  mon.accumulate(events_with_waits(), PrivilegeMode::kUser);
  rs2hpm::ModeTotals t;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    t.user[i] = mon.bank(PrivilegeMode::kUser).raw()[i];
  }
  const auto r =
      rs2hpm::derive_rates(t, 1.0, 0, CounterSelection::kWaitStates);
  EXPECT_NEAR(r.comm_wait_fraction, 0.20, 1e-9);
  EXPECT_NEAR(r.io_wait_fraction, 0.10, 1e-9);
  // Divide rates must read zero: the slots hold wait cycles, not divides.
  EXPECT_EQ(r.mflops_div, 0.0);
}

TEST(Selection, NasDeriveLeavesWaitFractionsZero) {
  rs2hpm::ModeTotals t;
  t.user[index_of(kCommWaitSlot)] = 1'000'000;
  const auto r = rs2hpm::derive_rates(t, 1.0);
  EXPECT_EQ(r.comm_wait_fraction, 0.0);
  EXPECT_EQ(r.io_wait_fraction, 0.0);
}

}  // namespace
}  // namespace p2sim::hpm
