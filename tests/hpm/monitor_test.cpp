#include "src/hpm/monitor.hpp"

#include <gtest/gtest.h>

#include "src/hpm/events.hpp"

namespace p2sim::hpm {
namespace {

TEST(CounterTable, HasTwentyTwoEntriesInTableOrder) {
  const auto& t = counter_table();
  ASSERT_EQ(t.size(), kNumCounters);
  ASSERT_EQ(kNumCounters, 22u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(index_of(t[i].id), i);
  }
}

TEST(CounterTable, SlotsFollowHardwareLayout) {
  // 5 counters per unit group: FXU, FPU0, FPU1, ICU(2), SCU(5).
  EXPECT_EQ(counter_info(HpmCounter::kUserFxu0).slot, "FXU[0]");
  EXPECT_EQ(counter_info(HpmCounter::kUserCycles).slot, "FXU[4]");
  EXPECT_EQ(counter_info(HpmCounter::kFpMulAdd0).slot, "FPU0[4]");
  EXPECT_EQ(counter_info(HpmCounter::kFpMulAdd1).slot, "FPU1[4]");
  EXPECT_EQ(counter_info(HpmCounter::kUserIcu0).slot, "ICU[0]");
  EXPECT_EQ(counter_info(HpmCounter::kDmaWrite).slot, "SCU[4]");
}

TEST(CounterTable, LabelsMatchPaperNames) {
  EXPECT_EQ(counter_info(HpmCounter::kUserFxu0).label, "user.fxu0");
  EXPECT_EQ(counter_info(HpmCounter::kUserDcacheMiss).label,
            "user.dcache_mis");
  EXPECT_EQ(counter_info(HpmCounter::kFpMulAdd1).label, "fpop.fp_muladd");
  EXPECT_EQ(counter_info(HpmCounter::kDcacheStore).label,
            "user.dcache_store");
}

TEST(CounterBank, StartsAtZeroAndAccumulates) {
  CounterBank b;
  EXPECT_EQ(b.read(HpmCounter::kUserCycles), 0u);
  b.add(HpmCounter::kUserCycles, 100);
  b.add(HpmCounter::kUserCycles, 23);
  EXPECT_EQ(b.read(HpmCounter::kUserCycles), 123u);
}

TEST(CounterBank, WrapsAt32Bits) {
  CounterBank b;
  b.add(HpmCounter::kUserCycles, 0xFFFFFFFFull);
  b.add(HpmCounter::kUserCycles, 3);
  EXPECT_EQ(b.read(HpmCounter::kUserCycles), 2u);
}

TEST(CounterBank, LargeFoldWrapsModulo) {
  // Multi-wrap increments go through fold(); add() asserts they stay
  // below one wrap (the multipass-sampling contract).
  CounterBank b;
  b.fold(HpmCounter::kUserCycles, (1ull << 32) * 5 + 7);
  EXPECT_EQ(b.read(HpmCounter::kUserCycles), 7u);
}

TEST(CounterBank, ClearResets) {
  CounterBank b;
  b.add(HpmCounter::kDmaRead, 5);
  b.clear();
  EXPECT_EQ(b.read(HpmCounter::kDmaRead), 0u);
}

power2::EventCounts sample_events() {
  power2::EventCounts ev;
  ev.cycles = 1000;
  ev.fxu0_inst = 10;
  ev.fxu1_inst = 20;
  ev.dcache_miss = 3;
  ev.tlb_miss = 1;
  ev.memory_inst = 12;  // misses are a subset of load/store traffic
  ev.fpu0_inst = 7;
  ev.fpu1_inst = 5;
  ev.fp_add0 = 4;
  ev.fp_add1 = 2;
  ev.fp_mul0 = 1;
  ev.fp_mul1 = 1;
  ev.fp_div0 = 6;
  ev.fp_div1 = 2;
  ev.fp_fma0 = 3;
  ev.fp_fma1 = 1;
  ev.icu_type1 = 9;
  ev.icu_type2 = 4;
  ev.icache_reload = 2;
  ev.dcache_reload = 3;
  ev.dcache_store = 1;
  ev.dma_read = 11;
  ev.dma_write = 13;
  return ev;
}

TEST(Monitor, MapsEventsOntoCounters) {
  PerformanceMonitor mon;
  mon.accumulate(sample_events(), PrivilegeMode::kUser);
  const CounterBank& b = mon.bank(PrivilegeMode::kUser);
  EXPECT_EQ(b.read(HpmCounter::kUserFxu0), 10u);
  EXPECT_EQ(b.read(HpmCounter::kUserFxu1), 20u);
  EXPECT_EQ(b.read(HpmCounter::kUserDcacheMiss), 3u);
  EXPECT_EQ(b.read(HpmCounter::kUserTlbMiss), 1u);
  EXPECT_EQ(b.read(HpmCounter::kUserCycles), 1000u);
  EXPECT_EQ(b.read(HpmCounter::kUserFpu0), 7u);
  EXPECT_EQ(b.read(HpmCounter::kFpAdd0), 4u);
  EXPECT_EQ(b.read(HpmCounter::kFpMulAdd1), 1u);
  EXPECT_EQ(b.read(HpmCounter::kUserIcu0), 9u);
  EXPECT_EQ(b.read(HpmCounter::kIcacheReload), 2u);
  EXPECT_EQ(b.read(HpmCounter::kDcacheReload), 3u);
  EXPECT_EQ(b.read(HpmCounter::kDcacheStore), 1u);
  EXPECT_EQ(b.read(HpmCounter::kDmaRead), 11u);
  EXPECT_EQ(b.read(HpmCounter::kDmaWrite), 13u);
}

TEST(Monitor, DivideBugSuppressesDivideCounters) {
  // The NAS campaign's monitor bug: Table 3 reports Mflops-div = 0.0.
  PerformanceMonitor mon;  // bug on by default
  mon.accumulate(sample_events(), PrivilegeMode::kUser);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kFpDiv0), 0u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kFpDiv1), 0u);
  // Instruction counts are unaffected by the bug.
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kUserFpu0), 7u);
}

TEST(Monitor, FixedMonitorReportsDivides) {
  PerformanceMonitor mon(MonitorConfig{.divide_counter_bug = false});
  mon.accumulate(sample_events(), PrivilegeMode::kUser);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kFpDiv0), 6u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kFpDiv1), 2u);
}

TEST(Monitor, ModesAccumulateSeparately) {
  PerformanceMonitor mon;
  mon.accumulate(sample_events(), PrivilegeMode::kUser);
  power2::EventCounts sys;
  sys.fxu0_inst = 1000;
  mon.accumulate(sys, PrivilegeMode::kSystem);
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kUserFxu0), 10u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kSystem).read(HpmCounter::kUserFxu0),
            1000u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kSystem).read(HpmCounter::kUserCycles),
            0u);
}

TEST(Monitor, ClearZeroesBothBanks) {
  PerformanceMonitor mon;
  mon.accumulate(sample_events(), PrivilegeMode::kUser);
  mon.accumulate(sample_events(), PrivilegeMode::kSystem);
  mon.clear();
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kUserCycles), 0u);
  EXPECT_EQ(mon.bank(PrivilegeMode::kSystem).read(HpmCounter::kUserCycles),
            0u);
}

TEST(EventCounts, DerivedTotalsAndFlopAccounting) {
  const power2::EventCounts ev = sample_events();
  EXPECT_EQ(ev.fxu_inst(), 30u);
  EXPECT_EQ(ev.fpu_inst(), 12u);
  EXPECT_EQ(ev.icu_inst(), 13u);
  EXPECT_EQ(ev.instructions(), 55u);
  // flops = adds(6) + muls(2) + divs(8) + fmas(4).
  EXPECT_EQ(ev.flops(), 20u);
}

TEST(EventCounts, AdditionIsFieldwise) {
  power2::EventCounts a = sample_events();
  const power2::EventCounts b = sample_events();
  a += b;
  EXPECT_EQ(a.cycles, 2000u);
  EXPECT_EQ(a.fp_fma0, 6u);
  const power2::EventCounts c = sample_events() + sample_events();
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace p2sim::hpm
