// Registry semantics: counter monotonicity, name validation, kind clashes,
// histogram bucket boundaries and the exact export formats.
#include "src/telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p2sim::telemetry {
namespace {

TEST(Metrics, CounterIsMonotone) {
  Registry reg;
  Counter& c = reg.counter("p2sim_test_events_total", "test");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-registration under the same name is idempotent: same object, value
  // preserved.
  EXPECT_EQ(&reg.counter("p2sim_test_events_total", "test"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, NameValidation) {
  EXPECT_TRUE(valid_metric_name("p2sim_core_run_cycles"));
  EXPECT_TRUE(valid_metric_name("p2sim_x9"));
  EXPECT_FALSE(valid_metric_name("p2sim_"));           // empty suffix
  EXPECT_FALSE(valid_metric_name("core_run_cycles"));  // missing prefix
  EXPECT_FALSE(valid_metric_name("p2sim_BadCase"));
  EXPECT_FALSE(valid_metric_name("p2sim_dash-name"));

  Registry reg;
  EXPECT_THROW(reg.counter("bad_name", "x"), std::invalid_argument);
  EXPECT_THROW(reg.gauge("p2sim_Upper", "x"), std::invalid_argument);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, KindClashThrows) {
  Registry reg;
  reg.counter("p2sim_test_metric", "as counter");
  EXPECT_THROW(reg.gauge("p2sim_test_metric", "as gauge"),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("p2sim_test_metric", "as histogram", {1.0}),
               std::invalid_argument);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  // Prometheus semantics: upper bounds are inclusive, +Inf catches rest.
  h.observe(0.5);  // le=1
  h.observe(1.0);  // le=1 (inclusive)
  h.observe(1.5);  // le=2
  h.observe(2.0);  // le=2 (inclusive)
  h.observe(4.0);  // le=4
  h.observe(9.0);  // +Inf
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ExponentialBuckets) {
  const auto b = exponential_buckets(1e3, 10.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 1e3);
  EXPECT_DOUBLE_EQ(b[1], 1e4);
  EXPECT_DOUBLE_EQ(b[2], 1e5);
  EXPECT_THROW(exponential_buckets(0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 3), std::invalid_argument);
}

TEST(Metrics, PrometheusTextGolden) {
  Registry reg;
  reg.counter("p2sim_test_events_total", "Events seen").inc(3);
  reg.gauge("p2sim_test_depth", "Queue depth").set(2.5);
  Histogram& h =
      reg.histogram("p2sim_test_latency", "Latency", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);
  const char* expected =
      "# HELP p2sim_test_depth Queue depth\n"
      "# TYPE p2sim_test_depth gauge\n"
      "p2sim_test_depth 2.5\n"
      "# HELP p2sim_test_events_total Events seen\n"
      "# TYPE p2sim_test_events_total counter\n"
      "p2sim_test_events_total 3\n"
      "# HELP p2sim_test_latency Latency\n"
      "# TYPE p2sim_test_latency histogram\n"
      "p2sim_test_latency_bucket{le=\"1\"} 1\n"
      "p2sim_test_latency_bucket{le=\"2\"} 2\n"
      "p2sim_test_latency_bucket{le=\"+Inf\"} 3\n"
      "p2sim_test_latency_sum 101\n"
      "p2sim_test_latency_count 3\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(Metrics, JsonlExcludesWallClockByDefault) {
  Registry reg;
  reg.counter("p2sim_test_sim_total", "simulated").inc(7);
  reg.gauge("p2sim_test_wall_seconds", "wall", /*wall_clock=*/true).set(1.25);
  const std::string sim_only = reg.jsonl();
  EXPECT_NE(sim_only.find("p2sim_test_sim_total"), std::string::npos);
  EXPECT_EQ(sim_only.find("p2sim_test_wall_seconds"), std::string::npos);
  const std::string all = reg.jsonl(/*include_wall_clock=*/true);
  EXPECT_NE(all.find("p2sim_test_wall_seconds"), std::string::npos);
  EXPECT_NE(all.find("\"wall_clock\":true"), std::string::npos);
}

TEST(Metrics, MetricsCreatedCountsConstructions) {
  const std::uint64_t before = metrics_created();
  Registry reg;
  reg.counter("p2sim_test_a_total", "a");
  reg.gauge("p2sim_test_b", "b");
  reg.histogram("p2sim_test_c", "c", {1.0});
  EXPECT_EQ(metrics_created() - before, 3u);
  // Idempotent re-registration allocates nothing further.
  reg.counter("p2sim_test_a_total", "a");
  EXPECT_EQ(metrics_created() - before, 3u);
}

}  // namespace
}  // namespace p2sim::telemetry
