// Dashboard smoke test: a faulted campaign observed live through a
// HealthReporter must agree with the post-hoc measurement-loss report to
// the last node-sample, and the rendered dashboard must carry the daily
// charts.  This is the "live view equals batch view" contract the
// campaign_dashboard example stakes its reconciliation check on.
#include "src/telemetry/reporter.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/analysis/loss.hpp"
#include "src/core/simulation.hpp"
#include "src/telemetry/session.hpp"
#include "src/workload/driver.hpp"

namespace p2sim {
namespace {

struct ObservedCampaign {
  workload::CampaignResult result;
  telemetry::HealthReporter reporter;
};

ObservedCampaign run_observed(std::int64_t days, int nodes,
                              std::ostream* out = nullptr) {
  core::Sp2Config cfg = core::Sp2Config::small(days, nodes);
  cfg.faults() = fault::FaultConfig::reference();
  telemetry::ReporterConfig rep_cfg;
  rep_cfg.out = out;
  ObservedCampaign obs{{}, telemetry::HealthReporter(rep_cfg)};
  cfg.driver.observer = &obs.reporter;
  telemetry::Session session;
  telemetry::ScopedSession scoped(session);
  obs.result = workload::run_campaign(cfg.driver);
  return obs;
}

TEST(Dashboard, SnapshotMatchesMeasurementLossExactly) {
  ObservedCampaign obs = run_observed(/*days=*/30, /*nodes=*/32);
  const telemetry::HealthSnapshot& snap = obs.reporter.snapshot();
  const analysis::MeasurementLoss loss = analysis::measure_loss(obs.result);

  ASSERT_TRUE(loss.reconciled());
  ASSERT_GT(loss.injected.total_faults(), 0);

  EXPECT_EQ(snap.intervals_seen, loss.intervals_expected);
  EXPECT_EQ(snap.intervals_recorded, loss.intervals_recorded);
  EXPECT_EQ(snap.node_samples_expected, loss.node_samples_expected);
  EXPECT_EQ(snap.node_samples_clean, loss.node_samples_clean);
  EXPECT_EQ(snap.node_samples_reprimed, loss.node_samples_reprimed);
  EXPECT_EQ(snap.faults_injected, loss.injected.total_faults());
  EXPECT_EQ(snap.jobs_requeued, loss.injected.jobs_requeued);
  EXPECT_DOUBLE_EQ(snap.coverage(),
                   static_cast<double>(loss.node_samples_clean) /
                       static_cast<double>(loss.node_samples_expected));
}

TEST(Dashboard, JobTalliesMatchTheCampaign) {
  ObservedCampaign obs = run_observed(/*days=*/10, /*nodes=*/16);
  const telemetry::HealthSnapshot& snap = obs.reporter.snapshot();
  // Every dispatched run either ran to completion, was crash-killed, or was
  // still on nodes when the window closed; the still-running count is
  // bounded by jobs_open_at_end (which additionally counts the queue).
  EXPECT_GT(snap.jobs_dispatched, 0);
  const std::int64_t still_running = snap.jobs_dispatched -
                                     snap.jobs_completed -
                                     obs.result.faults.jobs_killed;
  EXPECT_GE(still_running, 0);
  EXPECT_LE(still_running, obs.result.jobs_open_at_end);
}

TEST(Dashboard, StreamsOneLinePerStride) {
  std::ostringstream stream;
  core::Sp2Config cfg = core::Sp2Config::small(/*days=*/3, /*nodes=*/8);
  telemetry::ReporterConfig rep_cfg;
  rep_cfg.stride = 96;  // daily
  rep_cfg.out = &stream;
  telemetry::HealthReporter reporter(rep_cfg);
  cfg.driver.observer = &reporter;
  (void)workload::run_campaign(cfg.driver);

  const std::string lines = stream.str();
  std::int64_t count = 0;
  for (char c : lines) count += (c == '\n');
  EXPECT_EQ(count, 3);  // one per simulated day
}

TEST(Dashboard, RenderCarriesChartsAndHealthBlock) {
  ObservedCampaign obs = run_observed(/*days=*/6, /*nodes=*/8);
  const std::string dash = obs.reporter.render_dashboard();
  EXPECT_NE(dash.find("coverage"), std::string::npos);
  EXPECT_NE(dash.find("Gflops"), std::string::npos);
  EXPECT_EQ(obs.reporter.daily_gflops().size(), 6u);
  EXPECT_EQ(obs.reporter.daily_coverage().size(), 6u);
}

TEST(Dashboard, UntouchedReporterRendersCleanly) {
  // Zero campaigns, zero completed jobs: every accessor has a defined
  // value and the dashboard renders without dividing by zero.
  telemetry::HealthReporter reporter;
  const telemetry::HealthSnapshot& snap = reporter.snapshot();
  EXPECT_EQ(snap.intervals_seen, 0);
  EXPECT_EQ(snap.jobs_completed, 0);
  EXPECT_DOUBLE_EQ(snap.coverage(), 1.0);  // nothing expected, nothing lost
  EXPECT_DOUBLE_EQ(snap.mean_mflops(), 0.0);
  EXPECT_TRUE(reporter.daily_gflops().empty());
  EXPECT_TRUE(reporter.daily_coverage().empty());
  const std::string dash = reporter.render_dashboard();
  EXPECT_NE(dash.find("Campaign pipeline health"), std::string::npos);
}

TEST(Dashboard, FullyDarkDayHasZeroCoverage) {
  // A day whose every daemon sample was lost: daily coverage must be 0
  // (scaled by the recorded-interval fraction), not 1.0-because-nothing-
  // was-expected; daily Gflops must be 0, not NaN.
  telemetry::HealthReporter reporter;
  for (int i = 0; i < 96; ++i) {
    telemetry::HealthSample s;
    s.interval = i;
    s.day = 0;
    s.interval_recorded = false;
    reporter.on_interval(s);
  }
  telemetry::HealthSample lit;
  lit.interval = 96;
  lit.day = 1;
  lit.interval_recorded = true;
  lit.nodes_expected = 8;
  lit.nodes_sampled = 6;
  lit.mflops = 120.0;
  reporter.on_interval(lit);

  const std::vector<double> cov = reporter.daily_coverage();
  const std::vector<double> gfl = reporter.daily_gflops();
  ASSERT_EQ(cov.size(), 2u);
  EXPECT_DOUBLE_EQ(cov[0], 0.0);
  EXPECT_DOUBLE_EQ(gfl[0], 0.0);
  EXPECT_DOUBLE_EQ(cov[1], 6.0 / 8.0);
  // The cumulative view only counts recorded intervals' node samples.
  const telemetry::HealthSnapshot& snap = reporter.snapshot();
  EXPECT_EQ(snap.intervals_seen, 97);
  EXPECT_EQ(snap.intervals_recorded, 1);
  EXPECT_EQ(snap.node_samples_expected, 8);
  EXPECT_EQ(snap.node_samples_clean, 6);
}

TEST(Dashboard, SnapshotIsConsistentAtEveryIntervalBoundary) {
  // A scrape can land between any two on_interval calls; the snapshot it
  // reads must already account for every interval delivered so far — no
  // deferred or batched accounting.
  telemetry::HealthReporter reporter;
  for (int i = 0; i < 20; ++i) {
    telemetry::HealthSample s;
    s.interval = i;
    s.day = i / 4;
    s.interval_recorded = (i % 5 != 4);  // every fifth interval is lost
    s.nodes_expected = s.interval_recorded ? 4 : 0;
    s.nodes_sampled = s.nodes_expected;
    s.mflops = 10.0;
    reporter.on_interval(s);
    const telemetry::HealthSnapshot& snap = reporter.snapshot();
    EXPECT_EQ(snap.intervals_seen, i + 1);
    EXPECT_EQ(snap.intervals_recorded, (i + 1) - (i + 1) / 5);
    EXPECT_EQ(snap.node_samples_expected, snap.node_samples_clean);
    EXPECT_EQ(snap.node_samples_expected,
              4 * ((i + 1) - (i + 1) / 5));
  }
}

TEST(Dashboard, FaultFreeCampaignHasFullCoverage) {
  core::Sp2Config cfg = core::Sp2Config::small(/*days=*/4, /*nodes=*/8);
  telemetry::HealthReporter reporter;
  cfg.driver.observer = &reporter;
  const workload::CampaignResult result = workload::run_campaign(cfg.driver);
  const telemetry::HealthSnapshot& snap = reporter.snapshot();
  EXPECT_EQ(snap.intervals_seen, result.intervals_expected);
  EXPECT_EQ(snap.intervals_recorded, snap.intervals_seen);
  EXPECT_EQ(snap.node_samples_clean, snap.node_samples_expected);
  EXPECT_EQ(snap.faults_injected, 0);
  EXPECT_DOUBLE_EQ(snap.coverage(), 1.0);
  EXPECT_GT(snap.mean_mflops(), 0.0);
}

}  // namespace
}  // namespace p2sim
