// Tracer and Span semantics: nesting, the event cap, and the Chrome
// trace_event JSON export (syntactic well-formedness + wall-clock
// segregation).
#include "src/telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace p2sim::telemetry {
namespace {

/// Minimal JSON syntax check: brackets/braces balance outside strings and
/// the document is one value.  Enough to guarantee chrome://tracing and
/// Perfetto can parse the export without pulling in a JSON library.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Trace, SpansNestAndRecordDepth) {
  Tracer tracer;
  {
    Span outer(&tracer, "test", "outer", 0.0);
    EXPECT_EQ(tracer.open_depth(), 1);
    {
      Span inner(&tracer, "test", "inner", 1.0);
      EXPECT_EQ(tracer.open_depth(), 2);
      inner.close(2.0);
    }
    EXPECT_EQ(tracer.open_depth(), 1);
    outer.close(3.0);
  }
  EXPECT_EQ(tracer.open_depth(), 0);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].depth, 1);
  EXPECT_STREQ(tracer.events()[0].name, "outer");
  EXPECT_EQ(tracer.events()[1].depth, 2);
  EXPECT_DOUBLE_EQ(tracer.events()[1].sim_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(tracer.events()[1].sim_end_s, 2.0);
}

TEST(Trace, NullTracerSpanIsInert) {
  Span s(nullptr, "test", "noop", 0.0);
  EXPECT_FALSE(static_cast<bool>(s));
  s.arg("k", 1.0);
  s.close(1.0);  // must not crash
}

TEST(Trace, OpenSpanClosesWithZeroSimDurationOnDestruction) {
  Tracer tracer;
  { Span s(&tracer, "test", "leaky", 5.0); }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].sim_begin_s, 5.0);
  EXPECT_DOUBLE_EQ(tracer.events()[0].sim_end_s, 5.0);
}

TEST(Trace, EventCapCountsDrops) {
  Tracer tracer(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    Span s(&tracer, "test", "s", static_cast<double>(i));
    s.close(static_cast<double>(i) + 0.5);
  }
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  EXPECT_EQ(tracer.open_depth(), 0);  // dropped spans still balance depth
}

TEST(Trace, ChromeTraceJsonWellFormed) {
  Tracer tracer;
  {
    Span a(&tracer, "cat", "with \"args\"", 0.0);
    a.arg("x", 1.5);
    Span b(&tracer, "cat", "child", 0.25);
    b.close(0.5);
    a.close(1.0);
  }
  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Simulated seconds export as microseconds: 0.25 s -> ts 250000.
  EXPECT_NE(json.find("250000"), std::string::npos);
}

TEST(Trace, WallClockSegregation) {
  Tracer tracer;
  {
    Span s(&tracer, "cat", "timed", 0.0);
    s.close(1.0);
  }
  EXPECT_NE(tracer.chrome_trace_json(true).find("wall_us"),
            std::string::npos);
  // include_wall=false omits every wall-clock field, so the export is
  // bit-stable across identical simulated campaigns.
  const std::string stable = tracer.chrome_trace_json(false);
  EXPECT_EQ(stable.find("wall"), std::string::npos);
  EXPECT_TRUE(json_well_formed(stable));
}

TEST(Trace, MovedFromSpanIsInert) {
  Tracer tracer;
  {
    Span a(&tracer, "cat", "moved", 0.0);
    Span b = std::move(a);
    a.close(9.0);  // no-op: a no longer owns the handle
    b.close(1.0);
  }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].sim_end_s, 1.0);
}

}  // namespace
}  // namespace p2sim::telemetry
