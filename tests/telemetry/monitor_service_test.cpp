// MonitorService endpoint contracts: routing and content types, the
// /healthz edge cases (no campaign yet, zero completed jobs, zero-coverage
// days), the /api/jobs ring semantics, the quit handshake, and the
// reconciliation of a scrape that lands between phase boundaries.
#include "src/telemetry/service.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/analysis/loss.hpp"
#include "src/core/simulation.hpp"
#include "src/telemetry/session.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::telemetry {
namespace {

util::HttpRequest get_req(const std::string& path,
                          const std::string& query = "") {
  util::HttpRequest req;
  req.method = "GET";
  req.path = path;
  req.query = query;
  req.target = query.empty() ? path : path + "?" + query;
  req.version = "HTTP/1.1";
  return req;
}

TEST(MonitorService, RoutesEveryEndpoint) {
  Session session;
  MonitorService svc(session);

  util::HttpResponse metrics = svc.handle(get_req(MonitorService::kMetricsPath));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("p2sim_server_requests_total"),
            std::string::npos);

  util::HttpResponse health = svc.handle(get_req(MonitorService::kHealthzPath));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.content_type, "application/json");
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);

  EXPECT_EQ(svc.handle(get_req(MonitorService::kDaysPath)).status, 200);
  EXPECT_EQ(svc.handle(get_req(MonitorService::kJobsPath)).status, 200);
  EXPECT_EQ(svc.handle(get_req("/definitely/not/served")).status, 404);

  util::HttpRequest post = get_req(MonitorService::kMetricsPath);
  post.method = "POST";
  EXPECT_EQ(svc.handle(post).status, 405);
}

TEST(MonitorService, HealthzBeforeAnyCampaignIsWellFormed) {
  // Zero completed jobs, zero intervals, no trace: every field renders and
  // coverage defaults to 1.0 (nothing was expected, nothing was lost).
  Session session;
  MonitorService svc(session);
  const std::string body = svc.healthz_json();
  EXPECT_NE(body.find("\"campaigns_completed\":0"), std::string::npos);
  EXPECT_NE(body.find("\"intervals_seen\":0"), std::string::npos);
  EXPECT_NE(body.find("\"jobs_completed\":0"), std::string::npos);
  EXPECT_NE(body.find("\"coverage\":1"), std::string::npos);
  EXPECT_NE(body.find("\"mean_mflops\":0"), std::string::npos);
  EXPECT_NE(body.find("\"trace_available\":false"), std::string::npos);
  EXPECT_EQ(svc.health().intervals_seen, 0);
}

TEST(MonitorService, ZeroCoverageDaysRenderInDaysTable) {
  // A day whose every interval lost its daemon sample must appear with
  // coverage 0 and gflops 0, not vanish or divide by zero.
  Session session;
  MonitorService svc(session);
  for (int i = 0; i < 96; ++i) {
    HealthSample s;
    s.interval = i;
    s.day = 0;
    s.interval_recorded = false;  // the whole day is dark
    s.nodes_expected = 0;
    svc.on_interval(s);
  }
  HealthSample lit;
  lit.interval = 96;
  lit.day = 1;
  lit.interval_recorded = true;
  lit.nodes_expected = 8;
  lit.nodes_sampled = 8;
  lit.mflops = 400.0;
  svc.on_interval(lit);

  const std::string days = svc.days_json();
  EXPECT_NE(days.find("{\"day\":0,\"gflops\":0,\"coverage\":"),
            std::string::npos);
  EXPECT_NE(days.find("\"day\":1"), std::string::npos);
  const std::string health = svc.healthz_json();
  EXPECT_NE(health.find("\"intervals_seen\":97"), std::string::npos);
  EXPECT_NE(health.find("\"intervals_recorded\":1"), std::string::npos);
}

TEST(MonitorService, JobsRingKeepsNewestChronologically) {
  Session session;
  MonitorConfig cfg;
  cfg.max_job_samples = 4;
  MonitorService svc(session, cfg);
  for (int i = 0; i < 10; ++i) {
    JobSample j;
    j.job_id = i;
    j.end_s = 100.0 * i;
    j.complete = true;
    svc.on_job(j);
  }
  const std::string all = svc.jobs_json(100);
  EXPECT_NE(all.find("\"jobs_seen\":10"), std::string::npos);
  EXPECT_NE(all.find("\"returned\":4"), std::string::npos);
  // Oldest survivors evicted; the window is 6,7,8,9 in order.
  EXPECT_EQ(all.find("\"job_id\":5,"), std::string::npos);
  const std::size_t p6 = all.find("\"job_id\":6");
  const std::size_t p9 = all.find("\"job_id\":9");
  ASSERT_NE(p6, std::string::npos);
  ASSERT_NE(p9, std::string::npos);
  EXPECT_LT(p6, p9);

  const std::string two = svc.jobs_json(2);
  EXPECT_NE(two.find("\"returned\":2"), std::string::npos);
  EXPECT_EQ(two.find("\"job_id\":7,"), std::string::npos);
  EXPECT_NE(two.find("\"job_id\":8"), std::string::npos);
}

TEST(MonitorService, QuitEndpointSetsTheFlagOnce) {
  Session session;
  MonitorService svc(session);
  EXPECT_FALSE(svc.quit_requested());
  const util::HttpResponse resp =
      svc.handle(get_req(MonitorService::kQuitPath));
  EXPECT_EQ(resp.status, 200);
  EXPECT_TRUE(svc.quit_requested());
}

TEST(MonitorService, TraceIs503UntilACampaignCompletes) {
  Session session;
  MonitorService svc(session);
  EXPECT_EQ(svc.handle(get_req(MonitorService::kTracePath)).status, 503);
  svc.set_trace_json("{\"traceEvents\":[]}");
  const util::HttpResponse ok = svc.handle(get_req(MonitorService::kTracePath));
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.content_type, "application/json");
  EXPECT_EQ(ok.body, "{\"traceEvents\":[]}");
}

TEST(MonitorService, ObservedCampaignReconcilesWithLossReport) {
  // The service's cumulative health must agree with the post-hoc forensic
  // report — same contract the HealthReporter smoke pins, now through the
  // monitoring facade (and with job samples flowing too).
  core::Sp2Config cfg = core::Sp2Config::small(/*days=*/6, /*nodes=*/16);
  cfg.faults() = fault::FaultConfig::reference();
  Session session;
  MonitorService svc(session);
  cfg.driver.observer = &svc;
  workload::CampaignResult result;
  {
    ScopedSession scoped(session);
    result = workload::run_campaign(cfg.driver);
  }
  const HealthSnapshot snap = svc.health();
  const analysis::MeasurementLoss loss = analysis::measure_loss(result);
  EXPECT_EQ(snap.intervals_seen, loss.intervals_expected);
  EXPECT_EQ(snap.intervals_recorded, loss.intervals_recorded);
  EXPECT_EQ(snap.node_samples_expected, loss.node_samples_expected);
  EXPECT_EQ(snap.node_samples_clean, loss.node_samples_clean);
  EXPECT_EQ(snap.faults_injected, loss.injected.total_faults());
  // Completed jobs produced samples; the ring saw at least those.
  const std::string jobs = svc.jobs_json(1u << 20);
  EXPECT_NE(jobs.find("\"jobs_seen\":"), std::string::npos);
  EXPECT_GE(snap.jobs_completed, 1);
}

TEST(MonitorService, ScrapeBetweenPhaseBoundariesStaysReconciled) {
  // Interleave scrapes with interval observations at every "phase
  // boundary" a driver would present: after each on_interval the healthz
  // totals must already include that interval — no deferred accounting.
  Session session;
  MonitorService svc(session);
  for (int i = 0; i < 10; ++i) {
    HealthSample s;
    s.interval = i;
    s.day = i / 4;
    s.interval_recorded = true;
    s.nodes_expected = 4;
    s.nodes_sampled = 4;
    s.mflops = 100.0;
    svc.on_interval(s);
    const std::string body = svc.healthz_json();
    const std::string want =
        "\"intervals_seen\":" + std::to_string(i + 1) + ",";
    EXPECT_NE(body.find(want), std::string::npos) << body;
    // The lock-free metrics scrape works at the same boundary.
    EXPECT_NE(svc.metrics_text().find("p2sim_server_"), std::string::npos);
  }
}

}  // namespace
}  // namespace p2sim::telemetry
