// Campaign-level telemetry contracts: the overhead guard (telemetry off
// means zero metric allocations), determinism of the simulated-time
// exports, and fault-counter reconciliation against the FaultLog.
#include <gtest/gtest.h>

#include <string>

#include "src/core/simulation.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/service.hpp"
#include "src/telemetry/session.hpp"
#include "src/workload/driver.hpp"

namespace p2sim {
namespace {

workload::DriverConfig small_faulted(std::int64_t days = 4, int nodes = 8) {
  core::Sp2Config cfg = core::Sp2Config::small(days, nodes);
  cfg.faults() = fault::FaultConfig::reference();
  return cfg.driver;
}

TEST(CampaignTelemetry, DisabledCampaignAllocatesNoMetrics) {
  // The overhead guard: with no session installed, a faulted campaign must
  // construct zero Counter/Gauge/Histogram objects anywhere in the
  // pipeline.  This pins "disabled means off", not "off but allocating".
  const std::uint64_t before = telemetry::metrics_created();
  (void)workload::run_campaign(small_faulted());
  EXPECT_EQ(telemetry::metrics_created(), before);
}

TEST(CampaignTelemetry, ScrapePathAllocatesNoMetrics) {
  // The other half of the overhead guard: serving the monitoring plane
  // must construct zero metric objects.  All registration happens at
  // MonitorService construction and during the campaign; every scrape and
  // query after that works entirely on existing storage.
  telemetry::Session session;
  telemetry::MonitorService svc(session);
  {
    telemetry::ScopedSession scoped(session);
    (void)workload::run_campaign(small_faulted());
  }
  const std::uint64_t before = telemetry::metrics_created();
  for (int i = 0; i < 50; ++i) {
    (void)svc.metrics_text();
    (void)svc.healthz_json();
    (void)svc.days_json();
    (void)svc.jobs_json(16);
    (void)session.registry.snapshot();
    (void)session.registry.prometheus_text();
  }
  EXPECT_EQ(telemetry::metrics_created(), before);
}

TEST(CampaignTelemetry, SessionCollectsDuringCampaign) {
  telemetry::Session session;
  {
    telemetry::ScopedSession scoped(session);
    (void)workload::run_campaign(small_faulted());
  }
  EXPECT_GT(session.registry.size(), 0u);
  EXPECT_TRUE(session.registry.contains("p2sim_daemon_coverage"));
  EXPECT_TRUE(
      session.registry.contains("p2sim_driver_jobs_dispatched_total"));
  EXPECT_FALSE(session.tracer.events().empty());
  EXPECT_EQ(session.tracer.open_depth(), 0);
  // Level A kernel runs advanced the dedicated engine timeline.
  EXPECT_GT(session.engine_clock_s, 0.0);
}

TEST(CampaignTelemetry, ScopedSessionRestoresPrevious) {
  EXPECT_EQ(telemetry::current(), nullptr);
  telemetry::Session session;
  {
    telemetry::ScopedSession scoped(session);
    EXPECT_EQ(telemetry::current(), &session);
  }
  EXPECT_EQ(telemetry::current(), nullptr);
}

TEST(CampaignTelemetry, SimTimeExportsAreDeterministic) {
  // Two identical campaigns under fresh sessions must produce
  // byte-identical simulated-time exports (wall-clock metrics excluded by
  // default, wall args omitted from the trace).
  std::string jsonl[2];
  std::string trace[2];
  for (int i = 0; i < 2; ++i) {
    telemetry::Session session;
    {
      telemetry::ScopedSession scoped(session);
      (void)workload::run_campaign(small_faulted());
    }
    jsonl[i] = session.registry.jsonl();
    trace[i] = session.tracer.chrome_trace_json(/*include_wall=*/false);
  }
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_EQ(trace[0], trace[1]);
}

TEST(CampaignTelemetry, TelemetryDoesNotPerturbTheCampaign) {
  // Observing a campaign must not change it: results with and without a
  // session installed are identical (telemetry reads, never draws).
  const workload::CampaignResult bare =
      workload::run_campaign(small_faulted());
  telemetry::Session session;
  workload::CampaignResult observed;
  {
    telemetry::ScopedSession scoped(session);
    observed = workload::run_campaign(small_faulted());
  }
  EXPECT_EQ(bare.intervals.size(), observed.intervals.size());
  EXPECT_EQ(bare.jobs.size(), observed.jobs.size());
  EXPECT_DOUBLE_EQ(bare.total_busy_node_seconds,
                   observed.total_busy_node_seconds);
  EXPECT_EQ(bare.faults.total_faults(), observed.faults.total_faults());
  for (std::size_t i = 0; i < bare.intervals.size(); ++i) {
    EXPECT_EQ(bare.intervals[i].delta.user,
              observed.intervals[i].delta.user);
  }
}

TEST(CampaignTelemetry, FaultCountersReconcileWithFaultLog) {
  telemetry::Session session;
  workload::CampaignResult result;
  {
    telemetry::ScopedSession scoped(session);
    result = workload::run_campaign(small_faulted(/*days=*/8));
  }
  const fault::FaultLog& log = result.faults;
  ASSERT_GT(log.total_faults(), 0);
  auto counter_value = [&](const char* name) -> std::uint64_t {
    if (!session.registry.contains(name)) return 0;
    // help is ignored on re-registration; kind must match.
    return session.registry.counter(name, "").value();
  };
  EXPECT_EQ(counter_value("p2sim_fault_node_crashes_total"),
            static_cast<std::uint64_t>(log.node_crashes));
  EXPECT_EQ(counter_value("p2sim_fault_intervals_missed_total"),
            static_cast<std::uint64_t>(log.intervals_missed));
  EXPECT_EQ(counter_value("p2sim_fault_node_samples_lost_total"),
            static_cast<std::uint64_t>(log.node_samples_lost));
  EXPECT_EQ(counter_value("p2sim_fault_prologues_lost_total"),
            static_cast<std::uint64_t>(log.prologues_lost));
  EXPECT_EQ(counter_value("p2sim_fault_epilogues_lost_total"),
            static_cast<std::uint64_t>(log.epilogues_lost));
  EXPECT_EQ(counter_value("p2sim_driver_jobs_requeued_total"),
            static_cast<std::uint64_t>(log.jobs_requeued));
  // The daemon cannot tell a crashed node from a sample dropped in flight;
  // its unreachable tally covers both FaultLog categories.
  EXPECT_EQ(counter_value("p2sim_daemon_unreachable_total"),
            static_cast<std::uint64_t>(log.node_samples_unreachable +
                                       log.node_samples_lost));
}

}  // namespace
}  // namespace p2sim
