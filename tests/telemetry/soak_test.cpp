// MonitoringSoak: the always-on plane under fire.  A fault-injected
// campaign runs on 4 worker threads while 16 concurrent clients hammer the
// HTTP endpoints with a hostile mix — scrapes, JSON queries, malformed
// requests, slow-loris partial reads and mid-response disconnects —
// totalling thousands of requests.  The contract being soaked:
//   - zero dropped or torn responses for every well-formed request, and
//   - the campaign's byte-identity fingerprint is EXACTLY the serverless
//     baseline: scraping cannot perturb the measurement.
// CI replays this test under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/service.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/http_client.hpp"
#include "src/util/http_server.hpp"
#include "tests/workload/campaign_fingerprint.hpp"

namespace p2sim::telemetry {
namespace {

constexpr int kClients = 16;
constexpr std::uint64_t kMinRequests = 3000;

struct SoakCounters {
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> well_formed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> probes{0};
  std::mutex detail_mu;
  std::vector<std::string> details;  // first few drop/tear diagnoses

  void note(const std::string& what) {
    std::lock_guard<std::mutex> lock(detail_mu);
    if (details.size() < 8) details.push_back(what);
  }

  std::string diagnosis() {
    std::lock_guard<std::mutex> lock(detail_mu);
    std::string out;
    for (const std::string& d : details) out += d + "\n";
    return out;
  }
};

// The drop contract is about the server: an accepted well-formed request
// is always answered, whole.  On a saturated CI machine the loop thread
// can be descheduled long enough for a client's wall-clock deadline to
// expire at the transport layer; a bounded retry distinguishes that
// (kernel-level backpressure, request never reached the server) from an
// actual dropped response.
util::HttpFetch fetch_retrying(std::uint16_t port, const std::string& target) {
  util::HttpFetch got;
  for (int attempt = 0; attempt < 5; ++attempt) {
    got = util::http_get("127.0.0.1", port, target);
    if (got.ok) return got;
    std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
  }
  return got;
}

bool looks_complete(const std::string& target, const util::HttpFetch& got) {
  if (got.status != 200) return true;  // 503 /trace pre-campaign is fine
  if (got.body.empty() || got.body.back() != '\n') return false;
  if (target == "/metrics") {
    return got.body.rfind("# HELP", 0) == 0 &&
           got.body.find("p2sim_server_requests_total") != std::string::npos;
  }
  if (target == "/healthz" || target == "/api/jobs" ||
      target.rfind("/api/", 0) == 0) {
    return got.body.front() == '{' &&
           got.body.find('}') != std::string::npos;
  }
  return true;
}

void well_formed_client(std::uint16_t port, int id, SoakCounters* ctr) {
  const std::vector<std::string> targets = {
      "/metrics", "/healthz", "/api/days", "/api/jobs?limit=5", "/trace"};
  std::size_t i = static_cast<std::size_t>(id);
  while (!ctr->done.load(std::memory_order_acquire) ||
         ctr->well_formed.load(std::memory_order_relaxed) < kMinRequests) {
    const std::string& target = targets[i++ % targets.size()];
    const util::HttpFetch got = fetch_retrying(port, target);
    ctr->well_formed.fetch_add(1, std::memory_order_relaxed);
    if (!got.ok) {
      ctr->dropped.fetch_add(1, std::memory_order_relaxed);
      ctr->note("drop " + target + ": " + got.error);
    } else if (!looks_complete(target, got)) {
      ctr->torn.fetch_add(1, std::memory_order_relaxed);
      ctr->note("tear " + target + " status " + std::to_string(got.status) +
                " body[" + got.body.substr(0, 40) + "]");
    }
  }
}

void hostile_client(std::uint16_t port, int id, SoakCounters* ctr) {
  const std::vector<std::string> garbage = {
      "NOT HTTP AT ALL\r\n\r\n",
      "GET /metrics HTTP/1.1\r\nHost: x\r\n",       // eternal slow-loris
      "GET / HTTP/1.1\r\nContent-Length: 9\r\n\r\n",  // body never comes
      "\x01\x02\xff\xfe\x00 binary garbage",
  };
  std::size_t i = static_cast<std::size_t>(id);
  while (!ctr->done.load(std::memory_order_acquire) ||
         ctr->well_formed.load(std::memory_order_relaxed) < kMinRequests) {
    switch (i++ % 3) {
      case 0:  // malformed bytes, read whatever comes back
        (void)util::http_raw("127.0.0.1", port, garbage[i % garbage.size()],
                             /*timeout_ms=*/500);
        break;
      case 1:  // mid-response disconnect: ask, then hang up immediately
        (void)util::http_raw("127.0.0.1", port,
                             "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
                             /*timeout_ms=*/1);
        break;
      default: {  // interleave a well-formed probe to prove liveness
        const util::HttpFetch got = fetch_retrying(port, "/healthz");
        ctr->probes.fetch_add(1, std::memory_order_relaxed);
        if (!got.ok || got.status != 200) {
          ctr->dropped.fetch_add(1, std::memory_order_relaxed);
          ctr->note("probe /healthz status " + std::to_string(got.status) +
                    ": " + got.error);
        }
        break;
      }
    }
  }
}

TEST(MonitoringSoak, HostileClientsNeitherTearNorPerturbTheCampaign) {
  // Serverless baseline: same campaign, nobody watching.
  const std::string baseline =
      workload::campaign_fingerprint(workload::faulted_config(), /*threads=*/4);

  Session session;
  MonitorService svc(session);
  util::HttpServer server;
  util::HttpServerConfig scfg;
  scfg.observer = &svc;
  scfg.header_timeout_ms = 200;  // make the loris probes turn over fast
  std::string error;
  ASSERT_TRUE(
      server.start(
          scfg,
          [&svc](const util::HttpRequest& req) { return svc.handle(req); },
          &error))
      << error;

  SoakCounters ctr;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    if (c % 4 == 3) {
      clients.emplace_back(hostile_client, server.port(), c, &ctr);
    } else {
      clients.emplace_back(well_formed_client, server.port(), c, &ctr);
    }
  }

  workload::DriverConfig cfg = workload::faulted_config();
  cfg.threads = 4;
  cfg.observer = &svc;
  workload::CampaignResult result;
  {
    ScopedSession scoped(session);
    result = workload::run_campaign(cfg);
  }
  svc.set_trace_json(session.tracer.chrome_trace_json());
  svc.note_campaign_complete();
  ctr.done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  server.stop();

  // Volume: the soak only means something if the server actually took fire.
  EXPECT_GE(ctr.well_formed.load(), kMinRequests);
  EXPECT_GT(ctr.probes.load(), 0u);
  // Zero dropped, zero torn.
  EXPECT_EQ(ctr.dropped.load(), 0u) << ctr.diagnosis();
  EXPECT_EQ(ctr.torn.load(), 0u) << ctr.diagnosis();

  // The scraped campaign is byte-identical to the unwatched baseline:
  // same records, same loss report, same sim-time telemetry exports.
  workload::expect_identical(
      baseline, workload::fingerprint_result(result, &session),
      "soak vs serverless baseline");

  // And the server-side accounting saw the traffic (wall-clock metrics,
  // outside the fingerprint by design).
  const HealthSnapshot snap = svc.health();
  EXPECT_GT(snap.intervals_seen, 0);
  EXPECT_NE(svc.metrics_text().find("p2sim_server_requests_total"),
            std::string::npos);
}

}  // namespace
}  // namespace p2sim::telemetry
