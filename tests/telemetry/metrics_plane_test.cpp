// Lock-free metrics plane contracts: exact concurrent counting, seqlock
// coherence of histogram reads under write fire, lock-free registry
// snapshots racing registration, Prometheus exposition conformance of the
// renderer, and the fold-epoch consistency of session-level snapshots.
#include "src/telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/session.hpp"
#include "src/telemetry/shard.hpp"

namespace p2sim::telemetry {
namespace {

TEST(MetricsPlane, ConcurrentCounterIncrementsAreExact) {
  Registry reg;
  Counter& c = reg.counter("p2sim_test_plane_total", "concurrent bumps");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPer = 100000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPer; ++i) c.inc();
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST(MetricsPlane, ConcurrentGaugeAddsAreExact) {
  Registry reg;
  Gauge& g = reg.gauge("p2sim_test_plane_gauge", "concurrent adds");
  constexpr int kThreads = 8;
  constexpr int kPer = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&g] {
      for (int i = 0; i < kPer; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : writers) t.join();
  // Integer-valued doubles below 2^53: every add is exact regardless of
  // interleaving, so the total is too.
  EXPECT_EQ(g.value(), static_cast<double>(kThreads * kPer));
}

TEST(MetricsPlane, HistogramReadsAreCoherentUnderWriteFire) {
  Registry reg;
  Histogram& h = reg.histogram("p2sim_test_plane_seconds", "seqlock probe",
                               {0.25, 0.5, 0.75});
  constexpr int kWriters = 4;
  constexpr int kPer = 50000;
  std::atomic<bool> go{true};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&h, &go, &torn] {
      std::vector<std::uint64_t> counts;
      std::uint64_t n = 0;
      double sum = 0.0;
      while (go.load(std::memory_order_relaxed)) {
        h.read_coherent(&counts, &n, &sum);
        std::uint64_t total = 0;
        for (std::uint64_t c : counts) total += c;
        // The seqlock invariant: bucket totals and the count are from one
        // writer-quiescent window, so they always agree.
        if (total != n) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (int i = 0; i < kPer; ++i) {
        h.observe(static_cast<double>((i + w) % 10) / 10.0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  go.store(false, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kWriters * kPer));
  std::uint64_t total = 0;
  for (std::uint64_t c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(MetricsPlane, SnapshotNeverBlocksOnRegistration) {
  Registry reg;
  reg.counter("p2sim_test_plane_seed_total", "pre-registered");
  std::atomic<bool> go{true};
  std::thread registrar([&reg, &go] {
    for (int i = 0; i < 500; ++i) {
      reg.counter("p2sim_test_plane_r" + std::to_string(i) + "_total",
                  "registered mid-scrape")
          .inc();
    }
    go.store(false, std::memory_order_relaxed);
  });
  std::size_t last = 0;
  while (go.load(std::memory_order_relaxed)) {
    const MetricsSnapshot snap = reg.snapshot();
    // Present entries are fully materialized and sorted by name.
    ASSERT_GE(snap.size(), last);
    ASSERT_GE(snap.size(), 1u);
    for (std::size_t i = 1; i < snap.size(); ++i) {
      ASSERT_LT(snap[i - 1].name, snap[i].name);
    }
    last = snap.size();
  }
  registrar.join();
  EXPECT_EQ(reg.snapshot().size(), 501u);
}

TEST(MetricsPlane, PrometheusRenderingEscapesHelpText) {
  Registry reg;
  reg.counter("p2sim_test_plane_escaped_total",
              "line one\nline two with a \\ backslash");
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("line one\\nline two with a \\\\ backslash"),
            std::string::npos);
  // The raw newline must not have leaked into the exposition stream.
  EXPECT_EQ(text.find("line one\nline two"), std::string::npos);
}

TEST(MetricsPlane, PrometheusHistogramFamilyIsComplete) {
  Registry reg;
  Histogram& h = reg.histogram("p2sim_test_plane_hist_seconds",
                               "family completeness", {0.25, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("p2sim_test_plane_hist_seconds_bucket{le=\"0.25\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("p2sim_test_plane_hist_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("p2sim_test_plane_hist_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("p2sim_test_plane_hist_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("p2sim_test_plane_hist_seconds_sum"),
            std::string::npos);
}

TEST(MetricsPlane, SnapshotAllocatesNoMetricObjects) {
  Registry reg;
  reg.counter("p2sim_test_plane_quiet_total", "no allocations on scrape");
  reg.histogram("p2sim_test_plane_quiet_seconds", "ditto", {1.0});
  const std::uint64_t before = metrics_created();
  for (int i = 0; i < 100; ++i) {
    (void)reg.snapshot();
    (void)reg.prometheus_text();
    (void)reg.jsonl();
  }
  EXPECT_EQ(metrics_created(), before);
}

TEST(MetricsPlane, ConsistentSnapshotWaitsOutTheFoldEpoch) {
  Session session;
  // The fold target must carry the same exposition name as the shard
  // residue — exactly what the driver does — so a scrape sees 7 whether it
  // lands before or after the fold.
  Counter& folded = session.registry.counter(
      "p2sim_lane_busy_node_intervals_total", "fold target");
  MetricShard shard;
  shard.add_busy(7);
  ScopedLiveShards live(&session, {&shard});

  // A snapshot taken while no fold is in flight merges the live residue.
  MetricsSnapshot snap = consistent_snapshot(session);
  bool found = false;
  for (const MetricSample& s : snap) {
    if (s.name == "p2sim_lane_busy_node_intervals_total") {
      found = true;
      EXPECT_EQ(s.counter_value, 7u);
    }
  }
  EXPECT_TRUE(found);

  // While a fold guard is held (epoch odd), snapshots spin; they complete
  // once the fold ends and see the folded value instead of the residue.
  std::atomic<bool> snapped{false};
  std::thread scraper([&session, &snapped] {
    const MetricsSnapshot s = consistent_snapshot(session);
    snapped.store(true, std::memory_order_release);
    std::uint64_t lane_total = 0;
    for (const MetricSample& m : s) {
      if (m.name == "p2sim_lane_busy_node_intervals_total") {
        lane_total = m.counter_value;
      }
    }
    // Either the pre-fold residue or the post-fold counter value — both
    // read 7 under the one name; never a half-fold like 0 or 14.
    EXPECT_EQ(lane_total, 7u);
  });
  {
    Session::FoldGuard guard(&session);
    // Simulate the serial fold: move the shard into the registry counter
    // and reset, exactly as the driver does between intervals.
    folded.inc(shard.busy());
    shard.reset();
  }
  scraper.join();
  EXPECT_TRUE(snapped.load(std::memory_order_acquire));
  EXPECT_EQ(session.fold_epoch() % 2, 0u);
}

TEST(MetricsPlane, FoldGuardAndLiveShardsTolerateNullSession) {
  Session::FoldGuard guard(nullptr);
  ScopedLiveShards live(nullptr, {});
  SUCCEED();
}

}  // namespace
}  // namespace p2sim::telemetry
