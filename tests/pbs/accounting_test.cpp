#include "src/pbs/accounting.hpp"

#include <gtest/gtest.h>

namespace p2sim::pbs {
namespace {

using rs2hpm::ModeTotals;

JobRecord record(std::int64_t id, int nodes, double start, double walltime,
                 double total_adds) {
  JobRecord r;
  r.spec.job_id = id;
  r.spec.nodes_requested = nodes;
  r.start_time_s = start;
  r.end_time_s = start + walltime;
  r.report.job_id = id;
  r.report.nodes = nodes;
  r.report.elapsed_s = walltime;
  r.report.delta.user[hpm::index_of(hpm::HpmCounter::kFpAdd0)] =
      static_cast<std::uint64_t>(total_adds);
  return r;
}

TEST(JobDatabase, StartsEmpty) {
  JobDatabase db;
  EXPECT_EQ(db.size(), 0u);
  EXPECT_TRUE(db.analyzed().empty());
  EXPECT_EQ(db.time_weighted_mflops_per_node(), 0.0);
}

TEST(JobDatabase, SixHundredSecondFilter) {
  JobDatabase db;
  db.add(record(1, 4, 0.0, 599.0, 1e6));   // excluded: too short
  db.add(record(2, 4, 0.0, 600.0, 1e6));   // excluded: boundary (strictly >)
  db.add(record(3, 4, 0.0, 601.0, 1e6));   // included
  const auto a = db.analyzed();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0]->spec.job_id, 3);
}

TEST(JobDatabase, ByNodesFiltersAndSortsByStart) {
  JobDatabase db;
  db.add(record(1, 16, 5000.0, 1000.0, 1e6));
  db.add(record(2, 32, 0.0, 1000.0, 1e6));
  db.add(record(3, 16, 1000.0, 1000.0, 1e6));
  const auto a = db.by_nodes(16);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0]->spec.job_id, 3);  // earlier start first
  EXPECT_EQ(a[1]->spec.job_id, 1);
}

TEST(JobDatabase, WalltimeAndMflops) {
  JobDatabase db;
  // 2e9 adds over 1000 s on 2 nodes = 2000 Mflop / 1000 s = 2 job-Mflops.
  db.add(record(1, 2, 0.0, 1000.0, 2e9));
  const JobRecord& r = db.all()[0];
  EXPECT_DOUBLE_EQ(r.walltime_s(), 1000.0);
  EXPECT_NEAR(r.job_mflops(), 2.0, 1e-9);
  EXPECT_NEAR(r.mflops_per_node(), 1.0, 1e-9);
}

TEST(JobDatabase, TimeWeightedAverageWeightsLongJobs) {
  JobDatabase db;
  // Job A: 1 Mflops/node for 1000 s; Job B: 4 Mflops/node for 3000 s.
  db.add(record(1, 1, 0.0, 1000.0, 1e9));     // 1e9/1e6/1000 = 1 Mflops
  db.add(record(2, 1, 0.0, 3000.0, 12e9));    // 12e9/1e6/3000 = 4 Mflops
  EXPECT_NEAR(db.time_weighted_mflops_per_node(),
              (1.0 * 1000 + 4.0 * 3000) / 4000.0, 1e-9);
}

TEST(JobDatabase, CustomThreshold) {
  JobDatabase db;
  db.add(record(1, 4, 0.0, 100.0, 1e6));
  EXPECT_EQ(db.analyzed(50.0).size(), 1u);
  EXPECT_TRUE(db.analyzed(100.0).empty());
}

TEST(JobDatabase, IncompleteRecordsExcludedFromAnalysis) {
  JobDatabase db;
  JobRecord lost = record(1, 4, 0.0, 5000.0, 9e12);  // huge but untrusted
  lost.report.complete = false;
  db.add(lost);
  db.add(record(2, 4, 0.0, 5000.0, 1e9));
  db.add(record(3, 16, 0.0, 5000.0, 1e9));

  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.incomplete_count(), 1u);
  const auto a = db.analyzed();
  ASSERT_EQ(a.size(), 2u);
  for (const JobRecord* r : a) EXPECT_NE(r->spec.job_id, 1);
  // by_nodes applies the same completeness filter.
  EXPECT_TRUE(db.by_nodes(4).size() == 1u);
  // The poisoned 9e12-add record must not inflate the campaign average.
  const double avg = db.time_weighted_mflops_per_node();
  EXPECT_LT(avg, 1.0);
  EXPECT_GT(avg, 0.0);
}

TEST(JobDatabase, CompleteHelperReflectsReportFlag) {
  JobRecord r = record(1, 2, 0.0, 100.0, 1.0);
  EXPECT_TRUE(r.complete());
  r.report.complete = false;
  EXPECT_FALSE(r.complete());
}

}  // namespace
}  // namespace p2sim::pbs
