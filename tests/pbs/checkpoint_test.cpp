// Tests for the checkpointing counterfactual scheduler mode.
#include <gtest/gtest.h>

#include "src/pbs/scheduler.hpp"

namespace p2sim::pbs {
namespace {

JobSpec job(std::int64_t id, int nodes, double submit = 0.0) {
  JobSpec s;
  s.job_id = id;
  s.nodes_requested = nodes;
  s.submit_time_s = submit;
  s.runtime_s = 3600.0;
  return s;
}

SchedulerConfig ckpt_config() {
  SchedulerConfig cfg;
  cfg.total_nodes = 144;
  cfg.drain_threshold_nodes = 64;
  cfg.wide_wait_patience_s = 1000.0;
  cfg.checkpoint_for_wide = true;
  return cfg;
}

TEST(Checkpoint, PreemptsYoungestNarrowJobsForWideJob) {
  Scheduler s(ckpt_config());
  s.submit(job(1, 60));
  s.submit(job(2, 60));
  s.schedule(0.0);  // both running; 24 free
  s.submit(job(3, 100, 0.0));

  // Patience not yet exhausted: nothing happens.
  EXPECT_TRUE(s.schedule(500.0).empty());
  EXPECT_TRUE(s.take_preempted().empty());

  // Patience exhausted.  The wide job needs 100 nodes; 24 are free, so
  // preempting job 2 (60 nodes) leaves 84 — still short — and job 1 is
  // checkpointed as well, youngest first.
  const auto started = s.schedule(1500.0);
  const auto preempted = s.take_preempted();
  ASSERT_EQ(preempted.size(), 2u);
  EXPECT_EQ(preempted[0], 2);  // youngest first
  EXPECT_EQ(preempted[1], 1);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 3);
  EXPECT_EQ(s.running_jobs(), 1u);  // only the wide job
}

TEST(Checkpoint, StopsPreemptingOnceTheWideJobFits) {
  Scheduler s(ckpt_config());
  s.submit(job(1, 60));
  s.submit(job(2, 60));
  s.schedule(0.0);  // 24 free
  s.submit(job(3, 80, 0.0));  // 24 + 60 = 84 >= 80: one preemption suffices
  const auto started = s.schedule(1500.0);
  const auto preempted = s.take_preempted();
  ASSERT_EQ(preempted.size(), 1u);
  EXPECT_EQ(preempted[0], 2);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 3);
  EXPECT_EQ(s.running_jobs(), 2u);  // job 1 + wide job 3
}

TEST(Checkpoint, PreemptsOnlyAsManyAsNeeded) {
  Scheduler s(ckpt_config());
  s.submit(job(1, 40));
  s.submit(job(2, 40));
  s.submit(job(3, 40));
  s.schedule(0.0);  // 24 free
  s.submit(job(4, 100, 0.0));
  s.schedule(2000.0);
  // 100 needed, 24 free: preempting two 40-node jobs suffices.
  EXPECT_EQ(s.take_preempted().size(), 2u);
}

TEST(Checkpoint, NeverPreemptsWideJobs) {
  Scheduler s(ckpt_config());
  s.submit(job(1, 120));
  s.schedule(0.0);  // one wide job holds the machine
  s.submit(job(2, 100, 0.0));
  const auto started = s.schedule(2000.0);
  EXPECT_TRUE(started.empty());
  EXPECT_TRUE(s.take_preempted().empty());
  EXPECT_EQ(s.running_jobs(), 1u);
}

TEST(Checkpoint, DisabledModeNeverPreempts) {
  SchedulerConfig cfg = ckpt_config();
  cfg.checkpoint_for_wide = false;
  Scheduler s(cfg);
  s.submit(job(1, 100));
  s.schedule(0.0);
  s.submit(job(2, 128, 0.0));
  s.schedule(5000.0);
  EXPECT_TRUE(s.take_preempted().empty());
  EXPECT_TRUE(s.draining());
}

TEST(Checkpoint, TakePreemptedClearsTheList) {
  Scheduler s(ckpt_config());
  s.submit(job(1, 60));
  s.schedule(0.0);
  s.submit(job(2, 128, 0.0));
  s.schedule(2000.0);
  EXPECT_FALSE(s.take_preempted().empty());
  EXPECT_TRUE(s.take_preempted().empty());
}

}  // namespace
}  // namespace p2sim::pbs
