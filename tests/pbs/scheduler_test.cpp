#include "src/pbs/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace p2sim::pbs {
namespace {

JobSpec job(std::int64_t id, int nodes, double submit = 0.0) {
  JobSpec s;
  s.job_id = id;
  s.nodes_requested = nodes;
  s.submit_time_s = submit;
  s.runtime_s = 3600.0;
  return s;
}

TEST(Scheduler, ConfigValidation) {
  EXPECT_THROW(Scheduler(SchedulerConfig{.total_nodes = 0}),
               std::invalid_argument);
}

TEST(Scheduler, RejectsOutOfRangeRequests) {
  Scheduler s(SchedulerConfig{.total_nodes = 16});
  EXPECT_THROW(s.submit(job(1, 0)), std::invalid_argument);
  EXPECT_THROW(s.submit(job(2, 17)), std::invalid_argument);
  EXPECT_NO_THROW(s.submit(job(3, 16)));
}

TEST(Scheduler, StartsJobsThatFit) {
  Scheduler s(SchedulerConfig{.total_nodes = 16});
  s.submit(job(1, 8));
  s.submit(job(2, 8));
  s.submit(job(3, 8));
  const auto started = s.schedule(0.0);
  ASSERT_EQ(started.size(), 2u);
  EXPECT_EQ(s.free_nodes(), 0);
  EXPECT_EQ(s.busy_nodes(), 16);
  EXPECT_EQ(s.queued_jobs(), 1u);
  EXPECT_EQ(s.running_jobs(), 2u);
}

TEST(Scheduler, NodesAreDedicatedAndDisjoint) {
  Scheduler s(SchedulerConfig{.total_nodes = 12});
  s.submit(job(1, 5));
  s.submit(job(2, 7));
  const auto started = s.schedule(0.0);
  ASSERT_EQ(started.size(), 2u);
  std::set<int> all;
  for (const auto& ev : started) {
    EXPECT_EQ(static_cast<int>(ev.nodes.size()), ev.spec.nodes_requested);
    for (int n : ev.nodes) {
      EXPECT_TRUE(all.insert(n).second) << "node " << n << " double-booked";
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 12);
    }
  }
}

TEST(Scheduler, BackfillSkipsBlockedHead) {
  Scheduler s(SchedulerConfig{.total_nodes = 16});
  s.submit(job(1, 12));
  const auto first = s.schedule(0.0);
  ASSERT_EQ(first.size(), 1u);
  s.submit(job(2, 8));  // cannot fit (4 free)
  s.submit(job(3, 4));  // fits: should backfill past job 2
  const auto started = s.schedule(1.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 3);
  EXPECT_EQ(s.queued_jobs(), 1u);
}

TEST(Scheduler, ReleaseFreesNodes) {
  Scheduler s(SchedulerConfig{.total_nodes = 8});
  s.submit(job(1, 8));
  s.schedule(0.0);
  EXPECT_EQ(s.free_nodes(), 0);
  s.release(1);
  EXPECT_EQ(s.free_nodes(), 8);
  EXPECT_EQ(s.running_jobs(), 0u);
}

TEST(Scheduler, ReleaseUnknownJobThrows) {
  Scheduler s(SchedulerConfig{.total_nodes = 8});
  EXPECT_THROW(s.release(99), std::invalid_argument);
}

TEST(Scheduler, NodesOfRunningJob) {
  Scheduler s(SchedulerConfig{.total_nodes = 8});
  s.submit(job(1, 3));
  s.schedule(0.0);
  EXPECT_EQ(s.nodes_of(1).size(), 3u);
  EXPECT_TRUE(s.nodes_of(2).empty());
}

TEST(Scheduler, WideJobWaitsThenTriggersDrain) {
  SchedulerConfig cfg;
  cfg.total_nodes = 144;
  cfg.drain_threshold_nodes = 64;
  cfg.wide_wait_patience_s = 1000.0;
  Scheduler s(cfg);

  // Fill most of the machine with narrow work.
  s.submit(job(1, 100));
  s.schedule(0.0);
  // A 128-node job arrives; 44 nodes free.
  s.submit(job(2, 128, /*submit=*/0.0));
  s.submit(job(3, 30));

  // Before patience expires, backfill continues.
  auto started = s.schedule(500.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 3);
  EXPECT_FALSE(s.draining());

  // After patience, the machine drains: narrow jobs stop starting.
  s.submit(job(4, 8));
  started = s.schedule(2000.0);
  EXPECT_TRUE(started.empty());
  EXPECT_TRUE(s.draining());

  // Once enough nodes free, the wide job launches and draining ends.
  s.release(1);
  s.release(3);
  started = s.schedule(3000.0);
  ASSERT_GE(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 2);
  EXPECT_FALSE(s.draining());
}

TEST(Scheduler, AfterDrainNormalSchedulingResumes) {
  SchedulerConfig cfg;
  cfg.total_nodes = 144;
  cfg.wide_wait_patience_s = 0.0;  // drain immediately
  Scheduler s(cfg);
  s.submit(job(1, 100));
  auto started = s.schedule(0.0);  // 100-node wide job starts right away
  ASSERT_EQ(started.size(), 1u);
  s.submit(job(2, 16));
  started = s.schedule(1.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 2);
}

TEST(Scheduler, FifoOrderAmongEqualJobs) {
  Scheduler s(SchedulerConfig{.total_nodes = 8});
  s.submit(job(1, 8));
  s.submit(job(2, 8));
  auto started = s.schedule(0.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 1);
  s.release(1);
  started = s.schedule(1.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 2);
}

TEST(Scheduler, MultipleStartsPerPass) {
  Scheduler s(SchedulerConfig{.total_nodes = 32});
  for (int i = 1; i <= 4; ++i) s.submit(job(i, 8));
  EXPECT_EQ(s.schedule(0.0).size(), 4u);
}

TEST(Scheduler, FailNodeKillsHoldingJobAndReportsIt) {
  Scheduler s(SchedulerConfig{.total_nodes = 8});
  s.submit(job(1, 3));
  s.submit(job(2, 2));
  const auto started = s.schedule(0.0);
  ASSERT_EQ(started.size(), 2u);
  const int victim = started[0].nodes[1];  // a node held by job 1

  const auto killed = s.fail_node(victim);
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0], 1);
  EXPECT_EQ(s.running_jobs(), 1u);
  EXPECT_TRUE(s.nodes_of(1).empty());
  // Job 1's other two nodes return to the pool; the failed node does not.
  EXPECT_EQ(s.free_nodes(), 8 - 2 - 1);
  EXPECT_EQ(s.busy_nodes(), 2);
  EXPECT_EQ(s.offline_nodes(), 1);
  EXPECT_TRUE(s.node_offline(victim));
}

TEST(Scheduler, FailIdleNodeShrinksPoolWithoutKills) {
  Scheduler s(SchedulerConfig{.total_nodes = 4});
  EXPECT_TRUE(s.fail_node(2).empty());
  EXPECT_EQ(s.free_nodes(), 3);
  EXPECT_EQ(s.offline_nodes(), 1);
  // A second failure of the same node is a no-op.
  EXPECT_TRUE(s.fail_node(2).empty());
  EXPECT_EQ(s.offline_nodes(), 1);
}

TEST(Scheduler, OfflineNodeNeverAllocated) {
  Scheduler s(SchedulerConfig{.total_nodes = 4});
  s.fail_node(1);
  s.submit(job(1, 3));
  const auto started = s.schedule(0.0);
  ASSERT_EQ(started.size(), 1u);
  for (int n : started[0].nodes) EXPECT_NE(n, 1);
  // A job wanting all 4 nodes cannot start while one is down.
  s.submit(job(2, 4));
  EXPECT_TRUE(s.schedule(1.0).empty());
  s.release(1);
  s.restore_node(1);
  EXPECT_EQ(s.schedule(2.0).size(), 1u);
}

TEST(Scheduler, RestoreNodeReturnsItToThePool) {
  Scheduler s(SchedulerConfig{.total_nodes = 4});
  s.fail_node(0);
  EXPECT_EQ(s.free_nodes(), 3);
  s.restore_node(0);
  EXPECT_EQ(s.free_nodes(), 4);
  EXPECT_EQ(s.offline_nodes(), 0);
  EXPECT_FALSE(s.node_offline(0));
  // Restoring an online node is a no-op.
  s.restore_node(0);
  EXPECT_EQ(s.free_nodes(), 4);
}

TEST(Scheduler, FailNodeRangeChecked) {
  Scheduler s(SchedulerConfig{.total_nodes = 4});
  EXPECT_THROW(s.fail_node(-1), std::invalid_argument);
  EXPECT_THROW(s.fail_node(4), std::invalid_argument);
  EXPECT_THROW(s.restore_node(4), std::invalid_argument);
}

TEST(Scheduler, KilledJobCanBeResubmitted) {
  Scheduler s(SchedulerConfig{.total_nodes = 4});
  s.submit(job(1, 4));
  s.schedule(0.0);
  const auto killed = s.fail_node(0);
  ASSERT_EQ(killed.size(), 1u);
  // Requeue under the same id; it restarts once capacity allows.
  s.submit(job(1, 3, /*submit=*/10.0));
  const auto started = s.schedule(10.0);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].spec.job_id, 1);
  for (int n : started[0].nodes) EXPECT_NE(n, 0);
}

}  // namespace
}  // namespace p2sim::pbs
