// Text <-> archive conversion: byte-level round trips in both directions,
// the v3 job format's user_id carriage, and legacy text imports.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/archive/convert.hpp"
#include "src/archive/reader.hpp"
#include "src/core/simulation.hpp"

namespace p2sim::archive {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

/// Scratch paths under the test temp dir, removed on destruction.
struct Scratch {
  std::string intervals, jobs, archive, intervals2, jobs2, archive2;
  Scratch() {
    const std::string base = testing::TempDir() + "p2sim_convert_";
    intervals = base + "i.rec";
    jobs = base + "j.rec";
    archive = base + "a.p2a";
    intervals2 = base + "i2.rec";
    jobs2 = base + "j2.rec";
    archive2 = base + "a2.p2a";
  }
  ~Scratch() {
    for (const std::string& p :
         {intervals, jobs, archive, intervals2, jobs2, archive2}) {
      std::remove(p.c_str());
    }
  }
};

/// One small real campaign's records, shared across the tests.
/// (campaign() materializes lazily, hence the mutable reference.)
core::Sp2Simulation& sim() {
  static core::Sp2Simulation* s = [] {
    core::Sp2Config cfg = core::Sp2Config::small(20, 24);
    return new core::Sp2Simulation(cfg);
  }();
  return *s;
}

TEST(ArchiveConvert, TextToArchiveToTextIsByteExact) {
  Scratch paths;
  {
    std::ofstream out(paths.intervals);
    analysis::save_intervals(out, sim().campaign().intervals);
  }
  {
    std::ofstream out(paths.jobs);
    analysis::save_jobs(out, sim().campaign().jobs);
  }
  std::string error;
  ASSERT_TRUE(text_to_archive(paths.intervals, paths.jobs, paths.archive,
                              &error))
      << error;
  ASSERT_TRUE(archive_to_text(paths.archive, paths.intervals2, paths.jobs2,
                              &error))
      << error;
  EXPECT_EQ(slurp(paths.intervals), slurp(paths.intervals2));
  EXPECT_EQ(slurp(paths.jobs), slurp(paths.jobs2));
}

TEST(ArchiveConvert, ArchiveToTextToArchiveIsByteExact) {
  Scratch paths;
  spill(paths.archive,
        archive_from_records(sim().campaign().intervals,
                             sim().campaign().jobs.all()));
  std::string error;
  ASSERT_TRUE(archive_to_text(paths.archive, paths.intervals, paths.jobs,
                              &error))
      << error;
  ASSERT_TRUE(text_to_archive(paths.intervals, paths.jobs, paths.archive2,
                              &error))
      << error;
  EXPECT_EQ(slurp(paths.archive), slurp(paths.archive2));
}

TEST(ArchiveConvert, JobTextV3CarriesUserId) {
  // save_jobs writes v3 with user_id; the loader must hand it back.
  pbs::JobDatabase db;
  pbs::JobRecord rec;
  rec.spec.job_id = 42;
  rec.spec.user_id = 1234;
  rec.spec.nodes_requested = 8;
  rec.spec.submit_time_s = 10.0;
  rec.start_time_s = 20.0;
  rec.end_time_s = 920.0;
  rec.report.job_id = 42;
  rec.report.nodes = 8;
  rec.report.elapsed_s = 900.0;
  rec.report.complete = true;
  db.add(rec);
  std::ostringstream out;
  analysis::save_jobs(out, db);
  EXPECT_NE(out.str().find("p2sim-jobs v3"), std::string::npos);
  std::istringstream in(out.str());
  const pbs::JobDatabase back = analysis::load_jobs(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.all()[0].spec.user_id, 1234);
}

TEST(ArchiveConvert, LegacyV2JobTextImportsWithUserZero) {
  // A v2 file has no user_id column: the loader accepts it and assigns
  // user 0, so pre-v3 record files keep importing.
  pbs::JobDatabase db;
  pbs::JobRecord rec;
  rec.spec.job_id = 7;
  rec.spec.user_id = 99;  // must NOT survive the v2 round trip
  rec.spec.nodes_requested = 4;
  rec.spec.submit_time_s = 0.0;
  rec.start_time_s = 5.0;
  rec.end_time_s = 905.0;
  rec.report.job_id = 7;
  rec.report.nodes = 4;
  rec.report.elapsed_s = 900.0;
  rec.report.complete = true;
  db.add(rec);
  std::ostringstream v3;
  analysis::save_jobs(v3, db);
  // Rewrite as v2 by dropping the user_id field and downgrading the
  // header; the per-line checksum covers the line body, so recompute it
  // by round-tripping through the v2 writer shape is not available —
  // instead parse in recovering mode, which skips checksum-mismatched
  // lines, and assert the strict v2 fixture below instead.
  std::string v2_text = "p2sim-jobs v2 22\n";
  {
    // Build the v2 line the way record_io v2 wrote it: J,job,nodes,
    // submit,start,end,complete,quad then 2x22 counters + crc.  Easiest
    // correct source: take the v3 line and splice out field 2 (user_id),
    // then let the recovering loader judge the stale checksum.
    const std::string v3_text = v3.str();
    const std::size_t line_at = v3_text.find("\nJ,") + 1;
    const std::size_t line_end = v3_text.find('\n', line_at);
    std::string line = v3_text.substr(line_at, line_end - line_at);
    const std::size_t f1 = line.find(',', 2);        // after job_id
    const std::size_t f2 = line.find(',', f1 + 1);   // after user_id
    line.erase(f1, f2 - f1);
    v2_text += line + "\n";
  }
  // The spliced line's trailing checksum no longer matches, which is
  // itself the point of the checksum; verify the recovering loader
  // reports rather than mis-assigns.
  std::istringstream bad(v2_text);
  analysis::ParseReport report;
  const pbs::JobDatabase tolerant = analysis::load_jobs(bad, &report);
  EXPECT_TRUE(tolerant.size() == 0 || tolerant.all()[0].spec.user_id == 0);

  // And a well-formed legacy v1 file (no user_id, no complete flag, no
  // per-line checksum) parses strictly with user 0.
  std::string v1_text = "p2sim-jobs v1 22\nJ,7,4,0,5,905,11";
  for (int c = 0; c < 44; ++c) v1_text += ",0";
  v1_text += "\n";
  std::istringstream v1(v1_text);
  const pbs::JobDatabase old = analysis::load_jobs(v1);
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(old.all()[0].spec.user_id, 0);
  EXPECT_EQ(old.all()[0].spec.job_id, 7);
}

TEST(ArchiveConvert, MaterializationMatchesSourceRecords) {
  const std::string image = archive_from_records(
      sim().campaign().intervals, sim().campaign().jobs.all());
  const ArchiveReader reader = ArchiveReader::from_bytes(image);
  const std::vector<rs2hpm::IntervalRecord> intervals =
      to_intervals(reader);
  const pbs::JobDatabase jobs = to_jobs(reader);
  ASSERT_EQ(intervals.size(), sim().campaign().intervals.size());
  ASSERT_EQ(jobs.size(), sim().campaign().jobs.size());
  // Spot-check via the text serializer: same records => same bytes.
  std::ostringstream a, b;
  analysis::save_intervals(a, sim().campaign().intervals);
  analysis::save_intervals(b, intervals);
  EXPECT_EQ(a.str(), b.str());
  std::ostringstream ja, jb;
  analysis::save_jobs(ja, sim().campaign().jobs);
  analysis::save_jobs(jb, jobs);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(ArchiveConvert, EmptyPathsSkipTables) {
  Scratch paths;
  {
    std::ofstream out(paths.intervals);
    analysis::save_intervals(out, sim().campaign().intervals);
  }
  std::string error;
  // Jobs path empty: archive carries only the interval table.
  ASSERT_TRUE(
      text_to_archive(paths.intervals, "", paths.archive, &error))
      << error;
  const ArchiveReader reader = ArchiveReader::open(paths.archive);
  EXPECT_EQ(reader.rows(TableKind::kIntervals),
            sim().campaign().intervals.size());
  EXPECT_EQ(reader.rows(TableKind::kJobs), 0u);
}

}  // namespace
}  // namespace p2sim::archive
