// Vectorized query layer: byte-identical results vs the in-memory oracle
// (clean and faulted campaigns), predicate pushdown that provably prunes,
// multi-source aggregation, and the driver-level archive determinism.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/archive/convert.hpp"
#include "src/archive/query.hpp"
#include "src/archive/reader.hpp"
#include "src/core/simulation.hpp"
#include "src/fault/fault.hpp"

namespace p2sim::archive {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

/// One campaign plus its archive image and per-table sources.
struct Fixture {
  std::vector<rs2hpm::IntervalRecord> intervals;
  pbs::JobDatabase jobs;
  std::string image;
  explicit Fixture(bool faulted) {
    core::Sp2Config cfg = core::Sp2Config::small(30, 32);
    if (faulted) cfg.faults() = fault::FaultConfig::reference();
    core::Sp2Simulation sim(cfg);
    intervals = sim.campaign().intervals;
    jobs = sim.campaign().jobs;
    image = archive_from_records(intervals, jobs.all(),
                                 /*rows_per_chunk=*/64);
  }
};

const Fixture& clean() {
  static const Fixture* f = new Fixture(false);
  return *f;
}
const Fixture& faulted() {
  static const Fixture* f = new Fixture(true);
  return *f;
}

void expect_queries_match(const Fixture& fx, const char* label) {
  const ArchiveReader reader = ArchiveReader::from_bytes(fx.image);
  const ArchiveTableSource archive_jobs(reader, TableKind::kJobs);
  const MemoryJobSource oracle_jobs(fx.jobs.all());
  const std::vector<const TableSource*> a{&archive_jobs};
  const std::vector<const TableSource*> o{&oracle_jobs};

  EXPECT_EQ(render_top_users(top_users(a, 10)),
            render_top_users(top_users(o, 10)))
      << label;
  for (int nodes : {16, 64}) {
    EXPECT_EQ(render_miss_ratio(miss_ratio_distribution(a, nodes)),
              render_miss_ratio(miss_ratio_distribution(o, nodes)))
        << label << " nodes=" << nodes;
  }
  EXPECT_EQ(render_paging(paging_suspects(a)),
            render_paging(paging_suspects(o)))
      << label;

  const ArchiveTableSource archive_ivals(reader, TableKind::kIntervals);
  const MemoryIntervalSource oracle_ivals(fx.intervals);
  ColumnAggregate agg_a, agg_o;
  ASSERT_TRUE(aggregate_column(archive_ivals, "user.cycles", &agg_a));
  ASSERT_TRUE(aggregate_column(oracle_ivals, "user.cycles", &agg_o));
  EXPECT_EQ(render_aggregate(agg_a), render_aggregate(agg_o)) << label;
}

TEST(ArchiveQuery, CleanCampaignMatchesOracleByteForByte) {
  expect_queries_match(clean(), "clean");
}

TEST(ArchiveQuery, FaultedCampaignMatchesOracleByteForByte) {
  // The faulted campaign exercises incomplete jobs, repriming and
  // sampling gaps — the query kernels must filter them identically on
  // both paths.
  expect_queries_match(faulted(), "faulted");
}

pbs::JobRecord sized_job(int i, int nodes) {
  pbs::JobRecord rec;
  rec.spec.job_id = 1000 + i;
  rec.spec.user_id = i % 4;
  rec.spec.nodes_requested = nodes;
  rec.spec.submit_time_s = 1000.0 * i;
  rec.start_time_s = 1000.0 * i + 10.0;
  rec.end_time_s = 1000.0 * i + 10.0 + 700.0 + i;
  rec.report.job_id = rec.spec.job_id;
  rec.report.nodes = nodes;
  rec.report.elapsed_s = rec.end_time_s - rec.start_time_s;
  rec.report.complete = true;
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.report.delta.user[c] = static_cast<std::uint64_t>(i + 1) * 911 + c;
    rec.report.delta.system[c] = static_cast<std::uint64_t>(i + 1) * 7 + c;
  }
  return rec;
}

TEST(ArchiveQuery, PushdownPrunesChunksWithoutChangingResults) {
  // Node-segregated job stream: chunk 0 holds only 1-node jobs, chunk 1
  // only 64-node jobs.  miss_ratio_distribution pushes `nodes == N` onto
  // the chunk min/max, so exactly one chunk is provably skippable per
  // query — and pruning must not change a single output byte.
  std::vector<pbs::JobRecord> recs;
  for (int i = 0; i < 8; ++i) recs.push_back(sized_job(i, 1));
  for (int i = 8; i < 16; ++i) recs.push_back(sized_job(i, 64));
  const std::string image = archive_from_records(
      {}, recs, /*rows_per_chunk=*/8);
  const ArchiveReader reader = ArchiveReader::from_bytes(image);
  ASSERT_EQ(reader.chunks(TableKind::kJobs).size(), 2u);
  const ArchiveTableSource jobs(reader, TableKind::kJobs);
  const std::vector<const TableSource*> sources{&jobs};
  const MemoryJobSource oracle(recs);
  const std::vector<const TableSource*> oracle_sources{&oracle};

  for (int nodes : {1, 64}) {
    const MissRatioResult from_archive =
        miss_ratio_distribution(sources, nodes);
    const MissRatioResult from_oracle =
        miss_ratio_distribution(oracle_sources, nodes);
    EXPECT_EQ(render_miss_ratio(from_archive),
              render_miss_ratio(from_oracle))
        << "nodes=" << nodes;
    EXPECT_EQ(from_archive.scan.chunks_pruned, 1) << "nodes=" << nodes;
    EXPECT_EQ(from_archive.scan.chunks_scanned, 1) << "nodes=" << nodes;
    EXPECT_EQ(from_archive.scan.rows_pruned, 8) << "nodes=" << nodes;
  }
  // A node count no chunk holds: everything prunes, nothing decodes.
  const MissRatioResult none = miss_ratio_distribution(sources, 16);
  EXPECT_EQ(none.scan.chunks_pruned, 2);
  EXPECT_EQ(none.scan.chunks_scanned, 0);
  EXPECT_EQ(none.jobs, 0);
}

TEST(ArchiveQuery, MultiSourceAggregationConcatenates) {
  // top_users over [clean, faulted] must equal the oracle over the
  // concatenated job streams — the multi-archive merge contract.
  const ArchiveReader r1 = ArchiveReader::from_bytes(clean().image);
  const ArchiveReader r2 = ArchiveReader::from_bytes(faulted().image);
  const ArchiveTableSource j1(r1, TableKind::kJobs);
  const ArchiveTableSource j2(r2, TableKind::kJobs);
  const std::vector<const TableSource*> both{&j1, &j2};

  pbs::JobDatabase merged;
  for (const pbs::JobRecord& rec : clean().jobs.all()) merged.add(rec);
  for (const pbs::JobRecord& rec : faulted().jobs.all()) merged.add(rec);
  const MemoryJobSource oracle(merged.all());
  const std::vector<const TableSource*> one{&oracle};

  EXPECT_EQ(render_top_users(top_users(both, 10)),
            render_top_users(top_users(one, 10)));
  EXPECT_EQ(render_paging(paging_suspects(both)),
            render_paging(paging_suspects(one)));
}

TEST(ArchiveQuery, RottedChunkIsSkippedAndReportedInRecoveringScan) {
  // Flip a byte inside the file body (past the header, before the
  // footer): the recovering query path must keep going, count the rot,
  // and the strict path must throw.
  const Fixture& fx = clean();
  const ArchiveReader pristine = ArchiveReader::from_bytes(fx.image);
  // Rot a column top_users actually decodes (start time): lazy payload
  // verification only checks the bytes a scan reads.
  const std::uint64_t payload_at = pristine.chunks(TableKind::kJobs)[0]
                                       .cols[jcol::kStart]
                                       .payload_offset;
  std::string bytes = fx.image;
  bytes[payload_at] = static_cast<char>(bytes[payload_at] ^ 0x01);

  ArchiveReport report;
  const ArchiveReader rotted = ArchiveReader::from_bytes(bytes, &report);
  EXPECT_TRUE(report.committed);  // footer survived; the rot is in-body
  const ArchiveTableSource jobs(rotted, TableKind::kJobs, &report);
  const std::vector<const TableSource*> sources{&jobs};
  const TopUsersResult r = top_users(sources, 10);
  EXPECT_GT(r.scan.chunks_skipped, 0);
  EXPECT_GT(report.chunks_skipped, 0);
  EXPECT_FALSE(format_archive_report(report).empty());

  // Strict scan over the same bytes: first defect throws.
  const ArchiveReader strict = ArchiveReader::from_bytes(bytes);
  const ArchiveTableSource strict_jobs(strict, TableKind::kJobs);
  const std::vector<const TableSource*> strict_sources{&strict_jobs};
  EXPECT_THROW(top_users(strict_sources, 10), ArchiveError);
}

TEST(ArchiveQuery, DriverArchiveBytesAreThreadInvariant) {
  // The end-to-end determinism claim: the same campaign run at different
  // thread counts with the archive writer enabled produces the same file
  // bytes.  (The full paper-scale sweep lives in bench_parallel_speedup;
  // this is the tier-1 guard.)
  std::string bytes_by_threads[2];
  const std::string path = testing::TempDir() + "p2sim_query_drv.p2a";
  for (int i = 0; i < 2; ++i) {
    std::remove(path.c_str());
    core::Sp2Config cfg = core::Sp2Config::small(10, 16);
    cfg.threads() = i == 0 ? 1 : 4;
    cfg.archive() = path;
    core::Sp2Simulation sim(cfg);
    sim.campaign();
    bytes_by_threads[i] = slurp(path);
  }
  std::remove(path.c_str());
  ASSERT_FALSE(bytes_by_threads[0].empty());
  EXPECT_EQ(bytes_by_threads[0], bytes_by_threads[1]);
}

TEST(ArchiveQuery, AggregateColumnRejectsUnknownColumn) {
  const ArchiveReader reader = ArchiveReader::from_bytes(clean().image);
  const ArchiveTableSource src(reader, TableKind::kIntervals);
  ColumnAggregate agg;
  EXPECT_FALSE(aggregate_column(src, "no_such_column", &agg));
}

}  // namespace
}  // namespace p2sim::archive
