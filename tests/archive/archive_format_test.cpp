// Columnar archive format: writer/reader round trips, per-chunk layout,
// encoding selection, statistics, and the committed footer.
#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/archive/format.hpp"
#include "src/archive/reader.hpp"
#include "src/archive/writer.hpp"

namespace p2sim::archive {
namespace {

rs2hpm::IntervalRecord make_interval(int i) {
  rs2hpm::IntervalRecord rec;
  rec.interval = i;
  rec.nodes_sampled = 16;
  rec.nodes_expected = 16;
  rec.nodes_reprimed = i % 3;
  rec.busy_nodes = i % 17;
  rec.quad_surplus = 1000 + static_cast<std::uint64_t>(i);
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.delta.user[c] = static_cast<std::uint64_t>(i) * 100 + c;
    rec.delta.system[c] = static_cast<std::uint64_t>(i) * 7 + c;
  }
  return rec;
}

pbs::JobRecord make_job(int i) {
  pbs::JobRecord rec;
  rec.spec.job_id = 100 + i;
  rec.spec.user_id = 7 + i % 5;
  rec.spec.nodes_requested = 1 << (i % 5);
  rec.spec.submit_time_s = 900.0 * i;
  rec.start_time_s = 900.0 * i + 60.0;
  rec.end_time_s = 900.0 * i + 60.0 + 1234.5 * (1 + i % 3);
  rec.report.job_id = rec.spec.job_id;
  rec.report.nodes = rec.spec.nodes_requested;
  rec.report.elapsed_s = rec.end_time_s - rec.start_time_s;
  rec.report.complete = i % 4 != 3;
  rec.report.quad_surplus = static_cast<std::uint64_t>(i) * 11;
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.report.delta.user[c] = static_cast<std::uint64_t>(i + 1) * 1000 + c;
    rec.report.delta.system[c] = static_cast<std::uint64_t>(i + 1) * 13 + c;
  }
  return rec;
}

std::string build(int intervals, int jobs, std::size_t rows_per_chunk) {
  ArchiveWriter w(rows_per_chunk);
  for (int i = 0; i < intervals; ++i) w.append_interval(make_interval(i));
  for (int i = 0; i < jobs; ++i) w.append_job(make_job(i));
  return w.finish();
}

TEST(ArchiveFormat, RoundTripsEveryColumnOfBothTables) {
  const std::string image = build(10, 6, /*rows_per_chunk=*/4);
  const ArchiveReader r = ArchiveReader::from_bytes(image);
  EXPECT_EQ(r.rows(TableKind::kIntervals), 10u);
  EXPECT_EQ(r.rows(TableKind::kJobs), 6u);
  // 10 rows at 4/chunk = 3 chunks; 6 rows = 2 chunks.
  EXPECT_EQ(r.chunks(TableKind::kIntervals).size(), 3u);
  EXPECT_EQ(r.chunks(TableKind::kJobs).size(), 2u);

  // Every decoded value must equal the writer's own row extraction.
  std::vector<std::uint64_t> expected(column_count(TableKind::kIntervals));
  std::vector<std::uint64_t> col;
  int row = 0;
  for (const ChunkView& chunk : r.chunks(TableKind::kIntervals)) {
    for (std::uint32_t c = 0; c < column_count(TableKind::kIntervals); ++c) {
      r.decode_column(chunk, c, &col);
      ASSERT_EQ(col.size(), chunk.rows);
      for (std::uint32_t i = 0; i < chunk.rows; ++i) {
        interval_row(make_interval(row + static_cast<int>(i)),
                     expected.data());
        EXPECT_EQ(col[i], expected[c]) << "col=" << c << " row=" << row + i;
      }
    }
    row += static_cast<int>(chunk.rows);
  }
}

TEST(ArchiveFormat, ChunkStatsBoundEveryColumn) {
  const std::string image = build(9, 0, /*rows_per_chunk=*/3);
  const ArchiveReader r = ArchiveReader::from_bytes(image);
  std::vector<std::uint64_t> col;
  for (const ChunkView& chunk : r.chunks(TableKind::kIntervals)) {
    ASSERT_EQ(chunk.stats.size(), column_count(TableKind::kIntervals));
    for (std::uint32_t c = 0; c < chunk.stats.size(); ++c) {
      const ColumnKind kind = columns(TableKind::kIntervals)[c].kind;
      r.decode_column(chunk, c, &col);
      for (std::uint64_t v : col) {
        EXPECT_FALSE(raw_less(v, chunk.stats[c].min_raw, kind));
        EXPECT_FALSE(raw_less(chunk.stats[c].max_raw, v, kind));
      }
    }
  }
}

TEST(ArchiveFormat, ConstantColumnsEncodeToConst) {
  // nodes_sampled and nodes_expected are 16 in every row: their payloads
  // must be tiny (one varint), which is what buys the size gate.
  const std::string image = build(100, 0, kDefaultRowsPerChunk);
  const ArchiveReader r = ArchiveReader::from_bytes(image);
  const ChunkView& chunk = r.chunks(TableKind::kIntervals)[0];
  EXPECT_EQ(chunk.cols[icol::kSampled].encoding, Encoding::kConst);
  EXPECT_EQ(chunk.cols[icol::kExpected].encoding, Encoding::kConst);
  // The strictly-increasing interval ordinal delta-compresses.
  EXPECT_EQ(chunk.cols[icol::kInterval].encoding, Encoding::kDeltaVarint);
}

TEST(ArchiveFormat, EmptyArchiveRoundTrips) {
  ArchiveWriter w;
  const std::string image = w.finish();
  const ArchiveReader r = ArchiveReader::from_bytes(image);
  EXPECT_EQ(r.rows(TableKind::kIntervals), 0u);
  EXPECT_EQ(r.rows(TableKind::kJobs), 0u);
  EXPECT_TRUE(r.chunks(TableKind::kIntervals).empty());
  EXPECT_TRUE(r.chunks(TableKind::kJobs).empty());
}

TEST(ArchiveFormat, FinalizeWritesDurablyAndOpenReads) {
  const std::string path = testing::TempDir() + "p2sim_archive_rt.p2a";
  std::remove(path.c_str());
  ArchiveWriter w(4);
  for (int i = 0; i < 5; ++i) w.append_interval(make_interval(i));
  std::string error;
  ASSERT_TRUE(w.finalize(path, &error)) << error;
  const ArchiveReader r = ArchiveReader::open(path);
  EXPECT_EQ(r.rows(TableKind::kIntervals), 5u);
  std::remove(path.c_str());
}

TEST(ArchiveFormat, WriterRowsTracksAppends) {
  ArchiveWriter w(4);
  EXPECT_EQ(w.rows(TableKind::kIntervals), 0u);
  for (int i = 0; i < 7; ++i) w.append_interval(make_interval(i));
  w.append_job(make_job(0));
  EXPECT_EQ(w.rows(TableKind::kIntervals), 7u);
  EXPECT_EQ(w.rows(TableKind::kJobs), 1u);
}

TEST(ArchiveFormat, ColumnByNameResolvesSchema) {
  std::uint32_t idx = 0;
  ASSERT_TRUE(column_by_name(TableKind::kIntervals, "interval", &idx));
  EXPECT_EQ(idx, icol::kInterval);
  ASSERT_TRUE(column_by_name(TableKind::kJobs, "user_id", &idx));
  EXPECT_EQ(idx, jcol::kUserId);
  EXPECT_FALSE(column_by_name(TableKind::kJobs, "no_such_column", &idx));
  // Every schema name must resolve back to its own index.
  for (TableKind kind : {TableKind::kIntervals, TableKind::kJobs}) {
    const auto& cols = columns(kind);
    for (std::uint32_t c = 0; c < cols.size(); ++c) {
      ASSERT_TRUE(column_by_name(kind, cols[c].name, &idx)) << cols[c].name;
      EXPECT_EQ(idx, c) << cols[c].name;
    }
  }
}

TEST(ArchiveFormat, IdenticalInputsProduceIdenticalBytes) {
  // The thread-count/resume bit-identity guarantee reduces to this:
  // archive bytes are a pure function of the appended record sequence.
  EXPECT_EQ(build(10, 6, 4), build(10, 6, 4));
  EXPECT_NE(build(10, 6, 4), build(10, 6, 5));  // chunking is part of it
}

TEST(ArchiveFormat, VarintRoundTripsExtremes) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{1} << 35,
        ~std::uint64_t{0}, ~std::uint64_t{0} - 1}) {
    std::string buf;
    put_varint(&buf, v);
    const char* p = buf.data();
    std::uint64_t out = 0;
    ASSERT_TRUE(get_varint(&p, buf.data() + buf.size(), &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(p, buf.data() + buf.size());
    EXPECT_EQ(unzigzag64(zigzag64(v)), v);
  }
}

}  // namespace
}  // namespace p2sim::archive
