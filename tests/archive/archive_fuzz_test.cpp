// Torn-write and bit-rot fuzz for the columnar archive.
//
// Mirrors tests/workload/torn_write_fuzz_test.cpp for the binary format:
// every prefix truncation and single-byte flip of a real archive image
// must be either recovered with a coherent report or rejected with a
// diagnostic — a recovering open never crashes, never silently invents
// rows, and strict mode never accepts a torn file.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/archive/reader.hpp"
#include "src/archive/writer.hpp"

namespace p2sim::archive {
namespace {

rs2hpm::IntervalRecord fuzz_interval(int i) {
  rs2hpm::IntervalRecord rec;
  rec.interval = i;
  rec.nodes_sampled = 16;
  rec.nodes_expected = 16;
  rec.nodes_reprimed = i % 2;
  rec.busy_nodes = 3 + i % 5;
  rec.quad_surplus = static_cast<std::uint64_t>(i) * 31;
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.delta.user[c] = static_cast<std::uint64_t>(i) * 977 + c * 13;
    rec.delta.system[c] = static_cast<std::uint64_t>(i) * 41 + c;
  }
  return rec;
}

pbs::JobRecord fuzz_job(int i) {
  pbs::JobRecord rec;
  rec.spec.job_id = 500 + i;
  rec.spec.user_id = i % 3;
  rec.spec.nodes_requested = 4;
  rec.spec.submit_time_s = 100.0 * i;
  rec.start_time_s = 100.0 * i + 5.0;
  rec.end_time_s = 100.0 * i + 905.0;
  rec.report.job_id = rec.spec.job_id;
  rec.report.nodes = 4;
  rec.report.elapsed_s = 900.0;
  rec.report.complete = true;
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.report.delta.user[c] = static_cast<std::uint64_t>(i + 1) * 57 + c;
    rec.report.delta.system[c] = static_cast<std::uint64_t>(i + 1) * 3 + c;
  }
  return rec;
}

/// A small multi-chunk archive: 3 interval chunks + 2 job chunks.
std::string fuzz_image() {
  ArchiveWriter w(/*rows_per_chunk=*/4);
  for (int i = 0; i < 11; ++i) w.append_interval(fuzz_interval(i));
  for (int i = 0; i < 6; ++i) w.append_job(fuzz_job(i));
  return w.finish();
}

/// Decodes every column of every loadable chunk; returns total rows
/// decoded.  Throws only if the reader handed back a chunk it should
/// have skipped (payload rot must be caught here at the latest).
std::uint64_t decode_all(const ArchiveReader& r, ArchiveReport* report) {
  std::uint64_t rows = 0;
  std::vector<std::uint64_t> col;
  for (TableKind kind : {TableKind::kIntervals, TableKind::kJobs}) {
    for (const ChunkView& chunk : r.chunks(kind)) {
      bool ok = true;
      for (std::uint32_t c = 0; ok && c < chunk.cols.size(); ++c) {
        try {
          r.decode_column(chunk, c, &col);
        } catch (const ArchiveError&) {
          // Lazy payload verification: framing accepted the chunk but a
          // column's words were flipped.  A real scan reports-and-skips
          // via the query layer; here we just note it is diagnosed.
          ok = false;
        }
      }
      if (ok) rows += chunk.rows;
      (void)report;
    }
  }
  return rows;
}

/// The coherence contract for one mutated image: a recovering open
/// either loads it committed-and-whole, or says what it dropped.
void expect_diagnosed(const std::string& bytes, const std::string& what) {
  ArchiveReport report;
  try {
    const ArchiveReader r = ArchiveReader::from_bytes(bytes, &report);
    const std::uint64_t rows = decode_all(r, &report);
    if (report.committed) {
      // A valid footer survived the mutation; any rot must be counted.
      EXPECT_FALSE(report.truncated) << what;
    } else {
      // No footer: the reader must admit truncation.
      EXPECT_TRUE(report.truncated) << what;
    }
    // Never more rows than the pristine image holds.
    EXPECT_LE(rows, 17u) << what;
    EXPECT_LE(report.chunks_loaded, report.chunks_total) << what;
  } catch (const ArchiveError& e) {
    // Hard rejection is acceptable — but it must carry a diagnostic.
    EXPECT_FALSE(std::string(e.what()).empty()) << what;
  }
}

TEST(ArchiveFuzz, EveryPrefixTruncationIsDiagnosed) {
  const std::string image = fuzz_image();
  for (std::size_t len = 0; len < image.size(); ++len) {
    expect_diagnosed(image.substr(0, len),
                     "truncated to " + std::to_string(len) + " bytes");
  }
}

TEST(ArchiveFuzz, EveryByteFlipIsDiagnosedOrHarmless) {
  const std::string image = fuzz_image();
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    for (unsigned char mask : {0x01, 0x80}) {
      std::string bytes = image;
      bytes[pos] = static_cast<char>(bytes[pos] ^ mask);
      expect_diagnosed(bytes, "flip at byte " + std::to_string(pos) +
                                  " mask " + std::to_string(mask));
    }
  }
}

TEST(ArchiveFuzz, StrictModeNeverAcceptsTruncation) {
  const std::string image = fuzz_image();
  // Every proper prefix must throw in strict mode; only the full image
  // may load.
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_THROW(ArchiveReader::from_bytes(image.substr(0, len)),
                 ArchiveError)
        << "strict accepted a " << len << "-byte prefix";
  }
  EXPECT_NO_THROW(ArchiveReader::from_bytes(image));
}

TEST(ArchiveFuzz, StrictModeRejectsFooterRotButDecodeCatchesPayloadRot) {
  const std::string image = fuzz_image();
  int framing_rejections = 0;
  int payload_rejections = 0;
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    std::string bytes = image;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    try {
      const ArchiveReader r = ArchiveReader::from_bytes(bytes);
      std::vector<std::uint64_t> col;
      bool decoded_clean = true;
      for (TableKind kind : {TableKind::kIntervals, TableKind::kJobs}) {
        for (const ChunkView& chunk : r.chunks(kind)) {
          for (std::uint32_t c = 0; c < chunk.cols.size(); ++c) {
            try {
              r.decode_column(chunk, c, &col);
            } catch (const ArchiveError&) {
              decoded_clean = false;
            }
          }
        }
      }
      if (!decoded_clean) ++payload_rejections;
    } catch (const ArchiveError&) {
      ++framing_rejections;
    }
  }
  // A single-bit flip lands either in framing/footer bytes (caught at
  // open) or in a column payload (caught at decode).  Both arms must
  // fire across the sweep — otherwise one checksum layer is dead code.
  EXPECT_GT(framing_rejections, 0);
  EXPECT_GT(payload_rejections, 0);
}

TEST(ArchiveFuzz, TruncationKeepsIntactPrefixChunks) {
  const std::string image = fuzz_image();
  // Chop exactly at the end of the first chunk (its last column's
  // payload end): the footer and every later chunk are gone, but chunk 0
  // is intact and recovery must keep precisely its rows.
  const ArchiveReader pristine = ArchiveReader::from_bytes(image);
  const ChunkView& first = pristine.chunks(TableKind::kIntervals)[0];
  const ChunkView::Column& last_col = first.cols.back();
  const std::size_t cut = last_col.payload_offset + last_col.bytes;
  ArchiveReport report;
  const ArchiveReader r =
      ArchiveReader::from_bytes(image.substr(0, cut), &report);
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.committed);
  EXPECT_EQ(r.rows(TableKind::kIntervals), first.rows);
  EXPECT_EQ(r.rows(TableKind::kJobs), 0u);
}

TEST(ArchiveFuzz, GarbageIsRejectedNotCrashed) {
  for (const char* garbage :
       {"", "x", "not an archive at all", "P2SIMAR1", "P2SIMAR1CHNK",
        "CHNKCHNKCHNKCHNK"}) {
    ArchiveReport report;
    try {
      const ArchiveReader r = ArchiveReader::from_bytes(garbage, &report);
      EXPECT_EQ(r.rows(TableKind::kIntervals), 0u) << garbage;
      EXPECT_TRUE(report.truncated || report.chunks_total == 0) << garbage;
    } catch (const ArchiveError& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << garbage;
    }
  }
}

}  // namespace
}  // namespace p2sim::archive
