#include "src/analysis/figures.hpp"

#include <gtest/gtest.h>

namespace p2sim::analysis {
namespace {

std::vector<DayStats> trending_days(double slope) {
  std::vector<DayStats> days(20);
  for (int i = 0; i < 20; ++i) {
    DayStats& d = days[static_cast<std::size_t>(i)];
    d.day = i;
    d.gflops = 1.0 + slope * i;
    d.utilization = 0.6;
    d.per_node.mflops_all = d.gflops * 1000.0 / 144.0;
    d.per_node.system_user_fxu_ratio = 0.1;
  }
  return days;
}

pbs::JobRecord job(std::int64_t id, int nodes, double start, double wall,
                   double adds) {
  pbs::JobRecord r;
  r.spec.job_id = id;
  r.spec.nodes_requested = nodes;
  r.start_time_s = start;
  r.end_time_s = start + wall;
  r.report.nodes = nodes;
  r.report.elapsed_s = wall;
  r.report.delta.user[hpm::index_of(hpm::HpmCounter::kFpAdd0)] =
      static_cast<std::uint64_t>(adds);
  return r;
}

TEST(Fig1, SeriesAndSummaries) {
  const Fig1Series f = make_fig1(trending_days(0.0), 5);
  ASSERT_EQ(f.day.size(), 20u);
  ASSERT_EQ(f.gflops_moving_avg.size(), 20u);
  EXPECT_NEAR(f.mean_gflops, 1.0, 1e-12);
  EXPECT_NEAR(f.mean_utilization, 0.6, 1e-12);
  EXPECT_NEAR(f.trend_slope, 0.0, 1e-12);
}

TEST(Fig1, DetectsTrends) {
  EXPECT_NEAR(make_fig1(trending_days(0.05)).trend_slope, 0.05, 1e-9);
  EXPECT_NEAR(make_fig1(trending_days(-0.02)).trend_slope, -0.02, 1e-9);
}

TEST(Fig1, MovingAverageSmooths) {
  auto days = trending_days(0.0);
  days[10].gflops = 10.0;  // spike
  const Fig1Series f = make_fig1(days, 5);
  EXPECT_LT(f.gflops_moving_avg[10], 5.0);
  EXPECT_NEAR(f.max_daily_gflops, 10.0, 1e-12);
}

TEST(Fig2, BinsWalltimeByNodes) {
  pbs::JobDatabase db;
  db.add(job(1, 16, 0, 4000, 1e9));
  db.add(job(2, 16, 0, 5000, 1e9));
  db.add(job(3, 32, 0, 3000, 1e9));
  db.add(job(4, 8, 0, 100, 1e9));  // filtered: < 600 s
  const Fig2Series f = make_fig2(db);
  ASSERT_EQ(f.bins.size(), 2u);
  EXPECT_EQ(f.bins[0].nodes, 16);
  EXPECT_DOUBLE_EQ(f.bins[0].total_walltime_s, 9000.0);
  EXPECT_EQ(f.bins[0].jobs, 2);
  EXPECT_EQ(f.most_popular_nodes, 16);
  EXPECT_DOUBLE_EQ(f.walltime_beyond_64_fraction, 0.0);
}

TEST(Fig2, WideWalltimeFraction) {
  pbs::JobDatabase db;
  db.add(job(1, 16, 0, 3000, 1e9));
  db.add(job(2, 128, 0, 1000, 1e9));
  const Fig2Series f = make_fig2(db);
  EXPECT_DOUBLE_EQ(f.walltime_beyond_64_fraction, 0.25);
}

TEST(Fig3, PerBinStatsAndCollapse) {
  pbs::JobDatabase db;
  // 16-node jobs at 20 Mflops/node; 128-node jobs at 5 Mflops/node
  // (adds = Mflops * 1e6 * walltime * nodes).
  db.add(job(1, 16, 0, 1000, 16 * 20e6 * 1000.0));
  db.add(job(2, 16, 0, 1000, 16 * 20e6 * 1000.0));
  db.add(job(3, 128, 0, 1000, 128 * 5e6 * 1000.0));
  const Fig3Series f = make_fig3(db);
  ASSERT_EQ(f.bins.size(), 2u);
  EXPECT_NEAR(f.bins[0].mean_mflops_per_node, 20.0, 0.01);
  EXPECT_NEAR(f.mean_upto_64, 20.0, 0.01);
  EXPECT_NEAR(f.mean_beyond_64, 5.0, 0.01);
}

TEST(Fig4, HistoryInStartOrderWithStats) {
  pbs::JobDatabase db;
  db.add(job(1, 16, 9000, 1000, 300e6 * 1000.0));  // started later
  db.add(job(2, 16, 1000, 1000, 100e6 * 1000.0));
  db.add(job(3, 32, 2000, 1000, 100e6 * 1000.0));  // different node count
  const Fig4Series f = make_fig4(db, 16, 2);
  ASSERT_EQ(f.job_mflops.size(), 2u);
  EXPECT_NEAR(f.job_mflops[0], 100.0, 0.01);  // job 2 first (earlier start)
  EXPECT_NEAR(f.job_mflops[1], 300.0, 0.01);
  EXPECT_NEAR(f.mean, 200.0, 0.01);
  EXPECT_GT(f.stddev, 0.0);
}

TEST(Fig4, EmptyNodeClassIsSafe) {
  pbs::JobDatabase db;
  const Fig4Series f = make_fig4(db, 16);
  EXPECT_TRUE(f.job_mflops.empty());
  EXPECT_EQ(f.mean, 0.0);
}

TEST(Fig5, NegativeCorrelationDetected) {
  std::vector<DayStats> days(10);
  for (int i = 0; i < 10; ++i) {
    DayStats& d = days[static_cast<std::size_t>(i)];
    d.utilization = 0.6;
    d.per_node.system_user_fxu_ratio = 0.1 * i;
    d.per_node.mflops_all = 20.0 - 1.5 * i;  // higher ratio, lower perf
  }
  const Fig5Series f = make_fig5(days);
  ASSERT_EQ(f.mflops_per_node.size(), 10u);
  EXPECT_NEAR(f.correlation, -1.0, 1e-9);
}

TEST(Fig5, IdleDaysExcluded) {
  std::vector<DayStats> days(4);
  for (int i = 0; i < 4; ++i) {
    days[static_cast<std::size_t>(i)].utilization = (i < 2) ? 0.05 : 0.6;
    days[static_cast<std::size_t>(i)].per_node.mflops_all = 10.0;
  }
  const Fig5Series f = make_fig5(days, 0.15);
  EXPECT_EQ(f.mflops_per_node.size(), 2u);
}

}  // namespace
}  // namespace p2sim::analysis
