#include "src/analysis/users.hpp"

#include <gtest/gtest.h>

namespace p2sim::analysis {
namespace {

pbs::JobRecord job(std::int64_t id, std::int32_t user, int nodes,
                   double walltime, double mflops_per_node) {
  pbs::JobRecord r;
  r.spec.job_id = id;
  r.spec.user_id = user;
  r.spec.nodes_requested = nodes;
  r.start_time_s = 0.0;
  r.end_time_s = walltime;
  r.report.nodes = nodes;
  r.report.elapsed_s = walltime;
  // adds = mflops/node * nodes * walltime * 1e6
  r.report.delta.user[hpm::index_of(hpm::HpmCounter::kFpAdd0)] =
      static_cast<std::uint64_t>(mflops_per_node * nodes * walltime * 1e6);
  return r;
}

TEST(Users, AggregatesPerUser) {
  pbs::JobDatabase db;
  db.add(job(1, 7, 16, 3600.0, 20.0));
  db.add(job(2, 7, 8, 3600.0, 10.0));
  db.add(job(3, 9, 32, 1800.0, 30.0));
  const auto stats = user_stats(db);
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by node-hours: user 7 has 24 node-hours, user 9 has 16.
  EXPECT_EQ(stats[0].user_id, 7);
  EXPECT_EQ(stats[0].jobs, 2);
  EXPECT_NEAR(stats[0].node_hours, 24.0, 1e-9);
  EXPECT_NEAR(stats[0].mflops_per_node, 15.0, 0.01);  // equal-time average
  EXPECT_NEAR(stats[0].best_mflops_per_node, 20.0, 0.01);
  EXPECT_EQ(stats[1].user_id, 9);
  EXPECT_NEAR(stats[1].node_hours, 16.0, 1e-9);
}

TEST(Users, ShortJobsExcluded) {
  pbs::JobDatabase db;
  db.add(job(1, 7, 16, 100.0, 20.0));  // below the 600 s filter
  EXPECT_TRUE(user_stats(db).empty());
}

TEST(Users, TopNShare) {
  pbs::JobDatabase db;
  db.add(job(1, 1, 10, 3600.0, 1.0));  // 10 node-hours
  db.add(job(2, 2, 10, 3600.0, 1.0));
  db.add(job(3, 3, 20, 3600.0, 1.0));  // 20 node-hours
  const auto stats = user_stats(db);
  EXPECT_NEAR(top_n_node_hour_share(stats, 1), 0.5, 1e-9);
  EXPECT_NEAR(top_n_node_hour_share(stats, 3), 1.0, 1e-9);
  EXPECT_NEAR(top_n_node_hour_share(stats, 10), 1.0, 1e-9);
  EXPECT_EQ(top_n_node_hour_share({}, 3), 0.0);
}

}  // namespace
}  // namespace p2sim::analysis
