#include "src/analysis/trends.hpp"

#include <gtest/gtest.h>

namespace p2sim::analysis {
namespace {

std::vector<DayStats> correlated_days(int n) {
  // fma fraction rises with performance; TLB ratio falls; everything
  // else constant.
  std::vector<DayStats> days(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    DayStats& d = days[static_cast<std::size_t>(i)];
    d.day = i;
    d.utilization = 0.6;
    d.per_node.mflops_all = 10.0 + i;
    d.per_node.fma_flop_fraction = 0.3 + 0.01 * i;
    d.per_node.tlb_miss_ratio = 0.01 - 0.0002 * i;
    d.per_node.cache_miss_ratio = 0.01;
  }
  return days;
}

TEST(Trends, DetectsEngineeredCorrelations) {
  const TrendReport t = analyze_trends(correlated_days(20));
  EXPECT_EQ(t.days_analyzed, 20);
  const auto* fma = t.find("fma_flop_fraction");
  ASSERT_NE(fma, nullptr);
  EXPECT_NEAR(fma->vs_mflops, 1.0, 1e-9);
  const auto* tlb = t.find("tlb_miss_ratio");
  ASSERT_NE(tlb, nullptr);
  EXPECT_NEAR(tlb->vs_mflops, -1.0, 1e-9);
  const auto* cache = t.find("cache_miss_ratio");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->vs_mflops, 0.0);  // constant series
}

TEST(Trends, SlopesTrackDrift) {
  const TrendReport t = analyze_trends(correlated_days(20));
  EXPECT_NEAR(t.find("fma_flop_fraction")->slope_per_day, 0.01, 1e-9);
  EXPECT_NEAR(t.find("mflops_per_node")->slope_per_day, 1.0, 1e-9);
}

TEST(Trends, IdleDaysExcluded) {
  auto days = correlated_days(20);
  for (int i = 0; i < 5; ++i) days[static_cast<std::size_t>(i)].utilization = 0.01;
  const TrendReport t = analyze_trends(days, 0.15);
  EXPECT_EQ(t.days_analyzed, 15);
}

TEST(Trends, UnknownMetricIsNull) {
  const TrendReport t = analyze_trends(correlated_days(5));
  EXPECT_EQ(t.find("nonexistent"), nullptr);
}

TEST(Trends, FormatListsAllMetrics) {
  const std::string out = format_trends(analyze_trends(correlated_days(5)));
  EXPECT_NE(out.find("fma_flop_fraction"), std::string::npos);
  EXPECT_NE(out.find("tlb_miss_ratio"), std::string::npos);
  EXPECT_NE(out.find("corr(Mflops)"), std::string::npos);
}

TEST(Trends, EmptyInputSafe) {
  const TrendReport t = analyze_trends({});
  EXPECT_EQ(t.days_analyzed, 0);
  EXPECT_FALSE(t.metrics.empty());  // metric rows exist with zero values
}

}  // namespace
}  // namespace p2sim::analysis
