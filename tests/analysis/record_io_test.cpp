#include "src/analysis/record_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/daily.hpp"
#include "src/analysis/figures.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::analysis {
namespace {

rs2hpm::IntervalRecord make_interval(std::int64_t i) {
  rs2hpm::IntervalRecord rec;
  rec.interval = i;
  rec.nodes_sampled = 144;
  rec.busy_nodes = static_cast<int>(i % 145);
  rec.quad_surplus = 1000 + static_cast<std::uint64_t>(i);
  // Distinct per-counter values that still satisfy the Table 1 identities
  // (fp_add >= fp_muladd, dcache_reload >= dcache_store, misses <= FXU
  // traffic): earlier Table 1 slots get the larger residue.
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    rec.delta.user[c] =
        static_cast<std::uint64_t>(i) * 100 + (hpm::kNumCounters - c);
    rec.delta.system[c] =
        static_cast<std::uint64_t>(i) * 7 + (hpm::kNumCounters - c);
  }
  return rec;
}

pbs::JobRecord make_job(std::int64_t id) {
  pbs::JobRecord r;
  r.spec.job_id = id;
  r.spec.nodes_requested = 16;
  r.spec.submit_time_s = 100.0 * static_cast<double>(id);
  r.start_time_s = r.spec.submit_time_s + 50.0;
  r.end_time_s = r.start_time_s + 1234.5;
  r.report.job_id = id;
  r.report.nodes = 16;
  r.report.elapsed_s = 1234.5;
  r.report.quad_surplus = 77;
  for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
    r.report.delta.user[c] =
        static_cast<std::uint64_t>(id) * 11 + (hpm::kNumCounters - c);
  }
  return r;
}

TEST(RecordIo, IntervalRoundTrip) {
  std::vector<rs2hpm::IntervalRecord> in;
  for (std::int64_t i = 0; i < 20; ++i) in.push_back(make_interval(i));
  std::stringstream ss;
  save_intervals(ss, in);
  const auto out = load_intervals(ss);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].interval, in[i].interval);
    EXPECT_EQ(out[i].nodes_sampled, in[i].nodes_sampled);
    EXPECT_EQ(out[i].busy_nodes, in[i].busy_nodes);
    EXPECT_EQ(out[i].quad_surplus, in[i].quad_surplus);
    EXPECT_EQ(out[i].delta, in[i].delta);
  }
}

TEST(RecordIo, EmptyIntervalListRoundTrips) {
  std::stringstream ss;
  save_intervals(ss, {});
  EXPECT_TRUE(load_intervals(ss).empty());
}

TEST(RecordIo, JobRoundTrip) {
  pbs::JobDatabase db;
  for (std::int64_t i = 1; i <= 10; ++i) db.add(make_job(i));
  std::stringstream ss;
  save_jobs(ss, db);
  const pbs::JobDatabase out = load_jobs(ss);
  ASSERT_EQ(out.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(out.all()[i].spec.job_id, db.all()[i].spec.job_id);
    EXPECT_DOUBLE_EQ(out.all()[i].start_time_s, db.all()[i].start_time_s);
    EXPECT_DOUBLE_EQ(out.all()[i].walltime_s(), db.all()[i].walltime_s());
    EXPECT_EQ(out.all()[i].report.delta, db.all()[i].report.delta);
    EXPECT_EQ(out.all()[i].report.quad_surplus,
              db.all()[i].report.quad_surplus);
  }
}

TEST(RecordIo, DerivedAnalysisSurvivesRoundTrip) {
  pbs::JobDatabase db;
  db.add(make_job(1));
  std::stringstream ss;
  save_jobs(ss, db);
  const pbs::JobDatabase out = load_jobs(ss);
  EXPECT_NEAR(out.all()[0].mflops_per_node(),
              db.all()[0].mflops_per_node(), 1e-12);
}

TEST(RecordIo, RejectsEmptyInput) {
  std::stringstream ss;
  EXPECT_THROW(load_intervals(ss), std::runtime_error);
}

TEST(RecordIo, RejectsWrongHeader) {
  std::stringstream ss("p2sim-jobs v1 22\n");
  EXPECT_THROW(load_intervals(ss), std::runtime_error);
}

TEST(RecordIo, RejectsWrongVersion) {
  std::stringstream ss("p2sim-intervals v9 22\n");
  EXPECT_THROW(load_intervals(ss), std::runtime_error);
}

TEST(RecordIo, RejectsCounterCountMismatch) {
  std::stringstream ss("p2sim-intervals v1 7\n");
  EXPECT_THROW(load_intervals(ss), std::runtime_error);
}

TEST(RecordIo, RejectsTruncatedLine) {
  std::stringstream ss;
  ss << "p2sim-intervals v1 " << hpm::kNumCounters << "\n";
  ss << "I,1,144,10,0,1,2,3\n";  // far too few counter fields
  EXPECT_THROW(load_intervals(ss), std::runtime_error);
}

TEST(RecordIo, RejectsNonNumericField) {
  std::vector<rs2hpm::IntervalRecord> in = {make_interval(0)};
  std::stringstream ss;
  save_intervals(ss, in);
  std::string text = ss.str();
  const auto pos = text.find("I,0,");
  text.replace(pos + 2, 1, "x");
  std::stringstream bad(text);
  EXPECT_THROW(load_intervals(bad), std::runtime_error);
}

TEST(RecordIo, CollectOnceAnalyzeManyOnARealCampaign) {
  // The full pipeline the real deployment used: run the campaign, store
  // the daemon and epilogue files, reload them later, and get the same
  // analysis out.
  workload::DriverConfig cfg;
  cfg.num_nodes = 8;
  cfg.days = 3;
  cfg.jobs_per_day = 6.0;
  cfg.jobgen.node_choices = {1, 2, 4};
  cfg.jobgen.node_weights = {4, 3, 6};
  cfg.sched.drain_threshold_nodes = 4;
  const auto campaign = workload::run_campaign(cfg);

  std::stringstream intervals, jobs;
  save_intervals(intervals, campaign.intervals);
  save_jobs(jobs, campaign.jobs);

  workload::CampaignResult reloaded;
  reloaded.num_nodes = campaign.num_nodes;
  reloaded.days = campaign.days;
  reloaded.intervals = load_intervals(intervals);
  reloaded.jobs = load_jobs(jobs);

  const auto a = daily_stats(campaign);
  const auto b = daily_stats(reloaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].gflops, b[i].gflops);
    EXPECT_DOUBLE_EQ(a[i].per_node.mips, b[i].per_node.mips);
  }
  const auto fa = make_fig2(campaign.jobs);
  const auto fb = make_fig2(reloaded.jobs);
  EXPECT_EQ(fa.most_popular_nodes, fb.most_popular_nodes);
  EXPECT_DOUBLE_EQ(fa.walltime_beyond_64_fraction,
                   fb.walltime_beyond_64_fraction);
}

TEST(RecordIo, RoundTripPreservesCoverageAndCompleteness) {
  rs2hpm::IntervalRecord rec = make_interval(5);
  rec.nodes_sampled = 140;
  rec.nodes_expected = 144;
  rec.nodes_reprimed = 2;
  std::stringstream ss;
  save_intervals(ss, {rec});
  const auto out = load_intervals(ss);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].nodes_sampled, 140);
  EXPECT_EQ(out[0].nodes_expected, 144);
  EXPECT_EQ(out[0].nodes_reprimed, 2);
  EXPECT_DOUBLE_EQ(out[0].coverage(), 140.0 / 144.0);

  pbs::JobRecord job = make_job(1);
  job.report.complete = false;
  pbs::JobDatabase db;
  db.add(job);
  db.add(make_job(2));  // complete
  std::stringstream js;
  save_jobs(js, db);
  const pbs::JobDatabase jout = load_jobs(js);
  ASSERT_EQ(jout.size(), 2u);
  EXPECT_FALSE(jout.all()[0].report.complete);
  EXPECT_TRUE(jout.all()[1].report.complete);
  EXPECT_EQ(jout.incomplete_count(), 1u);
}

TEST(RecordIo, LoadsLegacyV1Intervals) {
  // Files written before the coverage fields existed still load; every
  // sampled fleet is assumed complete and never re-primed.
  std::ostringstream ss;
  ss << "p2sim-intervals v1 " << hpm::kNumCounters << "\n";
  ss << "I,7,144,100,555";
  for (std::size_t c = 0; c < 2 * hpm::kNumCounters; ++c) ss << ',' << c;
  ss << "\n";
  std::istringstream in(ss.str());
  const auto out = load_intervals(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].interval, 7);
  EXPECT_EQ(out[0].nodes_sampled, 144);
  EXPECT_EQ(out[0].nodes_expected, 144);
  EXPECT_EQ(out[0].nodes_reprimed, 0);
  EXPECT_EQ(out[0].busy_nodes, 100);
  EXPECT_EQ(out[0].quad_surplus, 555u);
  EXPECT_EQ(out[0].delta.user[3], 3u);
  EXPECT_EQ(out[0].delta.system[0], hpm::kNumCounters);
  EXPECT_DOUBLE_EQ(out[0].coverage(), 1.0);
}

TEST(RecordIo, LoadsLegacyV1Jobs) {
  std::ostringstream ss;
  ss << "p2sim-jobs v1 " << hpm::kNumCounters << "\n";
  ss << "J,9,16,100,150,1384.5,77";
  for (std::size_t c = 0; c < 2 * hpm::kNumCounters; ++c) ss << ',' << c;
  ss << "\n";
  std::istringstream in(ss.str());
  const pbs::JobDatabase out = load_jobs(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.all()[0].spec.job_id, 9);
  EXPECT_TRUE(out.all()[0].report.complete);  // v1 had no incomplete jobs
  EXPECT_EQ(out.all()[0].report.quad_surplus, 77u);
}

TEST(RecordIo, StrictModeThrowsOnChecksumMismatch) {
  std::stringstream ss;
  save_intervals(ss, {make_interval(0)});
  std::string text = ss.str();
  // Flip one payload digit: the line still parses as numbers but no
  // longer matches its checksum.
  const auto pos = text.find("I,0,144,");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 4] = '9';  // 144 -> 944
  std::stringstream bad(text);
  EXPECT_THROW(load_intervals(bad), std::runtime_error);
}

TEST(RecordIo, RecoveryModeReportsLineNumbersAndKeepsTheRest) {
  std::vector<rs2hpm::IntervalRecord> in;
  for (std::int64_t i = 0; i < 4; ++i) in.push_back(make_interval(i));
  std::stringstream ss;
  save_intervals(ss, in);
  std::string text = ss.str();
  // Corrupt the second record (file line 3: header is line 1).
  const auto pos = text.find("I,1,");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = '8';
  std::stringstream damaged(text);
  ParseReport report;
  const auto out = load_intervals(damaged, &report);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].interval, 0);
  EXPECT_EQ(out[1].interval, 2);
  EXPECT_EQ(report.lines_total, 4);
  EXPECT_EQ(report.lines_loaded, 3);
  EXPECT_EQ(report.lines_skipped, 1);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].line, 3);
  EXPECT_FALSE(report.clean());
  const std::string pretty = format_parse_report(report);
  EXPECT_NE(pretty.find("line 3"), std::string::npos);
  EXPECT_NE(pretty.find("3/4"), std::string::npos);
}

TEST(RecordIo, RecoveryModeCleanOnIntactFile) {
  std::stringstream ss;
  save_intervals(ss, {make_interval(0), make_interval(1)});
  ParseReport report;
  EXPECT_EQ(load_intervals(ss, &report).size(), 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.lines_skipped, 0);
}

TEST(RecordIo, SkipsBlankLines) {
  std::vector<rs2hpm::IntervalRecord> in = {make_interval(3)};
  std::stringstream ss;
  save_intervals(ss, in);
  std::stringstream padded(ss.str() + "\n\n");
  EXPECT_EQ(load_intervals(padded).size(), 1u);
}

// ---- Commit-trailer semantics (crash truncation vs corruption) ----

std::string saved_intervals_text(std::int64_t n) {
  std::vector<rs2hpm::IntervalRecord> in;
  for (std::int64_t i = 0; i < n; ++i) in.push_back(make_interval(i));
  std::ostringstream ss;
  save_intervals(ss, in);
  return ss.str();
}

TEST(RecordIo, TrailerCommitsCleanFiles) {
  std::istringstream in(saved_intervals_text(3));
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 3u);
  EXPECT_TRUE(report.committed);
  EXPECT_FALSE(report.truncated);
  // The trailer is framing, not data: it never enters the line tallies.
  EXPECT_EQ(report.lines_total, 3);
  EXPECT_EQ(report.lines_loaded, 3);
}

TEST(RecordIo, CleanTruncationAtLineBoundaryIsNotCorruption) {
  // The writer died after finishing a record but before the trailer: no
  // line is malformed, yet the load must still flag the missing tail.
  std::string text = saved_intervals_text(4);
  const auto trailer = text.rfind("C,");
  ASSERT_NE(trailer, std::string::npos);
  text.resize(trailer);
  std::istringstream in(text);
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 4u);
  EXPECT_TRUE(report.clean());  // every surviving line is intact...
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.truncated);  // ...but the file is not complete
  const std::string pretty = format_parse_report(report);
  EXPECT_NE(pretty.find("truncated"), std::string::npos);
}

TEST(RecordIo, CrashTruncationMidRecordDropsOnlyTheTail) {
  // Killed mid-write: the last record is half a line and the trailer never
  // made it.  Everything before the tear survives.
  std::string text = saved_intervals_text(4);
  const auto trailer = text.rfind("C,");
  ASSERT_NE(trailer, std::string::npos);
  const auto last_rec = text.rfind("I,", trailer);
  ASSERT_NE(last_rec, std::string::npos);
  text.resize(last_rec + 20);  // tear inside the final record line
  std::istringstream in(text);
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 3u);
  EXPECT_EQ(report.lines_skipped, 1);
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.truncated);
}

TEST(RecordIo, StrictModeRefusesUncommittedV2File) {
  std::string text = saved_intervals_text(2);
  const auto trailer = text.rfind("C,");
  ASSERT_NE(trailer, std::string::npos);
  text.resize(trailer);
  std::istringstream in(text);
  EXPECT_THROW(load_intervals(in), std::runtime_error);
}

TEST(RecordIo, TrailerCountMismatchStaysUncommitted) {
  // A trailer claiming more records than the file holds means whole lines
  // vanished; the trailer itself becomes the reported bad line.
  std::string text = saved_intervals_text(3);
  const auto second = text.find("I,1,");
  const auto third = text.find("I,2,");
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  text.erase(second, third - second);  // drop a whole record line
  std::istringstream in(text);
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 2u);
  EXPECT_EQ(report.lines_skipped, 1);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].what.find("count mismatch"), std::string::npos);
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.truncated);
}

TEST(RecordIo, RecordAfterTrailerIsRejected) {
  std::string text = saved_intervals_text(2);
  const auto first = text.find("I,0,");
  const auto second = text.find("I,1,");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  text += text.substr(first, second - first);  // replay a committed line
  std::istringstream in(text);
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 2u);
  EXPECT_EQ(report.lines_skipped, 1);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].what.find("after commit trailer"),
            std::string::npos);
  EXPECT_TRUE(report.committed);  // the trailer itself was valid
}

TEST(RecordIo, JobTrailerRoundTripsAndDetectsTruncation) {
  pbs::JobDatabase db;
  db.add(make_job(1));
  db.add(make_job(2));
  std::ostringstream ss;
  save_jobs(ss, db);
  std::string text = ss.str();

  std::istringstream whole(text);
  ParseReport clean_report;
  EXPECT_EQ(load_jobs(whole, &clean_report).size(), 2u);
  EXPECT_TRUE(clean_report.committed);

  const auto trailer = text.rfind("C,");
  ASSERT_NE(trailer, std::string::npos);
  text.resize(trailer);
  std::istringstream cut(text);
  ParseReport report;
  EXPECT_EQ(load_jobs(cut, &report).size(), 2u);
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.truncated);
  std::istringstream strict(text);
  EXPECT_THROW(load_jobs(strict), std::runtime_error);
}

TEST(RecordIo, V1FilesCarryNoTrailerVerdict) {
  std::ostringstream ss;
  ss << "p2sim-intervals v1 " << hpm::kNumCounters << "\n";
  ss << "I,7,144,100,555";
  for (std::size_t c = 0; c < 2 * hpm::kNumCounters; ++c) ss << ',' << c;
  ss << "\n";
  std::istringstream in(ss.str());
  ParseReport report;
  EXPECT_EQ(load_intervals(in, &report).size(), 1u);
  EXPECT_FALSE(report.committed);
  EXPECT_FALSE(report.truncated);  // v1 predates the trailer: no verdict
}

}  // namespace
}  // namespace p2sim::analysis
