#include "src/analysis/report.hpp"

#include <gtest/gtest.h>

#include "src/workload/driver.hpp"

namespace p2sim::analysis {
namespace {

workload::DriverConfig tiny_config() {
  workload::DriverConfig cfg;
  cfg.num_nodes = 12;
  cfg.days = 8;
  cfg.jobs_per_day = 5.0;
  cfg.jobgen.node_choices = {1, 2, 4, 8};
  cfg.jobgen.node_weights = {4, 3, 6, 14};
  cfg.sched.drain_threshold_nodes = 6;
  return cfg;
}

TEST(Monthly, SplitsDaysIntoMonths) {
  std::vector<DayStats> days(70);
  for (int i = 0; i < 70; ++i) {
    days[static_cast<std::size_t>(i)].day = i;
    days[static_cast<std::size_t>(i)].gflops = 1.0 + (i / 30);
    days[static_cast<std::size_t>(i)].utilization = 0.5;
  }
  const auto months = monthly_stats(days, 30);
  ASSERT_EQ(months.size(), 3u);
  EXPECT_EQ(months[0].days, 30);
  EXPECT_EQ(months[1].days, 30);
  EXPECT_EQ(months[2].days, 10);
  EXPECT_NEAR(months[0].mean_gflops, 1.0, 1e-9);
  EXPECT_NEAR(months[1].mean_gflops, 2.0, 1e-9);
  EXPECT_NEAR(months[2].mean_gflops, 3.0, 1e-9);
}

TEST(Monthly, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(monthly_stats({}, 30).empty());
  EXPECT_TRUE(monthly_stats(std::vector<DayStats>(5), 0).empty());
}

TEST(Report, BuildsFromACampaign) {
  const auto campaign = workload::run_campaign(tiny_config());
  const CampaignReport r = build_report(campaign, /*min_gflops=*/0.0);
  EXPECT_EQ(r.num_nodes, 12);
  EXPECT_EQ(r.days, 8);
  EXPECT_EQ(r.fig1.day.size(), 8u);
  EXPECT_FALSE(r.months.empty());
  EXPECT_GT(r.total_jobs, 0u);
  EXPECT_EQ(r.table3.rows.size(), 17u);
}

TEST(Report, FormatsEverySection) {
  const auto campaign = workload::run_campaign(tiny_config());
  const std::string text =
      format_report(build_report(campaign, /*min_gflops=*/0.0));
  for (const char* needle :
       {"Measurement Report", "monthly summary", "Table 2", "Table 3",
        "Table 4", "batch jobs", "system intervention", "day-level trends",
        "heaviest users"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace p2sim::analysis
