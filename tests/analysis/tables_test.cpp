#include "src/analysis/tables.hpp"

#include <gtest/gtest.h>

namespace p2sim::analysis {
namespace {

std::vector<DayStats> synthetic_days() {
  // Five days; three pass a 2.0 Gflops filter with Mflops 15, 20, 25.
  std::vector<DayStats> days(5);
  const double mflops[] = {5.0, 15.0, 20.0, 25.0, 8.0};
  for (int i = 0; i < 5; ++i) {
    DayStats& d = days[static_cast<std::size_t>(i)];
    d.day = i;
    d.per_node.mflops_all = mflops[i];
    d.per_node.mips = 2.0 * mflops[i];
    d.per_node.mops = 2.1 * mflops[i];
    d.per_node.mflops_add = 0.5 * mflops[i];
    d.per_node.cache_miss_ratio = 0.01;
    d.per_node.tlb_miss_ratio = 0.001;
    d.gflops = mflops[i] * 144 / 1000.0;  // 0.72 .. 3.6
    d.utilization = 0.5 + 0.02 * i;
  }
  return days;
}

TEST(Table2, FiltersAndAggregates) {
  const Table2 t = make_table2(synthetic_days(), 2.0);
  EXPECT_EQ(t.total_days, 5);
  EXPECT_EQ(t.sample_days, 3);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[0].label, "Mips");
  EXPECT_EQ(t.rows[1].label, "Mops");
  EXPECT_EQ(t.rows[2].label, "Mflops");
  EXPECT_NEAR(t.rows[2].avg, 20.0, 1e-9);
  EXPECT_NEAR(t.rows[2].stddev, 5.0, 1e-9);
  // Representative day is the median performer: day 2 (20 Mflops).
  EXPECT_EQ(t.representative_day, 2);
  EXPECT_NEAR(t.rows[2].day, 20.0, 1e-9);
}

TEST(Table2, EmptyFilterFallsBackToAllDays) {
  const Table2 t = make_table2(synthetic_days(), 100.0);
  EXPECT_FALSE(t.filtered);
  EXPECT_EQ(t.sample_days, 5);
  ASSERT_EQ(t.rows.size(), 3u);
  // Mean over all five days' Mflops.
  EXPECT_NEAR(t.rows[2].avg, (5.0 + 15 + 20 + 25 + 8) / 5.0, 1e-9);
}

TEST(Table2, FilteredFlagSetWhenSamplePasses) {
  EXPECT_TRUE(make_table2(synthetic_days(), 2.0).filtered);
  EXPECT_TRUE(make_table3(synthetic_days(), 2.0).filtered);
  EXPECT_FALSE(make_table3(synthetic_days(), 100.0).filtered);
}

TEST(Table2, SampleSummaries) {
  const Table2 t = make_table2(synthetic_days(), 2.0);
  EXPECT_NEAR(t.sample_mean_gflops, 20.0 * 144 / 1000.0, 1e-9);
  EXPECT_GT(t.sample_mean_utilization, 0.5);
}

TEST(Table3, HasThePaperRowsInOrder) {
  const Table3 t = make_table3(synthetic_days(), 2.0);
  ASSERT_EQ(t.rows.size(), 17u);
  EXPECT_EQ(t.rows[0].label, "Mflops-All");
  EXPECT_EQ(t.rows[0].section, "OPS");
  EXPECT_EQ(t.rows[5].label, "Mips-Floating Point (Total)");
  EXPECT_EQ(t.rows[5].section, "INST");
  EXPECT_EQ(t.rows[12].section, "CACHE");
  EXPECT_EQ(t.rows[15].section, "I/O");
  EXPECT_NEAR(t.rows[0].avg, 20.0, 1e-9);
  EXPECT_NEAR(t.rows[1].avg, 10.0, 1e-9);  // Mflops-add = 0.5x
}

TEST(Table4, SequentialAndBtColumnsFromKernels) {
  const Table4 t = make_table4(synthetic_days(), power2::CoreConfig{}, 2.0);
  EXPECT_NEAR(t.nas_workload.cache_miss_ratio, 0.01, 1e-9);
  EXPECT_NEAR(t.nas_workload.tlb_miss_ratio, 0.001, 1e-9);
  EXPECT_NEAR(t.nas_workload.mflops_per_cpu, 20.0, 1e-9);
  // Table 4 shape: sequential access misses ~3x the workload.
  EXPECT_NEAR(t.sequential.cache_miss_ratio, 1.0 / 32.0, 0.004);
  EXPECT_NEAR(t.sequential.tlb_miss_ratio, 1.0 / 512.0, 0.0006);
  EXPECT_EQ(t.sequential.mflops_per_cpu, 0.0);  // not reported in the paper
  // BT: tuned loop nests -> lowest TLB ratio, higher Mflops than workload.
  EXPECT_LT(t.npb_bt.tlb_miss_ratio, t.nas_workload.tlb_miss_ratio);
  EXPECT_GT(t.npb_bt.mflops_per_cpu, t.nas_workload.mflops_per_cpu);
}

TEST(Formatting, TablesRenderTheirHeadings) {
  const auto days = synthetic_days();
  const std::string t2 = format_table2(make_table2(days, 2.0));
  EXPECT_NE(t2.find("Table 2"), std::string::npos);
  EXPECT_NE(t2.find("Mflops"), std::string::npos);
  const std::string t3 = format_table3(make_table3(days, 2.0));
  EXPECT_NE(t3.find("Table 3"), std::string::npos);
  EXPECT_NE(t3.find("OPS"), std::string::npos);
  EXPECT_NE(t3.find("DMA reads-MTransfer/S"), std::string::npos);
  const std::string t4 =
      format_table4(make_table4(days, power2::CoreConfig{}, 2.0));
  EXPECT_NE(t4.find("Table 4"), std::string::npos);
  EXPECT_NE(t4.find("Cache Miss Ratio"), std::string::npos);
  EXPECT_NE(t4.find("NPB BT"), std::string::npos);
}

}  // namespace
}  // namespace p2sim::analysis
