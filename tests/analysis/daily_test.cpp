#include "src/analysis/daily.hpp"

#include <gtest/gtest.h>

#include "src/util/sim_time.hpp"

namespace p2sim::analysis {
namespace {

using hpm::HpmCounter;
using rs2hpm::IntervalRecord;

// A synthetic one-day, two-node campaign with known counter totals.
workload::CampaignResult synthetic_campaign() {
  workload::CampaignResult r;
  r.num_nodes = 2;
  r.days = 2;
  for (std::int64_t t = 0; t < 2 * util::kIntervalsPerDay; ++t) {
    IntervalRecord rec;
    rec.interval = t;
    rec.nodes_sampled = 2;
    rec.busy_nodes = (t < util::kIntervalsPerDay) ? 2 : 1;
    // 9e8 adds per interval machine-wide on day 0, half that on day 1.
    const std::uint64_t adds = (t < util::kIntervalsPerDay) ? 900'000'000u
                                                            : 450'000'000u;
    rec.delta.user[hpm::index_of(HpmCounter::kFpAdd0)] = adds;
    rec.delta.user[hpm::index_of(HpmCounter::kUserFxu0)] = adds;
    rec.delta.system[hpm::index_of(HpmCounter::kUserFxu0)] = adds / 10;
    r.intervals.push_back(rec);
  }
  r.total_busy_node_seconds = 3 * 86400.0;
  return r;
}

TEST(Daily, OneStatPerDay) {
  const auto days = daily_stats(synthetic_campaign());
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].day, 0);
  EXPECT_EQ(days[1].day, 1);
}

TEST(Daily, PerNodeRatesUseElapsedNodeTime) {
  const auto days = daily_stats(synthetic_campaign());
  // Day 0: 96 * 9e8 adds over 2 nodes * 86400 s
  //      = 8.64e10 / 1.728e5 s-node = 500,000 adds/s/node = 0.5 Mflops.
  EXPECT_NEAR(days[0].per_node.mflops_all, 0.5, 1e-9);
  EXPECT_NEAR(days[1].per_node.mflops_all, 0.25, 1e-9);
}

TEST(Daily, SystemGflopsScalesByNodes) {
  const auto days = daily_stats(synthetic_campaign());
  EXPECT_NEAR(days[0].gflops, 0.5 * 2 / 1000.0, 1e-12);
}

TEST(Daily, UtilizationFromBusyNodes) {
  const auto days = daily_stats(synthetic_campaign());
  EXPECT_NEAR(days[0].utilization, 1.0, 1e-12);
  EXPECT_NEAR(days[1].utilization, 0.5, 1e-12);
}

TEST(Daily, SystemUserRatioSurvivesAggregation) {
  const auto days = daily_stats(synthetic_campaign());
  EXPECT_NEAR(days[0].per_node.system_user_fxu_ratio, 0.1, 1e-9);
}

TEST(Daily, EmptyCampaignYieldsNothing) {
  workload::CampaignResult r;
  EXPECT_TRUE(daily_stats(r).empty());
}

TEST(FilterDays, ThresholdIsStrict) {
  std::vector<DayStats> days(3);
  days[0].gflops = 1.9;
  days[1].gflops = 2.0;
  days[2].gflops = 2.1;
  const auto f = filter_days(days, 2.0);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NEAR(f[0].gflops, 2.1, 1e-12);
}

TEST(RepresentativeDay, PicksTheMedianPerformer) {
  std::vector<DayStats> days(5);
  for (int i = 0; i < 5; ++i) {
    days[static_cast<std::size_t>(i)].day = i;
    days[static_cast<std::size_t>(i)].per_node.mflops_all = 10.0 + i;
  }
  EXPECT_EQ(representative_day_index(days), 2u);
  EXPECT_EQ(representative_day_index({}), 0u);
}

}  // namespace
}  // namespace p2sim::analysis
