// Shared byte-identity oracle for driver tests: the concatenation of every
// byte-stable artifact a campaign produces — the v2 interval and job record
// streams, the measurement-loss report, the scalar result fields, and the
// sim-time telemetry exports captured under a session.  Two campaigns are
// "the same campaign" exactly when these fingerprints are equal; the
// parallel-determinism suite uses it across thread counts and the
// crash-recovery suite uses it across kill/resume cycles.
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/analysis/loss.hpp"
#include "src/analysis/record_io.hpp"
#include "src/fault/fault.hpp"
#include "src/telemetry/session.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::workload {

inline DriverConfig small_config(std::int64_t days = 4, int nodes = 16) {
  DriverConfig cfg;
  cfg.num_nodes = nodes;
  cfg.days = days;
  cfg.jobs_per_day = 42.0 * nodes / 144.0;
  cfg.jobgen.node_choices = {1, 2, 4, 8, 16};
  cfg.jobgen.node_weights = {4, 3, 6, 14, 22};
  cfg.sched.drain_threshold_nodes = 8;
  return cfg;
}

inline DriverConfig faulted_config() {
  DriverConfig cfg = small_config(6, 16);
  cfg.faults = fault::FaultConfig::reference();
  return cfg;
}

/// Renders an already-run campaign (and the session its telemetry landed
/// in) as the canonical fingerprint string.
inline std::string fingerprint_result(const CampaignResult& result,
                                      const telemetry::Session* session) {
  std::ostringstream out;
  out.precision(17);
  analysis::save_intervals(out, result.intervals);
  analysis::save_jobs(out, result.jobs);
  out << analysis::format_measurement_loss(
      analysis::measure_loss(result, 0.9));
  out << "busy=" << result.total_busy_node_seconds
      << " open=" << result.jobs_open_at_end
      << " sans_prologue=" << result.jobs_open_sans_prologue
      << " faults=" << result.faults.total_faults() << "\n";
  if (session != nullptr) {
    out << session->registry.jsonl();
    out << session->tracer.chrome_trace_json(/*include_wall=*/false);
  }
  return out.str();
}

/// Runs the campaign under a fresh telemetry session and fingerprints it.
inline std::string campaign_fingerprint(DriverConfig cfg, int threads,
                                        bool include_telemetry = true) {
  cfg.threads = threads;
  telemetry::Session session;
  workload::CampaignResult result;
  {
    telemetry::ScopedSession scoped(session);
    result = run_campaign(cfg);
  }
  return fingerprint_result(result, include_telemetry ? &session : nullptr);
}

/// Points at the first differing byte so a regression names the artifact
/// (interval stream, job stream, loss report, jsonl, trace) that diverged.
inline void expect_identical(const std::string& a, const std::string& b,
                             const char* label) {
  if (a == b) {
    SUCCEED();
    return;
  }
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  const std::size_t lo = i > 40 ? i - 40 : 0;
  FAIL() << label << ": fingerprints diverge at byte " << i << "\n  a: ..."
         << a.substr(lo, 80) << "\n  b: ..." << b.substr(lo, 80);
}

}  // namespace p2sim::workload
