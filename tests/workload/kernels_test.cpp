#include "src/workload/kernels.hpp"

#include <gtest/gtest.h>

#include "src/power2/signature.hpp"

namespace p2sim::workload {
namespace {

using power2::EventSignature;
using power2::KernelDesc;
using power2::measure_signature;
using power2::Power2Core;

EventSignature sig_of(const KernelDesc& k) {
  Power2Core core;
  return measure_signature(core, k);
}

double cache_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.dcache_miss / fxu : 0.0;
}

double tlb_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.tlb_miss / fxu : 0.0;
}

double flops_per_memref(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.flops_per_cycle() / fxu : 0.0;
}

TEST(Kernels, AllLibraryKernelsValidate) {
  EXPECT_TRUE(blocked_matmul().validate().empty());
  EXPECT_TRUE(naive_matmul().validate().empty());
  EXPECT_TRUE(npb_bt_like().validate().empty());
  EXPECT_TRUE(sequential_sweep().validate().empty());
  EXPECT_TRUE(strided_transpose().validate().empty());
  EXPECT_TRUE(mdo_ensemble(3).validate().empty());
  EXPECT_TRUE(io_heavy(3).validate().empty());
  EXPECT_TRUE(cfd_multiblock(3, 0.4).validate().empty());
}

TEST(Kernels, BlockedMatmulHitsThePaperCalibration) {
  // Section 5: "approximately 240 Mflops on the 67 Mhz POWER2" and a
  // flops-to-memory-instruction ratio of 3.0.
  const EventSignature s = sig_of(blocked_matmul());
  EXPECT_GT(s.mflops(), 215.0);
  EXPECT_LT(s.mflops(), 260.0);
  EXPECT_NEAR(flops_per_memref(s), 3.0, 0.35);
  // Fully blocked: no cache misses in steady state.
  EXPECT_LT(cache_ratio(s), 0.001);
  // All flops come from fma.
  EXPECT_NEAR(2.0 * (s.fp_fma0 + s.fp_fma1) / s.flops_per_cycle(), 1.0,
              1e-9);
}

TEST(Kernels, BlockedMatmulBalancesTheFpus) {
  // "Higher performance workloads should display ratios closer to 1."
  const EventSignature s = sig_of(blocked_matmul());
  EXPECT_NEAR(s.fpu0_inst / s.fpu1_inst, 1.0, 0.3);
}

TEST(Kernels, NaiveMatmulCollapses) {
  // The ablation baseline: the same computation without blocking runs
  // orders of magnitude slower and misses constantly.
  const EventSignature s = sig_of(naive_matmul());
  EXPECT_LT(s.mflops(), 30.0);
  EXPECT_GT(cache_ratio(s), 0.1);
  EXPECT_GT(tlb_ratio(s), 0.05);
}

TEST(Kernels, SequentialSweepMatchesTable4Arithmetic) {
  // Table 4 "Sequential Access": ~3% cache, ~0.2% TLB miss ratios (a miss
  // every 32 and every 512 real*8 elements respectively).
  const EventSignature s = sig_of(sequential_sweep());
  EXPECT_NEAR(cache_ratio(s), 1.0 / 32.0, 0.004);
  EXPECT_NEAR(tlb_ratio(s), 1.0 / 512.0, 0.0006);
}

TEST(Kernels, NpbBtIsTheTunedCode) {
  // Table 4 "NPB BT": low TLB ratio from the rearranged loop nests, cache
  // ratio near 1%, ~44 Mflops/CPU class performance.
  const EventSignature s = sig_of(npb_bt_like());
  EXPECT_LT(tlb_ratio(s), 0.001);
  EXPECT_LT(cache_ratio(s), 0.02);
  EXPECT_GT(s.mflops(), 40.0);
  EXPECT_LT(s.mflops(), 90.0);
}

TEST(Kernels, StridedTransposeIsTheTlbPathology) {
  // Section 5: "We might expect high TLB miss rates from programs
  // accessing data with large memory strides."
  const EventSignature s = sig_of(strided_transpose());
  EXPECT_GT(tlb_ratio(s), 0.1);
  EXPECT_GT(tlb_ratio(s), 100.0 * tlb_ratio(sig_of(npb_bt_like())));
}

TEST(Kernels, CfdQualityImprovesPerformance) {
  const EventSignature lo = sig_of(cfd_multiblock(11, 0.1));
  const EventSignature hi = sig_of(cfd_multiblock(11, 0.9));
  EXPECT_GT(hi.mflops(), lo.mflops());
  EXPECT_GT(flops_per_memref(hi), flops_per_memref(lo));
}

TEST(Kernels, CfdMedianMatchesWorkloadRatios) {
  // The bulk population at median quality must sit near the paper's
  // workload aggregates: flops/memref ~0.5, fma ~half the flops, ~1%
  // cache and ~0.05-0.2% TLB miss ratios.
  const EventSignature s = sig_of(cfd_multiblock(5, 0.25));
  EXPECT_GT(flops_per_memref(s), 0.3);
  EXPECT_LT(flops_per_memref(s), 0.9);
  const double fma_share = 2.0 * (s.fp_fma0 + s.fp_fma1) / s.flops_per_cycle();
  EXPECT_GT(fma_share, 0.3);
  EXPECT_LT(fma_share, 0.75);
  EXPECT_GT(cache_ratio(s), 0.004);
  EXPECT_LT(cache_ratio(s), 0.03);
  EXPECT_GT(tlb_ratio(s), 0.0002);
  EXPECT_LT(tlb_ratio(s), 0.004);
}

TEST(Kernels, CfdVariantsDiffer) {
  EXPECT_NE(cfd_multiblock(1, 0.3).content_hash(),
            cfd_multiblock(2, 0.3).content_hash());
  EXPECT_EQ(cfd_multiblock(1, 0.3).content_hash(),
            cfd_multiblock(1, 0.3).content_hash());
}

TEST(Kernels, MdoIsFmaRichAndFast) {
  // The "better-performing individual codes perform at least 80% of their
  // operations from fma instructions."
  const EventSignature s = sig_of(mdo_ensemble(2));
  const double fma_share = 2.0 * (s.fp_fma0 + s.fp_fma1) / s.flops_per_cycle();
  EXPECT_GT(fma_share, 0.6);
  EXPECT_GT(s.mflops(), sig_of(cfd_multiblock(2, 0.25)).mflops());
}

TEST(Kernels, IoHeavyIsArithmeticallyLight) {
  const EventSignature s = sig_of(io_heavy(1));
  EXPECT_LT(flops_per_memref(s), 0.6);
  EXPECT_LT(s.mflops(), 40.0);
}

// The divide fraction in the CFD population exists even though the NAS
// monitor bug hides it: a good share of the population executes divides.
TEST(Kernels, CfdPopulationExecutesDivides) {
  int with_div = 0;
  for (std::uint64_t v = 0; v < 10; ++v) {
    const EventSignature s = sig_of(cfd_multiblock(v, 0.3));
    if (s.fp_div0 + s.fp_div1 > 0.0) ++with_div;
  }
  EXPECT_GE(with_div, 2);
}

}  // namespace
}  // namespace p2sim::workload
