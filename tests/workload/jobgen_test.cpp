#include "src/workload/jobgen.hpp"

#include <gtest/gtest.h>

#include <map>

namespace p2sim::workload {
namespace {

TEST(JobGen, ConfigValidation) {
  ProfileRegistry reg;
  JobGenConfig bad;
  bad.node_weights.pop_back();
  EXPECT_THROW(JobGenerator(bad, reg), std::invalid_argument);
  JobGenConfig bad2;
  bad2.family_weights = {1.0};
  EXPECT_THROW(JobGenerator(bad2, reg), std::invalid_argument);
}

TEST(JobGen, DeterministicForSeed) {
  ProfileRegistry r1, r2;
  JobGenConfig cfg;
  JobGenerator g1(cfg, r1), g2(cfg, r2);
  for (int i = 0; i < 200; ++i) {
    const pbs::JobSpec a = g1.next(i * 100.0);
    const pbs::JobSpec b = g2.next(i * 100.0);
    EXPECT_EQ(a.nodes_requested, b.nodes_requested);
    EXPECT_DOUBLE_EQ(a.runtime_s, b.runtime_s);
    EXPECT_DOUBLE_EQ(a.memory_mb_per_node, b.memory_mb_per_node);
  }
}

TEST(JobGen, IdsAreSequential) {
  ProfileRegistry reg;
  JobGenerator g(JobGenConfig{}, reg);
  EXPECT_EQ(g.next(0.0).job_id, 1);
  EXPECT_EQ(g.next(0.0).job_id, 2);
  EXPECT_EQ(g.jobs_generated(), 2);
}

TEST(JobGen, ProfilesRegisteredPerJob) {
  ProfileRegistry reg;
  JobGenerator g(JobGenConfig{}, reg);
  const pbs::JobSpec s = g.next(0.0);
  EXPECT_NO_THROW(reg.get(s.profile_id));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(JobGen, SixteenNodesDominatesBatchJobs) {
  // Figure 2's headline: 16 nodes is the most popular request.
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  JobGenerator g(cfg, reg);
  std::map<int, int> counts;
  for (int i = 0; i < 5000; ++i) counts[g.next(0.0).nodes_requested]++;
  int best_nodes = 0, best = 0;
  for (const auto& [n, c] : counts) {
    if (c > best) {
      best = c;
      best_nodes = n;
    }
  }
  EXPECT_EQ(best_nodes, 16);
  // Wide jobs are rare ("essentially no wall clock time ... more than 64").
  int wide = 0, total = 0;
  for (const auto& [n, c] : counts) {
    total += c;
    if (n > 64) wide += c;
  }
  EXPECT_LT(static_cast<double>(wide) / total, 0.05);
}

TEST(JobGen, RuntimesWithinBounds) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  JobGenerator g(cfg, reg);
  for (int i = 0; i < 2000; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    EXPECT_GE(s.runtime_s, cfg.runtime_min_s);
    EXPECT_LE(s.runtime_s, cfg.runtime_max_s);
    EXPECT_GE(s.walltime_request_s, s.runtime_s);
  }
}

TEST(JobGen, InteractiveSessionsAreShortAndNarrow) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 1.0;
  JobGenerator g(cfg, reg);
  for (int i = 0; i < 500; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    EXPECT_EQ(s.kind, pbs::JobKind::kInteractive);
    EXPECT_LT(s.runtime_s, 600.0);  // removed by the paper's filter
    EXPECT_LE(s.nodes_requested, 4);
  }
}

TEST(JobGen, WideJobsUsuallyOversubscribeMemory) {
  // Section 6: jobs beyond 64 nodes were paging.
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  cfg.node_choices = {128};
  cfg.node_weights = {1.0};
  JobGenerator g(cfg, reg);
  int paging = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    if (g.next(0.0).memory_mb_per_node > 128.0) ++paging;
  }
  EXPECT_NEAR(static_cast<double>(paging) / n, cfg.wide_paging_prob, 0.06);
}

TEST(JobGen, NarrowJobsRarelyPageOutsideEpisodes) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  cfg.paging_episode_start_prob = 0.0;  // no episodes
  cfg.node_choices = {16};
  cfg.node_weights = {1.0};
  JobGenerator g(cfg, reg);
  int paging = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (g.next(0.0).memory_mb_per_node > 128.0) ++paging;
  }
  EXPECT_NEAR(static_cast<double>(paging) / n, cfg.narrow_paging_prob, 0.025);
}

TEST(JobGen, PagingEpisodesClusterByDay) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  cfg.paging_episode_start_prob = 1.0;  // always in an episode
  cfg.paging_episode_narrow_prob = 1.0;
  cfg.node_choices = {16};
  cfg.node_weights = {1.0};
  JobGenerator g(cfg, reg);
  // Advance past day 0 (episodes start at day boundaries).
  g.next(0.0);
  int paging = 0;
  for (int i = 0; i < 100; ++i) {
    if (g.next(90000.0).memory_mb_per_node > 128.0) ++paging;
  }
  EXPECT_EQ(paging, 100);
}

TEST(JobGen, DevSessionsHaveLowDutyCycle) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 1.0;
  JobGenerator g(cfg, reg);
  for (int i = 0; i < 200; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    const JobProfile& p = reg.get(s.profile_id);
    EXPECT_EQ(p.family, "dev");
    EXPECT_GE(p.duty_cycle, cfg.dev_duty_min);
    EXPECT_LE(p.duty_cycle, cfg.dev_duty_max);
    EXPECT_LE(s.nodes_requested, cfg.dev_max_nodes);
  }
}

TEST(JobGen, ProfilesCarryCommunicationModel) {
  ProfileRegistry reg;
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  JobGenerator g(cfg, reg);
  for (int i = 0; i < 200; ++i) {
    const JobProfile& p = reg.get(g.next(0.0).profile_id);
    EXPECT_GE(p.comm_fraction_base, 0.0);
    EXPECT_LT(p.comm_fraction_base, 1.0);
    EXPECT_GT(p.msg_bytes_per_s, 0.0);
    EXPECT_GT(p.imbalance_efficiency, 0.5);
    EXPECT_LE(p.imbalance_efficiency, 1.0);
    // Comm share grows (weakly) with node count and stays bounded.
    EXPECT_LE(p.comm_fraction(144), 0.9);
    EXPECT_GE(p.comm_fraction(144), p.comm_fraction(16) - 1e-12);
    EXPECT_EQ(p.comm_fraction(1), 0.0);
  }
}

TEST(ProfileRegistry, UnknownIdThrows) {
  ProfileRegistry reg;
  EXPECT_THROW(reg.get(42), std::out_of_range);
}

}  // namespace
}  // namespace p2sim::workload
