// Torn-write fuzzer for every durable artifact the simulator persists:
// the binary checkpoint container, the v2 record streams and the
// signature store.  The adversary is a crash (or bit rot) at an arbitrary
// byte: every prefix truncation and every single-byte corruption of each
// format must load to a precise, non-empty diagnosis — never a crash,
// never silently-adopted garbage, and for the all-or-nothing signature
// store never a partial prefix.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/power2/kernel_desc.hpp"
#include "src/power2/signature.hpp"
#include "src/power2/signature_store.hpp"
#include "src/util/ckpt.hpp"
#include "src/workload/checkpoint.hpp"

namespace p2sim {
namespace {

// --- checkpoint container ------------------------------------------------

std::string sample_checkpoint() {
  util::CkptWriter w;
  w.put_u64(0xDEADBEEFCAFEF00DULL);
  w.put_str("campaign payload with enough bytes to be interesting");
  w.put_f64(2.718281828459045);
  w.put_i64(-12345);
  return workload::encode_checkpoint_file(0x1234ABCDu, 96, w.bytes());
}

TEST(TornWriteFuzz, CheckpointEveryTruncationDiagnosedNeverCrashes) {
  const std::string full = sample_checkpoint();
  ASSERT_NO_THROW(workload::decode_checkpoint_file(full));
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::string torn = full.substr(0, len);
    try {
      workload::decode_checkpoint_file(torn);
      FAIL() << "truncation to " << len << " bytes decoded successfully";
    } catch (const util::CkptError& e) {
      EXPECT_FALSE(std::string(e.what()).empty()) << "len=" << len;
    }
  }
}

TEST(TornWriteFuzz, CheckpointEveryByteFlipDiagnosedNeverCrashes) {
  const std::string full = sample_checkpoint();
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    for (const unsigned char flip : {0x01, 0x80}) {
      std::string rotted = full;
      rotted[pos] = static_cast<char>(rotted[pos] ^ flip);
      try {
        workload::decode_checkpoint_file(rotted);
        FAIL() << "flip 0x" << std::hex << int{flip} << " at byte "
               << std::dec << pos << " decoded successfully";
      } catch (const util::CkptError& e) {
        EXPECT_FALSE(std::string(e.what()).empty())
            << "pos=" << pos << " flip=" << int{flip};
      }
    }
  }
}

TEST(TornWriteFuzz, CheckpointOversizedPayloadLengthIsBounded) {
  // A rotted payload_size must not drive an allocation or an out-of-range
  // read; the header checksum catches it first, but even a forged header
  // (checksum recomputed) must fail on the real byte count.
  std::string full = sample_checkpoint();
  full.append("trailing garbage the header does not account for");
  EXPECT_THROW(workload::decode_checkpoint_file(full), util::CkptError);
}

// --- v2 record streams ---------------------------------------------------

std::string sample_intervals_text(int n) {
  std::vector<rs2hpm::IntervalRecord> recs;
  for (int i = 0; i < n; ++i) {
    rs2hpm::IntervalRecord rec;
    rec.interval = i;
    rec.nodes_sampled = 16;
    rec.busy_nodes = i % 17;
    rec.quad_surplus = 1000 + static_cast<std::uint64_t>(i);
    for (std::size_t c = 0; c < hpm::kNumCounters; ++c) {
      rec.delta.user[c] =
          static_cast<std::uint64_t>(i) * 100 + (hpm::kNumCounters - c);
      rec.delta.system[c] =
          static_cast<std::uint64_t>(i) * 7 + (hpm::kNumCounters - c);
    }
    recs.push_back(rec);
  }
  std::ostringstream out;
  analysis::save_intervals(out, recs);
  return out.str();
}

/// Recovering-mode load of mutated record text: must return or throw a
/// std::runtime_error with a message — never crash, never hang.
void expect_diagnosed(const std::string& text, const char* label) {
  std::istringstream in(text);
  analysis::ParseReport report;
  try {
    const auto recs = analysis::load_intervals(in, &report);
    // Loaded: the verdict must be coherent — either a committed clean
    // file, or the report says what was lost.
    if (report.committed) {
      EXPECT_FALSE(report.truncated) << label;
    } else {
      EXPECT_TRUE(report.truncated || report.lines_skipped > 0 ||
                  recs.empty())
          << label << ": uncommitted yet nothing reported";
    }
  } catch (const std::runtime_error& e) {
    // Header damage is fatal even in recovering mode; the reason must
    // still be precise.
    EXPECT_FALSE(std::string(e.what()).empty()) << label;
  }
}

TEST(TornWriteFuzz, RecordsEveryTruncationDiagnosedNeverCrashes) {
  const std::string full = sample_intervals_text(6);
  for (std::size_t len = 0; len < full.size(); ++len) {
    expect_diagnosed(full.substr(0, len),
                     ("truncate@" + std::to_string(len)).c_str());
  }
}

TEST(TornWriteFuzz, RecordsHeaderAndTrailerByteFlipsDiagnosed) {
  const std::string full = sample_intervals_text(6);
  const std::size_t header_end = full.find('\n') + 1;
  const std::size_t trailer_start = full.rfind("C,");
  ASSERT_NE(trailer_start, std::string::npos);
  ASSERT_LT(trailer_start, full.size());
  auto flip_at = [&](std::size_t pos) {
    std::string rotted = full;
    rotted[pos] = static_cast<char>(rotted[pos] ^ 0x08);
    expect_diagnosed(rotted, ("flip@" + std::to_string(pos)).c_str());
  };
  for (std::size_t pos = 0; pos < header_end; ++pos) flip_at(pos);
  for (std::size_t pos = trailer_start; pos < full.size(); ++pos) {
    flip_at(pos);
  }
}

TEST(TornWriteFuzz, RecordsStrictModeNeverAcceptsTruncation) {
  const std::string full = sample_intervals_text(4);
  // Stop one byte early: dropping only the final newline still leaves a
  // complete committed trailer line, which strict mode rightly accepts.
  for (std::size_t len = 0; len + 1 < full.size(); ++len) {
    std::istringstream in(full.substr(0, len));
    EXPECT_THROW(analysis::load_intervals(in), std::runtime_error)
        << "strict load accepted a " << len << "-byte prefix";
  }
  std::istringstream in(full);
  EXPECT_NO_THROW(analysis::load_intervals(in));
}

// --- signature store -----------------------------------------------------

power2::KernelDesc fuzz_kernel(const char* name, int bytes) {
  power2::KernelBuilder b(name);
  const auto s = b.stream(bytes, 8);
  const auto l = b.load(s);
  b.fma(l);
  return b.warmup(32).measure(256).build();
}

std::string store_text() {
  static const std::string text = [] {
    const std::string path = testing::TempDir() + "p2sim_fuzz_store.txt";
    std::remove(path.c_str());
    power2::SignatureCache cache({}, {.path = path});
    (void)cache.get(fuzz_kernel("fuzz_a", 1 << 16));
    (void)cache.get(fuzz_kernel("fuzz_b", 1 << 14));
    EXPECT_TRUE(cache.flush());
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    std::remove(path.c_str());
    return out.str();
  }();
  return text;
}

/// Loads mutated store text through the real file path and asserts the
/// all-or-nothing contract: adopt a committed set, or adopt nothing that
/// the report does not account for — and never a bare prefix of an
/// uncommitted v2 store.
void expect_all_or_nothing(const std::string& text, const char* label) {
  const std::string path = testing::TempDir() + "p2sim_fuzz_store_mut.txt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  }
  std::map<std::uint64_t, power2::EventSignature> out;
  power2::SignatureStoreReport rep;
  ASSERT_NO_THROW(rep = power2::load_signature_store(
                      path, power2::core_config_hash({}), out))
      << label;
  if (rep.truncated || !rep.header_ok || !rep.core_hash_matched) {
    EXPECT_EQ(rep.loaded, 0u) << label;
    EXPECT_TRUE(out.empty()) << label;
  } else {
    // Committed store: every entry line is either adopted or individually
    // diagnosed as corrupt — none simply vanish.
    EXPECT_TRUE(rep.committed) << label;
    EXPECT_EQ(rep.loaded + rep.corrupt_lines, 2u) << label;
  }
  std::remove(path.c_str());
}

TEST(TornWriteFuzz, SignatureStoreEveryTruncationIsAllOrNothing) {
  const std::string full = store_text();
  // Any cut before the end of the trailer line un-commits the store.
  for (std::size_t len = 0; len < full.size(); ++len) {
    expect_all_or_nothing(full.substr(0, len),
                          ("truncate@" + std::to_string(len)).c_str());
  }
  expect_all_or_nothing(full, "full file");
}

TEST(TornWriteFuzz, SignatureStoreEveryByteFlipIsContained) {
  const std::string full = store_text();
  for (std::size_t pos = 0; pos < full.size(); ++pos) {
    if (full[pos] == '\n') continue;  // line-structure edits change counts
    std::string rotted = full;
    rotted[pos] = static_cast<char>(rotted[pos] ^ 0x04);
    expect_all_or_nothing(rotted, ("flip@" + std::to_string(pos)).c_str());
  }
}

}  // namespace
}  // namespace p2sim
