#include "src/workload/presets.hpp"

#include <gtest/gtest.h>

#include "src/analysis/daily.hpp"

namespace p2sim::workload {
namespace {

// Shrink a preset so its campaign runs in test time.
DriverConfig shrink(DriverConfig cfg, int nodes = 16) {
  cfg.num_nodes = nodes;
  cfg.jobs_per_day *= nodes / 144.0;
  std::vector<int> nc;
  std::vector<double> nw;
  for (std::size_t i = 0; i < cfg.jobgen.node_choices.size(); ++i) {
    if (cfg.jobgen.node_choices[i] <= nodes) {
      nc.push_back(cfg.jobgen.node_choices[i]);
      nw.push_back(cfg.jobgen.node_weights[i]);
    }
  }
  cfg.jobgen.node_choices = nc;
  cfg.jobgen.node_weights = nw;
  cfg.sched.drain_threshold_nodes = nodes / 2;
  return cfg;
}

double mean_mflops_per_node(const workload::CampaignResult& r) {
  const auto days = analysis::daily_stats(r);
  double sum = 0.0;
  int n = 0;
  for (const auto& d : days) {
    if (d.utilization < 0.1) continue;
    sum += d.per_node.mflops_all / std::max(d.utilization, 1e-9);
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

TEST(Presets, PaperCampaignIsTheDefault) {
  const DriverConfig cfg = paper_campaign();
  EXPECT_EQ(cfg.num_nodes, 144);
  EXPECT_EQ(cfg.days, 270);
  EXPECT_EQ(cfg.node.monitor.selection, hpm::CounterSelection::kNasDefault);
}

TEST(Presets, InstrumentedCampaignSelectsWaitStates) {
  EXPECT_EQ(instrumented_campaign().node.monitor.selection,
            hpm::CounterSelection::kWaitStates);
}

TEST(Presets, BenchmarkWeekRunsFarAboveProduction) {
  const auto prod = run_campaign(shrink(paper_campaign(), 16));
  auto bench_cfg = shrink(dedicated_benchmark_week(), 16);
  bench_cfg.days = 7;
  const auto bench = run_campaign(bench_cfg);
  EXPECT_GT(mean_mflops_per_node(bench), 1.5 * mean_mflops_per_node(prod));
}

TEST(Presets, PagingStormShowsHeavySystemIntervention) {
  auto calm_cfg = shrink(paper_campaign(), 16);
  calm_cfg.days = 14;
  calm_cfg.jobgen.narrow_paging_prob = 0.0;
  calm_cfg.jobgen.paging_episode_start_prob = 0.0;
  const auto calm = run_campaign(calm_cfg);
  const auto storm = run_campaign(shrink(paging_storm_fortnight(), 16));

  auto mean_ratio = [](const workload::CampaignResult& r) {
    const auto days = analysis::daily_stats(r);
    double sum = 0.0;
    int n = 0;
    for (const auto& d : days) {
      if (d.utilization < 0.1) continue;
      sum += d.per_node.system_user_fxu_ratio;
      ++n;
    }
    return n > 0 ? sum / n : 0.0;
  };
  EXPECT_GT(mean_ratio(storm), 3.0 * mean_ratio(calm));
}

}  // namespace
}  // namespace p2sim::workload
