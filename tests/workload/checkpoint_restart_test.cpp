// Checkpoint/restart unit contract: the container round-trips and rejects
// malformation precisely; checkpointing never perturbs a campaign's
// fingerprint; a resume from ANY generation — at any thread count — is
// byte-identical to the uninterrupted run; a corrupt newest generation
// falls back to the previous one with the reason on record; and a
// checkpoint from a different campaign configuration is refused outright.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/util/ckpt.hpp"
#include "src/workload/checkpoint.hpp"
#include "tests/workload/campaign_fingerprint.hpp"

namespace p2sim::workload {
namespace {

namespace fs = std::filesystem;

/// A dense two-day faulted campaign with a short checkpoint cadence: 192
/// intervals, generations every 24.
DriverConfig ck_config() {
  DriverConfig cfg = small_config(2, 16);
  cfg.faults = fault::FaultConfig::reference();
  cfg.checkpoint.every_intervals = 24;
  return cfg;
}

std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CheckpointRestart, ContainerRoundTrips) {
  const std::string payload = "the campaign state, opaquely";
  const std::string bytes = encode_checkpoint_file(0xABCD1234u, 96, payload);
  const CheckpointImage img = decode_checkpoint_file(bytes);
  EXPECT_EQ(img.config_hash, 0xABCD1234u);
  EXPECT_EQ(img.resume_interval, 96);
  EXPECT_EQ(img.payload, payload);
}

TEST(CheckpointRestart, FileNamesSortInIntervalOrder) {
  EXPECT_EQ(checkpoint_file_name(24), "ckpt-000000000024.p2ck");
  EXPECT_LT(checkpoint_file_name(96), checkpoint_file_name(1000));
  EXPECT_LT(checkpoint_file_name(999), checkpoint_file_name(10000));
}

TEST(CheckpointRestart, WriteListLoadAndPrune) {
  const std::string dir = fresh_dir("p2sim_ck_wll");
  std::string err;
  for (std::int64_t t : {24, 48, 72}) {
    ASSERT_TRUE(write_checkpoint(dir, 7u, t, "payload", /*keep=*/2, &err))
        << err;
  }
  // keep=2: the oldest generation was pruned after the third commit.
  const auto gens = list_checkpoints(dir);
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_NE(gens[0].find("ckpt-000000000048"), std::string::npos);
  EXPECT_NE(gens[1].find("ckpt-000000000072"), std::string::npos);

  ResumeReport rep;
  const auto img = load_latest_checkpoint(dir, 7u, &rep);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->resume_interval, 72);
  EXPECT_TRUE(rep.rejected.empty());
  fs::remove_all(dir);
}

TEST(CheckpointRestart, CheckpointingDoesNotPerturbTheCampaign) {
  const std::string dir = fresh_dir("p2sim_ck_perturb");
  DriverConfig with_ck = ck_config();
  with_ck.checkpoint.dir = dir;
  expect_identical(campaign_fingerprint(ck_config(), 1),
                   campaign_fingerprint(with_ck, 1),
                   "checkpointing on vs off");
  EXPECT_FALSE(list_checkpoints(dir).empty());
  fs::remove_all(dir);
}

TEST(CheckpointRestart, ResumeFromEveryGenerationIsByteIdentical) {
  const std::string dir = fresh_dir("p2sim_ck_gens");
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = dir;
  cfg.checkpoint.keep = 99;  // retain every generation
  const std::string reference = campaign_fingerprint(cfg, 1);

  const auto gens = list_checkpoints(dir);
  ASSERT_EQ(gens.size(), 7u);  // 24, 48, ..., 168 of 192 intervals
  for (std::size_t i = 0; i < gens.size(); ++i) {
    // Stage exactly one generation in its own directory, so the resume is
    // forced through it.
    const std::string gen_dir =
        fresh_dir(("p2sim_ck_gen_" + std::to_string(i)).c_str());
    fs::create_directories(gen_dir);
    fs::copy_file(dir + "/" + gens[i], gen_dir + "/" + gens[i]);

    DriverConfig resume_cfg = ck_config();
    resume_cfg.checkpoint.dir = gen_dir;
    resume_cfg.checkpoint.resume = true;
    ResumeReport rep;
    resume_cfg.checkpoint.report = &rep;
    const int threads = i % 3 == 2 ? 4 : 1;  // mix thread counts across gens
    const std::string resumed = campaign_fingerprint(resume_cfg, threads);
    EXPECT_TRUE(rep.resumed);
    EXPECT_EQ(rep.resume_interval, 24 * static_cast<std::int64_t>(i + 1));
    expect_identical(reference, resumed,
                     ("resume from generation " + std::to_string(i)).c_str());
    fs::remove_all(gen_dir);
  }
  fs::remove_all(dir);
}

TEST(CheckpointRestart, MidCampaignCheckpointResumesAcrossThreadCounts) {
  // A checkpoint cut mid-campaign by a wide (8-worker) run must resume
  // byte-identically under any other worker count: lane partitioning and
  // pass horizons are derived state, never checkpointed, so the image is
  // thread-count-agnostic in both directions.
  const std::string dir = fresh_dir("p2sim_ck_xthreads");
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = dir;
  const std::string reference = campaign_fingerprint(cfg, 8);
  ASSERT_FALSE(list_checkpoints(dir).empty());
  for (int threads : {1, 2, 3}) {
    DriverConfig resume_cfg = ck_config();
    resume_cfg.checkpoint.dir = dir;
    resume_cfg.checkpoint.resume = true;
    ResumeReport rep;
    resume_cfg.checkpoint.report = &rep;
    const std::string resumed = campaign_fingerprint(resume_cfg, threads);
    EXPECT_TRUE(rep.resumed);
    expect_identical(reference, resumed,
                     ("threads=8 checkpoint resumed at threads=" +
                      std::to_string(threads))
                         .c_str());
  }
  fs::remove_all(dir);
}

TEST(CheckpointRestart, CorruptNewestGenerationFallsBackWithReason) {
  const std::string dir = fresh_dir("p2sim_ck_fallback");
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = dir;
  const std::string reference = campaign_fingerprint(cfg, 1);

  auto gens = list_checkpoints(dir);
  ASSERT_EQ(gens.size(), 2u);  // keep=2 default
  // Rot one payload byte of the newest generation.
  const std::string newest = dir + "/" + gens[1];
  std::string bytes = read_file(newest);
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x40);
  std::ofstream(newest, std::ios::binary | std::ios::trunc) << bytes;

  DriverConfig resume_cfg = ck_config();
  resume_cfg.checkpoint.dir = dir;
  resume_cfg.checkpoint.resume = true;
  ResumeReport rep;
  resume_cfg.checkpoint.report = &rep;
  const std::string resumed = campaign_fingerprint(resume_cfg, 1);

  EXPECT_TRUE(rep.resumed);
  EXPECT_EQ(rep.resume_interval, 144);  // fell back from 168 to 144
  ASSERT_EQ(rep.rejected.size(), 1u);
  EXPECT_NE(rep.rejected[0].find("checksum"), std::string::npos)
      << rep.rejected[0];
  expect_identical(reference, resumed, "resume after fallback");
  fs::remove_all(dir);
}

TEST(CheckpointRestart, ConfigMismatchRejectsEveryGeneration) {
  const std::string dir = fresh_dir("p2sim_ck_mismatch");
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = dir;
  (void)campaign_fingerprint(cfg, 1);
  const std::size_t gens = list_checkpoints(dir).size();
  ASSERT_GT(gens, 0u);

  DriverConfig other = ck_config();
  other.seed ^= 1;  // a different campaign entirely
  other.checkpoint.dir = dir;
  other.checkpoint.resume = true;
  ResumeReport rep;
  other.checkpoint.report = &rep;
  const std::string resumed = campaign_fingerprint(other, 1);

  EXPECT_TRUE(rep.attempted);
  EXPECT_FALSE(rep.resumed);
  EXPECT_EQ(rep.rejected.size(), gens);
  for (const std::string& why : rep.rejected) {
    EXPECT_NE(why.find("config_hash"), std::string::npos) << why;
  }
  // The refused resume ran the other campaign from scratch, correctly.
  DriverConfig other_fresh = ck_config();
  other_fresh.seed ^= 1;
  expect_identical(campaign_fingerprint(other_fresh, 1), resumed,
                   "refused resume vs fresh run");
  fs::remove_all(dir);
}

TEST(CheckpointRestart, TornTmpFileIsIgnored) {
  const std::string dir = fresh_dir("p2sim_ck_tmp");
  fs::create_directories(dir);
  std::ofstream(dir + "/ckpt-000000000048.p2ck.tmp") << "half a checkpoint";
  EXPECT_TRUE(list_checkpoints(dir).empty());

  // A resume over nothing but the torn tmp starts from the beginning.
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = dir;
  cfg.checkpoint.resume = true;
  ResumeReport rep;
  cfg.checkpoint.report = &rep;
  const std::string run = campaign_fingerprint(cfg, 1);
  EXPECT_FALSE(rep.resumed);
  expect_identical(campaign_fingerprint(ck_config(), 1), run,
                   "resume over torn tmp vs fresh");
  fs::remove_all(dir);
}

TEST(CheckpointRestart, UnwritableCheckpointDirIsNonFatal) {
  // Point the checkpoint dir at a path blocked by a regular file: every
  // write fails, the campaign still completes identically.
  const std::string blocker = testing::TempDir() + "p2sim_ck_blocker";
  std::ofstream(blocker, std::ios::trunc) << "not a directory";
  DriverConfig cfg = ck_config();
  cfg.checkpoint.dir = blocker + "/nested";
  expect_identical(campaign_fingerprint(ck_config(), 1),
                   campaign_fingerprint(cfg, 1),
                   "failing checkpoint writes vs none");
  std::remove(blocker.c_str());
}

TEST(CheckpointRestart, ConfigFingerprintCoversDeterminismKnobsOnly) {
  const DriverConfig base = ck_config();
  // Wall-clock-only knobs do not change the fingerprint...
  DriverConfig same = base;
  same.threads = 7;
  same.signature_store_path = "somewhere.txt";
  same.checkpoint.dir = "elsewhere";
  same.checkpoint.every_intervals = 3;
  same.checkpoint.keep = 42;
  EXPECT_EQ(config_fingerprint(base), config_fingerprint(same));
  // ...every determinism-relevant knob does.
  DriverConfig seed = base;
  seed.seed ^= 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(seed));
  DriverConfig faults = base;
  faults.faults.interval_miss_prob += 0.01;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(faults));
  DriverConfig jobs = base;
  jobs.jobgen.node_weights.back() += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(jobs));
  DriverConfig node = base;
  node.node.clock_hz *= 2.0;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(node));
  DriverConfig days = base;
  days.days += 1;
  EXPECT_NE(config_fingerprint(base), config_fingerprint(days));
}

}  // namespace
}  // namespace p2sim::workload
