#include "src/workload/stencil.hpp"

#include <gtest/gtest.h>

#include "src/power2/signature.hpp"

namespace p2sim::workload {
namespace {

using power2::EventSignature;

EventSignature sig_of(const power2::KernelDesc& k) {
  power2::Power2Core core;
  return power2::measure_signature(core, k);
}

double cache_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.dcache_miss / fxu : 0.0;
}

double tlb_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.tlb_miss / fxu : 0.0;
}

TEST(Stencil, RejectsDegenerateGeometry) {
  StencilSpec s;
  s.nx = 2;
  EXPECT_THROW(make_stencil_kernel(s), std::invalid_argument);
  s = StencilSpec{};
  s.variables = 0;
  EXPECT_THROW(make_stencil_kernel(s), std::invalid_argument);
  s = StencilSpec{};
  s.arm = 0;
  EXPECT_THROW(make_stencil_kernel(s), std::invalid_argument);
}

TEST(Stencil, ArchetypeValidatesAndNamesItself) {
  const power2::KernelDesc k = archetype_block_sweep();
  EXPECT_TRUE(k.validate().empty());
  EXPECT_NE(k.name.find("50x50x50"), std::string::npos);
}

TEST(Stencil, InstructionCountsFollowGeometry) {
  StencilSpec spec;
  spec.variables = 3;
  spec.arm = 1;
  const power2::KernelDesc k = make_stencil_kernel(spec);
  // Per variable: 1 centre load + 1 mul + 6 leg loads + 6 fma + 1 store;
  // plus 4 overhead ops and the branch.
  EXPECT_EQ(k.memrefs_per_iter(), 3u * (1 + 6 + 1));
  EXPECT_EQ(k.flops_per_iter(), 3u * (1 + 6 * 2));
}

TEST(Stencil, RegisterReuseReducesMemoryTraffic) {
  StencilSpec untuned;
  untuned.variables = 4;
  StencilSpec tuned = untuned;
  tuned.register_reuse = true;
  const power2::KernelDesc ku = make_stencil_kernel(untuned);
  const power2::KernelDesc kt = make_stencil_kernel(tuned);
  EXPECT_LT(kt.memrefs_per_iter(), ku.memrefs_per_iter());
  EXPECT_EQ(kt.flops_per_iter(), ku.flops_per_iter());
  // And it shows up as performance, the section 6 tuning message.
  EXPECT_GT(sig_of(kt).mflops(), sig_of(ku).mflops());
}

TEST(Stencil, ArchetypeLandsInTheWorkloadBand) {
  // The 50^3 block sweep should behave like the paper's typical code:
  // tens of Mflops, ~1% cache misses, small-but-present TLB pressure.
  const EventSignature s = sig_of(archetype_block_sweep());
  EXPECT_GT(s.mflops(), 10.0);
  EXPECT_LT(s.mflops(), 80.0);
  EXPECT_GT(cache_ratio(s), 0.003);
  EXPECT_LT(cache_ratio(s), 0.06);
  EXPECT_GT(tlb_ratio(s), 0.0001);
}

TEST(Stencil, BiggerGridsRaiseTlbPressure) {
  StencilSpec small;
  small.nx = small.ny = small.nz = 24;  // 110 kB field: cache-resident
  StencilSpec large;
  large.nx = large.ny = large.nz = 96;  // 7 MB field: beyond TLB reach
  EXPECT_GT(tlb_ratio(sig_of(make_stencil_kernel(large))),
            tlb_ratio(sig_of(make_stencil_kernel(small))));
}

TEST(Stencil, FmaDominatesTheFlops) {
  const EventSignature s = sig_of(archetype_block_sweep());
  const double fma_share =
      2.0 * (s.fp_fma0 + s.fp_fma1) / s.flops_per_cycle();
  EXPECT_GT(fma_share, 0.8);  // stencils are accumulation-only
}

TEST(Stencil, DeterministicForSpec) {
  EXPECT_EQ(archetype_block_sweep().content_hash(),
            archetype_block_sweep().content_hash());
  EXPECT_NE(archetype_block_sweep(false).content_hash(),
            archetype_block_sweep(true).content_hash());
}

}  // namespace
}  // namespace p2sim::workload
