#include "src/workload/npb.hpp"

#include <gtest/gtest.h>

#include "src/power2/signature.hpp"

namespace p2sim::workload {
namespace {

using power2::EventSignature;

EventSignature sig_of(NpbBenchmark b) {
  power2::Power2Core core;
  return power2::measure_signature(core, npb_kernel(b));
}

double cache_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.dcache_miss / fxu : 0.0;
}

double tlb_ratio(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.tlb_miss / fxu : 0.0;
}

double flops_per_memref(const EventSignature& s) {
  const double fxu = s.fxu0_inst + s.fxu1_inst;
  return fxu > 0 ? s.flops_per_cycle() / fxu : 0.0;
}

TEST(Npb, SuiteHasSevenBenchmarksWithDistinctNames) {
  const auto& suite = npb_suite();
  ASSERT_EQ(suite.size(), 7u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(npb_name(suite[i]), npb_name(suite[j]));
    }
    EXPECT_FALSE(npb_description(suite[i]).empty());
  }
}

TEST(Npb, AllKernelsValidate) {
  for (NpbBenchmark b : npb_suite()) {
    EXPECT_TRUE(npb_kernel(b).validate().empty())
        << std::string(npb_name(b));
  }
}

TEST(Npb, KernelsAreDeterministic) {
  for (NpbBenchmark b : npb_suite()) {
    EXPECT_EQ(npb_kernel(b).content_hash(), npb_kernel(b).content_hash());
  }
}

TEST(Npb, EpIsComputeDense) {
  // EP: almost no memory traffic, negligible misses.
  const EventSignature ep = sig_of(NpbBenchmark::kEP);
  EXPECT_GT(flops_per_memref(ep), 3.0);
  EXPECT_LT(cache_ratio(ep), 0.005);
  EXPECT_LT(tlb_ratio(ep), 0.001);
}

TEST(Npb, CgIsCacheHostile) {
  // CG's gathers must miss far more than any structured-grid code.
  const EventSignature cg = sig_of(NpbBenchmark::kCG);
  EXPECT_GT(cache_ratio(cg), 5.0 * cache_ratio(sig_of(NpbBenchmark::kBT)));
  EXPECT_LT(flops_per_memref(cg), 0.8);
}

TEST(Npb, FtHasTheHighestTlbPressureOfTheSolvers) {
  const double ft = tlb_ratio(sig_of(NpbBenchmark::kFT));
  EXPECT_GT(ft, tlb_ratio(sig_of(NpbBenchmark::kBT)));
  EXPECT_GT(ft, tlb_ratio(sig_of(NpbBenchmark::kSP)));
  EXPECT_GT(ft, tlb_ratio(sig_of(NpbBenchmark::kLU)));
  EXPECT_GT(ft, tlb_ratio(sig_of(NpbBenchmark::kMG)));
}

TEST(Npb, TunedSolversOutperformBandwidthBoundCodes) {
  const double bt = sig_of(NpbBenchmark::kBT).mflops();
  const double sp = sig_of(NpbBenchmark::kSP).mflops();
  const double mg = sig_of(NpbBenchmark::kMG).mflops();
  const double cg = sig_of(NpbBenchmark::kCG).mflops();
  EXPECT_GT(bt, mg);
  EXPECT_GT(sp, mg);
  EXPECT_GT(mg, cg);
}

TEST(Npb, LuIsDependenceBound) {
  // The SSOR wavefront runs below the ILP-rich solvers despite a similar
  // mix.
  EXPECT_LT(sig_of(NpbBenchmark::kLU).mflops(),
            sig_of(NpbBenchmark::kSP).mflops());
}

TEST(Npb, AllRatesWithinHardwareBounds) {
  for (NpbBenchmark b : npb_suite()) {
    const EventSignature s = sig_of(b);
    EXPECT_GT(s.mflops(), 0.0) << std::string(npb_name(b));
    EXPECT_LT(s.mflops(), 267.0) << std::string(npb_name(b));
    EXPECT_LE(s.flops_per_cycle(), 4.0) << std::string(npb_name(b));
    EXPECT_LE(s.instructions_per_cycle(), 4.0) << std::string(npb_name(b));
  }
}

}  // namespace
}  // namespace p2sim::workload
