#include "src/workload/driver.hpp"

#include <gtest/gtest.h>

#include "src/util/sim_time.hpp"

namespace p2sim::workload {
namespace {

DriverConfig small_config(std::int64_t days = 5, int nodes = 16) {
  DriverConfig cfg;
  cfg.num_nodes = nodes;
  cfg.days = days;
  cfg.jobs_per_day = 42.0 * nodes / 144.0;
  cfg.jobgen.node_choices = {1, 2, 4, 8, 16};
  cfg.jobgen.node_weights = {4, 3, 6, 14, 22};
  cfg.sched.drain_threshold_nodes = 8;
  return cfg;
}

TEST(Driver, RejectsInvalidConfigs) {
  DriverConfig bad = small_config();
  bad.num_nodes = 0;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
  bad = small_config();
  bad.days = 0;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
  bad = small_config();
  bad.jobs_per_day = -1.0;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
  bad = small_config();
  bad.demand_min = 2.0;
  bad.demand_max = 1.0;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
  bad = small_config();
  bad.slump_depth_max = 1.5;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
}

TEST(Driver, ProducesOneRecordPerInterval) {
  const CampaignResult r = run_campaign(small_config());
  EXPECT_EQ(r.days, 5);
  EXPECT_EQ(r.num_nodes, 16);
  EXPECT_EQ(r.intervals.size(),
            static_cast<std::size_t>(5 * util::kIntervalsPerDay));
  for (std::size_t i = 0; i < r.intervals.size(); ++i) {
    EXPECT_EQ(r.intervals[i].interval, static_cast<std::int64_t>(i));
    EXPECT_EQ(r.intervals[i].nodes_sampled, 16);
  }
}

TEST(Driver, BusyNodesNeverExceedMachine) {
  const CampaignResult r = run_campaign(small_config());
  for (const auto& rec : r.intervals) {
    EXPECT_GE(rec.busy_nodes, 0);
    EXPECT_LE(rec.busy_nodes, 16);
  }
}

TEST(Driver, UtilizationIsAFraction) {
  const CampaignResult r = run_campaign(small_config());
  EXPECT_GT(r.mean_utilization(), 0.0);
  EXPECT_LT(r.mean_utilization(), 1.0);
}

TEST(Driver, JobsCompleteAndAreAccounted) {
  const CampaignResult r = run_campaign(small_config());
  EXPECT_GT(r.jobs.size(), 10u);
  for (const auto& rec : r.jobs.all()) {
    EXPECT_GT(rec.walltime_s(), 0.0);
    EXPECT_GE(rec.start_time_s, rec.spec.submit_time_s);
    EXPECT_EQ(rec.report.nodes, rec.spec.nodes_requested);
    EXPECT_GE(rec.mflops_per_node(), 0.0);
    // No job can beat the 267 Mflops hardware peak.
    EXPECT_LT(rec.mflops_per_node(), util::MachineClock::kPeakMflopsPerNode);
  }
}

TEST(Driver, DeterministicForSeed) {
  const CampaignResult a = run_campaign(small_config());
  const CampaignResult b = run_campaign(small_config());
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  ASSERT_EQ(a.intervals.size(), b.intervals.size());
  for (std::size_t i = 0; i < a.intervals.size(); ++i) {
    EXPECT_EQ(a.intervals[i].delta, b.intervals[i].delta) << i;
  }
  EXPECT_DOUBLE_EQ(a.total_busy_node_seconds, b.total_busy_node_seconds);
}

TEST(Driver, SeedChangesTheCampaign) {
  DriverConfig cfg = small_config();
  const CampaignResult a = run_campaign(cfg);
  cfg.seed ^= 0xDEADBEEF;
  const CampaignResult b = run_campaign(cfg);
  EXPECT_NE(a.jobs.size(), b.jobs.size());
}

TEST(Driver, CountersAreBelievable) {
  const CampaignResult r = run_campaign(small_config());
  using hpm::HpmCounter;
  std::uint64_t cycles = 0, flops = 0, fxu = 0;
  for (const auto& rec : r.intervals) {
    cycles += rec.delta.user_at(HpmCounter::kUserCycles);
    flops += rec.delta.user_at(HpmCounter::kFpAdd0) +
             rec.delta.user_at(HpmCounter::kFpAdd1) +
             rec.delta.user_at(HpmCounter::kFpMul0) +
             rec.delta.user_at(HpmCounter::kFpMul1) +
             rec.delta.user_at(HpmCounter::kFpMulAdd0) +
             rec.delta.user_at(HpmCounter::kFpMulAdd1);
    fxu += rec.delta.user_at(HpmCounter::kUserFxu0) +
           rec.delta.user_at(HpmCounter::kUserFxu1);
  }
  EXPECT_GT(cycles, 0u);
  EXPECT_GT(flops, 0u);
  EXPECT_GT(fxu, 0u);
  // User cycles cannot exceed total busy node time at the clock.
  EXPECT_LT(static_cast<double>(cycles),
            r.total_busy_node_seconds * util::MachineClock::kHz * 1.001);
  // Flops per cycle below the 4/cycle hardware bound.
  EXPECT_LT(static_cast<double>(flops), 4.0 * static_cast<double>(cycles));
}

TEST(Driver, DivideCounterBugHolds) {
  // The campaign is measured with the buggy monitor: no divide counts.
  const CampaignResult r = run_campaign(small_config());
  for (const auto& rec : r.intervals) {
    EXPECT_EQ(rec.delta.user_at(hpm::HpmCounter::kFpDiv0), 0u);
    EXPECT_EQ(rec.delta.user_at(hpm::HpmCounter::kFpDiv1), 0u);
  }
}

TEST(Driver, SystemModeWorkExists) {
  const CampaignResult r = run_campaign(small_config(10));
  std::uint64_t sys_fxu = 0;
  for (const auto& rec : r.intervals) {
    sys_fxu += rec.delta.system_at(hpm::HpmCounter::kUserFxu0);
  }
  EXPECT_GT(sys_fxu, 0u);
}

TEST(Driver, LongerCampaignsRunMoreJobs) {
  const CampaignResult short_run = run_campaign(small_config(3));
  const CampaignResult long_run = run_campaign(small_config(9));
  EXPECT_GT(long_run.jobs.size(), short_run.jobs.size());
}

}  // namespace
}  // namespace p2sim::workload
