// The parallel driver's contract, enforced byte-for-byte: a campaign run
// with DriverConfig::threads = 1, 2 or 4 (or 0 = auto) produces identical
// campaign records, job accounting, measurement-loss reconciliation and
// simulated-time telemetry exports — fault-free and under the reference
// crash/reboot + lossy-collection schedule alike.  The fingerprint is the
// serialized v2 record streams plus the JSONL metric export and the
// wall-free Chrome trace, so any divergence in any counter, any record or
// any span fails loudly with the first differing byte's context.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/util/task_pool.hpp"
#include "src/workload/driver.hpp"
#include "tests/workload/campaign_fingerprint.hpp"

namespace p2sim::workload {
namespace {

TEST(ParallelDeterminism, FaultFreeCampaignIsByteIdenticalAcrossThreads) {
  const std::string serial = campaign_fingerprint(small_config(), 1);
  expect_identical(serial, campaign_fingerprint(small_config(), 2),
                   "threads=2 vs 1");
  expect_identical(serial, campaign_fingerprint(small_config(), 4),
                   "threads=4 vs 1");
}

TEST(ParallelDeterminism, FaultedCampaignIsByteIdenticalAcrossThreads) {
  // Crash/reboot churn plus lossy collection exercises every serial-phase
  // interaction with the lanes: kills, requeues, reachability, repriming.
  const std::string serial = campaign_fingerprint(faulted_config(), 1);
  expect_identical(serial, campaign_fingerprint(faulted_config(), 2),
                   "faulted threads=2 vs 1");
  expect_identical(serial, campaign_fingerprint(faulted_config(), 4),
                   "faulted threads=4 vs 1");
}

TEST(ParallelDeterminism, FaultedCampaignIsByteIdenticalAtWiderThreadCounts) {
  // With the horizon engine the pass structure (how many intervals drain
  // per barrier) is fixed by schedules alone, so odd and oversubscribed
  // worker counts — 3 leaves a ragged tree-merge, 8 exceeds this config's
  // per-pass work for some phases — must not move a single byte.
  const std::string serial = campaign_fingerprint(faulted_config(), 1);
  expect_identical(serial, campaign_fingerprint(faulted_config(), 3),
                   "faulted threads=3 vs 1");
  expect_identical(serial, campaign_fingerprint(faulted_config(), 8),
                   "faulted threads=8 vs 1");
}

TEST(ParallelDeterminism, AutoThreadCountMatchesSerial) {
  expect_identical(campaign_fingerprint(small_config(), 1),
                   campaign_fingerprint(small_config(), 0),
                   "threads=0 (auto) vs 1");
}

TEST(ParallelDeterminism, MoreThreadsThanNodesMatchesSerial) {
  DriverConfig tiny = small_config(2, 3);
  tiny.jobgen.node_choices = {1, 2};
  tiny.jobgen.node_weights = {3, 1};
  tiny.sched.drain_threshold_nodes = 2;
  expect_identical(campaign_fingerprint(tiny, 1),
                   campaign_fingerprint(tiny, 8),
                   "threads=8 on 3 nodes vs serial");
}

TEST(ParallelDeterminism, RepeatedRunsAreStableAtFixedThreadCount) {
  expect_identical(campaign_fingerprint(faulted_config(), 4),
                   campaign_fingerprint(faulted_config(), 4),
                   "threads=4 run-to-run");
}

TEST(ParallelDeterminism, FastAccrualMatchesReferenceByteForByte) {
  // The closed-form accrual path must not change a single campaign byte
  // relative to the slice-by-slice reference oracle.
  DriverConfig ref_cfg = small_config();
  ref_cfg.node.reference_accrual = true;
  expect_identical(campaign_fingerprint(small_config(), 1),
                   campaign_fingerprint(ref_cfg, 1),
                   "fast vs reference accrual (fault-free)");
}

TEST(ParallelDeterminism, FastAccrualMatchesReferenceUnderFaultsAndThreads) {
  // Cross both axes at once: parallel fast path vs serial reference oracle
  // on the crash/reboot + lossy-collection schedule.
  DriverConfig ref_cfg = faulted_config();
  ref_cfg.node.reference_accrual = true;
  expect_identical(campaign_fingerprint(faulted_config(), 4),
                   campaign_fingerprint(ref_cfg, 1),
                   "faulted fast threads=4 vs reference serial");
}

TEST(ParallelDeterminism, SignatureStoreDoesNotPerturbCampaign) {
  // Cold run (populates the store), warm run (loads it) and store-free run
  // must fingerprint identically — persistence is purely a speed lever.
  const std::string store =
      testing::TempDir() + "p2sim_determinism_store.txt";
  std::remove(store.c_str());
  DriverConfig stored = small_config();
  stored.signature_store_path = store;

  // A cold run measures every kernel itself, so even the telemetry stream
  // (core-run histograms included) matches a store-free run exactly.
  expect_identical(campaign_fingerprint(small_config(), 1),
                   campaign_fingerprint(stored, 1), "cold store vs no store");
  // Warm runs skip the level-A core runs entirely, so core-run telemetry
  // legitimately vanishes; every campaign artifact — interval and job
  // record streams, loss reconciliation, scalar totals — must still match
  // byte for byte.
  const std::string no_store =
      campaign_fingerprint(small_config(), 1, /*include_telemetry=*/false);
  expect_identical(no_store,
                   campaign_fingerprint(stored, 1, false),
                   "warm store vs no store");
  expect_identical(no_store,
                   campaign_fingerprint(stored, 4, false),
                   "warm store threads=4 vs no store");
  std::remove(store.c_str());
}

TEST(ParallelDeterminism, NegativeThreadCountIsRejected) {
  DriverConfig bad = small_config();
  bad.threads = -2;
  EXPECT_THROW(WorkloadDriver{bad}, std::invalid_argument);
}

TEST(ParallelDeterminism, PhaseTableNamesMeasureAndLanePipelineAsParallel) {
  std::vector<std::string> parallel;
  for (const WorkloadDriver::PhaseInfo& p : WorkloadDriver::kPhases) {
    if (p.parallel) parallel.push_back(p.name);
  }
  // Exactly two phases may enter the worker pool: batched signature
  // measurement and the lane pipeline.  Everything else is serial by
  // contract (tools/detlint.py enforces the closure).
  ASSERT_EQ(parallel.size(), 2u);
  EXPECT_EQ(parallel[0], "measure");
  EXPECT_EQ(parallel[1], "lane-pipeline");
  EXPECT_STREQ(WorkloadDriver::phase_name(WorkloadDriver::Phase::kCollect),
               "collect");
  EXPECT_STREQ(WorkloadDriver::phase_name(WorkloadDriver::Phase::kHorizon),
               "horizon");
  EXPECT_STREQ(WorkloadDriver::phase_name(WorkloadDriver::Phase::kFold),
               "fold");
}

}  // namespace
}  // namespace p2sim::workload
