// Tests for the persistent per-user code model.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/workload/jobgen.hpp"

namespace p2sim::workload {
namespace {

JobGenConfig batch_only() {
  JobGenConfig cfg;
  cfg.interactive_prob = 0.0;
  cfg.dev_session_prob = 0.0;
  return cfg;
}

TEST(UserCodes, UsersReuseTheirKernels) {
  ProfileRegistry reg;
  JobGenConfig cfg = batch_only();
  cfg.code_reuse_prob = 1.0;  // always rerun the existing code
  JobGenerator g(cfg, reg);
  std::map<std::int32_t, std::set<std::uint64_t>> kernels_by_user;
  for (int i = 0; i < 600; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    kernels_by_user[s.user_id].insert(
        reg.get(s.profile_id).kernel.content_hash());
  }
  // With certain reuse, each user runs exactly one code forever.
  for (const auto& [user, kernels] : kernels_by_user) {
    EXPECT_EQ(kernels.size(), 1u) << "user " << user;
  }
}

TEST(UserCodes, ZeroReuseMakesEveryJobFresh) {
  ProfileRegistry reg;
  JobGenConfig cfg = batch_only();
  cfg.code_reuse_prob = 0.0;
  // Only CFD codes (variant-seeded) so hashes differ per draw.
  cfg.family_weights = {1.0, 0, 0, 0, 0, 0};
  JobGenerator g(cfg, reg);
  std::set<std::uint64_t> kernels;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    kernels.insert(reg.get(g.next(0.0).profile_id).kernel.content_hash());
  }
  // Fresh variant draws collide only rarely.
  EXPECT_GT(kernels.size(), static_cast<std::size_t>(n * 9 / 10));
}

TEST(UserCodes, MemoryDemandRedrawnOnReuse) {
  // Automatic arrays are sized per run: the same code submits with
  // different memory demands.
  ProfileRegistry reg;
  JobGenConfig cfg = batch_only();
  cfg.code_reuse_prob = 1.0;
  JobGenerator g(cfg, reg);
  std::map<std::int32_t, std::set<long>> demands;
  for (int i = 0; i < 1000; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    demands[s.user_id].insert(std::lround(s.memory_mb_per_node * 100));
  }
  int users_with_variation = 0;
  for (const auto& [user, d] : demands) {
    if (d.size() > 1) ++users_with_variation;
  }
  EXPECT_GT(users_with_variation, 5);
}

TEST(UserCodes, QualityIsStablePerUser) {
  // A user's code quality does not drift — the mechanism behind Figure
  // 4's flat moving average.
  ProfileRegistry reg;
  JobGenConfig cfg = batch_only();
  cfg.code_reuse_prob = 1.0;
  JobGenerator g(cfg, reg);
  std::map<std::int32_t, std::set<long>> quality;
  for (int i = 0; i < 600; ++i) {
    const pbs::JobSpec s = g.next(0.0);
    quality[s.user_id].insert(
        std::lround(reg.get(s.profile_id).quality * 1e6));
  }
  for (const auto& [user, q] : quality) {
    EXPECT_EQ(q.size(), 1u) << "user " << user;
  }
}

}  // namespace
}  // namespace p2sim::workload
