// Kill-injection harness: forks a checkpointing campaign, SIGKILLs the
// child at a chosen deterministic execution point — between intervals,
// mid-checkpoint-write (torn tmp file), after the tmp is complete but
// before the atomic rename, and right after a commit — then resumes in a
// fresh process and asserts the finished campaign's fingerprint is
// byte-identical to an uninterrupted run's.  The schedule covers 13
// distinct kill points at threads=1, a subset at threads=4, and a
// three-kill chain (crash, resume, crash again, ...) on each.
//
// POSIX-only by construction (fork/waitpid/SIGKILL); the whole file is
// compiled out elsewhere, and the rest of the crash_recovery_tests binary
// still runs.
#if defined(__unix__) || defined(__APPLE__)

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/workload/checkpoint.hpp"
#include "tests/workload/campaign_fingerprint.hpp"

namespace p2sim::workload {
namespace {

namespace fs = std::filesystem;

/// Two faulted days on 16 nodes with a one-quarter-day checkpoint cadence:
/// 192 intervals, generations committed at 24, 48, ..., 168.
DriverConfig crash_config() {
  DriverConfig cfg = small_config(2, 16);
  cfg.faults = fault::FaultConfig::reference();
  cfg.checkpoint.every_intervals = 24;
  return cfg;
}

/// One deterministic execution point: the hook fires SIGKILL when `point`
/// ticks with exactly `value` ("interval-end" carries the interval index,
/// the ckpt-* points carry the generation's resume interval).
struct KillSpec {
  const char* point = nullptr;
  std::int64_t value = -1;
};

// Hook state crosses into the child through fork(); the hook itself is a
// plain function pointer, so plain globals rather than captures.
KillSpec g_kill;

void kill_hook(const char* point, std::int64_t value) {
  if (g_kill.point != nullptr && value == g_kill.value &&
      std::strcmp(point, g_kill.point) == 0) {
    ::kill(::getpid(), SIGKILL);
  }
}

enum class Outcome { kKilled, kClean, kBroken };

/// Forks one campaign attempt.  The child arms the kill hook, runs the
/// campaign, writes its fingerprint to `fp_path` and exits 0; if the kill
/// point fires first, SIGKILL takes it mid-flight.  The parent reports
/// which of the two happened.
Outcome run_attempt(const DriverConfig& cfg, int threads, bool resume,
                    const KillSpec& kill_at, const std::string& fp_path) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork failed: " << std::strerror(errno);
    return Outcome::kBroken;
  }
  if (pid == 0) {
    g_kill = kill_at;
    set_checkpoint_test_hook(&kill_hook);
    DriverConfig run = cfg;
    run.checkpoint.resume = resume;
    std::ofstream out(fp_path, std::ios::binary | std::ios::trunc);
    out << campaign_fingerprint(run, threads);
    out.flush();
    ::_exit(out.good() ? 0 : 3);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    ADD_FAILURE() << "waitpid failed: " << std::strerror(errno);
    return Outcome::kBroken;
  }
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    return Outcome::kKilled;
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return Outcome::kClean;
  ADD_FAILURE() << "child neither SIGKILLed nor clean: status=" << status;
  return Outcome::kBroken;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

/// Kills one child at `kill_at`, then re-forks resume attempts (no kill)
/// until one finishes, and returns the finished campaign's fingerprint.
std::string kill_then_recover(const std::string& tag, int threads,
                              const KillSpec& kill_at) {
  const std::string dir = fresh_dir("p2sim_crash_" + tag);
  const std::string fp_path = dir + ".fp";
  DriverConfig cfg = crash_config();
  cfg.checkpoint.dir = dir;

  EXPECT_EQ(run_attempt(cfg, threads, /*resume=*/false, kill_at, fp_path),
            Outcome::kKilled)
      << tag << ": kill point never fired";
  EXPECT_EQ(run_attempt(cfg, threads, /*resume=*/true, KillSpec{}, fp_path),
            Outcome::kClean)
      << tag << ": resume did not finish";

  const std::string fp = read_file(fp_path);
  fs::remove_all(dir);
  std::remove(fp_path.c_str());
  return fp;
}

/// The 13-point kill schedule.  interval-end values are interval indices
/// (0..191); the ckpt-* values are generation resume intervals (24k).
/// 24/47 bracket a commit; 5 precedes the first generation entirely;
/// mid-write tears the tmp file of an early, middle and final generation.
const KillSpec kSchedule[] = {
    {"interval-end", 5},      {"interval-end", 23},
    {"interval-end", 24},     {"interval-end", 47},
    {"interval-end", 60},     {"interval-end", 101},
    {"interval-end", 150},    {"interval-end", 183},
    {"ckpt-mid-write", 24},   {"ckpt-mid-write", 96},
    {"ckpt-mid-write", 168},  {"ckpt-pre-rename", 48},
    {"ckpt-committed", 72},
};

TEST(CrashRecovery, EveryKillPointResumesByteIdentical) {
  const std::string reference = campaign_fingerprint(crash_config(), 1);
  for (const KillSpec& kill_at : kSchedule) {
    const std::string tag =
        std::string(kill_at.point) + "_" + std::to_string(kill_at.value);
    expect_identical(reference, kill_then_recover(tag, 1, kill_at),
                     tag.c_str());
  }
}

TEST(CrashRecovery, ParallelCampaignSurvivesKillsToo) {
  // threads=4 exercises the pool teardown path under SIGKILL; the
  // fingerprint must match the serial uninterrupted reference — crash,
  // resume and parallelism are all invisible to the campaign bytes.
  const std::string reference = campaign_fingerprint(crash_config(), 1);
  for (const KillSpec& kill_at :
       {KillSpec{"interval-end", 60}, KillSpec{"ckpt-mid-write", 96},
        KillSpec{"ckpt-pre-rename", 48}}) {
    const std::string tag = std::string("t4_") + kill_at.point + "_" +
                            std::to_string(kill_at.value);
    expect_identical(reference, kill_then_recover(tag, 4, kill_at),
                     tag.c_str());
  }
}

TEST(CrashRecovery, RepeatedCrashesAcrossResumesStillConverge) {
  // Crash the fresh run, crash the first resume, crash the second resume
  // (mid-checkpoint-write), then let the third resume finish.  Each crash
  // lands deeper into the campaign than the last so every attempt makes
  // forward progress through a different generation.
  const std::string dir = fresh_dir("p2sim_crash_chain");
  const std::string fp_path = dir + ".fp";
  DriverConfig cfg = crash_config();
  cfg.checkpoint.dir = dir;

  const KillSpec chain[] = {{"interval-end", 40},
                            {"ckpt-mid-write", 96},
                            {"interval-end", 150}};
  bool resume = false;
  for (const KillSpec& kill_at : chain) {
    ASSERT_EQ(run_attempt(cfg, 1, resume, kill_at, fp_path),
              Outcome::kKilled)
        << kill_at.point << " " << kill_at.value;
    resume = true;
  }
  ASSERT_EQ(run_attempt(cfg, 1, /*resume=*/true, KillSpec{}, fp_path),
            Outcome::kClean);
  expect_identical(campaign_fingerprint(crash_config(), 1),
                   read_file(fp_path), "three-crash chain");
  fs::remove_all(dir);
  std::remove(fp_path.c_str());
}

TEST(CrashRecovery, MidWriteKillLeavesNoCommittedGarbage) {
  // SIGKILL between the two halves of the tmp write: the torn tmp must
  // never surface as a generation, and the newest committed generation is
  // still the previous one.
  const std::string dir = fresh_dir("p2sim_crash_torn");
  const std::string fp_path = dir + ".fp";
  DriverConfig cfg = crash_config();
  cfg.checkpoint.dir = dir;
  ASSERT_EQ(run_attempt(cfg, 1, false, KillSpec{"ckpt-mid-write", 96},
                        fp_path),
            Outcome::kKilled);
  const auto gens = list_checkpoints(dir);
  ASSERT_FALSE(gens.empty());
  EXPECT_NE(gens.back().find("ckpt-000000000072"), std::string::npos)
      << gens.back();
  // The torn tmp is still on disk — proof the kill really landed mid-write
  // — but invisible to the generation listing.
  bool saw_tmp = false;
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (ent.path().string().find(".tmp") != std::string::npos) {
      saw_tmp = true;
    }
  }
  EXPECT_TRUE(saw_tmp);
  fs::remove_all(dir);
  std::remove(fp_path.c_str());
}

}  // namespace
}  // namespace p2sim::workload

#endif  // __unix__ || __APPLE__
