#include "src/rs2hpm/profiler.hpp"

#include <gtest/gtest.h>

#include "src/power2/kernel_desc.hpp"
#include "src/workload/kernels.hpp"

namespace p2sim::rs2hpm {
namespace {

power2::KernelDesc small_fp_kernel() {
  power2::KernelBuilder b("prof_fp");
  const auto s = b.stream(64 * 1024, 8);
  const auto l = b.load(s);
  b.fma(l);
  return b.warmup(32).measure(1024).build();
}

TEST(Profiler, SectionsRecordInOrder) {
  ProgramProfiler prof;
  prof.run_section("init", small_fp_kernel());
  prof.run_section("solve", workload::blocked_matmul(), 2048);
  ASSERT_EQ(prof.sections().size(), 2u);
  EXPECT_EQ(prof.sections()[0].name, "init");
  EXPECT_EQ(prof.sections()[1].name, "solve");
}

TEST(Profiler, SectionRatesMatchCounts) {
  ProgramProfiler prof;
  const SectionReport& s = prof.run_section("k", small_fp_kernel());
  // 1024 iterations x 1 fma = 1024 fma instructions.
  EXPECT_EQ(s.counts.fp_fma(), 1024u);
  EXPECT_GT(s.seconds, 0.0);
  // The counter view agrees with the microarchitectural truth.
  EXPECT_EQ(s.delta.user_at(hpm::HpmCounter::kFpMulAdd0) +
                s.delta.user_at(hpm::HpmCounter::kFpMulAdd1),
            1024u);
  // Rates: flops = fma adds + fma muls = 2048 over `seconds`.
  EXPECT_NEAR(s.rates.mflops_all, 2048.0 / s.seconds / 1e6, 1e-6);
}

TEST(Profiler, MatmulSectionHitsCalibration) {
  ProgramProfiler prof;
  const SectionReport& s = prof.run_section("mm", workload::blocked_matmul());
  EXPECT_GT(s.mflops(), 215.0);
  EXPECT_LT(s.mflops(), 260.0);
}

TEST(Profiler, TotalSumsSections) {
  ProgramProfiler prof;
  prof.run_section("a", small_fp_kernel());
  prof.run_section("b", small_fp_kernel());
  const SectionReport t = prof.total();
  EXPECT_EQ(t.counts.fp_fma(), 2048u);
  EXPECT_NEAR(t.seconds,
              prof.sections()[0].seconds + prof.sections()[1].seconds,
              1e-12);
}

TEST(Profiler, LongSectionSurvivesCounterWrap) {
  // A section longer than the 32-bit cycle wrap must still report exact
  // totals (the profiler chunks its monitor updates).
  power2::KernelBuilder b("long");
  std::int16_t prev = power2::kNoDep;
  for (int i = 0; i < 8; ++i) prev = b.fp_add(prev);
  // ~16 cycles/iter x 400M iters ~ 6.4e9 cycles > 2^32.
  const power2::KernelDesc k = b.warmup(0).measure(400'000'000).build();
  ProgramProfiler prof;
  const SectionReport& s = prof.run_section("marathon", k);
  EXPECT_GT(s.counts.cycles, 1ull << 32);
  EXPECT_EQ(s.delta.user_at(hpm::HpmCounter::kUserCycles), s.counts.cycles);
  EXPECT_EQ(s.delta.user_at(hpm::HpmCounter::kFpAdd0) +
                s.delta.user_at(hpm::HpmCounter::kFpAdd1),
            8ull * 400'000'000ull);
}

TEST(Profiler, FormatListsSectionsAndTotal) {
  ProgramProfiler prof;
  prof.run_section("init", small_fp_kernel());
  const std::string out = prof.format();
  EXPECT_NE(out.find("init"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
  EXPECT_NE(out.find("Mflops"), std::string::npos);
}

TEST(Profiler, ResetClearsEverything) {
  ProgramProfiler prof;
  prof.run_section("a", small_fp_kernel());
  prof.reset();
  EXPECT_TRUE(prof.sections().empty());
  const SectionReport& s = prof.run_section("b", small_fp_kernel());
  EXPECT_EQ(s.counts.fp_fma(), 1024u);
  EXPECT_EQ(s.delta.user_at(hpm::HpmCounter::kFpMulAdd0) +
                s.delta.user_at(hpm::HpmCounter::kFpMulAdd1),
            1024u);
}

TEST(Profiler, CacheStatePersistsBetweenSections) {
  // Phases of one program share microarchitectural state: a second pass
  // over the same data misses less than the first.
  power2::KernelBuilder b1("pass");
  const auto s1 = b1.stream(128 * 1024, 8);
  b1.load(s1);
  const power2::KernelDesc pass = b1.warmup(0).measure(16384).build();

  ProgramProfiler prof;
  const SectionReport first = prof.run_section("first", pass);
  const SectionReport second = prof.run_section("second", pass);
  EXPECT_LT(second.counts.dcache_miss, first.counts.dcache_miss);
}

}  // namespace
}  // namespace p2sim::rs2hpm
