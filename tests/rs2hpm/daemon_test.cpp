#include "src/rs2hpm/daemon.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2sim::rs2hpm {
namespace {

ModeTotals totals_with_user0(std::uint64_t v) {
  ModeTotals t;
  t.user[0] = v;
  return t;
}

TEST(Daemon, RequiresAtLeastOneNode) {
  EXPECT_THROW(SamplingDaemon(0), std::invalid_argument);
}

TEST(Daemon, FirstCollectPrimesWithoutRecord) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(5), totals_with_user0(7)};
  std::vector<std::uint64_t> q = {0, 0};
  d.collect(0, t, q, 1);
  EXPECT_TRUE(d.records().empty());
}

TEST(Daemon, DeltasAggregateAcrossNodes) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(5), totals_with_user0(7)};
  std::vector<std::uint64_t> q = {1, 2};
  d.collect(0, t, q, 1);
  t[0].user[0] = 15;   // +10
  t[1].user[0] = 10;   // +3
  q = {4, 2};          // +3, +0
  d.collect(1, t, q, 2);
  ASSERT_EQ(d.records().size(), 1u);
  const IntervalRecord& rec = d.records()[0];
  EXPECT_EQ(rec.interval, 1);
  EXPECT_EQ(rec.delta.user[0], 13u);
  EXPECT_EQ(rec.quad_surplus, 3u);
  EXPECT_EQ(rec.busy_nodes, 2);
  EXPECT_EQ(rec.nodes_sampled, 2);
}

TEST(Daemon, SuccessiveIntervalsIndependent) {
  SamplingDaemon d(1);
  std::vector<ModeTotals> t = {totals_with_user0(0)};
  std::vector<std::uint64_t> q = {0};
  d.collect(0, t, q, 0);
  t[0].user[0] = 10;
  d.collect(1, t, q, 1);
  t[0].user[0] = 10;  // no progress
  d.collect(2, t, q, 0);
  ASSERT_EQ(d.records().size(), 2u);
  EXPECT_EQ(d.records()[0].delta.user[0], 10u);
  EXPECT_EQ(d.records()[1].delta.user[0], 0u);
}

TEST(Daemon, SystemModeTracked) {
  SamplingDaemon d(1);
  ModeTotals t0;
  std::vector<ModeTotals> t = {t0};
  std::vector<std::uint64_t> q = {0};
  d.collect(0, t, q, 0);
  t[0].system[2] = 42;
  d.collect(1, t, q, 0);
  EXPECT_EQ(d.records()[0].delta.system[2], 42u);
}

TEST(Daemon, RejectsWrongSpanSizes) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  EXPECT_THROW(d.collect(0, t, q, 0), std::invalid_argument);
}

TEST(Daemon, CounterResetReprimesInsteadOfUnderflowing) {
  // The Release-mode failure this guard exists for: a node reboots, its
  // totals restart below the baseline, and baseline subtraction would wrap
  // uint64.  The daemon must drop the node's interval and re-prime.
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(1000),
                               totals_with_user0(2000)};
  std::vector<std::uint64_t> q = {10, 20};
  d.collect(0, t, q, 2);
  t[0].user[0] = 5;  // node 0 rebooted: counters restarted from ~zero
  q[0] = 0;
  t[1].user[0] = 2500;  // node 1 progressed normally
  q[1] = 26;
  d.collect(1, t, q, 2);
  ASSERT_EQ(d.records().size(), 1u);
  const IntervalRecord& rec = d.records()[0];
  EXPECT_EQ(rec.delta.user[0], 500u);  // only node 1's clean delta
  EXPECT_EQ(rec.quad_surplus, 6u);
  EXPECT_EQ(rec.nodes_sampled, 1);
  EXPECT_EQ(rec.nodes_reprimed, 1);
  EXPECT_EQ(rec.nodes_expected, 2);
  EXPECT_EQ(d.total_reprimes(), 1);

  // The re-established baseline works: next interval node 0 contributes.
  t[0].user[0] = 105;
  q[0] = 3;
  d.collect(2, t, q, 2);
  EXPECT_EQ(d.records()[1].delta.user[0], 100u + 0u);
  EXPECT_EQ(d.records()[1].nodes_sampled, 2);
  EXPECT_EQ(d.records()[1].nodes_reprimed, 0);
}

TEST(Daemon, QuadRegressionAloneAlsoReprimes) {
  SamplingDaemon d(1);
  std::vector<ModeTotals> t = {totals_with_user0(10)};
  std::vector<std::uint64_t> q = {100};
  d.collect(0, t, q, 1);
  t[0].user[0] = 20;
  q[0] = 50;  // diagnostic went backwards: treat as reset
  d.collect(1, t, q, 1);
  EXPECT_EQ(d.records()[0].nodes_sampled, 0);
  EXPECT_EQ(d.records()[0].nodes_reprimed, 1);
  EXPECT_EQ(d.records()[0].delta.user[0], 0u);
}

TEST(Daemon, UnreachableNodeKeepsBaselineAndCoversGapLater) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(100),
                               totals_with_user0(100)};
  std::vector<std::uint64_t> q = {0, 0};
  d.collect(0, t, q, 2);

  // Node 1 unreachable this interval; its counters still advance.
  t[0].user[0] = 150;
  t[1].user[0] = 160;
  std::vector<std::uint8_t> reach = {1, 0};
  d.collect(1, t, q, reach, 2);
  ASSERT_EQ(d.records().size(), 1u);
  EXPECT_EQ(d.records()[0].delta.user[0], 50u);
  EXPECT_EQ(d.records()[0].nodes_sampled, 1);
  EXPECT_EQ(d.records()[0].nodes_reprimed, 0);
  EXPECT_EQ(d.total_unreachable(), 1);

  // Node 1 reappears: its delta covers both intervals (nothing lost).
  t[0].user[0] = 175;
  t[1].user[0] = 200;
  d.collect(2, t, q, 2);
  EXPECT_EQ(d.records()[1].delta.user[0], 25u + 100u);
  EXPECT_EQ(d.records()[1].nodes_sampled, 2);
}

TEST(Daemon, CoverageFractionReflectsSampledNodes) {
  SamplingDaemon d(4);
  std::vector<ModeTotals> t(4, totals_with_user0(10));
  std::vector<std::uint64_t> q(4, 0);
  d.collect(0, t, q, 0);
  for (auto& x : t) x.user[0] = 20;
  std::vector<std::uint8_t> reach = {1, 1, 0, 0};
  d.collect(1, t, q, reach, 0);
  EXPECT_DOUBLE_EQ(d.records()[0].coverage(), 0.5);
  d.collect(2, t, q, 0);
  EXPECT_DOUBLE_EQ(d.records()[1].coverage(), 1.0);
}

TEST(Daemon, RejectsWrongReachableMaskSize) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t(2);
  std::vector<std::uint64_t> q(2, 0);
  std::vector<std::uint8_t> reach = {1};
  EXPECT_THROW(d.collect(0, t, q, reach, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p2sim::rs2hpm
