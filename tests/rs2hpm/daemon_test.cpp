#include "src/rs2hpm/daemon.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2sim::rs2hpm {
namespace {

ModeTotals totals_with_user0(std::uint64_t v) {
  ModeTotals t;
  t.user[0] = v;
  return t;
}

TEST(Daemon, RequiresAtLeastOneNode) {
  EXPECT_THROW(SamplingDaemon(0), std::invalid_argument);
}

TEST(Daemon, FirstCollectPrimesWithoutRecord) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(5), totals_with_user0(7)};
  std::vector<std::uint64_t> q = {0, 0};
  d.collect(0, t, q, 1);
  EXPECT_TRUE(d.records().empty());
}

TEST(Daemon, DeltasAggregateAcrossNodes) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {totals_with_user0(5), totals_with_user0(7)};
  std::vector<std::uint64_t> q = {1, 2};
  d.collect(0, t, q, 1);
  t[0].user[0] = 15;   // +10
  t[1].user[0] = 10;   // +3
  q = {4, 2};          // +3, +0
  d.collect(1, t, q, 2);
  ASSERT_EQ(d.records().size(), 1u);
  const IntervalRecord& rec = d.records()[0];
  EXPECT_EQ(rec.interval, 1);
  EXPECT_EQ(rec.delta.user[0], 13u);
  EXPECT_EQ(rec.quad_surplus, 3u);
  EXPECT_EQ(rec.busy_nodes, 2);
  EXPECT_EQ(rec.nodes_sampled, 2);
}

TEST(Daemon, SuccessiveIntervalsIndependent) {
  SamplingDaemon d(1);
  std::vector<ModeTotals> t = {totals_with_user0(0)};
  std::vector<std::uint64_t> q = {0};
  d.collect(0, t, q, 0);
  t[0].user[0] = 10;
  d.collect(1, t, q, 1);
  t[0].user[0] = 10;  // no progress
  d.collect(2, t, q, 0);
  ASSERT_EQ(d.records().size(), 2u);
  EXPECT_EQ(d.records()[0].delta.user[0], 10u);
  EXPECT_EQ(d.records()[1].delta.user[0], 0u);
}

TEST(Daemon, SystemModeTracked) {
  SamplingDaemon d(1);
  ModeTotals t0;
  std::vector<ModeTotals> t = {t0};
  std::vector<std::uint64_t> q = {0};
  d.collect(0, t, q, 0);
  t[0].system[2] = 42;
  d.collect(1, t, q, 0);
  EXPECT_EQ(d.records()[0].delta.system[2], 42u);
}

TEST(Daemon, RejectsWrongSpanSizes) {
  SamplingDaemon d(2);
  std::vector<ModeTotals> t = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  EXPECT_THROW(d.collect(0, t, q, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p2sim::rs2hpm
