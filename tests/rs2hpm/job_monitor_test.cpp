#include "src/rs2hpm/job_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace p2sim::rs2hpm {
namespace {

using hpm::HpmCounter;

ModeTotals with_flops(std::uint64_t adds, std::uint64_t fxu) {
  ModeTotals t;
  t.user[hpm::index_of(HpmCounter::kFpAdd0)] = adds;
  t.user[hpm::index_of(HpmCounter::kUserFxu0)] = fxu;
  return t;
}

TEST(JobMonitor, PrologueEpilogueDelta) {
  JobMonitor jm;
  std::vector<ModeTotals> start = {with_flops(100, 10), with_flops(200, 20)};
  std::vector<std::uint64_t> q0 = {1, 2};
  jm.prologue(7, 1000.0, start, q0);
  EXPECT_TRUE(jm.pending(7));

  std::vector<ModeTotals> end = {with_flops(600, 60), with_flops(900, 70)};
  std::vector<std::uint64_t> q1 = {5, 6};
  const JobCounterReport rep = jm.epilogue(7, 1600.0, end, q1);
  EXPECT_FALSE(jm.pending(7));
  EXPECT_EQ(rep.job_id, 7);
  EXPECT_EQ(rep.nodes, 2);
  EXPECT_DOUBLE_EQ(rep.elapsed_s, 600.0);
  EXPECT_EQ(rep.delta.user_at(HpmCounter::kFpAdd0), 1200u);
  EXPECT_EQ(rep.delta.user_at(HpmCounter::kUserFxu0), 100u);
  EXPECT_EQ(rep.quad_surplus, 8u);
}

TEST(JobMonitor, MflopsComputedOverElapsed) {
  JobMonitor jm;
  std::vector<ModeTotals> start = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  jm.prologue(1, 0.0, start, q);
  // 50M adds over 10 s on one node = 5 Mflops.
  std::vector<ModeTotals> end = {with_flops(50'000'000, 0)};
  const JobCounterReport rep = jm.epilogue(1, 10.0, end, q);
  EXPECT_NEAR(rep.job_mflops(), 5.0, 1e-9);
  EXPECT_NEAR(rep.mflops_per_node(), 5.0, 1e-9);
}

TEST(JobMonitor, PerNodeDividesByNodes) {
  JobMonitor jm;
  std::vector<ModeTotals> start(4);
  std::vector<std::uint64_t> q(4, 0);
  jm.prologue(2, 0.0, start, q);
  std::vector<ModeTotals> end(4, with_flops(10'000'000, 0));
  const JobCounterReport rep = jm.epilogue(2, 1.0, end, q);
  EXPECT_NEAR(rep.job_mflops(), 40.0, 1e-9);
  EXPECT_NEAR(rep.mflops_per_node(), 10.0, 1e-9);
}

TEST(JobMonitor, DoubleProloguesRejected) {
  JobMonitor jm;
  std::vector<ModeTotals> t = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  jm.prologue(3, 0.0, t, q);
  EXPECT_THROW(jm.prologue(3, 1.0, t, q), std::invalid_argument);
}

TEST(JobMonitor, EpilogueWithoutPrologueRejected) {
  JobMonitor jm;
  std::vector<ModeTotals> t = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  EXPECT_THROW(jm.epilogue(9, 1.0, t, q), std::invalid_argument);
}

TEST(JobMonitor, NodeCountChangeRejected) {
  JobMonitor jm;
  std::vector<ModeTotals> t2(2);
  std::vector<std::uint64_t> q2(2, 0);
  jm.prologue(4, 0.0, t2, q2);
  std::vector<ModeTotals> t3(3);
  std::vector<std::uint64_t> q3(3, 0);
  EXPECT_THROW(jm.epilogue(4, 1.0, t3, q3), std::invalid_argument);
}

TEST(JobMonitor, EmptyNodeSpanRejected) {
  JobMonitor jm;
  std::vector<ModeTotals> t;
  std::vector<std::uint64_t> q;
  EXPECT_THROW(jm.prologue(5, 0.0, t, q), std::invalid_argument);
}

TEST(JobMonitor, NonMonotoneNodeDroppedAndReportIncomplete) {
  // A node rebooted mid-job: its epilogue totals are below the prologue
  // baseline.  The delta must come from the surviving node only — never
  // from wrapped uint64 subtraction — and the report must say so.
  JobMonitor jm;
  std::vector<ModeTotals> start = {with_flops(1000, 0), with_flops(1000, 0)};
  std::vector<std::uint64_t> q0 = {10, 10};
  jm.prologue(20, 0.0, start, q0);
  std::vector<ModeTotals> end = {with_flops(5, 0),  // reset: 5 < 1000
                                 with_flops(4000, 0)};
  std::vector<std::uint64_t> q1 = {0, 25};
  const JobCounterReport rep = jm.epilogue(20, 100.0, end, q1);
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.nodes_reset, 1);
  EXPECT_EQ(rep.nodes, 2);
  EXPECT_EQ(rep.delta.user_at(HpmCounter::kFpAdd0), 3000u);
  EXPECT_EQ(rep.quad_surplus, 15u);
}

TEST(JobMonitor, QuadRegressionAloneMarksIncomplete) {
  JobMonitor jm;
  std::vector<ModeTotals> start = {with_flops(10, 0)};
  std::vector<std::uint64_t> q0 = {100};
  jm.prologue(21, 0.0, start, q0);
  std::vector<ModeTotals> end = {with_flops(20, 0)};
  std::vector<std::uint64_t> q1 = {50};
  const JobCounterReport rep = jm.epilogue(21, 1.0, end, q1);
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.nodes_reset, 1);
  EXPECT_EQ(rep.delta.user_at(HpmCounter::kFpAdd0), 0u);
}

TEST(JobMonitor, AbandonClosesPrologueWithIncompleteReport) {
  JobMonitor jm;
  std::vector<ModeTotals> start(3);
  std::vector<std::uint64_t> q(3, 0);
  jm.prologue(30, 100.0, start, q);
  const JobCounterReport rep = jm.abandon(30, 700.0);
  EXPECT_FALSE(jm.pending(30));
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.job_id, 30);
  EXPECT_EQ(rep.nodes, 3);
  EXPECT_DOUBLE_EQ(rep.elapsed_s, 600.0);
  EXPECT_EQ(rep.job_mflops(), 0.0);
}

TEST(JobMonitor, AbandonWithoutPrologueRejected) {
  JobMonitor jm;
  EXPECT_THROW(jm.abandon(31, 0.0), std::invalid_argument);
}

TEST(JobMonitor, IncompleteFactoryCarriesFacts) {
  const JobCounterReport rep = JobCounterReport::incomplete(42, 8, 1234.5);
  EXPECT_FALSE(rep.complete);
  EXPECT_EQ(rep.job_id, 42);
  EXPECT_EQ(rep.nodes, 8);
  EXPECT_DOUBLE_EQ(rep.elapsed_s, 1234.5);
  EXPECT_EQ(rep.quad_surplus, 0u);
}

TEST(JobMonitor, ConcurrentJobsIndependent) {
  JobMonitor jm;
  std::vector<ModeTotals> t = {ModeTotals{}};
  std::vector<std::uint64_t> q = {0};
  jm.prologue(10, 0.0, t, q);
  jm.prologue(11, 5.0, t, q);
  EXPECT_EQ(jm.pending_count(), 2u);
  std::vector<ModeTotals> e = {with_flops(1000, 0)};
  jm.epilogue(10, 10.0, e, q);
  EXPECT_TRUE(jm.pending(11));
  EXPECT_EQ(jm.pending_count(), 1u);
}

}  // namespace
}  // namespace p2sim::rs2hpm
