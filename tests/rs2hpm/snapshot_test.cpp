#include "src/rs2hpm/snapshot.hpp"

#include <gtest/gtest.h>

namespace p2sim::rs2hpm {
namespace {

using hpm::HpmCounter;
using hpm::PerformanceMonitor;
using hpm::PrivilegeMode;

TEST(WrapDelta, PlainDifference) {
  EXPECT_EQ(wrap_delta(100, 250), 150u);
  EXPECT_EQ(wrap_delta(0, 0), 0u);
}

TEST(WrapDelta, AcrossTheWrap) {
  EXPECT_EQ(wrap_delta(0xFFFFFFF0u, 0x10u), 0x20u);
  EXPECT_EQ(wrap_delta(0xFFFFFFFFu, 0x0u), 1u);
}

TEST(WrapDelta, FullPeriodAliasesToZero) {
  // The fundamental limitation: exactly 2^32 events between samples are
  // invisible.  This is why the daemon must sample sub-wrap.
  EXPECT_EQ(wrap_delta(5, 5), 0u);
}

TEST(ModeTotals, AdditionAndSince) {
  ModeTotals a, b;
  a.user[0] = 10;
  a.system[3] = 5;
  b.user[0] = 7;
  b.system[3] = 2;
  const ModeTotals sum = a + b;
  EXPECT_EQ(sum.user[0], 17u);
  EXPECT_EQ(sum.system[3], 7u);
  const ModeTotals d = sum.since(a);
  EXPECT_EQ(d, b);
}

TEST(ModeTotals, Accessors) {
  ModeTotals t;
  t.user[hpm::index_of(HpmCounter::kUserFxu0)] = 4;
  t.system[hpm::index_of(HpmCounter::kUserFxu0)] = 6;
  EXPECT_EQ(t.user_at(HpmCounter::kUserFxu0), 4u);
  EXPECT_EQ(t.system_at(HpmCounter::kUserFxu0), 6u);
  EXPECT_EQ(t.total_at(HpmCounter::kUserFxu0), 10u);
}

TEST(ExtendedCounters, ExtendsBeyond32Bits) {
  PerformanceMonitor mon;
  ExtendedCounters ext;
  ext.attach(mon);

  // Push 3 * 2^32 cycles through the 32-bit counter in sub-wrap slices.
  const std::uint64_t slice = 1ull << 30;  // quarter wrap
  const std::uint64_t total = 12 * slice;
  power2::EventCounts ev;
  ev.cycles = slice;
  for (std::uint64_t pushed = 0; pushed < total; pushed += slice) {
    mon.accumulate(ev, PrivilegeMode::kUser);
    ext.sample(mon);
  }
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserCycles), total);
  // The raw hardware counter wrapped back to zero.
  EXPECT_EQ(mon.bank(PrivilegeMode::kUser).read(HpmCounter::kUserCycles), 0u);
}

TEST(ExtendedCounters, MissedWrapUndercounts) {
  // Pin down the failure mode: a whole wrap between samples is lost.
  PerformanceMonitor mon;
  ExtendedCounters ext;
  ext.attach(mon);
  // Two legal sub-wrap batches crossing a full wrap in total, with no
  // sample in between: the daemon overslept one period.
  power2::EventCounts ev;
  ev.cycles = (1ull << 31) + 9;
  mon.accumulate(ev, PrivilegeMode::kUser);
  mon.accumulate(ev, PrivilegeMode::kUser);  // total = 2^32 + 18, unsampled
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserCycles), 18u);
}

TEST(ExtendedCounters, SampleWithoutAttachPrimes) {
  PerformanceMonitor mon;
  power2::EventCounts ev;
  ev.fxu0_inst = 55;
  mon.accumulate(ev, PrivilegeMode::kUser);
  ExtendedCounters ext;
  ext.sample(mon);  // first sample only establishes the baseline
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserFxu0), 0u);
  mon.accumulate(ev, PrivilegeMode::kUser);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserFxu0), 55u);
}

TEST(ExtendedCounters, TracksBothModes) {
  PerformanceMonitor mon;
  ExtendedCounters ext;
  ext.attach(mon);
  power2::EventCounts u, s;
  u.fxu0_inst = 10;
  s.fxu0_inst = 90;
  mon.accumulate(u, PrivilegeMode::kUser);
  mon.accumulate(s, PrivilegeMode::kSystem);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserFxu0), 10u);
  EXPECT_EQ(ext.totals().system_at(HpmCounter::kUserFxu0), 90u);
}

TEST(ExtendedCounters, ResetTotalsKeepsBaseline) {
  PerformanceMonitor mon;
  ExtendedCounters ext;
  ext.attach(mon);
  power2::EventCounts ev;
  ev.cycles = 100;
  mon.accumulate(ev, PrivilegeMode::kUser);
  ext.sample(mon);
  ext.reset_totals();
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserCycles), 0u);
  mon.accumulate(ev, PrivilegeMode::kUser);
  ext.sample(mon);
  EXPECT_EQ(ext.totals().user_at(HpmCounter::kUserCycles), 100u);
}

}  // namespace
}  // namespace p2sim::rs2hpm
