#include "src/rs2hpm/derived.hpp"

#include <gtest/gtest.h>

namespace p2sim::rs2hpm {
namespace {

using hpm::HpmCounter;

void set_user(ModeTotals& t, HpmCounter c, std::uint64_t v) {
  t.user[hpm::index_of(c)] = v;
}
void set_system(ModeTotals& t, HpmCounter c, std::uint64_t v) {
  t.system[hpm::index_of(c)] = v;
}

ModeTotals one_second_sample() {
  // Counts over 1 second, in events (not millions).
  ModeTotals t;
  set_user(t, HpmCounter::kFpAdd0, 6'000'000);
  set_user(t, HpmCounter::kFpAdd1, 4'000'000);   // adds (incl. fma halves)
  set_user(t, HpmCounter::kFpMul0, 2'000'000);
  set_user(t, HpmCounter::kFpMul1, 1'000'000);
  set_user(t, HpmCounter::kFpMulAdd0, 3'000'000);
  set_user(t, HpmCounter::kFpMulAdd1, 2'000'000);
  set_user(t, HpmCounter::kUserFpu0, 9'000'000);
  set_user(t, HpmCounter::kUserFpu1, 5'000'000);
  set_user(t, HpmCounter::kUserFxu0, 11'000'000);
  set_user(t, HpmCounter::kUserFxu1, 16'000'000);
  set_user(t, HpmCounter::kUserIcu0, 3'000'000);
  set_user(t, HpmCounter::kUserIcu1, 500'000);
  set_user(t, HpmCounter::kUserDcacheMiss, 270'000);
  set_user(t, HpmCounter::kUserTlbMiss, 27'000);
  set_user(t, HpmCounter::kIcacheReload, 14'000);
  set_user(t, HpmCounter::kDmaRead, 24'000);
  set_user(t, HpmCounter::kDmaWrite, 17'000);
  set_system(t, HpmCounter::kUserFxu0, 5'000'000);
  set_system(t, HpmCounter::kUserFxu1, 8'500'000);
  return t;
}

TEST(Derived, FlopBreakdownFollowsPaperAccounting) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.mflops_add, 10.0, 1e-9);
  EXPECT_NEAR(r.mflops_mul, 3.0, 1e-9);
  EXPECT_NEAR(r.mflops_fma, 5.0, 1e-9);
  EXPECT_NEAR(r.mflops_div, 0.0, 1e-9);  // divide-bug campaign data
  EXPECT_NEAR(r.mflops_all, 18.0, 1e-9);
}

TEST(Derived, InstructionRatesPerUnit) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.mips_fpu, 14.0, 1e-9);
  EXPECT_NEAR(r.mips_fpu0, 9.0, 1e-9);
  EXPECT_NEAR(r.mips_fpu1, 5.0, 1e-9);
  EXPECT_NEAR(r.mips_fxu, 27.0, 1e-9);
  EXPECT_NEAR(r.mips_icu, 3.5, 1e-9);
  EXPECT_NEAR(r.mips, 44.5, 1e-9);
}

TEST(Derived, MopsAddsQuadSurplus) {
  const DerivedRates r =
      derive_rates(one_second_sample(), 1.0, /*quad_surplus=*/2'500'000);
  EXPECT_NEAR(r.mops, r.mips + 2.5, 1e-9);
  const DerivedRates r0 = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r0.mops, r0.mips, 1e-9);
}

TEST(Derived, CacheAndTlbRatiosUseFxuDenominator) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.cache_miss_ratio, 0.27 / 27.0, 1e-12);
  EXPECT_NEAR(r.tlb_miss_ratio, 0.027 / 27.0, 1e-12);
  EXPECT_NEAR(r.dcache_miss_mps, 0.27, 1e-9);
  EXPECT_NEAR(r.tlb_miss_mps, 0.027, 1e-9);
  EXPECT_NEAR(r.icache_miss_mps, 0.014, 1e-9);
}

TEST(Derived, FlopsPerMemrefAndFmaFraction) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.flops_per_memref, 18.0 / 27.0, 1e-12);
  // Both halves of each fma count: 2 * 5 / 18.
  EXPECT_NEAR(r.fma_flop_fraction, 10.0 / 18.0, 1e-12);
}

TEST(Derived, UnitAsymmetryRatios) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.fpu0_fpu1_ratio, 9.0 / 5.0, 1e-12);
  EXPECT_NEAR(r.fxu1_fxu0_ratio, 16.0 / 11.0, 1e-12);
}

TEST(Derived, SystemUserFxuRatio) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.system_user_fxu_ratio, 13.5 / 27.0, 1e-12);
}

TEST(Derived, DmaRates) {
  const DerivedRates r = derive_rates(one_second_sample(), 1.0);
  EXPECT_NEAR(r.dma_read_mps, 0.024, 1e-9);
  EXPECT_NEAR(r.dma_write_mps, 0.017, 1e-9);
}

TEST(Derived, ElapsedScalesEverything) {
  const DerivedRates r1 = derive_rates(one_second_sample(), 1.0);
  const DerivedRates r2 = derive_rates(one_second_sample(), 2.0);
  EXPECT_NEAR(r2.mflops_all, r1.mflops_all / 2.0, 1e-9);
  EXPECT_NEAR(r2.mips, r1.mips / 2.0, 1e-9);
  // Ratios are time-independent.
  EXPECT_NEAR(r2.cache_miss_ratio, r1.cache_miss_ratio, 1e-12);
}

TEST(Derived, ZeroElapsedIsAllZero) {
  const DerivedRates r = derive_rates(one_second_sample(), 0.0);
  EXPECT_EQ(r.mflops_all, 0.0);
  EXPECT_EQ(r.mips, 0.0);
}

TEST(Derived, EmptyCountersGiveZeroRatios) {
  const DerivedRates r = derive_rates(ModeTotals{}, 1.0);
  EXPECT_EQ(r.cache_miss_ratio, 0.0);
  EXPECT_EQ(r.fpu0_fpu1_ratio, 0.0);
  EXPECT_EQ(r.fma_flop_fraction, 0.0);
  EXPECT_EQ(r.system_user_fxu_ratio, 0.0);
}

}  // namespace
}  // namespace p2sim::rs2hpm
