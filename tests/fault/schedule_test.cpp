#include "src/fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p2sim::fault {
namespace {

FaultConfig all_on() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.node_crashes_per_node_day = 0.5;
  cfg.interval_miss_prob = 0.1;
  cfg.node_sample_loss_prob = 0.1;
  cfg.prologue_loss_prob = 0.1;
  cfg.epilogue_loss_prob = 0.1;
  cfg.record_corruption_prob = 0.1;
  return cfg;
}

TEST(FaultSchedule, DisabledNeverFires) {
  FaultConfig cfg = all_on();
  cfg.enabled = false;
  const FaultSchedule sched(cfg);
  for (std::int64_t t = 0; t < 500; ++t) {
    EXPECT_FALSE(sched.node_crashes(3, t));
    EXPECT_FALSE(sched.interval_missed(t));
    EXPECT_FALSE(sched.node_sample_lost(3, t));
    EXPECT_FALSE(sched.prologue_lost(t));
    EXPECT_FALSE(sched.epilogue_lost(t));
    EXPECT_FALSE(sched.record_corrupted(t));
  }
}

TEST(FaultSchedule, ZeroRatesNeverFire) {
  FaultConfig cfg;
  cfg.enabled = true;  // enabled but every rate left at zero
  const FaultSchedule sched(cfg);
  for (std::int64_t t = 0; t < 500; ++t) {
    EXPECT_FALSE(sched.node_crashes(0, t));
    EXPECT_FALSE(sched.interval_missed(t));
    EXPECT_FALSE(sched.node_sample_lost(0, t));
  }
}

TEST(FaultSchedule, DeterministicAndOrderIndependent) {
  const FaultSchedule a(all_on());
  const FaultSchedule b(all_on());
  // Query b in the reverse order: answers must still match a's.
  std::vector<bool> fwd;
  for (std::int64_t t = 0; t < 300; ++t) {
    fwd.push_back(a.node_sample_lost(static_cast<int>(t % 7), t));
  }
  for (std::int64_t t = 299; t >= 0; --t) {
    EXPECT_EQ(b.node_sample_lost(static_cast<int>(t % 7), t),
              fwd[static_cast<std::size_t>(t)]);
  }
}

TEST(FaultSchedule, SeedChangesTheSchedule) {
  FaultConfig other = all_on();
  other.seed ^= 0x1234;
  const FaultSchedule a(all_on());
  const FaultSchedule b(other);
  int differing = 0;
  for (std::int64_t t = 0; t < 1000; ++t) {
    differing += a.interval_missed(t) != b.interval_missed(t);
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultSchedule, DomainsAreIndependent) {
  // The same coordinates through different fault domains must not be
  // correlated: a missed interval must not imply a lost node sample.
  const FaultSchedule sched(all_on());
  int both = 0, misses = 0;
  for (std::int64_t t = 0; t < 5000; ++t) {
    const bool miss = sched.interval_missed(t);
    misses += miss;
    both += miss && sched.node_sample_lost(0, t);
  }
  ASSERT_GT(misses, 0);
  // P(both) ~ 0.01 of 5000 = ~50; perfect correlation would give ~500.
  EXPECT_LT(both, misses / 2);
}

TEST(FaultSchedule, RatesMatchProbabilities) {
  const FaultSchedule sched(all_on());
  int hits = 0;
  const int trials = 20000;
  for (std::int64_t t = 0; t < trials; ++t) {
    hits += sched.node_sample_lost(1, t);
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(FaultSchedule, CrashRateMatchesPerDayExpectation) {
  FaultConfig cfg = all_on();
  cfg.node_crashes_per_node_day = 0.5;
  const FaultSchedule sched(cfg);
  int crashes = 0;
  const std::int64_t days = 2000;
  for (std::int64_t t = 0; t < days * 96; ++t) {
    crashes += sched.node_crashes(0, t);
  }
  const double per_day = static_cast<double>(crashes) / days;
  EXPECT_NEAR(per_day, 0.5, 0.05);
}

TEST(FaultSchedule, AttemptNumberVariesJobDraws) {
  FaultConfig cfg = all_on();
  cfg.prologue_loss_prob = 0.5;
  const FaultSchedule sched(cfg);
  int differing = 0;
  for (std::int64_t id = 0; id < 200; ++id) {
    differing += sched.prologue_lost(id, 0) != sched.prologue_lost(id, 1);
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultSchedule, RejectsInvalidConfig) {
  FaultConfig cfg = all_on();
  cfg.interval_miss_prob = 1.5;
  EXPECT_THROW(FaultSchedule{cfg}, std::invalid_argument);
  cfg = all_on();
  cfg.node_crashes_per_node_day = -1.0;
  EXPECT_THROW(FaultSchedule{cfg}, std::invalid_argument);
  cfg = all_on();
  cfg.reboot_downtime_intervals = 0;
  EXPECT_THROW(FaultSchedule{cfg}, std::invalid_argument);
}

TEST(FaultSchedule, ReferenceProfileIsValidAndEnabled) {
  const FaultConfig ref = FaultConfig::reference();
  EXPECT_TRUE(ref.enabled);
  EXPECT_GT(ref.node_crashes_per_node_day, 0.0);
  EXPECT_GT(ref.epilogue_loss_prob, 0.0);
  EXPECT_NO_THROW(FaultSchedule{ref});
}

TEST(FaultInjector, LogsOnlyWhenFaultsFire) {
  FaultConfig cfg = all_on();
  cfg.interval_miss_prob = 1.0;
  cfg.node_sample_loss_prob = 0.0;
  FaultInjector inject(cfg);
  EXPECT_TRUE(inject.miss_interval(0));
  EXPECT_TRUE(inject.miss_interval(1));
  EXPECT_FALSE(inject.lose_node_sample(0, 0));
  EXPECT_EQ(inject.log().intervals_missed, 2);
  EXPECT_EQ(inject.log().node_samples_lost, 0);
}

TEST(FaultInjector, SideEffectNotesAccumulate) {
  FaultInjector inject(all_on());
  inject.note_node_down();
  inject.note_node_down();
  inject.note_job_killed(true);
  inject.note_job_killed(false);
  inject.note_job_requeued();
  EXPECT_EQ(inject.log().down_node_intervals, 2);
  EXPECT_EQ(inject.log().jobs_killed, 2);
  EXPECT_EQ(inject.log().jobs_killed_sans_prologue, 1);
  EXPECT_EQ(inject.log().jobs_requeued, 1);
}

TEST(CorruptRecords, DeterministicAndCountsMutations) {
  FaultConfig cfg = all_on();
  cfg.record_corruption_prob = 0.5;
  const FaultSchedule sched(cfg);
  std::string base = "header line\n";
  for (int i = 0; i < 40; ++i) {
    base += "I,1,2,3,4,5,6\n";
  }
  std::string a = base;
  std::string b = base;
  const std::int64_t na = corrupt_records(a, sched);
  const std::int64_t nb = corrupt_records(b, sched);
  EXPECT_EQ(na, nb);
  EXPECT_EQ(a, b);
  EXPECT_GT(na, 0);
  EXPECT_NE(a, base);
  // The header line is never touched.
  EXPECT_EQ(a.substr(0, a.find('\n')), "header line");
}

TEST(CorruptRecords, ZeroProbabilityLeavesFileAlone) {
  FaultConfig cfg = all_on();
  cfg.record_corruption_prob = 0.0;
  const FaultSchedule sched(cfg);
  std::string text = "header\nI,1,2\nI,3,4\n";
  const std::string before = text;
  EXPECT_EQ(corrupt_records(text, sched), 0);
  EXPECT_EQ(text, before);
}

}  // namespace
}  // namespace p2sim::fault
