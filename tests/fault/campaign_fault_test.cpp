// End-to-end: a short fault-injected campaign must complete, account for
// every injected fault, and leave faults-disabled campaigns untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/analysis/loss.hpp"
#include "src/analysis/record_io.hpp"
#include "src/core/registry.hpp"
#include "src/core/simulation.hpp"

namespace p2sim {
namespace {

core::Sp2Config faulted_config() {
  core::Sp2Config cfg = core::Sp2Config::small(20, 16);
  cfg.faults() = fault::FaultConfig::reference();
  // Push the rates up so every fault class fires in 20 days on 16 nodes.
  cfg.faults().node_crashes_per_node_day = 0.05;
  cfg.faults().interval_miss_prob = 0.02;
  cfg.faults().node_sample_loss_prob = 0.01;
  cfg.faults().prologue_loss_prob = 0.05;
  cfg.faults().epilogue_loss_prob = 0.08;
  return cfg;
}

TEST(FaultCampaign, DisabledFaultsAreBitIdentical) {
  core::Sp2Config plain = core::Sp2Config::small(5, 8);
  core::Sp2Config gated = core::Sp2Config::small(5, 8);
  // Nonzero rates but the master switch off: nothing may change.
  gated.faults() = fault::FaultConfig::reference();
  gated.faults().enabled = false;

  core::Sp2Simulation a(plain);
  core::Sp2Simulation b(gated);
  const workload::CampaignResult& ra = a.campaign();
  const workload::CampaignResult& rb = b.campaign();
  ASSERT_EQ(ra.intervals.size(), rb.intervals.size());
  for (std::size_t i = 0; i < ra.intervals.size(); ++i) {
    EXPECT_EQ(ra.intervals[i].delta.user, rb.intervals[i].delta.user);
    EXPECT_EQ(ra.intervals[i].delta.system, rb.intervals[i].delta.system);
    EXPECT_EQ(ra.intervals[i].nodes_sampled, rb.intervals[i].nodes_sampled);
  }
  EXPECT_EQ(ra.jobs.size(), rb.jobs.size());
  EXPECT_DOUBLE_EQ(ra.total_busy_node_seconds, rb.total_busy_node_seconds);
  EXPECT_EQ(rb.faults.total_faults(), 0);
}

TEST(FaultCampaign, FaultFreeCampaignHasFullCoverage) {
  core::Sp2Simulation sim(core::Sp2Config::small(5, 8));
  const analysis::MeasurementLoss loss = sim.measurement_loss();
  EXPECT_EQ(loss.intervals_missing(), 0);
  EXPECT_EQ(loss.node_samples_expected, loss.node_samples_clean);
  EXPECT_EQ(loss.days_full_coverage, loss.days_total);
  EXPECT_TRUE(loss.reconciled());
  for (const analysis::DayStats& d : sim.days()) {
    EXPECT_DOUBLE_EQ(d.coverage, 1.0);
  }
}

TEST(FaultCampaign, CompletesAndReconcilesUnderFaults) {
  core::Sp2Simulation sim(faulted_config());
  const workload::CampaignResult& result = sim.campaign();

  // The campaign actually lost data...
  EXPECT_GT(result.faults.total_faults(), 0);
  EXPECT_GT(result.faults.node_crashes, 0);
  EXPECT_GT(result.faults.intervals_missed, 0);
  EXPECT_GT(result.faults.jobs_killed, 0);

  // ...and the loss report accounts for every injected fault.
  const analysis::MeasurementLoss loss = sim.measurement_loss();
  EXPECT_TRUE(loss.intervals_reconciled);
  EXPECT_TRUE(loss.node_samples_reconciled);
  EXPECT_TRUE(loss.jobs_reconciled);
  EXPECT_LT(loss.mean_coverage, 1.0);
  EXPECT_GT(loss.mean_coverage, 0.5);

  // Killed jobs were requeued, and incomplete records are excluded from
  // the analysis sample.
  EXPECT_EQ(result.faults.jobs_killed, result.faults.jobs_requeued);
  EXPECT_GT(result.jobs.incomplete_count(), 0u);
  for (const pbs::JobRecord* rec : result.jobs.analyzed()) {
    EXPECT_TRUE(rec->report.complete);
  }
}

TEST(FaultCampaign, IntervalDeltasStaySane) {
  // The original failure mode this subsystem guards against: a counter
  // reset subtracted from a larger baseline wraps uint64 and produces
  // astronomical deltas.  Every recorded interval must stay physically
  // plausible (cycles <= clock * interval * nodes, with slack).
  core::Sp2Simulation sim(faulted_config());
  const workload::CampaignResult& result = sim.campaign();
  const double clock_hz = result.intervals.empty()
                              ? 0.0
                              : util::MachineClock::kHz;
  for (const rs2hpm::IntervalRecord& rec : result.intervals) {
    const double bound = 2.0 * clock_hz * 900.0 * rec.nodes_sampled + 1e9;
    for (std::uint64_t v : rec.delta.user) {
      EXPECT_LT(static_cast<double>(v), bound);
    }
    EXPECT_LE(rec.nodes_sampled + rec.nodes_reprimed, rec.nodes_expected);
  }
}

TEST(FaultCampaign, CoverageFilterDropsLossyDays) {
  core::Sp2Config cfg = faulted_config();
  cfg.faults().interval_miss_prob = 0.5;  // half the samples vanish
  core::Sp2Simulation sim(cfg);
  std::int64_t usable = 0;
  for (const analysis::DayStats& d : sim.days()) {
    EXPECT_LT(d.coverage, 1.0);
    if (d.coverage >= 0.9) ++usable;
  }
  const auto filtered = analysis::filter_days(sim.days(), -1.0, 0.9);
  EXPECT_EQ(static_cast<std::int64_t>(filtered.size()), usable);
}

TEST(FaultCampaign, RecordsSurviveStorageCorruption) {
  // Save the faulted campaign, rot the file, reload with recovery: every
  // uncorrupted record must survive and every corrupted line be reported.
  core::Sp2Simulation sim(faulted_config());
  std::ostringstream save;
  analysis::save_intervals(save, sim.campaign().intervals);

  fault::FaultConfig rot;
  rot.enabled = true;
  rot.record_corruption_prob = 0.05;
  const fault::FaultSchedule rot_sched(rot);
  std::string text = save.str();
  const std::int64_t corrupted = fault::corrupt_records(text, rot_sched);
  ASSERT_GT(corrupted, 0);

  // The commit trailer is the last payload line; if the rot schedule hit
  // it the file reads as truncated and one of the `corrupted` lines was
  // the trailer, not a record.
  const std::int64_t trailer_line =
      static_cast<std::int64_t>(sim.campaign().intervals.size()) + 1;
  const bool trailer_hit = rot_sched.record_corrupted(trailer_line);
  const std::int64_t records_lost = corrupted - (trailer_hit ? 1 : 0);

  std::istringstream load(text);
  analysis::ParseReport report;
  const auto recovered = analysis::load_intervals(load, &report);
  EXPECT_EQ(report.lines_skipped, corrupted);
  EXPECT_EQ(recovered.size(),
            sim.campaign().intervals.size() -
                static_cast<std::size_t>(records_lost));
  EXPECT_EQ(report.committed, !trailer_hit);
  EXPECT_EQ(report.truncated, trailer_hit);
  // The report attaches only the first max_issues offending lines (the
  // skip count above still covers every one); raising the cap recovers
  // the full listing.
  EXPECT_EQ(static_cast<std::int64_t>(report.issues.size()),
            std::min<std::int64_t>(report.max_issues, corrupted));
  std::istringstream reload(text);
  analysis::ParseReport full;
  full.max_issues = corrupted;
  (void)analysis::load_intervals(reload, &full);
  EXPECT_EQ(full.issues.size(), static_cast<std::size_t>(corrupted));
  const std::string rendered = analysis::format_parse_report(report);
  if (corrupted > report.max_issues) {
    EXPECT_NE(rendered.find("and"), std::string::npos);
  }
}

TEST(FaultCampaign, RegistryExposesFaultExperiment) {
  EXPECT_NE(core::find_experiment("fault_campaign"), nullptr);
  EXPECT_NE(core::find_experiment("loss"), nullptr);
  EXPECT_EQ(core::find_experiment("no_such_thing"), nullptr);
  EXPECT_FALSE(core::experiments().empty());

  core::Sp2Simulation sim(core::Sp2Config::small(3, 8));
  const std::string out = core::find_experiment("loss")->run(sim);
  EXPECT_NE(out.find("Measurement loss report"), std::string::npos);
}

}  // namespace
}  // namespace p2sim
