// The annotation layer's one compile-time contract: every macro in
// src/check/annotate.hpp expands to nothing (P2SIM_PAR_SAFE_FILE to a
// vacuous static_assert), in every build type.  The macros exist for
// tools/detlint.py; if one ever grew a runtime expansion it would change
// codegen behind the auditor's back, so this test pins the expansions at
// compile time via the stringize operator -- a non-empty expansion
// changes the literal's length and the static_asserts below stop
// compiling.

#include "src/check/annotate.hpp"

#include <gtest/gtest.h>

namespace {

#define P2SIM_TEST_STR2(x) #x
#define P2SIM_TEST_STR(x) P2SIM_TEST_STR2(x)

// sizeof("") == 1: just the terminating NUL.  Any token surviving
// expansion would make the literal longer.
static_assert(sizeof(P2SIM_TEST_STR(P2SIM_PAR_SAFE)) == 1,
              "P2SIM_PAR_SAFE must expand to nothing");
static_assert(sizeof(P2SIM_TEST_STR(P2SIM_SERIAL_ONLY)) == 1,
              "P2SIM_SERIAL_ONLY must expand to nothing");
static_assert(sizeof(P2SIM_TEST_STR(P2SIM_GUARDED_BY(some_mutex))) == 1,
              "P2SIM_GUARDED_BY(m) must expand to nothing");
static_assert(sizeof(P2SIM_TEST_STR(P2SIM_ORDERED_FOLD)) == 1,
              "P2SIM_ORDERED_FOLD must expand to nothing");

#undef P2SIM_TEST_STR
#undef P2SIM_TEST_STR2

// Every documented placement compiles: function annotations prefix a
// declaration, P2SIM_GUARDED_BY trails a member (with and without an
// initializer), P2SIM_ORDERED_FOLD prefixes a declaration, and
// P2SIM_PAR_SAFE_FILE stands alone as a namespace-scope declaration.
P2SIM_PAR_SAFE_FILE;

struct Annotated {
  P2SIM_PAR_SAFE int par_safe_fn() const { return 1; }
  P2SIM_SERIAL_ONLY int serial_fn() const { return 2; }

  int plain_ P2SIM_GUARDED_BY(mu_) = 3;
  int uninit_ P2SIM_GUARDED_BY(mu_){4};
  P2SIM_ORDERED_FOLD int fold_source_ = 5;
  int mu_ = 0;  // stand-in for a mutex; the macro never names its type
};

TEST(AnnotateTest, AnnotatedCodeBehavesIdentically) {
  const Annotated a;
  EXPECT_EQ(a.par_safe_fn(), 1);
  EXPECT_EQ(a.serial_fn(), 2);
  EXPECT_EQ(a.plain_, 3);
  EXPECT_EQ(a.uninit_, 4);
  EXPECT_EQ(a.fold_source_, 5);
}

}  // namespace
