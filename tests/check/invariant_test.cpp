// The invariant auditor: every registered Table 1 identity must stay
// silent on counts the real model produces and fire loudly on corrupted
// counts.  This test file is compiled with P2SIM_CHECKS_ENABLED=1
// regardless of build type, so the death-test paths exist even in Release.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/check/check.hpp"
#include "src/check/invariants.hpp"
#include "src/hpm/monitor.hpp"
#include "src/power2/core.hpp"
#include "src/workload/kernels.hpp"

namespace p2sim {
namespace {

using check::AuditScope;
using check::InvariantAuditor;
using check::Totals64;
using check::Violation;
using power2::EventCounts;

bool fires(const std::vector<Violation>& vs, const std::string& identity) {
  for (const Violation& v : vs) {
    if (v.identity == identity) return true;
  }
  return false;
}

TEST(InvariantAuditor, ThisBinaryHasChecksCompiledIn) {
  EXPECT_TRUE(check::checks_enabled());
}

TEST(InvariantAuditor, EveryRuleIsNamedAndCitesThePaper) {
  const InvariantAuditor& a = InvariantAuditor::paper();
  EXPECT_GE(a.event_rules().size(), 11u);
  EXPECT_GE(a.totals_rules().size(), 4u);
  std::set<std::string> names;
  for (const auto& r : a.event_rules()) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.paper_ref.empty()) << r.name;
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate rule " << r.name;
  }
  for (const auto& r : a.totals_rules()) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.paper_ref.empty()) << r.name;
    EXPECT_TRUE(names.insert(r.name).second) << "duplicate rule " << r.name;
  }
}

// --- clean counts stay silent -------------------------------------------

TEST(InvariantAuditor, CleanNpbRunPassesAllIdentities) {
  power2::Power2Core core;
  const power2::RunResult res = core.run(workload::npb_bt_like());
  ASSERT_GT(res.counts.instructions(), 0u);
  EXPECT_TRUE(InvariantAuditor::paper()
                  .audit_events(res.counts, AuditScope::kExact)
                  .empty());
}

TEST(InvariantAuditor, CleanSequentialSweepPassesAllIdentities) {
  power2::Power2Core core;
  const power2::RunResult res = core.run(workload::sequential_sweep());
  EXPECT_TRUE(InvariantAuditor::paper()
                  .audit_events(res.counts, AuditScope::kExact)
                  .empty());
}

TEST(InvariantAuditor, ConsistentTotalsPassAllIdentities) {
  Totals64 t{};
  t[hpm::index_of(hpm::HpmCounter::kUserFxu0)] = 1000;
  t[hpm::index_of(hpm::HpmCounter::kUserFxu1)] = 900;
  t[hpm::index_of(hpm::HpmCounter::kUserDcacheMiss)] = 50;
  t[hpm::index_of(hpm::HpmCounter::kUserTlbMiss)] = 3;
  t[hpm::index_of(hpm::HpmCounter::kFpAdd0)] = 400;
  t[hpm::index_of(hpm::HpmCounter::kFpMulAdd0)] = 300;
  t[hpm::index_of(hpm::HpmCounter::kDcacheReload)] = 50;
  t[hpm::index_of(hpm::HpmCounter::kDcacheStore)] = 20;
  EXPECT_TRUE(InvariantAuditor::paper().audit_totals(t).empty());
}

// --- each identity fires on counts corrupted against it ------------------

TEST(InvariantAuditor, FmaAddHalfFoldedFires) {
  EventCounts ev;
  ev.fp_fma0 = 5;
  ev.fp_add0 = 1;  // fma adds must be folded into fp_add, so add >= fma
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "fma-add-half-folded"));
}

TEST(InvariantAuditor, FmaCountsTwiceAsFlopsFires) {
  EventCounts ev;
  ev.fp_fma0 = 3;  // flops() = 3 but 2*fma = 6: accounting broken
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "fma-counts-twice-as-flops"));
}

TEST(InvariantAuditor, QuadCountsOnceFires) {
  EventCounts ev;
  ev.quad_inst = 2;
  ev.memory_inst = 1;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "quad-counts-once"));
}

TEST(InvariantAuditor, DcacheMissBoundFires) {
  EventCounts ev;
  ev.dcache_miss = 4;
  ev.memory_inst = 3;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "dcache-miss-bounded-by-references"));
}

TEST(InvariantAuditor, TlbMissBoundFires) {
  EventCounts ev;
  ev.tlb_miss = 4;
  ev.memory_inst = 3;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "tlb-miss-bounded-by-references"));
}

TEST(InvariantAuditor, ReloadRequiresMissFires) {
  EventCounts ev;
  ev.dcache_reload = 2;
  ev.dcache_miss = 1;
  ev.memory_inst = 1;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "reload-requires-miss"));
}

TEST(InvariantAuditor, DirtyEvictionBoundFires) {
  EventCounts ev;
  ev.dcache_store = 3;
  ev.dcache_reload = 2;
  ev.dcache_miss = 2;
  ev.memory_inst = 2;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "dirty-eviction-bound"));
}

TEST(InvariantAuditor, FmaOncePerInstructionFiresOnlyAtExactScope) {
  EventCounts ev;
  ev.fp_add0 = 2;
  ev.fpu0_inst = 1;  // more add ops than FPU instructions: impossible
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "fma-counts-once-per-instruction"));
  // Scaled batches round each field independently; sum identities are
  // deliberately not applied there.
  EXPECT_FALSE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "fma-counts-once-per-instruction"));
}

TEST(InvariantAuditor, MemoryOpsOnFxuFiresOnlyAtExactScope) {
  EventCounts ev;
  ev.memory_inst = 3;  // loads/stores with no FXU instructions at all
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "memory-ops-execute-on-fxu"));
  EXPECT_FALSE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled),
      "memory-ops-execute-on-fxu"));
}

TEST(InvariantAuditor, DispatchCoversCompletionFires) {
  EventCounts ev;
  ev.fxu0_inst = 5;
  ev.dispatched_inst = 1;  // completed more than was dispatched
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "dispatch-covers-completion"));
  // Producers that do not model dispatch leave the field at zero; the
  // rule must not fire on them.
  ev.dispatched_inst = 0;
  EXPECT_FALSE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "dispatch-covers-completion"));
}

TEST(InvariantAuditor, StallCyclesWithinTotalFires) {
  EventCounts ev;
  ev.cycles = 10;
  ev.stall_dcache = 20;
  EXPECT_TRUE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "stall-cycles-within-total"));
  // A sub-batch with no timebase is exempt.
  ev.cycles = 0;
  EXPECT_FALSE(fires(
      InvariantAuditor::paper().audit_events(ev, AuditScope::kExact),
      "stall-cycles-within-total"));
}

TEST(InvariantAuditor, TotalsFmaAddHalfFoldedFires) {
  Totals64 t{};
  t[hpm::index_of(hpm::HpmCounter::kFpMulAdd0)] = 5;
  t[hpm::index_of(hpm::HpmCounter::kFpAdd0)] = 1;
  EXPECT_TRUE(fires(InvariantAuditor::paper().audit_totals(t),
                    "totals-fma-add-half-folded"));
}

TEST(InvariantAuditor, TotalsDirtyEvictionBoundFires) {
  Totals64 t{};
  t[hpm::index_of(hpm::HpmCounter::kDcacheStore)] = 5;
  t[hpm::index_of(hpm::HpmCounter::kDcacheReload)] = 1;
  EXPECT_TRUE(fires(InvariantAuditor::paper().audit_totals(t),
                    "totals-dirty-eviction-bound"));
}

TEST(InvariantAuditor, TotalsTlbMissVsFxuFires) {
  Totals64 t{};
  t[hpm::index_of(hpm::HpmCounter::kUserTlbMiss)] = 5;
  EXPECT_TRUE(fires(InvariantAuditor::paper().audit_totals(t),
                    "totals-tlb-miss-vs-fxu"));
}

TEST(InvariantAuditor, TotalsDcacheMissVsFxuFires) {
  Totals64 t{};
  t[hpm::index_of(hpm::HpmCounter::kUserDcacheMiss)] = 5;
  EXPECT_TRUE(fires(InvariantAuditor::paper().audit_totals(t),
                    "totals-dcache-miss-vs-fxu"));
}

// --- custom rule registration -------------------------------------------

TEST(InvariantAuditor, CustomRulesCanBeRegistered) {
  InvariantAuditor a;
  const std::size_t before = a.event_rules().size();
  a.add_event_rule({"always-fires", "test-only rule", false,
                    [](const EventCounts&) -> std::optional<std::string> {
                      return "synthetic";
                    }});
  EXPECT_EQ(a.event_rules().size(), before + 1);
  EventCounts ev;
  EXPECT_TRUE(fires(a.audit_events(ev, AuditScope::kScaled), "always-fires"));
}

// --- enforcement aborts with a labelled report ---------------------------

using InvariantDeathTest = ::testing::Test;

TEST(InvariantDeathTest, EnforceAbortsNamingTheBrokenIdentity) {
  EventCounts ev;
  ev.fp_fma0 = 5;
  ev.fp_add0 = 1;
  const auto violations =
      InvariantAuditor::paper().audit_events(ev, AuditScope::kScaled);
  ASSERT_FALSE(violations.empty());
  EXPECT_DEATH(check::enforce(violations, "invariant_test-site"),
               "invariant violated.*invariant_test-site.*"
               "fma-add-half-folded");
}

TEST(InvariantDeathTest, EnforceIsSilentOnEmptyViolationList) {
  check::enforce({}, "invariant_test-site");  // must not abort
}

TEST(InvariantDeathTest, InvariantMacroAbortsWithContext) {
  EXPECT_DEATH(
      P2SIM_INVARIANT(1 + 1 == 3, "arithmetic is broken"),
      "invariant violated.*1 \\+ 1 == 3.*arithmetic is broken");
}

TEST(InvariantDeathTest, CheckMacroAbortsWithContext) {
  EXPECT_DEATH(P2SIM_CHECK(false, "sanity context"),
               "check violated.*sanity context");
}

// --- the monitor's own audit hook ---------------------------------------

TEST(InvariantDeathTest, MonitorAccumulateRejectsCorruptBatch) {
  if (!check::library_checks_enabled()) {
    GTEST_SKIP() << "library built without checks (Release)";
  }
  hpm::PerformanceMonitor mon;
  EventCounts bad;
  bad.fp_fma0 = 5;
  bad.fp_add0 = 1;
  EXPECT_DEATH(mon.accumulate(bad, hpm::PrivilegeMode::kUser),
               "fma-add-half-folded");
}

TEST(InvariantAuditor, MonitorAccumulateAcceptsCleanNpbCounts) {
  power2::Power2Core core;
  const power2::RunResult res = core.run(workload::npb_bt_like());
  hpm::PerformanceMonitor mon;
  mon.accumulate(res.counts, hpm::PrivilegeMode::kUser);  // must not abort
  EXPECT_GT(
      mon.bank(hpm::PrivilegeMode::kUser).read(hpm::HpmCounter::kUserCycles),
      0u);
}

}  // namespace
}  // namespace p2sim
