// Integration tests: the paper's headline findings must hold on a
// moderately sized campaign (scaled machine, same physics).  These are the
// "shape" checks behind EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/simulation.hpp"
#include "src/workload/kernels.hpp"

namespace p2sim::core {
namespace {

// One shared campaign for the whole suite (SetUpTestSuite runs it once).
class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Sp2Config cfg = Sp2Config::small(/*days=*/45, /*nodes=*/48);
    sim_ = new Sp2Simulation(cfg);
    sim_->campaign();
  }
  static void TearDownTestSuite() {
    delete sim_;
    sim_ = nullptr;
  }
  static Sp2Simulation* sim_;
};

Sp2Simulation* PaperClaims::sim_ = nullptr;

TEST_F(PaperClaims, SystemRunsAtAFewPercentOfPeak) {
  // "about 1.3 Gflops, about 3% of peak" — scaled: efficiency in the
  // single-digit percent range.
  const auto f1 = sim_->fig1();
  const double peak_gflops =
      sim_->campaign().num_nodes * util::MachineClock::kPeakMflopsPerNode /
      1000.0;
  const double efficiency = f1.mean_gflops / peak_gflops;
  EXPECT_GT(efficiency, 0.01);
  EXPECT_LT(efficiency, 0.10);
}

TEST_F(PaperClaims, UtilizationIsModerate) {
  // Paper: 64% average, 95% best day.
  const auto f1 = sim_->fig1();
  EXPECT_GT(f1.mean_utilization, 0.35);
  EXPECT_LT(f1.mean_utilization, 0.85);
  EXPECT_GT(f1.max_daily_utilization, f1.mean_utilization);
}

TEST_F(PaperClaims, NoPerformanceTrendOverTime) {
  // "the Figure shows no obvious trend toward increased performance".
  const auto f1 = sim_->fig1();
  // Slope over the campaign stays below ~1.5% of the mean per day.
  EXPECT_LT(std::abs(f1.trend_slope), 0.015 * f1.mean_gflops);
}

TEST_F(PaperClaims, SixteenNodesIsTheMostPopularChoice) {
  EXPECT_EQ(sim_->fig2().most_popular_nodes, 16);
}

TEST_F(PaperClaims, ModerateParallelismDominatesWalltime) {
  // "moderately parallel 16, 32, and 8-node jobs consumed most of the
  // wall clock time".
  const auto f2 = sim_->fig2();
  double total = 0.0, moderate = 0.0;
  for (const auto& b : f2.bins) {
    total += b.total_walltime_s;
    if (b.nodes == 8 || b.nodes == 16 || b.nodes == 32) {
      moderate += b.total_walltime_s;
    }
  }
  EXPECT_GT(moderate / total, 0.5);
}

TEST_F(PaperClaims, PerNodeRateDegradesBeyondTheWideThreshold) {
  // Figure 3: per-node performance collapses beyond the drain threshold
  // (64 nodes on the real machine; scaled here).
  const auto f3 = sim_->fig3();
  if (f3.mean_beyond_64 > 0.0) {
    EXPECT_LT(f3.mean_beyond_64, 0.6 * f3.mean_upto_64);
  }
  // The wide threshold on the scaled machine is 24 nodes.
  double narrow = 0.0, wide = 0.0;
  int narrow_n = 0, wide_n = 0;
  for (const auto& b : f3.bins) {
    if (b.nodes <= 24) {
      narrow += b.mean_mflops_per_node * b.jobs;
      narrow_n += b.jobs;
    } else {
      wide += b.mean_mflops_per_node * b.jobs;
      wide_n += b.jobs;
    }
  }
  if (wide_n > 0) {
    EXPECT_LT(wide / wide_n, narrow / narrow_n);
  }
}

TEST_F(PaperClaims, SixteenNodeHistoryIsFlatButNoisy) {
  // Figure 4: large spread, no improvement trend.
  const auto f4 = sim_->fig4(16);
  ASSERT_GT(f4.job_mflops.size(), 30u);
  EXPECT_GT(f4.stddev, 0.2 * f4.mean);  // wide spread
  // Trend: change across the whole history is small vs the mean.
  const double total_drift =
      f4.trend_slope * static_cast<double>(f4.job_mflops.size());
  EXPECT_LT(std::abs(total_drift), 0.8 * f4.mean);
}

TEST_F(PaperClaims, SystemInterventionAnticorrelatesWithPerformance) {
  // Figure 5: days with high system/user FXU ratios perform poorly.
  const auto f5 = sim_->fig5();
  ASSERT_GT(f5.mflops_per_node.size(), 10u);
  EXPECT_LT(f5.correlation, -0.05);
}

TEST_F(PaperClaims, DivideRowsAreZeroDespiteDividesExecuting) {
  // The monitor bug: Table 3 shows Mflops-div = 0.0 even though ~3% of
  // the workload's operations are divides.
  const auto t3 = sim_->table3();
  for (const auto& row : t3.rows) {
    if (row.label == "Mflops-div") {
      EXPECT_EQ(row.avg, 0.0);
      EXPECT_EQ(row.day, 0.0);
    }
  }
}

TEST_F(PaperClaims, Fpu0CarriesMoreInstructionsThanFpu1) {
  // Table 3 / section 5: the dependence-limited workload loads FPU0
  // (ratio ~1.7 on the real machine).
  const auto t3 = sim_->table3();
  double fpu0 = 0.0, fpu1 = 0.0;
  for (const auto& row : t3.rows) {
    if (row.label == "Mips-Floating Point (Unit 0)") fpu0 = row.avg;
    if (row.label == "Mips-Floating Point (Unit 1)") fpu1 = row.avg;
  }
  EXPECT_GT(fpu0, 1.1 * fpu1);
  EXPECT_LT(fpu0, 4.0 * fpu1);
}

TEST_F(PaperClaims, FxuCarriesTheMemoryTraffic) {
  // FXU instructions (memory-dominated) exceed FPU instructions, and the
  // workload's flops/memref sits near the paper's 0.5-1.0 band.
  const auto t3 = sim_->table3();
  double fxu = 0.0, fpu = 0.0, mflops = 0.0;
  for (const auto& row : t3.rows) {
    if (row.label == "Mips-Fixed Point Unit (Total)") fxu = row.avg;
    if (row.label == "Mips-Floating Point (Total)") fpu = row.avg;
    if (row.label == "Mflops-All") mflops = row.avg;
  }
  EXPECT_GT(fxu, fpu);
  const double flops_per_memref = mflops / fxu;
  EXPECT_GT(flops_per_memref, 0.3);
  EXPECT_LT(flops_per_memref, 1.2);
}

TEST_F(PaperClaims, MemoryHierarchyRatiosInTheTable4Band) {
  const auto t4 = sim_->table4();
  // Workload ~1% cache, ~0.1-0.3% TLB; sequential 3.1%, 0.2%.
  EXPECT_GT(t4.nas_workload.cache_miss_ratio, 0.004);
  EXPECT_LT(t4.nas_workload.cache_miss_ratio, 0.03);
  EXPECT_GT(t4.nas_workload.tlb_miss_ratio, 0.0002);
  EXPECT_LT(t4.nas_workload.tlb_miss_ratio, 0.005);
  EXPECT_LT(t4.nas_workload.cache_miss_ratio,
            t4.sequential.cache_miss_ratio);
  EXPECT_LT(t4.npb_bt.tlb_miss_ratio, t4.nas_workload.tlb_miss_ratio);
  EXPECT_GT(t4.npb_bt.mflops_per_cpu, t4.nas_workload.mflops_per_cpu);
}

TEST_F(PaperClaims, BatchAverageExceedsElapsedAverage) {
  // Batch jobs (>600 s) average more Mflops/node than the machine's
  // elapsed-time average (which includes idle): 19 vs ~9 in the paper.
  const double batch =
      sim_->campaign().jobs.time_weighted_mflops_per_node();
  const auto f1 = sim_->fig1();
  const double elapsed_per_node =
      f1.mean_gflops * 1000.0 / sim_->campaign().num_nodes;
  EXPECT_GT(batch, elapsed_per_node);
}

TEST_F(PaperClaims, MopsRunSlightlyAboveMips) {
  const auto t2 = sim_->table2();
  double mips = 0.0, mops = 0.0;
  for (const auto& row : t2.rows) {
    if (row.label == "Mips") mips = row.avg;
    if (row.label == "Mops") mops = row.avg;
  }
  EXPECT_GT(mops, mips);
  EXPECT_LT(mops, 1.25 * mips);
}

TEST_F(PaperClaims, SingleProcessorCalibrationPeak) {
  // "A single processor matrix multiply ... performs at approximately
  // 240 Mflops", about 90% of the 267 Mflops peak.
  const auto r = sim_->run_kernel(workload::blocked_matmul());
  EXPECT_GT(r.mflops(), 0.8 * util::MachineClock::kPeakMflopsPerNode);
  EXPECT_LT(r.mflops(), util::MachineClock::kPeakMflopsPerNode);
}

}  // namespace
}  // namespace p2sim::core
