#include "src/core/simulation.hpp"

#include <gtest/gtest.h>

#include "src/workload/kernels.hpp"

namespace p2sim::core {
namespace {

Sp2Config quick() { return Sp2Config::small(/*days=*/8, /*nodes=*/16); }

TEST(Sp2Config, SmallScalesTheMachine) {
  const Sp2Config cfg = Sp2Config::small(10, 32);
  EXPECT_EQ(cfg.driver.days, 10);
  EXPECT_EQ(cfg.driver.num_nodes, 32);
  // Node choices wider than the machine are dropped.
  for (int n : cfg.driver.jobgen.node_choices) EXPECT_LE(n, 32);
  // The day filter keeps the paper's per-node severity.
  EXPECT_NEAR(cfg.table_min_gflops, 2.0 * 32 / 144.0, 1e-12);
}

TEST(Sp2Simulation, LazyCampaignIsConsistent) {
  Sp2Simulation sim(quick());
  const auto& c1 = sim.campaign();
  const auto& c2 = sim.campaign();
  EXPECT_EQ(&c1, &c2);  // computed once
  EXPECT_EQ(sim.days().size(), static_cast<std::size_t>(8));
}

TEST(Sp2Simulation, TablesComeFromTheCampaign) {
  Sp2Simulation sim(quick());
  const auto t2 = sim.table2();
  EXPECT_EQ(t2.total_days, 8);
  const auto t3 = sim.table3();
  EXPECT_EQ(t3.rows.size(), 17u);
  const auto t4 = sim.table4();
  EXPECT_GT(t4.sequential.cache_miss_ratio, 0.02);
}

TEST(Sp2Simulation, FiguresAreServed) {
  Sp2Simulation sim(quick());
  EXPECT_EQ(sim.fig1().day.size(), 8u);
  EXPECT_FALSE(sim.fig2().bins.empty());
  EXPECT_FALSE(sim.fig3().bins.empty());
  const auto f4 = sim.fig4(16);
  EXPECT_FALSE(f4.job_mflops.empty());
  const auto f5 = sim.fig5();
  EXPECT_FALSE(f5.mflops_per_node.empty());
}

TEST(Sp2Simulation, RunKernelUsesTheConfiguredCore) {
  Sp2Simulation sim(quick());
  const auto r = sim.run_kernel(workload::blocked_matmul());
  EXPECT_GT(r.mflops(), 200.0);
}

TEST(Sp2Simulation, DeterministicAcrossInstances) {
  Sp2Simulation a(quick()), b(quick());
  EXPECT_EQ(a.campaign().jobs.size(), b.campaign().jobs.size());
  EXPECT_DOUBLE_EQ(a.fig1().mean_gflops, b.fig1().mean_gflops);
}

}  // namespace
}  // namespace p2sim::core
