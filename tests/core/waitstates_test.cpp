// End-to-end tests for the wait-state counter selection: the experiment
// the paper's conclusions propose, run on a scaled campaign.
#include <gtest/gtest.h>

#include "src/analysis/daily.hpp"
#include "src/util/stats.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::core {
namespace {

workload::DriverConfig wait_config() {
  workload::DriverConfig cfg;
  cfg.num_nodes = 24;
  cfg.days = 30;
  cfg.jobs_per_day = 42.0 * 24 / 144.0;
  cfg.jobgen.node_choices = {1, 2, 4, 8, 16};
  cfg.jobgen.node_weights = {4, 3, 6, 14, 22};
  cfg.sched.drain_threshold_nodes = 12;
  cfg.node.monitor.selection = hpm::CounterSelection::kWaitStates;
  return cfg;
}

class WaitStates : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new workload::CampaignResult(
        workload::run_campaign(wait_config()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static workload::CampaignResult* result_;
};

workload::CampaignResult* WaitStates::result_ = nullptr;

TEST_F(WaitStates, CampaignRecordsItsSelection) {
  EXPECT_EQ(result_->selection, hpm::CounterSelection::kWaitStates);
}

TEST_F(WaitStates, WaitFractionsAreVisibleAndSane) {
  const auto days = analysis::daily_stats(*result_);
  bool any = false;
  for (const auto& d : days) {
    EXPECT_GE(d.per_node.comm_wait_fraction, 0.0);
    EXPECT_LE(d.per_node.comm_wait_fraction, 1.0);
    EXPECT_GE(d.per_node.io_wait_fraction, 0.0);
    EXPECT_LE(d.per_node.io_wait_fraction, 1.0);
    if (d.per_node.comm_wait_fraction > 0.01) any = true;
  }
  EXPECT_TRUE(any) << "no day showed communication wait";
}

TEST_F(WaitStates, DivideRowsStayZero) {
  // The slots carry wait cycles; divide rates must not leak through.
  const auto days = analysis::daily_stats(*result_);
  for (const auto& d : days) {
    EXPECT_EQ(d.per_node.mflops_div, 0.0);
  }
}

TEST_F(WaitStates, OtherCountersUnaffectedBySelection) {
  // The same campaign under the NAS selection produces identical
  // non-divide counters (the selection only changes two slots).
  workload::DriverConfig nas = wait_config();
  nas.node.monitor.selection = hpm::CounterSelection::kNasDefault;
  const auto nas_result = workload::run_campaign(nas);
  ASSERT_EQ(nas_result.intervals.size(), result_->intervals.size());
  using hpm::HpmCounter;
  for (std::size_t i = 0; i < result_->intervals.size(); ++i) {
    const auto& a = result_->intervals[i].delta;
    const auto& b = nas_result.intervals[i].delta;
    EXPECT_EQ(a.user_at(HpmCounter::kUserCycles),
              b.user_at(HpmCounter::kUserCycles));
    EXPECT_EQ(a.user_at(HpmCounter::kFpAdd0), b.user_at(HpmCounter::kFpAdd0));
    EXPECT_EQ(a.user_at(HpmCounter::kUserFxu0),
              b.user_at(HpmCounter::kUserFxu0));
  }
}

TEST_F(WaitStates, TotalWaitAnticorrelatesWithPerformance) {
  // The causal correlation the NAS selection could not draw.
  const auto days = analysis::daily_stats(*result_);
  std::vector<double> mflops, wait;
  for (const auto& d : days) {
    if (d.utilization < 0.15) continue;
    mflops.push_back(d.per_node.mflops_all / std::max(d.utilization, 1e-9));
    wait.push_back(d.per_node.comm_wait_fraction +
                   d.per_node.io_wait_fraction);
  }
  ASSERT_GT(mflops.size(), 5u);
  EXPECT_LT(util::pearson(wait, mflops), 0.1);
}

}  // namespace
}  // namespace p2sim::core
