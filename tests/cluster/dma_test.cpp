#include "src/cluster/dma.hpp"

#include <gtest/gtest.h>

namespace p2sim::cluster {
namespace {

TEST(DmaConfig, TransferSizeMixesFourAndEightWords) {
  // "A single transfer can represent either 4 or 8 words" = 32 or 64 bytes.
  EXPECT_DOUBLE_EQ(DmaConfig{.eight_word_fraction = 0.0}.avg_transfer_bytes(),
                   32.0);
  EXPECT_DOUBLE_EQ(DmaConfig{.eight_word_fraction = 1.0}.avg_transfer_bytes(),
                   64.0);
  EXPECT_DOUBLE_EQ(DmaConfig{.eight_word_fraction = 0.5}.avg_transfer_bytes(),
                   48.0);
}

TEST(DmaEngine, ConvertsBytesToTransfers) {
  DmaEngine e(DmaConfig{.eight_word_fraction = 0.0});  // 32 B/transfer
  e.transfer(/*read=*/320.0, /*write=*/64.0);
  const auto h = e.harvest();
  EXPECT_EQ(h.read_transfers, 10u);
  EXPECT_EQ(h.write_transfers, 2u);
}

TEST(DmaEngine, ResidualsCarryAcrossHarvests) {
  DmaEngine e(DmaConfig{.eight_word_fraction = 0.0});
  e.transfer(48.0, 0.0);  // 1.5 transfers
  EXPECT_EQ(e.harvest().read_transfers, 1u);
  e.transfer(16.0, 0.0);  // residual 16 + 16 = 1 transfer
  EXPECT_EQ(e.harvest().read_transfers, 1u);
}

TEST(DmaEngine, ConservesBytesOverManySmallChunks) {
  DmaEngine e(DmaConfig{.eight_word_fraction = 0.5});  // 48 B/transfer
  std::uint64_t transfers = 0;
  for (int i = 0; i < 1000; ++i) {
    e.transfer(7.0, 0.0);  // far below one transfer each
    transfers += e.harvest().read_transfers;
  }
  EXPECT_EQ(transfers, static_cast<std::uint64_t>(7000.0 / 48.0));
  EXPECT_DOUBLE_EQ(e.total_read_bytes(), 7000.0);
}

TEST(DmaEngine, NegativeAndZeroTrafficIgnored) {
  DmaEngine e;
  e.transfer(-100.0, 0.0);
  const auto h = e.harvest();
  EXPECT_EQ(h.read_transfers, 0u);
  EXPECT_EQ(h.write_transfers, 0u);
  EXPECT_DOUBLE_EQ(e.total_read_bytes(), 0.0);
}

TEST(DmaEngine, ReadsAndWritesIndependent) {
  DmaEngine e(DmaConfig{.eight_word_fraction = 0.0});
  e.transfer(64.0, 128.0);
  const auto h = e.harvest();
  EXPECT_EQ(h.read_transfers, 2u);
  EXPECT_EQ(h.write_transfers, 4u);
  EXPECT_DOUBLE_EQ(e.total_read_bytes(), 64.0);
  EXPECT_DOUBLE_EQ(e.total_write_bytes(), 128.0);
}

TEST(DmaEngine, PaperMessageRateArithmetic) {
  // Section 5: 0.042e6 transfers/s ~ 1.3 MB/s implies ~32-byte transfers.
  DmaEngine e(DmaConfig{.eight_word_fraction = 0.0});
  e.transfer(1.3e6, 0.0);
  EXPECT_NEAR(static_cast<double>(e.harvest().read_transfers), 0.0406e6,
              0.001e6);
}

}  // namespace
}  // namespace p2sim::cluster
