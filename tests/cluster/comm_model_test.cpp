#include "src/cluster/comm_model.hpp"

#include <gtest/gtest.h>

namespace p2sim::cluster {
namespace {

TEST(CommModel, SingleNodeDoesNotCommunicate) {
  HpsSwitch sw;
  EXPECT_EQ(comm_fraction(sw, CommShape{}, 1), 0.0);
  EXPECT_EQ(comm_fraction(sw, CommShape{}, 0), 0.0);
}

TEST(CommModel, FractionGrowsWithNodeCount) {
  // Fixed global problem: more nodes -> smaller blocks -> worse
  // surface-to-volume -> larger communication share.
  HpsSwitch sw;
  const CommShape shape{};
  double prev = 0.0;
  for (int n : {2, 4, 8, 16, 32, 64, 128}) {
    const double f = comm_fraction(sw, shape, n);
    EXPECT_GT(f, prev) << n;
    EXPECT_LE(f, 0.95);
    prev = f;
  }
}

TEST(CommModel, ReferenceDecompositionIsModerate) {
  // The paper's typical code (50^3 block per node, 25 variables) should
  // sit in the moderate-communication regime at 16 nodes.
  HpsSwitch sw;
  const double f = comm_fraction(sw, CommShape{}, 16);
  EXPECT_GT(f, 0.05);
  EXPECT_LT(f, 0.6);
}

TEST(CommModel, AsynchronousOverlapHelps) {
  HpsSwitch sw;
  CommShape sync{};
  sync.synchronous = true;
  CommShape async = sync;
  async.synchronous = false;
  EXPECT_LT(comm_fraction(sw, async, 32), comm_fraction(sw, sync, 32));
}

TEST(CommModel, FasterSwitchShrinksTheShare) {
  HpsSwitch slow;
  HpsSwitch fast(SwitchConfig{.latency_s = 5e-6,
                              .bandwidth_bytes_per_s = 300e6});
  EXPECT_LT(comm_fraction(fast, CommShape{}, 32),
            comm_fraction(slow, CommShape{}, 32));
}

TEST(CommModel, LatencyDominatesSmallMessages) {
  // With tiny per-message payloads, halving bandwidth changes little but
  // doubling latency hurts.
  CommShape tiny{};
  tiny.bytes_per_surface_point = 1.0;
  HpsSwitch base;
  HpsSwitch half_bw(SwitchConfig{.latency_s = 45e-6,
                                 .bandwidth_bytes_per_s = 17e6});
  HpsSwitch double_lat(SwitchConfig{.latency_s = 90e-6,
                                    .bandwidth_bytes_per_s = 34e6});
  const double f_base = comm_fraction(base, tiny, 64);
  EXPECT_NEAR(comm_fraction(half_bw, tiny, 64), f_base, 0.02);
  EXPECT_GT(comm_fraction(double_lat, tiny, 64), f_base * 1.3);
}

TEST(CommModel, ClampedAtNinetyFivePercent) {
  CommShape brutal{};
  brutal.compute_s_per_point = 1e-12;
  HpsSwitch sw;
  EXPECT_LE(comm_fraction(sw, brutal, 128), 0.95);
}

}  // namespace
}  // namespace p2sim::cluster
