#include "src/cluster/paging.hpp"

#include <gtest/gtest.h>

namespace p2sim::cluster {
namespace {

TEST(Paging, WithinMemoryNoFaults) {
  PagingModel m;
  for (double mb : {8.0, 64.0, 127.9, 128.0}) {
    const PagingState s = m.evaluate(mb);
    EXPECT_EQ(s.fault_rate, 0.0) << mb;
    EXPECT_EQ(s.user_slowdown, 1.0) << mb;
  }
}

TEST(Paging, OversubscriptionComputed) {
  PagingModel m;
  EXPECT_NEAR(m.evaluate(192.0).oversubscription, 1.5, 1e-12);
  EXPECT_NEAR(m.evaluate(64.0).oversubscription, 0.5, 1e-12);
}

TEST(Paging, FaultRateGrowsWithDemand) {
  PagingModel m;
  const double r1 = m.evaluate(140.0).fault_rate;
  const double r2 = m.evaluate(180.0).fault_rate;
  const double r3 = m.evaluate(250.0).fault_rate;
  EXPECT_GT(r1, 0.0);
  EXPECT_GT(r2, r1);
  EXPECT_GT(r3, r2);
}

TEST(Paging, SlowdownMonotoneAndBounded) {
  PagingModel m;
  double prev = 1.0;
  for (double mb = 130.0; mb <= 320.0; mb += 10.0) {
    const PagingState s = m.evaluate(mb);
    EXPECT_LE(s.user_slowdown, prev + 1e-12);
    EXPECT_GE(s.user_slowdown, 0.02);
    prev = s.user_slowdown;
  }
  // Deep thrash: user work nearly stops — the mechanism behind system-mode
  // instruction counts exceeding user mode (section 6).
  EXPECT_LT(m.evaluate(300.0).user_slowdown, 0.3);
}

TEST(Paging, MildOvercommitIsSurvivable) {
  PagingModel m;
  const PagingState s = m.evaluate(135.0);  // ~5% over
  EXPECT_GT(s.user_slowdown, 0.95);
}

TEST(Paging, CustomCapacity) {
  PagingModel m(PagingConfig{.node_memory_mb = 256.0});
  EXPECT_EQ(m.evaluate(200.0).fault_rate, 0.0);
  EXPECT_GT(m.evaluate(400.0).fault_rate, 0.0);
}

TEST(Paging, ZeroCapacityIsInert) {
  PagingModel m(PagingConfig{.node_memory_mb = 0.0});
  const PagingState s = m.evaluate(100.0);
  EXPECT_EQ(s.fault_rate, 0.0);
  EXPECT_EQ(s.user_slowdown, 1.0);
}

}  // namespace
}  // namespace p2sim::cluster
