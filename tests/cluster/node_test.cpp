#include "src/cluster/node.hpp"

#include <limits>

#include <gtest/gtest.h>

#include "src/check/check.hpp"
#include "src/hpm/events.hpp"

namespace p2sim::cluster {
namespace {

using hpm::HpmCounter;

power2::EventSignature flat_signature() {
  power2::EventSignature s;
  s.fxu0_inst = 0.2;
  s.fxu1_inst = 0.3;
  s.fpu0_inst = 0.15;
  s.fpu1_inst = 0.1;
  s.fp_add0 = 0.1;
  s.fp_fma0 = 0.05;
  s.icu_type1 = 0.02;
  s.dcache_miss = 0.005;
  s.memory_inst = 0.45;
  s.quad_inst = 0.04;
  s.cycles_per_iter = 10.0;
  return s;
}

TEST(Node, RejectsSliceAboveWrapPeriod) {
  NodeConfig cfg;
  cfg.max_sample_slice_s = 70.0;  // 70 s * 66.7 MHz > 2^32
  EXPECT_THROW(Node(0, cfg), std::invalid_argument);
}

TEST(Node, IdleAccruesOnlyTrickleSystemNoise) {
  Node n(1);
  n.advance_idle(900.0);
  const auto& t = n.totals();
  EXPECT_EQ(t.user_at(HpmCounter::kUserCycles), 0u);
  EXPECT_EQ(t.user_at(HpmCounter::kUserFxu0), 0u);
  EXPECT_GT(t.system_at(HpmCounter::kUserFxu0), 0u);
  EXPECT_EQ(n.busy_seconds(), 0.0);
}

TEST(Node, BusyAccruesUserEventsAtSignatureRate) {
  Node n(2);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.compute_fraction = 1.0;
  n.advance(900.0, &sig, act);

  const double cycles = 900.0 * n.config().clock_hz;
  const auto& t = n.totals();
  EXPECT_NEAR(static_cast<double>(t.user_at(HpmCounter::kUserCycles)), cycles,
              cycles * 1e-9 + 64);
  EXPECT_NEAR(static_cast<double>(t.user_at(HpmCounter::kUserFxu0)),
              0.2 * cycles, 0.2 * cycles * 1e-6 + 64);
  EXPECT_NEAR(static_cast<double>(t.user_at(HpmCounter::kFpMulAdd0)),
              0.05 * cycles, 0.05 * cycles * 1e-6 + 64);
  EXPECT_EQ(n.busy_seconds(), 900.0);
}

TEST(Node, UserCyclesSurviveCounterWrap) {
  // 900 s at 66.7 MHz = 6e10 cycles: ~14 wraps of the 32-bit counter.
  // Multipass sampling must recover the true total.
  Node n(3);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  n.advance(900.0, &sig, act);
  const double cycles = 900.0 * n.config().clock_hz;
  EXPECT_GT(cycles, 4.0e9);  // sanity: we really did cross the wrap
  EXPECT_NEAR(
      static_cast<double>(n.totals().user_at(HpmCounter::kUserCycles)),
      cycles, cycles * 1e-9 + 64);
}

TEST(Node, ComputeFractionScalesEvents) {
  Node full(4), half(5);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile f, h;
  f.compute_fraction = 1.0;
  h.compute_fraction = 0.5;
  full.advance(100.0, &sig, f);
  half.advance(100.0, &sig, h);
  EXPECT_NEAR(static_cast<double>(
                  half.totals().user_at(HpmCounter::kUserCycles)),
              0.5 * static_cast<double>(
                        full.totals().user_at(HpmCounter::kUserCycles)),
              1e4);
}

TEST(Node, PagingGeneratesSystemModeWork) {
  Node n(6);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.compute_fraction = 0.2;
  act.page_faults_per_s = 100.0;
  n.advance(100.0, &sig, act);
  const auto& t = n.totals();
  const double faults = 100.0 * 100.0;
  EXPECT_NEAR(static_cast<double>(t.system_at(HpmCounter::kUserFxu0) +
                                  t.system_at(HpmCounter::kUserFxu1)),
              faults * n.config().fault_fxu_inst +
                  100.0 * n.config().os_noise_fxu_per_s,
              faults * n.config().fault_fxu_inst * 0.01);
  EXPECT_GT(t.system_at(HpmCounter::kUserIcu0), 0u);
  EXPECT_GT(t.system_at(HpmCounter::kUserCycles), 0u);
  // Paging I/O shows up in the DMA counters.
  EXPECT_GT(t.user_at(HpmCounter::kDmaRead), 0u);
  EXPECT_GT(t.user_at(HpmCounter::kDmaWrite), 0u);
}

TEST(Node, ThrashingNodeShowsSystemExceedingUserFxu) {
  // The section 6 signature: system-mode FXU counts exceed user mode.
  Node n(7);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.compute_fraction = 0.05;   // thrash: almost no user progress
  act.page_faults_per_s = 300.0;
  n.advance(900.0, &sig, act);
  const auto& t = n.totals();
  const auto user_fxu = t.user_at(HpmCounter::kUserFxu0) +
                        t.user_at(HpmCounter::kUserFxu1);
  const auto sys_fxu = t.system_at(HpmCounter::kUserFxu0) +
                       t.system_at(HpmCounter::kUserFxu1);
  EXPECT_GT(sys_fxu, user_fxu);
}

TEST(Node, DmaCountersFollowTrafficRates) {
  Node n(8);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.comm_send_bytes_per_s = 1.0e6;
  act.comm_recv_bytes_per_s = 0.5e6;
  n.advance(100.0, &sig, act);
  const double per = n.config().dma.avg_transfer_bytes();
  const auto& t = n.totals();
  EXPECT_NEAR(static_cast<double>(t.user_at(HpmCounter::kDmaRead)),
              1.0e8 / per, 2.0);
  EXPECT_NEAR(static_cast<double>(t.user_at(HpmCounter::kDmaWrite)),
              0.5e8 / per, 2.0);
}

TEST(Node, DiskTrafficMapsToDmaDirections) {
  // File reads enter memory (DMA writes); file writes leave it (DMA reads).
  Node n(9);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.disk_read_bytes_per_s = 1e6;
  n.advance(10.0, &sig, act);
  const auto& t = n.totals();
  EXPECT_GT(t.user_at(HpmCounter::kDmaWrite), 0u);
  EXPECT_EQ(t.user_at(HpmCounter::kDmaRead), 0u);
}

TEST(Node, QuadDiagnosticTracked) {
  Node n(10);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  n.advance(10.0, &sig, act);
  EXPECT_NEAR(static_cast<double>(n.quad_total()),
              0.04 * 10.0 * n.config().clock_hz, 1e4);
}

TEST(Node, CrashZeroesCountersAndStopsAccrual) {
  Node n(12);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  n.advance(100.0, &sig, act);
  ASSERT_NE(n.totals(), rs2hpm::ModeTotals{});
  ASSERT_GT(n.quad_total(), 0u);

  n.crash();
  EXPECT_FALSE(n.is_up());
  EXPECT_EQ(n.totals(), rs2hpm::ModeTotals{});
  EXPECT_EQ(n.quad_total(), 0u);

  // A down node accrues nothing — not even idle OS noise.
  n.advance(100.0, &sig, act);
  n.advance_idle(900.0);
  EXPECT_EQ(n.totals(), rs2hpm::ModeTotals{});
}

TEST(Node, RebootResumesFromZero) {
  // The deliberate non-monotonicity downstream layers must survive: totals
  // after the reboot are smaller than totals before the crash.
  Node n(13);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  n.advance(200.0, &sig, act);
  const std::uint64_t before =
      n.totals().user_at(HpmCounter::kUserCycles);

  n.crash();
  n.reboot();
  EXPECT_TRUE(n.is_up());
  EXPECT_EQ(n.totals(), rs2hpm::ModeTotals{});

  n.advance(10.0, &sig, act);
  const std::uint64_t after = n.totals().user_at(HpmCounter::kUserCycles);
  EXPECT_GT(after, 0u);
  EXPECT_LT(after, before);
}

TEST(Node, ZeroSecondsIsNoOp) {
  Node n(11);
  const power2::EventSignature sig = flat_signature();
  n.advance(0.0, &sig, ActivityProfile{});
  EXPECT_EQ(n.totals(), rs2hpm::ModeTotals{});
}

TEST(Node, IdleAdvanceLeavesBusySecondsUntouched) {
  // The advance() accounting contract: busy time only accrues under a
  // signature; sig == nullptr intervals are idle regardless of profile.
  Node n(14);
  ActivityProfile act;
  act.compute_fraction = 0.8;  // meaningless without a job
  n.advance(300.0, nullptr, act);
  EXPECT_EQ(n.busy_seconds(), 0.0);
  const power2::EventSignature sig = flat_signature();
  n.advance(120.0, &sig, act);
  EXPECT_EQ(n.busy_seconds(), 120.0);
}

// Contract violations the library asserts on when checks are compiled in.
// Release (NDEBUG) strips the checks, so the death tests only run on the
// checks-enabled presets (debug, asan-ubsan, tsan).
class NodeContractDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!p2sim::check::library_checks_enabled()) {
      GTEST_SKIP() << "library checks compiled out in this build";
    }
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST_F(NodeContractDeathTest, RejectsNanComputeFraction) {
  Node n(20);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.compute_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(n.advance(10.0, &sig, act),
               "compute_fraction must be finite");
}

TEST_F(NodeContractDeathTest, RejectsFractionAboveOne) {
  Node n(21);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.io_wait_fraction = 1.5;
  EXPECT_DEATH(n.advance(10.0, &sig, act),
               "io_wait_fraction must be finite and in \\[0,1\\]");
}

TEST_F(NodeContractDeathTest, RejectsNegativeTrafficRate) {
  Node n(22);
  const power2::EventSignature sig = flat_signature();
  ActivityProfile act;
  act.disk_read_bytes_per_s = -1.0;
  EXPECT_DEATH(n.advance(10.0, &sig, act),
               "traffic and fault rates must be finite");
}

TEST_F(NodeContractDeathTest, RejectsWaitFractionsWithoutSignature) {
  Node n(23);
  ActivityProfile act;
  act.comm_wait_fraction = 0.3;
  EXPECT_DEATH(n.advance(10.0, nullptr, act),
               "wait fractions require a running job");
}

}  // namespace
}  // namespace p2sim::cluster
