// The closed-form accrual path's contract: bit-identical node state to the
// reference slice-by-slice loop, for any signature, activity profile,
// slice length, interval length and crash/reboot sequence.
//
// Two nodes differing only in NodeConfig::reference_accrual receive the
// same operation stream; after every operation the full observable state —
// both wrapping 32-bit banks, the RS2HPM 64-bit extension, the DMA
// engine's totals and sub-transfer residuals, the quad diagnostic and
// busy_seconds — must match exactly (doubles compared bitwise via ==).

#include "src/cluster/node.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/hpm/events.hpp"
#include "src/power2/field_table.hpp"
#include "src/util/rng.hpp"

namespace p2sim::cluster {
namespace {

// Random rates kept physical (each <= ~1 event/cycle) and consistent with
// the audit identities, which are enforced here as single-field
// inequalities: fma <= add (per unit), reload <= miss <= memory,
// store <= reload, tlb/quad <= memory, and miss rates <= a single FXU
// rate (the totals rules bound misses by fxu0+fxu1; a one-field bound is
// the rounding-safe way to satisfy them, since llround is monotone so
// single-field rate inequalities survive scaling on every slice length).
power2::EventSignature random_signature(util::Xoshiro256StarStar& rng) {
  power2::EventSignature s;
  s.cycles_per_iter = rng.uniform(1.0, 100.0);
  s.fxu0_inst = rng.uniform(0.0, 0.9);
  s.fxu1_inst = rng.uniform(0.0, 0.9);
  s.fpu0_inst = rng.uniform(0.0, 0.9);
  s.fpu1_inst = rng.uniform(0.0, 0.9);
  s.fp_add0 = rng.uniform(0.0, 0.9);
  s.fp_add1 = rng.uniform(0.0, 0.9);
  s.fp_mul0 = rng.uniform(0.0, 0.9);
  s.fp_mul1 = rng.uniform(0.0, 0.9);
  s.fp_div0 = rng.uniform(0.0, 0.2);
  s.fp_div1 = rng.uniform(0.0, 0.2);
  s.fp_fma0 = s.fp_add0 * rng.uniform();
  s.fp_fma1 = s.fp_add1 * rng.uniform();
  s.icu_type1 = rng.uniform(0.0, 0.5);
  s.icu_type2 = rng.uniform(0.0, 0.5);
  s.icache_reload = rng.uniform(0.0, 0.1);
  s.memory_inst = rng.uniform(0.0, 0.9);
  s.dcache_miss = std::min(s.memory_inst, s.fxu0_inst) * rng.uniform();
  s.dcache_reload = s.dcache_miss * rng.uniform();
  s.dcache_store = s.dcache_reload * rng.uniform();
  s.tlb_miss = std::min(s.memory_inst, s.fxu1_inst) * rng.uniform(0.0, 0.1);
  s.quad_inst = s.memory_inst * rng.uniform();
  s.stall_dcache = rng.uniform(0.0, 0.5);
  s.stall_tlb = rng.uniform(0.0, 0.3);
  return s;
}

ActivityProfile random_profile(util::Xoshiro256StarStar& rng) {
  ActivityProfile a;
  a.compute_fraction = rng.uniform();
  a.comm_wait_fraction = rng.uniform();
  a.io_wait_fraction = rng.uniform();
  a.comm_send_bytes_per_s = rng.uniform(0.0, 5e6);
  a.comm_recv_bytes_per_s = rng.uniform(0.0, 5e6);
  a.disk_read_bytes_per_s = rng.uniform(0.0, 10e6);
  a.disk_write_bytes_per_s = rng.uniform(0.0, 10e6);
  a.page_faults_per_s = rng.uniform(0.0, 50.0);
  return a;
}

void expect_identical(const Node& fast, const Node& ref,
                      const std::string& where) {
  EXPECT_EQ(fast.monitor().bank(hpm::PrivilegeMode::kUser).raw(),
            ref.monitor().bank(hpm::PrivilegeMode::kUser).raw())
      << where << ": user bank";
  EXPECT_EQ(fast.monitor().bank(hpm::PrivilegeMode::kSystem).raw(),
            ref.monitor().bank(hpm::PrivilegeMode::kSystem).raw())
      << where << ": system bank";
  EXPECT_EQ(fast.totals(), ref.totals()) << where << ": extended totals";
  EXPECT_EQ(fast.quad_total(), ref.quad_total()) << where << ": quad";
  EXPECT_EQ(fast.busy_seconds(), ref.busy_seconds()) << where << ": busy";
  EXPECT_EQ(fast.dma().total_read_bytes(), ref.dma().total_read_bytes())
      << where << ": dma read";
  EXPECT_EQ(fast.dma().total_write_bytes(), ref.dma().total_write_bytes())
      << where << ": dma write";
  EXPECT_EQ(fast.dma().pending_read_bytes(), ref.dma().pending_read_bytes())
      << where << ": dma pending read";
  EXPECT_EQ(fast.dma().pending_write_bytes(), ref.dma().pending_write_bytes())
      << where << ": dma pending write";
}

void fuzz_config(NodeConfig cfg, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  for (int round = 0; round < 12; ++round) {
    NodeConfig fast_cfg = cfg;
    fast_cfg.reference_accrual = false;
    NodeConfig ref_cfg = cfg;
    ref_cfg.reference_accrual = true;
    Node fast(1, fast_cfg);
    Node ref(1, ref_cfg);
    const power2::EventSignature sig = random_signature(rng);

    for (int op = 0; op < 30; ++op) {
      const std::uint64_t kind = rng.below(10);
      if (kind < 6) {
        // Busy interval; occasionally an exact multiple of the slice
        // length to hit the remainder == max boundary.
        double seconds = rng.uniform(0.01, 1800.0);
        if (rng.below(5) == 0) {
          seconds =
              cfg.max_sample_slice_s * static_cast<double>(1 + rng.below(20));
        }
        const ActivityProfile act = random_profile(rng);
        fast.advance(seconds, &sig, act);
        ref.advance(seconds, &sig, act);
      } else if (kind < 8) {
        const double seconds = rng.uniform(0.01, 1800.0);
        fast.advance_idle(seconds);
        ref.advance_idle(seconds);
      } else if (kind == 8) {
        fast.crash();
        ref.crash();
        if (rng.below(2) == 0) {
          // Advances while down are no-ops on both paths.
          const ActivityProfile act = random_profile(rng);
          fast.advance(100.0, &sig, act);
          ref.advance(100.0, &sig, act);
        }
        fast.reboot();
        ref.reboot();
      } else {
        // Zero / negative durations are no-ops.
        const ActivityProfile act = random_profile(rng);
        fast.advance(0.0, &sig, act);
        ref.advance(0.0, &sig, act);
        fast.advance(-5.0, &sig, act);
        ref.advance(-5.0, &sig, act);
      }
      expect_identical(fast, ref,
                       "round " + std::to_string(round) + " op " +
                           std::to_string(op));
      if (testing::Test::HasFailure()) return;  // first divergence is enough
    }
  }
}

TEST(AccrualEquivalence, DefaultConfig) { fuzz_config(NodeConfig{}, 0xA11CE); }

TEST(AccrualEquivalence, ShortSlices) {
  NodeConfig cfg;
  cfg.max_sample_slice_s = 13.3;
  fuzz_config(cfg, 0xB0B);
}

TEST(AccrualEquivalence, OddSliceLength) {
  NodeConfig cfg;
  cfg.max_sample_slice_s = 37.7;
  fuzz_config(cfg, 0xC4B1E);
}

TEST(AccrualEquivalence, WaitStateSelection) {
  NodeConfig cfg;
  cfg.monitor.selection = hpm::CounterSelection::kWaitStates;
  fuzz_config(cfg, 0xD00D);
}

TEST(AccrualEquivalence, DivideCounterFixed) {
  NodeConfig cfg;
  cfg.monitor.divide_counter_bug = false;
  fuzz_config(cfg, 0xE66);
}

// The slice decomposition itself: a duration equal to, just under and just
// over one slice must land identically (these are the boundary cases of
// the closed-form n_full/remainder split).
TEST(AccrualEquivalence, SliceBoundaryDurations) {
  util::Xoshiro256StarStar rng(0xF00F);
  const power2::EventSignature sig = random_signature(rng);
  const ActivityProfile act = random_profile(rng);
  NodeConfig fast_cfg;
  fast_cfg.reference_accrual = false;
  NodeConfig ref_cfg;
  ref_cfg.reference_accrual = true;
  Node fast(7, fast_cfg);
  Node ref(7, ref_cfg);
  const double max = fast_cfg.max_sample_slice_s;
  for (double seconds : {max, max - 1e-9, max + 1e-9, 2.0 * max, 0.5 * max,
                         900.0, 1e-6}) {
    fast.advance(seconds, &sig, act);
    ref.advance(seconds, &sig, act);
    expect_identical(fast, ref, "seconds=" + std::to_string(seconds));
  }
}

}  // namespace
}  // namespace p2sim::cluster
