#include "src/cluster/switch.hpp"

#include <gtest/gtest.h>

namespace p2sim::cluster {
namespace {

TEST(Switch, DefaultsMatchPaper) {
  HpsSwitch sw;
  EXPECT_DOUBLE_EQ(sw.config().latency_s, 45e-6);   // "approximately 45 us"
  EXPECT_DOUBLE_EQ(sw.config().bandwidth_bytes_per_s, 34e6);  // "34 Mbyte/s"
}

TEST(Switch, ZeroByteMessageCostsLatency) {
  HpsSwitch sw;
  EXPECT_DOUBLE_EQ(sw.message_time(0.0), 45e-6);
}

TEST(Switch, LargeMessageIsBandwidthBound) {
  HpsSwitch sw;
  const double t = sw.message_time(34e6);  // one second of payload
  EXPECT_NEAR(t, 1.0 + 45e-6, 1e-9);
}

TEST(Switch, ExchangeSerializesPerNodeMessages) {
  HpsSwitch sw;
  const double one = sw.message_time(1000.0);
  EXPECT_DOUBLE_EQ(sw.exchange_time(6, 1000.0), 6 * one);
  EXPECT_DOUBLE_EQ(sw.exchange_time(0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(sw.exchange_time(-3, 1000.0), 0.0);
}

TEST(Switch, AggregateBandwidthScalesLinearly) {
  // "The available communication bandwidth over this switch scales
  // linearly with the number of processors."
  HpsSwitch sw;
  EXPECT_DOUBLE_EQ(sw.aggregate_bandwidth(144), 144 * 34e6);
  EXPECT_DOUBLE_EQ(sw.aggregate_bandwidth(1), 34e6);
  EXPECT_DOUBLE_EQ(sw.aggregate_bandwidth(0), 0.0);
  EXPECT_DOUBLE_EQ(sw.aggregate_bandwidth(-2), 0.0);
}

TEST(Switch, AccountsTraffic) {
  HpsSwitch sw;
  sw.account(100.0);
  sw.account(50.0);
  EXPECT_DOUBLE_EQ(sw.total_bytes(), 150.0);
}

TEST(Switch, CustomConfig) {
  HpsSwitch sw(SwitchConfig{.latency_s = 1e-6, .bandwidth_bytes_per_s = 1e9});
  EXPECT_NEAR(sw.message_time(1e9), 1.0 + 1e-6, 1e-12);
}

}  // namespace
}  // namespace p2sim::cluster
