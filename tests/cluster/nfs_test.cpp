#include "src/cluster/nfs.hpp"

#include <gtest/gtest.h>

namespace p2sim::cluster {
namespace {

TEST(Nfs, DefaultsMatchPaperTopology) {
  NfsModel nfs;
  EXPECT_EQ(nfs.config().num_filesystems, 3);   // "3 home filesystems"
  EXPECT_DOUBLE_EQ(nfs.config().capacity_gb_each, 8.0);  // "of 8 GB each"
}

TEST(Nfs, GrantsFullRateBelowCapacity) {
  NfsModel nfs;
  const double req = nfs.config().server_bandwidth_bytes_per_s / 2;
  EXPECT_DOUBLE_EQ(nfs.grant(req), req);
  EXPECT_DOUBLE_EQ(nfs.grant_fraction(req), 1.0);
}

TEST(Nfs, ThrottlesAboveCapacity) {
  NfsModel nfs;
  const double cap = nfs.config().server_bandwidth_bytes_per_s;
  EXPECT_DOUBLE_EQ(nfs.grant(4 * cap), cap);
  EXPECT_DOUBLE_EQ(nfs.grant_fraction(4 * cap), 0.25);
}

TEST(Nfs, ZeroRequestFullyGranted) {
  NfsModel nfs;
  EXPECT_DOUBLE_EQ(nfs.grant_fraction(0.0), 1.0);
}

TEST(Nfs, AccountsTraffic) {
  NfsModel nfs;
  nfs.account(1e6);
  nfs.account(2e6);
  EXPECT_DOUBLE_EQ(nfs.total_bytes(), 3e6);
}

}  // namespace
}  // namespace p2sim::cluster
