#include "src/fault/fault.hpp"

#include <stdexcept>

#include "src/telemetry/session.hpp"
#include "src/util/sim_time.hpp"

namespace p2sim::fault {
namespace {

/// Telemetry hook: per-domain injected-fault counters.  These count the
/// same events as FaultLog, so a live dashboard's fault totals reconcile
/// exactly with the campaign's ground-truth log.
void count_fault(const char* name, const char* help) {
  if (auto* tel = telemetry::current()) {
    tel->registry.counter(name, help).inc();
  }
}

}  // namespace

// Domain tags passed to draw() keep the per-fault-class substreams
// independent even when their coordinates collide (e.g. node 3 / interval 7
// vs job 3 / attempt 7): crash 0xC4A5, interval miss 0x1D0, node sample
// 0x5A3, prologue 0x9801, epilogue 0x9802, record corruption 0xD15C.

FaultConfig FaultConfig::reference() {
  FaultConfig cfg;
  cfg.enabled = true;
  // ~1 crash per node per two months: 144 nodes see a failure every few
  // hours somewhere in the machine, as a mid-90s production cluster did.
  cfg.node_crashes_per_node_day = 1.0 / 60.0;
  cfg.reboot_downtime_intervals = 2;  // 30 minutes to fsck and rejoin
  cfg.interval_miss_prob = 0.01;      // cron skew / collector host busy
  cfg.node_sample_loss_prob = 0.005;  // rsh to one node times out
  cfg.prologue_loss_prob = 0.01;
  cfg.epilogue_loss_prob = 0.02;      // killed jobs never run epilogues
  cfg.record_corruption_prob = 0.002;
  return cfg;
}

FaultSchedule::FaultSchedule(const FaultConfig& cfg) : cfg_(cfg) {
  auto prob = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("FaultConfig: ") + what +
                                  " must be a probability");
    }
  };
  prob(cfg_.interval_miss_prob, "interval_miss_prob");
  prob(cfg_.node_sample_loss_prob, "node_sample_loss_prob");
  prob(cfg_.prologue_loss_prob, "prologue_loss_prob");
  prob(cfg_.epilogue_loss_prob, "epilogue_loss_prob");
  prob(cfg_.record_corruption_prob, "record_corruption_prob");
  if (cfg_.node_crashes_per_node_day < 0.0) {
    throw std::invalid_argument("FaultConfig: crash rate must be >= 0");
  }
  if (cfg_.reboot_downtime_intervals < 1) {
    throw std::invalid_argument(
        "FaultConfig: reboot downtime must be >= 1 interval");
  }
  crash_prob_per_interval_ = cfg_.node_crashes_per_node_day /
                             static_cast<double>(util::kIntervalsPerDay);
}

double FaultSchedule::draw(std::uint64_t domain, std::uint64_t a,
                           std::uint64_t b) const {
  // Hash the coordinates through splitmix64 (each stage fully mixes), then
  // take one xoshiro256** draw from the resulting stream seed.
  util::SplitMix64 mix(cfg_.seed ^ (domain * 0x9e3779b97f4a7c15ULL));
  const std::uint64_t s1 = mix.next() ^ a;
  util::SplitMix64 mix2(s1);
  const std::uint64_t s2 = mix2.next() ^ b;
  util::Xoshiro256StarStar rng(s2);
  return rng.uniform();
}

bool FaultSchedule::node_crashes(int node, std::int64_t interval) const {
  if (!cfg_.enabled || crash_prob_per_interval_ <= 0.0) return false;
  return draw(0xC4A5, static_cast<std::uint64_t>(node),
              static_cast<std::uint64_t>(interval)) < crash_prob_per_interval_;
}

bool FaultSchedule::interval_missed(std::int64_t interval) const {
  if (!cfg_.enabled || cfg_.interval_miss_prob <= 0.0) return false;
  return draw(0x1D0, static_cast<std::uint64_t>(interval), 0) <
         cfg_.interval_miss_prob;
}

bool FaultSchedule::node_sample_lost(int node, std::int64_t interval) const {
  if (!cfg_.enabled || cfg_.node_sample_loss_prob <= 0.0) return false;
  return draw(0x5A3, static_cast<std::uint64_t>(node),
              static_cast<std::uint64_t>(interval)) <
         cfg_.node_sample_loss_prob;
}

bool FaultSchedule::prologue_lost(std::int64_t job_id, int attempt) const {
  if (!cfg_.enabled || cfg_.prologue_loss_prob <= 0.0) return false;
  return draw(0x9801, static_cast<std::uint64_t>(job_id),
              static_cast<std::uint64_t>(attempt)) < cfg_.prologue_loss_prob;
}

bool FaultSchedule::epilogue_lost(std::int64_t job_id, int attempt) const {
  if (!cfg_.enabled || cfg_.epilogue_loss_prob <= 0.0) return false;
  return draw(0x9802, static_cast<std::uint64_t>(job_id),
              static_cast<std::uint64_t>(attempt)) < cfg_.epilogue_loss_prob;
}

bool FaultSchedule::record_corrupted(std::int64_t line_index) const {
  if (!cfg_.enabled || cfg_.record_corruption_prob <= 0.0) return false;
  return draw(0xD15C, static_cast<std::uint64_t>(line_index), 0) <
         cfg_.record_corruption_prob;
}

bool FaultInjector::crash_now(int node, std::int64_t interval) {
  if (!sched_.node_crashes(node, interval)) return false;
  ++log_.node_crashes;
  count_fault("p2sim_fault_node_crashes_total",
              "Node crashes injected (counters zeroed on reboot)");
  return true;
}

bool FaultInjector::miss_interval(std::int64_t interval) {
  if (!sched_.interval_missed(interval)) return false;
  ++log_.intervals_missed;
  count_fault("p2sim_fault_intervals_missed_total",
              "Whole 15-minute daemon samples that never happened");
  return true;
}

bool FaultInjector::lose_node_sample(int node, std::int64_t interval) {
  if (!sched_.node_sample_lost(node, interval)) return false;
  note_samples_lost(1);
  return true;
}

void FaultInjector::note_samples_lost(std::int64_t count) {
  if (count <= 0) return;
  log_.node_samples_lost += count;
  if (auto* tel = telemetry::current()) {
    tel->registry
        .counter("p2sim_fault_node_samples_lost_total",
                 "Per-node daemon samples dropped in flight")
        .inc(static_cast<std::uint64_t>(count));
  }
}

bool FaultInjector::lose_prologue(std::int64_t job_id, int attempt) {
  if (!sched_.prologue_lost(job_id, attempt)) return false;
  ++log_.prologues_lost;
  count_fault("p2sim_fault_prologues_lost_total",
              "PBS prologue scripts that failed to fire");
  return true;
}

bool FaultInjector::lose_epilogue(std::int64_t job_id, int attempt) {
  if (!sched_.epilogue_lost(job_id, attempt)) return false;
  ++log_.epilogues_lost;
  count_fault("p2sim_fault_epilogues_lost_total",
              "PBS epilogue scripts that failed to fire");
  return true;
}

std::int64_t corrupt_records(std::string& file_contents,
                             const FaultSchedule& schedule) {
  std::string out;
  out.reserve(file_contents.size());
  std::int64_t line_index = 0;
  std::int64_t corrupted = 0;
  std::size_t pos = 0;
  while (pos < file_contents.size()) {
    std::size_t nl = file_contents.find('\n', pos);
    if (nl == std::string::npos) nl = file_contents.size();
    std::string line = file_contents.substr(pos, nl - pos);
    // Line 0 is the header: corrupting it loses the whole file, which is a
    // different (and uninteresting) failure mode — skip it.
    if (line_index > 0 && !line.empty() &&
        schedule.record_corrupted(line_index)) {
      switch (line_index % 3) {
        case 0:  // truncation: the write was cut short
          line.resize(line.size() / 2);
          break;
        case 1: {  // bit rot: a digit becomes garbage
          const std::size_t at = line.size() / 2;
          line[at] = '#';
          break;
        }
        default: {  // lost delimiter: two fields fuse
          const std::size_t comma = line.find(',', line.size() / 2);
          if (comma != std::string::npos) {
            line.erase(comma, 1);
          } else {
            line.resize(line.size() / 2);
          }
          break;
        }
      }
      ++corrupted;
      count_fault("p2sim_fault_records_corrupted_total",
                  "Stored record lines mangled by storage rot");
    }
    out += line;
    if (nl < file_contents.size()) out += '\n';
    pos = nl + 1;
    ++line_index;
  }
  file_contents = std::move(out);
  return corrupted;
}

}  // namespace p2sim::fault
