// Deterministic fault injection for the nine-month campaign.
//
// Bergeron's study was a *production* measurement: over 270 days the
// collection stack itself lost data.  Nodes crashed and rebooted (resetting
// their counters to zero), the 15-minute cron daemon missed samples, PBS
// prologue/epilogue scripts failed to fire for killed jobs, and stored
// accounting records rotted on disk.  The paper copes by analyzing only the
// 30 of 270 days that were sufficiently covered; this module reproduces the
// loss processes so the downstream measurement pipeline can demonstrate the
// same degradation tolerance.
//
// Design: every fault decision is a pure function of (seed, fault domain,
// coordinates) — the coordinates are hashed through splitmix64 into a
// one-shot xoshiro256** draw.  Queries are therefore deterministic and
// order-independent: the workload driver's own RNG streams are never
// touched, so a campaign with faults disabled is bit-identical to one run
// before this module existed.
#pragma once

#include <cstdint>
#include <string>

#include "src/check/annotate.hpp"
#include "src/util/rng.hpp"

namespace p2sim::fault {

/// Rates of the modelled failure processes.  All probabilities are per
/// query opportunity (see each field); zero disables that fault class.
struct FaultConfig {
  /// Master switch; false (the default) makes every query return "no
  /// fault" without consuming randomness.
  bool enabled = false;

  /// Expected node crashes per node per day.  A crash takes the node out
  /// of service for `reboot_downtime_intervals` and zeroes its counters —
  /// the monitor state does not survive a reboot.
  double node_crashes_per_node_day = 0.0;
  /// 15-minute intervals a crashed node stays down before rebooting.
  std::int64_t reboot_downtime_intervals = 2;

  /// Probability the cron daemon misses an entire 15-minute sample.
  double interval_miss_prob = 0.0;
  /// Probability a single (up) node is unreachable in one daemon sample.
  double node_sample_loss_prob = 0.0;

  /// Probability the PBS prologue / epilogue script fails for one job run.
  double prologue_loss_prob = 0.0;
  double epilogue_loss_prob = 0.0;

  /// Probability one stored record line is corrupted (see corrupt_records).
  double record_corruption_prob = 0.0;

  /// Seed of the fault schedule; independent of the workload seed.
  std::uint64_t seed = 0x0BAD5EEDULL;

  /// The reference schedule used by bench_fault_campaign and the docs: a
  /// realistic nine-month outage profile (roughly one crash per node per
  /// two months, 1% missed samples, 2% lost epilogues).
  static FaultConfig reference();
};

/// Deterministic oracle over the fault processes.  Stateless apart from the
/// configuration: the same (seed, coordinates) always gives the same answer.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultConfig& cfg);

  bool node_crashes(int node, std::int64_t interval) const;
  bool interval_missed(std::int64_t interval) const;
  /// Lanes query this inside the parallel region (read-only fault view):
  /// the answer is a pure function of (seed, node, interval), so the call
  /// shares no mutable state.  Logging stays a serial-phase concern.
  P2SIM_PAR_SAFE bool node_sample_lost(int node, std::int64_t interval) const;
  /// `attempt` distinguishes requeued runs of the same job id.
  bool prologue_lost(std::int64_t job_id, int attempt = 0) const;
  bool epilogue_lost(std::int64_t job_id, int attempt = 0) const;
  bool record_corrupted(std::int64_t line_index) const;

  const FaultConfig& config() const { return cfg_; }

 private:
  /// Uniform [0,1) draw for one fault decision.  Constructs a one-shot
  /// generator from the hashed coordinates — no stream state survives the
  /// call, which is what makes concurrent lane queries safe.
  P2SIM_PAR_SAFE double draw(std::uint64_t domain, std::uint64_t a,
                             std::uint64_t b) const;

  FaultConfig cfg_;
  double crash_prob_per_interval_ = 0.0;
};

/// Tally of every fault actually injected into a campaign — the ground
/// truth the measurement-loss report must reconcile against.
struct FaultLog {
  std::int64_t node_crashes = 0;
  /// Node-intervals spent out of service (outage duration).
  std::int64_t down_node_intervals = 0;
  /// Whole daemon samples that never happened.
  std::int64_t intervals_missed = 0;
  /// Per-node sample losses during recorded intervals: node was down...
  std::int64_t node_samples_unreachable = 0;
  /// ...or up but its sample was dropped in flight.
  std::int64_t node_samples_lost = 0;
  std::int64_t prologues_lost = 0;
  std::int64_t epilogues_lost = 0;
  /// Jobs killed by a node crash (their epilogues never fire).
  std::int64_t jobs_killed = 0;
  /// Of those, runs that had *also* lost their prologue — needed so the
  /// loss report does not double-count the one incomplete record such a
  /// run produces.
  std::int64_t jobs_killed_sans_prologue = 0;
  std::int64_t jobs_requeued = 0;
  std::int64_t records_corrupted = 0;

  /// Total injected faults (outage durations and requeues are side effects,
  /// not faults of their own).
  std::int64_t total_faults() const {
    return node_crashes + intervals_missed + node_samples_lost +
           prologues_lost + epilogues_lost + records_corrupted;
  }

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(node_crashes);
    w.put_i64(down_node_intervals);
    w.put_i64(intervals_missed);
    w.put_i64(node_samples_unreachable);
    w.put_i64(node_samples_lost);
    w.put_i64(prologues_lost);
    w.put_i64(epilogues_lost);
    w.put_i64(jobs_killed);
    w.put_i64(jobs_killed_sans_prologue);
    w.put_i64(jobs_requeued);
    w.put_i64(records_corrupted);
  }
  void restore_ckpt(util::CkptReader& r) {
    node_crashes = r.read_i64("fault_log.node_crashes");
    down_node_intervals = r.read_i64("fault_log.down_node_intervals");
    intervals_missed = r.read_i64("fault_log.intervals_missed");
    node_samples_unreachable =
        r.read_i64("fault_log.node_samples_unreachable");
    node_samples_lost = r.read_i64("fault_log.node_samples_lost");
    prologues_lost = r.read_i64("fault_log.prologues_lost");
    epilogues_lost = r.read_i64("fault_log.epilogues_lost");
    jobs_killed = r.read_i64("fault_log.jobs_killed");
    jobs_killed_sans_prologue =
        r.read_i64("fault_log.jobs_killed_sans_prologue");
    jobs_requeued = r.read_i64("fault_log.jobs_requeued");
    records_corrupted = r.read_i64("fault_log.records_corrupted");
  }
};

/// Campaign-side facade: answers the driver's fault queries from the
/// schedule and tallies every injected fault into a FaultLog.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg) : sched_(cfg) {}

  bool enabled() const { return sched_.config().enabled; }

  /// Query-and-log entry points (log only when the fault fires).
  bool crash_now(int node, std::int64_t interval);
  bool miss_interval(std::int64_t interval);
  bool lose_node_sample(int node, std::int64_t interval);
  bool lose_prologue(std::int64_t job_id, int attempt);
  bool lose_epilogue(std::int64_t job_id, int attempt);

  /// Side-effect bookkeeping the driver reports as it happens.
  void note_node_down() { ++log_.down_node_intervals; }
  void note_node_unreachable() { ++log_.node_samples_unreachable; }
  /// Batch variant of lose_node_sample's logging half: the lanes already
  /// decided (via the schedule) which samples were lost this interval; the
  /// serial fold reports the tally here so log and telemetry stay exact.
  void note_samples_lost(std::int64_t count);
  void note_job_killed(bool had_prologue) {
    ++log_.jobs_killed;
    if (!had_prologue) ++log_.jobs_killed_sans_prologue;
  }
  void note_job_requeued() { ++log_.jobs_requeued; }

  const FaultLog& log() const { return log_; }
  const FaultSchedule& schedule() const { return sched_; }

  /// Checkpoint support: the schedule is a pure function of its config, so
  /// only the tally needs to round-trip.
  void save_ckpt(util::CkptWriter& w) const { log_.save_ckpt(w); }
  void restore_ckpt(util::CkptReader& r) { log_.restore_ckpt(r); }

 private:
  FaultSchedule sched_;
  FaultLog log_;
};

/// Deterministically corrupts stored record lines in place (storage rot /
/// lossy transfer): each non-header line is mangled with the schedule's
/// `record_corrupted` probability.  Returns the number of lines corrupted.
/// The mutations are exactly the defect classes analysis::record_io must
/// survive: truncation, a non-numeric field, and a lost delimiter.
std::int64_t corrupt_records(std::string& file_contents,
                             const FaultSchedule& schedule);

}  // namespace p2sim::fault
