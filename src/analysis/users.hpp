// Per-user accounting.
//
// Section 3: job counter values were written "to a file for later
// processing and viewing by both users and system personnel" — the
// system-personnel view is aggregation by user: who consumes the node
// hours, and at what efficiency.  This is the analysis behind section 6's
// observations that "many of the users have not rewritten their codes to
// take advantage of POWER2 performance features".
#pragma once

#include <cstdint>
#include <vector>

#include "src/pbs/accounting.hpp"

namespace p2sim::analysis {

struct UserStats {
  std::int32_t user_id = 0;
  int jobs = 0;
  double node_hours = 0.0;
  /// Time-weighted Mflops per node across the user's jobs.
  double mflops_per_node = 0.0;
  /// The user's best single job (per node).
  double best_mflops_per_node = 0.0;
};

/// Aggregates analyzed jobs (walltime above the threshold) by user,
/// sorted by node-hours descending.
std::vector<UserStats> user_stats(
    const pbs::JobDatabase& jobs,
    double min_walltime_s = pbs::kMinAnalyzedWalltimeS);

/// Share of total node-hours consumed by the top `n` users — the
/// concentration measure ("a few heavy users dominate" is typical of
/// such machines).
double top_n_node_hour_share(const std::vector<UserStats>& stats,
                             std::size_t n);

}  // namespace p2sim::analysis
