// Record persistence: the files behind the measurement campaign.
//
// On the real system the cron script "stores this data for later analysis"
// and the PBS epilogue writes job counter values "to a file for later
// processing and viewing by both users and system personnel" (section 3).
// This module defines that storage: a line-oriented, versioned text format
// for interval records and job reports, so a campaign can be collected
// once and analyzed many times (or inspected with standard Unix tools).
//
// Current formats (one record per line, fields comma-separated, each line
// closed by an FNV-1a 32-bit checksum of everything before its final
// comma):
//   p2sim-intervals v2 <num_counters>
//   I,<interval>,<sampled>,<expected>,<reprimed>,<busy>,<quad>,
//     <22 user>,<22 system>,<crc 8 hex>
//   p2sim-jobs v3 <num_counters>
//   J,<job_id>,<user_id>,<nodes>,<submit>,<start>,<end>,<complete>,<quad>,
//     <22 user>,<22 system>,<crc 8 hex>
// The v1 format (no checksum, no coverage fields, no completeness flag)
// still loads; v1 lines are assumed fully covered and complete.  Job
// format v2 (no user_id field — user attribution was lost on reload)
// still loads with user_id 0; v3 files round-trip the columnar archive's
// job table byte for byte.
//
// A v2 file ends with a commit trailer — "C,<record count>,<crc 8 hex>" —
// written after the last record.  The trailer is how a loader tells a
// *clean crash truncation* (the writer died mid-file: the tail is gone but
// every surviving line is intact) from *storage corruption* (lines present
// but rotted).  A recovering load reports both verdicts via
// ParseReport::committed / ParseReport::truncated; a strict load refuses a
// v2 file with no trailer.  v1 files predate the trailer and never carry
// one.
//
// Nine months of production files rot: lines get truncated, fields turn to
// garbage, delimiters vanish.  Every load function therefore has two
// modes.  Given only a stream it is strict — the first malformed line
// throws, so tests and pipelines that expect clean data fail loudly.
// Given a ParseReport it recovers: malformed or checksum-failing lines are
// skipped and reported with their line numbers, and every well-formed
// record around them survives.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/pbs/accounting.hpp"
#include "src/rs2hpm/daemon.hpp"

namespace p2sim::analysis {

/// What a recovering load found wrong, line by line.
struct ParseReport {
  struct Issue {
    std::int64_t line = 0;  ///< 1-based line number in the stream
    std::string what;       ///< e.g. "checksum mismatch", "bad counter '#'"
  };
  /// How many offending lines to attach to `issues` with their line number
  /// and reason (set before the load; <= 0 keeps none).  `lines_skipped`
  /// always counts every bad line — a nine-month file can rot in thousands
  /// of places, and a report that grows with the rot is its own leak.
  std::int64_t max_issues = 5;
  std::int64_t lines_total = 0;    ///< record lines seen (blank/trailer excl.)
  std::int64_t lines_loaded = 0;
  std::int64_t lines_skipped = 0;  ///< >= issues.size(); capped by max_issues
  std::vector<Issue> issues;

  /// True when a valid v2 commit trailer closed the file and its count
  /// matched the record lines seen.  Always false for v1 files.
  bool committed = false;
  /// True for a v2 file whose commit trailer is missing or rotted: the
  /// writer died before finishing (clean truncation — drop the tail, keep
  /// everything loaded) or the trailer line itself was corrupted.
  bool truncated = false;

  bool clean() const { return lines_skipped == 0; }
};

/// FNV-1a 32-bit — the per-line checksum of format v2.
std::uint32_t fnv1a32(std::string_view data);

/// Serializes interval records (daemon output) in format v2.
void save_intervals(std::ostream& out,
                    const std::vector<rs2hpm::IntervalRecord>& records);

/// Parses interval records (v1 or v2).  With report == nullptr, throws
/// std::runtime_error at the first malformed line; otherwise skips bad
/// lines and fills in the report.
std::vector<rs2hpm::IntervalRecord> load_intervals(
    std::istream& in, ParseReport* report = nullptr);

/// Serializes the job accounting database in format v2.
void save_jobs(std::ostream& out, const pbs::JobDatabase& jobs);

/// Parses a job database (v1 or v2); modes as load_intervals.
pbs::JobDatabase load_jobs(std::istream& in, ParseReport* report = nullptr);

/// Renders a parse report ("loaded 95/96 lines; line 17: checksum
/// mismatch; ...") for logs and the measurement-loss report.
std::string format_parse_report(const ParseReport& report);

}  // namespace p2sim::analysis
