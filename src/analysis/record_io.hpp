// Record persistence: the files behind the measurement campaign.
//
// On the real system the cron script "stores this data for later analysis"
// and the PBS epilogue writes job counter values "to a file for later
// processing and viewing by both users and system personnel" (section 3).
// This module defines that storage: a line-oriented, versioned text format
// for interval records and job reports, so a campaign can be collected
// once and analyzed many times (or inspected with standard Unix tools).
//
// Format (one record per line, fields comma-separated):
//   p2sim-intervals v1 <num_counters>
//   I,<interval>,<nodes_sampled>,<busy_nodes>,<quad>,<22 user>,<22 system>
// and for jobs:
//   p2sim-jobs v1 <num_counters>
//   J,<job_id>,<nodes>,<submit>,<start>,<end>,<quad>,<22 user>,<22 system>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/pbs/accounting.hpp"
#include "src/rs2hpm/daemon.hpp"

namespace p2sim::analysis {

/// Serializes interval records (daemon output) to a stream.
void save_intervals(std::ostream& out,
                    const std::vector<rs2hpm::IntervalRecord>& records);

/// Parses interval records; throws std::runtime_error on malformed input
/// (bad header, wrong field count, non-numeric fields).
std::vector<rs2hpm::IntervalRecord> load_intervals(std::istream& in);

/// Serializes the job accounting database.
void save_jobs(std::ostream& out, const pbs::JobDatabase& jobs);

/// Parses a job database; throws std::runtime_error on malformed input.
pbs::JobDatabase load_jobs(std::istream& in);

}  // namespace p2sim::analysis
