// Daily aggregation of the interval records — the unit of analysis for
// Figure 1, Tables 2-4 and Figure 5.
//
// The paper's table rates are *single-node* values over elapsed time
// ("system rates may be obtained by multiplying by 144"), averaged over
// whole days; the >2.0 Gflops day filter (30 of 270 days in the paper)
// removes high-idle days before computing Table 2/3 statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "src/rs2hpm/derived.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::analysis {

struct DayStats {
  std::int64_t day = 0;
  /// System performance in Gflops (all nodes, elapsed time).
  double gflops = 0.0;
  /// Fraction of node-time servicing PBS jobs.
  double utilization = 0.0;
  /// Per-node rates over elapsed time (Table 2/3 units).
  rs2hpm::DerivedRates per_node;
  /// Fraction of the day's node-samples the daemon actually delivered
  /// (1.0 on a fault-free day; missed intervals, unreachable nodes and
  /// re-primed baselines all reduce it).
  double coverage = 1.0;
  /// 15-minute records present for this day (96 when none were missed).
  int intervals_recorded = 0;
};

/// Collapses interval records into per-day statistics.  Rates are formed
/// over *covered* node-seconds, so partially measured days estimate the
/// same per-node quantity instead of being biased low; on a fully covered
/// day the denominator is bit-identical to elapsed-time accounting.
std::vector<DayStats> daily_stats(const workload::CampaignResult& result);

/// The paper's filter: days with system performance above the threshold.
/// `min_coverage` additionally drops days too lossy to trust (the paper
/// analyzed only 30 of 270 days, partly for this reason).
std::vector<DayStats> filter_days(const std::vector<DayStats>& days,
                                  double min_gflops = 2.0,
                                  double min_coverage = 0.0);

/// Index of the day whose Mflops is the median of the filtered sample —
/// used as the "representative single day" column of Tables 2 and 3.
std::size_t representative_day_index(const std::vector<DayStats>& days);

}  // namespace p2sim::analysis
