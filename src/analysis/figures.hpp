// Series builders for the paper's five figures.
//
//   Figure 1 — system performance history: daily Gflops, its moving
//              average, and the utilization moving average over 270 days.
//   Figure 2 — batch-job walltime binned by nodes requested (jobs > 600 s).
//   Figure 3 — Mflops per node vs nodes requested (per-bin statistics).
//   Figure 4 — 16-node job performance history in start order, with moving
//              average (the "no improvement over time" evidence).
//   Figure 5 — daily Mflops/node vs (system FXU)/(user FXU): the paging
//              diagnostic scatter.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analysis/daily.hpp"
#include "src/pbs/accounting.hpp"

namespace p2sim::analysis {

struct Fig1Series {
  std::vector<double> day;
  std::vector<double> daily_gflops;
  std::vector<double> gflops_moving_avg;
  std::vector<double> utilization_moving_avg;
  double mean_gflops = 0.0;
  double mean_utilization = 0.0;
  double max_daily_gflops = 0.0;
  double max_daily_utilization = 0.0;
  /// Least-squares slope of daily Gflops vs day ("no obvious trend").
  double trend_slope = 0.0;
};

Fig1Series make_fig1(const std::vector<DayStats>& days,
                     std::size_t ma_window = 14);

struct Fig2Bin {
  int nodes = 0;
  double total_walltime_s = 0.0;
  int jobs = 0;
};

struct Fig2Series {
  std::vector<Fig2Bin> bins;  ///< ascending by node count
  int most_popular_nodes = 0; ///< the paper's answer: 16
  double walltime_beyond_64_fraction = 0.0;
};

Fig2Series make_fig2(const pbs::JobDatabase& jobs);

struct Fig3Bin {
  int nodes = 0;
  double mean_mflops_per_node = 0.0;
  double max_mflops_per_node = 0.0;
  int jobs = 0;
};

struct Fig3Series {
  std::vector<Fig3Bin> bins;
  /// Mean per-node Mflops for <= 64-node jobs vs wider jobs (the collapse).
  double mean_upto_64 = 0.0;
  double mean_beyond_64 = 0.0;
};

Fig3Series make_fig3(const pbs::JobDatabase& jobs);

struct Fig4Series {
  int node_count = 16;
  std::vector<double> job_seq;        ///< 0..n-1 in start order
  std::vector<double> job_mflops;     ///< whole-job Mflops (all nodes)
  std::vector<double> moving_avg;
  double mean = 0.0;
  double stddev = 0.0;
  double trend_slope = 0.0;
};

Fig4Series make_fig4(const pbs::JobDatabase& jobs, int node_count = 16,
                     std::size_t ma_window = 25);

struct Fig5Series {
  std::vector<double> sys_user_fxu_ratio;  ///< per day
  std::vector<double> mflops_per_node;
  double correlation = 0.0;  ///< expected strongly negative
};

/// Days below `min_utilization` are dropped: with almost no user work the
/// system/user ratio is dominated by daemon noise, not by the paging
/// pathology the figure diagnoses.
Fig5Series make_fig5(const std::vector<DayStats>& days,
                     double min_utilization = 0.15);

}  // namespace p2sim::analysis
