#include "src/analysis/loss.hpp"

#include <sstream>

#include "src/analysis/daily.hpp"
#include "src/util/sim_time.hpp"

namespace p2sim::analysis {

MeasurementLoss measure_loss(const workload::CampaignResult& result,
                             double min_coverage) {
  MeasurementLoss loss;
  loss.min_coverage = min_coverage;
  loss.injected = result.faults;

  // Daemon channel.
  loss.intervals_expected = result.intervals_expected;
  loss.intervals_recorded = static_cast<std::int64_t>(result.intervals.size());
  for (const rs2hpm::IntervalRecord& rec : result.intervals) {
    loss.node_samples_expected += rec.nodes_expected;
    loss.node_samples_clean += rec.nodes_sampled;
    loss.node_samples_reprimed += rec.nodes_reprimed;
  }

  // Job channel.
  loss.jobs_recorded = static_cast<std::int64_t>(result.jobs.size());
  for (const pbs::JobRecord& rec : result.jobs.all()) {
    if (rec.report.complete) {
      ++loss.jobs_complete;
    } else {
      ++loss.jobs_incomplete;
    }
  }
  loss.jobs_open_at_end = result.jobs_open_at_end;

  // Day channel.
  const std::vector<DayStats> days = daily_stats(result);
  loss.days_total = static_cast<std::int64_t>(days.size());
  double coverage_sum = 0.0;
  for (const DayStats& d : days) {
    coverage_sum += d.coverage;
    if (d.coverage >= 1.0) ++loss.days_full_coverage;
    if (d.coverage >= min_coverage) ++loss.days_usable;
  }
  loss.mean_coverage =
      days.empty() ? 1.0 : coverage_sum / static_cast<double>(days.size());

  // Reconciliation against the injector's ground truth.
  const fault::FaultLog& f = loss.injected;
  loss.intervals_reconciled = loss.intervals_missing() == f.intervals_missed;
  loss.node_samples_reconciled =
      loss.node_samples_expected - loss.node_samples_clean ==
      f.node_samples_unreachable + f.node_samples_lost +
          loss.node_samples_reprimed;
  // Each lost prologue, kill and lost epilogue yields exactly one
  // incomplete record, except: a killed run that had already lost its
  // prologue is a single record counted under both faults, and a
  // prologue-less run still open at campaign end produced no record yet.
  loss.jobs_reconciled =
      loss.jobs_incomplete ==
      f.prologues_lost + f.jobs_killed + f.epilogues_lost -
          f.jobs_killed_sans_prologue - result.jobs_open_sans_prologue;
  return loss;
}

std::string format_measurement_loss(const MeasurementLoss& loss) {
  std::ostringstream os;
  const auto pct = [](std::int64_t part, std::int64_t whole) {
    return whole > 0 ? 100.0 * static_cast<double>(part) /
                           static_cast<double>(whole)
                     : 0.0;
  };
  os << "Measurement loss report\n";
  os << "=======================\n";
  os << "Daemon samples (15-minute intervals)\n";
  os << "  intervals expected     " << loss.intervals_expected << "\n";
  os << "  intervals recorded     " << loss.intervals_recorded << "\n";
  os << "  intervals missing      " << loss.intervals_missing() << " ("
     << pct(loss.intervals_missing(), loss.intervals_expected) << "%)\n";
  os << "  node-samples expected  " << loss.node_samples_expected << "\n";
  os << "  node-samples clean     " << loss.node_samples_clean << "\n";
  os << "  unreachable (down)     " << loss.injected.node_samples_unreachable
     << "\n";
  os << "  lost in flight         " << loss.injected.node_samples_lost
     << "\n";
  os << "  baselines re-primed    " << loss.node_samples_reprimed << "\n";
  os << "Batch jobs\n";
  os << "  records                " << loss.jobs_recorded << "\n";
  os << "  complete               " << loss.jobs_complete << "\n";
  os << "  incomplete             " << loss.jobs_incomplete << " ("
     << pct(loss.jobs_incomplete, loss.jobs_recorded) << "%)\n";
  os << "  prologues lost         " << loss.injected.prologues_lost << "\n";
  os << "  epilogues lost         " << loss.injected.epilogues_lost << "\n";
  os << "  killed by node crash   " << loss.injected.jobs_killed << "\n";
  os << "  requeued               " << loss.injected.jobs_requeued << "\n";
  os << "  open at campaign end   " << loss.jobs_open_at_end << "\n";
  os << "Days\n";
  os << "  total                  " << loss.days_total << "\n";
  os << "  fully covered          " << loss.days_full_coverage << "\n";
  os << "  usable (coverage >= " << loss.min_coverage << ") "
     << loss.days_usable << "\n";
  os << "  mean coverage          " << loss.mean_coverage << "\n";
  os << "Faults injected\n";
  os << "  node crashes           " << loss.injected.node_crashes << "\n";
  os << "  node-intervals down    " << loss.injected.down_node_intervals
     << "\n";
  os << "  records corrupted      " << loss.injected.records_corrupted
     << "\n";
  os << "  total faults           " << loss.injected.total_faults() << "\n";
  os << "Reconciliation: "
     << (loss.reconciled() ? "every injected fault accounted for"
                           : "MISMATCH between losses and fault log")
     << "\n";
  if (!loss.intervals_reconciled) os << "  interval channel mismatch\n";
  if (!loss.node_samples_reconciled) {
    os << "  node-sample channel mismatch\n";
  }
  if (!loss.jobs_reconciled) os << "  job channel mismatch\n";
  return os.str();
}

}  // namespace p2sim::analysis
