#include "src/analysis/figures.hpp"

#include <algorithm>
#include <map>

#include "src/util/stats.hpp"

namespace p2sim::analysis {

Fig1Series make_fig1(const std::vector<DayStats>& days,
                     std::size_t ma_window) {
  Fig1Series f;
  util::MovingAverage ma_g(ma_window);
  util::MovingAverage ma_u(ma_window);
  util::RunningStats g, u;
  for (const DayStats& d : days) {
    f.day.push_back(static_cast<double>(d.day));
    f.daily_gflops.push_back(d.gflops);
    f.gflops_moving_avg.push_back(ma_g.add(d.gflops));
    f.utilization_moving_avg.push_back(ma_u.add(d.utilization));
    g.add(d.gflops);
    u.add(d.utilization);
  }
  f.mean_gflops = g.mean();
  f.mean_utilization = u.mean();
  f.max_daily_gflops = g.max();
  f.max_daily_utilization = u.max();
  f.trend_slope = util::linear_slope(f.day, f.daily_gflops);
  return f;
}

Fig2Series make_fig2(const pbs::JobDatabase& jobs) {
  Fig2Series f;
  std::map<int, Fig2Bin> bins;
  double total = 0.0;
  double beyond64 = 0.0;
  for (const pbs::JobRecord* r : jobs.analyzed()) {
    Fig2Bin& b = bins[r->spec.nodes_requested];
    b.nodes = r->spec.nodes_requested;
    b.total_walltime_s += r->walltime_s();
    b.jobs += 1;
    total += r->walltime_s();
    if (r->spec.nodes_requested > 64) beyond64 += r->walltime_s();
  }
  double best = -1.0;
  for (const auto& [n, b] : bins) {
    f.bins.push_back(b);
    if (b.total_walltime_s > best) {
      best = b.total_walltime_s;
      f.most_popular_nodes = n;
    }
  }
  f.walltime_beyond_64_fraction = total > 0.0 ? beyond64 / total : 0.0;
  return f;
}

Fig3Series make_fig3(const pbs::JobDatabase& jobs) {
  Fig3Series f;
  std::map<int, std::vector<double>> per_bin;
  for (const pbs::JobRecord* r : jobs.analyzed()) {
    per_bin[r->spec.nodes_requested].push_back(r->mflops_per_node());
  }
  util::RunningStats upto, beyond;
  for (const auto& [n, v] : per_bin) {
    util::RunningStats st;
    for (double x : v) st.add(x);
    f.bins.push_back({n, st.mean(), st.max(), static_cast<int>(v.size())});
    for (double x : v) (n <= 64 ? upto : beyond).add(x);
  }
  f.mean_upto_64 = upto.mean();
  f.mean_beyond_64 = beyond.mean();
  return f;
}

Fig4Series make_fig4(const pbs::JobDatabase& jobs, int node_count,
                     std::size_t ma_window) {
  Fig4Series f;
  f.node_count = node_count;
  util::MovingAverage ma(ma_window);
  util::RunningStats st;
  std::size_t i = 0;
  for (const pbs::JobRecord* r : jobs.by_nodes(node_count)) {
    const double mf = r->job_mflops();
    f.job_seq.push_back(static_cast<double>(i++));
    f.job_mflops.push_back(mf);
    f.moving_avg.push_back(ma.add(mf));
    st.add(mf);
  }
  f.mean = st.mean();
  f.stddev = st.stddev();
  f.trend_slope = util::linear_slope(f.job_seq, f.job_mflops);
  return f;
}

Fig5Series make_fig5(const std::vector<DayStats>& days,
                     double min_utilization) {
  Fig5Series f;
  for (const DayStats& d : days) {
    if (d.utilization < min_utilization) continue;
    f.sys_user_fxu_ratio.push_back(d.per_node.system_user_fxu_ratio);
    f.mflops_per_node.push_back(d.per_node.mflops_all);
  }
  f.correlation = util::pearson(f.sys_user_fxu_ratio, f.mflops_per_node);
  return f;
}

}  // namespace p2sim::analysis
