// Trend and correlation analysis — section 5's negative findings.
//
// "There were no obvious trends in the RS2HPM workload data ... For
// example, workloads executing a greater fraction of floating-point
// operations in the fma unit should display a higher performance rate,
// but NAS workload measurements have yet to display such a trend.  The
// lack of obvious trends such as reductions in performance rates with
// increasing cache and/or TLB miss rates is difficult to analyze since
// the NAS 22-counter selection excluded ... message-passing delays and
// I/O wait times."
//
// This module computes exactly those day-level correlations so the claim
// can be checked quantitatively, and — when the campaign ran the
// wait-state selection — the wait correlations that resolve the puzzle.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/daily.hpp"

namespace p2sim::analysis {

struct MetricCorrelation {
  std::string metric;
  /// Pearson correlation of the metric against daily Mflops/node.
  double vs_mflops = 0.0;
  /// Least-squares slope of the metric against campaign day (per-day
  /// drift; ~0 everywhere is the paper's "no trend" claim).
  double slope_per_day = 0.0;
  double mean = 0.0;
};

struct TrendReport {
  std::vector<MetricCorrelation> metrics;
  int days_analyzed = 0;

  /// Lookup by metric name; nullptr if absent.
  const MetricCorrelation* find(const std::string& name) const;
};

/// Analyzes days with utilization above the floor (near-idle days carry
/// no workload signal).  Metrics: fma_flop_fraction, cache_miss_ratio,
/// tlb_miss_ratio, flops_per_memref, dcache_miss_mps, dma rate, system/
/// user FXU ratio, utilization — and, when nonzero, the wait fractions.
TrendReport analyze_trends(const std::vector<DayStats>& days,
                           double min_utilization = 0.15);

std::string format_trends(const TrendReport& report);

}  // namespace p2sim::analysis
