// The complete measurement report.
//
// Assembles everything the repository reproduces into one formatted text
// document — the deliverable NAS system personnel would have circulated:
// campaign summary, monthly breakdown, Tables 2-4, figure summaries, the
// trend analysis and the per-user accounting.  `examples/sp2_report`
// writes it to disk.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/daily.hpp"
#include "src/analysis/figures.hpp"
#include "src/analysis/tables.hpp"
#include "src/analysis/trends.hpp"
#include "src/analysis/users.hpp"

namespace p2sim::analysis {

/// Per-calendar-month aggregates (30-day months over the campaign).
struct MonthStats {
  int month = 0;               ///< 0-based month index
  double mean_gflops = 0.0;
  double max_gflops = 0.0;
  double mean_utilization = 0.0;
  double mean_mflops_per_node = 0.0;
  int days = 0;
};

std::vector<MonthStats> monthly_stats(const std::vector<DayStats>& days,
                                      int days_per_month = 30);

/// Everything the report needs, computed once.
struct CampaignReport {
  int num_nodes = 0;
  std::int64_t days = 0;
  Fig1Series fig1;
  Table2 table2;
  Table3 table3;
  Table4 table4;
  Fig2Series fig2;
  Fig3Series fig3;
  Fig4Series fig4;
  Fig5Series fig5;
  TrendReport trends;
  std::vector<UserStats> users;
  std::vector<MonthStats> months;
  double batch_mflops_per_node = 0.0;
  std::size_t total_jobs = 0;
};

CampaignReport build_report(const workload::CampaignResult& campaign,
                            double table_min_gflops = 2.0);

/// Renders the full text document.
std::string format_report(const CampaignReport& report);

}  // namespace p2sim::analysis
