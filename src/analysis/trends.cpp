#include "src/analysis/trends.hpp"

#include <cstdio>
#include <functional>

#include "src/util/stats.hpp"

namespace p2sim::analysis {

const MetricCorrelation* TrendReport::find(const std::string& name) const {
  for (const MetricCorrelation& m : metrics) {
    if (m.metric == name) return &m;
  }
  return nullptr;
}

TrendReport analyze_trends(const std::vector<DayStats>& days,
                           double min_utilization) {
  using Getter = std::function<double(const DayStats&)>;
  const std::pair<const char*, Getter> metric_defs[] = {
      {"fma_flop_fraction",
       [](const DayStats& d) { return d.per_node.fma_flop_fraction; }},
      {"cache_miss_ratio",
       [](const DayStats& d) { return d.per_node.cache_miss_ratio; }},
      {"tlb_miss_ratio",
       [](const DayStats& d) { return d.per_node.tlb_miss_ratio; }},
      {"flops_per_memref",
       [](const DayStats& d) { return d.per_node.flops_per_memref; }},
      {"dcache_miss_mps",
       [](const DayStats& d) { return d.per_node.dcache_miss_mps; }},
      {"dma_transfers_mps",
       [](const DayStats& d) {
         return d.per_node.dma_read_mps + d.per_node.dma_write_mps;
       }},
      {"system_user_fxu_ratio",
       [](const DayStats& d) { return d.per_node.system_user_fxu_ratio; }},
      {"utilization", [](const DayStats& d) { return d.utilization; }},
      {"comm_wait_fraction",
       [](const DayStats& d) { return d.per_node.comm_wait_fraction; }},
      {"io_wait_fraction",
       [](const DayStats& d) { return d.per_node.io_wait_fraction; }},
      {"mflops_per_node",
       [](const DayStats& d) { return d.per_node.mflops_all; }},
  };

  std::vector<double> day_axis, mflops;
  std::vector<const DayStats*> selected;
  for (const DayStats& d : days) {
    if (d.utilization < min_utilization) continue;
    selected.push_back(&d);
    day_axis.push_back(static_cast<double>(d.day));
    mflops.push_back(d.per_node.mflops_all);
  }

  TrendReport report;
  report.days_analyzed = static_cast<int>(selected.size());
  for (const auto& [name, get] : metric_defs) {
    std::vector<double> xs;
    util::RunningStats st;
    xs.reserve(selected.size());
    for (const DayStats* d : selected) {
      xs.push_back(get(*d));
      st.add(xs.back());
    }
    MetricCorrelation m;
    m.metric = name;
    m.vs_mflops = util::pearson(xs, mflops);
    m.slope_per_day = util::linear_slope(day_axis, xs);
    m.mean = st.mean();
    report.metrics.push_back(std::move(m));
  }
  return report;
}

std::string format_trends(const TrendReport& report) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-24s %10s %14s %12s\n", "metric",
                "mean", "corr(Mflops)", "slope/day");
  out += buf;
  for (const MetricCorrelation& m : report.metrics) {
    std::snprintf(buf, sizeof(buf), "  %-24s %10.4g %14.2f %12.2e\n",
                  m.metric.c_str(), m.mean, m.vs_mflops, m.slope_per_day);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  (%d days analyzed)\n",
                report.days_analyzed);
  out += buf;
  return out;
}

}  // namespace p2sim::analysis
