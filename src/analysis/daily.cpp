#include "src/analysis/daily.hpp"

#include <algorithm>

#include "src/util/sim_time.hpp"

namespace p2sim::analysis {

std::vector<DayStats> daily_stats(const workload::CampaignResult& result) {
  std::vector<DayStats> out;
  if (result.num_nodes <= 0) return out;
  const double day_elapsed_per_node = 86400.0;

  std::vector<DayStats> days(static_cast<std::size_t>(result.days));
  std::vector<rs2hpm::ModeTotals> day_delta(
      static_cast<std::size_t>(result.days));
  std::vector<std::uint64_t> day_quads(static_cast<std::size_t>(result.days),
                                       0);
  std::vector<double> day_busy(static_cast<std::size_t>(result.days), 0.0);
  std::vector<double> day_covered_ns(static_cast<std::size_t>(result.days),
                                     0.0);
  std::vector<int> day_records(static_cast<std::size_t>(result.days), 0);

  for (const rs2hpm::IntervalRecord& rec : result.intervals) {
    if (rec.interval < 0) continue;
    const std::int64_t d = rec.interval / util::kIntervalsPerDay;
    if (d < 0 || d >= result.days) continue;
    day_delta[static_cast<std::size_t>(d)] += rec.delta;
    day_quads[static_cast<std::size_t>(d)] += rec.quad_surplus;
    day_busy[static_cast<std::size_t>(d)] +=
        static_cast<double>(rec.busy_nodes);
    // Covered node-seconds: each interval contributes 900 s per node that
    // actually delivered a clean delta.  On a fault-free day this sums to
    // exactly 86400 x num_nodes (900*144 = 129600 is exactly representable
    // and 96 equal additions stay exact), so full-coverage rates are
    // bit-identical to the elapsed-time denominator.
    day_covered_ns[static_cast<std::size_t>(d)] +=
        static_cast<double>(rec.nodes_sampled) *
        static_cast<double>(util::kIntervalSeconds);
    ++day_records[static_cast<std::size_t>(d)];
  }

  for (std::int64_t d = 0; d < result.days; ++d) {
    const auto di = static_cast<std::size_t>(d);
    DayStats s;
    s.day = d;
    const double full_ns = day_elapsed_per_node * result.num_nodes;
    // Per-node rates over covered node-seconds; an entirely unmeasured day
    // keeps the full denominator (its deltas are zero either way).
    const double denom = day_covered_ns[di] > 0.0 ? day_covered_ns[di]
                                                  : full_ns;
    s.per_node = rs2hpm::derive_rates(day_delta[di], denom, day_quads[di],
                                      result.selection);
    s.gflops = s.per_node.mflops_all * result.num_nodes / 1000.0;
    s.utilization =
        day_records[di] > 0
            ? day_busy[di] / (static_cast<double>(day_records[di]) *
                              result.num_nodes)
            : 0.0;
    s.coverage = day_covered_ns[di] / full_ns;
    s.intervals_recorded = day_records[di];
    days[di] = s;
  }
  return days;
}

std::vector<DayStats> filter_days(const std::vector<DayStats>& days,
                                  double min_gflops, double min_coverage) {
  std::vector<DayStats> out;
  for (const DayStats& d : days) {
    if (d.gflops > min_gflops && d.coverage >= min_coverage) out.push_back(d);
  }
  return out;
}

std::size_t representative_day_index(const std::vector<DayStats>& days) {
  if (days.empty()) return 0;
  std::vector<std::size_t> idx(days.size());
  for (std::size_t i = 0; i < days.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return days[a].per_node.mflops_all < days[b].per_node.mflops_all;
  });
  return idx[idx.size() / 2];
}

}  // namespace p2sim::analysis
