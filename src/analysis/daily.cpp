#include "src/analysis/daily.hpp"

#include <algorithm>

#include "src/util/sim_time.hpp"

namespace p2sim::analysis {

std::vector<DayStats> daily_stats(const workload::CampaignResult& result) {
  std::vector<DayStats> out;
  if (result.num_nodes <= 0) return out;
  const double day_elapsed_per_node = 86400.0;

  std::vector<DayStats> days(static_cast<std::size_t>(result.days));
  std::vector<rs2hpm::ModeTotals> day_delta(
      static_cast<std::size_t>(result.days));
  std::vector<std::uint64_t> day_quads(static_cast<std::size_t>(result.days),
                                       0);
  std::vector<double> day_busy(static_cast<std::size_t>(result.days), 0.0);

  for (const rs2hpm::IntervalRecord& rec : result.intervals) {
    if (rec.interval < 0) continue;
    const std::int64_t d = rec.interval / util::kIntervalsPerDay;
    if (d < 0 || d >= result.days) continue;
    day_delta[static_cast<std::size_t>(d)] += rec.delta;
    day_quads[static_cast<std::size_t>(d)] += rec.quad_surplus;
    day_busy[static_cast<std::size_t>(d)] +=
        static_cast<double>(rec.busy_nodes);
  }

  for (std::int64_t d = 0; d < result.days; ++d) {
    DayStats s;
    s.day = d;
    // Per-node rates: divide the summed counters across the whole machine
    // by (seconds in a day x nodes).
    s.per_node = rs2hpm::derive_rates(
        day_delta[static_cast<std::size_t>(d)],
        day_elapsed_per_node * result.num_nodes,
        day_quads[static_cast<std::size_t>(d)], result.selection);
    s.gflops = s.per_node.mflops_all * result.num_nodes / 1000.0;
    s.utilization = day_busy[static_cast<std::size_t>(d)] /
                    (static_cast<double>(util::kIntervalsPerDay) *
                     result.num_nodes);
    days[static_cast<std::size_t>(d)] = s;
  }
  return days;
}

std::vector<DayStats> filter_days(const std::vector<DayStats>& days,
                                  double min_gflops) {
  std::vector<DayStats> out;
  for (const DayStats& d : days) {
    if (d.gflops > min_gflops) out.push_back(d);
  }
  return out;
}

std::size_t representative_day_index(const std::vector<DayStats>& days) {
  if (days.empty()) return 0;
  std::vector<std::size_t> idx(days.size());
  for (std::size_t i = 0; i < days.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return days[a].per_node.mflops_all < days[b].per_node.mflops_all;
  });
  return idx[idx.size() / 2];
}

}  // namespace p2sim::analysis
