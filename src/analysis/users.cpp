#include "src/analysis/users.hpp"

#include <algorithm>
#include <map>

namespace p2sim::analysis {

std::vector<UserStats> user_stats(const pbs::JobDatabase& jobs,
                                  double min_walltime_s) {
  struct Accum {
    int jobs = 0;
    double node_seconds = 0.0;
    double weighted_mflops = 0.0;  // sum of mflops/node * walltime
    double walltime = 0.0;
    double best = 0.0;
  };
  std::map<std::int32_t, Accum> by_user;
  for (const pbs::JobRecord* r : jobs.analyzed(min_walltime_s)) {
    Accum& a = by_user[r->spec.user_id];
    const double w = r->walltime_s();
    a.jobs += 1;
    a.node_seconds += w * r->spec.nodes_requested;
    a.weighted_mflops += r->mflops_per_node() * w;
    a.walltime += w;
    a.best = std::max(a.best, r->mflops_per_node());
  }
  std::vector<UserStats> out;
  out.reserve(by_user.size());
  for (const auto& [user, a] : by_user) {
    UserStats s;
    s.user_id = user;
    s.jobs = a.jobs;
    s.node_hours = a.node_seconds / 3600.0;
    s.mflops_per_node = a.walltime > 0.0 ? a.weighted_mflops / a.walltime
                                         : 0.0;
    s.best_mflops_per_node = a.best;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const UserStats& a,
                                       const UserStats& b) {
    return a.node_hours > b.node_hours;
  });
  return out;
}

double top_n_node_hour_share(const std::vector<UserStats>& stats,
                             std::size_t n) {
  double total = 0.0, top = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    total += stats[i].node_hours;
    if (i < n) top += stats[i].node_hours;
  }
  return total > 0.0 ? top / total : 0.0;
}

}  // namespace p2sim::analysis
