#include "src/analysis/tables.hpp"

#include <cmath>
#include <cstdio>
#include <functional>

#include "src/check/check.hpp"
#include "src/power2/signature.hpp"
#include "src/util/stats.hpp"
#include "src/workload/kernels.hpp"

namespace p2sim::analysis {
namespace {

using Getter = std::function<double(const DayStats&)>;

RateRow make_row(std::string section, std::string label,
                 const std::vector<DayStats>& sample, std::size_t rep,
                 const Getter& get) {
  util::RunningStats st;
  for (const DayStats& d : sample) st.add(get(d));
  RateRow row;
  row.section = std::move(section);
  row.label = std::move(label);
  row.day = sample.empty() ? 0.0 : get(sample[rep]);
  row.avg = st.mean();
  row.stddev = st.stddev();
  P2SIM_CHECK(std::isfinite(row.avg) && std::isfinite(row.stddev) &&
                  row.stddev >= 0.0,
              "table rates must be finite with non-negative spread");
  return row;
}

std::string format_rows(const std::vector<RateRow>& rows,
                        const char* day_header) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-38s %10s %10s %10s\n", "Rates",
                day_header, "Avg", "Std");
  out += buf;
  std::string last_section;
  for (const RateRow& r : rows) {
    if (r.section != last_section && !r.section.empty()) {
      out += "  " + r.section + "\n";
      last_section = r.section;
    }
    std::snprintf(buf, sizeof(buf), "  %-38s %10.3f %10.3f %10.3f\n",
                  r.label.c_str(), r.day, r.avg, r.stddev);
    out += buf;
  }
  return out;
}

}  // namespace

Table2 make_table2(const std::vector<DayStats>& all_days, double min_gflops,
                   double min_coverage) {
  std::vector<DayStats> sample = filter_days(all_days, min_gflops, min_coverage);
  Table2 t;
  if (sample.empty()) {
    // Short or idle campaigns can have no day above the paper's filter;
    // fall back to the whole campaign rather than an empty table.
    sample = all_days;
    t.filtered = false;
  }
  t.total_days = static_cast<int>(all_days.size());
  t.sample_days = static_cast<int>(sample.size());
  if (sample.empty()) return t;
  const std::size_t rep = representative_day_index(sample);
  t.representative_day = sample[rep].day;

  t.rows.push_back(make_row("", "Mips", sample, rep,
                            [](const DayStats& d) { return d.per_node.mips; }));
  t.rows.push_back(make_row("", "Mops", sample, rep,
                            [](const DayStats& d) { return d.per_node.mops; }));
  t.rows.push_back(make_row(
      "", "Mflops", sample, rep,
      [](const DayStats& d) { return d.per_node.mflops_all; }));

  util::RunningStats g, u;
  for (const DayStats& d : sample) {
    g.add(d.gflops);
    u.add(d.utilization);
  }
  t.sample_mean_gflops = g.mean();
  t.sample_mean_utilization = u.mean();
  return t;
}

Table3 make_table3(const std::vector<DayStats>& all_days, double min_gflops,
                   double min_coverage) {
  std::vector<DayStats> sample = filter_days(all_days, min_gflops, min_coverage);
  Table3 t;
  if (sample.empty()) {
    sample = all_days;
    t.filtered = false;
  }
  t.sample_days = static_cast<int>(sample.size());
  if (sample.empty()) return t;
  const std::size_t rep = representative_day_index(sample);
  t.representative_day = sample[rep].day;

  auto add = [&](const char* sec, const char* label, Getter get) {
    t.rows.push_back(make_row(sec, label, sample, rep, std::move(get)));
  };
  using D = DayStats;
  add("OPS", "Mflops-All", [](const D& d) { return d.per_node.mflops_all; });
  add("OPS", "Mflops-add", [](const D& d) { return d.per_node.mflops_add; });
  add("OPS", "Mflops-div", [](const D& d) { return d.per_node.mflops_div; });
  add("OPS", "Mflops-mult", [](const D& d) { return d.per_node.mflops_mul; });
  add("OPS", "Mflops-fma", [](const D& d) { return d.per_node.mflops_fma; });
  add("INST", "Mips-Floating Point (Total)",
      [](const D& d) { return d.per_node.mips_fpu; });
  add("INST", "Mips-Floating Point (Unit 0)",
      [](const D& d) { return d.per_node.mips_fpu0; });
  add("INST", "Mips-Floating Point (Unit 1)",
      [](const D& d) { return d.per_node.mips_fpu1; });
  add("INST", "Mips-Fixed Point Unit (Total)",
      [](const D& d) { return d.per_node.mips_fxu; });
  add("INST", "Mips-Fixed Point (Unit 1)",
      [](const D& d) { return d.per_node.mips_fxu1; });
  add("INST", "Mips-Fixed Point (Unit 0)",
      [](const D& d) { return d.per_node.mips_fxu0; });
  add("INST", "Mips-Inst Cache Unit",
      [](const D& d) { return d.per_node.mips_icu; });
  add("CACHE", "Data Cache Misses-Million/S",
      [](const D& d) { return d.per_node.dcache_miss_mps; });
  add("CACHE", "TLB-Million/S",
      [](const D& d) { return d.per_node.tlb_miss_mps; });
  add("CACHE", "Instruction Cache Misses-Million/S",
      [](const D& d) { return d.per_node.icache_miss_mps; });
  add("I/O", "DMA reads-MTransfer/S",
      [](const D& d) { return d.per_node.dma_read_mps; });
  add("I/O", "DMA writes-MTransfer/S",
      [](const D& d) { return d.per_node.dma_write_mps; });
  return t;
}

Table4 make_table4(const std::vector<DayStats>& all_days,
                   const power2::CoreConfig& core_cfg, double min_gflops,
                   double min_coverage) {
  Table4 t;
  std::vector<DayStats> sample = filter_days(all_days, min_gflops, min_coverage);
  if (sample.empty()) sample = all_days;
  util::RunningStats cm, tm, mf;
  for (const DayStats& d : sample) {
    cm.add(d.per_node.cache_miss_ratio);
    tm.add(d.per_node.tlb_miss_ratio);
    mf.add(d.per_node.mflops_all);
  }
  t.nas_workload = {"NAS Workload", cm.mean(), tm.mean(), mf.mean()};

  power2::Power2Core core(core_cfg);
  {
    const auto sig = power2::measure_signature(core, workload::sequential_sweep());
    const double fxu = sig.fxu0_inst + sig.fxu1_inst;
    t.sequential = {"Sequential Access",
                    fxu > 0 ? sig.dcache_miss / fxu : 0.0,
                    fxu > 0 ? sig.tlb_miss / fxu : 0.0, 0.0};
  }
  {
    const auto sig = power2::measure_signature(core, workload::npb_bt_like());
    const double fxu = sig.fxu0_inst + sig.fxu1_inst;
    // BT on 49 CPUs: delivered rate includes its communication share.
    const double comm_fraction_49 = 0.18;
    t.npb_bt = {"NPB BT on 49 CPUs",
                fxu > 0 ? sig.dcache_miss / fxu : 0.0,
                fxu > 0 ? sig.tlb_miss / fxu : 0.0,
                sig.mflops() * (1.0 - comm_fraction_49)};
  }
  return t;
}

std::string format_table2(const Table2& t) {
  std::string out = "Table 2: Measured Major Rates for NAS Workload\n";
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "  (sample: %d of %d days above filter; representative day "
                "%lld; sample mean %.2f Gflops at %.0f%% utilization)\n",
                t.sample_days, t.total_days,
                static_cast<long long>(t.representative_day),
                t.sample_mean_gflops, 100.0 * t.sample_mean_utilization);
  out += buf;
  out += format_rows(t.rows, "Day");
  return out;
}

std::string format_table3(const Table3& t) {
  std::string out = "Table 3: Measured Major Rates for NAS Workload\n";
  char buf[120];
  std::snprintf(buf, sizeof(buf), "  (representative day %lld; %d-day sample)\n",
                static_cast<long long>(t.representative_day), t.sample_days);
  out += buf;
  out += format_rows(t.rows, "Day");
  return out;
}

std::string format_table4(const Table4& t) {
  char buf[200];
  std::string out = "Table 4: Hierarchical Memory Performance\n";
  std::snprintf(buf, sizeof(buf), "  %-18s %14s %18s %14s\n", "Rate",
                "NAS Workload", "Sequential Access", "NPB BT/49");
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %13.2f%% %17.2f%% %13.2f%%\n",
                "Cache Miss Ratio", 100.0 * t.nas_workload.cache_miss_ratio,
                100.0 * t.sequential.cache_miss_ratio,
                100.0 * t.npb_bt.cache_miss_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %13.3f%% %17.3f%% %13.3f%%\n",
                "TLB Miss Ratio", 100.0 * t.nas_workload.tlb_miss_ratio,
                100.0 * t.sequential.tlb_miss_ratio,
                100.0 * t.npb_bt.tlb_miss_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %14.1f %18s %14.1f\n", "Mflops/CPU",
                t.nas_workload.mflops_per_cpu, "-", t.npb_bt.mflops_per_cpu);
  out += buf;
  return out;
}

}  // namespace p2sim::analysis
