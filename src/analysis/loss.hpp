// The measurement-loss report: how much of the nine-month campaign was
// actually measured, and where the rest went.
//
// Bergeron analyzed 30 of 270 days; the rest were lost to low activity and
// to the collection stack itself (crashed nodes, missed cron samples, dead
// prologue/epilogue scripts).  This module audits a fault-injected campaign
// from the *consumer* side: it reconstructs every loss visible in the
// recorded data and reconciles the totals against the injector's ground
// truth FaultLog.  A campaign whose report does not reconcile has either a
// leak in the degradation handling or a fault the pipeline silently
// absorbed into its rates — both bugs.
#pragma once

#include <cstdint>
#include <string>

#include "src/fault/fault.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::analysis {

struct MeasurementLoss {
  // --- daemon channel (15-minute interval records) ---
  std::int64_t intervals_expected = 0;
  std::int64_t intervals_recorded = 0;
  std::int64_t intervals_missing() const {
    return intervals_expected - intervals_recorded;
  }
  /// Node-samples over *recorded* intervals only.
  std::int64_t node_samples_expected = 0;
  /// Clean per-node deltas that entered the rates.
  std::int64_t node_samples_clean = 0;
  /// Baselines re-established after a counter reset (delta dropped).
  std::int64_t node_samples_reprimed = 0;

  // --- job channel (PBS accounting records) ---
  std::int64_t jobs_recorded = 0;
  std::int64_t jobs_complete = 0;
  std::int64_t jobs_incomplete = 0;
  /// Runs that never produced a record (still running/queued at the end).
  std::int64_t jobs_open_at_end = 0;

  // --- day channel (the paper's unit of analysis) ---
  std::int64_t days_total = 0;
  std::int64_t days_full_coverage = 0;
  /// Days meeting the coverage threshold below.
  std::int64_t days_usable = 0;
  double min_coverage = 0.0;
  double mean_coverage = 0.0;

  // --- ground truth and reconciliation ---
  fault::FaultLog injected;
  /// intervals_missing() == injected.intervals_missed.
  bool intervals_reconciled = false;
  /// expected - clean == unreachable + lost-in-flight + reprimed.
  bool node_samples_reconciled = false;
  /// incomplete records == lost prologues + kills + lost epilogues, less
  /// the overlaps (a killed prologue-less run is one record, not two) and
  /// the prologue-less runs still open at campaign end.
  bool jobs_reconciled = false;

  bool reconciled() const {
    return intervals_reconciled && node_samples_reconciled &&
           jobs_reconciled;
  }
};

/// Builds the report from a campaign result.  `min_coverage` is the
/// day-usability threshold (the same value the tables should be given).
MeasurementLoss measure_loss(const workload::CampaignResult& result,
                             double min_coverage = 0.9);

/// Human-readable rendering, one channel per block.
std::string format_measurement_loss(const MeasurementLoss& loss);

}  // namespace p2sim::analysis
