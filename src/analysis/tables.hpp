// Reconstructions of the paper's Tables 2, 3 and 4 from simulated data.
//
// Tables 2 and 3 report a representative single day plus the mean and
// standard deviation over the >2.0 Gflops day sample; Table 4 compares the
// workload's memory-hierarchy ratios against the sequential-access
// reference pattern and the tuned NPB BT code.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/daily.hpp"
#include "src/power2/core.hpp"

namespace p2sim::analysis {

/// One (day, avg, std) triple of Table 2 / Table 3.
struct RateRow {
  std::string section;  ///< "", "OPS", "INST", "CACHE", "I/O"
  std::string label;
  double day = 0.0;
  double avg = 0.0;
  double stddev = 0.0;
};

struct Table2 {
  std::vector<RateRow> rows;      ///< Mips, Mops, Mflops
  int sample_days = 0;            ///< days in the sample used
  /// True when the >min_gflops filter produced a non-empty sample; false
  /// when no day passed and the statistics fall back to all days.
  bool filtered = true;
  int total_days = 0;             ///< campaign days (paper: 270)
  std::int64_t representative_day = 0;
  double sample_mean_gflops = 0.0;   ///< paper: ~2.5 Gflops
  double sample_mean_utilization = 0.0;  ///< paper: ~76%
};

Table2 make_table2(const std::vector<DayStats>& all_days,
                   double min_gflops = 2.0, double min_coverage = 0.0);

struct Table3 {
  std::vector<RateRow> rows;
  std::int64_t representative_day = 0;
  int sample_days = 0;
  bool filtered = true;  ///< see Table2::filtered
};

Table3 make_table3(const std::vector<DayStats>& all_days,
                   double min_gflops = 2.0, double min_coverage = 0.0);

struct Table4Column {
  std::string name;
  double cache_miss_ratio = 0.0;
  double tlb_miss_ratio = 0.0;
  double mflops_per_cpu = 0.0;  ///< 0 = not reported (sequential column)
};

struct Table4 {
  Table4Column nas_workload;
  Table4Column sequential;
  Table4Column npb_bt;
};

/// The workload column comes from the filtered days; the sequential and BT
/// columns are measured by running those kernels on the given core model
/// (BT's delivered Mflops/CPU includes its communication share on 49 CPUs).
Table4 make_table4(const std::vector<DayStats>& all_days,
                   const power2::CoreConfig& core, double min_gflops = 2.0,
                   double min_coverage = 0.0);

std::string format_table2(const Table2& t);
std::string format_table3(const Table3& t);
std::string format_table4(const Table4& t);

}  // namespace p2sim::analysis
