#include "src/analysis/record_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace p2sim::analysis {
namespace {

constexpr const char* kIntervalHeader = "p2sim-intervals v1";
constexpr const char* kJobHeader = "p2sim-jobs v1";

void write_totals(std::ostream& out, const rs2hpm::ModeTotals& t) {
  for (std::uint64_t v : t.user) out << ',' << v;
  for (std::uint64_t v : t.system) out << ',' << v;
}

/// Splits a line on commas; no quoting (the format is purely numeric
/// after the leading tag).
std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

template <typename T>
T parse_num(std::string_view s, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("record_io: bad ") + what + " '" +
                             std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s, const char* what) {
  // from_chars<double> is available in libstdc++ 11+; use it directly.
  double v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("record_io: bad ") + what + " '" +
                             std::string(s) + "'");
  }
  return v;
}

rs2hpm::ModeTotals parse_totals(const std::vector<std::string_view>& f,
                        std::size_t first) {
  if (f.size() < first + 2 * hpm::kNumCounters) {
    throw std::runtime_error("record_io: truncated counter fields");
  }
  rs2hpm::ModeTotals t;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    t.user[i] = parse_num<std::uint64_t>(f[first + i], "counter");
  }
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    t.system[i] =
        parse_num<std::uint64_t>(f[first + hpm::kNumCounters + i], "counter");
  }
  return t;
}

void check_header(std::istream& in, const char* expected) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("record_io: empty input");
  }
  std::istringstream hs(line);
  std::string tag, version;
  std::size_t counters = 0;
  hs >> tag >> version >> counters;
  const std::string want(expected);
  if (want.find(tag) != 0 || want.substr(want.find(' ') + 1) != version) {
    throw std::runtime_error("record_io: bad header '" + line + "'");
  }
  if (counters != hpm::kNumCounters) {
    throw std::runtime_error("record_io: counter-count mismatch");
  }
}

}  // namespace

void save_intervals(std::ostream& out,
                    const std::vector<rs2hpm::IntervalRecord>& records) {
  out << kIntervalHeader << ' ' << hpm::kNumCounters << '\n';
  for (const rs2hpm::IntervalRecord& r : records) {
    out << "I," << r.interval << ',' << r.nodes_sampled << ','
        << r.busy_nodes << ',' << r.quad_surplus;
    write_totals(out, r.delta);
    out << '\n';
  }
}

std::vector<rs2hpm::IntervalRecord> load_intervals(std::istream& in) {
  check_header(in, kIntervalHeader);
  std::vector<rs2hpm::IntervalRecord> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    if (f[0] != "I" || f.size() != 5 + 2 * hpm::kNumCounters) {
      throw std::runtime_error("record_io: malformed interval line");
    }
    rs2hpm::IntervalRecord rec;
    rec.interval = parse_num<std::int64_t>(f[1], "interval");
    rec.nodes_sampled = parse_num<int>(f[2], "nodes_sampled");
    rec.busy_nodes = parse_num<int>(f[3], "busy_nodes");
    rec.quad_surplus = parse_num<std::uint64_t>(f[4], "quad_surplus");
    rec.delta = parse_totals(f, 5);
    out.push_back(rec);
  }
  return out;
}

void save_jobs(std::ostream& out, const pbs::JobDatabase& jobs) {
  out << kJobHeader << ' ' << hpm::kNumCounters << '\n';
  for (const pbs::JobRecord& r : jobs.all()) {
    out << "J," << r.spec.job_id << ',' << r.spec.nodes_requested << ','
        << r.spec.submit_time_s << ',' << r.start_time_s << ','
        << r.end_time_s << ',' << r.report.quad_surplus;
    write_totals(out, r.report.delta);
    out << '\n';
  }
}

pbs::JobDatabase load_jobs(std::istream& in) {
  check_header(in, kJobHeader);
  pbs::JobDatabase db;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    if (f[0] != "J" || f.size() != 7 + 2 * hpm::kNumCounters) {
      throw std::runtime_error("record_io: malformed job line");
    }
    pbs::JobRecord rec;
    rec.spec.job_id = parse_num<std::int64_t>(f[1], "job_id");
    rec.spec.nodes_requested = parse_num<int>(f[2], "nodes");
    rec.spec.submit_time_s = parse_double(f[3], "submit");
    rec.start_time_s = parse_double(f[4], "start");
    rec.end_time_s = parse_double(f[5], "end");
    rec.report.job_id = rec.spec.job_id;
    rec.report.nodes = rec.spec.nodes_requested;
    rec.report.elapsed_s = rec.end_time_s - rec.start_time_s;
    rec.report.quad_surplus = parse_num<std::uint64_t>(f[6], "quad");
    rec.report.delta = parse_totals(f, 7);
    db.add(std::move(rec));
  }
  return db;
}

}  // namespace p2sim::analysis
