#include "src/analysis/record_io.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "src/telemetry/session.hpp"
#include "src/util/checksum.hpp"
#include "src/util/numfmt.hpp"

namespace p2sim::analysis {
namespace {

constexpr const char* kIntervalTag = "p2sim-intervals";
constexpr const char* kJobTag = "p2sim-jobs";

void write_totals(std::ostream& out, const rs2hpm::ModeTotals& t) {
  for (std::uint64_t v : t.user) out << ',' << v;
  for (std::uint64_t v : t.system) out << ',' << v;
}

/// Appends ",<crc>" to the line body and writes it out.
void write_checked_line(std::ostream& out, const std::string& body) {
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x", fnv1a32(body));
  out << body << ',' << hex << '\n';
}

/// Splits a line on commas; no quoting (the format is purely numeric
/// after the leading tag).
std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

template <typename T>
T parse_num(std::string_view s, const char* what) {
  T v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("record_io: bad ") + what + " '" +
                             std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s, const char* what) {
  // from_chars<double> is available in libstdc++ 11+; use it directly.
  double v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error(std::string("record_io: bad ") + what + " '" +
                             std::string(s) + "'");
  }
  return v;
}

rs2hpm::ModeTotals parse_totals(const std::vector<std::string_view>& f,
                                std::size_t first) {
  if (f.size() < first + 2 * hpm::kNumCounters) {
    throw std::runtime_error("record_io: truncated counter fields");
  }
  rs2hpm::ModeTotals t;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    t.user[i] = parse_num<std::uint64_t>(f[first + i], "counter");
  }
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    t.system[i] =
        parse_num<std::uint64_t>(f[first + hpm::kNumCounters + i], "counter");
  }
  return t;
}

/// How a loader classified one payload line.  Valid trailers stay out of
/// the ParseReport tallies — they are framing, not data — while a rotted
/// trailer fails like any other bad line and is counted.
enum class LineKind { kRecord, kTrailer };

/// Only the commit trailer starts with "C,": record lines start with "I,"
/// or "J,", and the corruption modes (truncation, mid-line bit rot,
/// delimiter loss) never touch a line's first two bytes.  So a "C," line
/// is a trailer — possibly a rotted one — never a mistaken record.
bool looks_like_trailer(std::string_view line) {
  return line.size() >= 2 && line[0] == 'C' && line[1] == ',';
}

/// Reads the header line; returns the format version (1..max_version —
/// v3 exists only for job files, so each loader names its own ceiling).
int check_header(std::istream& in, const char* expected_tag,
                 int max_version) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("record_io: empty input");
  }
  std::istringstream hs(line);
  std::string tag, version;
  std::size_t counters = 0;
  hs >> tag >> version >> counters;
  int v = 0;
  if (version == "v1") v = 1;
  if (version == "v2") v = 2;
  if (version == "v3") v = 3;
  if (tag != expected_tag || v == 0 || v > max_version) {
    throw std::runtime_error("record_io: bad header '" + line + "'");
  }
  if (counters != hpm::kNumCounters) {
    throw std::runtime_error("record_io: counter-count mismatch");
  }
  return v;
}

/// v2 line validation: the final field must be the 8-hex FNV-1a of
/// everything before it.  Throws on mismatch; returns the fields with the
/// checksum removed so record parsing is version-agnostic afterwards.
std::vector<std::string_view> strip_checksum(std::string_view line,
                                             std::vector<std::string_view> f) {
  if (f.size() < 2 || f.back().size() != 8) {
    throw std::runtime_error("record_io: missing checksum field");
  }
  std::uint32_t stored = 0;
  const std::string_view cs = f.back();
  const auto [ptr, ec] =
      std::from_chars(cs.data(), cs.data() + cs.size(), stored, 16);
  if (ec != std::errc{} || ptr != cs.data() + cs.size()) {
    throw std::runtime_error("record_io: missing checksum field");
  }
  const std::string_view body = line.substr(0, line.size() - 9);
  if (fnv1a32(body) != stored) {
    throw std::runtime_error("record_io: checksum mismatch");
  }
  f.pop_back();
  return f;
}

/// Validates a v2 commit trailer against the record lines seen so far
/// (loaded and skipped alike: rot changes a line's content, not the
/// count of lines the writer committed).  Throws on any defect so the
/// driver counts the line as skipped and the file stays uncommitted.
void check_trailer(std::string_view line, std::vector<std::string_view> f,
                   bool* committed, std::int64_t records_seen) {
  f = strip_checksum(line, std::move(f));
  if (*committed) {
    throw std::runtime_error("record_io: duplicate commit trailer");
  }
  if (f.size() != 2) {
    throw std::runtime_error("record_io: malformed commit trailer");
  }
  if (parse_num<std::int64_t>(f[1], "commit count") != records_seen) {
    throw std::runtime_error("record_io: commit trailer count mismatch");
  }
  *committed = true;
}

/// Line-by-line driver shared by both loaders: strict mode re-throws the
/// first parse error, recovering mode records it and moves on.
template <typename ParseLine>
void for_each_line(std::istream& in, ParseReport* report,
                   ParseLine&& parse_line) {
  std::string line;
  std::int64_t line_no = 1;  // the header was line 1
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    try {
      const LineKind kind = parse_line(line);
      if (report != nullptr && kind == LineKind::kRecord) {
        ++report->lines_total;
        ++report->lines_loaded;
      }
    } catch (const std::runtime_error& e) {
      if (report == nullptr) throw;
      ++report->lines_total;
      ++report->lines_skipped;
      if (static_cast<std::int64_t>(report->issues.size()) <
          report->max_issues) {
        report->issues.push_back({line_no, e.what()});
      }
      if (auto* tel = telemetry::current()) {
        tel->registry
            .counter("p2sim_recordio_lines_skipped_total",
                     "Stored record lines skipped by recovering loads")
            .inc();
      }
    }
  }
}

/// Applies the trailer verdict after the line loop: a recovering load
/// records it, a strict load refuses an uncommitted v2+ file.
void finish_trailer(int version, bool committed, ParseReport* report) {
  if (version < 2) return;
  if (report != nullptr) {
    report->committed = committed;
    report->truncated = !committed;
  } else if (!committed) {
    throw std::runtime_error(
        "record_io: missing commit trailer (file truncated?)");
  }
}

}  // namespace

std::uint32_t fnv1a32(std::string_view data) { return util::fnv1a32(data); }

void save_intervals(std::ostream& out,
                    const std::vector<rs2hpm::IntervalRecord>& records) {
  out << kIntervalTag << " v2 " << hpm::kNumCounters << '\n';
  for (const rs2hpm::IntervalRecord& r : records) {
    std::ostringstream body;
    body << "I," << r.interval << ',' << r.nodes_sampled << ','
         << r.nodes_expected << ',' << r.nodes_reprimed << ','
         << r.busy_nodes << ',' << r.quad_surplus;
    write_totals(body, r.delta);
    write_checked_line(out, body.str());
  }
  write_checked_line(out, "C," + std::to_string(records.size()));
}

std::vector<rs2hpm::IntervalRecord> load_intervals(std::istream& in,
                                                   ParseReport* report) {
  const int version = check_header(in, kIntervalTag, /*max_version=*/2);
  std::vector<rs2hpm::IntervalRecord> out;
  bool committed = false;
  std::int64_t records_seen = 0;
  for_each_line(in, report, [&](const std::string& line) {
    if (version == 2 && looks_like_trailer(line)) {
      check_trailer(line, split(line), &committed, records_seen);
      return LineKind::kTrailer;
    }
    ++records_seen;
    if (committed) {
      throw std::runtime_error("record_io: record after commit trailer");
    }
    auto f = split(line);
    if (version == 2) f = strip_checksum(line, std::move(f));
    const std::size_t fixed = version == 1 ? 5 : 7;
    if (f[0] != "I" || f.size() != fixed + 2 * hpm::kNumCounters) {
      throw std::runtime_error("record_io: malformed interval line");
    }
    rs2hpm::IntervalRecord rec;
    rec.interval = parse_num<std::int64_t>(f[1], "interval");
    rec.nodes_sampled = parse_num<int>(f[2], "nodes_sampled");
    if (version == 1) {
      // v1 predates lossy collection: every sampled fleet was the whole
      // fleet and no baselines were ever re-established.
      rec.nodes_expected = rec.nodes_sampled;
      rec.busy_nodes = parse_num<int>(f[3], "busy_nodes");
      rec.quad_surplus = parse_num<std::uint64_t>(f[4], "quad_surplus");
    } else {
      rec.nodes_expected = parse_num<int>(f[3], "nodes_expected");
      rec.nodes_reprimed = parse_num<int>(f[4], "nodes_reprimed");
      rec.busy_nodes = parse_num<int>(f[5], "busy_nodes");
      rec.quad_surplus = parse_num<std::uint64_t>(f[6], "quad_surplus");
    }
    rec.delta = parse_totals(f, fixed);
    out.push_back(rec);
    return LineKind::kRecord;
  });
  finish_trailer(version, committed, report);
  return out;
}

void save_jobs(std::ostream& out, const pbs::JobDatabase& jobs) {
  out << kJobTag << " v3 " << hpm::kNumCounters << '\n';
  for (const pbs::JobRecord& r : jobs.all()) {
    std::ostringstream body;
    // Shortest round-trip doubles: a parse-and-rewrite cycle (and the
    // archive <-> text converters) must reproduce these bytes exactly.
    body << "J," << r.spec.job_id << ',' << r.spec.user_id << ','
         << r.spec.nodes_requested << ','
         << util::format_double(r.spec.submit_time_s) << ','
         << util::format_double(r.start_time_s) << ','
         << util::format_double(r.end_time_s) << ','
         << (r.report.complete ? 1 : 0) << ',' << r.report.quad_surplus;
    write_totals(body, r.report.delta);
    write_checked_line(out, body.str());
  }
  write_checked_line(out, "C," + std::to_string(jobs.size()));
}

pbs::JobDatabase load_jobs(std::istream& in, ParseReport* report) {
  const int version = check_header(in, kJobTag, /*max_version=*/3);
  pbs::JobDatabase db;
  bool committed = false;
  std::int64_t records_seen = 0;
  for_each_line(in, report, [&](const std::string& line) {
    if (version >= 2 && looks_like_trailer(line)) {
      check_trailer(line, split(line), &committed, records_seen);
      return LineKind::kTrailer;
    }
    ++records_seen;
    if (committed) {
      throw std::runtime_error("record_io: record after commit trailer");
    }
    auto f = split(line);
    if (version >= 2) f = strip_checksum(line, std::move(f));
    const std::size_t fixed = version == 1 ? 7 : (version == 2 ? 8 : 9);
    if (f[0] != "J" || f.size() != fixed + 2 * hpm::kNumCounters) {
      throw std::runtime_error("record_io: malformed job line");
    }
    pbs::JobRecord rec;
    std::size_t at = 1;
    rec.spec.job_id = parse_num<std::int64_t>(f[at++], "job_id");
    if (version >= 3) {
      rec.spec.user_id = parse_num<std::int32_t>(f[at++], "user_id");
    }
    rec.spec.nodes_requested = parse_num<int>(f[at++], "nodes");
    rec.spec.submit_time_s = parse_double(f[at++], "submit");
    rec.start_time_s = parse_double(f[at++], "start");
    rec.end_time_s = parse_double(f[at++], "end");
    rec.report.job_id = rec.spec.job_id;
    rec.report.nodes = rec.spec.nodes_requested;
    rec.report.elapsed_s = rec.end_time_s - rec.start_time_s;
    if (version >= 2) {
      rec.report.complete = parse_num<int>(f[at++], "complete") != 0;
    }
    rec.report.quad_surplus = parse_num<std::uint64_t>(f[at++], "quad");
    rec.report.delta = parse_totals(f, fixed);
    db.add(std::move(rec));
    return LineKind::kRecord;
  });
  finish_trailer(version, committed, report);
  return db;
}

std::string format_parse_report(const ParseReport& report) {
  std::ostringstream os;
  os << "loaded " << report.lines_loaded << "/" << report.lines_total
     << " lines";
  for (const ParseReport::Issue& issue : report.issues) {
    os << "; line " << issue.line << ": " << issue.what;
  }
  const std::int64_t more =
      report.lines_skipped - static_cast<std::int64_t>(report.issues.size());
  if (more > 0) os << "; ... and " << more << " more";
  if (report.truncated) os << "; tail truncated before the commit trailer";
  return os.str();
}

}  // namespace p2sim::analysis
