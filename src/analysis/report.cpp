#include "src/analysis/report.hpp"

#include <cstdio>

#include "src/util/stats.hpp"

namespace p2sim::analysis {

std::vector<MonthStats> monthly_stats(const std::vector<DayStats>& days,
                                      int days_per_month) {
  std::vector<MonthStats> out;
  if (days_per_month <= 0) return out;
  for (std::size_t i = 0; i < days.size();) {
    MonthStats m;
    m.month = static_cast<int>(out.size());
    util::RunningStats g, u, f;
    for (int d = 0; d < days_per_month && i < days.size(); ++d, ++i) {
      g.add(days[i].gflops);
      u.add(days[i].utilization);
      f.add(days[i].per_node.mflops_all);
    }
    m.mean_gflops = g.mean();
    m.max_gflops = g.max();
    m.mean_utilization = u.mean();
    m.mean_mflops_per_node = f.mean();
    m.days = static_cast<int>(g.count());
    out.push_back(m);
  }
  return out;
}

CampaignReport build_report(const workload::CampaignResult& campaign,
                            double table_min_gflops) {
  CampaignReport r;
  r.num_nodes = campaign.num_nodes;
  r.days = campaign.days;
  const std::vector<DayStats> days = daily_stats(campaign);
  r.fig1 = make_fig1(days);
  r.table2 = make_table2(days, table_min_gflops);
  r.table3 = make_table3(days, table_min_gflops);
  r.table4 = make_table4(days, power2::CoreConfig{}, table_min_gflops);
  r.fig2 = make_fig2(campaign.jobs);
  r.fig3 = make_fig3(campaign.jobs);
  r.fig4 = make_fig4(campaign.jobs);
  r.fig5 = make_fig5(days);
  r.trends = analyze_trends(days);
  r.users = user_stats(campaign.jobs);
  r.months = monthly_stats(days);
  r.batch_mflops_per_node = campaign.jobs.time_weighted_mflops_per_node();
  r.total_jobs = campaign.jobs.size();
  return r;
}

std::string format_report(const CampaignReport& r) {
  std::string out;
  char buf[256];
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  add("================================================================\n");
  add("SP2 Workload Measurement Report (simulated RS2HPM campaign)\n");
  add("================================================================\n\n");
  add("Machine: %d nodes, %lld days monitored\n", r.num_nodes,
      static_cast<long long>(r.days));
  add("Mean daily system performance: %.2f Gflops (%.1f%% of %.1f Gflops "
      "peak)\n",
      r.fig1.mean_gflops,
      100.0 * r.fig1.mean_gflops /
          (r.num_nodes * util::MachineClock::kPeakMflopsPerNode / 1000.0),
      r.num_nodes * util::MachineClock::kPeakMflopsPerNode / 1000.0);
  add("Mean utilization: %.0f%% (best day %.0f%%)\n",
      100.0 * r.fig1.mean_utilization, 100.0 * r.fig1.max_daily_utilization);
  add("Jobs completed: %zu; time-weighted batch rate %.1f Mflops/node\n\n",
      r.total_jobs, r.batch_mflops_per_node);

  add("-- monthly summary ----------------------------------------------\n");
  add("  %-6s %6s %10s %10s %12s %14s\n", "month", "days", "Gflops",
      "max", "util", "Mflops/node");
  for (const MonthStats& m : r.months) {
    add("  %-6d %6d %10.2f %10.2f %11.0f%% %14.1f\n", m.month, m.days,
        m.mean_gflops, m.max_gflops, 100.0 * m.mean_utilization,
        m.mean_mflops_per_node);
  }
  out += '\n';

  out += format_table2(r.table2);
  out += '\n';
  out += format_table3(r.table3);
  out += '\n';
  out += format_table4(r.table4);
  out += '\n';

  add("-- batch jobs (Figures 2-4) --------------------------------------\n");
  add("  most popular node count: %d\n", r.fig2.most_popular_nodes);
  add("  walltime beyond 64 nodes: %.2f%%\n",
      100.0 * r.fig2.walltime_beyond_64_fraction);
  add("  Mflops/node at <=64 nodes: %.1f; beyond: %.1f\n", r.fig3.mean_upto_64,
      r.fig3.mean_beyond_64);
  add("  16-node jobs: %zu, mean %.0f Mflops, std %.0f, trend %+.3f "
      "Mflops/job\n\n",
      r.fig4.job_mflops.size(), r.fig4.mean, r.fig4.stddev,
      r.fig4.trend_slope);

  add("-- system intervention (Figure 5) --------------------------------\n");
  add("  corr(system/user FXU, Mflops/node) = %+.2f over %zu days\n\n",
      r.fig5.correlation, r.fig5.mflops_per_node.size());

  add("-- day-level trends ----------------------------------------------\n");
  out += format_trends(r.trends);
  out += '\n';

  add("-- heaviest users ------------------------------------------------\n");
  add("  %-8s %6s %12s %14s\n", "user", "jobs", "node-hours", "Mflops/node");
  const std::size_t top = std::min<std::size_t>(10, r.users.size());
  for (std::size_t i = 0; i < top; ++i) {
    const UserStats& u = r.users[i];
    add("  %-8d %6d %12.0f %14.1f\n", u.user_id, u.jobs, u.node_hours,
        u.mflops_per_node);
  }
  add("  (top 10 of %zu users hold %.0f%% of node-hours)\n", r.users.size(),
      100.0 * top_n_node_hour_share(r.users, 10));
  return out;
}

}  // namespace p2sim::analysis
