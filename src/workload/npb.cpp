#include "src/workload/npb.hpp"

#include <stdexcept>

#include "src/power2/mix_kernel.hpp"
#include "src/workload/kernels.hpp"

namespace p2sim::workload {

using power2::KernelDesc;
using power2::MixKernelSpec;

const std::vector<NpbBenchmark>& npb_suite() {
  static const std::vector<NpbBenchmark> suite = {
      NpbBenchmark::kBT, NpbBenchmark::kSP, NpbBenchmark::kLU,
      NpbBenchmark::kMG, NpbBenchmark::kFT, NpbBenchmark::kCG,
      NpbBenchmark::kEP};
  return suite;
}

std::string_view npb_name(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kBT: return "BT";
    case NpbBenchmark::kSP: return "SP";
    case NpbBenchmark::kLU: return "LU";
    case NpbBenchmark::kMG: return "MG";
    case NpbBenchmark::kFT: return "FT";
    case NpbBenchmark::kCG: return "CG";
    case NpbBenchmark::kEP: return "EP";
  }
  return "?";
}

std::string_view npb_description(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kBT: return "block tridiagonal solver (5x5 blocks)";
    case NpbBenchmark::kSP: return "scalar pentadiagonal solver";
    case NpbBenchmark::kLU: return "SSOR lower-upper solver (wavefront)";
    case NpbBenchmark::kMG: return "multigrid V-cycle Poisson solver";
    case NpbBenchmark::kFT: return "3-D FFT spectral solver";
    case NpbBenchmark::kCG: return "sparse conjugate gradient";
    case NpbBenchmark::kEP: return "embarrassingly parallel Gaussian pairs";
  }
  return "?";
}

KernelDesc npb_kernel(NpbBenchmark b) {
  switch (b) {
    case NpbBenchmark::kBT:
      // The Table 4 reference code.
      return npb_bt_like();

    case NpbBenchmark::kSP: {
      // Scalar pentadiagonal: the same data structures as BT but scalar
      // (not block) solves — less unrolling headroom, longer chains.
      MixKernelSpec s;
      s.name = "npb_sp";
      s.fp_inst = 20;
      s.fma_frac = 0.45;
      s.mul_frac = 0.20;
      s.div_frac = 0.02;
      s.dep_prob = 0.52;
      s.carried_prob = 0.10;
      s.mem_per_fp = 0.70;
      s.store_frac = 0.30;
      s.quad_frac = 0.22;
      s.alu_per_iter = 2.0;
      s.addr_mul_per_iter = 0.5;
      s.condreg_per_iter = 0.5;
      s.streams = 4;
      s.stream_footprint_bytes = 56 * 1024;
      s.seed = 0x5B;
      s.warmup_iters = 1024;
      s.measure_iters = 8192;
      KernelDesc k = power2::make_mix_kernel(s);
      if (k.streams.size() > 1) k.streams[1].footprint_bytes = 3ull << 20;
      return k;
    }

    case NpbBenchmark::kLU: {
      // SSOR: wavefront sweeps carry true dependences between grid points.
      MixKernelSpec s;
      s.name = "npb_lu";
      s.fp_inst = 18;
      s.fma_frac = 0.40;
      s.mul_frac = 0.22;
      s.div_frac = 0.02;
      s.dep_prob = 0.72;       // the wavefront recurrence
      s.carried_prob = 0.30;
      s.mem_per_fp = 0.75;
      s.store_frac = 0.30;
      s.quad_frac = 0.15;
      s.alu_per_iter = 2.0;
      s.addr_mul_per_iter = 0.6;
      s.condreg_per_iter = 0.6;
      s.streams = 4;
      s.stream_footprint_bytes = 64 * 1024;
      s.seed = 0x17;
      s.warmup_iters = 1024;
      s.measure_iters = 8192;
      KernelDesc k = power2::make_mix_kernel(s);
      if (k.streams.size() > 1) k.streams[1].footprint_bytes = 4ull << 20;
      return k;
    }

    case NpbBenchmark::kMG: {
      // Multigrid: stride doubles per level; bandwidth-bound with little
      // arithmetic per point.
      MixKernelSpec s;
      s.name = "npb_mg";
      s.fp_inst = 8;
      s.fma_frac = 0.45;
      s.mul_frac = 0.15;
      s.dep_prob = 0.30;
      s.mem_per_fp = 1.9;
      s.store_frac = 0.30;
      s.quad_frac = 0.25;
      s.alu_per_iter = 2.0;
      s.addr_mul_per_iter = 0.8;
      s.condreg_per_iter = 0.5;
      s.streams = 5;
      s.stream_footprint_bytes = 8ull << 20;  // whole-grid sweeps
      s.stride_bytes = 8;
      s.seed = 0x36;
      s.warmup_iters = 2048;
      s.measure_iters = 8192;
      KernelDesc k = power2::make_mix_kernel(s);
      // Coarse-level sweeps stride across the fine grid.
      if (k.streams.size() > 2) {
        k.streams[1].stride_bytes = 16;
        k.streams[2].stride_bytes = 64;
      }
      return k;
    }

    case NpbBenchmark::kFT: {
      // FFT: butterfly arithmetic is mul/add-rich (no fma chains) and the
      // 3-D transposes walk page-scale strides.
      MixKernelSpec s;
      s.name = "npb_ft";
      s.fp_inst = 16;
      s.fma_frac = 0.15;
      s.mul_frac = 0.45;
      s.dep_prob = 0.35;
      s.mem_per_fp = 1.0;
      s.store_frac = 0.40;
      s.quad_frac = 0.20;
      s.alu_per_iter = 2.0;
      s.addr_mul_per_iter = 1.2;  // index bit-reversal arithmetic
      s.condreg_per_iter = 0.4;
      s.streams = 4;
      s.stream_footprint_bytes = 16ull << 20;
      s.seed = 0xF7;
      s.warmup_iters = 2048;
      s.measure_iters = 8192;
      KernelDesc k = power2::make_mix_kernel(s);
      // The transpose stream: a new cache line every access, a new page
      // every fourth (the blocked transposes of NPB 2.x soften the worst
      // case somewhat).
      if (!k.streams.empty()) k.streams[0].stride_bytes = 1040;
      return k;
    }

    case NpbBenchmark::kCG: {
      // Sparse matvec: indirect gathers defeat both cache and registers.
      MixKernelSpec s;
      s.name = "npb_cg";
      s.fp_inst = 6;
      s.fma_frac = 0.50;  // a*x[k] accumulations
      s.mul_frac = 0.10;
      s.dep_prob = 0.55;
      s.carried_prob = 0.40;  // the dot-product recurrence
      s.load_dep_prob = 0.9;  // every flop feeds off a gather
      s.mem_per_fp = 2.4;     // index load + value load per multiply
      s.store_frac = 0.10;
      s.quad_frac = 0.0;      // gathers cannot use quad loads
      s.alu_per_iter = 3.0;
      s.addr_mul_per_iter = 1.0;
      s.condreg_per_iter = 0.6;
      s.streams = 3;
      s.stream_footprint_bytes = 24ull << 20;
      s.seed = 0xC6;
      s.warmup_iters = 2048;
      s.measure_iters = 8192;
      KernelDesc k = power2::make_mix_kernel(s);
      // The gather stream: a fresh line roughly every other access (row
      // bandwidth gives partial locality), pages churning constantly.
      if (!k.streams.empty()) k.streams[0].stride_bytes = 136;
      return k;
    }

    case NpbBenchmark::kEP: {
      // EP: pseudo-random pair generation; pure arithmetic with sqrt/log
      // (modelled as sqrt + divide multicycle traffic), almost no memory.
      MixKernelSpec s;
      s.name = "npb_ep";
      s.fp_inst = 24;
      s.fma_frac = 0.30;
      s.mul_frac = 0.35;
      s.div_frac = 0.04;
      s.sqrt_frac = 0.04;
      s.dep_prob = 0.30;
      s.mem_per_fp = 0.10;
      s.store_frac = 0.20;
      s.quad_frac = 0.0;
      s.alu_per_iter = 3.0;
      s.condreg_per_iter = 1.0;
      s.streams = 1;
      s.stream_footprint_bytes = 16 * 1024;
      s.seed = 0xE9;
      s.warmup_iters = 512;
      s.measure_iters = 8192;
      return power2::make_mix_kernel(s);
    }
  }
  throw std::invalid_argument("unknown NPB benchmark");
}

}  // namespace p2sim::workload
