// Campaign presets: named driver configurations for common studies.
//
// The default DriverConfig reproduces the paper's nine-month campaign;
// these presets reshape it into the other situations the paper mentions
// or that a site operator would want to rehearse.
#pragma once

#include "src/workload/driver.hpp"

namespace p2sim::workload {

/// The paper's campaign verbatim: 144 nodes, 270 days, the NAS counter
/// selection with the divide bug.
DriverConfig paper_campaign();

/// A dedicated benchmarking week: no interactive or development sessions,
/// no paging (benchmarkers size their problems), high-quality tuned codes
/// only, heavy sustained demand.  This is the regime of the NPB 2.1
/// report — expect per-node rates far above the production workload.
DriverConfig dedicated_benchmark_week();

/// A paging storm: a fortnight where memory-oversubscribed jobs dominate —
/// the Figure 5 pathology amplified for study.
DriverConfig paging_storm_fortnight();

/// The paper's campaign rerun with the recommended wait-state counter
/// selection (see hpm::CounterSelection::kWaitStates).
DriverConfig instrumented_campaign();

}  // namespace p2sim::workload
