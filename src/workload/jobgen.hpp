// Statistical job population generator.
//
// Draws JobSpec + JobProfile pairs matching the populations the paper
// reports: node counts peaked at 16 (then 32 and 8, Figure 2), a wide
// spread of per-code quality (Figure 4's 50-900 Mflops spread on 16
// nodes), wide jobs that oversubscribe memory and page (section 6), and a
// small interactive/benchmark population that the 600-second filter
// removes from the analysis.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/pbs/job.hpp"
#include "src/util/rng.hpp"
#include "src/workload/job_profile.hpp"

namespace p2sim::workload {

struct JobGenConfig {
  /// Node-count choices and weights (defaults reproduce Figure 2's shape).
  std::vector<int> node_choices = {1, 2, 4, 8, 16, 32, 48, 64, 80, 96, 128};
  std::vector<double> node_weights = {4,  3,  6,  14, 22, 15,  4,
                                      6.5, 0.6, 0.45, 0.35};

  /// Runtime draw: lognormal around the median, clamped.
  double runtime_median_s = 2.4 * 3600.0;
  double runtime_sigma = 1.0;
  double runtime_min_s = 90.0;
  double runtime_max_s = 14.0 * 3600.0;

  /// Probability a job is a short interactive/debug session (< 600 s).
  double interactive_prob = 0.18;

  /// Probability a batch job is a development session: dedicated nodes
  /// held for hours while the user edits/compiles/debugs, with the code
  /// actually running only a small fraction of the time.  NAS configured
  /// the machine for code development; these sessions are why machine
  /// utilization (64%) far exceeds what delivered Gflops alone implies.
  double dev_session_prob = 0.25;
  double dev_duty_min = 0.05;
  double dev_duty_max = 0.30;
  int dev_max_nodes = 32;

  /// Memory demand: median per-node MB for narrow jobs; wide jobs (> the
  /// paging_node_threshold) frequently oversubscribe the 128 MB nodes.
  double memory_median_mb = 70.0;
  double memory_sigma = 0.35;
  int paging_node_threshold = 64;
  double wide_paging_prob = 0.75;
  double narrow_paging_prob = 0.04;
  double paging_demand_min = 1.25;  ///< oversubscription draw window
  double paging_demand_max = 2.4;

  /// Paging episodes: memory-hungry campaigns (a user iterating on an
  /// oversized configuration) cluster paging jobs onto particular days —
  /// producing the distinct below-average days of Figure 5 rather than a
  /// thin uniform smear.
  double paging_episode_start_prob = 0.07;  ///< per day
  int paging_episode_min_days = 2;
  int paging_episode_max_days = 5;
  double paging_episode_narrow_prob = 0.45;

  /// Kernel family weights: cfd, mdo, bt, io, strided, naive.
  std::vector<double> family_weights = {0.70, 0.10, 0.08, 0.05, 0.04, 0.03};

  /// Quality distribution of CFD codes (mean ~0.25: mostly codes ported
  /// from other machines without POWER2 tuning, per section 6).
  double quality_mean = 0.22;
  double quality_sigma = 0.18;

  /// Users are persistent: Figure 4 tracks "the history of jobs grouped
  /// by node" on the premise that the same codes resubmit over months.
  /// A batch submission reuses its user's existing code with this
  /// probability (memory demand still redrawn per run — automatic arrays
  /// are sized by the configuration, section 6).
  double code_reuse_prob = 0.65;

  std::uint64_t seed = 0x5EEDB01DULL;
};

class JobGenerator {
 public:
  JobGenerator(const JobGenConfig& cfg, ProfileRegistry& registry);

  /// Draws the next job, submitted at `submit_time_s`.
  pbs::JobSpec next(double submit_time_s);

  std::int64_t jobs_generated() const { return next_job_id_ - 1; }
  const JobGenConfig& config() const { return cfg_; }

  /// Checkpoint support: the RNG stream, id/user counters, episode state
  /// and every user's sticky code round-trip, so the generated population
  /// continues bit-identically after a resume.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

 private:
  JobProfile make_profile(int nodes, bool interactive);
  /// Redraws the run-dependent memory demand (the section 6 automatic
  /// arrays) for a job on `nodes` nodes.
  void assign_memory(JobProfile& profile, int nodes, bool interactive);
  void update_episode(double submit_time_s);

  JobGenConfig cfg_;
  ProfileRegistry& registry_;
  util::Xoshiro256StarStar rng_;
  std::int64_t next_job_id_ = 1;
  std::int32_t next_user_ = 0;
  std::int64_t last_day_ = -1;
  int episode_days_left_ = 0;
  std::map<std::int32_t, JobProfile> user_codes_;
};

}  // namespace p2sim::workload
