#include "src/workload/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/power2/signature_store.hpp"
#include "src/util/checksum.hpp"
#include "src/workload/driver.hpp"

namespace p2sim::workload {
namespace {

/// Container magic: version bumps rename the last byte, so an old binary
/// rejects a new checkpoint with "bad magic" instead of misparsing it.
constexpr char kMagic[8] = {'P', '2', 'S', 'I', 'M', 'C', 'K', '2'};
constexpr std::size_t kHeaderSize = 48;
constexpr std::size_t kHeaderChecksumOffset = 40;

CheckpointTestHook g_test_hook = nullptr;

void put_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint64_t get_le64(std::string_view bytes, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void fail_at(const char* what, std::size_t offset,
                          const char* why) {
  std::ostringstream os;
  os << "checkpoint field '" << what << "' at offset " << offset << ": "
     << why;
  throw util::CkptError(os.str());
}

void set_error(std::string* error, const std::string& path, const char* op) {
  if (error == nullptr) return;
  *error = path + ": " + op + ": " + std::strerror(errno);
}

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Fingerprint helper: the fields stream through a CkptWriter (typed,
/// little-endian, length-prefixed strings) and the byte stream is hashed,
/// so two configs collide only by hash collision, never by ambiguous
/// concatenation.
class FingerprintSink {
 public:
  void b(bool v) { w_.put_bool(v); }
  void i(std::int64_t v) { w_.put_i64(v); }
  void u(std::uint64_t v) { w_.put_u64(v); }
  void d(double v) { w_.put_f64(v); }
  std::uint64_t digest() const {
    return util::fnv1a64(
        std::string_view(w_.bytes().data(), w_.bytes().size()));
  }

 private:
  util::CkptWriter w_;
};

}  // namespace

void set_checkpoint_test_hook(CheckpointTestHook hook) { g_test_hook = hook; }

void checkpoint_test_tick(const char* point, std::int64_t value) {
  if (g_test_hook != nullptr) g_test_hook(point, value);
}

std::uint64_t config_fingerprint(const DriverConfig& cfg) {
  FingerprintSink s;
  // Campaign shape and demand process.
  s.i(cfg.num_nodes);
  s.i(cfg.days);
  s.d(cfg.jobs_per_day);
  s.d(cfg.weekend_factor);
  s.d(cfg.demand_walk_rho);
  s.d(cfg.demand_walk_noise);
  s.d(cfg.demand_min);
  s.d(cfg.demand_max);
  s.d(cfg.slump_prob_per_day);
  s.d(cfg.slump_depth_min);
  s.d(cfg.slump_depth_max);
  s.u(cfg.seed);
  s.b(cfg.requeue_killed_jobs);
  // Fault schedule (a pure function of its config).
  s.b(cfg.faults.enabled);
  s.d(cfg.faults.node_crashes_per_node_day);
  s.i(cfg.faults.reboot_downtime_intervals);
  s.d(cfg.faults.interval_miss_prob);
  s.d(cfg.faults.node_sample_loss_prob);
  s.d(cfg.faults.prologue_loss_prob);
  s.d(cfg.faults.epilogue_loss_prob);
  s.d(cfg.faults.record_corruption_prob);
  s.u(cfg.faults.seed);
  // PBS policy.
  s.i(cfg.sched.total_nodes);
  s.i(cfg.sched.drain_threshold_nodes);
  s.d(cfg.sched.wide_wait_patience_s);
  s.b(cfg.sched.checkpoint_for_wide);
  // Node model (monitor selection included: it steers counter wiring).
  s.d(cfg.node.clock_hz);
  s.d(cfg.node.memory_mb);
  s.b(cfg.node.monitor.divide_counter_bug);
  s.i(static_cast<std::int64_t>(cfg.node.monitor.selection));
  s.d(cfg.node.dma.eight_word_fraction);
  s.d(cfg.node.fault_fxu_inst);
  s.d(cfg.node.fault_icu_inst);
  s.d(cfg.node.fault_cycles);
  s.d(cfg.node.page_bytes);
  s.d(cfg.node.os_noise_fxu_per_s);
  s.d(cfg.node.os_noise_icu_per_s);
  s.d(cfg.node.max_sample_slice_s);
  s.b(cfg.node.reference_accrual);
  // Paging, switch, NFS.
  s.d(cfg.paging.node_memory_mb);
  s.d(cfg.paging.fault_rate_at_2x);
  s.d(cfg.paging.fault_service_s);
  s.d(cfg.paging.fxu_inst_per_fault);
  s.d(cfg.paging.icu_inst_per_fault);
  s.d(cfg.paging.cycles_per_fault);
  s.d(cfg.paging.page_bytes);
  s.d(cfg.hps.latency_s);
  s.d(cfg.hps.bandwidth_bytes_per_s);
  s.i(cfg.nfs.num_filesystems);
  s.d(cfg.nfs.capacity_gb_each);
  s.d(cfg.nfs.server_bandwidth_bytes_per_s);
  // POWER2 core: reuse the signature store's structural hash.
  s.u(power2::core_config_hash(cfg.core));
  // Job generator (vectors hashed element-wise behind their lengths).
  const JobGenConfig& g = cfg.jobgen;
  s.i(static_cast<std::int64_t>(g.node_choices.size()));
  for (int c : g.node_choices) s.i(c);
  s.i(static_cast<std::int64_t>(g.node_weights.size()));
  for (double wgt : g.node_weights) s.d(wgt);
  s.d(g.runtime_median_s);
  s.d(g.runtime_sigma);
  s.d(g.runtime_min_s);
  s.d(g.runtime_max_s);
  s.d(g.interactive_prob);
  s.d(g.dev_session_prob);
  s.d(g.dev_duty_min);
  s.d(g.dev_duty_max);
  s.i(g.dev_max_nodes);
  s.d(g.memory_median_mb);
  s.d(g.memory_sigma);
  s.i(g.paging_node_threshold);
  s.d(g.wide_paging_prob);
  s.d(g.narrow_paging_prob);
  s.d(g.paging_demand_min);
  s.d(g.paging_demand_max);
  s.d(g.paging_episode_start_prob);
  s.i(g.paging_episode_min_days);
  s.i(g.paging_episode_max_days);
  s.d(g.paging_episode_narrow_prob);
  s.i(static_cast<std::int64_t>(g.family_weights.size()));
  for (double wgt : g.family_weights) s.d(wgt);
  s.d(g.quality_mean);
  s.d(g.quality_sigma);
  s.d(g.code_reuse_prob);
  s.u(g.seed);
  // Deliberately excluded: threads, observer, signature_store_path and
  // the checkpoint config — none of them shape campaign results.
  return s.digest();
}

std::string encode_checkpoint_file(std::uint64_t config_hash,
                                   std::int64_t resume_interval,
                                   std::string_view payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_le64(out, config_hash);
  put_le64(out, std::bit_cast<std::uint64_t>(resume_interval));
  put_le64(out, payload.size());
  put_le64(out, util::fnv1a64(payload));
  put_le64(out, util::fnv1a64(
                    std::string_view(out.data(), kHeaderChecksumOffset)));
  out.append(payload.data(), payload.size());
  return out;
}

CheckpointImage decode_checkpoint_file(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    fail_at("header", bytes.size(), "file shorter than the 48-byte header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    fail_at("magic", 0, "bad magic (not a p2sim checkpoint, or a "
                        "different container version)");
  }
  const std::uint64_t stored_header_sum =
      get_le64(bytes, kHeaderChecksumOffset);
  const std::uint64_t actual_header_sum =
      util::fnv1a64(bytes.substr(0, kHeaderChecksumOffset));
  if (stored_header_sum != actual_header_sum) {
    fail_at("header_checksum", kHeaderChecksumOffset,
            "header checksum mismatch (torn or corrupted header)");
  }
  CheckpointImage img;
  img.config_hash = get_le64(bytes, 8);
  img.resume_interval =
      std::bit_cast<std::int64_t>(get_le64(bytes, 16));
  const std::uint64_t payload_size = get_le64(bytes, 24);
  const std::uint64_t payload_sum = get_le64(bytes, 32);
  if (img.resume_interval < 0) {
    fail_at("resume_interval", 16, "negative resume interval");
  }
  if (payload_size != bytes.size() - kHeaderSize) {
    fail_at("payload_size", 24,
            "payload size disagrees with file size (truncated write)");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (util::fnv1a64(payload) != payload_sum) {
    fail_at("payload_checksum", kHeaderSize,
            "payload checksum mismatch (torn or corrupted payload)");
  }
  img.payload.assign(payload.data(), payload.size());
  return img;
}

std::string checkpoint_file_name(std::int64_t resume_interval) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ckpt-%012lld.p2ck",
                static_cast<long long>(resume_interval));
  return buf;
}

std::vector<std::string> list_checkpoints(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.compare(0, 5, "ckpt-") == 0 &&
        name.size() > 5 + 5 &&
        name.compare(name.size() - 5, 5, ".p2ck") == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool write_checkpoint(const std::string& dir, std::uint64_t config_hash,
                      std::int64_t resume_interval, std::string_view payload,
                      int keep, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string data =
      encode_checkpoint_file(config_hash, resume_interval, payload);
  const std::string path = dir + "/" + checkpoint_file_name(resume_interval);
  const std::string tmp = path + ".tmp";

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, tmp, "open");
    return false;
  }
  // Two half-writes with a test tick between them: the kill harness lands
  // SIGKILL exactly mid-checkpoint, leaving a torn .tmp the loader must
  // never consider (it only reads committed *.p2ck generations).
  const std::string_view head = std::string_view(data).substr(0, data.size() / 2);
  const std::string_view tail = std::string_view(data).substr(data.size() / 2);
  bool ok = write_all(fd, head);
  checkpoint_test_tick("ckpt-mid-write", resume_interval);
  ok = ok && write_all(fd, tail);
  if (!ok) {
    set_error(error, tmp, "write");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::fsync(fd) != 0) {
    set_error(error, tmp, "fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, tmp, "close");
    ::unlink(tmp.c_str());
    return false;
  }
  checkpoint_test_tick("ckpt-pre-rename", resume_interval);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, path, "rename");
    ::unlink(tmp.c_str());
    return false;
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  checkpoint_test_tick("ckpt-committed", resume_interval);

  // Prune beyond `keep` generations, oldest first.  Pruning failures are
  // ignored: stale generations waste disk, never correctness.
  if (keep > 0) {
    std::vector<std::string> names = list_checkpoints(dir);
    while (names.size() > static_cast<std::size_t>(keep)) {
      ::unlink((dir + "/" + names.front()).c_str());
      names.erase(names.begin());
    }
  }
  return true;
}

std::optional<CheckpointImage> load_latest_checkpoint(
    const std::string& dir, std::uint64_t config_hash, ResumeReport* report) {
  if (report != nullptr) report->attempted = true;
  std::vector<std::string> names = list_checkpoints(dir);
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string path = dir + "/" + *it;
    std::string bytes;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      if (f == nullptr) {
        if (report != nullptr) {
          report->rejected.push_back(path + ": unreadable: " +
                                     std::strerror(errno));
        }
        continue;
      }
      char buf[1 << 16];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        bytes.append(buf, n);
      }
      std::fclose(f);
    }
    try {
      CheckpointImage img = decode_checkpoint_file(bytes);
      if (img.config_hash != config_hash) {
        fail_at("config_hash", 8,
                "config fingerprint mismatch (checkpoint belongs to a "
                "different campaign configuration)");
      }
      if (report != nullptr) {
        report->resumed = true;
        report->resume_interval = img.resume_interval;
        report->loaded_path = path;
      }
      return img;
    } catch (const util::CkptError& e) {
      if (report != nullptr) {
        report->rejected.push_back(path + ": " + e.what());
      }
    }
  }
  return std::nullopt;
}

}  // namespace p2sim::workload
