// Crash-consistent campaign checkpoints: the durable container format.
//
// A checkpoint file carries the complete deterministic campaign state at
// an interval boundary, so a killed campaign resumes bit-identically to
// the uninterrupted run (tests/workload/crash_recovery_test.cpp holds the
// fingerprint oracle).  This module owns the *container*: a fixed 48-byte
// header (magic, config fingerprint, resume interval, payload size, two
// FNV-1a/64 checksums) followed by the opaque payload the driver's
// serializers produce.  Torn-write safety comes from the write protocol —
// write to `<name>.tmp`, fsync, atomically rename, fsync the directory —
// plus generations: the newest `keep` checkpoints survive pruning, and a
// corrupt newest generation falls back to the previous one with the
// rejection reason reported, never silently.
//
// The config fingerprint hashes every determinism-relevant DriverConfig
// field (and none of the wall-clock-only knobs: threads, observer, the
// signature store path, the checkpoint config itself), so a checkpoint can
// never be resumed against a campaign it does not describe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/ckpt.hpp"

namespace p2sim::workload {

struct DriverConfig;

/// How a resume attempt went (wire `CheckpointConfig::report` to receive
/// it).  `rejected` lists every generation that failed validation, newest
/// first, each with the precise reason — a corrupt newest checkpoint must
/// leave an audit trail, not vanish.
struct ResumeReport {
  bool attempted = false;
  bool resumed = false;
  std::int64_t resume_interval = -1;
  std::string loaded_path;
  std::vector<std::string> rejected;
};

/// Campaign checkpointing knobs, carried inside DriverConfig.  All of it
/// is excluded from the config fingerprint: checkpoint cadence shapes
/// durability, never results.
struct CheckpointConfig {
  /// Directory for checkpoint generations; empty disables checkpointing.
  std::string dir{};
  /// Simulated-time cadence: write after every N-th interval.
  std::int64_t every_intervals = 96;
  /// Generations to retain (older ones are pruned after a commit).
  int keep = 2;
  /// Resume from the newest valid checkpoint in `dir` before running.
  bool resume = false;
  /// Optional resume audit sink (not owned; may be nullptr).
  ResumeReport* report = nullptr;
};

/// Test seam for the kill-injection harness: when installed, the driver
/// and the checkpoint writer announce progress points ("interval-end",
/// "ckpt-mid-write", "ckpt-pre-rename", "ckpt-committed") and the harness
/// raises SIGKILL at a scheduled one.  A plain function pointer on the
/// serial path — never consulted from worker threads.
using CheckpointTestHook = void (*)(const char* point, std::int64_t value);
void set_checkpoint_test_hook(CheckpointTestHook hook);
/// Invokes the installed hook (no-op when none is).
void checkpoint_test_tick(const char* point, std::int64_t value);

/// FNV-1a/64 over every determinism-relevant DriverConfig field.  Two
/// configs with equal fingerprints produce bit-identical campaigns; the
/// loader refuses checkpoints whose fingerprint differs.
std::uint64_t config_fingerprint(const DriverConfig& cfg);

/// A validated, decoded checkpoint.
struct CheckpointImage {
  std::uint64_t config_hash = 0;
  /// First interval the resumed loop must execute (state covers [0, this)).
  std::int64_t resume_interval = 0;
  std::string payload;
};

/// Serializes header + payload into the on-disk byte stream.
std::string encode_checkpoint_file(std::uint64_t config_hash,
                                   std::int64_t resume_interval,
                                   std::string_view payload);

/// Validates and decodes a checkpoint byte stream.  Throws util::CkptError
/// naming the offending field and offset on any malformation: bad magic,
/// truncation anywhere, a header or payload checksum mismatch.
CheckpointImage decode_checkpoint_file(std::string_view bytes);

/// Generation file name for a checkpoint taken after `resume_interval`
/// intervals: zero-padded so lexicographic order is interval order.
std::string checkpoint_file_name(std::int64_t resume_interval);

/// Checkpoint generations present in `dir`, ascending by interval
/// (in-flight `*.tmp` files are ignored).  Missing directory = empty.
std::vector<std::string> list_checkpoints(const std::string& dir);

/// Durably writes one checkpoint generation (temp + fsync + rename +
/// directory fsync) and prunes generations beyond `keep`.  Announces
/// "ckpt-mid-write" / "ckpt-pre-rename" / "ckpt-committed" to the test
/// hook.  Returns false with `*error` set on failure; a failed write
/// leaves existing generations untouched.
bool write_checkpoint(const std::string& dir, std::uint64_t config_hash,
                      std::int64_t resume_interval, std::string_view payload,
                      int keep, std::string* error);

/// Loads the newest valid checkpoint whose fingerprint matches
/// `config_hash`, walking generations newest-first and recording every
/// rejection (with its reason) in `report`.  Returns nullopt when no
/// generation validates — the caller then runs from the beginning.
std::optional<CheckpointImage> load_latest_checkpoint(
    const std::string& dir, std::uint64_t config_hash, ResumeReport* report);

}  // namespace p2sim::workload
