#include "src/workload/jobgen.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/workload/kernels.hpp"

namespace p2sim::workload {

JobGenerator::JobGenerator(const JobGenConfig& cfg, ProfileRegistry& registry)
    : cfg_(cfg), registry_(registry), rng_(cfg.seed) {
  if (cfg_.node_choices.size() != cfg_.node_weights.size() ||
      cfg_.node_choices.empty()) {
    throw std::invalid_argument("node choice/weight mismatch");
  }
  if (cfg_.family_weights.size() != 6) {
    throw std::invalid_argument("expected 6 family weights");
  }
}

JobProfile JobGenerator::make_profile(int nodes, bool interactive) {
  JobProfile p;
  const std::size_t fam =
      util::sample_discrete(rng_, std::span<const double>(cfg_.family_weights));
  const std::uint64_t variant = rng_.below(1u << 20);
  const double quality = std::clamp(
      rng_.normal(cfg_.quality_mean, cfg_.quality_sigma), 0.02, 0.98);
  p.quality = quality;

  switch (fam) {
    case 0:
      p.kernel = cfd_multiblock(variant, quality);
      p.family = "cfd";
      p.comm_fraction_base = rng_.uniform(0.18, 0.42);
      p.comm_scaling_exponent =
          rng_.chance(0.25) ? rng_.uniform(0.4, 0.6)   // synchronous codes
                            : rng_.uniform(0.1, 0.25); // nearest-neighbour
      p.msg_bytes_per_s = rng_.uniform(0.6e6, 2.2e6);
      // A share of the CFD population gets a physical communication
      // shape (block geometry + switch parameters) instead of the
      // statistical power law — the section 4 domain decomposition,
      // "a cube with 50 grid points on a side with 25 variables".
      if (rng_.chance(0.35)) {
        cluster::CommShape shape;
        const double side = rng_.uniform(36.0, 64.0);
        shape.points_per_node_ref = side * side * side;
        shape.compute_s_per_point = rng_.uniform(1.5e-6, 5.0e-6);
        shape.bytes_per_surface_point = rng_.uniform(120.0, 280.0);
        shape.synchronous = rng_.chance(0.3);
        shape.overlap = rng_.uniform(0.4, 0.8);
        p.comm_shape = shape;
      }
      break;
    case 1:
      p.kernel = mdo_ensemble(variant);
      p.family = "mdo";
      // Independent configuration evaluations: nearly no communication.
      p.comm_fraction_base = rng_.uniform(0.02, 0.08);
      p.comm_scaling_exponent = 0.05;
      p.msg_bytes_per_s = rng_.uniform(0.05e6, 0.3e6);
      break;
    case 2:
      p.kernel = npb_bt_like();
      p.family = "bt";
      p.comm_fraction_base = rng_.uniform(0.10, 0.2);
      p.comm_scaling_exponent = 0.18;
      p.msg_bytes_per_s = rng_.uniform(1.0e6, 2.5e6);
      break;
    case 3:
      p.kernel = io_heavy(variant);
      p.family = "io";
      p.comm_fraction_base = rng_.uniform(0.1, 0.25);
      p.comm_scaling_exponent = 0.2;
      p.msg_bytes_per_s = rng_.uniform(0.2e6, 0.8e6);
      p.disk_read_bytes_per_s = rng_.uniform(0.2e6, 0.8e6);
      p.disk_write_bytes_per_s = rng_.uniform(0.3e6, 1.2e6);
      break;
    case 4:
      p.kernel = strided_transpose();
      p.family = "strided";
      p.comm_fraction_base = rng_.uniform(0.05, 0.2);
      p.comm_scaling_exponent = 0.2;
      p.msg_bytes_per_s = rng_.uniform(0.2e6, 1.0e6);
      break;
    default:
      p.kernel = naive_matmul();
      p.family = "naive";
      p.comm_fraction_base = rng_.uniform(0.02, 0.1);
      p.comm_scaling_exponent = 0.1;
      p.msg_bytes_per_s = rng_.uniform(0.05e6, 0.4e6);
      break;
  }

  if (p.family != "io") {
    p.disk_read_bytes_per_s = rng_.uniform(2e3, 20e3);
    p.disk_write_bytes_per_s = rng_.uniform(5e3, 40e3);
  }

  // Domain decompositions rarely balance perfectly; the slowest block
  // gates every step.  Embarrassingly parallel sweeps balance well.
  p.imbalance_efficiency = p.family == "mdo" ? rng_.uniform(0.9, 0.98)
                                             : rng_.uniform(0.70, 0.95);

  assign_memory(p, nodes, interactive);
  return p;
}

void JobGenerator::assign_memory(JobProfile& p, int nodes,
                                 bool interactive) {
  // Memory demand: the section 6 pathology.  Wide jobs frequently
  // oversubscribe; narrow jobs mostly during paging episodes.  Demand is
  // a per-run property ("automatic arrays whose memory requirements
  // appear only at runtime"), so reused codes still redraw it.
  const bool wide = nodes > cfg_.paging_node_threshold;
  const double paging_prob =
      wide ? cfg_.wide_paging_prob
           : (episode_days_left_ > 0 ? cfg_.paging_episode_narrow_prob
                                     : cfg_.narrow_paging_prob);
  if (!interactive && rng_.chance(paging_prob)) {
    p.memory_mb_per_node =
        128.0 * rng_.uniform(cfg_.paging_demand_min, cfg_.paging_demand_max);
  } else {
    p.memory_mb_per_node = std::clamp(
        rng_.lognormal_median(cfg_.memory_median_mb, cfg_.memory_sigma),
        8.0, 126.0);
  }
}

void JobGenerator::update_episode(double submit_time_s) {
  const auto day = static_cast<std::int64_t>(submit_time_s / 86400.0);
  if (day == last_day_) return;
  last_day_ = day;
  if (episode_days_left_ > 0) {
    --episode_days_left_;
  } else if (rng_.chance(cfg_.paging_episode_start_prob)) {
    episode_days_left_ =
        cfg_.paging_episode_min_days +
        static_cast<int>(rng_.below(static_cast<std::uint64_t>(
            cfg_.paging_episode_max_days - cfg_.paging_episode_min_days + 1)));
  }
}

pbs::JobSpec JobGenerator::next(double submit_time_s) {
  update_episode(submit_time_s);
  pbs::JobSpec spec;
  spec.job_id = next_job_id_++;
  spec.user_id = next_user_ = (next_user_ + 7) % 97;
  spec.submit_time_s = submit_time_s;

  const bool interactive = rng_.chance(cfg_.interactive_prob);
  const bool dev_session = !interactive && rng_.chance(cfg_.dev_session_prob);
  spec.kind = interactive ? pbs::JobKind::kInteractive : pbs::JobKind::kBatch;

  const std::size_t pick = util::sample_discrete(
      rng_, std::span<const double>(cfg_.node_weights));
  spec.nodes_requested =
      interactive ? static_cast<int>(1 + rng_.below(4))
                  : cfg_.node_choices[pick];
  if (dev_session) {
    spec.nodes_requested = std::min(spec.nodes_requested, cfg_.dev_max_nodes);
  }

  if (interactive) {
    spec.runtime_s = rng_.uniform(60.0, 540.0);
  } else if (dev_session) {
    spec.runtime_s = rng_.uniform(0.75 * 3600.0, 8.0 * 3600.0);
  } else {
    spec.runtime_s =
        std::clamp(rng_.lognormal_median(cfg_.runtime_median_s,
                                         cfg_.runtime_sigma),
                   cfg_.runtime_min_s, cfg_.runtime_max_s);
  }
  spec.walltime_request_s = spec.runtime_s * rng_.uniform(1.1, 2.5);

  // Persistent codes: a production batch submission usually reruns its
  // user's existing application on a new configuration.
  JobProfile prof;
  const auto existing = user_codes_.find(spec.user_id);
  if (!interactive && !dev_session && existing != user_codes_.end() &&
      rng_.chance(cfg_.code_reuse_prob)) {
    prof = existing->second;
    assign_memory(prof, spec.nodes_requested, interactive);
  } else {
    prof = make_profile(spec.nodes_requested, interactive);
    if (!interactive && !dev_session) {
      user_codes_.insert_or_assign(spec.user_id, prof);
    }
  }
  if (dev_session) {
    prof.duty_cycle = rng_.uniform(cfg_.dev_duty_min, cfg_.dev_duty_max);
    prof.family = "dev";
    prof.memory_mb_per_node = std::min(prof.memory_mb_per_node, 110.0);
    prof.msg_bytes_per_s *= prof.duty_cycle;
  }
  spec.memory_mb_per_node = prof.memory_mb_per_node;
  spec.profile_id = registry_.add(std::move(prof));
  return spec;
}

void JobGenerator::save_ckpt(util::CkptWriter& w) const {
  rng_.save_ckpt(w);
  w.put_i64(next_job_id_);
  w.put_i32(next_user_);
  w.put_i64(last_day_);
  w.put_i32(episode_days_left_);
  w.put_u64(user_codes_.size());
  for (const auto& [user, code] : user_codes_) {
    w.put_i32(user);
    code.save_ckpt(w);
  }
}

void JobGenerator::restore_ckpt(util::CkptReader& r) {
  rng_.restore_ckpt(r);
  next_job_id_ = r.read_i64("jobgen.next_job_id");
  next_user_ = r.read_i32("jobgen.next_user");
  last_day_ = r.read_i64("jobgen.last_day");
  episode_days_left_ = r.read_i32("jobgen.episode_days_left");
  user_codes_.clear();
  std::uint64_t n = r.read_u64("jobgen.user_codes_size");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int32_t user = r.read_i32("jobgen.user_id");
    JobProfile code;
    code.restore_ckpt(r);
    user_codes_.emplace(user, std::move(code));
  }
}

}  // namespace p2sim::workload
