// The nine-month campaign driver: ties every substrate together.
//
// The interval step is an explicit phase machine (see kPhases): serial
// phases own all cross-node state — job arrivals from the demand process,
// the PBS scheduling pass, prologue/epilogue accounting, the merged daemon
// record — and the two parallel phases touch only worker-private state,
// sharded statically across DriverConfig::threads worker threads:
//
//   * `measure` runs the interval's batch of cold kernel-signature
//     measurements on worker-private cores (plan/adopt stay serial);
//   * `lane-pipeline` drains each per-node lane (NodeLane: node + RNG
//     stream + fault view + telemetry shard + daemon probe baseline)
//     end-to-end through the whole horizon — node advance plus the
//     per-node daemon probe — with no shared writes.
//
// A *horizon* is the run of consecutive intervals the serial `horizon`
// phase proves free of cross-node events (no queued or arriving jobs, no
// job endings before the last interval, no crash draws, nothing crossing a
// day or checkpoint boundary).  One barrier then advances every lane
// through all of them, and the serial `fold` phase tree-merges the lane
// outputs (records, busy seconds, telemetry shards) in a fixed pairwise
// shape (telemetry::tree_fold), so campaign results, tables, figures, loss
// reports and simulated-time telemetry exports are bit-identical for every
// thread count — and for every horizon split, which is what keeps
// checkpoint cadence and resume invisible in the outputs.  threads == 1
// bypasses the pool entirely and is the original serial driver.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/cluster/nfs.hpp"
#include "src/cluster/node.hpp"
#include "src/cluster/paging.hpp"
#include "src/cluster/switch.hpp"
#include "src/fault/fault.hpp"
#include "src/pbs/accounting.hpp"
#include "src/pbs/scheduler.hpp"
#include "src/power2/signature.hpp"
#include "src/rs2hpm/daemon.hpp"
#include "src/rs2hpm/job_monitor.hpp"
#include "src/telemetry/health.hpp"
#include "src/util/sim_time.hpp"
#include "src/workload/checkpoint.hpp"
#include "src/workload/jobgen.hpp"
#include "src/workload/lane.hpp"

namespace p2sim::workload {

struct DriverConfig {
  int num_nodes = 144;
  std::int64_t days = util::kCampaignDays;

  /// Mean submissions per weekday at demand level 1.0.
  double jobs_per_day = 42.0;
  double weekend_factor = 0.40;
  /// AR(1) demand random walk (per-day): level' = rho*level + noise.
  double demand_walk_rho = 0.90;
  double demand_walk_noise = 0.40;
  double demand_min = 0.15;
  double demand_max = 2.00;
  /// Multi-day demand slumps (holidays, deadlines elsewhere, maintenance):
  /// entered with this per-day probability, lasting 2-7 days at a fraction
  /// of normal demand.  These produce Figure 1's deep valleys.
  double slump_prob_per_day = 0.05;
  double slump_depth_min = 0.10;
  double slump_depth_max = 0.45;

  std::uint64_t seed = 0xC0FFEE42ULL;

  /// Persistent signature store (empty = off).  When set, measured kernel
  /// signatures are loaded from this file at start-up and written back at
  /// the end of the run, so repeated campaigns on the same core config
  /// skip the cycle-accurate signature cold start.  Store hits are
  /// bit-identical to fresh measurement (hexfloat round trip); a corrupt
  /// or mismatched store silently falls back to measuring.
  std::string signature_store_path{};

  /// Worker threads for the parallel phases (signature measurement and the
  /// lane pipeline).  1 (the default) bypasses the pool and runs the
  /// original serial loop; 0 means one thread per hardware core.  Campaign
  /// outputs are bit-identical for every value — the knob trades
  /// wall-clock time only.
  int threads = 1;

  /// Optional per-phase wall-clock sink (see PhaseTimings below); nullptr
  /// costs nothing.  Wall-clock observability only — never results.
  struct PhaseTimings* phase_timings = nullptr;

  /// Fault injection (disabled by default; a disabled-fault campaign is
  /// bit-identical to one run before the fault subsystem existed, because
  /// the schedule never touches the driver's RNG streams).
  fault::FaultConfig faults{};
  /// Resubmit jobs killed by a node crash (PBS requeue semantics); the
  /// killed run still produces an incomplete accounting record.
  bool requeue_killed_jobs = true;

  /// Live pipeline-health sink, called once per interval after the daemon
  /// sample.  Pure read-side: installing one never perturbs the campaign
  /// (no RNG stream is touched), and nullptr costs one branch.  Not owned.
  telemetry::CampaignObserver* observer = nullptr;

  /// Durable checkpoint/restart (off by default).  Like `threads`, it
  /// trades wall-clock durability only: a checkpointed, killed and resumed
  /// campaign is bit-identical to an uninterrupted one.
  CheckpointConfig checkpoint{};

  /// Columnar campaign archive (empty = off).  When set, the archive
  /// phase appends every interval and job record to an archive::
  /// ArchiveWriter in row-group batches as each pass completes, and run()
  /// commits the file durably at campaign end.  The archive bytes are a
  /// pure function of the record sequence: bit-identical for every thread
  /// count, checkpoint cadence and resume.  Not part of the checkpoint
  /// config fingerprint (a resume may redirect the archive).
  std::string archive_path{};

  pbs::SchedulerConfig sched{};
  cluster::NodeConfig node{};
  cluster::PagingConfig paging{};
  cluster::SwitchConfig hps{};
  cluster::NfsConfig nfs{};
  power2::CoreConfig core{};
  JobGenConfig jobgen{};
};

/// Everything the analysis layer needs.
struct CampaignResult {
  int num_nodes = 0;
  std::int64_t days = 0;
  /// Counter selection the campaign's monitors ran (analysis must match).
  hpm::CounterSelection selection = hpm::CounterSelection::kNasDefault;
  std::vector<rs2hpm::IntervalRecord> intervals;
  pbs::JobDatabase jobs;
  double total_busy_node_seconds = 0.0;
  /// How many 15-minute samples the daemon *should* have produced; with
  /// `intervals.size()` this gives the whole-sample loss rate.
  std::int64_t intervals_expected = 0;
  /// Jobs still running or queued when the campaign window closed (they
  /// produced no accounting record), and how many of the running ones had
  /// already lost their prologue — the loss report needs both to
  /// reconcile record counts against injected faults.
  std::int64_t jobs_open_at_end = 0;
  std::int64_t jobs_open_sans_prologue = 0;
  /// Ground truth of every fault injected into this campaign.
  fault::FaultLog faults;

  /// Machine utilization over the whole campaign (fraction of node-time
  /// servicing PBS jobs — the paper's 64%).
  double mean_utilization() const {
    const double total = static_cast<double>(num_nodes) *
                         static_cast<double>(days) * 86400.0;
    return total > 0.0 ? total_busy_node_seconds / total : 0.0;
  }
};

class WorkloadDriver {
 public:
  /// The campaign step's phases, in execution order.  Exactly two phases
  /// (kMeasure, kLanePipeline) run on the task pool; every other phase is
  /// serial and owns the cross-node state.  The phases through kFold run
  /// once per *horizon* (a run of intervals proven free of cross-node
  /// events); kEpilogues runs at the horizon's last interval and
  /// kCollect/kObserve replay once per interval from the fold's
  /// per-interval outputs.
  enum class Phase {
    kDayRollover,   ///< day-span telemetry rotation (serial)
    kFaults,        ///< reboots, crashes, kills, requeues (serial)
    kArrivals,      ///< demand walk + Poisson submissions (serial)
    kScheduling,    ///< PBS pass + batch measurement plan (serial)
    kMeasure,       ///< cold kernel signatures (PARALLEL, private cores)
    kLaunch,        ///< job binding + prologue snapshots (serial)
    kHorizon,       ///< safe multi-interval horizon + arrival predraw (serial)
    kNfsGrant,      ///< cluster-wide filesystem throttle (serial)
    kLanePipeline,  ///< per-lane advance + probe x horizon (PARALLEL)
    kFold,          ///< deterministic tree merge of lane outputs (serial)
    kEpilogues,     ///< job completion + accounting records (serial)
    kCollect,       ///< merged 15-minute RS2HPM daemon record (serial)
    kObserve,       ///< read-only pipeline-health sample (serial)
    kArchive,       ///< batched record append to the columnar archive (serial)
  };

  struct PhaseInfo {
    Phase phase = Phase::kDayRollover;
    const char* name = "";
    bool parallel = false;
  };
  /// The phase machine, in execution order (documentation + tests).
  static constexpr std::array<PhaseInfo, 14> kPhases{{
      {Phase::kDayRollover, "day-rollover", false},
      {Phase::kFaults, "faults", false},
      {Phase::kArrivals, "arrivals", false},
      {Phase::kScheduling, "scheduling", false},
      {Phase::kMeasure, "measure", true},
      {Phase::kLaunch, "launch", false},
      {Phase::kHorizon, "horizon", false},
      {Phase::kNfsGrant, "nfs-grant", false},
      {Phase::kLanePipeline, "lane-pipeline", true},
      {Phase::kFold, "fold", false},
      {Phase::kEpilogues, "epilogues", false},
      {Phase::kCollect, "collect", false},
      {Phase::kObserve, "observe", false},
      {Phase::kArchive, "archive", false},
  }};
  static const char* phase_name(Phase p) {
    return kPhases[static_cast<std::size_t>(p)].name;
  }

  explicit WorkloadDriver(const DriverConfig& cfg);
  ~WorkloadDriver();

  /// Runs the full campaign.  Deterministic in the config; bit-identical
  /// for every DriverConfig::threads value.
  CampaignResult run();

 private:
  struct Running {
    pbs::JobSpec spec;
    const JobProfile* profile = nullptr;
    const power2::EventSignature* sig = nullptr;
    std::vector<int> nodes;
    double start_s = 0.0;
    double end_s = 0.0;
    /// False when the prologue script was lost: the epilogue then has no
    /// baseline and the job's record is explicitly incomplete.
    bool has_prologue = true;
    /// Which run of this job id this is (requeues bump it so the fault
    /// schedule draws fresh prologue/epilogue outcomes per attempt).
    int attempt = 0;
  };

  /// All campaign state, owned for the duration of run() (defined in
  /// driver.cpp; the phase methods below are its transition functions).
  struct CampaignState;

  cluster::ActivityProfile activity_for(const Running& r,
                                        double disk_grant_fraction) const;

  /// The demand process's Poisson intensity for the current day.
  double arrival_lambda(const CampaignState& st) const;

  P2SIM_SERIAL_ONLY void phase_day_rollover(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_faults(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_arrivals(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_scheduling(CampaignState& st);
  /// Parallel: measures the scheduling pass's batch plan on
  /// worker-private cores; plan selection and adoption stay serial.
  void phase_measure(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_launch(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_horizon(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_nfs_grant(CampaignState& st);
  /// Parallel: each lane drains the whole horizon (advance + probe).
  void phase_lane_pipeline(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_fold(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_epilogues(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_collect(CampaignState& st);
  P2SIM_SERIAL_ONLY void phase_observe(CampaignState& st);
  /// Appends the records the pass produced (daemon intervals, accounting
  /// jobs) to the campaign archive in one row-group batch.  Idempotent
  /// over already-archived prefixes, so a resume replays restored records
  /// into a bit-identical archive.
  P2SIM_SERIAL_ONLY void phase_archive(CampaignState& st);

  /// Called from run() after each interval's phases: announces the
  /// interval to the kill-injection hook and, at the configured cadence,
  /// writes one durable checkpoint generation.  A failed write logs and
  /// counts — it never fails the campaign.
  P2SIM_SERIAL_ONLY void maybe_checkpoint(CampaignState& st);
  /// Attempts a resume from DriverConfig::checkpoint.  Returns the first
  /// interval the loop must execute (0 when starting fresh).
  P2SIM_SERIAL_ONLY std::int64_t try_resume(CampaignState& st);

  DriverConfig cfg_;
};

/// Per-phase wall-clock breakdown of one campaign, filled when
/// DriverConfig::phase_timings points here.  Wall-clock observability only
/// (Amdahl accounting for the parallel-speedup bench): the sink never
/// feeds back into the simulation.
struct PhaseTimings {
  /// Accumulated wall microseconds per kPhases entry, by enum index.
  std::array<std::int64_t, WorkloadDriver::kPhases.size()> wall_us{};
  /// Horizon passes executed (phase-machine iterations)...
  std::int64_t horizons = 0;
  /// ...covering this many 15-minute intervals in total.
  std::int64_t intervals = 0;

  std::int64_t total_us() const {
    std::int64_t sum = 0;
    for (std::int64_t us : wall_us) sum += us;
    return sum;
  }
  /// Wall time spent in phases kPhases classifies as serial.
  std::int64_t serial_us() const {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < wall_us.size(); ++i) {
      if (!WorkloadDriver::kPhases[i].parallel) sum += wall_us[i];
    }
    return sum;
  }
};

/// Convenience: run a campaign with the given config.
CampaignResult run_campaign(const DriverConfig& cfg = {});

}  // namespace p2sim::workload
