// The nine-month campaign driver: ties every substrate together.
//
// Per 15-minute interval it (1) draws job arrivals from a demand process
// with the weekday/weekend rhythm and slow load fluctuation the paper
// attributes Figure 1's swings to, (2) runs the PBS scheduling pass,
// (3) advances every node — busy nodes by their job's kernel signature
// modulated by communication, filesystem and paging behaviour, idle nodes
// by OS noise only — and (4) lets the RS2HPM daemon collect the interval
// sample.  Job starts fire the PBS prologue snapshot, job ends the
// epilogue, populating the accounting database behind Figures 2-4.
#pragma once

#include <cstdint>
#include <vector>

#include "src/cluster/nfs.hpp"
#include "src/cluster/node.hpp"
#include "src/cluster/paging.hpp"
#include "src/cluster/switch.hpp"
#include "src/fault/fault.hpp"
#include "src/pbs/accounting.hpp"
#include "src/pbs/scheduler.hpp"
#include "src/power2/signature.hpp"
#include "src/rs2hpm/daemon.hpp"
#include "src/rs2hpm/job_monitor.hpp"
#include "src/telemetry/health.hpp"
#include "src/util/sim_time.hpp"
#include "src/workload/jobgen.hpp"

namespace p2sim::workload {

struct DriverConfig {
  int num_nodes = 144;
  std::int64_t days = util::kCampaignDays;

  /// Mean submissions per weekday at demand level 1.0.
  double jobs_per_day = 42.0;
  double weekend_factor = 0.40;
  /// AR(1) demand random walk (per-day): level' = rho*level + noise.
  double demand_walk_rho = 0.90;
  double demand_walk_noise = 0.40;
  double demand_min = 0.15;
  double demand_max = 2.00;
  /// Multi-day demand slumps (holidays, deadlines elsewhere, maintenance):
  /// entered with this per-day probability, lasting 2-7 days at a fraction
  /// of normal demand.  These produce Figure 1's deep valleys.
  double slump_prob_per_day = 0.05;
  double slump_depth_min = 0.10;
  double slump_depth_max = 0.45;

  std::uint64_t seed = 0xC0FFEE42ULL;

  /// Fault injection (disabled by default; a disabled-fault campaign is
  /// bit-identical to one run before the fault subsystem existed, because
  /// the schedule never touches the driver's RNG streams).
  fault::FaultConfig faults{};
  /// Resubmit jobs killed by a node crash (PBS requeue semantics); the
  /// killed run still produces an incomplete accounting record.
  bool requeue_killed_jobs = true;

  /// Live pipeline-health sink, called once per interval after the daemon
  /// sample.  Pure read-side: installing one never perturbs the campaign
  /// (no RNG stream is touched), and nullptr costs one branch.  Not owned.
  telemetry::CampaignObserver* observer = nullptr;

  pbs::SchedulerConfig sched{};
  cluster::NodeConfig node{};
  cluster::PagingConfig paging{};
  cluster::SwitchConfig hps{};
  cluster::NfsConfig nfs{};
  power2::CoreConfig core{};
  JobGenConfig jobgen{};
};

/// Everything the analysis layer needs.
struct CampaignResult {
  int num_nodes = 0;
  std::int64_t days = 0;
  /// Counter selection the campaign's monitors ran (analysis must match).
  hpm::CounterSelection selection = hpm::CounterSelection::kNasDefault;
  std::vector<rs2hpm::IntervalRecord> intervals;
  pbs::JobDatabase jobs;
  double total_busy_node_seconds = 0.0;
  /// How many 15-minute samples the daemon *should* have produced; with
  /// `intervals.size()` this gives the whole-sample loss rate.
  std::int64_t intervals_expected = 0;
  /// Jobs still running or queued when the campaign window closed (they
  /// produced no accounting record), and how many of the running ones had
  /// already lost their prologue — the loss report needs both to
  /// reconcile record counts against injected faults.
  std::int64_t jobs_open_at_end = 0;
  std::int64_t jobs_open_sans_prologue = 0;
  /// Ground truth of every fault injected into this campaign.
  fault::FaultLog faults;

  /// Machine utilization over the whole campaign (fraction of node-time
  /// servicing PBS jobs — the paper's 64%).
  double mean_utilization() const {
    const double total = static_cast<double>(num_nodes) *
                         static_cast<double>(days) * 86400.0;
    return total > 0.0 ? total_busy_node_seconds / total : 0.0;
  }
};

class WorkloadDriver {
 public:
  explicit WorkloadDriver(const DriverConfig& cfg);

  /// Runs the full campaign.  Deterministic in the config.
  CampaignResult run();

 private:
  struct Running {
    pbs::JobSpec spec;
    const JobProfile* profile = nullptr;
    const power2::EventSignature* sig = nullptr;
    std::vector<int> nodes;
    double start_s = 0.0;
    double end_s = 0.0;
    /// False when the prologue script was lost: the epilogue then has no
    /// baseline and the job's record is explicitly incomplete.
    bool has_prologue = true;
    /// Which run of this job id this is (requeues bump it so the fault
    /// schedule draws fresh prologue/epilogue outcomes per attempt).
    int attempt = 0;
  };

  cluster::ActivityProfile activity_for(const Running& r,
                                        double disk_grant_fraction) const;

  DriverConfig cfg_;
};

/// Convenience: run a campaign with the given config.
CampaignResult run_campaign(const DriverConfig& cfg = {});

}  // namespace p2sim::workload
