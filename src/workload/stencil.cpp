#include "src/workload/stencil.hpp"

#include <stdexcept>
#include <string>

namespace p2sim::workload {

using power2::KernelBuilder;
using power2::KernelDesc;
using power2::kNoDep;

KernelDesc make_stencil_kernel(const StencilSpec& spec) {
  if (spec.nx < 3 || spec.ny < 3 || spec.nz < 3) {
    throw std::invalid_argument("stencil grid must be at least 3^3");
  }
  if (spec.arm < 1 || spec.variables < 1 || spec.elem_bytes <= 0) {
    throw std::invalid_argument("stencil spec degenerate");
  }

  const std::uint64_t points = static_cast<std::uint64_t>(spec.nx) *
                               static_cast<std::uint64_t>(spec.ny) *
                               static_cast<std::uint64_t>(spec.nz);
  const std::uint64_t field_bytes =
      points * static_cast<std::uint64_t>(spec.elem_bytes);
  KernelBuilder b("stencil_" + std::to_string(spec.nx) + "x" +
                  std::to_string(spec.ny) + "x" + std::to_string(spec.nz) +
                  "_v" + std::to_string(spec.variables) +
                  (spec.register_reuse ? "_tuned" : ""));

  // Streams: in a k-j-i sweep *every* stencil leg advances unit-stride —
  // the j and k neighbours are just row- and plane-offset views of the
  // same field.  What distinguishes them is the alignment: each offset
  // walks its own sequence of cache lines and pages, so they are modelled
  // as separate unit-stride streams over the field footprint.  (The row
  // and plane strides matter to a j- or k-inner sweep; see
  // strided_transpose for that pathology.)  Output is a fourth walk.
  const auto centre = b.stream(field_bytes, spec.elem_bytes);
  const auto j_legs = b.stream(field_bytes, spec.elem_bytes);
  const auto k_legs = b.stream(field_bytes, spec.elem_bytes);
  const auto output = b.stream(field_bytes, spec.elem_bytes);

  for (int v = 0; v < spec.variables; ++v) {
    // Centre point: load once; tuned code keeps it in a register across
    // the variable group (one load for all variables).
    std::int16_t acc = kNoDep;
    if (v == 0 || !spec.register_reuse) {
      const auto lc = b.load(centre);
      acc = b.fp_mul(lc);  // coefficient * centre
    } else {
      acc = b.fp_mul();    // centre already register-resident
    }

    for (int a = 0; a < spec.arm; ++a) {
      // i-direction neighbours ride the unit-stride stream.
      const auto li_m = b.load(centre);
      acc = b.fma(li_m == kNoDep ? acc : acc);
      const auto li_p = b.load(centre);
      (void)li_p;
      acc = b.fma(acc);
      // j-direction: row stride.
      b.load(j_legs);
      acc = b.fma(acc);
      b.load(j_legs);
      acc = b.fma(acc);
      // k-direction: plane stride (the TLB-relevant legs on big grids).
      b.load(k_legs);
      acc = b.fma(acc);
      b.load(k_legs);
      acc = b.fma(acc);
    }
    b.store(output);
  }

  // Loop overhead: index arithmetic for the three-dimensional sweep and
  // the end-of-row/plane tests.
  b.alu();
  b.alu();
  b.addr_mul();
  b.cond_reg();

  return b.warmup(spec.warmup_iters).measure(spec.measure_iters).build();
}

KernelDesc archetype_block_sweep(bool register_reuse) {
  StencilSpec spec;
  spec.register_reuse = register_reuse;
  return make_stencil_kernel(spec);
}

}  // namespace p2sim::workload
