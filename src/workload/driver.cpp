#include "src/workload/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "src/archive/writer.hpp"
#include "src/check/check.hpp"
#include "src/check/invariants.hpp"
#include "src/rs2hpm/derived.hpp"
#include "src/telemetry/fold.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/task_pool.hpp"

namespace p2sim::workload {

WorkloadDriver::WorkloadDriver(const DriverConfig& cfg) : cfg_(cfg) {
  if (cfg_.num_nodes <= 0) throw std::invalid_argument("num_nodes must be > 0");
  if (cfg_.days <= 0) throw std::invalid_argument("days must be > 0");
  if (cfg_.jobs_per_day < 0.0) {
    throw std::invalid_argument("jobs_per_day must be >= 0");
  }
  if (cfg_.demand_min > cfg_.demand_max) {
    throw std::invalid_argument("demand bounds inverted");
  }
  if (cfg_.slump_depth_min > cfg_.slump_depth_max ||
      cfg_.slump_depth_min < 0.0 || cfg_.slump_depth_max > 1.0) {
    throw std::invalid_argument("slump depth bounds invalid");
  }
  if (cfg_.threads < 0) {
    throw std::invalid_argument("threads must be >= 0 (0 = hardware)");
  }
}

WorkloadDriver::~WorkloadDriver() = default;

cluster::ActivityProfile WorkloadDriver::activity_for(
    const Running& r, double disk_grant_fraction) const {
  const cluster::PagingModel paging(cfg_.paging);
  const cluster::PagingState pg = paging.evaluate(r.profile->memory_mb_per_node);
  const cluster::HpsSwitch sw(cfg_.hps);
  const double comm =
      r.profile->comm_fraction(static_cast<int>(r.nodes.size()), sw);

  cluster::ActivityProfile a;
  const double active = r.profile->imbalance_efficiency * r.profile->duty_cycle;
  a.compute_fraction = (1.0 - comm) * active * pg.user_slowdown;
  // Wait-state accounting for the kWaitStates counter selection: the share
  // of wall time blocked on messages (communication plus synchronization
  // imbalance) and on fault/disk service.
  a.comm_wait_fraction =
      comm * active + (1.0 - r.profile->imbalance_efficiency) *
                          r.profile->duty_cycle * (1.0 - comm);
  a.io_wait_fraction = (1.0 - comm) * active * (1.0 - pg.user_slowdown);
  // Message traffic: what the node pushes/pulls through the adapter.
  // Receives run somewhat below sends (reductions fan in).
  a.comm_send_bytes_per_s = r.profile->msg_bytes_per_s;
  a.comm_recv_bytes_per_s = 0.7 * r.profile->msg_bytes_per_s;
  a.disk_read_bytes_per_s =
      r.profile->disk_read_bytes_per_s * disk_grant_fraction;
  a.disk_write_bytes_per_s =
      r.profile->disk_write_bytes_per_s * disk_grant_fraction;
  a.page_faults_per_s = pg.fault_rate;
  return a;
}

/// Every piece of campaign state, constructed once per run().  The serial
/// phases own all of it; the parallel phases touch only `lanes` (one lane
/// per worker, statically sharded), the measurement plan slots, and the
/// immutable inputs.
struct WorkloadDriver::CampaignState {
  /// One interval's fleet-wide probe results, tree-merged from the lanes'
  /// samples by the fold phase and consumed by the collect post-pass.
  struct MergedInterval {
    rs2hpm::ModeTotals delta;
    std::uint64_t quad_surplus = 0;
    int sampled = 0;
    int reprimed = 0;
    int newly_primed = 0;
    int down = 0;
    int lost = 0;
    double busy_s = 0.0;
  };

  explicit CampaignState(const DriverConfig& cfg)
      : interval_s(static_cast<double>(util::kIntervalSeconds)),
        total_intervals(cfg.days * util::kIntervalsPerDay),
        sched([&] {
          pbs::SchedulerConfig sc = cfg.sched;
          sc.total_nodes = cfg.num_nodes;
          return sc;
        }()),
        gen([&] {
          JobGenConfig gc = cfg.jobgen;
          gc.seed ^= cfg.seed;
          return gc;
        }(), registry),
        signatures(cfg.core,
                   power2::SignatureStoreConfig{cfg.signature_store_path}),
        daemon(static_cast<std::size_t>(cfg.num_nodes)),
        nfs(cfg.nfs),
        rng(cfg.seed),
        inject(cfg.faults),
        down_until(static_cast<std::size_t>(cfg.num_nodes), 0),
        node_job(static_cast<std::size_t>(cfg.num_nodes), nullptr),
        pool(cfg.threads) {
    cluster::NodeConfig node_cfg = cfg.node;
    node_cfg.fault_fxu_inst = cfg.paging.fxu_inst_per_fault;
    node_cfg.fault_icu_inst = cfg.paging.icu_inst_per_fault;
    node_cfg.fault_cycles = cfg.paging.cycles_per_fault;
    node_cfg.page_bytes = cfg.paging.page_bytes;
    lanes.reserve(static_cast<std::size_t>(cfg.num_nodes));
    const fault::FaultSchedule* view =
        inject.enabled() ? &inject.schedule() : nullptr;
    for (int i = 0; i < cfg.num_nodes; ++i) {
      lanes.emplace_back(i, node_cfg, cfg.seed, view);
    }
    result.num_nodes = cfg.num_nodes;
    result.days = cfg.days;
    result.selection = node_cfg.monitor.selection;
    if (!cfg.archive_path.empty()) {
      archive_writer = std::make_unique<archive::ArchiveWriter>();
    }
  }

  NodeLane& lane(int n) { return lanes[static_cast<std::size_t>(n)]; }
  cluster::Node& node(int n) { return lane(n).node; }

  /// Serializes every accumulated campaign quantity at an interval
  /// boundary (per-pass scratch and the worker pool are excluded: the next
  /// pass rewrites them).  The restore side re-resolves the
  /// profile/signature pointers and rebuilds node_job, then demands the
  /// stream be fully consumed.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

  /// Snapshot spans over the nodes a job holds (prologue/epilogue input).
  std::pair<std::vector<rs2hpm::ModeTotals>, std::vector<std::uint64_t>>
  job_spans(const std::vector<int>& held) {
    std::pair<std::vector<rs2hpm::ModeTotals>, std::vector<std::uint64_t>> out;
    for (int n : held) {
      out.first.push_back(node(n).totals());
      out.second.push_back(node(n).quad_total());
    }
    return out;
  }

  // --- fixed campaign parameters -----------------------------------------
  double interval_s;
  std::int64_t total_intervals;

  // --- substrate instances (serial-phase property) -----------------------
  pbs::Scheduler sched;
  ProfileRegistry registry;
  JobGenerator gen;
  power2::SignatureCache signatures;
  rs2hpm::SamplingDaemon daemon;
  rs2hpm::JobMonitor jobmon;
  cluster::NfsModel nfs;

  /// Master RNG stream: owned by the serial arrivals/horizon phases
  /// (demand walk, slumps, Poisson arrivals).  Never consulted per node —
  /// per-node draws belong to the lanes' private streams.
  util::Xoshiro256StarStar rng;
  double demand_level = 1.0;
  int slump_days_left = 0;
  double slump_depth = 1.0;

  /// Arrival frontier: Poisson counts the horizon scan pre-drew from the
  /// master stream, in interval order, that the arrivals phase has not yet
  /// consumed.  pending_arrivals[i] is the count for interval
  /// pending_base + i; intervals below arrivals_drawn_until have had their
  /// draw taken from the stream.  The frontier keeps the master stream's
  /// draw sequence exactly one-per-interval in ascending order no matter
  /// how intervals batch into passes, and it checkpoints with the stream.
  std::deque<std::uint64_t> pending_arrivals;
  std::int64_t pending_base = 0;
  std::int64_t arrivals_drawn_until = 0;

  fault::FaultInjector inject;
  /// Interval at which each crashed node reboots (node is down while
  /// t < down_until[n]; a node that never crashed has 0 and is up).
  std::vector<std::int64_t> down_until;
  /// Requeue counts per job id: the attempt number varies the fault
  /// schedule's prologue/epilogue draws across reruns of the same job.
  std::map<std::int64_t, int> attempts;

  std::map<std::int64_t, Running> running;  // by job id
  std::vector<const Running*> node_job;

  CampaignResult result;

  // --- the campaign archive (serial-phase property) ----------------------
  /// Columnar record sink (null = off).  The archive phase appends the
  /// records each pass produced; run() commits the file at campaign end.
  /// Deliberately NOT checkpointed: a resume replays every restored
  /// record through the writer (archived_* restart at 0), and chunk
  /// boundaries depend only on row counts, so the committed bytes are
  /// bit-identical with or without a mid-campaign restart.
  std::unique_ptr<archive::ArchiveWriter> archive_writer;
  std::size_t archived_intervals = 0;
  std::size_t archived_jobs = 0;

  // --- the parallel substrate --------------------------------------------
  std::vector<NodeLane> lanes;
  util::TaskPool pool;

  // Cumulative job-flow tallies: fed to the health observer every interval
  // and mirrored into telemetry counters at the events themselves.
  std::int64_t jobs_dispatched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_requeued = 0;
  telemetry::Span day_span;

  // --- per-pass scratch, written by the phases in order ------------------
  std::int64_t t = 0;
  double now = 0.0;
  std::int64_t day = 0;
  double grant = 0.0;
  /// Start events of this pass, produced by scheduling and consumed (with
  /// their measurement plan) by the measure and launch phases.
  std::vector<pbs::StartEvent> starts;
  std::vector<power2::KernelDesc> measure_plan;
  std::vector<power2::QuietMeasurement> measure_results;
  /// This pass's extent: intervals [horizon_first, horizon_first + horizon).
  std::int64_t horizon = 1;
  std::int64_t horizon_first = 0;
  /// miss[k] != 0 marks horizon offset k as a whole-interval cron miss.
  std::vector<std::uint8_t> miss;
  /// Fleet-wide merge of the lanes' probe samples, one per horizon offset.
  std::vector<MergedInterval> merged;
  // --- per-interval scratch (collect/observe post-pass) ------------------
  double busy_node_seconds = 0.0;
  std::size_t records_before = 0;
  int busy_now = 0;
};

void WorkloadDriver::CampaignState::save_ckpt(util::CkptWriter& w) const {
  w.put_i64(t);
  rng.save_ckpt(w);
  w.put_f64(demand_level);
  w.put_i32(slump_days_left);
  w.put_f64(slump_depth);
  // The arrival frontier travels with the master stream: draws the horizon
  // scan already took must not be redrawn after a resume.
  w.put_u64(pending_arrivals.size());
  for (std::uint64_t c : pending_arrivals) w.put_u64(c);
  w.put_i64(pending_base);
  w.put_i64(arrivals_drawn_until);
  w.put_i64(jobs_dispatched);
  w.put_i64(jobs_completed);
  w.put_i64(jobs_requeued);
  for (std::int64_t until : down_until) w.put_i64(until);
  w.put_u64(attempts.size());
  for (const auto& [id, attempt] : attempts) {
    w.put_i64(id);
    w.put_i32(attempt);
  }
  sched.save_ckpt(w);
  registry.save_ckpt(w);
  gen.save_ckpt(w);
  signatures.save_ckpt(w);
  daemon.save_ckpt(w);
  jobmon.save_ckpt(w);
  nfs.save_ckpt(w);
  inject.save_ckpt(w);
  w.put_u64(lanes.size());
  for (const NodeLane& lane : lanes) {
    lane.node.save_ckpt(w);
    lane.rng.save_ckpt(w);
    lane.probe_prev.save_ckpt(w);
    w.put_u64(lane.probe_prev_quad);
    w.put_bool(lane.probe_primed);
  }
  w.put_u64(running.size());
  for (const auto& [id, r] : running) {
    r.spec.save_ckpt(w);
    w.put_u64(r.nodes.size());
    for (int n : r.nodes) w.put_i32(n);
    w.put_f64(r.start_s);
    w.put_f64(r.end_s);
    w.put_bool(r.has_prologue);
    w.put_i32(r.attempt);
  }
  w.put_f64(result.total_busy_node_seconds);
  result.jobs.save_ckpt(w);
  // Telemetry rides along as a nested length-prefixed blob so a session
  // without telemetry can skip it wholesale (the blob is still read, so
  // the stream stays in sync).
  const telemetry::Session* tel = telemetry::current();
  w.put_bool(tel != nullptr);
  {
    util::CkptWriter nested;
    if (tel != nullptr) {
      nested.put_f64(tel->engine_clock_s);
      tel->registry.save_ckpt(nested);
      tel->tracer.save_ckpt(nested);
    }
    w.put_str(nested.bytes());
  }
  day_span.save_ckpt(w);
}

void WorkloadDriver::CampaignState::restore_ckpt(util::CkptReader& r) {
  t = r.read_i64("campaign.t");
  rng.restore_ckpt(r);
  demand_level = r.read_f64("campaign.demand_level");
  slump_days_left = r.read_i32("campaign.slump_days_left");
  slump_depth = r.read_f64("campaign.slump_depth");
  pending_arrivals.clear();
  const std::uint64_t num_pending = r.read_u64("campaign.pending_arrivals");
  for (std::uint64_t i = 0; i < num_pending; ++i) {
    pending_arrivals.push_back(r.read_u64("campaign.pending_arrival"));
  }
  pending_base = r.read_i64("campaign.pending_base");
  arrivals_drawn_until = r.read_i64("campaign.arrivals_drawn_until");
  jobs_dispatched = r.read_i64("campaign.jobs_dispatched");
  jobs_completed = r.read_i64("campaign.jobs_completed");
  jobs_requeued = r.read_i64("campaign.jobs_requeued");
  for (std::int64_t& until : down_until) {
    until = r.read_i64("campaign.down_until");
  }
  attempts.clear();
  std::uint64_t num_attempts = r.read_u64("campaign.attempts");
  for (std::uint64_t i = 0; i < num_attempts; ++i) {
    const std::int64_t id = r.read_i64("campaign.attempt_id");
    attempts[id] = r.read_i32("campaign.attempt_count");
  }
  sched.restore_ckpt(r);
  registry.restore_ckpt(r);
  gen.restore_ckpt(r);
  signatures.restore_ckpt(r);
  daemon.restore_ckpt(r);
  jobmon.restore_ckpt(r);
  nfs.restore_ckpt(r);
  inject.restore_ckpt(r);
  const std::uint64_t num_lanes = r.read_u64("campaign.lanes");
  if (num_lanes != lanes.size()) {
    throw util::CkptError("campaign.lanes: node count mismatch");
  }
  for (NodeLane& lane : lanes) {
    lane.node.restore_ckpt(r);
    lane.rng.restore_ckpt(r);
    lane.probe_prev.restore_ckpt(r);
    lane.probe_prev_quad = r.read_u64("campaign.lane_probe_quad");
    lane.probe_primed = r.read_bool("campaign.lane_probe_primed");
  }
  running.clear();
  std::fill(node_job.begin(), node_job.end(), nullptr);
  const std::uint64_t num_running = r.read_u64("campaign.running");
  for (std::uint64_t i = 0; i < num_running; ++i) {
    Running rj;
    rj.spec.restore_ckpt(r);
    const std::uint64_t num_held = r.read_u64("campaign.job_nodes");
    rj.nodes.resize(static_cast<std::size_t>(num_held));
    for (int& n : rj.nodes) n = r.read_i32("campaign.job_node");
    rj.start_s = r.read_f64("campaign.job_start_s");
    rj.end_s = r.read_f64("campaign.job_end_s");
    rj.has_prologue = r.read_bool("campaign.job_has_prologue");
    rj.attempt = r.read_i32("campaign.job_attempt");
    running.emplace(rj.spec.job_id, std::move(rj));
  }
  // Pointer re-resolution: profiles and signatures live in the restored
  // registry/cache, so the map lookups reproduce the original pointers'
  // referents exactly.
  for (auto& [id, rj] : running) {
    rj.profile = &registry.get(rj.spec.profile_id);
    rj.sig = &signatures.get(rj.profile->kernel);
    for (int n : rj.nodes) {
      node_job[static_cast<std::size_t>(n)] = &rj;
    }
  }
  result.total_busy_node_seconds = r.read_f64("campaign.busy_node_seconds");
  result.jobs.restore_ckpt(r);
  telemetry::Session* tel = telemetry::current();
  const bool saved_telemetry = r.read_bool("campaign.has_telemetry");
  const std::string blob = r.read_str("campaign.telemetry_blob");
  if (saved_telemetry && tel != nullptr) {
    util::CkptReader nested(blob);
    tel->engine_clock_s = nested.read_f64("campaign.engine_clock_s");
    tel->registry.restore_ckpt(nested);
    tel->tracer.restore_ckpt(nested);
    nested.expect_end("campaign.telemetry_blob");
  }
  day_span = telemetry::Span::adopt_ckpt(
      tel != nullptr ? &tel->tracer : nullptr, r);
  r.expect_end("campaign");
}

double WorkloadDriver::arrival_lambda(const CampaignState& st) const {
  const double day_factor =
      (util::is_weekend(st.day) ? cfg_.weekend_factor : 1.0) *
      (st.slump_days_left > 0 ? st.slump_depth : 1.0);
  return cfg_.jobs_per_day * day_factor * st.demand_level /
         static_cast<double>(util::kIntervalsPerDay);
}

void WorkloadDriver::phase_day_rollover(CampaignState& st) {
  if (st.t % util::kIntervalsPerDay != 0) return;
  if (st.day_span.open()) st.day_span.close(st.now);
  st.day_span = telemetry::span("workload", "campaign_day", st.now);
  st.day_span.arg("day", static_cast<double>(st.day));
}

void WorkloadDriver::phase_faults(CampaignState& st) {
  if (!st.inject.enabled()) return;
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    const auto ni = static_cast<std::size_t>(n);
    if (!st.node(n).is_up() && st.t >= st.down_until[ni]) {
      st.node(n).reboot();  // counters stay zeroed: non-monotone on purpose
      st.sched.restore_node(n);
    }
    if (st.node(n).is_up() && st.inject.crash_now(n, st.t)) {
      st.node(n).crash();
      st.down_until[ni] = st.t + cfg_.faults.reboot_downtime_intervals;
      // Every job holding the node dies; its epilogue never fires.
      for (std::int64_t id : st.sched.fail_node(n)) {
        Running& r = st.running.at(id);
        st.inject.note_job_killed(r.has_prologue);
        pbs::JobRecord rec;
        rec.spec = r.spec;
        rec.start_time_s = r.start_s;
        rec.end_time_s = st.now;
        rec.report = r.has_prologue
                         ? st.jobmon.abandon(id, st.now)
                         : rs2hpm::JobCounterReport::incomplete(
                               id, static_cast<int>(r.nodes.size()),
                               st.now - r.start_s);
        st.result.jobs.add(std::move(rec));
        for (int held : r.nodes) {
          st.node_job[static_cast<std::size_t>(held)] = nullptr;
        }
        if (cfg_.requeue_killed_jobs) {
          pbs::JobSpec respec = r.spec;
          respec.submit_time_s = st.now;
          ++st.attempts[id];
          st.sched.submit(respec);
          st.inject.note_job_requeued();
          ++st.jobs_requeued;
          if (auto* tel = telemetry::current()) {
            tel->registry
                .counter("p2sim_driver_jobs_requeued_total",
                         "Crash-killed jobs resubmitted by PBS")
                .inc();
          }
        }
        st.running.erase(id);
      }
    }
    if (!st.node(n).is_up()) st.inject.note_node_down();
  }
}

void WorkloadDriver::phase_arrivals(CampaignState& st) {
  // Intervals a previous pass advanced through had zero arrivals by
  // construction (a nonzero pre-drawn count ends the horizon before it);
  // retire their frontier entries.
  while (st.pending_base < st.t && !st.pending_arrivals.empty()) {
    P2SIM_CHECK(st.pending_arrivals.front() == 0,
                "intervals drained inside a horizon must have zero arrivals");
    st.pending_arrivals.pop_front();
    ++st.pending_base;
  }

  std::uint64_t arrivals = 0;
  if (st.t < st.arrivals_drawn_until) {
    // An earlier horizon scan already took this interval's Poisson draw
    // from the master stream; consume it in order instead of redrawing.
    P2SIM_CHECK(st.pending_base == st.t && !st.pending_arrivals.empty(),
                "arrival frontier must cover the first undrained interval");
    arrivals = st.pending_arrivals.front();
    st.pending_arrivals.pop_front();
    ++st.pending_base;
  } else {
    // Live path.  Demand process updates at day boundaries — pre-draws
    // never cross a day, so day boundaries always land here.
    if (st.t % util::kIntervalsPerDay == 0) {
      st.demand_level = std::clamp(
          cfg_.demand_walk_rho * st.demand_level +
              st.rng.normal(1.0 - cfg_.demand_walk_rho,
                            cfg_.demand_walk_noise *
                                (1.0 - cfg_.demand_walk_rho) * 4.0),
          cfg_.demand_min, cfg_.demand_max);
      if (st.slump_days_left > 0) {
        --st.slump_days_left;
      } else if (st.rng.chance(cfg_.slump_prob_per_day)) {
        st.slump_days_left = static_cast<int>(2 + st.rng.below(6));
        st.slump_depth =
            st.rng.uniform(cfg_.slump_depth_min, cfg_.slump_depth_max);
      }
    }
    arrivals = st.rng.poisson(arrival_lambda(st));
    st.arrivals_drawn_until = st.t + 1;
    st.pending_base = st.t + 1;
  }
  for (std::uint64_t a = 0; a < arrivals; ++a) {
    st.sched.submit(st.gen.next(st.now));
  }
}

void WorkloadDriver::phase_scheduling(CampaignState& st) {
  st.starts = st.sched.schedule(st.now);
  // Plan the signature measurements these starts need (kernels unknown to
  // the cache, deduplicated, in first-appearance order).  The plan is
  // fixed serially so the parallel measure phase has nothing to decide.
  std::vector<power2::KernelDesc> kernels;
  kernels.reserve(st.starts.size());
  for (const pbs::StartEvent& ev : st.starts) {
    kernels.push_back(st.registry.get(ev.spec.profile_id).kernel);
  }
  st.measure_plan = st.signatures.plan_batch(kernels);
}

void WorkloadDriver::phase_measure(CampaignState& st) {
  st.measure_results.clear();
  if (st.measure_plan.empty()) return;
  st.measure_results.resize(st.measure_plan.size());
  // Worker-private cores, results written by plan index: the measurement
  // set and its adoption order are fixed by the serial plan, so neither
  // thread count nor completion order can reorder anything observable.
  const power2::CoreConfig& core_cfg = st.signatures.core_config();
  const std::vector<power2::KernelDesc>& plan = st.measure_plan;
  std::vector<power2::QuietMeasurement>& results = st.measure_results;
  st.pool.run(plan.size(), [&plan, &results, &core_cfg](std::size_t begin,
                                                        std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = power2::measure_quiet(core_cfg, plan[i]);
    }
  });
  st.signatures.adopt_batch(st.measure_plan, st.measure_results);
  st.measure_plan.clear();
}

void WorkloadDriver::phase_launch(CampaignState& st) {
  for (pbs::StartEvent& ev : st.starts) {
    Running r;
    r.spec = ev.spec;
    r.profile = &st.registry.get(ev.spec.profile_id);
    r.sig = &st.signatures.get(r.profile->kernel);
    r.nodes = std::move(ev.nodes);
    r.start_s = st.now;
    r.end_s = st.now + ev.spec.runtime_s;
    if (auto att = st.attempts.find(r.spec.job_id); att != st.attempts.end()) {
      r.attempt = att->second;
    }
    if (st.inject.enabled() &&
        st.inject.lose_prologue(r.spec.job_id, r.attempt)) {
      r.has_prologue = false;  // the rsh timed out; no baseline snapshot
    } else {
      auto [jt, jq] = st.job_spans(r.nodes);
      st.jobmon.prologue(r.spec.job_id, st.now, jt, jq);
    }
    auto [it, inserted] = st.running.emplace(r.spec.job_id, std::move(r));
    for (int n : it->second.nodes) {
      st.node_job[static_cast<std::size_t>(n)] = &it->second;
    }
    (void)inserted;
    ++st.jobs_dispatched;
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_driver_jobs_dispatched_total",
                   "Jobs started on allocated nodes")
          .inc();
    }
  }
  st.starts.clear();
}

void WorkloadDriver::phase_horizon(CampaignState& st) {
  st.horizon_first = st.t;
  // Base caps: never cross the campaign end, a day boundary (the demand
  // walk and weekend factor change there), or a checkpoint cadence
  // boundary (durable generations must land on pass ends, so the cadence
  // cannot depend on how intervals batch into passes).
  std::int64_t cap =
      std::min(st.total_intervals, (st.day + 1) * util::kIntervalsPerDay) -
      st.t;
  const CheckpointConfig& ck = cfg_.checkpoint;
  if (!ck.dir.empty() && ck.every_intervals > 0) {
    const std::int64_t next_ck =
        (st.t / ck.every_intervals + 1) * ck.every_intervals;
    cap = std::min(cap, next_ck - st.t);
  }
  // Cross-node events pin the pass to one interval: a queued job may start
  // as soon as nodes free, and a down node reboots on its own clock.
  if (st.sched.queued_jobs() != 0) cap = 1;
  for (int n = 0; n < cfg_.num_nodes && cap > 1; ++n) {
    if (!st.node(n).is_up()) cap = 1;
  }
  // First job ending inside the window: the pass may include that interval
  // (epilogues run at the pass's last interval) but nothing beyond it.
  // The predicate mirrors phase_epilogues exactly.
  for (const auto& [id, r] : st.running) {
    (void)id;
    for (std::int64_t u = st.t; u < st.t + cap; ++u) {
      if (r.end_s <= static_cast<double>(u) * st.interval_s + st.interval_s) {
        cap = std::min(cap, u - st.t + 1);
        break;
      }
    }
  }
  if (st.inject.enabled()) {
    const fault::FaultSchedule& fsched = st.inject.schedule();
    // First crash drawn strictly inside the window ends the pass before it
    // (the faults phase must run at that interval).  Pure keyed queries:
    // nothing is logged and no stream state exists to disturb.
    for (std::int64_t u = st.t + 1; u < st.t + cap; ++u) {
      for (int n = 0; n < cfg_.num_nodes; ++n) {
        if (fsched.node_crashes(n, u)) {
          cap = u - st.t;
          break;
        }
      }
    }
  }
  // Arrival pre-draw: extend the frontier across the window in interval
  // order — exactly the draws the per-interval loop would have made — and
  // cut the pass before the first interval with arrivals.
  const double lambda = arrival_lambda(st);
  for (std::int64_t u = st.t + 1; u < st.t + cap; ++u) {
    std::uint64_t count = 0;
    if (u < st.arrivals_drawn_until) {
      count = st.pending_arrivals[static_cast<std::size_t>(
          u - st.pending_base)];
    } else {
      count = st.rng.poisson(lambda);
      st.pending_arrivals.push_back(count);
      st.arrivals_drawn_until = u + 1;
    }
    if (count > 0) cap = u - st.t;
  }
  // Whole-interval cron misses per horizon offset (pure keyed queries);
  // the lanes' probes and the collect post-pass read the same bitmap.
  st.miss.assign(static_cast<std::size_t>(cap), 0);
  if (st.inject.enabled()) {
    const fault::FaultSchedule& fsched = st.inject.schedule();
    for (std::int64_t k = 0; k < cap; ++k) {
      st.miss[static_cast<std::size_t>(k)] =
          fsched.interval_missed(st.t + k) ? 1 : 0;
    }
  }
  st.horizon = cap;
}

void WorkloadDriver::phase_nfs_grant(CampaignState& st) {
  double disk_demand = 0.0;
  for (const auto& [id, r] : st.running) {
    disk_demand += (r.profile->disk_read_bytes_per_s +
                    r.profile->disk_write_bytes_per_s) *
                   static_cast<double>(r.nodes.size());
  }
  st.grant = st.nfs.grant_fraction(disk_demand);
  // One accounting step per interval of the horizon, in interval order:
  // repeated addition is not one multiplied addition for doubles, and the
  // ledger must not depend on where passes break.
  const double per_interval = st.nfs.grant(disk_demand) * st.interval_s;
  for (std::int64_t k = 0; k < st.horizon; ++k) st.nfs.account(per_interval);
}

void WorkloadDriver::phase_lane_pipeline(CampaignState& st) {
  // Serial prologue: write each lane's work order for the whole pass.  The
  // activity mix and the job's absolute end time are pure functions of the
  // job and the NFS grant; each lane derives its own per-interval busy
  // split from end_s.
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    NodeLane& lane = st.lane(n);
    const Running* r = st.node_job[static_cast<std::size_t>(n)];
    if (r == nullptr) {
      lane.step = LaneStep{};
    } else {
      lane.step.sig = r->sig;
      lane.step.activity = activity_for(*r, st.grant);
      lane.step.end_s = r->end_s;
    }
  }

  // The parallel region: one lane per index, no cross-lane state.  Each
  // worker drains the whole horizon for its lanes — node advance plus the
  // daemon probe against the lane-owned baseline — so the barrier cost is
  // paid once per pass, not once per interval.  The pool's static shards
  // make work placement a function of (num_nodes, threads) only; with
  // threads == 1 this is an inline loop.
  const std::int64_t t0 = st.t;
  const std::int64_t h = st.horizon;
  const double interval_s = st.interval_s;
  const std::uint8_t* miss = st.miss.data();
  std::vector<NodeLane>& lanes = st.lanes;
  st.pool.run(lanes.size(), [&lanes, t0, h, interval_s, miss](
                                std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      lanes[i].run_pipeline(t0, h, interval_s, miss);
    }
  });
}

void WorkloadDriver::phase_fold(CampaignState& st) {
  // Serial merge under the fold guard: the session's fold epoch goes odd
  // for the duration so a concurrent scrape retries instead of
  // double-counting folded counters plus not-yet-reset shard residue.
  auto* tel = telemetry::current();
  telemetry::Session::FoldGuard fold_guard(tel);
  st.merged.assign(static_cast<std::size_t>(st.horizon),
                   CampaignState::MergedInterval{});
  const std::size_t lanes_n = st.lanes.size();
  for (std::int64_t k = 0; k < st.horizon; ++k) {
    const std::size_t ku = static_cast<std::size_t>(k);
    st.merged[ku] = telemetry::tree_fold(
        lanes_n,
        [&st, ku](std::size_t i) {
          const LaneSample& s = st.lanes[i].samples[ku];
          CampaignState::MergedInterval m;
          m.busy_s = s.busy_s;
          switch (s.outcome) {
            case ProbeOutcome::kSampled:
              m.delta = s.delta;
              m.quad_surplus = s.quad_surplus;
              m.sampled = 1;
              break;
            case ProbeOutcome::kReprimed:
              m.reprimed = 1;
              break;
            case ProbeOutcome::kNewlyPrimed:
              m.newly_primed = 1;
              break;
            case ProbeOutcome::kDown:
              m.down = 1;
              break;
            case ProbeOutcome::kLost:
              m.lost = 1;
              break;
            case ProbeOutcome::kMissed:
              break;
          }
          return m;
        },
        [](CampaignState::MergedInterval a,
           const CampaignState::MergedInterval& b) {
          a.delta += b.delta;
          a.quad_surplus += b.quad_surplus;
          a.sampled += b.sampled;
          a.reprimed += b.reprimed;
          a.newly_primed += b.newly_primed;
          a.down += b.down;
          a.lost += b.lost;
          a.busy_s += b.busy_s;
          return a;
        });
    // Campaign busy time accumulates per interval, ascending: the running
    // sum is the same no matter where passes break.
    st.result.total_busy_node_seconds +=
        st.merged[ku].busy_s;
  }
  // One shard merge per pass, through the same pairwise tree the scrape
  // path uses (telemetry::tree_fold_shards), folded into the registry via
  // the shard field table — the single registration site for the
  // p2sim_lane_* counters.  Counter sums are pass-split invariant.
  telemetry::MetricShard pass_shard = telemetry::tree_fold_shards(
      lanes_n, [&st](std::size_t i) -> const telemetry::MetricShard& {
        return st.lanes[i].shard;
      });
  for (NodeLane& lane : st.lanes) lane.shard.reset();
  if (tel != nullptr) {
    for (const telemetry::MetricShard::Field& f :
         telemetry::MetricShard::fields()) {
      tel->registry.counter(f.name, f.help).inc((pass_shard.*f.value)());
    }
  }
}

void WorkloadDriver::phase_epilogues(CampaignState& st) {
  std::vector<std::int64_t> done;
  for (const auto& [id, r] : st.running) {
    if (r.end_s <= st.now + st.interval_s) done.push_back(id);
  }
  for (std::int64_t id : done) {
    Running& r = st.running.at(id);
    pbs::JobRecord rec;
    rec.spec = r.spec;
    rec.start_time_s = r.start_s;
    rec.end_time_s = r.end_s;
    bool abandoned = false;
    if (!r.has_prologue) {
      rec.report = rs2hpm::JobCounterReport::incomplete(
          id, static_cast<int>(r.nodes.size()), r.end_s - r.start_s);
    } else if (st.inject.enabled() && st.inject.lose_epilogue(id, r.attempt)) {
      rec.report = st.jobmon.abandon(id, r.end_s);
      abandoned = true;
    } else {
      auto [jt, jq] = st.job_spans(r.nodes);
      rec.report = st.jobmon.epilogue(id, r.end_s, jt, jq);
    }
    if (cfg_.observer != nullptr) {
      telemetry::JobSample js;
      js.job_id = id;
      js.user_id = rec.spec.user_id;
      js.nodes = static_cast<int>(r.nodes.size());
      js.submit_s = rec.spec.submit_time_s;
      js.start_s = rec.start_time_s;
      js.end_s = rec.end_time_s;
      js.job_mflops = rec.job_mflops();
      js.complete = rec.report.complete;
      js.abandoned = abandoned;
      cfg_.observer->on_job(js);
    }
    st.result.jobs.add(std::move(rec));
    for (int n : r.nodes) st.node_job[static_cast<std::size_t>(n)] = nullptr;
    st.sched.release(id);
    st.running.erase(id);
    ++st.jobs_completed;
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_driver_jobs_completed_total",
                   "Jobs that ran to their scheduled end")
          .inc();
    }
  }
}

void WorkloadDriver::phase_collect(CampaignState& st) {
  st.records_before = st.daemon.records().size();
  const CampaignState::MergedInterval& m =
      st.merged[static_cast<std::size_t>(st.t - st.horizon_first)];
  st.busy_node_seconds = m.busy_s;
  st.busy_now =
      static_cast<int>(std::lround(st.busy_node_seconds / st.interval_s));
  if (st.inject.enabled()) {
    // Replays the same keyed miss decision the lanes saw, logging it in
    // per-interval order; a missed interval records nothing.
    if (st.inject.miss_interval(st.t)) return;
    for (int i = 0; i < m.down; ++i) st.inject.note_node_unreachable();
    st.inject.note_samples_lost(m.lost);
  }
  rs2hpm::IntervalRecord rec;
  rec.interval = st.t;
  rec.delta = m.delta;
  rec.quad_surplus = m.quad_surplus;
  rec.nodes_sampled = m.sampled;
  rec.nodes_expected = cfg_.num_nodes;
  rec.nodes_reprimed = m.reprimed;
  rec.busy_nodes = st.busy_now;
  // Lanes start primed (fresh node counters are the all-zero baseline), so
  // a merged record always has at least one baseline behind it.
  st.daemon.ingest(rec, m.down + m.lost, m.newly_primed, /*any_primed=*/true);
}

void WorkloadDriver::phase_observe(CampaignState& st) {
  if (cfg_.observer == nullptr) return;
  telemetry::HealthSample hs;
  hs.interval = st.t;
  hs.day = st.day;
  hs.sim_seconds = st.now + st.interval_s;
  hs.interval_recorded = st.daemon.records().size() > st.records_before;
  if (hs.interval_recorded) {
    const rs2hpm::IntervalRecord& rec = st.daemon.records().back();
    hs.nodes_sampled = rec.nodes_sampled;
    hs.nodes_expected = rec.nodes_expected;
    hs.nodes_reprimed = rec.nodes_reprimed;
    hs.mflops = rs2hpm::derive_rates(rec.delta, st.interval_s,
                                     rec.quad_surplus,
                                     st.result.selection)
                    .mflops_all;
  }
  hs.busy_nodes = st.busy_now;
  for (const NodeLane& lane : st.lanes) {
    if (!lane.node.is_up()) ++hs.offline_nodes;
  }
  hs.queue_depth = static_cast<std::int64_t>(st.sched.queued_jobs());
  hs.jobs_dispatched = st.jobs_dispatched;
  hs.jobs_completed = st.jobs_completed;
  hs.jobs_requeued = st.jobs_requeued;
  hs.faults_injected = st.inject.log().total_faults();
  cfg_.observer->on_interval(hs);
}

void WorkloadDriver::phase_archive(CampaignState& st) {
  if (st.archive_writer == nullptr) return;
  // Batch-append everything produced since the previous pass.  Chunk
  // boundaries depend only on row counts, so the archive bytes are
  // identical for every thread count, checkpoint cadence, and resume
  // (a resumed campaign restores all records and replays the appends
  // from zero — idempotent over the already-archived prefix).
  const std::vector<rs2hpm::IntervalRecord>& recs = st.daemon.records();
  for (; st.archived_intervals < recs.size(); ++st.archived_intervals) {
    st.archive_writer->append_interval(recs[st.archived_intervals]);
  }
  const std::vector<pbs::JobRecord>& jobs = st.result.jobs.all();
  for (; st.archived_jobs < jobs.size(); ++st.archived_jobs) {
    st.archive_writer->append_job(jobs[st.archived_jobs]);
  }
}

std::int64_t WorkloadDriver::try_resume(CampaignState& st) {
  const CheckpointConfig& ck = cfg_.checkpoint;
  if (!ck.resume || ck.dir.empty()) return 0;
  ResumeReport local;
  ResumeReport* rep = ck.report != nullptr ? ck.report : &local;
  std::optional<CheckpointImage> img =
      load_latest_checkpoint(ck.dir, config_fingerprint(cfg_), rep);
  for (const std::string& why : rep->rejected) {
    std::fprintf(stderr, "p2sim: checkpoint rejected: %s\n", why.c_str());
  }
  if (!img.has_value()) return 0;
  util::CkptReader r(img->payload);
  st.restore_ckpt(r);
  return img->resume_interval;
}

void WorkloadDriver::maybe_checkpoint(CampaignState& st) {
  checkpoint_test_tick("interval-end", st.t);
  const CheckpointConfig& ck = cfg_.checkpoint;
  if (ck.dir.empty() || ck.every_intervals <= 0) return;
  const std::int64_t next_t = st.t + 1;
  if (next_t % ck.every_intervals != 0 || next_t >= st.total_intervals) {
    return;
  }
  util::CkptWriter w;
  st.save_ckpt(w);
  std::string error;
  if (write_checkpoint(ck.dir, config_fingerprint(cfg_), next_t, w.bytes(),
                       ck.keep, &error)) {
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_ckpt_writes_total",
                   "Checkpoint generations committed durably",
                   /*wall_clock=*/true)
          .inc();
    }
  } else {
    // Durability is best-effort from the campaign's point of view: losing
    // a checkpoint loses restartability, never results.
    std::fprintf(stderr, "p2sim: checkpoint write failed: %s\n",
                 error.c_str());
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_ckpt_write_failures_total",
                   "Checkpoint writes that failed (campaign continued)",
                   /*wall_clock=*/true)
          .inc();
    }
  }
}

CampaignResult WorkloadDriver::run() {
  CampaignState st(cfg_);

  // Publish the lane shards to the session's live view so a scrape can
  // merge-on-read the unfolded residue mid-pass; retracted (under the
  // readers' lock) before the lanes die, even on unwind.
  std::vector<const telemetry::MetricShard*> shard_ptrs;
  if (telemetry::current() != nullptr) {
    shard_ptrs.reserve(st.lanes.size());
    for (const NodeLane& lane : st.lanes) shard_ptrs.push_back(&lane.shard);
  }
  telemetry::ScopedLiveShards live_shards(telemetry::current(),
                                          std::move(shard_ptrs));

  // Per-phase wall-clock sink: observability only (never consulted by the
  // simulation), measured with the sanctioned telemetry wall clock.
  PhaseTimings* pt = cfg_.phase_timings;
  const auto timed = [&st, pt, this](Phase p,
                                     void (WorkloadDriver::*fn)(
                                         CampaignState&)) {
    if (pt == nullptr) {
      (this->*fn)(st);
      return;
    }
    const std::int64_t begin_us = telemetry::wall_now_us();
    (this->*fn)(st);
    pt->wall_us[static_cast<std::size_t>(p)] +=
        telemetry::wall_now_us() - begin_us;
  };

  const std::int64_t start_t = try_resume(st);
  if (start_t == 0) {
    // Warm the signature cache before the interval loop through the same
    // batch pipeline the mid-campaign measure phase uses: plan the
    // registered kernels serially, measure them in parallel on
    // worker-private cores, adopt the results in plan order, then publish
    // the lock-free snapshot (which also covers everything the persistent
    // store contributed).  A resumed campaign restores the cache (and the
    // lane probe baselines) from the checkpoint instead.
    std::vector<power2::KernelDesc> kernels;
    st.registry.for_each(
        [&](const JobProfile& p) { kernels.push_back(p.kernel); });
    st.measure_plan = st.signatures.plan_batch(kernels);
    timed(Phase::kMeasure, &WorkloadDriver::phase_measure);
    st.signatures.warm(kernels);
  }

  if (auto* tel = telemetry::current()) {
    // Wall-clock metric: the thread count shapes wall time, never results,
    // so it is excluded from the bit-stable simulated-time export.  Set
    // after the resume so this run's value wins over the checkpointed one.
    tel->registry
        .gauge("p2sim_driver_threads",
               "Worker threads advancing the node lanes", /*wall_clock=*/true)
        .set(static_cast<double>(st.pool.threads()));
  }

  // The pass loop: serial phases run once per pass at its first interval,
  // the parallel phases drain the whole horizon, and the post-pass below
  // replays the per-interval accounting (epilogues at the pass's last
  // interval only — the horizon phase guarantees no job ends earlier).
  for (std::int64_t first = start_t; first < st.total_intervals;) {
    st.t = first;
    st.now = static_cast<double>(first) * st.interval_s;
    st.day = first / util::kIntervalsPerDay;

    timed(Phase::kDayRollover, &WorkloadDriver::phase_day_rollover);
    timed(Phase::kFaults, &WorkloadDriver::phase_faults);
    timed(Phase::kArrivals, &WorkloadDriver::phase_arrivals);
    timed(Phase::kScheduling, &WorkloadDriver::phase_scheduling);
    timed(Phase::kMeasure, &WorkloadDriver::phase_measure);
    timed(Phase::kLaunch, &WorkloadDriver::phase_launch);
    timed(Phase::kHorizon, &WorkloadDriver::phase_horizon);
    timed(Phase::kNfsGrant, &WorkloadDriver::phase_nfs_grant);
    timed(Phase::kLanePipeline, &WorkloadDriver::phase_lane_pipeline);
    timed(Phase::kFold, &WorkloadDriver::phase_fold);

    const std::int64_t last = first + st.horizon - 1;
    for (st.t = first; st.t <= last; ++st.t) {
      st.now = static_cast<double>(st.t) * st.interval_s;
      // Machine-state gauges refresh per interval with the pass's values
      // (state is constant inside a pass by construction), exactly as the
      // per-interval scheduling pass used to set them.
      st.sched.export_gauges();
      if (st.t == last) {
        timed(Phase::kEpilogues, &WorkloadDriver::phase_epilogues);
      }
      timed(Phase::kCollect, &WorkloadDriver::phase_collect);
      timed(Phase::kObserve, &WorkloadDriver::phase_observe);
      maybe_checkpoint(st);
    }
    timed(Phase::kArchive, &WorkloadDriver::phase_archive);
    if (pt != nullptr) {
      ++pt->horizons;
      pt->intervals += st.horizon;
    }
    first = last + 1;
  }
  if (st.day_span.open()) {
    st.day_span.close(static_cast<double>(st.total_intervals) * st.interval_s);
  }

  st.result.intervals = st.daemon.records();
  st.result.intervals_expected = st.total_intervals;
  st.result.jobs_open_at_end =
      static_cast<std::int64_t>(st.running.size() + st.sched.queued_jobs());
  for (const auto& [id, r] : st.running) {
    if (!r.has_prologue) ++st.result.jobs_open_sans_prologue;
  }
  st.result.faults = st.inject.log();
  // Persist newly measured signatures for the next run (no-op without a
  // configured store).  A failed write never fails the campaign — the
  // store is an accelerator, not a result.
  st.signatures.flush();
  // Final catch-up (jobs left open past the last pass never reach the
  // database, but a zero-pass campaign still needs its empty archive) and
  // the durable commit.  Unlike the signature store, the archive IS a
  // result: a failed write fails the campaign.
  phase_archive(st);
  if (st.archive_writer != nullptr) {
    std::string error;
    if (!st.archive_writer->finalize(cfg_.archive_path, &error)) {
      throw std::runtime_error("p2sim: archive write failed: " + error);
    }
  }
#if P2SIM_CHECKS_ENABLED
  // Campaign-level audit: every 15-minute record the daemon produced must
  // obey the Table 1 identities in both privilege modes.
  for (const rs2hpm::IntervalRecord& rec : st.result.intervals) {
    P2SIM_AUDIT_TOTALS(rec.delta.user,
                       "workload::WorkloadDriver::run(interval user delta)");
    P2SIM_AUDIT_TOTALS(
        rec.delta.system,
        "workload::WorkloadDriver::run(interval system delta)");
  }
#endif
  return st.result;
}

CampaignResult run_campaign(const DriverConfig& cfg) {
  WorkloadDriver driver(cfg);
  return driver.run();
}

}  // namespace p2sim::workload
