#include "src/workload/driver.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "src/check/invariants.hpp"
#include "src/rs2hpm/derived.hpp"
#include "src/telemetry/session.hpp"

namespace p2sim::workload {

WorkloadDriver::WorkloadDriver(const DriverConfig& cfg) : cfg_(cfg) {
  if (cfg_.num_nodes <= 0) throw std::invalid_argument("num_nodes must be > 0");
  if (cfg_.days <= 0) throw std::invalid_argument("days must be > 0");
  if (cfg_.jobs_per_day < 0.0) {
    throw std::invalid_argument("jobs_per_day must be >= 0");
  }
  if (cfg_.demand_min > cfg_.demand_max) {
    throw std::invalid_argument("demand bounds inverted");
  }
  if (cfg_.slump_depth_min > cfg_.slump_depth_max ||
      cfg_.slump_depth_min < 0.0 || cfg_.slump_depth_max > 1.0) {
    throw std::invalid_argument("slump depth bounds invalid");
  }
}

cluster::ActivityProfile WorkloadDriver::activity_for(
    const Running& r, double disk_grant_fraction) const {
  const cluster::PagingModel paging(cfg_.paging);
  const cluster::PagingState pg = paging.evaluate(r.profile->memory_mb_per_node);
  const cluster::HpsSwitch sw(cfg_.hps);
  const double comm =
      r.profile->comm_fraction(static_cast<int>(r.nodes.size()), sw);

  cluster::ActivityProfile a;
  const double active = r.profile->imbalance_efficiency * r.profile->duty_cycle;
  a.compute_fraction = (1.0 - comm) * active * pg.user_slowdown;
  // Wait-state accounting for the kWaitStates counter selection: the share
  // of wall time blocked on messages (communication plus synchronization
  // imbalance) and on fault/disk service.
  a.comm_wait_fraction =
      comm * active + (1.0 - r.profile->imbalance_efficiency) *
                          r.profile->duty_cycle * (1.0 - comm);
  a.io_wait_fraction = (1.0 - comm) * active * (1.0 - pg.user_slowdown);
  // Message traffic: what the node pushes/pulls through the adapter.
  // Receives run somewhat below sends (reductions fan in).
  a.comm_send_bytes_per_s = r.profile->msg_bytes_per_s;
  a.comm_recv_bytes_per_s = 0.7 * r.profile->msg_bytes_per_s;
  a.disk_read_bytes_per_s =
      r.profile->disk_read_bytes_per_s * disk_grant_fraction;
  a.disk_write_bytes_per_s =
      r.profile->disk_write_bytes_per_s * disk_grant_fraction;
  a.page_faults_per_s = pg.fault_rate;
  return a;
}

CampaignResult WorkloadDriver::run() {
  const double interval_s = static_cast<double>(util::kIntervalSeconds);
  const std::int64_t total_intervals = cfg_.days * util::kIntervalsPerDay;

  // --- substrate instances ---
  pbs::SchedulerConfig sched_cfg = cfg_.sched;
  sched_cfg.total_nodes = cfg_.num_nodes;
  pbs::Scheduler sched(sched_cfg);

  cluster::NodeConfig node_cfg = cfg_.node;
  node_cfg.fault_fxu_inst = cfg_.paging.fxu_inst_per_fault;
  node_cfg.fault_icu_inst = cfg_.paging.icu_inst_per_fault;
  node_cfg.fault_cycles = cfg_.paging.cycles_per_fault;
  node_cfg.page_bytes = cfg_.paging.page_bytes;
  std::vector<cluster::Node> nodes;
  nodes.reserve(static_cast<std::size_t>(cfg_.num_nodes));
  for (int i = 0; i < cfg_.num_nodes; ++i) nodes.emplace_back(i, node_cfg);

  ProfileRegistry registry;
  JobGenConfig gen_cfg = cfg_.jobgen;
  gen_cfg.seed ^= cfg_.seed;
  JobGenerator gen(gen_cfg, registry);
  power2::SignatureCache signatures(cfg_.core);
  rs2hpm::SamplingDaemon daemon(static_cast<std::size_t>(cfg_.num_nodes));
  rs2hpm::JobMonitor jobmon;
  cluster::NfsModel nfs(cfg_.nfs);

  util::Xoshiro256StarStar rng(cfg_.seed);
  double demand_level = 1.0;
  int slump_days_left = 0;
  double slump_depth = 1.0;

  fault::FaultInjector inject(cfg_.faults);
  // Interval at which each crashed node reboots (node is down while
  // t < down_until[n]; a node that never crashed has 0 and is up).
  std::vector<std::int64_t> down_until(
      static_cast<std::size_t>(cfg_.num_nodes), 0);
  // Requeue counts per job id: the attempt number varies the fault
  // schedule's prologue/epilogue draws across reruns of the same job.
  std::map<std::int64_t, int> attempts;

  std::map<std::int64_t, Running> running;            // by job id
  std::vector<const Running*> node_job(
      static_cast<std::size_t>(cfg_.num_nodes), nullptr);

  CampaignResult result;
  result.num_nodes = cfg_.num_nodes;
  result.days = cfg_.days;
  result.selection = node_cfg.monitor.selection;

  // Scratch spans for daemon / monitor snapshots.
  std::vector<rs2hpm::ModeTotals> totals_scratch(
      static_cast<std::size_t>(cfg_.num_nodes));
  std::vector<std::uint64_t> quads_scratch(
      static_cast<std::size_t>(cfg_.num_nodes));
  auto refresh_scratch = [&] {
    for (int i = 0; i < cfg_.num_nodes; ++i) {
      totals_scratch[static_cast<std::size_t>(i)] =
          nodes[static_cast<std::size_t>(i)].totals();
      quads_scratch[static_cast<std::size_t>(i)] =
          nodes[static_cast<std::size_t>(i)].quad_total();
    }
  };
  auto job_spans = [&](const std::vector<int>& held) {
    std::pair<std::vector<rs2hpm::ModeTotals>, std::vector<std::uint64_t>> out;
    for (int n : held) {
      out.first.push_back(nodes[static_cast<std::size_t>(n)].totals());
      out.second.push_back(nodes[static_cast<std::size_t>(n)].quad_total());
    }
    return out;
  };

  // Prime the daemon (first collect establishes the baseline).
  refresh_scratch();
  daemon.collect(-1, totals_scratch, quads_scratch, 0);

  // Cumulative job-flow tallies: fed to the health observer every interval
  // and mirrored into telemetry counters at the events themselves.
  std::int64_t jobs_dispatched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_requeued = 0;
  telemetry::Span day_span;

  for (std::int64_t t = 0; t < total_intervals; ++t) {
    const double now = static_cast<double>(t) * interval_s;
    const std::int64_t day = t / util::kIntervalsPerDay;

    if (t % util::kIntervalsPerDay == 0) {
      if (day_span.open()) day_span.close(now);
      day_span = telemetry::span("workload", "campaign_day", now);
      day_span.arg("day", static_cast<double>(day));
    }

    // --- fault processing: reboots, then fresh crashes ---
    if (inject.enabled()) {
      for (int n = 0; n < cfg_.num_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (!nodes[ni].is_up() && t >= down_until[ni]) {
          nodes[ni].reboot();  // counters stay zeroed: non-monotone on purpose
          sched.restore_node(n);
        }
        if (nodes[ni].is_up() && inject.crash_now(n, t)) {
          nodes[ni].crash();
          down_until[ni] = t + cfg_.faults.reboot_downtime_intervals;
          // Every job holding the node dies; its epilogue never fires.
          for (std::int64_t id : sched.fail_node(n)) {
            Running& r = running.at(id);
            inject.note_job_killed(r.has_prologue);
            pbs::JobRecord rec;
            rec.spec = r.spec;
            rec.start_time_s = r.start_s;
            rec.end_time_s = now;
            rec.report = r.has_prologue
                             ? jobmon.abandon(id, now)
                             : rs2hpm::JobCounterReport::incomplete(
                                   id, static_cast<int>(r.nodes.size()),
                                   now - r.start_s);
            result.jobs.add(std::move(rec));
            for (int held : r.nodes) {
              node_job[static_cast<std::size_t>(held)] = nullptr;
            }
            if (cfg_.requeue_killed_jobs) {
              pbs::JobSpec respec = r.spec;
              respec.submit_time_s = now;
              ++attempts[id];
              sched.submit(respec);
              inject.note_job_requeued();
              ++jobs_requeued;
              if (auto* tel = telemetry::current()) {
                tel->registry
                    .counter("p2sim_driver_jobs_requeued_total",
                             "Crash-killed jobs resubmitted by PBS")
                    .inc();
              }
            }
            running.erase(id);
          }
        }
        if (!nodes[ni].is_up()) inject.note_node_down();
      }
    }

    // Demand process updates at day boundaries.
    if (t % util::kIntervalsPerDay == 0) {
      demand_level = std::clamp(
          cfg_.demand_walk_rho * demand_level +
              rng.normal(1.0 - cfg_.demand_walk_rho, cfg_.demand_walk_noise *
                                                         (1.0 - cfg_.demand_walk_rho) * 4.0),
          cfg_.demand_min, cfg_.demand_max);
      if (slump_days_left > 0) {
        --slump_days_left;
      } else if (rng.chance(cfg_.slump_prob_per_day)) {
        slump_days_left = static_cast<int>(2 + rng.below(6));
        slump_depth = rng.uniform(cfg_.slump_depth_min, cfg_.slump_depth_max);
      }
    }

    // --- arrivals ---
    const double day_factor =
        (util::is_weekend(day) ? cfg_.weekend_factor : 1.0) *
        (slump_days_left > 0 ? slump_depth : 1.0);
    const double lambda = cfg_.jobs_per_day * day_factor * demand_level /
                          static_cast<double>(util::kIntervalsPerDay);
    const std::uint64_t arrivals = rng.poisson(lambda);
    for (std::uint64_t a = 0; a < arrivals; ++a) sched.submit(gen.next(now));

    // --- scheduling pass / prologues ---
    for (pbs::StartEvent& ev : sched.schedule(now)) {
      Running r;
      r.spec = ev.spec;
      r.profile = &registry.get(ev.spec.profile_id);
      r.sig = &signatures.get(r.profile->kernel);
      r.nodes = std::move(ev.nodes);
      r.start_s = now;
      r.end_s = now + ev.spec.runtime_s;
      if (auto att = attempts.find(r.spec.job_id); att != attempts.end()) {
        r.attempt = att->second;
      }
      if (inject.enabled() &&
          inject.lose_prologue(r.spec.job_id, r.attempt)) {
        r.has_prologue = false;  // the rsh timed out; no baseline snapshot
      } else {
        auto [jt, jq] = job_spans(r.nodes);
        jobmon.prologue(r.spec.job_id, now, jt, jq);
      }
      auto [it, inserted] = running.emplace(r.spec.job_id, std::move(r));
      for (int n : it->second.nodes) {
        node_job[static_cast<std::size_t>(n)] = &it->second;
      }
      (void)inserted;
      ++jobs_dispatched;
      if (auto* tel = telemetry::current()) {
        tel->registry
            .counter("p2sim_driver_jobs_dispatched_total",
                     "Jobs started on allocated nodes")
            .inc();
      }
    }

    // --- cluster-wide NFS throttle for this interval ---
    double disk_demand = 0.0;
    for (const auto& [id, r] : running) {
      disk_demand += (r.profile->disk_read_bytes_per_s +
                      r.profile->disk_write_bytes_per_s) *
                     static_cast<double>(r.nodes.size());
    }
    const double grant = nfs.grant_fraction(disk_demand);
    nfs.account(nfs.grant(disk_demand) * interval_s);

    // --- advance every node through the interval ---
    double busy_node_seconds = 0.0;
    for (int n = 0; n < cfg_.num_nodes; ++n) {
      const Running* r = node_job[static_cast<std::size_t>(n)];
      if (r == nullptr) {
        nodes[static_cast<std::size_t>(n)].advance_idle(interval_s);
        continue;
      }
      const double busy = std::min(r->end_s, now + interval_s) - now;
      const cluster::ActivityProfile act = activity_for(*r, grant);
      nodes[static_cast<std::size_t>(n)].advance(busy, r->sig, act);
      if (busy < interval_s) {
        nodes[static_cast<std::size_t>(n)].advance_idle(interval_s - busy);
      }
      busy_node_seconds += busy;
    }
    result.total_busy_node_seconds += busy_node_seconds;

    // --- epilogues for jobs that finished inside this interval ---
    std::vector<std::int64_t> done;
    for (const auto& [id, r] : running) {
      if (r.end_s <= now + interval_s) done.push_back(id);
    }
    for (std::int64_t id : done) {
      Running& r = running.at(id);
      pbs::JobRecord rec;
      rec.spec = r.spec;
      rec.start_time_s = r.start_s;
      rec.end_time_s = r.end_s;
      if (!r.has_prologue) {
        rec.report = rs2hpm::JobCounterReport::incomplete(
            id, static_cast<int>(r.nodes.size()), r.end_s - r.start_s);
      } else if (inject.enabled() && inject.lose_epilogue(id, r.attempt)) {
        rec.report = jobmon.abandon(id, r.end_s);
      } else {
        auto [jt, jq] = job_spans(r.nodes);
        rec.report = jobmon.epilogue(id, r.end_s, jt, jq);
      }
      result.jobs.add(std::move(rec));
      for (int n : r.nodes) node_job[static_cast<std::size_t>(n)] = nullptr;
      sched.release(id);
      running.erase(id);
      ++jobs_completed;
      if (auto* tel = telemetry::current()) {
        tel->registry
            .counter("p2sim_driver_jobs_completed_total",
                     "Jobs that ran to their scheduled end")
            .inc();
      }
    }

    // --- 15-minute daemon sample ---
    refresh_scratch();
    const std::size_t records_before = daemon.records().size();
    const int busy_now =
        static_cast<int>(std::lround(busy_node_seconds / interval_s));
    if (!inject.enabled()) {
      daemon.collect(t, totals_scratch, quads_scratch, busy_now);
    } else if (!inject.miss_interval(t)) {
      // Per-node reachability: down nodes cannot answer, and an up node's
      // sample can still be lost in flight.  Unreachable nodes keep their
      // baseline; the next successful sample covers the gap.
      std::vector<std::uint8_t> reachable(
          static_cast<std::size_t>(cfg_.num_nodes), 1);
      for (int n = 0; n < cfg_.num_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        if (!nodes[ni].is_up()) {
          reachable[ni] = 0;
          inject.note_node_unreachable();
        } else if (inject.lose_node_sample(n, t)) {
          reachable[ni] = 0;
        }
      }
      daemon.collect(t, totals_scratch, quads_scratch, reachable, busy_now);
    }

    // --- pipeline-health observation (pure read-side) ---
    if (cfg_.observer != nullptr) {
      telemetry::HealthSample hs;
      hs.interval = t;
      hs.day = day;
      hs.sim_seconds = now + interval_s;
      hs.interval_recorded = daemon.records().size() > records_before;
      if (hs.interval_recorded) {
        const rs2hpm::IntervalRecord& rec = daemon.records().back();
        hs.nodes_sampled = rec.nodes_sampled;
        hs.nodes_expected = rec.nodes_expected;
        hs.nodes_reprimed = rec.nodes_reprimed;
        hs.mflops = rs2hpm::derive_rates(rec.delta, interval_s,
                                         rec.quad_surplus,
                                         node_cfg.monitor.selection)
                        .mflops_all;
      }
      hs.busy_nodes = busy_now;
      for (const cluster::Node& node : nodes) {
        if (!node.is_up()) ++hs.offline_nodes;
      }
      hs.queue_depth = static_cast<std::int64_t>(sched.queued_jobs());
      hs.jobs_dispatched = jobs_dispatched;
      hs.jobs_completed = jobs_completed;
      hs.jobs_requeued = jobs_requeued;
      hs.faults_injected = inject.log().total_faults();
      cfg_.observer->on_interval(hs);
    }
  }
  if (day_span.open()) {
    day_span.close(static_cast<double>(total_intervals) * interval_s);
  }

  result.intervals = daemon.records();
  result.intervals_expected = total_intervals;
  result.jobs_open_at_end =
      static_cast<std::int64_t>(running.size() + sched.queued_jobs());
  for (const auto& [id, r] : running) {
    if (!r.has_prologue) ++result.jobs_open_sans_prologue;
  }
  result.faults = inject.log();
#if P2SIM_CHECKS_ENABLED
  // Campaign-level audit: every 15-minute record the daemon produced must
  // obey the Table 1 identities in both privilege modes.
  for (const rs2hpm::IntervalRecord& rec : result.intervals) {
    P2SIM_AUDIT_TOTALS(rec.delta.user,
                       "workload::WorkloadDriver::run(interval user delta)");
    P2SIM_AUDIT_TOTALS(
        rec.delta.system,
        "workload::WorkloadDriver::run(interval system delta)");
  }
#endif
  return result;
}

CampaignResult run_campaign(const DriverConfig& cfg) {
  WorkloadDriver driver(cfg);
  return driver.run();
}

}  // namespace p2sim::workload
