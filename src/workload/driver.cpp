#include "src/workload/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "src/check/invariants.hpp"
#include "src/rs2hpm/derived.hpp"
#include "src/telemetry/session.hpp"
#include "src/util/task_pool.hpp"

namespace p2sim::workload {

WorkloadDriver::WorkloadDriver(const DriverConfig& cfg) : cfg_(cfg) {
  if (cfg_.num_nodes <= 0) throw std::invalid_argument("num_nodes must be > 0");
  if (cfg_.days <= 0) throw std::invalid_argument("days must be > 0");
  if (cfg_.jobs_per_day < 0.0) {
    throw std::invalid_argument("jobs_per_day must be >= 0");
  }
  if (cfg_.demand_min > cfg_.demand_max) {
    throw std::invalid_argument("demand bounds inverted");
  }
  if (cfg_.slump_depth_min > cfg_.slump_depth_max ||
      cfg_.slump_depth_min < 0.0 || cfg_.slump_depth_max > 1.0) {
    throw std::invalid_argument("slump depth bounds invalid");
  }
  if (cfg_.threads < 0) {
    throw std::invalid_argument("threads must be >= 0 (0 = hardware)");
  }
}

WorkloadDriver::~WorkloadDriver() = default;

cluster::ActivityProfile WorkloadDriver::activity_for(
    const Running& r, double disk_grant_fraction) const {
  const cluster::PagingModel paging(cfg_.paging);
  const cluster::PagingState pg = paging.evaluate(r.profile->memory_mb_per_node);
  const cluster::HpsSwitch sw(cfg_.hps);
  const double comm =
      r.profile->comm_fraction(static_cast<int>(r.nodes.size()), sw);

  cluster::ActivityProfile a;
  const double active = r.profile->imbalance_efficiency * r.profile->duty_cycle;
  a.compute_fraction = (1.0 - comm) * active * pg.user_slowdown;
  // Wait-state accounting for the kWaitStates counter selection: the share
  // of wall time blocked on messages (communication plus synchronization
  // imbalance) and on fault/disk service.
  a.comm_wait_fraction =
      comm * active + (1.0 - r.profile->imbalance_efficiency) *
                          r.profile->duty_cycle * (1.0 - comm);
  a.io_wait_fraction = (1.0 - comm) * active * (1.0 - pg.user_slowdown);
  // Message traffic: what the node pushes/pulls through the adapter.
  // Receives run somewhat below sends (reductions fan in).
  a.comm_send_bytes_per_s = r.profile->msg_bytes_per_s;
  a.comm_recv_bytes_per_s = 0.7 * r.profile->msg_bytes_per_s;
  a.disk_read_bytes_per_s =
      r.profile->disk_read_bytes_per_s * disk_grant_fraction;
  a.disk_write_bytes_per_s =
      r.profile->disk_write_bytes_per_s * disk_grant_fraction;
  a.page_faults_per_s = pg.fault_rate;
  return a;
}

/// Every piece of campaign state, constructed once per run().  The serial
/// phases own all of it; the parallel phase touches only `lanes` (one lane
/// per worker, statically sharded) and reads the immutable inputs.
struct WorkloadDriver::CampaignState {
  explicit CampaignState(const DriverConfig& cfg)
      : interval_s(static_cast<double>(util::kIntervalSeconds)),
        total_intervals(cfg.days * util::kIntervalsPerDay),
        sched([&] {
          pbs::SchedulerConfig sc = cfg.sched;
          sc.total_nodes = cfg.num_nodes;
          return sc;
        }()),
        gen([&] {
          JobGenConfig gc = cfg.jobgen;
          gc.seed ^= cfg.seed;
          return gc;
        }(), registry),
        signatures(cfg.core,
                   power2::SignatureStoreConfig{cfg.signature_store_path}),
        daemon(static_cast<std::size_t>(cfg.num_nodes)),
        nfs(cfg.nfs),
        rng(cfg.seed),
        inject(cfg.faults),
        down_until(static_cast<std::size_t>(cfg.num_nodes), 0),
        node_job(static_cast<std::size_t>(cfg.num_nodes), nullptr),
        totals_scratch(static_cast<std::size_t>(cfg.num_nodes)),
        quads_scratch(static_cast<std::size_t>(cfg.num_nodes)),
        pool(cfg.threads) {
    cluster::NodeConfig node_cfg = cfg.node;
    node_cfg.fault_fxu_inst = cfg.paging.fxu_inst_per_fault;
    node_cfg.fault_icu_inst = cfg.paging.icu_inst_per_fault;
    node_cfg.fault_cycles = cfg.paging.cycles_per_fault;
    node_cfg.page_bytes = cfg.paging.page_bytes;
    lanes.reserve(static_cast<std::size_t>(cfg.num_nodes));
    const fault::FaultSchedule* view =
        inject.enabled() ? &inject.schedule() : nullptr;
    for (int i = 0; i < cfg.num_nodes; ++i) {
      lanes.emplace_back(i, node_cfg, cfg.seed, view);
    }
    result.num_nodes = cfg.num_nodes;
    result.days = cfg.days;
    result.selection = node_cfg.monitor.selection;
  }

  NodeLane& lane(int n) { return lanes[static_cast<std::size_t>(n)]; }
  cluster::Node& node(int n) { return lane(n).node; }

  /// Serializes every accumulated campaign quantity at an interval
  /// boundary (per-interval scratch and the worker pool are excluded: the
  /// next iteration rewrites them).  The restore side re-resolves the
  /// profile/signature pointers and rebuilds node_job, then demands the
  /// stream be fully consumed.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);

  /// Copies every lane's extended totals into the daemon scratch spans.
  void refresh_scratch() {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      totals_scratch[i] = lanes[i].node.totals();
      quads_scratch[i] = lanes[i].node.quad_total();
    }
  }

  /// Snapshot spans over the nodes a job holds (prologue/epilogue input).
  std::pair<std::vector<rs2hpm::ModeTotals>, std::vector<std::uint64_t>>
  job_spans(const std::vector<int>& held) {
    std::pair<std::vector<rs2hpm::ModeTotals>, std::vector<std::uint64_t>> out;
    for (int n : held) {
      out.first.push_back(node(n).totals());
      out.second.push_back(node(n).quad_total());
    }
    return out;
  }

  // --- fixed campaign parameters -----------------------------------------
  double interval_s;
  std::int64_t total_intervals;

  // --- substrate instances (serial-phase property) -----------------------
  pbs::Scheduler sched;
  ProfileRegistry registry;
  JobGenerator gen;
  power2::SignatureCache signatures;
  rs2hpm::SamplingDaemon daemon;
  rs2hpm::JobMonitor jobmon;
  cluster::NfsModel nfs;

  /// Master RNG stream: owned by the serial arrivals phase (demand walk,
  /// slumps, Poisson arrivals).  Never consulted per node — per-node draws
  /// belong to the lanes' private streams.
  util::Xoshiro256StarStar rng;
  double demand_level = 1.0;
  int slump_days_left = 0;
  double slump_depth = 1.0;

  fault::FaultInjector inject;
  /// Interval at which each crashed node reboots (node is down while
  /// t < down_until[n]; a node that never crashed has 0 and is up).
  std::vector<std::int64_t> down_until;
  /// Requeue counts per job id: the attempt number varies the fault
  /// schedule's prologue/epilogue draws across reruns of the same job.
  std::map<std::int64_t, int> attempts;

  std::map<std::int64_t, Running> running;  // by job id
  std::vector<const Running*> node_job;

  CampaignResult result;

  // Scratch spans for daemon / monitor snapshots.
  std::vector<rs2hpm::ModeTotals> totals_scratch;
  std::vector<std::uint64_t> quads_scratch;

  // --- the parallel substrate --------------------------------------------
  std::vector<NodeLane> lanes;
  util::TaskPool pool;

  // Cumulative job-flow tallies: fed to the health observer every interval
  // and mirrored into telemetry counters at the events themselves.
  std::int64_t jobs_dispatched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_requeued = 0;
  telemetry::Span day_span;

  // --- per-interval scratch, written by the phases in order --------------
  std::int64_t t = 0;
  double now = 0.0;
  std::int64_t day = 0;
  double grant = 0.0;
  double busy_node_seconds = 0.0;
  std::size_t records_before = 0;
  int busy_now = 0;
};

void WorkloadDriver::CampaignState::save_ckpt(util::CkptWriter& w) const {
  w.put_i64(t);
  rng.save_ckpt(w);
  w.put_f64(demand_level);
  w.put_i32(slump_days_left);
  w.put_f64(slump_depth);
  w.put_i64(jobs_dispatched);
  w.put_i64(jobs_completed);
  w.put_i64(jobs_requeued);
  for (std::int64_t until : down_until) w.put_i64(until);
  w.put_u64(attempts.size());
  for (const auto& [id, attempt] : attempts) {
    w.put_i64(id);
    w.put_i32(attempt);
  }
  sched.save_ckpt(w);
  registry.save_ckpt(w);
  gen.save_ckpt(w);
  signatures.save_ckpt(w);
  daemon.save_ckpt(w);
  jobmon.save_ckpt(w);
  nfs.save_ckpt(w);
  inject.save_ckpt(w);
  w.put_u64(lanes.size());
  for (const NodeLane& lane : lanes) {
    lane.node.save_ckpt(w);
    lane.rng.save_ckpt(w);
  }
  w.put_u64(running.size());
  for (const auto& [id, r] : running) {
    r.spec.save_ckpt(w);
    w.put_u64(r.nodes.size());
    for (int n : r.nodes) w.put_i32(n);
    w.put_f64(r.start_s);
    w.put_f64(r.end_s);
    w.put_bool(r.has_prologue);
    w.put_i32(r.attempt);
  }
  w.put_f64(result.total_busy_node_seconds);
  result.jobs.save_ckpt(w);
  // Telemetry rides along as a nested length-prefixed blob so a session
  // without telemetry can skip it wholesale (the blob is still read, so
  // the stream stays in sync).
  const telemetry::Session* tel = telemetry::current();
  w.put_bool(tel != nullptr);
  {
    util::CkptWriter nested;
    if (tel != nullptr) {
      nested.put_f64(tel->engine_clock_s);
      tel->registry.save_ckpt(nested);
      tel->tracer.save_ckpt(nested);
    }
    w.put_str(nested.bytes());
  }
  day_span.save_ckpt(w);
}

void WorkloadDriver::CampaignState::restore_ckpt(util::CkptReader& r) {
  t = r.read_i64("campaign.t");
  rng.restore_ckpt(r);
  demand_level = r.read_f64("campaign.demand_level");
  slump_days_left = r.read_i32("campaign.slump_days_left");
  slump_depth = r.read_f64("campaign.slump_depth");
  jobs_dispatched = r.read_i64("campaign.jobs_dispatched");
  jobs_completed = r.read_i64("campaign.jobs_completed");
  jobs_requeued = r.read_i64("campaign.jobs_requeued");
  for (std::int64_t& until : down_until) {
    until = r.read_i64("campaign.down_until");
  }
  attempts.clear();
  std::uint64_t num_attempts = r.read_u64("campaign.attempts");
  for (std::uint64_t i = 0; i < num_attempts; ++i) {
    const std::int64_t id = r.read_i64("campaign.attempt_id");
    attempts[id] = r.read_i32("campaign.attempt_count");
  }
  sched.restore_ckpt(r);
  registry.restore_ckpt(r);
  gen.restore_ckpt(r);
  signatures.restore_ckpt(r);
  daemon.restore_ckpt(r);
  jobmon.restore_ckpt(r);
  nfs.restore_ckpt(r);
  inject.restore_ckpt(r);
  const std::uint64_t num_lanes = r.read_u64("campaign.lanes");
  if (num_lanes != lanes.size()) {
    throw util::CkptError("campaign.lanes: node count mismatch");
  }
  for (NodeLane& lane : lanes) {
    lane.node.restore_ckpt(r);
    lane.rng.restore_ckpt(r);
  }
  running.clear();
  std::fill(node_job.begin(), node_job.end(), nullptr);
  const std::uint64_t num_running = r.read_u64("campaign.running");
  for (std::uint64_t i = 0; i < num_running; ++i) {
    Running rj;
    rj.spec.restore_ckpt(r);
    const std::uint64_t num_held = r.read_u64("campaign.job_nodes");
    rj.nodes.resize(static_cast<std::size_t>(num_held));
    for (int& n : rj.nodes) n = r.read_i32("campaign.job_node");
    rj.start_s = r.read_f64("campaign.job_start_s");
    rj.end_s = r.read_f64("campaign.job_end_s");
    rj.has_prologue = r.read_bool("campaign.job_has_prologue");
    rj.attempt = r.read_i32("campaign.job_attempt");
    running.emplace(rj.spec.job_id, std::move(rj));
  }
  // Pointer re-resolution: profiles and signatures live in the restored
  // registry/cache, so the map lookups reproduce the original pointers'
  // referents exactly.
  for (auto& [id, rj] : running) {
    rj.profile = &registry.get(rj.spec.profile_id);
    rj.sig = &signatures.get(rj.profile->kernel);
    for (int n : rj.nodes) {
      node_job[static_cast<std::size_t>(n)] = &rj;
    }
  }
  result.total_busy_node_seconds = r.read_f64("campaign.busy_node_seconds");
  result.jobs.restore_ckpt(r);
  telemetry::Session* tel = telemetry::current();
  const bool saved_telemetry = r.read_bool("campaign.has_telemetry");
  const std::string blob = r.read_str("campaign.telemetry_blob");
  if (saved_telemetry && tel != nullptr) {
    util::CkptReader nested(blob);
    tel->engine_clock_s = nested.read_f64("campaign.engine_clock_s");
    tel->registry.restore_ckpt(nested);
    tel->tracer.restore_ckpt(nested);
    nested.expect_end("campaign.telemetry_blob");
  }
  day_span = telemetry::Span::adopt_ckpt(
      tel != nullptr ? &tel->tracer : nullptr, r);
  r.expect_end("campaign");
}

void WorkloadDriver::phase_day_rollover(CampaignState& st) {
  if (st.t % util::kIntervalsPerDay != 0) return;
  if (st.day_span.open()) st.day_span.close(st.now);
  st.day_span = telemetry::span("workload", "campaign_day", st.now);
  st.day_span.arg("day", static_cast<double>(st.day));
}

void WorkloadDriver::phase_faults(CampaignState& st) {
  if (!st.inject.enabled()) return;
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    const auto ni = static_cast<std::size_t>(n);
    if (!st.node(n).is_up() && st.t >= st.down_until[ni]) {
      st.node(n).reboot();  // counters stay zeroed: non-monotone on purpose
      st.sched.restore_node(n);
    }
    if (st.node(n).is_up() && st.inject.crash_now(n, st.t)) {
      st.node(n).crash();
      st.down_until[ni] = st.t + cfg_.faults.reboot_downtime_intervals;
      // Every job holding the node dies; its epilogue never fires.
      for (std::int64_t id : st.sched.fail_node(n)) {
        Running& r = st.running.at(id);
        st.inject.note_job_killed(r.has_prologue);
        pbs::JobRecord rec;
        rec.spec = r.spec;
        rec.start_time_s = r.start_s;
        rec.end_time_s = st.now;
        rec.report = r.has_prologue
                         ? st.jobmon.abandon(id, st.now)
                         : rs2hpm::JobCounterReport::incomplete(
                               id, static_cast<int>(r.nodes.size()),
                               st.now - r.start_s);
        st.result.jobs.add(std::move(rec));
        for (int held : r.nodes) {
          st.node_job[static_cast<std::size_t>(held)] = nullptr;
        }
        if (cfg_.requeue_killed_jobs) {
          pbs::JobSpec respec = r.spec;
          respec.submit_time_s = st.now;
          ++st.attempts[id];
          st.sched.submit(respec);
          st.inject.note_job_requeued();
          ++st.jobs_requeued;
          if (auto* tel = telemetry::current()) {
            tel->registry
                .counter("p2sim_driver_jobs_requeued_total",
                         "Crash-killed jobs resubmitted by PBS")
                .inc();
          }
        }
        st.running.erase(id);
      }
    }
    if (!st.node(n).is_up()) st.inject.note_node_down();
  }
}

void WorkloadDriver::phase_arrivals(CampaignState& st) {
  // Demand process updates at day boundaries.
  if (st.t % util::kIntervalsPerDay == 0) {
    st.demand_level = std::clamp(
        cfg_.demand_walk_rho * st.demand_level +
            st.rng.normal(1.0 - cfg_.demand_walk_rho,
                          cfg_.demand_walk_noise *
                              (1.0 - cfg_.demand_walk_rho) * 4.0),
        cfg_.demand_min, cfg_.demand_max);
    if (st.slump_days_left > 0) {
      --st.slump_days_left;
    } else if (st.rng.chance(cfg_.slump_prob_per_day)) {
      st.slump_days_left = static_cast<int>(2 + st.rng.below(6));
      st.slump_depth =
          st.rng.uniform(cfg_.slump_depth_min, cfg_.slump_depth_max);
    }
  }

  const double day_factor =
      (util::is_weekend(st.day) ? cfg_.weekend_factor : 1.0) *
      (st.slump_days_left > 0 ? st.slump_depth : 1.0);
  const double lambda = cfg_.jobs_per_day * day_factor * st.demand_level /
                        static_cast<double>(util::kIntervalsPerDay);
  const std::uint64_t arrivals = st.rng.poisson(lambda);
  for (std::uint64_t a = 0; a < arrivals; ++a) {
    st.sched.submit(st.gen.next(st.now));
  }
}

void WorkloadDriver::phase_scheduling(CampaignState& st) {
  for (pbs::StartEvent& ev : st.sched.schedule(st.now)) {
    Running r;
    r.spec = ev.spec;
    r.profile = &st.registry.get(ev.spec.profile_id);
    r.sig = &st.signatures.get(r.profile->kernel);
    r.nodes = std::move(ev.nodes);
    r.start_s = st.now;
    r.end_s = st.now + ev.spec.runtime_s;
    if (auto att = st.attempts.find(r.spec.job_id); att != st.attempts.end()) {
      r.attempt = att->second;
    }
    if (st.inject.enabled() &&
        st.inject.lose_prologue(r.spec.job_id, r.attempt)) {
      r.has_prologue = false;  // the rsh timed out; no baseline snapshot
    } else {
      auto [jt, jq] = st.job_spans(r.nodes);
      st.jobmon.prologue(r.spec.job_id, st.now, jt, jq);
    }
    auto [it, inserted] = st.running.emplace(r.spec.job_id, std::move(r));
    for (int n : it->second.nodes) {
      st.node_job[static_cast<std::size_t>(n)] = &it->second;
    }
    (void)inserted;
    ++st.jobs_dispatched;
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_driver_jobs_dispatched_total",
                   "Jobs started on allocated nodes")
          .inc();
    }
  }
}

void WorkloadDriver::phase_nfs_grant(CampaignState& st) {
  double disk_demand = 0.0;
  for (const auto& [id, r] : st.running) {
    disk_demand += (r.profile->disk_read_bytes_per_s +
                    r.profile->disk_write_bytes_per_s) *
                   static_cast<double>(r.nodes.size());
  }
  st.grant = st.nfs.grant_fraction(disk_demand);
  st.nfs.account(st.nfs.grant(disk_demand) * st.interval_s);
}

void WorkloadDriver::phase_node_advance(CampaignState& st) {
  // Serial prologue: write each lane's work order for this interval.  The
  // activity mix and busy time are pure functions of the job and the NFS
  // grant, evaluated per node exactly as the serial driver did.
  for (int n = 0; n < cfg_.num_nodes; ++n) {
    NodeLane& lane = st.lane(n);
    const Running* r = st.node_job[static_cast<std::size_t>(n)];
    if (r == nullptr) {
      lane.step = LaneStep{};
    } else {
      lane.step.sig = r->sig;
      lane.step.activity = activity_for(*r, st.grant);
      lane.step.busy_s = std::min(r->end_s, st.now + st.interval_s) - st.now;
    }
  }

  // The parallel region: one lane per index, no cross-lane state.  The
  // pool's static shards make the work placement a function of
  // (num_nodes, threads) only; with threads == 1 this is an inline loop.
  const double interval_s = st.interval_s;
  std::vector<NodeLane>& lanes = st.lanes;
  st.pool.run(lanes.size(), [&lanes, interval_s](std::size_t begin,
                                                 std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      lanes[i].advance_interval(interval_s);
    }
  });

  // Serial merge, ascending node order: fold busy seconds exactly as the
  // serial loop accumulated them, and fold the telemetry shards through
  // the shard field table (the single registration site for the
  // p2sim_lane_* counters).  The FoldGuard flips the session's fold epoch
  // odd for the duration so a concurrent scrape retries instead of
  // double-counting folded counters plus not-yet-reset shard residue.
  auto* tel = telemetry::current();
  telemetry::Session::FoldGuard fold_guard(tel);
  st.busy_node_seconds = 0.0;
  telemetry::MetricShard interval_shard;
  for (NodeLane& lane : lanes) {
    if (lane.step.sig != nullptr) {
      st.busy_node_seconds += lane.interval_busy_s;
    }
    interval_shard.merge_from(lane.shard);
    lane.shard.reset();
  }
  st.result.total_busy_node_seconds += st.busy_node_seconds;
  if (tel != nullptr) {
    for (const telemetry::MetricShard::Field& f :
         telemetry::MetricShard::fields()) {
      tel->registry.counter(f.name, f.help).inc((interval_shard.*f.value)());
    }
  }
}

void WorkloadDriver::phase_epilogues(CampaignState& st) {
  std::vector<std::int64_t> done;
  for (const auto& [id, r] : st.running) {
    if (r.end_s <= st.now + st.interval_s) done.push_back(id);
  }
  for (std::int64_t id : done) {
    Running& r = st.running.at(id);
    pbs::JobRecord rec;
    rec.spec = r.spec;
    rec.start_time_s = r.start_s;
    rec.end_time_s = r.end_s;
    bool abandoned = false;
    if (!r.has_prologue) {
      rec.report = rs2hpm::JobCounterReport::incomplete(
          id, static_cast<int>(r.nodes.size()), r.end_s - r.start_s);
    } else if (st.inject.enabled() && st.inject.lose_epilogue(id, r.attempt)) {
      rec.report = st.jobmon.abandon(id, r.end_s);
      abandoned = true;
    } else {
      auto [jt, jq] = st.job_spans(r.nodes);
      rec.report = st.jobmon.epilogue(id, r.end_s, jt, jq);
    }
    if (cfg_.observer != nullptr) {
      telemetry::JobSample js;
      js.job_id = id;
      js.user_id = rec.spec.user_id;
      js.nodes = static_cast<int>(r.nodes.size());
      js.submit_s = rec.spec.submit_time_s;
      js.start_s = rec.start_time_s;
      js.end_s = rec.end_time_s;
      js.job_mflops = rec.job_mflops();
      js.complete = rec.report.complete;
      js.abandoned = abandoned;
      cfg_.observer->on_job(js);
    }
    st.result.jobs.add(std::move(rec));
    for (int n : r.nodes) st.node_job[static_cast<std::size_t>(n)] = nullptr;
    st.sched.release(id);
    st.running.erase(id);
    ++st.jobs_completed;
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_driver_jobs_completed_total",
                   "Jobs that ran to their scheduled end")
          .inc();
    }
  }
}

void WorkloadDriver::phase_collect(CampaignState& st) {
  st.refresh_scratch();
  st.records_before = st.daemon.records().size();
  st.busy_now =
      static_cast<int>(std::lround(st.busy_node_seconds / st.interval_s));
  if (!st.inject.enabled()) {
    st.daemon.collect(st.t, st.totals_scratch, st.quads_scratch, st.busy_now);
  } else if (!st.inject.miss_interval(st.t)) {
    // Per-node reachability: down nodes cannot answer, and an up node's
    // sample can still be lost in flight.  Unreachable nodes keep their
    // baseline; the next successful sample covers the gap.
    std::vector<std::uint8_t> reachable(
        static_cast<std::size_t>(cfg_.num_nodes), 1);
    for (int n = 0; n < cfg_.num_nodes; ++n) {
      const auto ni = static_cast<std::size_t>(n);
      if (!st.node(n).is_up()) {
        reachable[ni] = 0;
        st.inject.note_node_unreachable();
      } else if (st.inject.lose_node_sample(n, st.t)) {
        reachable[ni] = 0;
      }
    }
    st.daemon.collect(st.t, st.totals_scratch, st.quads_scratch, reachable,
                      st.busy_now);
  }
}

void WorkloadDriver::phase_observe(CampaignState& st) {
  if (cfg_.observer == nullptr) return;
  telemetry::HealthSample hs;
  hs.interval = st.t;
  hs.day = st.day;
  hs.sim_seconds = st.now + st.interval_s;
  hs.interval_recorded = st.daemon.records().size() > st.records_before;
  if (hs.interval_recorded) {
    const rs2hpm::IntervalRecord& rec = st.daemon.records().back();
    hs.nodes_sampled = rec.nodes_sampled;
    hs.nodes_expected = rec.nodes_expected;
    hs.nodes_reprimed = rec.nodes_reprimed;
    hs.mflops = rs2hpm::derive_rates(rec.delta, st.interval_s,
                                     rec.quad_surplus,
                                     st.result.selection)
                    .mflops_all;
  }
  hs.busy_nodes = st.busy_now;
  for (const NodeLane& lane : st.lanes) {
    if (!lane.node.is_up()) ++hs.offline_nodes;
  }
  hs.queue_depth = static_cast<std::int64_t>(st.sched.queued_jobs());
  hs.jobs_dispatched = st.jobs_dispatched;
  hs.jobs_completed = st.jobs_completed;
  hs.jobs_requeued = st.jobs_requeued;
  hs.faults_injected = st.inject.log().total_faults();
  cfg_.observer->on_interval(hs);
}

std::int64_t WorkloadDriver::try_resume(CampaignState& st) {
  const CheckpointConfig& ck = cfg_.checkpoint;
  if (!ck.resume || ck.dir.empty()) return 0;
  ResumeReport local;
  ResumeReport* rep = ck.report != nullptr ? ck.report : &local;
  std::optional<CheckpointImage> img =
      load_latest_checkpoint(ck.dir, config_fingerprint(cfg_), rep);
  for (const std::string& why : rep->rejected) {
    std::fprintf(stderr, "p2sim: checkpoint rejected: %s\n", why.c_str());
  }
  if (!img.has_value()) return 0;
  util::CkptReader r(img->payload);
  st.restore_ckpt(r);
  return img->resume_interval;
}

void WorkloadDriver::maybe_checkpoint(CampaignState& st) {
  checkpoint_test_tick("interval-end", st.t);
  const CheckpointConfig& ck = cfg_.checkpoint;
  if (ck.dir.empty() || ck.every_intervals <= 0) return;
  const std::int64_t next_t = st.t + 1;
  if (next_t % ck.every_intervals != 0 || next_t >= st.total_intervals) {
    return;
  }
  util::CkptWriter w;
  st.save_ckpt(w);
  std::string error;
  if (write_checkpoint(ck.dir, config_fingerprint(cfg_), next_t, w.bytes(),
                       ck.keep, &error)) {
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_ckpt_writes_total",
                   "Checkpoint generations committed durably",
                   /*wall_clock=*/true)
          .inc();
    }
  } else {
    // Durability is best-effort from the campaign's point of view: losing
    // a checkpoint loses restartability, never results.
    std::fprintf(stderr, "p2sim: checkpoint write failed: %s\n",
                 error.c_str());
    if (auto* tel = telemetry::current()) {
      tel->registry
          .counter("p2sim_ckpt_write_failures_total",
                   "Checkpoint writes that failed (campaign continued)",
                   /*wall_clock=*/true)
          .inc();
    }
  }
}

CampaignResult WorkloadDriver::run() {
  CampaignState st(cfg_);

  // Publish the lane shards to the session's live view so a scrape can
  // merge-on-read the unfolded residue mid-interval; retracted (under the
  // readers' lock) before the lanes die, even on unwind.
  std::vector<const telemetry::MetricShard*> shard_ptrs;
  if (telemetry::current() != nullptr) {
    shard_ptrs.reserve(st.lanes.size());
    for (const NodeLane& lane : st.lanes) shard_ptrs.push_back(&lane.shard);
  }
  telemetry::ScopedLiveShards live_shards(telemetry::current(),
                                          std::move(shard_ptrs));

  const std::int64_t start_t = try_resume(st);
  if (start_t == 0) {
    // Warm the signature cache before the interval loop: pre-measure every
    // kernel already registered and publish the lock-free snapshot (which
    // also covers everything the persistent store contributed).  Kernels
    // first generated mid-campaign still measure on demand through the
    // cache's locked slow path — always in the serial scheduling phase,
    // never in per-interval worker code.  A resumed campaign restores the
    // cache (and the daemon baseline) from the checkpoint instead.
    std::vector<power2::KernelDesc> kernels;
    st.registry.for_each(
        [&](const JobProfile& p) { kernels.push_back(p.kernel); });
    st.signatures.warm(kernels);
  }

  if (auto* tel = telemetry::current()) {
    // Wall-clock metric: the thread count shapes wall time, never results,
    // so it is excluded from the bit-stable simulated-time export.  Set
    // after the resume so this run's value wins over the checkpointed one.
    tel->registry
        .gauge("p2sim_driver_threads",
               "Worker threads advancing the node lanes", /*wall_clock=*/true)
        .set(static_cast<double>(st.pool.threads()));
  }

  if (start_t == 0) {
    // Prime the daemon (first collect establishes the baseline).
    st.refresh_scratch();
    st.daemon.collect(-1, st.totals_scratch, st.quads_scratch, 0);
  }

  for (st.t = start_t; st.t < st.total_intervals; ++st.t) {
    st.now = static_cast<double>(st.t) * st.interval_s;
    st.day = st.t / util::kIntervalsPerDay;

    phase_day_rollover(st);
    phase_faults(st);
    phase_arrivals(st);
    phase_scheduling(st);
    phase_nfs_grant(st);
    phase_node_advance(st);
    phase_epilogues(st);
    phase_collect(st);
    phase_observe(st);
    maybe_checkpoint(st);
  }
  if (st.day_span.open()) {
    st.day_span.close(static_cast<double>(st.total_intervals) * st.interval_s);
  }

  st.result.intervals = st.daemon.records();
  st.result.intervals_expected = st.total_intervals;
  st.result.jobs_open_at_end =
      static_cast<std::int64_t>(st.running.size() + st.sched.queued_jobs());
  for (const auto& [id, r] : st.running) {
    if (!r.has_prologue) ++st.result.jobs_open_sans_prologue;
  }
  st.result.faults = st.inject.log();
  // Persist newly measured signatures for the next run (no-op without a
  // configured store).  A failed write never fails the campaign — the
  // store is an accelerator, not a result.
  st.signatures.flush();
#if P2SIM_CHECKS_ENABLED
  // Campaign-level audit: every 15-minute record the daemon produced must
  // obey the Table 1 identities in both privilege modes.
  for (const rs2hpm::IntervalRecord& rec : st.result.intervals) {
    P2SIM_AUDIT_TOTALS(rec.delta.user,
                       "workload::WorkloadDriver::run(interval user delta)");
    P2SIM_AUDIT_TOTALS(
        rec.delta.system,
        "workload::WorkloadDriver::run(interval system delta)");
  }
#endif
  return st.result;
}

CampaignResult run_campaign(const DriverConfig& cfg) {
  WorkloadDriver driver(cfg);
  return driver.run();
}

}  // namespace p2sim::workload
