// The kernel library: concrete loop nests standing in for the NAS codes.
//
// The paper characterizes its workload by counter statistics, not source;
// each factory here produces a kernel whose *signature* reproduces one of
// the populations the paper names:
//   * blocked_matmul      — the 240 Mflops single-processor calibration peak
//                           (section 5): fully blocked, in-cache, unrolled,
//                           flops/memref ~ 3.
//   * naive_matmul        — the same computation without blocking: streams
//                           from memory, the ablation baseline.
//   * cfd_multiblock      — the bulk of the workload: multi-block implicit
//                           solvers with ~0.5-0.7 flops/memref, ~50% of
//                           flops from fma, ~1% cache and ~0.1% TLB miss
//                           ratios (Tables 3 and 4).
//   * npb_bt_like         — NPB BT after its loop-nest rearrangement: high
//                           cache reuse, very low TLB miss ratio, ~44
//                           Mflops/CPU (Table 4).
//   * sequential_sweep    — the no-reuse reference pattern of Table 4:
//                           one long stride-8 walk; misses every line
//                           (32 real*8 elements) and pages every 512.
//   * mdo_ensemble        — multidisciplinary-optimization sweeps:
//                           independent evaluations, high ILP, fma-rich
//                           (the ">= 80% fma" better-performing codes).
//   * strided_transpose   — large-stride access generating high TLB miss
//                           rates (the pathology section 5 warns about).
//   * io_heavy            — low arithmetic intensity, used with heavy disk
//                           profiles.
// Variants are seeded so the job generator can draw a *population* of
// CFD codes rather than one canonical kernel.
#pragma once

#include <cstdint>

#include "src/power2/kernel_desc.hpp"
#include "src/power2/mix_kernel.hpp"

namespace p2sim::workload {

power2::KernelDesc blocked_matmul();
power2::KernelDesc naive_matmul();

/// `variant` seeds the per-code perturbation; `quality` in [0,1] skews the
/// draw toward better register reuse and more fma (the paper's spread of
/// batch-job performance: Figure 4 shows 16-node jobs from ~50 to ~900
/// job-Mflops).
power2::KernelDesc cfd_multiblock(std::uint64_t variant, double quality);

power2::KernelDesc npb_bt_like();
power2::KernelDesc sequential_sweep();
power2::KernelDesc mdo_ensemble(std::uint64_t variant);
power2::KernelDesc strided_transpose();
power2::KernelDesc io_heavy(std::uint64_t variant);

}  // namespace p2sim::workload
