// Structured stencil-kernel generation.
//
// Section 4's archetype: "The flowfield surrounding a complete aircraft is
// partitioned into blocks, 3-dimensional volumes ... a typical grid size
// might be a cube with 50 grid points on a side with 25 variables per grid
// point."  This module turns that *geometric* description — grid shape,
// stencil footprint, variables per point — into a KernelDesc whose memory
// streams and instruction mix follow from the geometry rather than from
// tuned statistical fractions:
//   * one load stream per stencil leg per variable group, with the strides
//     a k-j-i sweep implies (unit, row, and plane strides);
//   * one fma per off-centre leg per updated variable (coefficient *
//     neighbour, accumulated), one multiply for the centre point;
//   * stores of the updated variables;
//   * index/loop overhead on the FXUs and ICU.
// The resulting counters land where real structured-grid codes land: plane
// strides generate the TLB pressure of large grids, row strides the cache
// behaviour, and the accumulation chains the dependence-limited ILP.
#pragma once

#include <cstdint>

#include "src/power2/kernel_desc.hpp"

namespace p2sim::workload {

struct StencilSpec {
  /// Grid dimensions (points per side of the block).
  int nx = 50;
  int ny = 50;
  int nz = 50;
  /// Stencil points per axis arm: 1 = 7-point star in 3-D.
  int arm = 1;
  /// Solution variables updated per grid point (paper: 25 per point; a
  /// kernel typically sweeps a handful per pass).
  int variables = 4;
  /// Bytes per value (real*8).
  int elem_bytes = 8;
  /// Registers available for reuse: when true, the centre value and
  /// coefficients stay register-resident (tuned code); when false they
  /// reload every point (the paper's untuned majority).
  bool register_reuse = false;
  std::uint64_t warmup_iters = 1024;
  std::uint64_t measure_iters = 8192;
};

/// Builds the inner-loop kernel of one stencil sweep over the block.
/// Throws std::invalid_argument for degenerate geometry.
power2::KernelDesc make_stencil_kernel(const StencilSpec& spec);

/// Convenience: the paper's "50^3 cube" archetype.
power2::KernelDesc archetype_block_sweep(bool register_reuse = false);

}  // namespace p2sim::workload
