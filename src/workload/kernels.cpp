#include "src/workload/kernels.hpp"

#include <algorithm>

#include "src/util/rng.hpp"

namespace p2sim::workload {

using power2::KernelBuilder;
using power2::KernelDesc;
using power2::kNoDep;
using power2::MixKernelSpec;

KernelDesc blocked_matmul() {
  // A 4x4-unrolled DGEMM inner loop operating on cache-resident blocks:
  // 16 independent accumulator chains (dep distance 4 per FPU pair), quad
  // loads streaming the A and B panels, the C block register-resident.
  KernelBuilder b("blocked_matmul");
  const auto a_panel = b.stream(64 * 1024, 16);  // quad-stride walk, in cache
  const auto b_panel = b.stream(64 * 1024, 16);
  const auto c_block = b.stream(32 * 1024, 16);

  // Interleave loads and fmas the way xlf schedules an unrolled kernel.
  std::int16_t fma_idx[16];
  int f = 0;
  for (int g = 0; g < 4; ++g) {
    b.load(a_panel, /*quad=*/true);
    b.load(b_panel, /*quad=*/true);
    for (int k = 0; k < 4; ++k) {
      // Chains: each fma depends on the fma four positions earlier, so
      // four chains stay in flight per FPU and the units pipeline fully.
      const std::int16_t dep = f >= 4 ? fma_idx[f - 4] : kNoDep;
      fma_idx[f] = b.fma(dep);
      ++f;
    }
  }
  b.load(c_block, /*quad=*/true);
  b.store(c_block, /*quad=*/true);
  b.alu();  // block index bookkeeping
  return b.warmup(1024).measure(8192).build();
}

KernelDesc naive_matmul() {
  // Unblocked ijk DGEMM: the B column walk strides by the full row length
  // (1024 doubles = 8192 bytes), missing the cache almost every access and
  // touching a new page every other access.
  KernelBuilder b("naive_matmul");
  const auto a_row = b.stream(8 * 1024 * 1024, 8);
  const auto b_col = b.stream(8 * 1024 * 1024, 8192);
  const auto c_elt = b.stream(32 * 1024, 8);

  const auto la = b.load(a_row);
  const auto lb = b.load(b_col);
  const auto m = b.fp_mul(lb);
  (void)la;
  const auto acc = b.fp_add(m, /*carried=*/3);  // running dot product
  (void)acc;
  b.load(c_elt);
  b.store(c_elt);
  b.alu();
  return b.warmup(2048).measure(16384).build();
}

KernelDesc cfd_multiblock(std::uint64_t variant, double quality) {
  quality = std::clamp(quality, 0.0, 1.0);
  util::Xoshiro256StarStar rng(0xCFD0000 + variant);

  MixKernelSpec s;
  s.name = "cfd_multiblock_v" + std::to_string(variant);
  s.fp_inst = 12 + static_cast<int>(rng.below(6));
  // fma share of FP instructions rises with code quality; at the median it
  // puts ~half the flops in the fma unit (Table 3), at high quality >= 80%.
  s.fma_frac = 0.25 + 0.40 * quality + rng.uniform(-0.04, 0.04);
  s.mul_frac = 0.18 + rng.uniform(-0.05, 0.05);
  s.div_frac = 0.03;  // ~3% of flops are divides (hidden by the HPM bug)
  s.dep_prob = 0.72 - 0.30 * quality + rng.uniform(-0.05, 0.05);
  s.carried_prob = 0.20;
  // Register reuse: poor codes reload operands (the paper's flops/memref
  // ~0.5-1.0); tuned codes hold them (toward matmul's 3.0).
  s.mem_per_fp = 3.2 - 2.0 * quality + rng.uniform(-0.15, 0.15);
  s.store_frac = 0.28;
  s.quad_frac = 0.06 + 0.20 * quality;
  s.alu_per_iter = 3.5;    // index arithmetic and loop bookkeeping
  s.addr_mul_per_iter = 1.0;  // multi-dimensional addressing (FXU1 only)
  s.condreg_per_iter = 2.4;   // BC tests and short inner DO-loop control
  s.streams = 6 + static_cast<int>(rng.below(3));
  // Reused plane-sized arrays: cache-resident between sweeps.
  s.stream_footprint_bytes = 24 * 1024;
  s.stride_bytes = 8;
  s.icache_miss_per_kinst = 0.35;  // solver/BC subroutine alternation
  s.seed = 0x1234 + variant;
  s.warmup_iters = 768;
  s.measure_iters = 6144;
  KernelDesc k = power2::make_mix_kernel(s);

  // A minority of the streams walk whole multi-MB grid blocks with no
  // reuse: these supply the workload's ~1% cache miss ratio and, because
  // the blocks exceed the 2 MB TLB reach, its ~0.1% TLB miss ratio.
  if (k.streams.size() >= 2) {
    k.streams[0].footprint_bytes = (8ull + rng.below(8)) << 20;
    k.streams[1].footprint_bytes = (3ull + rng.below(3)) << 20;
  }
  return k;
}

KernelDesc npb_bt_like() {
  // BT after the loop-nest rearrangement Saphir et al. describe: the 5x5
  // block solves run from cache-resident planes, long strides eliminated.
  MixKernelSpec s;
  s.name = "npb_bt";
  s.fp_inst = 24;
  s.fma_frac = 0.52;
  s.mul_frac = 0.18;
  s.div_frac = 0.01;
  s.dep_prob = 0.55;
  s.carried_prob = 0.08;
  s.mem_per_fp = 0.80;
  s.store_frac = 0.30;
  s.quad_frac = 0.30;
  s.alu_per_iter = 1.5;
  s.addr_mul_per_iter = 0.3;
  s.condreg_per_iter = 0.3;
  s.streams = 4;
  s.stream_footprint_bytes = 48 * 1024;  // plane working set: cache-resident
  s.stride_bytes = 8;
  s.seed = 0xB7;
  s.warmup_iters = 1024;
  s.measure_iters = 8192;
  KernelDesc k = power2::make_mix_kernel(s);
  // One streaming input keeps a realistic residual miss rate; its 2 MB
  // footprint sits at the TLB-reach boundary, so TLB misses stay rare —
  // the hallmark of BT's rearranged loop nests.
  if (k.streams.size() > 1) {
    k.streams[1].footprint_bytes = 2ull << 20;
    k.streams[1].stride_bytes = 8;
  }
  return k;
}

KernelDesc sequential_sweep() {
  // Table 4's reference pattern: one long stride-8 walk with no reuse.
  // real*8 data on 256-byte lines -> a miss every 32 elements; 4 kB pages
  // -> a TLB miss every 512 elements.
  KernelBuilder b("sequential_sweep");
  const auto x = b.stream(64ull << 20, 8);
  const auto l = b.load(x);
  b.fp_add(l, /*carried=*/1);  // running sum
  return b.warmup(4096).measure(65536).build();
}

KernelDesc mdo_ensemble(std::uint64_t variant) {
  // Optimization sweeps: many independent configuration evaluations, so
  // high ILP and good locality; fma-dominant arithmetic.
  MixKernelSpec s;
  s.name = "mdo_ensemble_v" + std::to_string(variant);
  s.fp_inst = 20;
  s.fma_frac = 0.62;
  s.mul_frac = 0.15;
  s.dep_prob = 0.58;
  s.carried_prob = 0.06;
  s.mem_per_fp = 1.0;
  s.store_frac = 0.25;
  s.quad_frac = 0.35;
  s.alu_per_iter = 1.0;
  s.condreg_per_iter = 0.3;
  s.streams = 4;
  s.stream_footprint_bytes = 192 * 1024;
  s.stride_bytes = 8;
  s.seed = 0x3D0 + variant;
  s.warmup_iters = 1024;
  s.measure_iters = 8192;
  return power2::make_mix_kernel(s);
}

KernelDesc strided_transpose() {
  // Column-major walk of a large row-major array: every access a new line,
  // most accesses a new page — the high-TLB-miss pathology of section 5.
  KernelBuilder b("strided_transpose");
  const auto src = b.stream(32ull << 20, 4096 + 8);
  const auto dst = b.stream(8ull << 20, 8);
  const auto l = b.load(src);
  b.store(dst);
  b.fp_add(l);
  b.alu();
  return b.warmup(2048).measure(16384).build();
}

KernelDesc io_heavy(std::uint64_t variant) {
  // Pre/post-processing codes: light arithmetic over streaming buffers.
  MixKernelSpec s;
  s.name = "io_heavy_v" + std::to_string(variant);
  s.fp_inst = 6;
  s.fma_frac = 0.10;
  s.mul_frac = 0.25;
  s.dep_prob = 0.5;
  s.mem_per_fp = 2.5;
  s.store_frac = 0.45;
  s.quad_frac = 0.05;
  s.alu_per_iter = 4.0;
  s.condreg_per_iter = 1.0;
  s.streams = 3;
  s.stream_footprint_bytes = 16ull << 20;
  s.stride_bytes = 8;
  s.seed = 0x10 + variant;
  s.warmup_iters = 512;
  s.measure_iters = 4096;
  return power2::make_mix_kernel(s);
}

}  // namespace p2sim::workload
