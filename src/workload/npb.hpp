// NAS Parallel Benchmark kernel models.
//
// The paper's Table 4 uses NPB BT (after Saphir/Woo/Yarrow's NPB 2.1
// report) as its tuned-code reference.  This module models the counter
// behaviour of the full NPB kernel set on the POWER2, so the suite can be
// "run" under the simulated monitor the way NAS ran it:
//   BT - block-tridiagonal solver: high reuse, fma-rich (the Table 4 column)
//   SP - scalar pentadiagonal: like BT with less unrolling headroom
//   LU - SSOR wavefront: dependence-chained, modest ILP
//   MG - multigrid V-cycles: bandwidth-bound, stride mixes across levels
//   FT - 3-D FFT: transpose phases with page-scale strides (TLB-heavy)
//   CG - sparse conjugate gradient: irregular gathers, cache-hostile
//   EP - embarrassingly parallel: compute-dense, tiny working set,
//        sqrt/log-heavy (multicycle FPU traffic)
// Relative behaviour (who reuses, who strides, who chains) follows the
// well-documented character of each benchmark; absolute rates come out of
// the core model.
#pragma once

#include <string_view>
#include <vector>

#include "src/power2/kernel_desc.hpp"

namespace p2sim::workload {

enum class NpbBenchmark { kBT, kSP, kLU, kMG, kFT, kCG, kEP };

/// All benchmarks, in customary suite order.
const std::vector<NpbBenchmark>& npb_suite();

std::string_view npb_name(NpbBenchmark b);
std::string_view npb_description(NpbBenchmark b);

/// The kernel model for one benchmark.
power2::KernelDesc npb_kernel(NpbBenchmark b);

}  // namespace p2sim::workload
