// NodeLane: everything one node's worker thread may touch, and nothing else.
//
// The campaign driver's node-advance phase runs the 144 lanes in parallel
// (util::TaskPool, static sharding).  The determinism and data-race story
// both reduce to one ownership rule: inside the parallel region a worker
// reads and writes exactly one lane — the Node with its counters, the
// lane's private RNG stream, its read-only fault view and its telemetry
// shard — plus immutable shared inputs (configs, the job's EventSignature,
// this interval's LaneStep).  Cross-node state (scheduler, daemon, job
// monitor, the metrics registry, the driver's master RNG) is touched only
// in the serial phases, and lane outputs are folded back in ascending node
// order, so campaign results are bit-identical for every thread count.
//
// RNG ownership: the lane stream is seeded from (campaign seed, node id)
// through splitmix64 — never from the master stream, whose draw sequence
// belongs to the serial demand/arrival phases, and never from iteration
// order.  Any future per-node stochastic effect (OS-noise jitter, local
// degradation) must draw from lane.rng so that adding it, or changing the
// thread count, perturbs nothing else.
#pragma once

#include "src/check/annotate.hpp"
#include "src/cluster/node.hpp"
#include "src/fault/fault.hpp"
#include "src/power2/signature.hpp"
#include "src/telemetry/shard.hpp"
#include "src/util/rng.hpp"

namespace p2sim::workload {

/// One interval's work order for a lane, written by the serial
/// arrivals/scheduling phases and read only inside the parallel region.
struct LaneStep {
  /// Kernel signature of the job holding this node; nullptr when idle.
  const power2::EventSignature* sig = nullptr;
  /// Activity mix for the busy part of the interval (valid when sig set).
  cluster::ActivityProfile activity{};
  /// Seconds of the interval spent running the job (<= interval length).
  double busy_s = 0.0;
};

/// The per-node bundle owned by exactly one worker during node-advance.
class NodeLane {
 public:
  /// `rng_seed` is the campaign seed; the lane derives its private stream
  /// from (rng_seed, id) so streams are keyed to the node, not to order.
  NodeLane(int id, const cluster::NodeConfig& cfg, std::uint64_t rng_seed,
           const fault::FaultSchedule* fault_view)
      : node(id, cfg),
        rng(util::SplitMix64(rng_seed ^
                             (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(id) + 1)))
                .next()),
        fault_view(fault_view) {}

  /// The parallel-region body: advance this lane's node through one
  /// interval according to `step`, exactly as the serial driver did —
  /// busy seconds under the job's signature, the remainder idle.  Touches
  /// only lane-local state.
  P2SIM_PAR_SAFE void advance_interval(double interval_s) {
    interval_busy_s = 0.0;
    if (!node.is_up()) {
      shard.add_down();
      return;
    }
    if (step.sig == nullptr) {
      node.advance_idle(interval_s);
      shard.add_idle();
      return;
    }
    node.advance(step.busy_s, step.sig, step.activity);
    if (step.busy_s < interval_s) {
      node.advance_idle(interval_s - step.busy_s);
    }
    interval_busy_s = step.busy_s;
    shard.add_busy();
  }

  cluster::Node node;
  /// Lane-private RNG stream (see the ownership rule above).
  util::Xoshiro256StarStar rng;
  /// Read-only view of the deterministic fault schedule: lanes may query
  /// it (stateless, keyed draws) but never log through the injector —
  /// fault accounting is a serial-phase concern.  Null when faults are off.
  const fault::FaultSchedule* fault_view = nullptr;
  /// This lane's telemetry tallies, merged serially each interval.
  telemetry::MetricShard shard;

  /// Input for the current interval (serial phases write, lane reads).
  LaneStep step;
  /// Output: busy seconds this lane contributed this interval (folded into
  /// the campaign total in ascending node order).
  double interval_busy_s = 0.0;
};

}  // namespace p2sim::workload
