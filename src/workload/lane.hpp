// NodeLane: everything one node's worker thread may touch, and nothing else.
//
// The campaign driver's lane-pipeline phase runs the 144 lanes in parallel
// (util::TaskPool, static sharding), each lane draining a whole horizon of
// intervals end-to-end.  The determinism and data-race story both reduce to
// one ownership rule: inside the parallel region a worker reads and writes
// exactly one lane — the Node with its counters, the lane's private RNG
// stream, its read-only fault view, its telemetry shard and its per-interval
// probe samples — plus immutable shared inputs (configs, the job's
// EventSignature, this horizon's LaneStep and miss bitmap).  Cross-node
// state (scheduler, daemon, job monitor, the metrics registry, the driver's
// master RNG) is touched only in the serial phases, and lane outputs are
// folded back in a fixed pairwise tree (telemetry::tree_fold), so campaign
// results are bit-identical for every thread count.
//
// RNG ownership: the lane stream is seeded from (campaign seed, node id)
// through splitmix64 — never from the master stream, whose draw sequence
// belongs to the serial demand/arrival phases, and never from iteration
// order.  Any future per-node stochastic effect (OS-noise jitter, local
// degradation) must draw from lane.rng so that adding it, or changing the
// thread count, perturbs nothing else.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/cluster/node.hpp"
#include "src/fault/fault.hpp"
#include "src/power2/signature.hpp"
#include "src/rs2hpm/snapshot.hpp"
#include "src/telemetry/shard.hpp"
#include "src/util/rng.hpp"

namespace p2sim::workload {

/// One horizon's work order for a lane, written by the serial
/// scheduling/launch phases and read only inside the parallel region.  The
/// order stays valid for every interval of the horizon because the horizon
/// phase only extends a pass across intervals where no cross-node event
/// (arrival, start, crash, reboot, completion) intervenes.
struct LaneStep {
  /// Kernel signature of the job holding this node; nullptr when idle.
  const power2::EventSignature* sig = nullptr;
  /// Activity mix for the busy part of the interval (valid when sig set).
  cluster::ActivityProfile activity{};
  /// Seconds of the current interval spent running the job (<= interval
  /// length); recomputed per interval by run_pipeline from end_s.
  double busy_s = 0.0;
  /// Absolute sim time the job ends (valid when sig set): the pipeline
  /// derives each interval's busy_s as min(end_s, interval end) - now.
  double end_s = 0.0;
};

/// How one lane-local daemon probe (one node, one interval) turned out.
/// Mirrors the per-node arms of SamplingDaemon::collect exactly.
enum class ProbeOutcome : std::uint8_t {
  kMissed,      ///< the whole 15-minute sample never happened (cron miss)
  kDown,        ///< node was down: unreachable, baseline kept
  kLost,        ///< node up but its fetch was dropped in flight
  kSampled,     ///< clean monotone delta
  kReprimed,    ///< counter reset detected; baseline re-established
  kNewlyPrimed, ///< first successful contact; baseline established
};

/// One interval's probe result, produced inside the parallel region and
/// folded into the interval's merged record by the serial fold phase.
struct LaneSample {
  rs2hpm::ModeTotals delta;        ///< counter delta (kSampled only)
  std::uint64_t quad_surplus = 0;  ///< quad diagnostic delta (kSampled only)
  double busy_s = 0.0;             ///< busy seconds this lane contributed
  ProbeOutcome outcome = ProbeOutcome::kMissed;
};

/// The per-node bundle owned by exactly one worker during the parallel
/// lane-pipeline phase.
class NodeLane {
 public:
  /// `rng_seed` is the campaign seed; the lane derives its private stream
  /// from (rng_seed, id) so streams are keyed to the node, not to order.
  ///
  /// The probe baseline starts primed at zero: a fresh node's counters are
  /// all-zero, so this is exactly the baseline the daemon's historical
  /// priming pass (a collect at interval -1) would have established.
  NodeLane(int id, const cluster::NodeConfig& cfg, std::uint64_t rng_seed,
           const fault::FaultSchedule* fault_view)
      : node(id, cfg),
        rng(util::SplitMix64(rng_seed ^
                             (0x9e3779b97f4a7c15ULL *
                              (static_cast<std::uint64_t>(id) + 1)))
                .next()),
        fault_view(fault_view) {}

  /// The parallel-region body: advance this lane's node through one
  /// interval according to `step`, exactly as the serial driver did —
  /// busy seconds under the job's signature, the remainder idle.  Touches
  /// only lane-local state.
  P2SIM_PAR_SAFE void advance_interval(double interval_s) {
    interval_busy_s = 0.0;
    if (!node.is_up()) {
      shard.add_down();
      return;
    }
    if (step.sig == nullptr) {
      node.advance_idle(interval_s);
      shard.add_idle();
      return;
    }
    node.advance(step.busy_s, step.sig, step.activity);
    if (step.busy_s < interval_s) {
      node.advance_idle(interval_s - step.busy_s);
    }
    interval_busy_s = step.busy_s;
    shard.add_busy();
  }

  /// Drains `h` consecutive intervals starting at t0 end-to-end: per
  /// interval, derive the busy split from the work order, advance the
  /// node, then probe its counters exactly as the daemon's serial per-node
  /// loop did.  `miss[k]` marks horizon offset k as a whole-interval cron
  /// miss (no probe draw, baseline kept).  Touches only lane-local state;
  /// the horizon phase guarantees the work order holds for every interval.
  P2SIM_PAR_SAFE void run_pipeline(std::int64_t t0, std::int64_t h,
                                   double interval_s,
                                   const std::uint8_t* miss) {
    samples.clear();
    for (std::int64_t k = 0; k < h; ++k) {
      const double now = static_cast<double>(t0 + k) * interval_s;
      if (step.sig != nullptr) {
        step.busy_s = std::min(step.end_s, now + interval_s) - now;
      }
      advance_interval(interval_s);
      probe(t0 + k, miss[k] != 0);
    }
  }

  /// One daemon probe of this lane's node: appends a LaneSample for the
  /// interval.  The monotone guard, reprime and priming arms are the
  /// per-node body of SamplingDaemon::collect, relocated so the probe can
  /// run inside the parallel region against lane-owned baselines.
  P2SIM_PAR_SAFE void probe(std::int64_t interval, bool missed) {
    LaneSample s;
    s.busy_s = interval_busy_s;
    if (missed) {
      s.outcome = ProbeOutcome::kMissed;  // baseline kept
    } else if (!node.is_up()) {
      s.outcome = ProbeOutcome::kDown;    // unreachable, baseline kept
    } else if (fault_view != nullptr &&
               fault_view->node_sample_lost(node.id(), interval)) {
      s.outcome = ProbeOutcome::kLost;    // dropped in flight, baseline kept
    } else {
      const rs2hpm::ModeTotals& totals = node.totals();
      const std::uint64_t quad = node.quad_total();
      // The guard is unconditional in every build: subtracting a baseline
      // from reset counters would wrap the uint64 deltas into astronomical
      // garbage that no downstream check could attribute.
      const bool monotone = probe_primed && totals.covers(probe_prev) &&
                            quad >= probe_prev_quad;
      if (monotone) {
        s.delta = totals.since(probe_prev);
        s.quad_surplus = quad - probe_prev_quad;
        s.outcome = ProbeOutcome::kSampled;
      } else if (probe_primed) {
        // Counter reset (node reboot) between samples: drop this interval's
        // contribution and re-establish the baseline.
        s.outcome = ProbeOutcome::kReprimed;
      } else {
        s.outcome = ProbeOutcome::kNewlyPrimed;
      }
      probe_prev = totals;
      probe_prev_quad = quad;
      probe_primed = true;
    }
    samples.push_back(s);
  }

  cluster::Node node;
  /// Lane-private RNG stream (see the ownership rule above).
  util::Xoshiro256StarStar rng;
  /// Read-only view of the deterministic fault schedule: lanes may query
  /// it (stateless, keyed draws) but never log through the injector —
  /// fault accounting is a serial-phase concern.  Null when faults are off.
  const fault::FaultSchedule* fault_view = nullptr;
  /// This lane's telemetry tallies, tree-merged serially each horizon.
  telemetry::MetricShard shard;

  /// Input for the current horizon (serial phases write, lane reads).
  LaneStep step;
  /// Output: busy seconds this lane contributed in the most recent
  /// interval (also recorded per interval in `samples`).
  double interval_busy_s = 0.0;

  /// Lane-owned daemon baseline (was SamplingDaemon's per-node state).
  rs2hpm::ModeTotals probe_prev;
  std::uint64_t probe_prev_quad = 0;
  bool probe_primed = true;
  /// Output: one probe sample per horizon interval, in interval order.
  std::vector<LaneSample> samples;
};

}  // namespace p2sim::workload
