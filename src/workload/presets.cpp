#include "src/workload/presets.hpp"

namespace p2sim::workload {

DriverConfig paper_campaign() { return DriverConfig{}; }

DriverConfig dedicated_benchmark_week() {
  DriverConfig cfg;
  cfg.days = 7;
  cfg.jobs_per_day = 60.0;
  cfg.weekend_factor = 1.0;       // benchmarkers do not take weekends
  cfg.slump_prob_per_day = 0.0;
  cfg.demand_walk_noise = 0.05;
  cfg.jobgen.interactive_prob = 0.0;
  cfg.jobgen.dev_session_prob = 0.0;
  cfg.jobgen.narrow_paging_prob = 0.0;
  cfg.jobgen.wide_paging_prob = 0.0;
  cfg.jobgen.paging_episode_start_prob = 0.0;
  // Tuned codes only: BT-class solvers and high-quality CFD.
  cfg.jobgen.family_weights = {0.35, 0.25, 0.40, 0.0, 0.0, 0.0};
  cfg.jobgen.quality_mean = 0.75;
  cfg.jobgen.quality_sigma = 0.10;
  cfg.jobgen.runtime_median_s = 1.0 * 3600.0;
  cfg.jobgen.runtime_sigma = 0.5;
  return cfg;
}

DriverConfig paging_storm_fortnight() {
  DriverConfig cfg;
  cfg.days = 14;
  cfg.jobs_per_day = 36.0;
  cfg.jobgen.narrow_paging_prob = 0.35;
  cfg.jobgen.wide_paging_prob = 0.9;
  cfg.jobgen.paging_episode_start_prob = 0.5;
  cfg.jobgen.paging_episode_narrow_prob = 0.6;
  cfg.jobgen.paging_demand_max = 2.6;
  return cfg;
}

DriverConfig instrumented_campaign() {
  DriverConfig cfg;
  cfg.node.monitor.selection = hpm::CounterSelection::kWaitStates;
  return cfg;
}

}  // namespace p2sim::workload
