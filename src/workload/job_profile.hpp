// Job behaviour profiles: everything about a job that is not scheduling.
//
// A profile binds a kernel (what the CPU does between messages) to the
// job's parallel behaviour: how much of wall time goes to communication at
// a given node count, how much message and filesystem traffic it moves,
// and its per-node memory demand (which the paging model turns into the
// system-mode overhead of section 6).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "src/cluster/comm_model.hpp"
#include "src/power2/kernel_desc.hpp"

namespace p2sim::workload {

struct JobProfile {
  std::int64_t id = 0;
  power2::KernelDesc kernel;

  /// Communication-wait share of wall time when run on `ref_nodes` nodes.
  double comm_fraction_base = 0.25;
  int ref_nodes = 16;
  /// Scaling exponent: comm share grows ~ (nodes/ref)^exponent; nearest-
  /// neighbour asynchronous codes ~0.15, synchronous/global codes ~0.5.
  double comm_scaling_exponent = 0.2;
  /// Message traffic per node per busy second (DMA-visible bytes).
  double msg_bytes_per_s = 1.2e6;
  /// NFS traffic per node (bytes/s), split between reads and writes.
  double disk_read_bytes_per_s = 8e3;
  double disk_write_bytes_per_s = 15e3;
  double memory_mb_per_node = 64.0;
  /// Load-imbalance efficiency: the share of non-communication time the
  /// node actually computes (domain decompositions rarely balance
  /// perfectly; the slowest block gates each step).
  double imbalance_efficiency = 1.0;
  /// Fraction of the allocation during which the code actually runs.
  /// 1.0 for production batch jobs; development sessions hold their
  /// dedicated nodes (NAS "configured the SP2 for code development") while
  /// the user edits, compiles and debugs — mostly idle.
  double duty_cycle = 1.0;
  /// Code-quality draw in [0,1] used when synthesizing the kernel.
  double quality = 0.4;
  std::string family = "cfd";

  /// When set, communication is derived from first principles (block
  /// geometry + switch parameters) instead of the statistical power law.
  std::optional<cluster::CommShape> comm_shape;

  /// Communication-wait fraction at a node count, clamped to [0, 0.9]
  /// (statistical power-law path).
  double comm_fraction(int nodes) const {
    if (nodes <= 1) return 0.0;
    const double scale =
        std::pow(static_cast<double>(nodes) / std::max(1, ref_nodes),
                 comm_scaling_exponent);
    return std::clamp(comm_fraction_base * scale, 0.0, 0.9);
  }

  /// Communication-wait fraction using the physical model when a shape is
  /// attached, else the power law.
  double comm_fraction(int nodes, const cluster::HpsSwitch& sw) const {
    if (comm_shape.has_value()) {
      return std::min(cluster::comm_fraction(sw, *comm_shape, nodes), 0.9);
    }
    return comm_fraction(nodes);
  }

  /// Checkpoint support.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(id);
    kernel.save_ckpt(w);
    w.put_f64(comm_fraction_base);
    w.put_i32(ref_nodes);
    w.put_f64(comm_scaling_exponent);
    w.put_f64(msg_bytes_per_s);
    w.put_f64(disk_read_bytes_per_s);
    w.put_f64(disk_write_bytes_per_s);
    w.put_f64(memory_mb_per_node);
    w.put_f64(imbalance_efficiency);
    w.put_f64(duty_cycle);
    w.put_f64(quality);
    w.put_str(family);
    w.put_bool(comm_shape.has_value());
    if (comm_shape.has_value()) comm_shape->save_ckpt(w);
  }
  void restore_ckpt(util::CkptReader& r) {
    id = r.read_i64("profile.id");
    kernel.restore_ckpt(r);
    comm_fraction_base = r.read_f64("profile.comm_fraction_base");
    ref_nodes = r.read_i32("profile.ref_nodes");
    comm_scaling_exponent = r.read_f64("profile.comm_scaling_exponent");
    msg_bytes_per_s = r.read_f64("profile.msg_bytes_per_s");
    disk_read_bytes_per_s = r.read_f64("profile.disk_read_bytes_per_s");
    disk_write_bytes_per_s = r.read_f64("profile.disk_write_bytes_per_s");
    memory_mb_per_node = r.read_f64("profile.memory_mb_per_node");
    imbalance_efficiency = r.read_f64("profile.imbalance_efficiency");
    duty_cycle = r.read_f64("profile.duty_cycle");
    quality = r.read_f64("profile.quality");
    family = r.read_str("profile.family");
    if (r.read_bool("profile.has_comm_shape")) {
      comm_shape.emplace();
      comm_shape->restore_ckpt(r);
    } else {
      comm_shape.reset();
    }
  }
};

/// Owns profiles by id; the scheduler carries only the id.
class ProfileRegistry {
 public:
  std::int64_t add(JobProfile p) {
    const std::int64_t id = next_id_++;
    p.id = id;
    profiles_.emplace(id, std::move(p));
    return id;
  }
  const JobProfile& get(std::int64_t id) const {
    auto it = profiles_.find(id);
    if (it == profiles_.end()) {
      throw std::out_of_range("unknown profile id");
    }
    return it->second;
  }
  std::size_t size() const { return profiles_.size(); }

  /// Visits every registered profile in id order (e.g. to pre-warm the
  /// signature cache with the known kernel population).
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [id, profile] : profiles_) f(profile);
  }

  /// Checkpoint support: profiles keep their ids and the id counter
  /// continues where it left off.
  void save_ckpt(util::CkptWriter& w) const {
    w.put_i64(next_id_);
    w.put_u64(profiles_.size());
    for (const auto& [id, profile] : profiles_) profile.save_ckpt(w);
  }
  void restore_ckpt(util::CkptReader& r) {
    next_id_ = r.read_i64("registry.next_id");
    profiles_.clear();
    std::uint64_t n = r.read_u64("registry.size");
    for (std::uint64_t i = 0; i < n; ++i) {
      JobProfile p;
      p.restore_ckpt(r);
      const std::int64_t id = p.id;
      profiles_.emplace(id, std::move(p));
    }
  }

 private:
  std::int64_t next_id_ = 1;
  std::map<std::int64_t, JobProfile> profiles_;
};

}  // namespace p2sim::workload
