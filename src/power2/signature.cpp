#include "src/power2/signature.hpp"

#include <algorithm>
#include <cmath>

#include "src/check/check.hpp"
#include "src/power2/field_table.hpp"
#include "src/power2/signature_store.hpp"

namespace p2sim::power2 {
namespace {

P2SIM_PAR_SAFE double rate(std::uint64_t events, std::uint64_t cycles) {
  return cycles ? static_cast<double>(events) / static_cast<double>(cycles)
                : 0.0;
}

/// Derives per-cycle rates from a finished run (the arithmetic half of
/// measure_signature, shared with the quiet path).
P2SIM_PAR_SAFE EventSignature signature_from_run(const RunResult& r) {
  const std::uint64_t c = r.counts.cycles;
  EventSignature s;
  s.cycles_per_iter = r.cycles_per_iter();
  for (const ScaledField& f : kScaledFields)
    s.*(f.rate) = rate(r.counts.*(f.count), c);
  return s;
}

P2SIM_PAR_SAFE std::uint64_t rounded(double x) {
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
}

}  // namespace

EventCounts EventSignature::scale(double cycles) const {
  EventCounts ev;
  if (cycles <= 0.0) return ev;
  ev.cycles = rounded(cycles);
  scale_into(cycles, ev);
  return ev;
}

void EventSignature::scale_into(double cycles, EventCounts& ev) const {
  if (cycles <= 0.0) return;
  // One tight loop over the field table: each rate scales and rounds
  // independently, exactly as the former named-field statements did.
  for (const ScaledField& f : kScaledFields)
    ev.*(f.count) += rounded(this->*(f.rate) * cycles);
}

EventSignature measure_signature(Power2Core& core, const KernelDesc& kernel) {
  core.reset();
  const RunResult r = core.run(kernel);
  return signature_from_run(r);
}

QuietMeasurement measure_quiet(const CoreConfig& core_cfg,
                               const KernelDesc& kernel) {
  Power2Core core(core_cfg);
  QuietMeasurement m;
  m.run = core.run_counted(kernel, kernel.measure_iters, &m.wall_us);
  m.sig = signature_from_run(m.run);
  return m;
}

SignatureCache::SignatureCache(const CoreConfig& core_cfg,
                               SignatureStoreConfig store)
    : core_cfg_(core_cfg),
      core_hash_(core_config_hash(core_cfg)),
      store_(std::move(store)) {
  if (store_.path.empty() || !store_.read) return;
  std::lock_guard<std::mutex> lock(mu_);
  const SignatureStoreReport rep =
      load_signature_store(store_.path, core_hash_, by_hash_);
  stats_.store_loaded = rep.loaded;
  stats_.store_corrupt_lines = rep.corrupt_lines;
  stats_.store_rejected =
      rep.file_found && (!rep.core_hash_matched || rep.truncated);
  publish_snapshot_locked();
}

const EventSignature& SignatureCache::get(const KernelDesc& kernel) {
  const std::uint64_t h = kernel.content_hash();
  // Level 1: the immutable snapshot, no lock.  After warm() this is the
  // only path the campaign's serial scheduling phase takes for known
  // kernels, and the only path at all that is safe to call concurrently.
  const auto it = std::lower_bound(
      snapshot_.begin(), snapshot_.end(), h,
      [](const SnapshotEntry& e, std::uint64_t key) { return e.first < key; });
  if (it != snapshot_.end() && it->first == h) {
    snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
    return *it->second;
  }
  // Level 2: the overflow map, for kernels first seen after warm-up.
  std::lock_guard<std::mutex> lock(mu_);
  const auto mit = by_hash_.find(h);
  if (mit != by_hash_.end()) {
    ++stats_.locked_hits;
    return mit->second;
  }
  return measure_locked(h, kernel);
}

const EventSignature& SignatureCache::measure_locked(
    std::uint64_t hash, const KernelDesc& kernel) {
  const QuietMeasurement m = measure_quiet(core_cfg_, kernel);
  Power2Core::note_kernel_run(m.run, m.wall_us);
  ++stats_.measured;
  dirty_ = true;
  return by_hash_.emplace(hash, m.sig).first->second;
}

void SignatureCache::warm(const std::vector<KernelDesc>& kernels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const KernelDesc& k : kernels) {
    const std::uint64_t h = k.content_hash();
    if (by_hash_.find(h) == by_hash_.end()) measure_locked(h, k);
  }
  publish_snapshot_locked();
}

void SignatureCache::publish_snapshot_locked() {
  snapshot_.clear();
  snapshot_.reserve(by_hash_.size());
  for (const auto& [hash, sig] : by_hash_) snapshot_.emplace_back(hash, &sig);
  // std::map iterates in key order, so the snapshot is already sorted for
  // the binary search in get().
}

bool SignatureCache::contains(const KernelDesc& kernel) const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_hash_.find(kernel.content_hash()) != by_hash_.end();
}

std::vector<KernelDesc> SignatureCache::plan_batch(
    const std::vector<KernelDesc>& kernels) const {
  std::vector<KernelDesc> plan;
  std::vector<std::uint64_t> planned;
  std::lock_guard<std::mutex> lock(mu_);
  for (const KernelDesc& k : kernels) {
    const std::uint64_t h = k.content_hash();
    // by_hash_ backs both cache levels, so one lookup covers them.
    if (by_hash_.find(h) != by_hash_.end()) continue;
    if (std::find(planned.begin(), planned.end(), h) != planned.end()) {
      continue;
    }
    planned.push_back(h);
    plan.push_back(k);
  }
  return plan;
}

void SignatureCache::adopt_batch(const std::vector<KernelDesc>& plan,
                                 const std::vector<QuietMeasurement>& results) {
  P2SIM_CHECK(plan.size() == results.size(),
              "adopt_batch: one result per planned kernel");
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (by_hash_.emplace(plan[i].content_hash(), results[i].sig).second) {
        ++stats_.measured;
        dirty_ = true;
      }
    }
  }
  // Replay the deferred kernel-run telemetry serially in plan order —
  // first-appearance order, exactly where the on-demand path would have
  // emitted each span on the engine timeline.
  for (const QuietMeasurement& m : results) {
    Power2Core::note_kernel_run(m.run, m.wall_us);
  }
}

bool SignatureCache::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (store_.path.empty() || !store_.write || !dirty_) return true;
  if (!save_signature_store(store_.path, core_hash_, by_hash_)) return false;
  dirty_ = false;
  return true;
}

std::size_t SignatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_hash_.size();
}

SignatureCache::Stats SignatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  return s;
}

void EventSignature::save_ckpt(util::CkptWriter& w) const {
  w.put_f64(cycles_per_iter);
  for (const ScaledField& f : kScaledFields) w.put_f64(this->*(f.rate));
}

void EventSignature::restore_ckpt(util::CkptReader& r) {
  cycles_per_iter = r.read_f64("signature.cycles_per_iter");
  for (const ScaledField& f : kScaledFields) {
    this->*(f.rate) = r.read_f64("signature.rate");
  }
}

void SignatureCache::save_ckpt(util::CkptWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.put_u64(core_hash_);
  w.put_u64(by_hash_.size());
  for (const auto& [hash, sig] : by_hash_) {
    w.put_u64(hash);
    sig.save_ckpt(w);
  }
  w.put_bool(dirty_);
}

void SignatureCache::restore_ckpt(util::CkptReader& r) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t hash = r.read_u64("sigcache.core_hash");
  if (hash != core_hash_) {
    throw util::CkptError("sigcache.core_hash: core config mismatch");
  }
  by_hash_.clear();
  std::uint64_t n = r.read_u64("sigcache.size");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t h = r.read_u64("sigcache.hash");
    EventSignature s;
    s.restore_ckpt(r);
    by_hash_.emplace(h, s);
  }
  dirty_ = r.read_bool("sigcache.dirty");
  publish_snapshot_locked();
}

}  // namespace p2sim::power2
