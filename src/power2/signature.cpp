#include "src/power2/signature.hpp"

#include <cmath>

namespace p2sim::power2 {
namespace {

double rate(std::uint64_t events, std::uint64_t cycles) {
  return cycles ? static_cast<double>(events) / static_cast<double>(cycles)
                : 0.0;
}

std::uint64_t rounded(double x) {
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
}

}  // namespace

EventCounts EventSignature::scale(double cycles) const {
  EventCounts ev;
  if (cycles <= 0.0) return ev;
  ev.cycles = rounded(cycles);
  ev.fxu0_inst = rounded(fxu0_inst * cycles);
  ev.fxu1_inst = rounded(fxu1_inst * cycles);
  ev.dcache_miss = rounded(dcache_miss * cycles);
  ev.tlb_miss = rounded(tlb_miss * cycles);
  ev.fpu0_inst = rounded(fpu0_inst * cycles);
  ev.fpu1_inst = rounded(fpu1_inst * cycles);
  ev.fp_add0 = rounded(fp_add0 * cycles);
  ev.fp_add1 = rounded(fp_add1 * cycles);
  ev.fp_mul0 = rounded(fp_mul0 * cycles);
  ev.fp_mul1 = rounded(fp_mul1 * cycles);
  ev.fp_div0 = rounded(fp_div0 * cycles);
  ev.fp_div1 = rounded(fp_div1 * cycles);
  ev.fp_fma0 = rounded(fp_fma0 * cycles);
  ev.fp_fma1 = rounded(fp_fma1 * cycles);
  ev.icu_type1 = rounded(icu_type1 * cycles);
  ev.icu_type2 = rounded(icu_type2 * cycles);
  ev.icache_reload = rounded(icache_reload * cycles);
  ev.dcache_reload = rounded(dcache_reload * cycles);
  ev.dcache_store = rounded(dcache_store * cycles);
  ev.memory_inst = rounded(memory_inst * cycles);
  ev.quad_inst = rounded(quad_inst * cycles);
  ev.stall_dcache = rounded(stall_dcache * cycles);
  ev.stall_tlb = rounded(stall_tlb * cycles);
  return ev;
}

EventSignature measure_signature(Power2Core& core, const KernelDesc& kernel) {
  core.reset();
  const RunResult r = core.run(kernel);
  const std::uint64_t c = r.counts.cycles;
  EventSignature s;
  s.cycles_per_iter = r.cycles_per_iter();
  s.fxu0_inst = rate(r.counts.fxu0_inst, c);
  s.fxu1_inst = rate(r.counts.fxu1_inst, c);
  s.dcache_miss = rate(r.counts.dcache_miss, c);
  s.tlb_miss = rate(r.counts.tlb_miss, c);
  s.fpu0_inst = rate(r.counts.fpu0_inst, c);
  s.fpu1_inst = rate(r.counts.fpu1_inst, c);
  s.fp_add0 = rate(r.counts.fp_add0, c);
  s.fp_add1 = rate(r.counts.fp_add1, c);
  s.fp_mul0 = rate(r.counts.fp_mul0, c);
  s.fp_mul1 = rate(r.counts.fp_mul1, c);
  s.fp_div0 = rate(r.counts.fp_div0, c);
  s.fp_div1 = rate(r.counts.fp_div1, c);
  s.fp_fma0 = rate(r.counts.fp_fma0, c);
  s.fp_fma1 = rate(r.counts.fp_fma1, c);
  s.icu_type1 = rate(r.counts.icu_type1, c);
  s.icu_type2 = rate(r.counts.icu_type2, c);
  s.icache_reload = rate(r.counts.icache_reload, c);
  s.dcache_reload = rate(r.counts.dcache_reload, c);
  s.dcache_store = rate(r.counts.dcache_store, c);
  s.memory_inst = rate(r.counts.memory_inst, c);
  s.quad_inst = rate(r.counts.quad_inst, c);
  s.stall_dcache = rate(r.counts.stall_dcache, c);
  s.stall_tlb = rate(r.counts.stall_tlb, c);
  return s;
}

SignatureCache::SignatureCache(const CoreConfig& core_cfg)
    : core_cfg_(core_cfg) {}

const EventSignature& SignatureCache::get(const KernelDesc& kernel) {
  const std::uint64_t h = kernel.content_hash();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) return it->second;
  Power2Core core(core_cfg_);
  EventSignature s = measure_signature(core, kernel);
  return by_hash_.emplace(h, s).first->second;
}

std::size_t SignatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_hash_.size();
}

}  // namespace p2sim::power2
