// Raw event totals produced by the core model.
//
// These are the microarchitectural ground truth; the HPM module maps a
// subset of them onto the 22 NAS counters (Table 1 of the paper), including
// the counters' quirks (32-bit wrap, the divide-count bug).  Fields mirror
// the Table 1 events plus a few derived diagnostics the paper discusses in
// prose (stall cycles, quad-operation counts).
#pragma once

#include <cstdint>

#include "src/check/annotate.hpp"

namespace p2sim::power2 {

// Plain counter arithmetic on caller-owned values: every function here is
// safe inside the parallel region (worker-private measurement cores
// accumulate EventCounts while lanes advance).
P2SIM_PAR_SAFE_FILE;

struct EventCounts {
  // --- cycles ---
  std::uint64_t cycles = 0;

  // --- FXU ---
  std::uint64_t fxu0_inst = 0;
  std::uint64_t fxu1_inst = 0;
  std::uint64_t dcache_miss = 0;  ///< FPU and FXU requests not in the D-cache
  std::uint64_t tlb_miss = 0;

  // --- FPU (per unit, per operation type) ---
  std::uint64_t fpu0_inst = 0;
  std::uint64_t fpu1_inst = 0;
  std::uint64_t fp_add0 = 0;  ///< adds, including the add half of fma
  std::uint64_t fp_add1 = 0;
  std::uint64_t fp_mul0 = 0;  ///< standalone multiplies
  std::uint64_t fp_mul1 = 0;
  std::uint64_t fp_div0 = 0;
  std::uint64_t fp_div1 = 0;
  std::uint64_t fp_fma0 = 0;  ///< fma instructions (= the multiply half)
  std::uint64_t fp_fma1 = 0;

  // --- ICU ---
  std::uint64_t icu_type1 = 0;  ///< branches
  std::uint64_t icu_type2 = 0;  ///< condition-register ops

  // --- SCU / memory traffic ---
  std::uint64_t icache_reload = 0;
  std::uint64_t dcache_reload = 0;
  std::uint64_t dcache_store = 0;  ///< dirty-victim writebacks
  std::uint64_t dma_read = 0;      ///< memory -> I/O device transfers
  std::uint64_t dma_write = 0;     ///< I/O device -> memory transfers

  // --- diagnostics not visible to the 22-counter selection ---
  std::uint64_t memory_inst = 0;   ///< loads+stores (quad counts once)
  std::uint64_t quad_inst = 0;     ///< quad loads/stores (each moves 2 words)
  std::uint64_t stall_dcache = 0;  ///< cycles lost to D-cache miss halts
  std::uint64_t stall_tlb = 0;     ///< cycles lost to TLB refills
  /// Instructions handed to execution units by the ICU dispatcher.  The
  /// in-order core dispatches each instruction exactly once, so this must
  /// cover instructions(); the invariant auditor checks dispatched >=
  /// completed.  Zero when the producer (e.g. signature scaling) does not
  /// model dispatch.
  std::uint64_t dispatched_inst = 0;

  // --- wait states (countable only under the kWaitStates selection) ---
  // The paper's closing recommendation: "other sites ... might consider
  // selecting counter options which could also report I/O wait time in
  // addition to CPU performance."  The node model produces these; whether
  // the monitor records them depends on the configured counter selection.
  std::uint64_t comm_wait_cycles = 0;  ///< message-passing wait
  std::uint64_t io_wait_cycles = 0;    ///< disk / paging-service wait

  // Convenience totals -------------------------------------------------

  std::uint64_t fxu_inst() const { return fxu0_inst + fxu1_inst; }
  std::uint64_t fpu_inst() const { return fpu0_inst + fpu1_inst; }
  std::uint64_t icu_inst() const { return icu_type1 + icu_type2; }
  std::uint64_t instructions() const {
    return fxu_inst() + fpu_inst() + icu_inst();
  }

  std::uint64_t fp_add() const { return fp_add0 + fp_add1; }
  std::uint64_t fp_mul() const { return fp_mul0 + fp_mul1; }
  std::uint64_t fp_div() const { return fp_div0 + fp_div1; }
  std::uint64_t fp_fma() const { return fp_fma0 + fp_fma1; }

  /// Total floating-point operations under the paper's accounting: the fma
  /// add is inside fp_add() and the fma multiply is the fma count itself.
  std::uint64_t flops() const {
    return fp_add() + fp_mul() + fp_div() + fp_fma();
  }

  /// "Operations": instructions plus the extra word moved by each quad
  /// load/store (used for the paper's Mops column, which runs slightly
  /// above Mips).
  std::uint64_t operations() const { return instructions() + quad_inst; }

  EventCounts& operator+=(const EventCounts& o);
  friend EventCounts operator+(EventCounts a, const EventCounts& b) {
    a += b;
    return a;
  }
  bool operator==(const EventCounts&) const = default;
};

}  // namespace p2sim::power2
