// Set-associative cache model.
//
// Default geometry is the NAS SP2 data cache described in section 2 of the
// paper: 256 kB, 4-way set associative, 1024 lines of 256 bytes, LRU,
// write-allocate / write-back.  The write-back property matters for the HPM:
// the `user.dcache_store` counter fires when "the D-cache destination for
// incoming data currently contains data which has been modified" — i.e. a
// dirty eviction — and we reproduce that definition exactly.  The same model
// with a different geometry serves as the 32 kB instruction cache.
#pragma once

#include <cstdint>
#include <vector>

#include "src/check/annotate.hpp"

namespace p2sim::power2 {

struct CacheConfig {
  std::uint64_t size_bytes = 256 * 1024;
  std::uint32_t line_bytes = 256;
  std::uint32_t ways = 4;
  bool write_allocate = true;

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
  bool valid() const;
};

/// Outcome of a single access.
struct CacheAccess {
  bool hit = false;
  bool reload = false;       ///< a line was brought in from memory
  bool dirty_evict = false;  ///< the victim was modified (dcache_store event)
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Accesses one address (the address, not a range: callers issue one
  /// access per instruction, matching HPM count semantics for quad ops).
  /// Touches only this cache instance, so a worker-private core may call
  /// it inside the parallel measurement region.
  P2SIM_PAR_SAFE CacheAccess access(std::uint64_t addr, bool is_store);

  /// Drops all lines (used between unrelated kernel runs).
  void flush();

  P2SIM_PAR_SAFE const CacheConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t dirty_evictions() const { return dirty_evictions_; }
  /// Lifetime access count; the audited identity accesses == hits + misses
  /// survives flush() (statistics, unlike lines, are never dropped).
  std::uint64_t accesses() const { return accesses_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< global access counter value at last touch
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig cfg_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  // sets * ways, way-major within a set
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

}  // namespace p2sim::power2
