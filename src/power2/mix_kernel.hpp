// Statistical kernel synthesis.
//
// Hand-built kernels (matrix multiply, stencils) model specific codes; the
// bulk of the nine-month workload, however, is characterized statistically —
// the paper reports instruction mixes, fma fractions and flops-per-memref
// ratios, not source code.  MixKernelSpec turns those measured aggregates
// into a concrete loop body (deterministically, from a seed) so each
// synthetic job gets a kernel whose *counter* behaviour matches a point in
// the population.
#pragma once

#include <cstdint>
#include <string>

#include "src/power2/kernel_desc.hpp"

namespace p2sim::power2 {

struct MixKernelSpec {
  std::string name = "mix";

  /// Floating-point instructions per loop iteration.
  int fp_inst = 12;
  /// Fractions of those FP instructions by type (remainder are adds).
  double fma_frac = 0.30;
  double mul_frac = 0.20;
  double div_frac = 0.00;
  double sqrt_frac = 0.00;

  /// Probability an FP instruction consumes the previous FP result —
  /// the dependence knob that sets achievable ILP and hence the FPU0/FPU1
  /// split.  0 = fully independent, 1 = one serial chain.
  double dep_prob = 0.55;
  /// Probability an FP instruction consumes the most recent load.
  double load_dep_prob = 0.5;
  /// Probability the dependence chain is loop-carried (recurrences).
  double carried_prob = 0.1;

  /// Memory instructions per FP instruction (1 / register-reuse quality:
  /// the paper's workload sits near 1.0, tuned codes near 1/3).
  double mem_per_fp = 1.0;
  double store_frac = 0.30;  ///< of memory instructions
  double quad_frac = 0.10;   ///< of memory instructions (quad = 2 words)

  /// Integer overhead per iteration.
  double alu_per_iter = 1.0;
  double addr_mul_per_iter = 0.0;
  double condreg_per_iter = 0.2;

  /// Memory streams the loop walks.
  int streams = 4;
  std::uint64_t stream_footprint_bytes = 4ull << 20;
  std::int64_t stride_bytes = 8;

  double icache_miss_per_kinst = 0.0;
  std::uint64_t warmup_iters = 512;
  std::uint64_t measure_iters = 4096;
  std::uint64_t seed = 1;
};

/// Builds a concrete kernel realizing the spec.  Deterministic in the spec
/// (same spec => identical kernel, hence identical signature).
KernelDesc make_mix_kernel(const MixKernelSpec& spec);

}  // namespace p2sim::power2
