// On-disk persistence for measured event signatures.
//
// Text format, one line per signature, following the record_io v2 idiom:
// a versioned header line carrying the core-config hash, then
//
//   sig <kernel-hash:hex16> <cycles_per_iter> <rate>... crc=<hex8>
//
// with every double printed as a C99 hexfloat (bit-exact round trip) and
// the rates in field-table order (src/power2/field_table.hpp).  Each line
// ends with an FNV-1a-32 checksum of everything before " crc=".  A v2
// store closes with a commit trailer
//
//   end count=<entries> crc=<hex8>
//
// and is written durably (temp file + fsync + atomic rename + directory
// fsync), so a crash mid-save leaves either the old store or the new one,
// never a torn file.
//
// Recovery rules: a line that fails its checksum or does not parse is
// skipped (that kernel is simply re-measured); a header whose core-config
// hash differs from the running configuration invalidates the whole file,
// because signatures measured on a different core model are not merely
// stale, they are wrong; and a v2 store whose commit trailer is missing,
// rotted or inconsistent is rejected wholesale — a truncated store means
// the writer died mid-file, and adopting its prefix would silently pin a
// partial signature set.  v1 stores (no trailer) still load.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/power2/core.hpp"
#include "src/power2/signature.hpp"

namespace p2sim::power2 {

inline constexpr const char* kSignatureStoreTag = "p2sim-signatures";
inline constexpr int kSignatureStoreVersion = 2;

/// Hash of every CoreConfig field that can change a measured signature.
/// Two configs with equal hashes produce interchangeable store entries.
std::uint64_t core_config_hash(const CoreConfig& cfg);

/// What a load pass found; callers decide how loudly to report it.
struct SignatureStoreReport {
  bool file_found = false;
  bool header_ok = false;       ///< tag/version parsed
  bool core_hash_matched = false;
  /// v2 commit trailer present, checksummed and counting exactly the entry
  /// lines seen.  Always false for v1 stores.
  bool committed = false;
  /// v2 store with no valid trailer: the writer died mid-file.  The whole
  /// store is rejected (loaded == 0) and will be rebuilt by the next save.
  bool truncated = false;
  std::size_t loaded = 0;          ///< entries adopted into `out`
  std::size_t corrupt_lines = 0;   ///< checksum or parse failures skipped
};

/// Loads `path` into `out` (inserting, never overwriting existing keys)
/// when its core hash equals `core_hash`.  Missing file, bad header or a
/// core-hash mismatch adopt nothing; corrupt lines are skipped
/// individually.  The report says which of those happened.
SignatureStoreReport load_signature_store(
    const std::string& path, std::uint64_t core_hash,
    std::map<std::uint64_t, EventSignature>& out);

/// Writes the whole map to `path` durably: temp file + fsync + atomic
/// rename + directory fsync, closed by the commit trailer.  Returns false
/// on I/O failure (the old store, if any, is left intact).
bool save_signature_store(const std::string& path, std::uint64_t core_hash,
                          const std::map<std::uint64_t, EventSignature>& entries);

}  // namespace p2sim::power2
