#include "src/power2/isa.hpp"

namespace p2sim::power2 {

std::string_view op_name(OpClass op) {
  switch (op) {
    case OpClass::kFxLoad: return "fx_load";
    case OpClass::kFxStore: return "fx_store";
    case OpClass::kFxAlu: return "fx_alu";
    case OpClass::kFxAddrMul: return "fx_addr_mul";
    case OpClass::kFxAddrDiv: return "fx_addr_div";
    case OpClass::kFpAdd: return "fp_add";
    case OpClass::kFpMul: return "fp_mul";
    case OpClass::kFpDiv: return "fp_div";
    case OpClass::kFpSqrt: return "fp_sqrt";
    case OpClass::kFpFma: return "fp_fma";
    case OpClass::kBranch: return "branch";
    case OpClass::kCondReg: return "cond_reg";
  }
  return "unknown";
}

}  // namespace p2sim::power2
