// The signature/event field table: the single source of truth tying each
// per-cycle rate in EventSignature to its 64-bit counter slot in
// EventCounts.
//
// Hot-path code iterates this constexpr table instead of spelling out ~23
// named-field statements, so `EventSignature::scale`, `scale_into`,
// `measure_signature` and the on-disk signature store all stay in lockstep
// by construction: adding a field to EventCounts either gets a row here or
// an entry in `kUnscaledFields`, and `tools/lint_events.py` fails the build
// otherwise.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/power2/event_counts.hpp"
#include "src/power2/signature.hpp"

namespace p2sim::power2 {

/// One signature-scaled event: the per-cycle rate member and the event
/// counter it accrues into, plus the stable name used by the persistent
/// signature store and diagnostics.
struct ScaledField {
  const char* name;
  double EventSignature::* rate;
  std::uint64_t EventCounts::* count;
};

/// Every EventCounts field produced by signature scaling, in EventCounts
/// declaration order.  The order is load-bearing for the on-disk store
/// format (columns are written in table order).
inline constexpr std::array<ScaledField, 23> kScaledFields = {{
    {"fxu0_inst", &EventSignature::fxu0_inst, &EventCounts::fxu0_inst},
    {"fxu1_inst", &EventSignature::fxu1_inst, &EventCounts::fxu1_inst},
    {"dcache_miss", &EventSignature::dcache_miss, &EventCounts::dcache_miss},
    {"tlb_miss", &EventSignature::tlb_miss, &EventCounts::tlb_miss},
    {"fpu0_inst", &EventSignature::fpu0_inst, &EventCounts::fpu0_inst},
    {"fpu1_inst", &EventSignature::fpu1_inst, &EventCounts::fpu1_inst},
    {"fp_add0", &EventSignature::fp_add0, &EventCounts::fp_add0},
    {"fp_add1", &EventSignature::fp_add1, &EventCounts::fp_add1},
    {"fp_mul0", &EventSignature::fp_mul0, &EventCounts::fp_mul0},
    {"fp_mul1", &EventSignature::fp_mul1, &EventCounts::fp_mul1},
    {"fp_div0", &EventSignature::fp_div0, &EventCounts::fp_div0},
    {"fp_div1", &EventSignature::fp_div1, &EventCounts::fp_div1},
    {"fp_fma0", &EventSignature::fp_fma0, &EventCounts::fp_fma0},
    {"fp_fma1", &EventSignature::fp_fma1, &EventCounts::fp_fma1},
    {"icu_type1", &EventSignature::icu_type1, &EventCounts::icu_type1},
    {"icu_type2", &EventSignature::icu_type2, &EventCounts::icu_type2},
    {"icache_reload", &EventSignature::icache_reload,
     &EventCounts::icache_reload},
    {"dcache_reload", &EventSignature::dcache_reload,
     &EventCounts::dcache_reload},
    {"dcache_store", &EventSignature::dcache_store,
     &EventCounts::dcache_store},
    {"memory_inst", &EventSignature::memory_inst, &EventCounts::memory_inst},
    {"quad_inst", &EventSignature::quad_inst, &EventCounts::quad_inst},
    {"stall_dcache", &EventSignature::stall_dcache,
     &EventCounts::stall_dcache},
    {"stall_tlb", &EventSignature::stall_tlb, &EventCounts::stall_tlb},
}};

inline constexpr std::size_t kScaledFieldCount = kScaledFields.size();

/// EventCounts fields that have no per-cycle rate: the timebase itself and
/// counters produced outside signature scaling (DMA traffic, the dispatch
/// diagnostic, wait-state cycles).  The counter-plumbing lint requires every
/// EventCounts member to appear either in kScaledFields or here.
inline constexpr std::array<const char*, 6> kUnscaledFields = {
    "cycles",
    "dma_read",
    "dma_write",
    "dispatched_inst",
    "comm_wait_cycles",
    "io_wait_cycles",
};

/// SoA view of a signature's scaled rates, in kScaledFields order.
using SignatureRates = std::array<double, kScaledFieldCount>;

/// Residual accumulators for deterministic fractional-event carrying, one
/// slot per scaled field (see EventSignature::scale_into).
using ScaleResiduals = std::array<double, kScaledFieldCount>;

inline SignatureRates signature_rates(const EventSignature& sig) {
  SignatureRates r{};
  for (std::size_t i = 0; i < kScaledFieldCount; ++i)
    r[i] = sig.*(kScaledFields[i].rate);
  return r;
}

}  // namespace p2sim::power2
