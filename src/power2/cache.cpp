#include "src/power2/cache.hpp"

#include <bit>
#include <stdexcept>

#include "src/check/check.hpp"

namespace p2sim::power2 {

bool CacheConfig::valid() const {
  if (size_bytes == 0 || line_bytes == 0 || ways == 0) return false;
  if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes))) return false;
  if (size_bytes % line_bytes != 0) return false;
  if (num_lines() % ways != 0) return false;
  return std::has_single_bit(num_sets());
}

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (!cfg_.valid()) throw std::invalid_argument("invalid cache geometry");
  set_mask_ = cfg_.num_sets() - 1;
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(cfg_.line_bytes)));
  lines_.resize(cfg_.num_sets() * cfg_.ways);
}

CacheAccess Cache::access(std::uint64_t addr, bool is_store) {
  const std::uint64_t block = addr >> line_shift_;
  const std::uint64_t set = block & set_mask_;
  const std::uint64_t tag = block >> std::countr_zero(set_mask_ + 1);
  Line* base = &lines_[set * cfg_.ways];
  ++tick_;
  ++accesses_;

  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      l.dirty = l.dirty || is_store;
      ++hits_;
      P2SIM_INVARIANT(hits_ + misses_ == accesses_,
                      "every cache access is a hit or a miss");
      return {.hit = true, .reload = false, .dirty_evict = false};
    }
  }

  ++misses_;
  CacheAccess out{.hit = false, .reload = false, .dirty_evict = false};
  if (is_store && !cfg_.write_allocate) {
    // Write-through-no-allocate stores go straight to memory.
    return out;
  }

  // Choose the victim: invalid way first, else true LRU.
  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& l = base[w];
    if (!l.valid) {
      victim = &l;
      break;
    }
    if (l.lru < victim->lru) victim = &l;
  }
  if (victim->valid && victim->dirty) {
    out.dirty_evict = true;
    ++dirty_evictions_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  victim->dirty = is_store;
  out.reload = true;
  P2SIM_INVARIANT(hits_ + misses_ == accesses_,
                  "every cache access is a hit or a miss");
  P2SIM_INVARIANT(!out.dirty_evict || out.reload,
                  "a dirty eviction can only accompany a reload");
  return out;
}

void Cache::flush() {
  for (Line& l : lines_) l = Line{};
  tick_ = 0;
}

}  // namespace p2sim::power2
