#include "src/power2/signature_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/power2/field_table.hpp"
#include "src/util/checksum.hpp"

namespace p2sim::power2 {
namespace {

// Same mixer as KernelDesc::content_hash, so store keys and config hashes
// share one diffusion quality.
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// C99 hexfloat: bit-exact double round trip through text.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_hex_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool parse_double(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Parses one "sig ..." body (checksum already verified).  Returns false
/// on any token-count or numeric failure.
bool parse_entry(const std::string& body, std::uint64_t& hash,
                 EventSignature& sig) {
  std::istringstream in(body);
  std::string tok;
  if (!(in >> tok) || tok != "sig") return false;
  if (!(in >> tok) || !parse_hex_u64(tok, hash)) return false;
  if (!(in >> tok) || !parse_double(tok, sig.cycles_per_iter)) return false;
  for (const ScaledField& f : kScaledFields) {
    if (!(in >> tok) || !parse_double(tok, sig.*(f.rate))) return false;
  }
  return !(in >> tok);  // trailing garbage is corruption too
}

}  // namespace

std::uint64_t core_config_hash(const CoreConfig& cfg) {
  std::uint64_t h = 0x452821e638d01377ULL;
  h = mix64(h, cfg.dcache.size_bytes);
  h = mix64(h, cfg.dcache.line_bytes);
  h = mix64(h, cfg.dcache.ways);
  h = mix64(h, cfg.dcache.write_allocate ? 1u : 0u);
  h = mix64(h, cfg.icache.size_bytes);
  h = mix64(h, cfg.icache.line_bytes);
  h = mix64(h, cfg.icache.ways);
  h = mix64(h, cfg.icache.write_allocate ? 1u : 0u);
  h = mix64(h, cfg.tlb.entries);
  h = mix64(h, cfg.tlb.page_bytes);
  h = mix64(h, cfg.tlb.ways);
  h = mix64(h, cfg.dispatch_width);
  h = mix64(h, cfg.dcache_miss_halt);
  h = mix64(h, cfg.tlb_miss_min);
  h = mix64(h, cfg.tlb_miss_max);
  h = mix64(h, static_cast<std::uint64_t>(cfg.fpu_steering));
  h = mix64(h, static_cast<std::uint64_t>(cfg.fxu_steering));
  h = mix64(h, cfg.rng_seed);
  return h;
}

SignatureStoreReport load_signature_store(
    const std::string& path, std::uint64_t core_hash,
    std::map<std::uint64_t, EventSignature>& out) {
  SignatureStoreReport rep;
  std::ifstream in(path);
  if (!in) return rep;
  rep.file_found = true;

  std::string header;
  if (!std::getline(in, header)) return rep;
  {
    std::istringstream hs(header);
    std::string tag, version, fields, core;
    if (!(hs >> tag >> version >> fields >> core)) return rep;
    if (tag != kSignatureStoreTag) return rep;
    if (version != "v" + std::to_string(kSignatureStoreVersion)) return rep;
    if (fields != "fields=" + std::to_string(kScaledFieldCount)) return rep;
    rep.header_ok = true;
    std::uint64_t stored_core = 0;
    if (core.rfind("core=", 0) != 0 ||
        !parse_hex_u64(core.substr(5), stored_core)) {
      rep.header_ok = false;
      return rep;
    }
    if (stored_core != core_hash) return rep;  // wrong core model: all stale
    rep.core_hash_matched = true;
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t crc_at = line.rfind(" crc=");
    std::uint32_t stored_crc = 0;
    std::uint64_t parsed_crc64 = 0;
    if (crc_at == std::string::npos ||
        !parse_hex_u64(line.substr(crc_at + 5), parsed_crc64) ||
        parsed_crc64 > 0xffffffffULL) {
      ++rep.corrupt_lines;
      continue;
    }
    stored_crc = static_cast<std::uint32_t>(parsed_crc64);
    const std::string body = line.substr(0, crc_at);
    if (util::fnv1a32(body) != stored_crc) {
      ++rep.corrupt_lines;
      continue;
    }
    std::uint64_t hash = 0;
    EventSignature sig;
    if (!parse_entry(body, hash, sig)) {
      ++rep.corrupt_lines;
      continue;
    }
    if (out.emplace(hash, sig).second) ++rep.loaded;
  }
  return rep;
}

bool save_signature_store(
    const std::string& path, std::uint64_t core_hash,
    const std::map<std::uint64_t, EventSignature>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << kSignatureStoreTag << " v" << kSignatureStoreVersion
        << " fields=" << kScaledFieldCount << " core=" << hex16(core_hash)
        << '\n';
    for (const auto& [hash, sig] : entries) {
      std::ostringstream body;
      body << "sig " << hex16(hash) << ' ' << hexfloat(sig.cycles_per_iter);
      for (const ScaledField& f : kScaledFields)
        body << ' ' << hexfloat(sig.*(f.rate));
      const std::string b = body.str();
      char crc[9];
      std::snprintf(crc, sizeof crc, "%08x", util::fnv1a32(b));
      out << b << " crc=" << crc << '\n';
    }
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace p2sim::power2
