#include "src/power2/signature_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/power2/field_table.hpp"
#include "src/util/checksum.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::power2 {
namespace {

// Same mixer as KernelDesc::content_hash, so store keys and config hashes
// share one diffusion quality.
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// C99 hexfloat: bit-exact double round trip through text.
std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_hex_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool parse_dec_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parse_double(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Parses one "sig ..." body (checksum already verified).  Returns false
/// on any token-count or numeric failure.
bool parse_entry(const std::string& body, std::uint64_t& hash,
                 EventSignature& sig) {
  std::istringstream in(body);
  std::string tok;
  if (!(in >> tok) || tok != "sig") return false;
  if (!(in >> tok) || !parse_hex_u64(tok, hash)) return false;
  if (!(in >> tok) || !parse_double(tok, sig.cycles_per_iter)) return false;
  for (const ScaledField& f : kScaledFields) {
    if (!(in >> tok) || !parse_double(tok, sig.*(f.rate))) return false;
  }
  return !(in >> tok);  // trailing garbage is corruption too
}

}  // namespace

std::uint64_t core_config_hash(const CoreConfig& cfg) {
  std::uint64_t h = 0x452821e638d01377ULL;
  h = mix64(h, cfg.dcache.size_bytes);
  h = mix64(h, cfg.dcache.line_bytes);
  h = mix64(h, cfg.dcache.ways);
  h = mix64(h, cfg.dcache.write_allocate ? 1u : 0u);
  h = mix64(h, cfg.icache.size_bytes);
  h = mix64(h, cfg.icache.line_bytes);
  h = mix64(h, cfg.icache.ways);
  h = mix64(h, cfg.icache.write_allocate ? 1u : 0u);
  h = mix64(h, cfg.tlb.entries);
  h = mix64(h, cfg.tlb.page_bytes);
  h = mix64(h, cfg.tlb.ways);
  h = mix64(h, cfg.dispatch_width);
  h = mix64(h, cfg.dcache_miss_halt);
  h = mix64(h, cfg.tlb_miss_min);
  h = mix64(h, cfg.tlb_miss_max);
  h = mix64(h, static_cast<std::uint64_t>(cfg.fpu_steering));
  h = mix64(h, static_cast<std::uint64_t>(cfg.fxu_steering));
  h = mix64(h, cfg.rng_seed);
  return h;
}

SignatureStoreReport load_signature_store(
    const std::string& path, std::uint64_t core_hash,
    std::map<std::uint64_t, EventSignature>& out) {
  SignatureStoreReport rep;
  std::ifstream in(path);
  if (!in) return rep;
  rep.file_found = true;

  std::string header;
  if (!std::getline(in, header)) return rep;
  int version = 0;
  {
    std::istringstream hs(header);
    std::string tag, ver, fields, core;
    if (!(hs >> tag >> ver >> fields >> core)) return rep;
    if (tag != kSignatureStoreTag) return rep;
    if (ver == "v1") {
      version = 1;
    } else if (ver == "v2") {
      version = 2;
    } else {
      return rep;
    }
    if (fields != "fields=" + std::to_string(kScaledFieldCount)) return rep;
    rep.header_ok = true;
    std::uint64_t stored_core = 0;
    if (core.rfind("core=", 0) != 0 ||
        !parse_hex_u64(core.substr(5), stored_core)) {
      rep.header_ok = false;
      return rep;
    }
    if (stored_core != core_hash) return rep;  // wrong core model: all stale
    rep.core_hash_matched = true;
  }

  // Entries stage here and are only adopted into `out` once the file is
  // known complete: unconditionally for v1, after a valid commit trailer
  // for v2.
  std::vector<std::pair<std::uint64_t, EventSignature>> staged;
  std::size_t corrupt_lines = 0;
  std::size_t entry_lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Only the trailer starts with "end "; entry lines start with "sig "
    // and rot never rewrites a line's first bytes.
    const bool is_trailer =
        version == 2 && line.rfind("end ", 0) == 0;
    if (!is_trailer) ++entry_lines;
    const std::size_t crc_at = line.rfind(" crc=");
    std::uint64_t parsed_crc64 = 0;
    if (crc_at == std::string::npos ||
        !parse_hex_u64(line.substr(crc_at + 5), parsed_crc64) ||
        parsed_crc64 > 0xffffffffULL) {
      ++corrupt_lines;
      continue;
    }
    const auto stored_crc = static_cast<std::uint32_t>(parsed_crc64);
    const std::string body = line.substr(0, crc_at);
    if (util::fnv1a32(body) != stored_crc) {
      ++corrupt_lines;
      continue;
    }
    if (is_trailer) {
      std::uint64_t count = 0;
      if (rep.committed || body.rfind("end count=", 0) != 0 ||
          !parse_dec_u64(body.substr(10), count) || count != entry_lines) {
        ++corrupt_lines;
      } else {
        rep.committed = true;
      }
      continue;
    }
    std::uint64_t hash = 0;
    EventSignature sig;
    if (!parse_entry(body, hash, sig)) {
      ++corrupt_lines;
      continue;
    }
    staged.emplace_back(hash, sig);
  }

  rep.corrupt_lines = corrupt_lines;
  if (version == 2 && !rep.committed) {
    // No (or inconsistent) commit trailer: the writer died mid-file.  The
    // surviving prefix may be arbitrarily short, so nothing is adopted —
    // affected kernels re-measure and the next save rebuilds the store.
    rep.truncated = true;
    return rep;
  }
  for (auto& [hash, sig] : staged) {
    if (out.emplace(hash, sig).second) ++rep.loaded;
  }
  return rep;
}

bool save_signature_store(
    const std::string& path, std::uint64_t core_hash,
    const std::map<std::uint64_t, EventSignature>& entries) {
  std::ostringstream out;
  out << kSignatureStoreTag << " v" << kSignatureStoreVersion
      << " fields=" << kScaledFieldCount << " core=" << hex16(core_hash)
      << '\n';
  const auto checked_line = [&out](const std::string& body) {
    char crc[9];
    std::snprintf(crc, sizeof crc, "%08x", util::fnv1a32(body));
    out << body << " crc=" << crc << '\n';
  };
  for (const auto& [hash, sig] : entries) {
    std::ostringstream body;
    body << "sig " << hex16(hash) << ' ' << hexfloat(sig.cycles_per_iter);
    for (const ScaledField& f : kScaledFields)
      body << ' ' << hexfloat(sig.*(f.rate));
    checked_line(body.str());
  }
  checked_line("end count=" + std::to_string(entries.size()));
  return util::write_file_durable(path, out.str());
}

}  // namespace p2sim::power2
