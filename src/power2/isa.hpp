// Abstract POWER2 instruction classes.
//
// The simulator is trace-synthetic rather than binary-accurate: kernels are
// loop bodies of classed operations, which is exactly the granularity the
// hardware monitor observes (it counts instructions per execution unit and
// operations per type, never opcodes).  Classes follow the unit structure in
// White & Dhawan (1994) as summarized in section 2 of the paper:
//   - FXU ops: storage references (including 128-bit "quad" forms that count
//     as a single instruction), integer ALU ops, and the address-arithmetic
//     multiply/divide that only FXU1 can execute.
//   - FPU ops: add, multiply, divide (10 cycles), sqrt (15 cycles), and the
//     compound fma that produces 2 flops per instruction.
//   - ICU ops: branches ("type I") and condition-register ops ("type II").
#pragma once

#include <cstdint>
#include <string_view>

#include "src/check/annotate.hpp"

namespace p2sim::power2 {

// Pure constexpr classification helpers — callable from the parallel
// measurement region (worker-private Power2Core instances).
P2SIM_PAR_SAFE_FILE;

enum class OpClass : std::uint8_t {
  kFxLoad,     ///< memory load (quad flag doubles the data, not the count)
  kFxStore,    ///< memory store
  kFxAlu,      ///< integer arithmetic / logical op
  kFxAddrMul,  ///< address-arithmetic multiply (FXU1 only)
  kFxAddrDiv,  ///< address-arithmetic divide (FXU1 only)
  kFpAdd,      ///< floating add (1 flop)
  kFpMul,      ///< floating multiply (1 flop)
  kFpDiv,      ///< floating divide (1 flop, 10-cycle non-pipelined)
  kFpSqrt,     ///< square root (15-cycle non-pipelined, no flop counter)
  kFpFma,      ///< fused multiply-add (2 flops: one add + one multiply)
  kBranch,     ///< ICU type I
  kCondReg,    ///< ICU type II
};

constexpr bool is_memory(OpClass op) {
  return op == OpClass::kFxLoad || op == OpClass::kFxStore;
}

constexpr bool is_fixed_point(OpClass op) {
  return op == OpClass::kFxLoad || op == OpClass::kFxStore ||
         op == OpClass::kFxAlu || op == OpClass::kFxAddrMul ||
         op == OpClass::kFxAddrDiv;
}

constexpr bool is_floating_point(OpClass op) {
  return op == OpClass::kFpAdd || op == OpClass::kFpMul ||
         op == OpClass::kFpDiv || op == OpClass::kFpSqrt ||
         op == OpClass::kFpFma;
}

constexpr bool is_icu(OpClass op) {
  return op == OpClass::kBranch || op == OpClass::kCondReg;
}

/// True for FPU ops that occupy the unit for many cycles and trigger the
/// FPU0 -> FPU1 steering described in section 5 of the paper.
constexpr bool is_multicycle_fp(OpClass op) {
  return op == OpClass::kFpDiv || op == OpClass::kFpSqrt;
}

/// Flops produced by one instance of the op (fma = add + multiply).
constexpr int flops_of(OpClass op) {
  switch (op) {
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
    case OpClass::kFpDiv:
      return 1;
    case OpClass::kFpFma:
      return 2;
    default:
      return 0;
  }
}

/// Issue-to-result latency in cycles for FPU ops (pipelined ops have
/// throughput 1/cycle regardless of latency).
constexpr int fp_latency(OpClass op) {
  switch (op) {
    case OpClass::kFpAdd:
    case OpClass::kFpMul:
    case OpClass::kFpFma:
      return 2;
    case OpClass::kFpDiv:
      return 10;  // "the 10-cycle divide" (paper section 5)
    case OpClass::kFpSqrt:
      return 15;  // "15-cycle square root operations"
    default:
      return 1;
  }
}

/// Cycles the FPU stays busy (non-pipelined ops block the unit).
constexpr int fp_busy(OpClass op) {
  return is_multicycle_fp(op) ? fp_latency(op) : 1;
}

std::string_view op_name(OpClass op);

}  // namespace p2sim::power2
