// Translation lookaside buffer model.
//
// The paper (section 2): 4096-byte pages, 512 TLB entries.  The RS/6000-590
// TLB is 2-way set associative; a miss costs "36 to 54 cycles" (section 5),
// which the core model draws uniformly from that window.
#pragma once

#include <cstdint>
#include <vector>

#include "src/check/annotate.hpp"

namespace p2sim::power2 {

struct TlbConfig {
  std::uint32_t entries = 512;
  std::uint32_t page_bytes = 4096;
  std::uint32_t ways = 2;
  bool valid() const;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  /// Returns true on a hit; a miss installs the translation (LRU victim).
  /// Instance-local state only: safe on a worker-private core inside the
  /// parallel measurement region.
  P2SIM_PAR_SAFE bool access(std::uint64_t addr);

  void flush();
  P2SIM_PAR_SAFE const TlbConfig& config() const { return cfg_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Lifetime access count (accesses == hits + misses, audited).
  std::uint64_t accesses() const { return accesses_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  TlbConfig cfg_;
  std::uint64_t set_mask_;
  std::uint32_t page_shift_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace p2sim::power2
