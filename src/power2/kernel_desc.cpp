#include "src/power2/kernel_desc.hpp"

#include <stdexcept>

namespace p2sim::power2 {
namespace {

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

std::string KernelDesc::validate() const {
  if (body.empty()) return "empty body";
  if (body.back().op != OpClass::kBranch) {
    return "body must end with the loop branch";
  }
  for (std::size_t i = 0; i < body.size(); ++i) {
    const Instr& in = body[i];
    if (in.op == OpClass::kBranch && i + 1 != body.size()) {
      return "branch allowed only as the final instruction";
    }
    if (in.dep != kNoDep &&
        (in.dep < 0 || static_cast<std::size_t>(in.dep) >= i)) {
      return "dep must reference an earlier body instruction";
    }
    if (in.carried_dep != kNoDep &&
        (in.carried_dep < 0 ||
         static_cast<std::size_t>(in.carried_dep) >= body.size())) {
      return "carried_dep out of range";
    }
    if (is_memory(in.op)) {
      if (in.stream == kNoStream || in.stream >= streams.size()) {
        return "memory op must reference a declared stream";
      }
    } else if (in.stream != kNoStream) {
      return "non-memory op must not reference a stream";
    }
    if (in.quad && !is_memory(in.op)) return "quad flag on non-memory op";
  }
  for (const MemStream& s : streams) {
    if (s.footprint_bytes == 0) return "stream footprint must be > 0";
    if (s.stride_bytes == 0) return "stream stride must be nonzero";
  }
  if (measure_iters == 0) return "measure_iters must be > 0";
  return {};
}

std::uint64_t KernelDesc::content_hash() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (char c : name) h = mix64(h, static_cast<unsigned char>(c));
  for (const MemStream& s : streams) {
    h = mix64(h, s.footprint_bytes);
    h = mix64(h, static_cast<std::uint64_t>(s.stride_bytes));
  }
  for (const Instr& in : body) {
    h = mix64(h, static_cast<std::uint64_t>(in.op));
    h = mix64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(in.dep)));
    h = mix64(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(in.carried_dep)));
    h = mix64(h, in.stream);
    h = mix64(h, in.quad ? 1u : 0u);
  }
  h = mix64(h, warmup_iters);
  h = mix64(h, measure_iters);
  h = mix64(h, static_cast<std::uint64_t>(icache_miss_per_kinst * 1e6));
  return h;
}

std::uint64_t KernelDesc::flops_per_iter() const {
  std::uint64_t f = 0;
  for (const Instr& in : body) f += static_cast<std::uint64_t>(flops_of(in.op));
  return f;
}

std::uint64_t KernelDesc::memrefs_per_iter() const {
  std::uint64_t m = 0;
  for (const Instr& in : body) m += is_memory(in.op) ? 1 : 0;
  return m;
}

KernelBuilder::KernelBuilder(std::string name) { k_.name = std::move(name); }

std::uint8_t KernelBuilder::stream(std::uint64_t footprint_bytes,
                                   std::int64_t stride_bytes) {
  k_.streams.push_back({footprint_bytes, stride_bytes});
  return static_cast<std::uint8_t>(k_.streams.size() - 1);
}

std::int16_t KernelBuilder::push(Instr in) {
  k_.body.push_back(in);
  return static_cast<std::int16_t>(k_.body.size() - 1);
}

std::int16_t KernelBuilder::load(std::uint8_t s, bool quad) {
  return push({OpClass::kFxLoad, kNoDep, kNoDep, s, quad});
}
std::int16_t KernelBuilder::store(std::uint8_t s, bool quad) {
  return push({OpClass::kFxStore, kNoDep, kNoDep, s, quad});
}
std::int16_t KernelBuilder::alu(std::int16_t dep) {
  return push({OpClass::kFxAlu, dep, kNoDep, kNoStream, false});
}
std::int16_t KernelBuilder::addr_mul(std::int16_t dep) {
  return push({OpClass::kFxAddrMul, dep, kNoDep, kNoStream, false});
}
std::int16_t KernelBuilder::addr_div(std::int16_t dep) {
  return push({OpClass::kFxAddrDiv, dep, kNoDep, kNoStream, false});
}
std::int16_t KernelBuilder::fp_add(std::int16_t dep, std::int16_t carried) {
  return push({OpClass::kFpAdd, dep, carried, kNoStream, false});
}
std::int16_t KernelBuilder::fp_mul(std::int16_t dep, std::int16_t carried) {
  return push({OpClass::kFpMul, dep, carried, kNoStream, false});
}
std::int16_t KernelBuilder::fp_div(std::int16_t dep) {
  return push({OpClass::kFpDiv, dep, kNoDep, kNoStream, false});
}
std::int16_t KernelBuilder::fp_sqrt(std::int16_t dep) {
  return push({OpClass::kFpSqrt, dep, kNoDep, kNoStream, false});
}
std::int16_t KernelBuilder::fma(std::int16_t dep, std::int16_t carried) {
  return push({OpClass::kFpFma, dep, carried, kNoStream, false});
}
std::int16_t KernelBuilder::cond_reg(std::int16_t dep) {
  return push({OpClass::kCondReg, dep, kNoDep, kNoStream, false});
}

KernelBuilder& KernelBuilder::warmup(std::uint64_t iters) {
  k_.warmup_iters = iters;
  return *this;
}
KernelBuilder& KernelBuilder::measure(std::uint64_t iters) {
  k_.measure_iters = iters;
  return *this;
}
KernelBuilder& KernelBuilder::icache_pressure(double miss_per_kinst) {
  k_.icache_miss_per_kinst = miss_per_kinst;
  return *this;
}

KernelDesc KernelBuilder::build() {
  push({OpClass::kBranch, kNoDep, kNoDep, kNoStream, false});
  if (auto err = k_.validate(); !err.empty()) {
    throw std::invalid_argument("kernel '" + k_.name + "': " + err);
  }
  return std::move(k_);
}

void KernelDesc::save_ckpt(util::CkptWriter& w) const {
  w.put_str(name);
  w.put_u64(streams.size());
  for (const MemStream& s : streams) {
    w.put_u64(s.footprint_bytes);
    w.put_i64(s.stride_bytes);
  }
  w.put_u64(body.size());
  for (const Instr& in : body) {
    w.put_u8(static_cast<std::uint8_t>(in.op));
    w.put_i32(in.dep);
    w.put_i32(in.carried_dep);
    w.put_u8(in.stream);
    w.put_bool(in.quad);
  }
  w.put_u64(warmup_iters);
  w.put_u64(measure_iters);
  w.put_f64(icache_miss_per_kinst);
}

void KernelDesc::restore_ckpt(util::CkptReader& r) {
  name = r.read_str("kernel.name");
  streams.resize(static_cast<std::size_t>(r.read_u64("kernel.num_streams")));
  for (MemStream& s : streams) {
    s.footprint_bytes = r.read_u64("kernel.stream_footprint");
    s.stride_bytes = r.read_i64("kernel.stream_stride");
  }
  body.resize(static_cast<std::size_t>(r.read_u64("kernel.body_size")));
  for (Instr& in : body) {
    in.op = static_cast<OpClass>(r.read_u8("kernel.instr_op"));
    in.dep = static_cast<std::int16_t>(r.read_i32("kernel.instr_dep"));
    in.carried_dep =
        static_cast<std::int16_t>(r.read_i32("kernel.instr_carried"));
    in.stream = r.read_u8("kernel.instr_stream");
    in.quad = r.read_bool("kernel.instr_quad");
  }
  warmup_iters = r.read_u64("kernel.warmup_iters");
  measure_iters = r.read_u64("kernel.measure_iters");
  icache_miss_per_kinst = r.read_f64("kernel.icache_miss_per_kinst");
}

}  // namespace p2sim::power2
