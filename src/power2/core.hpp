// Cycle-approximate POWER2 core model.
//
// Executes a KernelDesc loop body instruction-by-instruction through an
// in-order dual-FXU / dual-FPU / ICU pipeline with the documented dispatch
// behaviour:
//   * the ICU dispatches up to 4 instructions per cycle (section 2);
//   * floating-point instructions steer to FPU0 first, spilling to FPU1
//     when FPU0 is occupied — dependence-poor code therefore splits evenly
//     while dependence-bound code piles onto FPU0, which is exactly the
//     mechanism the paper gives for the measured FPU0/FPU1 ratio of 1.7;
//   * FXU1 alone executes address multiply/divide, while FXU0 is charged
//     with D-cache miss handling (its pipe is held for the refill);
//   * a D-cache miss halts issue for 8 cycles, a TLB miss for a uniformly
//     drawn 36-54 cycles (section 5).
// Alternative steering policies are provided for the ablation benches.
#pragma once

#include <cstdint>
#include <string>

#include "src/check/annotate.hpp"
#include "src/power2/cache.hpp"
#include "src/power2/event_counts.hpp"
#include "src/power2/kernel_desc.hpp"
#include "src/power2/tlb.hpp"
#include "src/telemetry/clock.hpp"
#include "src/util/rng.hpp"

namespace p2sim::power2 {

/// How floating-point instructions pick a unit (ablation knob; the real
/// machine implements kFpu0First).
enum class FpuSteering {
  kFpu0First,     ///< try FPU0, spill to FPU1 when busy (POWER2 behaviour)
  kRoundRobin,    ///< strict alternation
  kEarliestFree,  ///< idealized: whichever unit frees first
};

/// How fixed-point instructions pick a unit.  The measured NAS workload has
/// FXU1 executing ~1.5x the instructions of FXU0 (Table 3); kFxu1Preferred
/// reproduces this: FXU0's availability is reduced by miss handling and the
/// steering prefers FXU1 when both are free.
enum class FxuSteering {
  kFxu1Preferred,
  kRoundRobin,
};

struct CoreConfig {
  CacheConfig dcache{};  // defaults: 256 kB, 4-way, 256 B lines
  CacheConfig icache{.size_bytes = 32 * 1024, .line_bytes = 128, .ways = 2};
  TlbConfig tlb{};

  std::uint32_t dispatch_width = 4;   ///< ICU dispatch slots per cycle
  std::uint32_t dcache_miss_halt = 8; ///< cycles issue halts on a D-miss
  std::uint32_t tlb_miss_min = 36;    ///< TLB refill window (uniform draw)
  std::uint32_t tlb_miss_max = 54;

  FpuSteering fpu_steering = FpuSteering::kFpu0First;
  FxuSteering fxu_steering = FxuSteering::kFxu1Preferred;

  std::uint64_t rng_seed = 0x5eed5eedULL;
};

/// One instruction's issue record (tracing mode).
struct IssueEvent {
  std::uint32_t iteration = 0;
  std::uint16_t body_index = 0;
  OpClass op = OpClass::kFpAdd;
  /// Unit the instruction executed on: 0/1 for FXU or FPU pairs, 0 for ICU.
  std::uint8_t unit = 0;
  std::uint64_t issue_cycle = 0;
  std::uint64_t ready_cycle = 0;
  bool dcache_miss = false;
  bool tlb_miss = false;
};

/// A recorded issue schedule: the simulator's equivalent of a pipeline
/// diagram, used for debugging kernels and for schedule-invariant tests.
struct IssueTrace {
  std::vector<IssueEvent> events;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;

  /// Renders a compact text listing (one line per event).
  std::string format(std::size_t max_events = 200) const;
};

/// Result of running a kernel for a number of measured iterations.
struct RunResult {
  EventCounts counts;            ///< includes counts.cycles
  std::uint64_t iterations = 0;  ///< measured iterations

  P2SIM_PAR_SAFE double cycles_per_iter() const {
    return iterations ? static_cast<double>(counts.cycles) /
                            static_cast<double>(iterations)
                      : 0.0;
  }
  /// Achieved Mflops at the given clock (defaults to the SP2's 66.7 MHz).
  double mflops(double clock_hz = telemetry::kClockHz) const;
};

class Power2Core {
 public:
  /// A fresh core is fully reset (cold caches/TLB, zeroed pipeline clock);
  /// construction touches only this instance, so parallel measurement
  /// workers build private cores freely.
  P2SIM_PAR_SAFE explicit Power2Core(const CoreConfig& cfg = {});

  /// Runs warmup_iters uncounted, then measure_iters counted.  Cache and
  /// TLB contents persist across calls unless reset() is used; callers
  /// modelling distinct processes should reset between kernels.
  RunResult run(const KernelDesc& kernel);

  /// Runs a specific number of measured iterations (after the kernel's own
  /// warmup), overriding kernel.measure_iters.  Equivalent to
  /// run_counted() followed by note_kernel_run().
  RunResult run(const KernelDesc& kernel, std::uint64_t measure_iters);

  /// The deterministic measurement body of run(): warmup + counted
  /// iterations, audits included, but no telemetry emission — safe on a
  /// worker-private core inside the parallel measurement phase.  When
  /// `wall_us_out` is non-null it receives the wall-clock duration of the
  /// run so the caller can later feed note_kernel_run().
  P2SIM_PAR_SAFE RunResult run_counted(const KernelDesc& kernel,
                                       std::uint64_t measure_iters,
                                       std::int64_t* wall_us_out = nullptr);

  /// The telemetry tail of run(), split out so batched (parallel) kernel
  /// measurement can replay its spans and histograms serially, in a
  /// deterministic order, against the session's engine timeline.  Pass the
  /// wall_us captured by run_counted (<= 0 skips the wall-fed histogram).
  P2SIM_SERIAL_ONLY static void note_kernel_run(const RunResult& result,
                                                std::int64_t wall_us);

  /// Runs `iterations` of the kernel (no warmup) while recording every
  /// instruction's issue: the pipeline-diagram view.  Intended for short
  /// runs; the trace grows by body.size() events per iteration.
  IssueTrace trace(const KernelDesc& kernel, std::uint32_t iterations);

  /// Flushes caches/TLB and resets the pipeline clock.
  void reset();

  const CoreConfig& config() const { return cfg_; }

 private:
  /// Executes one iteration starting at pipeline time `now`; returns the
  /// cycle after the loop branch issues.  Counts events into `ev` when
  /// counting is enabled.  Draws microarchitectural jitter only from the
  /// core-private rng_ stream.
  P2SIM_PAR_SAFE std::uint64_t run_iteration(const KernelDesc& kernel,
                                             std::uint64_t now, bool counting,
                                             EventCounts& ev);

  CoreConfig cfg_;
  Cache dcache_;
  Cache icache_;
  Tlb tlb_;
  util::Xoshiro256StarStar rng_;

  // Pipeline unit availability (absolute cycle when the unit frees).
  std::uint64_t fxu_free_[2] = {0, 0};
  std::uint64_t fpu_free_[2] = {0, 0};
  std::uint64_t icu_free_ = 0;
  bool fpu_rr_toggle_ = false;
  bool fxu_rr_toggle_ = false;
  // Dispatch bookkeeping persists across iterations: the cycle currently
  // receiving instructions and how many were issued in it.
  std::uint64_t pipe_cycle_ = 0;
  std::uint32_t pipe_issued_ = 0;

  // Result-ready times, indexed by body position: current and previous
  // iteration (for loop-carried dependencies).
  std::vector<std::uint64_t> ready_cur_;
  std::vector<std::uint64_t> ready_prev_;

  // Per-stream cursors (bytes walked within the stream footprint) and
  // base addresses (streams live in disjoint address regions).
  std::vector<std::uint64_t> stream_cursor_;
  std::vector<std::uint64_t> stream_base_;
  const KernelDesc* bound_kernel_ = nullptr;

  // Tracing: when non-null, run_iteration appends issue events here.
  IssueTrace* trace_sink_ = nullptr;
  std::uint32_t trace_iteration_ = 0;

  P2SIM_PAR_SAFE void bind(const KernelDesc& kernel);
};

}  // namespace p2sim::power2
