#include "src/power2/event_counts.hpp"

namespace p2sim::power2 {

EventCounts& EventCounts::operator+=(const EventCounts& o) {
  cycles += o.cycles;
  fxu0_inst += o.fxu0_inst;
  fxu1_inst += o.fxu1_inst;
  dcache_miss += o.dcache_miss;
  tlb_miss += o.tlb_miss;
  fpu0_inst += o.fpu0_inst;
  fpu1_inst += o.fpu1_inst;
  fp_add0 += o.fp_add0;
  fp_add1 += o.fp_add1;
  fp_mul0 += o.fp_mul0;
  fp_mul1 += o.fp_mul1;
  fp_div0 += o.fp_div0;
  fp_div1 += o.fp_div1;
  fp_fma0 += o.fp_fma0;
  fp_fma1 += o.fp_fma1;
  icu_type1 += o.icu_type1;
  icu_type2 += o.icu_type2;
  icache_reload += o.icache_reload;
  dcache_reload += o.dcache_reload;
  dcache_store += o.dcache_store;
  dma_read += o.dma_read;
  dma_write += o.dma_write;
  memory_inst += o.memory_inst;
  quad_inst += o.quad_inst;
  stall_dcache += o.stall_dcache;
  stall_tlb += o.stall_tlb;
  dispatched_inst += o.dispatched_inst;
  comm_wait_cycles += o.comm_wait_cycles;
  io_wait_cycles += o.io_wait_cycles;
  return *this;
}

}  // namespace p2sim::power2
