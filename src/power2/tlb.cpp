#include "src/power2/tlb.hpp"

#include <bit>
#include <stdexcept>

#include "src/check/check.hpp"

namespace p2sim::power2 {

bool TlbConfig::valid() const {
  if (entries == 0 || ways == 0 || page_bytes == 0) return false;
  if (!std::has_single_bit(static_cast<std::uint64_t>(page_bytes))) return false;
  if (entries % ways != 0) return false;
  return std::has_single_bit(static_cast<std::uint64_t>(entries / ways));
}

Tlb::Tlb(const TlbConfig& cfg) : cfg_(cfg) {
  if (!cfg_.valid()) throw std::invalid_argument("invalid TLB geometry");
  set_mask_ = cfg_.entries / cfg_.ways - 1;
  page_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(cfg_.page_bytes)));
  entries_.resize(cfg_.entries);
}

bool Tlb::access(std::uint64_t addr) {
  const std::uint64_t vpn = addr >> page_shift_;
  const std::uint64_t set = vpn & set_mask_;
  Entry* base = &entries_[set * cfg_.ways];
  ++tick_;
  ++accesses_;

  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = base[w];
    if (e.valid && e.vpn == vpn) {
      e.lru = tick_;
      ++hits_;
      P2SIM_INVARIANT(hits_ + misses_ == accesses_,
                      "every TLB access is a hit or a miss");
      return true;
    }
  }
  ++misses_;
  Entry* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Entry& e = base[w];
    if (!e.valid) {
      victim = &e;
      break;
    }
    if (e.lru < victim->lru) victim = &e;
  }
  victim->valid = true;
  victim->vpn = vpn;
  victim->lru = tick_;
  P2SIM_INVARIANT(hits_ + misses_ == accesses_,
                  "every TLB access is a hit or a miss");
  return false;
}

void Tlb::flush() {
  for (Entry& e : entries_) e = Entry{};
  tick_ = 0;
}

}  // namespace p2sim::power2
