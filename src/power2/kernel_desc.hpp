// Kernel descriptors: the unit of work the POWER2 core model executes.
//
// A kernel is an inner loop body (a sequence of classed instructions with
// explicit data dependencies) plus the memory streams its loads and stores
// walk.  This captures everything the hardware counters can see about a
// code: instruction mix per unit, dependence-limited ILP (which drives the
// FPU0/FPU1 asymmetry), and the stride/footprint behaviour that determines
// cache and TLB miss ratios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/power2/isa.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::power2 {

inline constexpr std::uint8_t kNoStream = 0xff;
inline constexpr std::int16_t kNoDep = -1;

/// A strided memory reference stream (one array walked by the loop).
struct MemStream {
  std::uint64_t footprint_bytes = 0;  ///< wrap-around working-set size
  std::int64_t stride_bytes = 8;      ///< advance per access (may be > line)
  bool operator==(const MemStream&) const = default;
};

/// One instruction of the loop body.
struct Instr {
  OpClass op = OpClass::kFpAdd;
  /// Index of an earlier body instruction whose result this op consumes,
  /// or kNoDep.  Must be < this instruction's own index.
  std::int16_t dep = kNoDep;
  /// Index of a body instruction in the *previous* iteration whose result
  /// this op consumes (loop-carried dependence), or kNoDep.
  std::int16_t carried_dep = kNoDep;
  /// Stream accessed by a load/store, kNoStream otherwise.
  std::uint8_t stream = kNoStream;
  /// Quad (128-bit) load/store: one instruction, two 8-byte operations.
  bool quad = false;
  bool operator==(const Instr&) const = default;
};

/// A complete kernel: loop body + streams + simulation bookkeeping.
struct KernelDesc {
  std::string name;
  std::vector<MemStream> streams;
  std::vector<Instr> body;
  /// Iterations to run before counting, so caches/TLB reach steady state.
  std::uint64_t warmup_iters = 256;
  /// Iterations measured when deriving the kernel's event signature.
  std::uint64_t measure_iters = 4096;
  /// Expected extra I-cache reloads per thousand instructions beyond the
  /// compulsory first-iteration misses (models subroutine-rich codes).
  double icache_miss_per_kinst = 0.0;

  /// Validates structural invariants (dep indices in range, streams bound,
  /// body ends with exactly one branch).  Returns an empty string when
  /// valid, else a diagnostic.  Read-only, so parallel measurement workers
  /// may validate the (immutable) kernels they are handed.
  P2SIM_PAR_SAFE std::string validate() const;

  /// Stable content hash for signature memoization.
  std::uint64_t content_hash() const;

  /// Instruction and flop totals per iteration (static properties).
  std::uint64_t instructions_per_iter() const { return body.size(); }
  std::uint64_t flops_per_iter() const;
  std::uint64_t memrefs_per_iter() const;  ///< quad counts as 1 instruction

  /// Checkpoint support: the full structural description round-trips, so a
  /// restored profile re-measures (or cache-hits) identically.
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);
};

/// Fluent builder so kernels read like the loop they model.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  /// Declares a stream; returns its index for use in load()/store().
  std::uint8_t stream(std::uint64_t footprint_bytes,
                      std::int64_t stride_bytes = 8);

  /// Each append returns the instruction's body index so later instructions
  /// can declare dependencies on it.
  std::int16_t load(std::uint8_t stream, bool quad = false);
  std::int16_t store(std::uint8_t stream, bool quad = false);
  std::int16_t alu(std::int16_t dep = kNoDep);
  std::int16_t addr_mul(std::int16_t dep = kNoDep);
  std::int16_t addr_div(std::int16_t dep = kNoDep);
  std::int16_t fp_add(std::int16_t dep = kNoDep,
                      std::int16_t carried = kNoDep);
  std::int16_t fp_mul(std::int16_t dep = kNoDep,
                      std::int16_t carried = kNoDep);
  std::int16_t fp_div(std::int16_t dep = kNoDep);
  std::int16_t fp_sqrt(std::int16_t dep = kNoDep);
  std::int16_t fma(std::int16_t dep = kNoDep, std::int16_t carried = kNoDep);
  std::int16_t cond_reg(std::int16_t dep = kNoDep);

  KernelBuilder& warmup(std::uint64_t iters);
  KernelBuilder& measure(std::uint64_t iters);
  KernelBuilder& icache_pressure(double miss_per_kinst);

  /// Appends the closing loop branch and returns the finished kernel.
  /// Throws std::invalid_argument if validate() fails.
  KernelDesc build();

 private:
  std::int16_t push(Instr in);
  KernelDesc k_;
};

}  // namespace p2sim::power2
