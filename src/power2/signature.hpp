// Event signatures: the bridge between the cycle-approximate kernel engine
// (level A) and the interval-analytic workload engine (level B).
//
// A signature is a kernel's steady-state event production per CPU cycle, as
// measured by actually running the kernel through the core model.  The
// nine-month workload simulation then advances node counters by
// signature-rate x busy-cycles per 15-minute interval — the same
// quantization the real RS2HPM daemon imposed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/check/annotate.hpp"
#include "src/power2/core.hpp"
#include "src/power2/event_counts.hpp"
#include "src/power2/kernel_desc.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::power2 {

/// Per-cycle event rates for one kernel on one core configuration.
struct EventSignature {
  double cycles_per_iter = 0.0;

  // One rate per EventCounts field (events per cycle).  The authoritative
  // rate-to-counter mapping is the field table in
  // src/power2/field_table.hpp; scaling and store I/O iterate that table
  // rather than naming these members.
  double fxu0_inst = 0, fxu1_inst = 0;
  double dcache_miss = 0, tlb_miss = 0;
  double fpu0_inst = 0, fpu1_inst = 0;
  double fp_add0 = 0, fp_add1 = 0;
  double fp_mul0 = 0, fp_mul1 = 0;
  double fp_div0 = 0, fp_div1 = 0;
  double fp_fma0 = 0, fp_fma1 = 0;
  double icu_type1 = 0, icu_type2 = 0;
  double icache_reload = 0, dcache_reload = 0, dcache_store = 0;
  double memory_inst = 0, quad_inst = 0;
  double stall_dcache = 0, stall_tlb = 0;

  double flops_per_cycle() const {
    return fp_add0 + fp_add1 + fp_mul0 + fp_mul1 + fp_div0 + fp_div1 +
           fp_fma0 + fp_fma1;
  }
  double instructions_per_cycle() const {
    return fxu0_inst + fxu1_inst + fpu0_inst + fpu1_inst + icu_type1 +
           icu_type2;
  }
  double mflops(double clock_hz = telemetry::kClockHz) const {
    return flops_per_cycle() * clock_hz / 1e6;
  }

  /// Scales the signature to event totals over `cycles` busy cycles.
  /// Each field rounds independently via llround; the result for a given
  /// (signature, cycles) pair is deterministic and platform-stable.
  P2SIM_PAR_SAFE EventCounts scale(double cycles) const;

  /// Accumulating form: adds the scaled totals for `cycles` busy cycles
  /// into `ev` (table fields only — `ev.cycles` is the caller's business).
  /// `scale` is `scale_into` on a zeroed EventCounts plus the cycle count.
  P2SIM_PAR_SAFE void scale_into(double cycles, EventCounts& ev) const;

  bool operator==(const EventSignature&) const = default;

  /// Checkpoint support (field-table driven, like the store I/O).
  void save_ckpt(util::CkptWriter& w) const;
  void restore_ckpt(util::CkptReader& r);
};

/// Derives a signature by running the kernel on a core.
EventSignature measure_signature(Power2Core& core, const KernelDesc& kernel);

/// One kernel measured without touching the telemetry session: the derived
/// signature plus the raw run and wall duration needed for the deferred
/// telemetry replay (Power2Core::note_kernel_run).
struct QuietMeasurement {
  EventSignature sig;
  RunResult run;
  std::int64_t wall_us = 0;
};

/// Measures a kernel's signature on a fresh worker-private core (a fresh
/// core is exactly the reset state measure_signature establishes) and emits
/// no telemetry — the parallel half of batched signature measurement.  The
/// result is bit-identical to measure_signature on a fresh core, in any
/// thread, in any order.
P2SIM_PAR_SAFE QuietMeasurement measure_quiet(const CoreConfig& core_cfg,
                                              const KernelDesc& kernel);

/// Optional persistence for SignatureCache: a versioned on-disk store keyed
/// by kernel-content hash and guarded by a core-config hash, so repeated
/// campaigns and benches skip the cycle-accurate cold start.  Empty path
/// disables persistence.
struct SignatureStoreConfig {
  std::string path;
  bool read = true;   ///< load the store (if present) at construction
  bool write = true;  ///< persist newly measured signatures on flush()
};

/// Memoizes signatures by (kernel content hash, core config).  The
/// nine-month run touches a few dozen kernel variants thousands of times;
/// each is simulated once — or zero times when the persistent store
/// already has it.
///
/// Two-level design.  Level 1 is an immutable sorted snapshot, readable
/// lock-free; it is (re)published only by the constructor's store load and
/// by `warm()`, both setup-phase operations that must not race concurrent
/// `get()` calls.  Level 2 is the mutex-guarded overflow map for kernels
/// first seen after warm-up.  Entries are pointer-stable for the cache's
/// lifetime in both levels, so callers may hold `const EventSignature*`
/// across intervals.
class SignatureCache {
 public:
  explicit SignatureCache(const CoreConfig& core_cfg = {},
                          SignatureStoreConfig store = {});

  /// Returns the signature, measuring it on first use.
  P2SIM_SERIAL_ONLY const EventSignature& get(const KernelDesc& kernel);

  /// Pre-measures every kernel in `kernels` (skipping known ones) and
  /// publishes the whole cache — store hits included — as the lock-free
  /// snapshot.  Call once during driver setup, before worker threads run;
  /// not safe concurrently with get().
  P2SIM_SERIAL_ONLY void warm(const std::vector<KernelDesc>& kernels);

  /// Writes newly measured signatures back to the persistent store.
  /// Returns false when a configured write fails; true otherwise
  /// (including when persistence is disabled or nothing is dirty).
  P2SIM_SERIAL_ONLY bool flush();

  /// True when the kernel's signature is already cached (either level).
  bool contains(const KernelDesc& kernel) const;

  /// The core configuration measurements run under; workers pass it to
  /// measure_quiet so batch and on-demand measurement are interchangeable.
  const CoreConfig& core_config() const { return core_cfg_; }

  /// Batched measurement, step 1 (serial): the sublist of `kernels` that
  /// still needs measuring — unknown to the cache, deduplicated by content
  /// hash, in first-appearance order.  The caller measures the plan's
  /// entries with measure_quiet (typically in parallel) and hands the
  /// results to adopt_batch.
  P2SIM_SERIAL_ONLY std::vector<KernelDesc> plan_batch(
      const std::vector<KernelDesc>& kernels) const;

  /// Batched measurement, step 2 (serial): adopts results[i] as the
  /// signature of plan[i] and replays the deferred kernel-run telemetry in
  /// plan order — the same order the on-demand path would have emitted it,
  /// so exports stay byte-identical.
  P2SIM_SERIAL_ONLY void adopt_batch(
      const std::vector<KernelDesc>& plan,
      const std::vector<QuietMeasurement>& results);

  std::size_t size() const;

  /// Observability for tests and benches (values are point-in-time).
  struct Stats {
    std::uint64_t snapshot_hits = 0;  ///< lock-free level-1 hits
    std::uint64_t locked_hits = 0;    ///< level-2 map hits under the mutex
    std::uint64_t measured = 0;       ///< cold measurements actually run
    std::uint64_t store_loaded = 0;   ///< entries adopted from disk
    std::uint64_t store_corrupt_lines = 0;  ///< checksum/parse rejects
    bool store_rejected = false;  ///< whole store dropped (core-hash mismatch)
  };
  Stats stats() const;

  /// Checkpoint support: the measured/loaded signature set and the dirty
  /// flag round-trip; restore republishes the lock-free snapshot.  The
  /// restored cache then serves mid-campaign lookups exactly as the
  /// original process would have (re-measurements are deterministic, so a
  /// kernel first seen after the checkpoint re-measures identically).
  P2SIM_SERIAL_ONLY void save_ckpt(util::CkptWriter& w) const;
  P2SIM_SERIAL_ONLY void restore_ckpt(util::CkptReader& r);

 private:
  using SnapshotEntry = std::pair<std::uint64_t, const EventSignature*>;

  P2SIM_SERIAL_ONLY const EventSignature& measure_locked(
      std::uint64_t hash, const KernelDesc& kernel);
  P2SIM_SERIAL_ONLY void publish_snapshot_locked();

  CoreConfig core_cfg_;
  std::uint64_t core_hash_ = 0;
  SignatureStoreConfig store_;

  /// Level 1: sorted by hash, binary-searched without taking mu_.
  std::vector<SnapshotEntry> snapshot_;
  mutable std::atomic<std::uint64_t> snapshot_hits_{0};

  /// Level 2 (and backing storage for level 1 — std::map nodes are
  /// pointer-stable under insertion).
  mutable std::mutex mu_;
  std::map<std::uint64_t, EventSignature> by_hash_ P2SIM_GUARDED_BY(mu_);
  bool dirty_ P2SIM_GUARDED_BY(mu_) = false;
  Stats stats_ P2SIM_GUARDED_BY(mu_){};
};

}  // namespace p2sim::power2
