// Event signatures: the bridge between the cycle-approximate kernel engine
// (level A) and the interval-analytic workload engine (level B).
//
// A signature is a kernel's steady-state event production per CPU cycle, as
// measured by actually running the kernel through the core model.  The
// nine-month workload simulation then advances node counters by
// signature-rate x busy-cycles per 15-minute interval — the same
// quantization the real RS2HPM daemon imposed.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "src/power2/core.hpp"
#include "src/power2/event_counts.hpp"
#include "src/power2/kernel_desc.hpp"

namespace p2sim::power2 {

/// Per-cycle event rates for one kernel on one core configuration.
struct EventSignature {
  double cycles_per_iter = 0.0;

  // One rate per EventCounts field (events per cycle).
  double fxu0_inst = 0, fxu1_inst = 0;
  double dcache_miss = 0, tlb_miss = 0;
  double fpu0_inst = 0, fpu1_inst = 0;
  double fp_add0 = 0, fp_add1 = 0;
  double fp_mul0 = 0, fp_mul1 = 0;
  double fp_div0 = 0, fp_div1 = 0;
  double fp_fma0 = 0, fp_fma1 = 0;
  double icu_type1 = 0, icu_type2 = 0;
  double icache_reload = 0, dcache_reload = 0, dcache_store = 0;
  double memory_inst = 0, quad_inst = 0;
  double stall_dcache = 0, stall_tlb = 0;

  double flops_per_cycle() const {
    return fp_add0 + fp_add1 + fp_mul0 + fp_mul1 + fp_div0 + fp_div1 +
           fp_fma0 + fp_fma1;
  }
  double instructions_per_cycle() const {
    return fxu0_inst + fxu1_inst + fpu0_inst + fpu1_inst + icu_type1 +
           icu_type2;
  }
  double mflops(double clock_hz = telemetry::kClockHz) const {
    return flops_per_cycle() * clock_hz / 1e6;
  }

  /// Scales the signature to event totals over `cycles` busy cycles.
  /// Fractional events are accumulated via deterministic rounding with a
  /// caller-maintained residual: see `scale_into`.
  EventCounts scale(double cycles) const;
};

/// Derives a signature by running the kernel on a core.
EventSignature measure_signature(Power2Core& core, const KernelDesc& kernel);

/// Memoizes signatures by (kernel content hash, core config).  The
/// nine-month run touches a few dozen kernel variants thousands of times;
/// each is simulated once.
class SignatureCache {
 public:
  explicit SignatureCache(const CoreConfig& core_cfg = {});

  /// Returns the signature, measuring it on first use.
  const EventSignature& get(const KernelDesc& kernel);

  std::size_t size() const;

 private:
  CoreConfig core_cfg_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, EventSignature> by_hash_;
};

}  // namespace p2sim::power2
