#include "src/power2/core.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/check/invariants.hpp"
#include "src/telemetry/clock.hpp"
#include "src/telemetry/session.hpp"
#include "src/telemetry/trace.hpp"

namespace p2sim::power2 {
namespace {

/// Bytes of instruction text per body instruction (fixed 32-bit encoding).
constexpr std::uint64_t kInstBytes = 4;

}  // namespace

double RunResult::mflops(double clock_hz) const {
  if (counts.cycles == 0) return 0.0;
  const double flops_per_cycle = static_cast<double>(counts.flops()) /
                                 static_cast<double>(counts.cycles);
  return flops_per_cycle * clock_hz / 1e6;
}

Power2Core::Power2Core(const CoreConfig& cfg)
    : cfg_(cfg),
      dcache_(cfg.dcache),
      icache_(cfg.icache),
      tlb_(cfg.tlb),
      rng_(cfg.rng_seed) {
  if (cfg_.dispatch_width == 0) {
    throw std::invalid_argument("dispatch_width must be > 0");
  }
  if (cfg_.tlb_miss_min > cfg_.tlb_miss_max) {
    throw std::invalid_argument("tlb miss window inverted");
  }
}

void Power2Core::reset() {
  dcache_.flush();
  icache_.flush();
  tlb_.flush();
  fxu_free_[0] = fxu_free_[1] = 0;
  fpu_free_[0] = fpu_free_[1] = 0;
  icu_free_ = 0;
  fpu_rr_toggle_ = fxu_rr_toggle_ = false;
  pipe_cycle_ = 0;
  pipe_issued_ = 0;
  bound_kernel_ = nullptr;
}

void Power2Core::bind(const KernelDesc& kernel) {
  if (auto err = kernel.validate(); !err.empty()) {
    throw std::invalid_argument("kernel '" + kernel.name + "': " + err);
  }
  ready_cur_.assign(kernel.body.size(), 0);
  ready_prev_.assign(kernel.body.size(), 0);
  stream_cursor_.assign(kernel.streams.size(), 0);
  stream_base_.clear();
  stream_base_.reserve(kernel.streams.size());
  // Streams occupy disjoint page-aligned regions with a guard gap, so that
  // distinct arrays never alias in the cache by construction (conflict
  // misses still arise from set contention, as in reality).
  std::uint64_t next = 1ULL << 20;
  for (const MemStream& s : kernel.streams) {
    stream_base_.push_back(next);
    const std::uint64_t page = tlb_.config().page_bytes;
    const std::uint64_t span = (s.footprint_bytes + page - 1) / page * page;
    next += span + 16 * page;
  }
  bound_kernel_ = &kernel;
}

std::uint64_t Power2Core::run_iteration(const KernelDesc& kernel,
                                        std::uint64_t now, bool counting,
                                        EventCounts& ev) {
  // `issue_cycle` / `issued` implement the 4-wide ICU dispatch limit; they
  // persist across iterations (the loop branch does not reset the
  // dispatcher), so the width bound holds at iteration boundaries too.
  std::uint64_t& issue_cycle = pipe_cycle_;
  std::uint32_t& issued = pipe_issued_;
  if (now > issue_cycle) {
    issue_cycle = now;
    issued = 0;
  }

  const std::size_t n = kernel.body.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& in = kernel.body[i];
    if (counting) ev.dispatched_inst += 1;

    // Earliest issue: program order + dispatch slots + data dependencies.
    const std::uint64_t slot_earliest =
        issued >= cfg_.dispatch_width ? issue_cycle + 1 : issue_cycle;
    std::uint64_t earliest = slot_earliest;
    if (in.dep != kNoDep) {
      earliest = std::max(earliest, ready_cur_[static_cast<std::size_t>(in.dep)]);
    }
    if (in.carried_dep != kNoDep) {
      earliest = std::max(
          earliest, ready_prev_[static_cast<std::size_t>(in.carried_dep)]);
    }
    std::uint64_t issue_at = earliest;
    std::uint64_t ready = earliest + 1;
    int unit_used = 0;
    bool ev_dmiss = false;
    bool ev_tmiss = false;

    if (is_floating_point(in.op)) {
      int u;
      switch (cfg_.fpu_steering) {
        case FpuSteering::kFpu0First: {
          // Section 5 semantics: FPU0 is the default target; the stream
          // spills to FPU1 only while FPU0 is occupied (a multicycle op in
          // flight, or a same-cycle instruction already issued there).
          // Dependence-bound code therefore concentrates on FPU0 — by the
          // time a chained consumer can issue, FPU0 is idle again — while
          // independent bursts dual-issue and split evenly.  This is the
          // mechanism behind the paper's measured FPU0/FPU1 ratio of 1.7
          // and its note that high-ILP workloads sit closer to 1.
          if (fpu_free_[0] <= earliest) {
            u = 0;
          } else if (fpu_free_[1] <= earliest) {
            u = 1;
          } else {
            u = fpu_free_[0] <= fpu_free_[1] ? 0 : 1;
          }
          break;
        }
        case FpuSteering::kRoundRobin:
          u = fpu_rr_toggle_ ? 1 : 0;
          fpu_rr_toggle_ = !fpu_rr_toggle_;
          break;
        case FpuSteering::kEarliestFree:
        default:
          u = fpu_free_[0] <= fpu_free_[1] ? 0 : 1;
          break;
      }
      issue_at = std::max(earliest, fpu_free_[u]);
      fpu_free_[u] = issue_at + static_cast<std::uint64_t>(fp_busy(in.op));
      ready = issue_at + static_cast<std::uint64_t>(fp_latency(in.op));
      unit_used = u;
      if (counting) {
        (u == 0 ? ev.fpu0_inst : ev.fpu1_inst) += 1;
        switch (in.op) {
          case OpClass::kFpAdd:
            (u == 0 ? ev.fp_add0 : ev.fp_add1) += 1;
            break;
          case OpClass::kFpMul:
            (u == 0 ? ev.fp_mul0 : ev.fp_mul1) += 1;
            break;
          case OpClass::kFpDiv:
            (u == 0 ? ev.fp_div0 : ev.fp_div1) += 1;
            break;
          case OpClass::kFpFma:
            // The fma multiply lands in the fma counter and its add in the
            // add counter (paper, section 5).
            (u == 0 ? ev.fp_fma0 : ev.fp_fma1) += 1;
            (u == 0 ? ev.fp_add0 : ev.fp_add1) += 1;
            break;
          case OpClass::kFpSqrt:
            break;  // no dedicated HPM operation counter
          default:
            break;
        }
      }
    } else if (is_fixed_point(in.op)) {
      int u;
      const bool fxu1_only =
          in.op == OpClass::kFxAddrMul || in.op == OpClass::kFxAddrDiv;
      if (fxu1_only) {
        u = 1;  // "FXU1 has the sole responsibility for divide and multiply"
      } else {
        switch (cfg_.fxu_steering) {
          case FxuSteering::kFxu1Preferred:
            if (fxu_free_[1] <= earliest) {
              u = 1;
            } else if (fxu_free_[0] <= earliest) {
              u = 0;
            } else {
              u = fxu_free_[1] <= fxu_free_[0] ? 1 : 0;
            }
            break;
          case FxuSteering::kRoundRobin:
          default:
            u = fxu_rr_toggle_ ? 1 : 0;
            fxu_rr_toggle_ = !fxu_rr_toggle_;
            break;
        }
      }
      issue_at = std::max(earliest, fxu_free_[u]);
      unit_used = u;
      std::uint64_t busy = 1;
      // Address multiply/divide are multicycle on FXU1.
      if (in.op == OpClass::kFxAddrMul) busy = 3;
      if (in.op == OpClass::kFxAddrDiv) busy = 13;
      ready = issue_at + busy;

      std::uint64_t halt = 0;
      if (is_memory(in.op)) {
        MemStream const& s = kernel.streams[in.stream];
        std::uint64_t& cur = stream_cursor_[in.stream];
        const std::uint64_t addr = stream_base_[in.stream] + cur;
        // Advance the cursor, wrapping within the footprint (negative
        // strides walk backwards).
        const std::int64_t fp = static_cast<std::int64_t>(s.footprint_bytes);
        std::int64_t nxt = (static_cast<std::int64_t>(cur) + s.stride_bytes) % fp;
        if (nxt < 0) nxt += fp;
        cur = static_cast<std::uint64_t>(nxt);

        const bool is_store = in.op == OpClass::kFxStore;
        if (!tlb_.access(addr)) {
          const std::uint64_t pen =
              cfg_.tlb_miss_min +
              rng_.below(cfg_.tlb_miss_max - cfg_.tlb_miss_min + 1);
          halt += pen;
          ev_tmiss = true;
          if (counting) {
            ev.tlb_miss += 1;
            ev.stall_tlb += pen;
          }
        }
        const CacheAccess acc = dcache_.access(addr, is_store);
        if (!acc.hit) {
          ev_dmiss = true;
          halt += cfg_.dcache_miss_halt;
          if (counting) {
            ev.dcache_miss += 1;
            ev.stall_dcache += cfg_.dcache_miss_halt;
          }
          // FXU0 performs the directory search / refill bookkeeping for
          // misses, holding its pipe for the halt duration.
          fxu_free_[0] = std::max(fxu_free_[0], issue_at + halt);
        }
        if (counting) {
          if (acc.reload) ev.dcache_reload += 1;
          if (acc.dirty_evict) ev.dcache_store += 1;
          ev.memory_inst += 1;
          if (in.quad) ev.quad_inst += 1;
        }
        ready += halt;
      }
      fxu_free_[u] = issue_at + busy;
      if (counting) (u == 0 ? ev.fxu0_inst : ev.fxu1_inst) += 1;

      if (halt > 0) {
        // "Execution may halt ... while the reference is satisfied."
        issue_cycle = issue_at + halt;
        issued = 0;
        ready_cur_[i] = ready;
        if (trace_sink_ != nullptr) {
          trace_sink_->events.push_back(
              {trace_iteration_, static_cast<std::uint16_t>(i), in.op,
               static_cast<std::uint8_t>(unit_used), issue_at, ready,
               ev_dmiss, ev_tmiss});
        }
        continue;
      }
    } else {
      // ICU: branches and condition-register ops, one per cycle.
      issue_at = std::max(earliest, icu_free_);
      icu_free_ = issue_at + 1;
      ready = issue_at + 1;
      if (counting) {
        (in.op == OpClass::kBranch ? ev.icu_type1 : ev.icu_type2) += 1;
      }
    }

    if (issue_at > issue_cycle) {
      issue_cycle = issue_at;
      issued = 1;
    } else {
      ++issued;
    }
    ready_cur_[i] = ready;
    if (trace_sink_ != nullptr) {
      trace_sink_->events.push_back(
          {trace_iteration_, static_cast<std::uint16_t>(i), in.op,
           static_cast<std::uint8_t>(unit_used), issue_at, ready, ev_dmiss,
           ev_tmiss});
    }
  }

  // Occasional I-cache refill beyond the steady-state loop (subroutine-rich
  // codes); drawn per iteration from the kernel's pressure parameter.
  if (kernel.icache_miss_per_kinst > 0.0) {
    const double p = kernel.icache_miss_per_kinst *
                     static_cast<double>(kernel.body.size()) / 1000.0;
    if (rng_.chance(std::min(p, 1.0))) {
      if (counting) ev.icache_reload += 1;
      issue_cycle += cfg_.dcache_miss_halt;
    }
  }

  std::swap(ready_cur_, ready_prev_);
  return issue_cycle;
}

std::string IssueTrace::format(std::size_t max_events) const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %5s %5s %-12s %4s %10s %10s %s\n",
                "iter", "idx", "op", "unit", "issue", "ready", "events");
  out += buf;
  std::size_t n = 0;
  for (const IssueEvent& e : events) {
    if (n++ >= max_events) {
      out += "  ... (truncated)\n";
      break;
    }
    std::snprintf(buf, sizeof(buf), "  %5u %5u %-12s %4u %10llu %10llu %s%s\n",
                  e.iteration, e.body_index,
                  std::string(op_name(e.op)).c_str(), e.unit,
                  static_cast<unsigned long long>(e.issue_cycle),
                  static_cast<unsigned long long>(e.ready_cycle),
                  e.dcache_miss ? "D$miss " : "", e.tlb_miss ? "TLBmiss" : "");
    out += buf;
  }
  return out;
}

IssueTrace Power2Core::trace(const KernelDesc& kernel,
                             std::uint32_t iterations) {
  bind(kernel);
  IssueTrace t;
  EventCounts scratch;
  std::uint64_t now = std::max({fxu_free_[0], fxu_free_[1], fpu_free_[0],
                                fpu_free_[1], icu_free_, pipe_cycle_});
  t.start_cycle = now;
  trace_sink_ = &t;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    trace_iteration_ = it;
    now = run_iteration(kernel, now, /*counting=*/false, scratch);
  }
  trace_sink_ = nullptr;
  t.end_cycle = now;
  return t;
}

RunResult Power2Core::run(const KernelDesc& kernel) {
  return run(kernel, kernel.measure_iters);
}

RunResult Power2Core::run(const KernelDesc& kernel,
                          std::uint64_t measure_iters) {
  std::int64_t wall_us = 0;
  RunResult out = run_counted(kernel, measure_iters, &wall_us);
  note_kernel_run(out, wall_us);
  return out;
}

RunResult Power2Core::run_counted(const KernelDesc& kernel,
                                  std::uint64_t measure_iters,
                                  std::int64_t* wall_us_out) {
  const std::int64_t wall_begin_us = telemetry::wall_now_us();
  bind(kernel);

  EventCounts scratch;
  std::uint64_t now = std::max({fxu_free_[0], fxu_free_[1], fpu_free_[0],
                                fpu_free_[1], icu_free_});

  // Compulsory I-cache fill of the loop body text.
  const std::uint64_t body_bytes = kernel.body.size() * kInstBytes;
  const std::uint64_t ibase = 1ULL << 30;
  std::uint64_t ireloads = 0;
  for (std::uint64_t off = 0; off < body_bytes;
       off += icache_.config().line_bytes) {
    if (!icache_.access(ibase + off, /*is_store=*/false).hit) ++ireloads;
  }
  now += ireloads * cfg_.dcache_miss_halt;

  for (std::uint64_t it = 0; it < kernel.warmup_iters; ++it) {
    now = run_iteration(kernel, now, /*counting=*/false, scratch);
  }

  EventCounts ev;
  ev.icache_reload += ireloads;
  const std::uint64_t start = now;
  for (std::uint64_t it = 0; it < measure_iters; ++it) {
    now = run_iteration(kernel, now, /*counting=*/true, ev);
  }
  ev.cycles = now - start;

  // Retire-batch audit: the accumulated counts of a measured run must obey
  // every cross-counter identity exactly (no scaling involved here).
  P2SIM_AUDIT_EVENTS(ev, kExact, "power2::Power2Core::run");
  P2SIM_INVARIANT(
      ev.instructions() <=
          (ev.cycles + 1) * static_cast<std::uint64_t>(cfg_.dispatch_width),
      "ICU dispatch width bounds completed instructions per cycle");

  RunResult out;
  out.counts = ev;
  out.iterations = measure_iters;
  if (wall_us_out != nullptr) {
    *wall_us_out = telemetry::wall_now_us() - wall_begin_us;
  }
  return out;
}

void Power2Core::note_kernel_run(const RunResult& result,
                                 std::int64_t wall_us) {
  // Telemetry: kernel runs are not on the campaign clock, so their spans
  // advance the session's dedicated engine timeline by each run's simulated
  // duration.  The cycle histogram is deterministic; the throughput
  // histogram is wall-clock-fed and flagged as such.
  if (auto* tel = telemetry::current()) {
    const std::uint64_t cycles = result.counts.cycles;
    const double sim_s = telemetry::seconds_from_cycles(cycles);
    auto span =
        telemetry::span("power2", "kernel_run", tel->engine_clock_s);
    span.arg("iterations", static_cast<double>(result.iterations));
    span.arg("cycles", static_cast<double>(cycles));
    tel->engine_clock_s += sim_s;
    span.close(tel->engine_clock_s);
    tel->registry
        .histogram("p2sim_core_run_cycles",
                   "Simulated cycles per measured kernel run",
                   telemetry::exponential_buckets(1e3, 10.0, 7))
        .observe(static_cast<double>(cycles));
    if (wall_us > 0) {
      tel->registry
          .histogram("p2sim_core_cycles_per_wall_second",
                     "Engine throughput: simulated cycles per wall second",
                     telemetry::exponential_buckets(1e6, 10.0, 7),
                     /*wall_clock=*/true)
          .observe(static_cast<double>(cycles) * 1e6 /
                   static_cast<double>(wall_us));
    }
  }
}

}  // namespace p2sim::power2
