#include "src/power2/mix_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace p2sim::power2 {
namespace {

int count_from(double per_iter, util::Xoshiro256StarStar& rng) {
  // Deterministic stochastic rounding: 1.4/iter becomes 1 or 2.
  const double fl = std::floor(per_iter);
  int n = static_cast<int>(fl);
  if (rng.chance(per_iter - fl)) ++n;
  return n;
}

}  // namespace

KernelDesc make_mix_kernel(const MixKernelSpec& spec) {
  if (spec.fp_inst < 0) throw std::invalid_argument("fp_inst < 0");
  if (spec.streams <= 0) throw std::invalid_argument("streams must be >= 1");
  util::Xoshiro256StarStar rng(spec.seed ^ 0xA5A5A5A5ULL);

  KernelBuilder b(spec.name);
  std::vector<std::uint8_t> stream_ids;
  stream_ids.reserve(static_cast<std::size_t>(spec.streams));
  for (int s = 0; s < spec.streams; ++s) {
    stream_ids.push_back(
        b.stream(spec.stream_footprint_bytes, spec.stride_bytes));
  }

  const int n_fp = spec.fp_inst;
  const int n_mem = static_cast<int>(
      std::llround(spec.mem_per_fp * static_cast<double>(n_fp)));
  const int n_store = static_cast<int>(
      std::llround(spec.store_frac * static_cast<double>(n_mem)));
  const int n_load = n_mem - n_store;

  // Type assignment for FP ops, then shuffled so types interleave.
  std::vector<OpClass> fp_ops;
  fp_ops.reserve(static_cast<std::size_t>(n_fp));
  const int n_fma = static_cast<int>(std::llround(spec.fma_frac * n_fp));
  const int n_mul = static_cast<int>(std::llround(spec.mul_frac * n_fp));
  // Divide/sqrt fractions are small (a few percent); stochastic rounding
  // lets them appear in part of the kernel population instead of vanishing
  // in every body shorter than 1/frac instructions.
  const int n_div = count_from(spec.div_frac * n_fp, rng);
  const int n_sqrt = count_from(spec.sqrt_frac * n_fp, rng);
  for (int i = 0; i < n_fma && static_cast<int>(fp_ops.size()) < n_fp; ++i)
    fp_ops.push_back(OpClass::kFpFma);
  for (int i = 0; i < n_mul && static_cast<int>(fp_ops.size()) < n_fp; ++i)
    fp_ops.push_back(OpClass::kFpMul);
  for (int i = 0; i < n_div && static_cast<int>(fp_ops.size()) < n_fp; ++i)
    fp_ops.push_back(OpClass::kFpDiv);
  for (int i = 0; i < n_sqrt && static_cast<int>(fp_ops.size()) < n_fp; ++i)
    fp_ops.push_back(OpClass::kFpSqrt);
  while (static_cast<int>(fp_ops.size()) < n_fp)
    fp_ops.push_back(OpClass::kFpAdd);
  // Fisher-Yates with the kernel's own stream.
  for (std::size_t i = fp_ops.size(); i > 1; --i) {
    std::swap(fp_ops[i - 1], fp_ops[rng.below(i)]);
  }

  // Emit an interleaved load/compute pattern, which is how compiled CFD
  // inner loops schedule: operands stream in just ahead of their use.
  int loads_left = n_load;
  int fps_left = n_fp;
  std::size_t fp_idx = 0;
  std::int16_t last_load = kNoDep;
  std::int16_t last_fp = kNoDep;
  std::vector<std::int16_t> fp_indices;
  fp_indices.reserve(static_cast<std::size_t>(n_fp));
  int next_stream = 0;

  auto emit_load = [&]() {
    const bool quad = rng.chance(spec.quad_frac);
    last_load = b.load(stream_ids[static_cast<std::size_t>(next_stream)], quad);
    next_stream = (next_stream + 1) % spec.streams;
    --loads_left;
  };
  auto emit_fp = [&]() {
    const OpClass op = fp_ops[fp_idx++];
    std::int16_t dep = kNoDep;
    std::int16_t carried = kNoDep;
    if (last_fp != kNoDep && rng.chance(spec.dep_prob)) {
      if (!fp_indices.empty() && rng.chance(spec.carried_prob)) {
        carried = fp_indices[rng.below(fp_indices.size())];
      } else {
        dep = last_fp;
      }
    } else if (last_load != kNoDep && rng.chance(spec.load_dep_prob)) {
      dep = last_load;
    }
    std::int16_t idx;
    switch (op) {
      case OpClass::kFpFma:
        idx = b.fma(dep, carried);
        break;
      case OpClass::kFpMul:
        idx = b.fp_mul(dep, carried);
        break;
      case OpClass::kFpDiv:
        idx = b.fp_div(dep);
        break;
      case OpClass::kFpSqrt:
        idx = b.fp_sqrt(dep);
        break;
      default:
        idx = b.fp_add(dep, carried);
        break;
    }
    last_fp = idx;
    fp_indices.push_back(idx);
    --fps_left;
  };

  while (loads_left > 0 || fps_left > 0) {
    // Keep the load/FP cadence proportional so neither runs out early.
    const bool prefer_load =
        loads_left > 0 &&
        (fps_left == 0 ||
         static_cast<double>(loads_left) / (loads_left + fps_left) >=
             rng.uniform());
    if (prefer_load) {
      emit_load();
    } else {
      emit_fp();
    }
  }

  // Integer overhead, stores of the results, loop control.
  const int n_alu = count_from(spec.alu_per_iter, rng);
  for (int i = 0; i < n_alu; ++i) b.alu();
  const int n_amul = count_from(spec.addr_mul_per_iter, rng);
  for (int i = 0; i < n_amul; ++i) b.addr_mul();
  for (int i = 0; i < n_store; ++i) {
    const bool quad = rng.chance(spec.quad_frac);
    b.store(stream_ids[static_cast<std::size_t>(next_stream)], quad);
    next_stream = (next_stream + 1) % spec.streams;
  }
  const int n_cr = count_from(spec.condreg_per_iter, rng);
  for (int i = 0; i < n_cr; ++i) b.cond_reg();

  b.warmup(spec.warmup_iters)
      .measure(spec.measure_iters)
      .icache_pressure(spec.icache_miss_per_kinst);
  return b.build();
}

}  // namespace p2sim::power2
