// Vectorized scan/query layer over campaign tables.
//
// A TableSource streams decoded column batches in row order; the query
// kernels below run dense loops over those batches with no per-row
// virtual dispatch and no string parsing.  Two source families exist:
//
//   ArchiveTableSource  — chunks of a columnar archive, with predicate
//                         pushdown (a chunk whose footer min/max proves
//                         no row can match is skipped undecoded) and
//                         column pruning (only requested columns decode);
//   Memory*Source       — in-memory records flattened through the same
//                         row-extraction code as the writer: the text
//                         path's oracle.
//
// Byte-identity contract: pruning is applied only when a chunk's
// statistics *prove* no row matches, and every kernel filters per row and
// accumulates strictly in row order.  Results are therefore bit-identical
// doubles regardless of source, chunking or pruning — the property the
// query-vs-oracle tests pin down.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/archive/reader.hpp"
#include "src/pbs/accounting.hpp"
#include "src/rs2hpm/daemon.hpp"

namespace p2sim::archive {

/// What a scan touched and what pushdown saved it from touching.
struct ScanStats {
  std::int64_t chunks_scanned = 0;
  std::int64_t chunks_pruned = 0;
  std::int64_t chunks_skipped = 0;  ///< rotted chunks (recovering scans)
  std::int64_t rows_scanned = 0;
  std::int64_t rows_pruned = 0;

  void merge(const ScanStats& o) {
    chunks_scanned += o.chunks_scanned;
    chunks_pruned += o.chunks_pruned;
    chunks_skipped += o.chunks_skipped;
    rows_scanned += o.rows_scanned;
    rows_pruned += o.rows_pruned;
  }
};

/// One decoded batch: `cols[i]` holds the i-th *requested* column's
/// values (spans stay valid only for the callback's duration).
struct Batch {
  std::uint32_t rows = 0;
  std::vector<std::span<const std::uint64_t>> cols;
};

using BatchFn = std::function<void(const Batch&)>;

/// Returns true only when the chunk's statistics PROVE no row matches
/// (sound pruning); the stats span is in schema order.  Sources without
/// statistics never call it.
using PruneFn = std::function<bool(std::span<const ChunkStats>)>;

class TableSource {
 public:
  virtual ~TableSource() = default;
  virtual TableKind kind() const = 0;
  virtual std::uint64_t rows() const = 0;
  /// Streams decoded batches of `cols` (schema column indices) in row
  /// order.  `prune` may be null.
  virtual ScanStats scan(std::span<const std::uint32_t> cols,
                         const PruneFn& prune, const BatchFn& fn) const = 0;
};

/// Scans one table of an archive.  With a report, a chunk whose column
/// payloads fail their checksum is skipped-and-reported mid-scan; without
/// one the scan throws ArchiveError (strict).
class ArchiveTableSource final : public TableSource {
 public:
  ArchiveTableSource(const ArchiveReader& reader, TableKind kind,
                     ArchiveReport* report = nullptr)
      : reader_(&reader), kind_(kind), report_(report) {}

  TableKind kind() const override { return kind_; }
  std::uint64_t rows() const override { return reader_->rows(kind_); }
  ScanStats scan(std::span<const std::uint32_t> cols, const PruneFn& prune,
                 const BatchFn& fn) const override;

 private:
  const ArchiveReader* reader_;
  TableKind kind_;
  ArchiveReport* report_;
};

/// Oracle source over in-memory interval records (the text path's data,
/// flattened through the writer's own row extraction).
class MemoryIntervalSource final : public TableSource {
 public:
  explicit MemoryIntervalSource(
      std::span<const rs2hpm::IntervalRecord> records);

  TableKind kind() const override { return TableKind::kIntervals; }
  std::uint64_t rows() const override { return rows_; }
  ScanStats scan(std::span<const std::uint32_t> cols, const PruneFn& prune,
                 const BatchFn& fn) const override;

 private:
  std::uint64_t rows_ = 0;
  std::vector<std::vector<std::uint64_t>> cols_;
};

/// Oracle source over in-memory job records.
class MemoryJobSource final : public TableSource {
 public:
  explicit MemoryJobSource(std::span<const pbs::JobRecord> records);

  TableKind kind() const override { return TableKind::kJobs; }
  std::uint64_t rows() const override { return rows_; }
  ScanStats scan(std::span<const std::uint32_t> cols, const PruneFn& prune,
                 const BatchFn& fn) const override;

 private:
  std::uint64_t rows_ = 0;
  std::vector<std::vector<std::uint64_t>> cols_;
};

// --- query kernels --------------------------------------------------------
//
// Each kernel takes one or more job-table sources (a multi-archive query
// scans them in order, as one concatenated table) and mirrors the
// corresponding analysis-layer arithmetic operation for operation, so its
// doubles match analysis::user_stats / DerivedRates bit for bit.

/// Paper section 6: who the machine's node-hours actually went to.
struct TopUsersResult {
  struct Row {
    std::int32_t user_id = 0;
    std::int64_t jobs = 0;
    double node_hours = 0.0;
    double mflops_per_node = 0.0;       ///< time-weighted mean
    double best_mflops_per_node = 0.0;
  };
  std::vector<Row> rows;  ///< descending node-hours, capped at `top_n`
  std::int64_t jobs_analyzed = 0;
  ScanStats scan;
};
TopUsersResult top_users(
    std::span<const TableSource* const> jobs, std::size_t top_n,
    double min_walltime_s = pbs::kMinAnalyzedWalltimeS);

/// Paper section 5/6: cache-miss-ratio distribution for jobs of one size.
struct MissRatioResult {
  static constexpr std::size_t kBuckets = 16;
  static constexpr double kBucketWidth = 0.0025;  ///< covers [0, 0.04)

  int nodes = 0;
  std::int64_t jobs = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// hist[i] counts ratios in [i*width, (i+1)*width); the extra slot
  /// counts the overflow tail.
  std::array<std::int64_t, kBuckets + 1> hist{};
  ScanStats scan;
};
MissRatioResult miss_ratio_distribution(
    std::span<const TableSource* const> jobs, int nodes,
    double min_walltime_s = pbs::kMinAnalyzedWalltimeS);

/// Paper section 7: jobs whose system-mode FXU share signals paging.
struct PagingResult {
  struct Row {
    std::int64_t job_id = 0;
    std::int32_t user_id = 0;
    std::int64_t nodes = 0;
    double walltime_s = 0.0;
    double ratio = 0.0;  ///< system FXU / user FXU over the job
  };
  double threshold = 0.0;
  std::int64_t jobs_analyzed = 0;
  std::vector<Row> rows;  ///< descending ratio, capped
  ScanStats scan;
};
PagingResult paging_suspects(
    std::span<const TableSource* const> jobs, double threshold = 0.5,
    std::size_t max_rows = 20,
    double min_walltime_s = pbs::kMinAnalyzedWalltimeS);

/// Whole-column aggregate with no filter — the minimal single-column scan
/// (and the bench's scan-throughput kernel).
struct ColumnAggregate {
  std::string column;
  ColumnKind value_kind = ColumnKind::kU64;
  std::uint64_t rows = 0;
  std::uint64_t sum = 0;      ///< wrapping, over raw values (u64/i64)
  double dsum = 0.0;          ///< row-order double sum (f64 columns)
  std::uint64_t min_raw = 0;
  std::uint64_t max_raw = 0;
  ScanStats scan;
};
/// False when `column` is not in the source's schema.
bool aggregate_column(const TableSource& source, std::string_view column,
                      ColumnAggregate* out);

// --- renderers ------------------------------------------------------------
//
// Stable text renderings (shortest round-trip doubles) shared by the CLI,
// the bench and the equality tests: equal results render equal bytes.
// Scan statistics are rendered separately — they legitimately differ
// between an archive scan and its oracle, the query results never do.

std::string render_scan_stats(const ScanStats& s);
std::string render_top_users(const TopUsersResult& r);
std::string render_miss_ratio(const MissRatioResult& r);
std::string render_paging(const PagingResult& r);
std::string render_aggregate(const ColumnAggregate& r);

}  // namespace p2sim::archive
