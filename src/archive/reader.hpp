// Archive reader: framing, recovery and column decode.
//
// open() loads the file once and frames it into chunks.  A valid footer
// marks the archive *committed* and supplies the chunk directory with
// per-column min/max statistics (the scan layer's pruning input).  A
// missing or rotted footer means the writer died mid-file: the reader
// falls back to walking the chunk frames from the front, keeping every
// intact chunk — the binary analog of record_io's clean-truncation
// verdict.  Either way a chunk whose header checksum fails is skipped and
// reported, never trusted.
//
// Column payloads are verified lazily: decode_column() checks the
// payload's word-wise FNV before decoding, so a scan that prunes columns
// verifies exactly the bytes it reads, and a full load (every column)
// catches a flip anywhere in the chunk.  Strict mode (no report) throws
// ArchiveError at the first defect, mirroring record_io's strict loads.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/archive/format.hpp"

namespace p2sim::archive {

/// Raised on any malformed archive byte: bad magic, rotted chunk or
/// footer, truncated or overlong column payload.
class ArchiveError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What a recovering open/scan found wrong, chunk by chunk — the binary
/// sibling of analysis::ParseReport.
struct ArchiveReport {
  struct Issue {
    std::int64_t chunk = 0;  ///< chunk ordinal in file order (0-based)
    std::string what;
  };
  /// Offending chunks to attach with their reason; `chunks_skipped`
  /// always counts every bad chunk (set before the load; <= 0 keeps
  /// none).
  std::int64_t max_issues = 5;
  std::int64_t chunks_total = 0;
  std::int64_t chunks_loaded = 0;
  std::int64_t chunks_skipped = 0;
  std::int64_t rows_loaded = 0;
  std::int64_t rows_skipped = 0;  ///< rows inside skipped chunks
  std::vector<Issue> issues;

  /// True when a valid footer closed the file.  A committed archive can
  /// still carry rotted chunks (bit rot after commit) — they are counted
  /// above.
  bool committed = false;
  /// True when the footer was missing or rotted: the writer died before
  /// the commit (drop the tail, keep every intact chunk).
  bool truncated = false;

  bool clean() const { return chunks_skipped == 0; }
};

/// Renders an archive report for logs ("loaded 12/13 chunks; ...").
std::string format_archive_report(const ArchiveReport& report);

/// Tallies one skipped chunk into `report` and bumps the
/// p2sim_archive_chunks_skipped_total counter; with report == nullptr
/// (strict mode) throws ArchiveError instead.  Shared by the reader's
/// framing and the scan layer's per-chunk decode.
void note_archive_skip(ArchiveReport* report, std::int64_t chunk,
                       std::int64_t rows, const std::string& why);

/// One framed chunk, ready for column decode.
struct ChunkView {
  TableKind kind = TableKind::kIntervals;
  std::uint32_t rows = 0;
  /// Per-column directory, in schema order.
  struct Column {
    Encoding encoding = Encoding::kRaw64;
    std::uint32_t bytes = 0;
    std::uint64_t checksum = 0;
    std::uint64_t payload_offset = 0;  ///< absolute offset into the file
  };
  std::vector<Column> cols;
  /// Per-column min/max from the footer directory; empty when the chunk
  /// was recovered without a footer.
  std::vector<ChunkStats> stats;
};

class ArchiveReader {
 public:
  /// Frames `path`.  With report == nullptr any defect throws
  /// ArchiveError; with a report, corrupt chunks are skipped-and-reported
  /// and an uncommitted file is recovered chunk by chunk.
  static ArchiveReader open(const std::string& path,
                            ArchiveReport* report = nullptr);
  /// Same, over an in-memory image (tests, benches).
  static ArchiveReader from_bytes(std::string bytes,
                                  ArchiveReport* report = nullptr);

  const std::vector<ChunkView>& chunks(TableKind kind) const {
    return chunks_[static_cast<std::size_t>(kind)];
  }
  /// Rows across the loadable chunks of a table.
  std::uint64_t rows(TableKind kind) const;
  /// Total file bytes (compression accounting).
  std::uint64_t file_bytes() const { return data_.size(); }

  /// Decodes one column into `out` (resized to the chunk's rows).
  /// Throws ArchiveError on a checksum mismatch or malformed payload.
  void decode_column(const ChunkView& chunk, std::uint32_t col,
                     std::vector<std::uint64_t>* out) const;

 private:
  explicit ArchiveReader(std::string data) : data_(std::move(data)) {}
  void frame(ArchiveReport* report);
  bool frame_footer(ArchiveReport* report);
  void frame_recovery(ArchiveReport* report);
  /// Parses + validates the chunk frame at `offset`; returns false (with
  /// `why`) instead of throwing so recovery can resync.
  bool frame_chunk(std::uint64_t offset, std::uint64_t bytes_limit,
                   ChunkView* out, std::uint64_t* frame_bytes,
                   std::string* why) const;

  std::string data_;
  std::array<std::vector<ChunkView>, kNumTables> chunks_{};
};

}  // namespace p2sim::archive
