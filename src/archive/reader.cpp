#include "src/archive/reader.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/telemetry/session.hpp"
#include "src/util/checksum.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::archive {
namespace {

/// Fixed chunk header: magic + kind + rows + ncols.
constexpr std::uint64_t kChunkHeadBytes = 4 + 1 + 4 + 4;
/// Per-column directory entry: encoding + bytes + checksum.
constexpr std::uint64_t kDirEntryBytes = 1 + 4 + 8;

}  // namespace

std::string format_archive_report(const ArchiveReport& report) {
  std::ostringstream os;
  os << "loaded " << report.chunks_loaded << "/" << report.chunks_total
     << " chunks (" << report.rows_loaded << " rows)";
  for (const ArchiveReport::Issue& issue : report.issues) {
    os << "; chunk " << issue.chunk << ": " << issue.what;
  }
  const std::int64_t more =
      report.chunks_skipped - static_cast<std::int64_t>(report.issues.size());
  if (more > 0) os << "; ... and " << more << " more";
  if (report.truncated) os << "; tail truncated before the committed footer";
  return os.str();
}

ArchiveReader ArchiveReader::open(const std::string& path,
                                  ArchiveReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ArchiveError("archive: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_bytes(std::move(buf).str(), report);
}

ArchiveReader ArchiveReader::from_bytes(std::string bytes,
                                        ArchiveReport* report) {
  ArchiveReader r(std::move(bytes));
  r.frame(report);
  return r;
}

std::uint64_t ArchiveReader::rows(TableKind kind) const {
  std::uint64_t n = 0;
  for (const ChunkView& c : chunks(kind)) n += c.rows;
  return n;
}

void note_archive_skip(ArchiveReport* report, std::int64_t chunk,
                       std::int64_t rows, const std::string& why) {
  if (report == nullptr) {
    throw ArchiveError("archive: " + why);
  }
  ++report->chunks_skipped;
  report->rows_skipped += rows;
  if (static_cast<std::int64_t>(report->issues.size()) < report->max_issues) {
    report->issues.push_back({chunk, why});
  }
  if (auto* tel = telemetry::current()) {
    tel->registry
        .counter("p2sim_archive_chunks_skipped_total",
                 "Archive chunks skipped by recovering reads")
        .inc();
  }
}

void ArchiveReader::frame(ArchiveReport* report) {
  if (data_.size() < kFileMagic.size() ||
      std::string_view(data_).substr(0, kFileMagic.size()) != kFileMagic) {
    // Not a p2sim archive at all: refuse in both modes, exactly like the
    // text loaders refuse a bad header line.
    throw ArchiveError("archive: bad file magic");
  }
  if (frame_footer(report)) {
    if (report != nullptr) report->committed = true;
    return;
  }
  if (report == nullptr) {
    throw ArchiveError(
        "archive: missing committed footer (file truncated?)");
  }
  report->truncated = true;
  frame_recovery(report);
}

bool ArchiveReader::frame_footer(ArchiveReport* report) {
  const std::uint64_t size = data_.size();
  if (size < kFileMagic.size() + kFooterFrameBytes) return false;
  const std::string_view view(data_);
  if (view.substr(size - kFooterMagic.size()) != kFooterMagic) return false;
  const std::uint64_t len_at = size - kFooterMagic.size() - 4;
  const std::uint64_t payload_len = get_le32(data_.data() + len_at);
  const std::uint64_t sum_at = len_at - 8;
  if (payload_len > sum_at - kFileMagic.size()) return false;
  const std::uint64_t payload_at = sum_at - payload_len;
  const std::string_view payload = view.substr(payload_at, payload_len);
  if (util::fnv1a64(payload) != get_le64(data_.data() + sum_at)) return false;

  // The footer frame is sound; from here on defects are real (versioned
  // container drift or chunk rot), not just "no footer yet".
  std::array<std::vector<ChunkView>, kNumTables> framed;
  std::int64_t ordinal = 0;
  try {
    util::CkptReader f(payload);
    const std::uint32_t version = f.read_u32("archive.version");
    if (version != kFormatVersion) {
      throw ArchiveError("archive: unsupported format version " +
                         std::to_string(version));
    }
    if (f.read_u32("archive.num_counters") != hpm::kNumCounters) {
      throw ArchiveError("archive: counter-count mismatch");
    }
    for (std::size_t k = 0; k < kNumTables; ++k) {
      const TableKind kind = static_cast<TableKind>(k);
      const std::uint32_t ncols = column_count(kind);
      f.read_u64("archive.rows_total");
      if (f.read_u32("archive.ncols") != ncols) {
        throw ArchiveError("archive: column-count mismatch");
      }
      const std::uint32_t nchunks = f.read_u32("archive.nchunks");
      for (std::uint32_t i = 0; i < nchunks; ++i, ++ordinal) {
        const std::uint64_t offset = f.read_u64("archive.chunk_offset");
        const std::uint64_t bytes = f.read_u64("archive.chunk_bytes");
        const std::uint32_t rows = f.read_u32("archive.chunk_rows");
        std::vector<ChunkStats> stats;
        stats.reserve(ncols);
        for (std::uint32_t c = 0; c < ncols; ++c) {
          ChunkStats s;
          s.min_raw = f.read_u64("archive.chunk_min");
          s.max_raw = f.read_u64("archive.chunk_max");
          stats.push_back(s);
        }
        if (report != nullptr) ++report->chunks_total;
        ChunkView chunk;
        std::uint64_t frame_bytes = 0;
        std::string why;
        if (offset > payload_at || bytes > payload_at - offset ||
            !frame_chunk(offset, offset + bytes, &chunk, &frame_bytes,
                         &why)) {
          note_archive_skip(report, ordinal, rows,
                    why.empty() ? "chunk outside the file" : why);
          continue;
        }
        if (chunk.kind != kind || chunk.rows != rows ||
            frame_bytes != bytes) {
          note_archive_skip(report, ordinal, rows,
                    "chunk disagrees with the footer directory");
          continue;
        }
        chunk.stats = std::move(stats);
        if (report != nullptr) {
          ++report->chunks_loaded;
          report->rows_loaded += rows;
        }
        framed[k].push_back(std::move(chunk));
      }
    }
  } catch (const util::CkptError& e) {
    // A payload that checksums clean but does not parse is corruption in
    // a committed file, not a missing footer.
    throw ArchiveError(std::string("archive: rotted footer: ") + e.what());
  }
  chunks_ = std::move(framed);
  return true;
}

void ArchiveReader::frame_recovery(ArchiveReport* report) {
  const std::string_view view(data_);
  std::size_t pos = kFileMagic.size();
  std::int64_t ordinal = 0;
  while (pos < data_.size()) {
    const std::size_t at = view.find(kChunkMagic, pos);
    if (at == std::string_view::npos) break;
    ChunkView chunk;
    std::uint64_t frame_bytes = 0;
    std::string why;
    if (frame_chunk(at, data_.size(), &chunk, &frame_bytes, &why)) {
      ++report->chunks_total;
      ++report->chunks_loaded;
      report->rows_loaded += chunk.rows;
      chunks_[static_cast<std::size_t>(chunk.kind)].push_back(
          std::move(chunk));
      pos = at + frame_bytes;
    } else {
      // A frame that starts like a chunk but does not validate: count it,
      // then resync on the next magic (rows inside it are unknowable).
      ++report->chunks_total;
      note_archive_skip(report, ordinal, 0, why);
      pos = at + 1;
    }
    ++ordinal;
  }
}

bool ArchiveReader::frame_chunk(std::uint64_t offset,
                                std::uint64_t bytes_limit, ChunkView* out,
                                std::uint64_t* frame_bytes,
                                std::string* why) const {
  const std::uint64_t limit = std::min<std::uint64_t>(bytes_limit,
                                                      data_.size());
  if (offset + kChunkHeadBytes > limit) {
    *why = "truncated chunk header";
    return false;
  }
  const char* base = data_.data() + offset;
  if (std::string_view(base, kChunkMagic.size()) != kChunkMagic) {
    *why = "bad chunk magic";
    return false;
  }
  const std::uint8_t kind_byte = static_cast<std::uint8_t>(base[4]);
  if (kind_byte >= kNumTables) {
    *why = "bad table kind";
    return false;
  }
  const TableKind kind = static_cast<TableKind>(kind_byte);
  const std::uint32_t rows = get_le32(base + 5);
  const std::uint32_t ncols = get_le32(base + 9);
  if (rows == 0 || ncols != column_count(kind)) {
    *why = "bad chunk shape";
    return false;
  }
  const std::uint64_t dir_bytes =
      static_cast<std::uint64_t>(ncols) * kDirEntryBytes;
  const std::uint64_t head_bytes = kChunkHeadBytes + dir_bytes;
  if (offset + head_bytes + 8 > limit) {
    *why = "truncated chunk directory";
    return false;
  }
  if (util::fnv1a64(std::string_view(base, head_bytes)) !=
      get_le64(base + head_bytes)) {
    *why = "chunk checksum mismatch";
    return false;
  }

  out->kind = kind;
  out->rows = rows;
  out->cols.clear();
  out->cols.reserve(ncols);
  std::uint64_t payload_at = offset + head_bytes + 8;
  for (std::uint32_t c = 0; c < ncols; ++c) {
    const char* e = base + kChunkHeadBytes + c * kDirEntryBytes;
    ChunkView::Column col;
    col.encoding = static_cast<Encoding>(static_cast<std::uint8_t>(e[0]));
    col.bytes = get_le32(e + 1);
    col.checksum = get_le64(e + 5);
    col.payload_offset = payload_at;
    if (static_cast<std::uint8_t>(col.encoding) >
        static_cast<std::uint8_t>(Encoding::kConst)) {
      *why = "bad column encoding";
      return false;
    }
    if (col.bytes > limit - payload_at) {
      *why = "truncated chunk payload";
      return false;
    }
    payload_at += col.bytes;
    out->cols.push_back(col);
  }
  *frame_bytes = payload_at - offset;
  return true;
}

void ArchiveReader::decode_column(const ChunkView& chunk, std::uint32_t col,
                                  std::vector<std::uint64_t>* out) const {
  const ChunkView::Column& c = chunk.cols.at(col);
  const std::string_view payload(data_.data() + c.payload_offset, c.bytes);
  if (util::fnv1a64_words(payload) != c.checksum) {
    throw ArchiveError("archive: column checksum mismatch");
  }
  out->resize(chunk.rows);
  const char* p = payload.data();
  const char* end = p + payload.size();
  switch (c.encoding) {
    case Encoding::kRaw64:
      if (payload.size() != static_cast<std::uint64_t>(chunk.rows) * 8) {
        throw ArchiveError("archive: bad raw column size");
      }
      for (std::uint32_t i = 0; i < chunk.rows; ++i) {
        (*out)[i] = get_le64(p + static_cast<std::size_t>(i) * 8);
      }
      return;
    case Encoding::kDeltaVarint: {
      std::uint64_t prev = 0;
      for (std::uint32_t i = 0; i < chunk.rows; ++i) {
        std::uint64_t z = 0;
        if (!get_varint(&p, end, &z)) {
          throw ArchiveError("archive: truncated varint column");
        }
        prev += unzigzag64(z);
        (*out)[i] = prev;
      }
      if (p != end) throw ArchiveError("archive: overlong varint column");
      return;
    }
    case Encoding::kConst: {
      std::uint64_t z = 0;
      if (!get_varint(&p, end, &z) || p != end) {
        throw ArchiveError("archive: bad constant column");
      }
      const std::uint64_t v = unzigzag64(z);
      for (std::uint32_t i = 0; i < chunk.rows; ++i) (*out)[i] = v;
      return;
    }
  }
  throw ArchiveError("archive: bad column encoding");
}

}  // namespace p2sim::archive
