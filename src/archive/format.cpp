#include "src/archive/format.hpp"

namespace p2sim::archive {
namespace {

// Short per-counter names (one per Table 1 slot, unique — the hpm labels
// reuse "fpop.fp_add" etc. across the two math units).
constexpr std::string_view kCounterNames[hpm::kNumCounters] = {
    "fxu0",       "fxu1",       "dcache_miss",   "tlb_miss",     "cycles",
    "fpu0",       "fp_add0",    "fp_mul0",       "fp_div0",      "fp_muladd0",
    "fpu1",       "fp_add1",    "fp_mul1",       "fp_div1",      "fp_muladd1",
    "icu0",       "icu1",       "icache_reload", "dcache_reload",
    "dcache_store", "dma_read", "dma_write",
};

std::vector<ColumnDesc> make_columns(TableKind kind) {
  std::vector<ColumnDesc> cols;
  if (kind == TableKind::kIntervals) {
    cols = {
        {"interval", ColumnKind::kI64},
        {"nodes_sampled", ColumnKind::kI64},
        {"nodes_expected", ColumnKind::kI64},
        {"nodes_reprimed", ColumnKind::kI64},
        {"busy_nodes", ColumnKind::kI64},
        {"quad_surplus", ColumnKind::kU64},
    };
  } else {
    cols = {
        {"job_id", ColumnKind::kI64},
        {"user_id", ColumnKind::kI64},
        {"nodes", ColumnKind::kI64},
        {"submit_s", ColumnKind::kF64},
        {"start_s", ColumnKind::kF64},
        {"end_s", ColumnKind::kF64},
        {"complete", ColumnKind::kU64},
        {"quad_surplus", ColumnKind::kU64},
    };
  }
  for (const char* mode : {"user", "system"}) {
    for (std::string_view c : kCounterNames) {
      cols.push_back(
          {std::string(mode) + "." + std::string(c), ColumnKind::kU64});
    }
  }
  return cols;
}

}  // namespace

const std::vector<ColumnDesc>& columns(TableKind kind) {
  static const std::vector<ColumnDesc> intervals =
      make_columns(TableKind::kIntervals);
  static const std::vector<ColumnDesc> jobs = make_columns(TableKind::kJobs);
  return kind == TableKind::kIntervals ? intervals : jobs;
}

std::uint32_t column_count(TableKind kind) {
  return static_cast<std::uint32_t>(columns(kind).size());
}

bool column_by_name(TableKind kind, std::string_view name,
                    std::uint32_t* out) {
  const std::vector<ColumnDesc>& cols = columns(kind);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name == name) {
      *out = static_cast<std::uint32_t>(i);
      return true;
    }
  }
  return false;
}

}  // namespace p2sim::archive
