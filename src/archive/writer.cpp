#include "src/archive/writer.hpp"

#include <bit>
#include <stdexcept>

#include "src/util/checksum.hpp"
#include "src/util/ckpt.hpp"

namespace p2sim::archive {
namespace {

/// Encodes one column into `out`; returns the encoding chosen.  The
/// writer tries the compact forms first and falls back to raw LE64 when
/// the data does not compress (already-random patterns, e.g. doubles
/// with busy mantissas).
Encoding encode_column(const std::vector<std::uint64_t>& vals,
                       std::size_t begin, std::size_t rows,
                       std::string* out) {
  bool all_equal = true;
  for (std::size_t i = 1; i < rows; ++i) {
    if (vals[begin + i] != vals[begin]) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    put_varint(out, zigzag64(vals[begin]));
    return Encoding::kConst;
  }

  std::string delta;
  delta.reserve(rows * 5);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t v = vals[begin + i];
    put_varint(&delta, zigzag64(v - prev));
    prev = v;
  }
  if (delta.size() < rows * 8) {
    *out = std::move(delta);
    return Encoding::kDeltaVarint;
  }

  out->reserve(rows * 8);
  for (std::size_t i = 0; i < rows; ++i) put_le64(out, vals[begin + i]);
  return Encoding::kRaw64;
}

/// Min/max over the column slice, compared per the column's kind; returns
/// raw bit patterns.
ChunkStats column_stats(const std::vector<std::uint64_t>& vals,
                        std::size_t begin, std::size_t rows,
                        ColumnKind kind) {
  ChunkStats s;
  s.min_raw = vals[begin];
  s.max_raw = vals[begin];
  for (std::size_t i = 1; i < rows; ++i) {
    const std::uint64_t v = vals[begin + i];
    if (raw_less(v, s.min_raw, kind)) s.min_raw = v;
    if (raw_less(s.max_raw, v, kind)) s.max_raw = v;
  }
  return s;
}

}  // namespace

ArchiveWriter::ArchiveWriter(std::size_t rows_per_chunk)
    : rows_per_chunk_(rows_per_chunk) {
  if (rows_per_chunk_ == 0) {
    throw std::invalid_argument("archive: rows_per_chunk must be > 0");
  }
  body_.append(kFileMagic);
  for (std::size_t k = 0; k < kNumTables; ++k) {
    tables_[k].cols.resize(column_count(static_cast<TableKind>(k)));
  }
}

void ArchiveWriter::push_row(TableKind kind, const std::uint64_t* row) {
  if (finished_) {
    throw std::logic_error("archive: append after finish()");
  }
  Table& t = table(kind);
  for (std::size_t c = 0; c < t.cols.size(); ++c) t.cols[c].push_back(row[c]);
  ++t.rows_total;
  if (t.cols[0].size() >= rows_per_chunk_) seal_chunk(kind);
}

void interval_row(const rs2hpm::IntervalRecord& rec, std::uint64_t* row) {
  row[icol::kInterval] = static_cast<std::uint64_t>(rec.interval);
  row[icol::kSampled] =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.nodes_sampled));
  row[icol::kExpected] =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.nodes_expected));
  row[icol::kReprimed] = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rec.nodes_reprimed));
  row[icol::kBusy] =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.busy_nodes));
  row[icol::kQuad] = rec.quad_surplus;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    row[icol::kUser0 + i] = rec.delta.user[i];
    row[icol::kSystem0 + i] = rec.delta.system[i];
  }
}

void job_row(const pbs::JobRecord& rec, std::uint64_t* row) {
  row[jcol::kJobId] = static_cast<std::uint64_t>(rec.spec.job_id);
  row[jcol::kUserId] =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(rec.spec.user_id));
  row[jcol::kNodes] = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(rec.spec.nodes_requested));
  row[jcol::kSubmit] = std::bit_cast<std::uint64_t>(rec.spec.submit_time_s);
  row[jcol::kStart] = std::bit_cast<std::uint64_t>(rec.start_time_s);
  row[jcol::kEnd] = std::bit_cast<std::uint64_t>(rec.end_time_s);
  row[jcol::kComplete] = rec.report.complete ? 1 : 0;
  row[jcol::kQuad] = rec.report.quad_surplus;
  for (std::size_t i = 0; i < hpm::kNumCounters; ++i) {
    row[jcol::kUser0 + i] = rec.report.delta.user[i];
    row[jcol::kSystem0 + i] = rec.report.delta.system[i];
  }
}

void ArchiveWriter::append_interval(const rs2hpm::IntervalRecord& rec) {
  std::uint64_t row[icol::kSystem0 + hpm::kNumCounters];
  interval_row(rec, row);
  push_row(TableKind::kIntervals, row);
}

void ArchiveWriter::append_job(const pbs::JobRecord& rec) {
  std::uint64_t row[jcol::kSystem0 + hpm::kNumCounters];
  job_row(rec, row);
  push_row(TableKind::kJobs, row);
}

void ArchiveWriter::seal_chunk(TableKind kind) {
  Table& t = table(kind);
  const std::size_t rows = t.cols[0].size();
  if (rows == 0) return;
  const std::vector<ColumnDesc>& schema = columns(kind);

  // Encode every column first: the header needs each payload's size and
  // checksum before any payload byte is laid down.
  std::vector<std::string> payloads(t.cols.size());
  std::vector<Encoding> encodings(t.cols.size(), Encoding::kRaw64);
  Table::Sealed sealed;
  sealed.rows = static_cast<std::uint32_t>(rows);
  sealed.stats.reserve(t.cols.size());
  for (std::size_t c = 0; c < t.cols.size(); ++c) {
    encodings[c] = encode_column(t.cols[c], 0, rows, &payloads[c]);
    sealed.stats.push_back(column_stats(t.cols[c], 0, rows, schema[c].kind));
    t.cols[c].clear();
  }

  std::string head;
  head.append(kChunkMagic);
  head.push_back(static_cast<char>(kind));
  put_le32(&head, static_cast<std::uint32_t>(rows));
  put_le32(&head, static_cast<std::uint32_t>(t.cols.size()));
  for (std::size_t c = 0; c < t.cols.size(); ++c) {
    head.push_back(static_cast<char>(encodings[c]));
    put_le32(&head, static_cast<std::uint32_t>(payloads[c].size()));
    put_le64(&head, util::fnv1a64_words(payloads[c]));
  }

  sealed.offset = body_.size();
  body_ += head;
  put_le64(&body_, util::fnv1a64(head));
  for (const std::string& p : payloads) body_ += p;
  sealed.bytes = body_.size() - sealed.offset;
  t.chunks.push_back(std::move(sealed));
}

std::string ArchiveWriter::finish() {
  if (finished_) {
    throw std::logic_error("archive: finish() called twice");
  }
  for (std::size_t k = 0; k < kNumTables; ++k) {
    seal_chunk(static_cast<TableKind>(k));
  }
  finished_ = true;

  util::CkptWriter footer;
  footer.put_u32(kFormatVersion);
  footer.put_u32(static_cast<std::uint32_t>(hpm::kNumCounters));
  for (std::size_t k = 0; k < kNumTables; ++k) {
    const Table& t = tables_[k];
    footer.put_u64(t.rows_total);
    footer.put_u32(column_count(static_cast<TableKind>(k)));
    footer.put_u32(static_cast<std::uint32_t>(t.chunks.size()));
    for (const Table::Sealed& c : t.chunks) {
      footer.put_u64(c.offset);
      footer.put_u64(c.bytes);
      footer.put_u32(c.rows);
      for (const ChunkStats& s : c.stats) {
        footer.put_u64(s.min_raw);
        footer.put_u64(s.max_raw);
      }
    }
  }

  std::string out = std::move(body_);
  body_.clear();
  out += footer.bytes();
  put_le64(&out, util::fnv1a64(footer.bytes()));
  put_le32(&out, static_cast<std::uint32_t>(footer.bytes().size()));
  out.append(kFooterMagic);
  return out;
}

bool ArchiveWriter::finalize(const std::string& path, std::string* error) {
  return util::write_file_durable(path, finish(), error);
}

}  // namespace p2sim::archive
