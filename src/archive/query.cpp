#include "src/archive/query.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <sstream>

#include "src/archive/writer.hpp"
#include "src/hpm/events.hpp"
#include "src/util/numfmt.hpp"

namespace p2sim::archive {
namespace {

using hpm::HpmCounter;

/// Job-table column index of a user-mode / system-mode counter.
constexpr std::uint32_t ju(HpmCounter c) {
  return jcol::kUser0 + static_cast<std::uint32_t>(c);
}
constexpr std::uint32_t js(HpmCounter c) {
  return jcol::kSystem0 + static_cast<std::uint32_t>(c);
}

double as_f64(std::uint64_t raw) { return std::bit_cast<double>(raw); }
std::int64_t as_i64(std::uint64_t raw) {
  return std::bit_cast<std::int64_t>(raw);
}

/// Whole-job Mflops, arithmetic mirrored from rs2hpm::derive_rates under
/// the default counter selection: flops = (add0+add1) + (mul0+mul1) +
/// (div0+div1) + (fma0+fma1), each counter widened to double first.
double job_mflops(double elapsed_s, std::uint64_t a0, std::uint64_t a1,
                  std::uint64_t m0, std::uint64_t m1, std::uint64_t d0,
                  std::uint64_t d1, std::uint64_t f0, std::uint64_t f1) {
  if (elapsed_s <= 0.0) return 0.0;
  const double mps = 1.0 / (elapsed_s * 1e6);
  const double add =
      static_cast<double>(a0) + static_cast<double>(a1);
  const double mul =
      static_cast<double>(m0) + static_cast<double>(m1);
  const double div =
      static_cast<double>(d0) + static_cast<double>(d1);
  const double fma =
      static_cast<double>(f0) + static_cast<double>(f1);
  const double flops = add + mul + div + fma;
  return flops * mps;
}

/// Sound analyzed-jobs pushdown: skip a chunk only when its statistics
/// prove no row has complete != 0 and walltime > min_walltime_s.  For any
/// row, end - start <= max(end) - min(start), so the bound is a proof.
bool prune_analyzed(std::span<const ChunkStats> stats,
                    double min_walltime_s) {
  if (stats[jcol::kComplete].max_raw == 0) return true;
  const double start_min = as_f64(stats[jcol::kStart].min_raw);
  const double end_max = as_f64(stats[jcol::kEnd].max_raw);
  return end_max - start_min <= min_walltime_s;
}

}  // namespace

ScanStats ArchiveTableSource::scan(std::span<const std::uint32_t> cols,
                                   const PruneFn& prune,
                                   const BatchFn& fn) const {
  ScanStats st;
  std::vector<std::vector<std::uint64_t>> scratch(cols.size());
  Batch batch;
  batch.cols.resize(cols.size());
  std::int64_t ordinal = 0;
  for (const ChunkView& chunk : reader_->chunks(kind_)) {
    if (prune && !chunk.stats.empty() && prune(chunk.stats)) {
      ++st.chunks_pruned;
      st.rows_pruned += chunk.rows;
      ++ordinal;
      continue;
    }
    bool ok = true;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      try {
        reader_->decode_column(chunk, cols[i], &scratch[i]);
      } catch (const ArchiveError& e) {
        // Rotted after commit (the framing checksum only seals the chunk
        // header): skip-and-report mid-scan, throw when strict.
        note_archive_skip(report_, ordinal, chunk.rows, e.what());
        ++st.chunks_skipped;
        ok = false;
        break;
      }
      batch.cols[i] = scratch[i];
    }
    if (ok) {
      batch.rows = chunk.rows;
      ++st.chunks_scanned;
      st.rows_scanned += chunk.rows;
      fn(batch);
    }
    ++ordinal;
  }
  return st;
}

MemoryIntervalSource::MemoryIntervalSource(
    std::span<const rs2hpm::IntervalRecord> records) {
  const std::uint32_t ncols = column_count(TableKind::kIntervals);
  cols_.resize(ncols);
  for (auto& c : cols_) c.reserve(records.size());
  std::vector<std::uint64_t> row(ncols);
  for (const rs2hpm::IntervalRecord& rec : records) {
    interval_row(rec, row.data());
    for (std::uint32_t c = 0; c < ncols; ++c) cols_[c].push_back(row[c]);
  }
  rows_ = records.size();
}

ScanStats MemoryIntervalSource::scan(std::span<const std::uint32_t> cols,
                                     const PruneFn& /*prune*/,
                                     const BatchFn& fn) const {
  ScanStats st;
  if (rows_ == 0) return st;
  Batch batch;
  batch.rows = static_cast<std::uint32_t>(rows_);
  batch.cols.reserve(cols.size());
  for (std::uint32_t c : cols) batch.cols.emplace_back(cols_[c]);
  ++st.chunks_scanned;
  st.rows_scanned += static_cast<std::int64_t>(rows_);
  fn(batch);
  return st;
}

MemoryJobSource::MemoryJobSource(std::span<const pbs::JobRecord> records) {
  const std::uint32_t ncols = column_count(TableKind::kJobs);
  cols_.resize(ncols);
  for (auto& c : cols_) c.reserve(records.size());
  std::vector<std::uint64_t> row(ncols);
  for (const pbs::JobRecord& rec : records) {
    job_row(rec, row.data());
    for (std::uint32_t c = 0; c < ncols; ++c) cols_[c].push_back(row[c]);
  }
  rows_ = records.size();
}

ScanStats MemoryJobSource::scan(std::span<const std::uint32_t> cols,
                                const PruneFn& /*prune*/,
                                const BatchFn& fn) const {
  ScanStats st;
  if (rows_ == 0) return st;
  Batch batch;
  batch.rows = static_cast<std::uint32_t>(rows_);
  batch.cols.reserve(cols.size());
  for (std::uint32_t c : cols) batch.cols.emplace_back(cols_[c]);
  ++st.chunks_scanned;
  st.rows_scanned += static_cast<std::int64_t>(rows_);
  fn(batch);
  return st;
}

TopUsersResult top_users(std::span<const TableSource* const> jobs,
                         std::size_t top_n, double min_walltime_s) {
  // Accumulation order and arithmetic mirror analysis::user_stats.
  struct Accum {
    std::int64_t jobs = 0;
    double node_seconds = 0.0;
    double weighted_mflops = 0.0;
    double walltime = 0.0;
    double best = 0.0;
  };
  std::map<std::int32_t, Accum> by_user;
  TopUsersResult out;

  const std::uint32_t req[] = {
      jcol::kUserId,          jcol::kNodes,
      jcol::kStart,           jcol::kEnd,
      jcol::kComplete,        ju(HpmCounter::kFpAdd0),
      ju(HpmCounter::kFpAdd1), ju(HpmCounter::kFpMul0),
      ju(HpmCounter::kFpMul1), ju(HpmCounter::kFpDiv0),
      ju(HpmCounter::kFpDiv1), ju(HpmCounter::kFpMulAdd0),
      ju(HpmCounter::kFpMulAdd1)};
  const PruneFn prune = [min_walltime_s](std::span<const ChunkStats> s) {
    return prune_analyzed(s, min_walltime_s);
  };
  for (const TableSource* src : jobs) {
    out.scan.merge(src->scan(req, prune, [&](const Batch& b) {
      for (std::uint32_t i = 0; i < b.rows; ++i) {
        if (b.cols[4][i] == 0) continue;
        const double w = as_f64(b.cols[3][i]) - as_f64(b.cols[2][i]);
        if (!(w > min_walltime_s)) continue;
        const std::int64_t nodes = as_i64(b.cols[1][i]);
        const double jm =
            job_mflops(w, b.cols[5][i], b.cols[6][i], b.cols[7][i],
                       b.cols[8][i], b.cols[9][i], b.cols[10][i],
                       b.cols[11][i], b.cols[12][i]);
        const double mfn =
            nodes > 0 ? jm / static_cast<double>(nodes) : 0.0;
        Accum& a = by_user[static_cast<std::int32_t>(as_i64(b.cols[0][i]))];
        a.jobs += 1;
        a.node_seconds += w * static_cast<double>(nodes);
        a.weighted_mflops += mfn * w;
        a.walltime += w;
        a.best = std::max(a.best, mfn);
        ++out.jobs_analyzed;
      }
    }));
  }

  out.rows.reserve(by_user.size());
  for (const auto& [user, a] : by_user) {
    TopUsersResult::Row r;
    r.user_id = user;
    r.jobs = a.jobs;
    r.node_hours = a.node_seconds / 3600.0;
    r.mflops_per_node =
        a.walltime > 0.0 ? a.weighted_mflops / a.walltime : 0.0;
    r.best_mflops_per_node = a.best;
    out.rows.push_back(r);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const TopUsersResult::Row& a, const TopUsersResult::Row& b) {
              return a.node_hours > b.node_hours;
            });
  if (out.rows.size() > top_n) out.rows.resize(top_n);
  return out;
}

MissRatioResult miss_ratio_distribution(
    std::span<const TableSource* const> jobs, int nodes,
    double min_walltime_s) {
  MissRatioResult out;
  out.nodes = nodes;
  double sum = 0.0;

  const std::uint32_t req[] = {jcol::kNodes,
                               jcol::kComplete,
                               jcol::kStart,
                               jcol::kEnd,
                               ju(HpmCounter::kUserFxu0),
                               ju(HpmCounter::kUserFxu1),
                               ju(HpmCounter::kUserDcacheMiss)};
  const PruneFn prune = [nodes,
                         min_walltime_s](std::span<const ChunkStats> s) {
    const std::int64_t n = nodes;
    if (n < as_i64(s[jcol::kNodes].min_raw) ||
        n > as_i64(s[jcol::kNodes].max_raw)) {
      return true;
    }
    return prune_analyzed(s, min_walltime_s);
  };
  for (const TableSource* src : jobs) {
    out.scan.merge(src->scan(req, prune, [&](const Batch& b) {
      for (std::uint32_t i = 0; i < b.rows; ++i) {
        if (b.cols[1][i] == 0) continue;
        if (as_i64(b.cols[0][i]) != nodes) continue;
        const double w = as_f64(b.cols[3][i]) - as_f64(b.cols[2][i]);
        if (!(w > min_walltime_s)) continue;
        // Section 5's lower-bound miss ratio: dcache misses over the FXU
        // instruction sum, arithmetic as in derive_rates.
        const double fxu = static_cast<double>(b.cols[4][i]) +
                           static_cast<double>(b.cols[5][i]);
        const double ratio =
            fxu > 0.0 ? static_cast<double>(b.cols[6][i]) / fxu : 0.0;
        if (out.jobs == 0) {
          out.min = ratio;
          out.max = ratio;
        } else {
          out.min = std::min(out.min, ratio);
          out.max = std::max(out.max, ratio);
        }
        ++out.jobs;
        sum += ratio;
        const double edge =
            ratio / MissRatioResult::kBucketWidth;
        const std::size_t bucket =
            edge >= static_cast<double>(MissRatioResult::kBuckets)
                ? MissRatioResult::kBuckets
                : static_cast<std::size_t>(edge);
        ++out.hist[bucket];
      }
    }));
  }
  out.mean = out.jobs > 0 ? sum / static_cast<double>(out.jobs) : 0.0;
  return out;
}

PagingResult paging_suspects(std::span<const TableSource* const> jobs,
                             double threshold, std::size_t max_rows,
                             double min_walltime_s) {
  PagingResult out;
  out.threshold = threshold;

  const std::uint32_t req[] = {jcol::kJobId,
                               jcol::kUserId,
                               jcol::kNodes,
                               jcol::kStart,
                               jcol::kEnd,
                               jcol::kComplete,
                               ju(HpmCounter::kUserFxu0),
                               ju(HpmCounter::kUserFxu1),
                               js(HpmCounter::kUserFxu0),
                               js(HpmCounter::kUserFxu1)};
  const PruneFn prune = [min_walltime_s](std::span<const ChunkStats> s) {
    return prune_analyzed(s, min_walltime_s);
  };
  for (const TableSource* src : jobs) {
    out.scan.merge(src->scan(req, prune, [&](const Batch& b) {
      for (std::uint32_t i = 0; i < b.rows; ++i) {
        if (b.cols[5][i] == 0) continue;
        const double w = as_f64(b.cols[4][i]) - as_f64(b.cols[3][i]);
        if (!(w > min_walltime_s)) continue;
        ++out.jobs_analyzed;
        // derive_rates' system_user_fxu_ratio: the system-mode sum is
        // added in uint64 then widened once; the user-mode halves widen
        // separately.
        const double fxu = static_cast<double>(b.cols[6][i]) +
                           static_cast<double>(b.cols[7][i]);
        if (!(fxu > 0.0)) continue;
        const double sys_fxu =
            static_cast<double>(b.cols[8][i] + b.cols[9][i]);
        const double ratio = sys_fxu / fxu;
        if (ratio < threshold) continue;
        PagingResult::Row r;
        r.job_id = as_i64(b.cols[0][i]);
        r.user_id = static_cast<std::int32_t>(as_i64(b.cols[1][i]));
        r.nodes = as_i64(b.cols[2][i]);
        r.walltime_s = w;
        r.ratio = ratio;
        out.rows.push_back(r);
      }
    }));
  }
  std::stable_sort(out.rows.begin(), out.rows.end(),
                   [](const PagingResult::Row& a, const PagingResult::Row& b) {
                     return a.ratio > b.ratio;
                   });
  if (out.rows.size() > max_rows) out.rows.resize(max_rows);
  return out;
}

bool aggregate_column(const TableSource& source, std::string_view column,
                      ColumnAggregate* out) {
  std::uint32_t col = 0;
  if (!column_by_name(source.kind(), column, &col)) return false;
  const ColumnKind kind = columns(source.kind())[col].kind;
  *out = ColumnAggregate{};
  out->column = std::string(column);
  out->value_kind = kind;
  const std::uint32_t req[] = {col};
  bool first = true;
  out->scan = source.scan(req, nullptr, [&](const Batch& b) {
    const std::span<const std::uint64_t> v = b.cols[0];
    for (std::uint32_t i = 0; i < b.rows; ++i) {
      const std::uint64_t x = v[i];
      out->sum += x;
      if (kind == ColumnKind::kF64) out->dsum += std::bit_cast<double>(x);
      if (first) {
        out->min_raw = x;
        out->max_raw = x;
        first = false;
      } else {
        if (raw_less(x, out->min_raw, kind)) out->min_raw = x;
        if (raw_less(out->max_raw, x, kind)) out->max_raw = x;
      }
    }
    out->rows += b.rows;
  });
  return true;
}

namespace {

std::string raw_str(std::uint64_t raw, ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kI64:
      return std::to_string(as_i64(raw));
    case ColumnKind::kF64:
      return util::format_double(as_f64(raw));
    case ColumnKind::kU64:
      break;
  }
  return std::to_string(raw);
}

}  // namespace

std::string render_scan_stats(const ScanStats& s) {
  std::ostringstream os;
  os << "scan chunks=" << s.chunks_scanned << " pruned=" << s.chunks_pruned
     << " skipped=" << s.chunks_skipped << " rows=" << s.rows_scanned
     << " rows_pruned=" << s.rows_pruned << '\n';
  return os.str();
}

std::string render_top_users(const TopUsersResult& r) {
  std::ostringstream os;
  os << "top-users analyzed=" << r.jobs_analyzed << " rows=" << r.rows.size()
     << '\n';
  for (const TopUsersResult::Row& u : r.rows) {
    os << "user=" << u.user_id << " jobs=" << u.jobs
       << " node_hours=" << util::format_double(u.node_hours)
       << " mflops_per_node=" << util::format_double(u.mflops_per_node)
       << " best=" << util::format_double(u.best_mflops_per_node) << '\n';
  }
  return os.str();
}

std::string render_miss_ratio(const MissRatioResult& r) {
  std::ostringstream os;
  os << "miss-ratio nodes=" << r.nodes << " jobs=" << r.jobs
     << " mean=" << util::format_double(r.mean)
     << " min=" << util::format_double(r.min)
     << " max=" << util::format_double(r.max) << '\n';
  for (std::size_t i = 0; i < MissRatioResult::kBuckets; ++i) {
    const double lo = static_cast<double>(i) * MissRatioResult::kBucketWidth;
    const double hi =
        static_cast<double>(i + 1) * MissRatioResult::kBucketWidth;
    os << "bucket " << util::format_double(lo) << ".."
       << util::format_double(hi) << " = " << r.hist[i] << '\n';
  }
  os << "overflow = " << r.hist[MissRatioResult::kBuckets] << '\n';
  return os.str();
}

std::string render_paging(const PagingResult& r) {
  std::ostringstream os;
  os << "paging threshold=" << util::format_double(r.threshold)
     << " analyzed=" << r.jobs_analyzed << " suspects=" << r.rows.size()
     << '\n';
  for (const PagingResult::Row& j : r.rows) {
    os << "job=" << j.job_id << " user=" << j.user_id
       << " nodes=" << j.nodes
       << " walltime=" << util::format_double(j.walltime_s)
       << " sys_user_fxu=" << util::format_double(j.ratio) << '\n';
  }
  return os.str();
}

std::string render_aggregate(const ColumnAggregate& r) {
  std::ostringstream os;
  os << "column=" << r.column << " rows=" << r.rows << " sum="
     << (r.value_kind == ColumnKind::kF64 ? util::format_double(r.dsum)
                                          : std::to_string(r.sum))
     << " min=" << raw_str(r.min_raw, r.value_kind)
     << " max=" << raw_str(r.max_raw, r.value_kind) << '\n';
  return os.str();
}

}  // namespace p2sim::archive
