// Streaming archive writer: the driver's record-emission sink.
//
// Rows append into in-memory column buffers (one set per table); every
// `rows_per_chunk` rows the buffers seal into one immutable encoded chunk,
// so the cost of record emission is paid in row-group batches rather than
// per row.  finish()/finalize() seal the last partial chunks, append the
// committed footer, and (for finalize) persist the whole image with the
// same temp/fsync/rename discipline as the checkpoint container — a crash
// leaves either the complete old file or the complete new file, and a
// reader distinguishes a missing footer (clean truncation) from rotted
// chunks exactly like record_io's ParseReport does for text.
//
// The image is a pure function of the appended row sequence and
// `rows_per_chunk`: neither call batching nor thread count can move a
// chunk boundary, which is what keeps archive bytes bit-identical across
// campaign thread counts and checkpoint resume.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/archive/format.hpp"
#include "src/pbs/accounting.hpp"
#include "src/rs2hpm/daemon.hpp"

namespace p2sim::archive {

/// Flattens one record into its schema row: `row` must hold
/// column_count(kIntervals) / column_count(kJobs) values.  Shared by the
/// writer and the in-memory (oracle) table sources so both paths store
/// the same bit patterns by construction.
void interval_row(const rs2hpm::IntervalRecord& rec, std::uint64_t* row);
void job_row(const pbs::JobRecord& rec, std::uint64_t* row);

class ArchiveWriter {
 public:
  explicit ArchiveWriter(std::size_t rows_per_chunk = kDefaultRowsPerChunk);

  void append_interval(const rs2hpm::IntervalRecord& rec);
  /// Stores the v2 text field set plus `rec.spec.user_id`.
  void append_job(const pbs::JobRecord& rec);

  std::uint64_t rows(TableKind kind) const {
    return tables_[static_cast<std::size_t>(kind)].rows_total;
  }

  /// Seals pending rows and the footer; returns the complete archive
  /// image.  The writer is spent afterwards (further appends throw).
  std::string finish();

  /// finish() + durable whole-file replacement.  Returns false and fills
  /// `error` when the write fails; the target is never left torn.
  bool finalize(const std::string& path, std::string* error);

 private:
  struct Table {
    /// Pending (not yet sealed) rows, column-major; one vector per
    /// schema column, all the same length.
    std::vector<std::vector<std::uint64_t>> cols;
    std::uint64_t rows_total = 0;
    /// Sealed chunks, in append order: offset/size into the body plus
    /// per-column min/max for the footer directory.
    struct Sealed {
      std::uint64_t offset = 0;
      std::uint64_t bytes = 0;
      std::uint32_t rows = 0;
      std::vector<ChunkStats> stats;
    };
    std::vector<Sealed> chunks;
  };

  Table& table(TableKind kind) {
    return tables_[static_cast<std::size_t>(kind)];
  }
  void push_row(TableKind kind, const std::uint64_t* row);
  void seal_chunk(TableKind kind);

  std::size_t rows_per_chunk_ = kDefaultRowsPerChunk;
  /// File magic + sealed chunks.
  std::string body_;
  std::array<Table, kNumTables> tables_{};
  bool finished_ = false;
};

}  // namespace p2sim::archive
