// Columnar campaign archive: on-disk format constants and encodings.
//
// One `.p2ar` file holds both campaign tables (interval records and job
// records) as a sequence of immutable row-group *chunks* followed by a
// committed footer:
//
//   [8]  file magic "P2SIMAR1"
//   ...  chunks, back to back (either table kind, in append order)
//   ...  footer payload (a util::CkptWriter stream: version, counter
//        count, and per table the row total plus a chunk directory with
//        per-column min/max statistics)
//   [8]  FNV-1a-64 of the footer payload, little-endian
//   [4]  footer payload length, little-endian
//   [8]  footer magic "P2SIMARF"
//
// A chunk is column-major (SoA): a fixed header, a per-column directory
// (encoding byte, encoded byte count, column checksum), an FNV-1a-64 over
// header + directory, then the encoded column payloads back to back:
//
//   [4]  chunk magic "CHNK"
//   [1]  table kind
//   [4]  row count, little-endian
//   [4]  column count, little-endian
//   per column: [1] encoding  [4] encoded bytes  [8] fnv1a64_words(payload)
//   [8]  FNV-1a-64 over everything above (header + directory)
//   ...  column payloads, in schema order
//
// Integrity is two-level: the chunk checksum seals the header and the
// directory of column checksums, and each column payload is verified by
// its own word-wise FNV whenever it is decoded.  A scan that prunes
// columns therefore verifies exactly the bytes it reads, while a full
// load (which decodes every column) detects a flip anywhere in the chunk.
//
// Every value is stored as a 64-bit little-endian pattern (doubles are
// bit-cast), per column encoded as one of:
//   kRaw64       — 8 bytes per row, little-endian;
//   kDeltaVarint — per row, LEB128 varint of the zigzagged wrapping
//                  difference from the previous row (first row diffs
//                  against zero) — the monotone/near-constant case;
//   kConst       — a single varint of the (zigzagged) common value.
// The writer picks, per column per chunk, whichever encodes smallest.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/hpm/events.hpp"

namespace p2sim::archive {

inline constexpr std::string_view kFileMagic = "P2SIMAR1";
inline constexpr std::string_view kFooterMagic = "P2SIMARF";
inline constexpr std::string_view kChunkMagic = "CHNK";
inline constexpr std::uint32_t kFormatVersion = 1;

/// Rows per chunk: large enough that per-chunk framing amortizes to
/// nothing, small enough that min/max pruning has real resolution over a
/// nine-month campaign (25920 intervals -> ~7 chunks).
inline constexpr std::size_t kDefaultRowsPerChunk = 4096;

/// Tail frame after the footer payload: checksum + length + magic.
inline constexpr std::size_t kFooterFrameBytes = 8 + 4 + kFooterMagic.size();

enum class TableKind : std::uint8_t { kIntervals = 0, kJobs = 1 };
inline constexpr std::size_t kNumTables = 2;

enum class Encoding : std::uint8_t { kRaw64 = 0, kDeltaVarint = 1, kConst = 2 };

/// How a column's 64-bit patterns compare (for chunk min/max statistics
/// and pretty-printing); storage is raw bits either way.
enum class ColumnKind : std::uint8_t { kU64 = 0, kI64 = 1, kF64 = 2 };

struct ColumnDesc {
  std::string name;
  ColumnKind kind = ColumnKind::kU64;
};

// Interval table: 6 fixed columns then 22 user + 22 system counters.
namespace icol {
inline constexpr std::uint32_t kInterval = 0;
inline constexpr std::uint32_t kSampled = 1;
inline constexpr std::uint32_t kExpected = 2;
inline constexpr std::uint32_t kReprimed = 3;
inline constexpr std::uint32_t kBusy = 4;
inline constexpr std::uint32_t kQuad = 5;
inline constexpr std::uint32_t kUser0 = 6;
inline constexpr std::uint32_t kSystem0 =
    kUser0 + static_cast<std::uint32_t>(hpm::kNumCounters);
}  // namespace icol

// Job table: 8 fixed columns then 22 user + 22 system counters.  This is
// the v2 text job line's field set plus `user_id` (which the text format
// never carried but per-user queries need).
namespace jcol {
inline constexpr std::uint32_t kJobId = 0;
inline constexpr std::uint32_t kUserId = 1;
inline constexpr std::uint32_t kNodes = 2;
inline constexpr std::uint32_t kSubmit = 3;
inline constexpr std::uint32_t kStart = 4;
inline constexpr std::uint32_t kEnd = 5;
inline constexpr std::uint32_t kComplete = 6;
inline constexpr std::uint32_t kQuad = 7;
inline constexpr std::uint32_t kUser0 = 8;
inline constexpr std::uint32_t kSystem0 =
    kUser0 + static_cast<std::uint32_t>(hpm::kNumCounters);
}  // namespace jcol

/// Column schema for a table, in storage order.
const std::vector<ColumnDesc>& columns(TableKind kind);

/// Number of columns in a table's schema.
std::uint32_t column_count(TableKind kind);

/// Resolves "user.cycles", "nodes", ... to a column index; returns false
/// when the name is not in the table's schema.
bool column_by_name(TableKind kind, std::string_view name,
                    std::uint32_t* out);

/// Per-column, per-chunk statistics (raw 64-bit patterns; compare per the
/// column's ColumnKind).
struct ChunkStats {
  std::uint64_t min_raw = 0;
  std::uint64_t max_raw = 0;
};

/// Orders two raw 64-bit patterns per the column's value kind.
inline bool raw_less(std::uint64_t a, std::uint64_t b, ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kI64:
      return std::bit_cast<std::int64_t>(a) < std::bit_cast<std::int64_t>(b);
    case ColumnKind::kF64:
      return std::bit_cast<double>(a) < std::bit_cast<double>(b);
    case ColumnKind::kU64:
      break;
  }
  return a < b;
}

// --- little-endian and varint primitives ----------------------------------

inline void put_le32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_le64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline std::uint32_t get_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t get_le64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Zigzag on the wrapping difference: small |delta| in either direction
/// encodes small.  Round-trips every 64-bit pattern.
inline std::uint64_t zigzag64(std::uint64_t d) {
  return (d << 1) ^ static_cast<std::uint64_t>(
                        std::bit_cast<std::int64_t>(d) >> 63);
}

inline std::uint64_t unzigzag64(std::uint64_t z) {
  return (z >> 1) ^ (0ULL - (z & 1ULL));
}

/// LEB128: 7 payload bits per byte, high bit = continuation.
inline void put_varint(std::string* out, std::uint64_t v) {
  while (v >= 0x80ULL) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Reads one varint from [*p, end); advances *p.  Returns false on
/// truncation or on a varint wider than 64 bits.
inline bool get_varint(const char** p, const char* end, std::uint64_t* v) {
  std::uint64_t out = 0;
  int shift = 0;
  while (*p != end && shift < 64) {
    const unsigned char byte = static_cast<unsigned char>(**p);
    ++*p;
    out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace p2sim::archive
