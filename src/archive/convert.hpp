// Conversions between the columnar archive and its neighbours: in-memory
// records (materialization) and the versioned text record format (both
// ways).
//
// Materialization decodes every column of every loadable chunk, so it
// verifies the whole chunk body — the full-integrity read path.  The text
// importers/exporters reuse analysis::record_io verbatim, which keeps one
// text parser in the tree and makes text -> archive -> text a byte-level
// round trip (the text format stores shortest round-trip doubles, and job
// format v3 carries the archive's user_id column; a legacy v2 job file
// imports with user 0).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/analysis/record_io.hpp"
#include "src/archive/reader.hpp"
#include "src/pbs/accounting.hpp"
#include "src/rs2hpm/daemon.hpp"

namespace p2sim::archive {

/// Materializes the interval table (chunk order, all columns verified).
std::vector<rs2hpm::IntervalRecord> to_intervals(
    const ArchiveReader& reader, ArchiveReport* report = nullptr);

/// Materializes the job table.  `elapsed_s` is canonicalized to
/// end - start, exactly as analysis::load_jobs does for text.
pbs::JobDatabase to_jobs(const ArchiveReader& reader,
                         ArchiveReport* report = nullptr);

/// Builds a complete archive image from in-memory records (merge tool,
/// tests, benches).
std::string archive_from_records(
    std::span<const rs2hpm::IntervalRecord> intervals,
    std::span<const pbs::JobRecord> jobs,
    std::size_t rows_per_chunk = kDefaultRowsPerChunk);

/// Loads text record files (either path may be empty: that table stays
/// empty) and writes `archive_path` durably.  Strict when the matching
/// report pointer is null.  Returns false with `error` set on any load or
/// write failure.
bool text_to_archive(const std::string& intervals_path,
                     const std::string& jobs_path,
                     const std::string& archive_path, std::string* error,
                     analysis::ParseReport* intervals_report = nullptr,
                     analysis::ParseReport* jobs_report = nullptr);

/// Exports an archive back to text record files (either output path may be
/// empty to skip that table); strict when `report` is null.
bool archive_to_text(const std::string& archive_path,
                     const std::string& intervals_path,
                     const std::string& jobs_path, std::string* error,
                     ArchiveReport* report = nullptr);

}  // namespace p2sim::archive
